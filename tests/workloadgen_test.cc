#include <gtest/gtest.h>

#include <chrono>

#include "planner/dp_planner.h"
#include "engines/standard_engines.h"
#include "workloadgen/asap_workflows.h"
#include "workloadgen/pegasus.h"

namespace ires {
namespace {

class PegasusTest : public ::testing::TestWithParam<PegasusType> {};

TEST_P(PegasusTest, GeneratesValidWorkflowsAtManySizes) {
  PegasusGenerator generator;
  for (int target : {30, 100, 300}) {
    GeneratedWorkload w = generator.Generate(GetParam(), target, 4);
    ASSERT_TRUE(w.graph.Validate().ok())
        << PegasusTypeName(GetParam()) << " @" << target << ": "
        << w.graph.Validate();
    // Size lands within a reasonable band of the request.
    EXPECT_GT(w.graph.operator_count(), target / 3);
    EXPECT_LT(w.graph.operator_count(), target * 3);
  }
}

TEST_P(PegasusTest, EveryAbstractOperatorHasMImplementations) {
  PegasusGenerator generator;
  const int m = 5;
  GeneratedWorkload w = generator.Generate(GetParam(), 60, m);
  auto topo = w.graph.TopologicalOperators();
  ASSERT_TRUE(topo.ok());
  for (int op_node : topo.value()) {
    const AbstractOperator* abstract =
        w.library.FindAbstractByName(w.graph.node(op_node).name);
    ASSERT_NE(abstract, nullptr);
    EXPECT_EQ(w.library.FindMaterializedOperators(*abstract).size(),
              static_cast<size_t>(m));
  }
}

TEST_P(PegasusTest, PlannerHandlesGeneratedWorkflows) {
  PegasusGenerator generator;
  GeneratedWorkload w = generator.Generate(GetParam(), 60, 4);
  auto registry = std::make_unique<EngineRegistry>();
  PegasusGenerator::RegisterSyntheticEngines(registry.get(), 4);
  DpPlanner planner(&w.library, registry.get());
  auto plan = planner.Plan(w.graph, {});
  ASSERT_TRUE(plan.ok()) << PegasusTypeName(GetParam()) << ": "
                         << plan.status();
  EXPECT_GT(plan.value().steps.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, PegasusTest,
    ::testing::Values(PegasusType::kMontage, PegasusType::kCyberShake,
                      PegasusType::kEpigenomics, PegasusType::kInspiral,
                      PegasusType::kSipht),
    [](const ::testing::TestParamInfo<PegasusType>& info) {
      return PegasusTypeName(info.param);
    });

TEST(PegasusShapeTest, MontageIsMoreConnectedThanEpigenomics) {
  PegasusGenerator generator;
  auto density = [&](PegasusType type) {
    GeneratedWorkload w = generator.Generate(type, 200, 2);
    // Average operator in-degree.
    double edges = 0;
    int operators = 0;
    for (size_t i = 0; i < w.graph.size(); ++i) {
      const auto& node = w.graph.node(static_cast<int>(i));
      if (node.kind == WorkflowGraph::NodeKind::kOperator) {
        edges += node.inputs.size();
        ++operators;
      }
    }
    return edges / operators;
  };
  EXPECT_GT(density(PegasusType::kMontage),
            density(PegasusType::kEpigenomics));
}

TEST(PegasusShapeTest, EpigenomicsIsPipelined) {
  PegasusGenerator generator;
  GeneratedWorkload w = generator.Generate(PegasusType::kEpigenomics, 72, 2);
  // Nearly all operators have in-degree 1 (chains), except the mergers.
  int single_input = 0, operators = 0;
  for (size_t i = 0; i < w.graph.size(); ++i) {
    const auto& node = w.graph.node(static_cast<int>(i));
    if (node.kind != WorkflowGraph::NodeKind::kOperator) continue;
    ++operators;
    single_input += node.inputs.size() == 1;
  }
  EXPECT_GE(single_input, operators - 2);
}

TEST(PegasusShapeTest, SiphtHasWideFanIn) {
  PegasusGenerator generator;
  GeneratedWorkload w = generator.Generate(PegasusType::kSipht, 100, 2);
  size_t max_in = 0;
  for (size_t i = 0; i < w.graph.size(); ++i) {
    const auto& node = w.graph.node(static_cast<int>(i));
    if (node.kind == WorkflowGraph::NodeKind::kOperator) {
      max_in = std::max(max_in, node.inputs.size());
    }
  }
  EXPECT_GE(max_in, 50u);  // PatserConcate aggregates most of the workflow
}

TEST(PegasusScalingTest, ThousandNodePlanningUnderTenSeconds) {
  // The headline claim of Fig. 14: even 1000-node workflows plan in <10 s.
  PegasusGenerator generator;
  GeneratedWorkload w = generator.Generate(PegasusType::kMontage, 1000, 8);
  auto registry = std::make_unique<EngineRegistry>();
  PegasusGenerator::RegisterSyntheticEngines(registry.get(), 8);
  DpPlanner planner(&w.library, registry.get());
  const auto start = std::chrono::steady_clock::now();
  auto plan = planner.Plan(w.graph, {});
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_LT(seconds, 10.0);
}

TEST(AsapWorkflowTest, CilkTextClusteringPlansOnCilk) {
  const GeneratedWorkload w = MakeCilkTextClusteringWorkflow();
  ASSERT_TRUE(w.graph.Validate().ok());
  auto registry = MakeStandardEngineRegistry();
  DpPlanner planner(&w.library, registry.get());
  auto plan = planner.Plan(w.graph, {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Single implementation per operator: both run on Cilk, no moves (all
  // I/O stays in HDFS).
  ASSERT_EQ(plan.value().steps.size(), 2u);
  for (const PlanStep& step : plan.value().steps) {
    EXPECT_EQ(step.engine, "Cilk");
    EXPECT_EQ(step.kind, PlanStep::Kind::kOperator);
  }
}

TEST(AsapWorkflowTest, CilkKillSwitchLeavesNoAlternative) {
  const GeneratedWorkload w = MakeCilkTextClusteringWorkflow();
  auto registry = MakeStandardEngineRegistry();
  (void)registry->SetAvailable("Cilk", false);
  DpPlanner planner(&w.library, registry.get());
  EXPECT_EQ(planner.Plan(w.graph, {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SyntheticEnginesTest, RegisterDistinctEnginesAndStores) {
  EngineRegistry registry;
  PegasusGenerator::RegisterSyntheticEngines(&registry, 8);
  EXPECT_EQ(registry.size(), 8u);
  for (int e = 0; e < 8; ++e) {
    const SimulatedEngine* engine =
        registry.Find("Eng" + std::to_string(e));
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->native_store(), "Store" + std::to_string(e));
  }
}

}  // namespace
}  // namespace ires
