// Flight-recorder suite: the bounded sharded event journal behind
// GET /apiv1/debug/events. Covers kind-name round trips, JSON shape,
// filtering/limits, ring wrap accounting, the disabled fast path, the
// null-safe JournalWriter, and a multi-writer stress run (CI also runs this
// binary under ThreadSanitizer) asserting per-shard monotonic sequence
// numbers and no lost events even while the ring wraps under readers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/event_journal.h"

namespace ires {
namespace {

JournalEvent MakeEvent(EventKind kind, const std::string& job,
                       int step = -1) {
  JournalEvent event;
  event.kind = kind;
  event.job = job;
  event.step = step;
  return event;
}

// ------------------------------------------------------------- Kind names

TEST(EventKindTest, NamesRoundTripThroughParse) {
  const EventKind kinds[] = {
      EventKind::kAdmissionAccept, EventKind::kAdmissionReject,
      EventKind::kPlanCacheHit,    EventKind::kPlanCacheMiss,
      EventKind::kPlanChosen,      EventKind::kStepStart,
      EventKind::kStepRetry,       EventKind::kStragglerKill,
      EventKind::kChaosInject,     EventKind::kBreakerTrip,
      EventKind::kBreakerState,    EventKind::kReplan,
      EventKind::kJobFailed,       EventKind::kTaskSpan,
      EventKind::kTaskRejected,
  };
  std::set<std::string> names;
  for (EventKind kind : kinds) {
    const std::string name = EventKindName(kind);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    EventKind parsed;
    ASSERT_TRUE(ParseEventKind(name, &parsed)) << name;
    EXPECT_EQ(parsed, kind) << name;
  }
  EventKind parsed;
  EXPECT_FALSE(ParseEventKind("not_a_kind", &parsed));
  EXPECT_FALSE(ParseEventKind("", &parsed));
}

// ------------------------------------------------------------------ JSON

TEST(EventJsonTest, OmitsDefaultFieldsAndEscapes) {
  JournalEvent event;
  event.seq = 7;
  event.kind = EventKind::kPlanChosen;
  const std::string minimal = EventToJson(event);
  EXPECT_NE(minimal.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(minimal.find("\"kind\":\"plan_chosen\""), std::string::npos);
  EXPECT_EQ(minimal.find("\"job\""), std::string::npos);
  EXPECT_EQ(minimal.find("\"step\""), std::string::npos);
  EXPECT_EQ(minimal.find("\"engine\""), std::string::npos);

  event.job = "job-1";
  event.step = 2;
  event.engine = "spark";
  event.code = "Transient";
  event.value = 1.5;
  event.detail = "say \"hi\"";
  const std::string full = EventToJson(event);
  EXPECT_NE(full.find("\"job\":\"job-1\""), std::string::npos);
  EXPECT_NE(full.find("\"step\":2"), std::string::npos);
  EXPECT_NE(full.find("\"engine\":\"spark\""), std::string::npos);
  EXPECT_NE(full.find("\"code\":\"Transient\""), std::string::npos);
  EXPECT_NE(full.find("say \\\"hi\\\""), std::string::npos);

  const std::string array =
      EventsToJson(std::vector<JournalEvent>{event, event});
  EXPECT_EQ(array.front(), '[');
  EXPECT_EQ(array.back(), ']');
}

// ----------------------------------------------------- Append and queries

TEST(EventJournalTest, AppendAssignsIncreasingSeqsAndQueryFilters) {
  EventJournal journal;
  journal.Append(MakeEvent(EventKind::kAdmissionAccept, "job-a"));
  journal.Append(MakeEvent(EventKind::kStepStart, "job-a", 0));
  journal.Append(MakeEvent(EventKind::kAdmissionAccept, "job-b"));
  journal.Append(MakeEvent(EventKind::kJobFailed, "job-a"));

  EXPECT_EQ(journal.head_seq(), 4u);
  EXPECT_EQ(journal.stats().appended, 4u);
  EXPECT_EQ(journal.stats().dropped, 0u);

  EventJournal::Filter all;
  const std::vector<JournalEvent> everything = journal.Query(all);
  ASSERT_EQ(everything.size(), 4u);
  for (size_t i = 1; i < everything.size(); ++i) {
    EXPECT_LT(everything[i - 1].seq, everything[i].seq);
  }

  EventJournal::Filter by_job;
  by_job.job = "job-a";
  const std::vector<JournalEvent> job_a = journal.Query(by_job);
  ASSERT_EQ(job_a.size(), 3u);
  EXPECT_EQ(job_a.back().kind, EventKind::kJobFailed);

  EventJournal::Filter by_kind;
  by_kind.has_kind = true;
  by_kind.kind = EventKind::kAdmissionAccept;
  EXPECT_EQ(journal.Query(by_kind).size(), 2u);

  EventJournal::Filter since;
  since.since_seq = everything[1].seq;
  const std::vector<JournalEvent> newer = journal.Query(since);
  ASSERT_EQ(newer.size(), 2u);
  EXPECT_GT(newer.front().seq, everything[1].seq);
}

TEST(EventJournalTest, LimitKeepsTheLatestMatches) {
  EventJournal journal;
  for (int i = 0; i < 10; ++i) {
    journal.Append(MakeEvent(EventKind::kStepStart, "job", i));
  }
  EventJournal::Filter filter;
  filter.limit = 3;
  const std::vector<JournalEvent> events = journal.Query(filter);
  ASSERT_EQ(events.size(), 3u);
  // The newest three survive, still in ascending seq order.
  EXPECT_EQ(events[0].step, 7);
  EXPECT_EQ(events[2].step, 9);
}

TEST(EventJournalTest, RingWrapDropsOldestAndCountsThem) {
  EventJournal::Options options;
  options.shards = 1;  // single shard: wrap order is deterministic
  options.capacity_per_shard = 4;
  EventJournal journal(options);
  for (int i = 0; i < 10; ++i) {
    journal.Append(MakeEvent(EventKind::kStepStart, "job", i));
  }
  EXPECT_EQ(journal.stats().appended, 10u);
  EXPECT_EQ(journal.stats().dropped, 6u);
  const std::vector<JournalEvent> events =
      journal.Query(EventJournal::Filter());
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().step, 6);
  EXPECT_EQ(events.back().step, 9);
}

TEST(EventJournalTest, DisabledJournalRecordsNothing) {
  EventJournal journal;
  journal.set_enabled(false);
  journal.Append(MakeEvent(EventKind::kStepStart, "job"));
  EXPECT_EQ(journal.head_seq(), 0u);
  EXPECT_TRUE(journal.Query(EventJournal::Filter()).empty());
  journal.set_enabled(true);
  journal.Append(MakeEvent(EventKind::kStepStart, "job"));
  EXPECT_EQ(journal.head_seq(), 1u);
}

TEST(JournalWriterTest, NullSafeAndBindsJobId) {
  const JournalWriter null_writer;
  EXPECT_FALSE(null_writer);
  null_writer.Emit(EventKind::kStepStart);  // must not crash

  EventJournal journal;
  const JournalWriter writer(&journal, "job-42");
  EXPECT_TRUE(writer);
  writer.Emit(EventKind::kStepRetry, 3, "spark", "Transient", 0.5, "retry");
  EventJournal::Filter filter;
  filter.job = "job-42";
  const std::vector<JournalEvent> events = journal.Query(filter);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kStepRetry);
  EXPECT_EQ(events[0].step, 3);
  EXPECT_EQ(events[0].engine, "spark");
  EXPECT_EQ(events[0].code, "Transient");
  EXPECT_DOUBLE_EQ(events[0].value, 0.5);
}

// -------------------------------------------------------- Concurrency

// N writer threads hammer a small journal (forcing constant ring wrap)
// while readers snapshot concurrently. Afterwards: every surviving event is
// one that a writer actually appended, per-shard ring order is strictly
// seq-ordered (Query sorts globally; uniqueness proves no seq was issued
// twice), and appended == survivors + dropped, so no event was silently
// lost. TSan (CI) checks the locking discipline on top.
TEST(EventJournalTest, ConcurrentWritersAndReadersLoseNothing) {
  EventJournal::Options options;
  options.shards = 4;
  options.capacity_per_shard = 64;  // small: wrap continuously
  EventJournal journal(options);

  constexpr int kWriters = 8;
  constexpr int kPerWriter = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&journal, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        JournalEvent event;
        event.kind = EventKind::kStepStart;
        event.job = "writer-" + std::to_string(w);
        event.step = i;
        journal.Append(std::move(event));
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&journal, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      EventJournal::Filter filter;
      filter.limit = 10000;
      const std::vector<JournalEvent> snapshot = journal.Query(filter);
      // Snapshots are consistent: sorted, unique seqs.
      for (size_t i = 1; i < snapshot.size(); ++i) {
        ASSERT_LT(snapshot[i - 1].seq, snapshot[i].seq);
      }
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kWriters) * static_cast<uint64_t>(kPerWriter);
  const EventJournal::Stats stats = journal.stats();
  EXPECT_EQ(stats.appended, kTotal);
  EXPECT_EQ(journal.head_seq(), kTotal);

  EventJournal::Filter filter;
  filter.limit = kTotal;
  const std::vector<JournalEvent> survivors = journal.Query(filter);
  EXPECT_EQ(stats.dropped + survivors.size(), kTotal);

  // Seqs are unique journal-wide and every survivor's payload matches what
  // its writer appended (writer-w step-i), i.e. no torn events.
  std::set<uint64_t> seqs;
  std::map<std::string, int> last_step;
  for (const JournalEvent& event : survivors) {
    EXPECT_TRUE(seqs.insert(event.seq).second) << "duplicate seq";
    ASSERT_EQ(event.kind, EventKind::kStepStart);
    ASSERT_GE(event.step, 0);
    ASSERT_LT(event.step, kPerWriter);
    // Per-writer program order: a writer's later appends carry later seqs,
    // so scanning survivors in seq order sees its steps increase.
    auto it = last_step.find(event.job);
    if (it != last_step.end()) {
      EXPECT_GT(event.step, it->second) << event.job;
      it->second = event.step;
    } else {
      last_step[event.job] = event.step;
    }
  }
}

}  // namespace
}  // namespace ires
