#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>

#include "core/rest_api.h"

namespace ires {
namespace {

class RestApiTest : public ::testing::Test {
 protected:
  RestApiTest() : api_(&server_) {}

  // Registers the LineCount artefacts of the §3.3 walkthrough via the API.
  void RegisterLineCount() {
    ASSERT_EQ(api_.Handle("POST", "/apiv1/datasets/asapServerLog",
                          "Constraints.Engine.FS=HDFS\n"
                          "Execution.path=hdfs:///log\n"
                          "Optimization.size=5e8\n"
                          "Optimization.documents=1000\n")
                  .code,
              201);
    ASSERT_EQ(api_.Handle("POST", "/apiv1/abstractOperators/LineCount",
                          "Constraints.OpSpecification.Algorithm.name="
                          "LineCount\n")
                  .code,
              201);
    ASSERT_EQ(api_.Handle("POST", "/apiv1/operators/LineCount_Spark",
                          "Constraints.Engine=Spark\n"
                          "Constraints.OpSpecification.Algorithm.name="
                          "LineCount\n"
                          "Constraints.Input0.Engine.FS=HDFS\n"
                          "Constraints.Output0.Engine.FS=HDFS\n")
                  .code,
              201);
  }

  IresServer server_;
  RestApi api_;
};

TEST_F(RestApiTest, UnknownRoutesReturn404) {
  EXPECT_EQ(api_.Handle("GET", "/nope").code, 404);
  EXPECT_EQ(api_.Handle("GET", "/apiv1/unicorns").code, 404);
  EXPECT_EQ(api_.Handle("DELETE", "/apiv1/operators/x").code, 404);
}

TEST_F(RestApiTest, EnginesListAndToggle) {
  ApiResponse list = api_.Handle("GET", "/apiv1/engines");
  ASSERT_EQ(list.code, 200);
  EXPECT_NE(list.body.find("\"Spark\":\"ON\""), std::string::npos);

  EXPECT_EQ(api_.Handle("PUT", "/apiv1/engines/Spark/availability", "off")
                .code,
            200);
  list = api_.Handle("GET", "/apiv1/engines");
  EXPECT_NE(list.body.find("\"Spark\":\"OFF\""), std::string::npos);

  EXPECT_EQ(api_.Handle("PUT", "/apiv1/engines/Spark/availability", "maybe")
                .code,
            400);
  EXPECT_EQ(api_.Handle("PUT", "/apiv1/engines/NoSuch/availability", "on")
                .code,
            404);
}

TEST_F(RestApiTest, DescriptionCrud) {
  RegisterLineCount();
  // Listing.
  ApiResponse list = api_.Handle("GET", "/apiv1/operators");
  EXPECT_NE(list.body.find("LineCount_Spark"), std::string::npos);
  // Fetch round-trips the description.
  ApiResponse get = api_.Handle("GET", "/apiv1/operators/LineCount_Spark");
  ASSERT_EQ(get.code, 200);
  EXPECT_NE(get.body.find("Constraints.Engine=Spark"), std::string::npos);
  // Missing + duplicate.
  EXPECT_EQ(api_.Handle("GET", "/apiv1/operators/none").code, 404);
  EXPECT_EQ(api_.Handle("POST", "/apiv1/operators/LineCount_Spark",
                        "Constraints.Engine=Spark\n")
                .code,
            409);
  // Malformed description.
  EXPECT_EQ(api_.Handle("POST", "/apiv1/datasets/bad", "no equals").code,
            400);
}

TEST_F(RestApiTest, WorkflowLifecycle) {
  RegisterLineCount();
  const std::string graph =
      "asapServerLog,LineCount,0\n"
      "LineCount,d1,0\n"
      "d1,$$target\n";
  ASSERT_EQ(api_.Handle("POST", "/apiv1/workflows/LineCountWorkflow", graph)
                .code,
            201);
  EXPECT_EQ(api_.Handle("POST", "/apiv1/workflows/LineCountWorkflow", graph)
                .code,
            409);
  ApiResponse list = api_.Handle("GET", "/apiv1/workflows");
  EXPECT_NE(list.body.find("LineCountWorkflow"), std::string::npos);

  ApiResponse plan =
      api_.Handle("POST", "/apiv1/workflows/LineCountWorkflow/materialize");
  ASSERT_EQ(plan.code, 200) << plan.body;
  EXPECT_NE(plan.body.find("\"estimatedSeconds\":"), std::string::npos);
  EXPECT_NE(plan.body.find("LineCount_Spark"), std::string::npos);

  ApiResponse run =
      api_.Handle("POST", "/apiv1/workflows/LineCountWorkflow/execute");
  ASSERT_EQ(run.code, 200) << run.body;
  EXPECT_NE(run.body.find("\"executionSeconds\":"), std::string::npos);
  EXPECT_NE(run.body.find("\"replans\":0"), std::string::npos);
}

TEST_F(RestApiTest, MaterializeFailsCleanlyWithoutEngines) {
  RegisterLineCount();
  (void)api_.Handle("POST", "/apiv1/workflows/wf",
                    "asapServerLog,LineCount,0\nLineCount,d1,0\n"
                    "d1,$$target\n");
  (void)api_.Handle("PUT", "/apiv1/engines/Spark/availability", "off");
  ApiResponse plan = api_.Handle("POST", "/apiv1/workflows/wf/materialize");
  EXPECT_EQ(plan.code, 422);
}

TEST_F(RestApiTest, InvalidWorkflowRejected) {
  RegisterLineCount();
  // No $$target line.
  EXPECT_EQ(api_.Handle("POST", "/apiv1/workflows/broken",
                        "asapServerLog,LineCount,0\nLineCount,d1,0\n")
                .code,
            422);
}

// ----------------------------------------------------- telemetry surface

// Extracts the numeric value of `"key":<number>` from a JSON body.
double JsonNumber(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = body.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << body;
  if (at == std::string::npos) return -1.0;
  return std::strtod(body.c_str() + at + needle.size(), nullptr);
}

// Polls GET /apiv1/jobs/{id} until the job reaches a terminal state.
std::string AwaitTerminal(RestApi* api, const std::string& job_id) {
  for (int i = 0; i < 1000; ++i) {
    ApiResponse record = api->Handle("GET", "/apiv1/jobs/" + job_id);
    EXPECT_EQ(record.code, 200) << record.body;
    for (const char* state : {"SUCCEEDED", "FAILED", "CANCELLED"}) {
      if (record.body.find("\"state\":\"" + std::string(state) + "\"") !=
          std::string::npos) {
        return record.body;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return "";
}

TEST_F(RestApiTest, MetricsEndpointMovesWhenJobsRun) {
  RegisterLineCount();
  const std::string graph =
      "asapServerLog,LineCount,0\nLineCount,d1,0\nd1,$$target\n";
  ASSERT_EQ(api_.Handle("POST", "/apiv1/workflows/lc", graph).code, 201);

  // Two sync runs (miss then hit) plus one async job so every subsystem's
  // instruments move: REST latency, pool wait, plan cache, planner timing,
  // per-engine steps and model refinement.
  ASSERT_EQ(api_.Handle("POST", "/apiv1/workflows/lc/execute").code, 200);
  ASSERT_EQ(api_.Handle("POST", "/apiv1/workflows/lc/execute").code, 200);
  ApiResponse submit =
      api_.Handle("POST", "/apiv1/workflows/lc/execute?mode=async");
  ASSERT_EQ(submit.code, 202) << submit.body;
  const size_t start = submit.body.find("job-");
  const std::string job_id =
      submit.body.substr(start, submit.body.find('"', start) - start);
  ASSERT_NE(AwaitTerminal(&api_, job_id).find("SUCCEEDED"),
            std::string::npos);

  ApiResponse metrics = api_.Handle("GET", "/apiv1/metrics");
  ASSERT_EQ(metrics.code, 200);
  const std::string& text = metrics.body;

  // REST latency histogram, labelled by normalized route.
  EXPECT_NE(text.find("# TYPE ires_http_request_seconds histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ires_http_request_seconds_count{method=\"POST\","
                      "route=\"/apiv1/workflows/{name}/execute\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("ires_http_requests_total{code=\"201\",method=\"POST\","
                "route=\"/apiv1/workflows/{name}\"} 1"),
      std::string::npos)
      << text;

  // Plan cache: 1 miss (first plan) then hits for the repeats.
  EXPECT_NE(text.find("ires_plan_cache_events_total{event=\"miss\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ires_plan_cache_events_total{event=\"hit\"} 2"),
            std::string::npos)
      << text;

  // Planner timing (the miss ran the DP once, in the smallest size bucket).
  EXPECT_NE(text.find("ires_planner_plan_seconds_count{dag_nodes=\"3-4\"} "
                      "1"),
            std::string::npos)
      << text;

  // Per-engine execution and model refinement: 3 runs of the one-step
  // Spark plan.
  EXPECT_NE(text.find("ires_engine_steps_total{engine=\"Spark\","
                      "kind=\"operator\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ires_engine_sim_milliseconds_total{engine="
                      "\"Spark\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ires_model_refinements_total{engine=\"Spark\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ires_model_refine_relative_error_count 3"),
            std::string::npos)
      << text;

  // Serving-layer lifecycle + pool instruments moved for the async job.
  EXPECT_NE(text.find("ires_jobs_total{event=\"succeeded\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ires_job_queue_wait_seconds_count 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ires_sched_task_wait_seconds_count 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ires_sched_pending_tasks 0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("ires_sched_tasks_total{event=\"executed\"} 1"),
            std::string::npos)
      << text;
}

TEST_F(RestApiTest, HealthzReportsQueueState) {
  ApiResponse health = api_.Handle("GET", "/apiv1/healthz");
  ASSERT_EQ(health.code, 200) << health.body;
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"queueDepth\":0"), std::string::npos);
  EXPECT_NE(health.body.find("\"queueCapacity\":64"), std::string::npos);
  EXPECT_NE(health.body.find("\"saturation\":0.000"), std::string::npos);
  EXPECT_EQ(JsonNumber(health.body, "workers"), 4.0);
}

// Sustained scheduler backlog (measured on an injected fake clock) must
// degrade the health probe without failing it: the replica is falling
// behind on the shared execution substrate but can still serve.
TEST(RestApiSchedulerHealthTest, SustainedBacklogDegradesHealthz) {
  std::atomic<double> now{50.0};
  IresServer::Config config;
  config.scheduler_workers = 1;
  config.scheduler_clock = [&now] { return now.load(); };
  IresServer server(config);
  RestApi api(&server);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  TaskScheduler& sched = server.scheduler();
  ASSERT_TRUE(sched.Submit([released] { released.wait(); }));
  // Let the single worker pick the blocker up, then queue pure backlog
  // above workers * backlog_per_worker (1 * 4).
  while (sched.pending() != 0) std::this_thread::yield();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(sched.Submit([released] { released.wait(); }));
  }

  // First probe arms the backlog timer; depth is high but not yet
  // *sustained*, so the replica still reports ok.
  ApiResponse first = api.Handle("GET", "/apiv1/healthz");
  ASSERT_EQ(first.code, 200) << first.body;
  EXPECT_NE(first.body.find("\"backlogged\":false"), std::string::npos)
      << first.body;
  EXPECT_NE(first.body.find("\"status\":\"ok\""), std::string::npos)
      << first.body;

  now.store(52.5);  // 2.5s of sustained backlog > the 1s grace window
  ApiResponse degraded = api.Handle("GET", "/apiv1/healthz");
  ASSERT_EQ(degraded.code, 200) << degraded.body;  // degraded, not dead
  EXPECT_NE(degraded.body.find("\"status\":\"degraded\""), std::string::npos)
      << degraded.body;
  EXPECT_NE(degraded.body.find("\"backlogged\":true"), std::string::npos)
      << degraded.body;
  EXPECT_NE(degraded.body.find("\"backlogSeconds\":2.500"), std::string::npos)
      << degraded.body;

  release.set_value();
  while (sched.pending() != 0) std::this_thread::yield();
  ApiResponse healthy = api.Handle("GET", "/apiv1/healthz");
  EXPECT_NE(healthy.body.find("\"status\":\"ok\""), std::string::npos)
      << healthy.body;
}

TEST_F(RestApiTest, JobTraceEndpointReturnsChromeTraceJson) {
  RegisterLineCount();
  const std::string graph =
      "asapServerLog,LineCount,0\nLineCount,d1,0\nd1,$$target\n";
  ASSERT_EQ(api_.Handle("POST", "/apiv1/workflows/lc", graph).code, 201);
  ApiResponse submit =
      api_.Handle("POST", "/apiv1/workflows/lc/execute?mode=async");
  ASSERT_EQ(submit.code, 202) << submit.body;
  const size_t start = submit.body.find("job-");
  const std::string job_id =
      submit.body.substr(start, submit.body.find('"', start) - start);
  const std::string record = AwaitTerminal(&api_, job_id);
  ASSERT_NE(record.find("SUCCEEDED"), std::string::npos) << record;

  ApiResponse trace =
      api_.Handle("GET", "/apiv1/jobs/" + job_id + "/trace");
  ASSERT_EQ(trace.code, 200) << trace.body;
  const std::string& json = trace.body;
  // The span taxonomy covers queue-wait → planning (cache lookup + DP) →
  // execution → per-step enforcement → refinement.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"" + job_id + "\""), std::string::npos);
  for (const char* span :
       {"job.queue_wait", "job.plan", "plan.cache_lookup", "job.execute",
        "LineCount_Spark", "model.refine"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(span) + "\""),
              std::string::npos)
        << "missing span " << span << " in " << json;
  }
  // The step span runs on the simulated timeline and names its engine.
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"engine\":\"Spark\""), std::string::npos);

  // Consistency with the job record: the execute span reports the same
  // simulated seconds the record carries.
  const double recorded = JsonNumber(record, "executionSeconds");
  char expected[48];
  std::snprintf(expected, sizeof(expected),
                "\"simulatedSeconds\":\"%.3f\"", recorded);
  EXPECT_NE(json.find(expected), std::string::npos)
      << expected << " not in " << json;

  // Unknown job ids keep the uniform envelope.
  EXPECT_EQ(api_.Handle("GET", "/apiv1/jobs/job-009999/trace").code, 404);
}

TEST_F(RestApiTest, FailedJobsStillCarryTimings) {
  // A workflow that passes admission linting (implementation exists, engine
  // on) but is memory-infeasible at planning time: its only implementation
  // runs on centralized Java (3 GB budget) against a 10 TB input. Planning
  // fails, the job goes FAILED — and must still record queue + planning
  // durations (the fix for silent terminal jobs).
  ASSERT_EQ(api_.Handle("POST", "/apiv1/datasets/asapServerLog",
                        "Constraints.Engine.FS=HDFS\n"
                        "Execution.path=hdfs:///log\n"
                        "Optimization.size=1e13\n"
                        "Optimization.documents=1000\n")
                .code,
            201);
  ASSERT_EQ(api_.Handle("POST", "/apiv1/abstractOperators/Ghost",
                        "Constraints.OpSpecification.Algorithm.name=Ghost\n")
                .code,
            201);
  ASSERT_EQ(api_.Handle("POST", "/apiv1/operators/Ghost_Java",
                        "Constraints.Engine=Java\n"
                        "Constraints.OpSpecification.Algorithm.name=Ghost\n")
                .code,
            201);
  ASSERT_EQ(api_.Handle("POST", "/apiv1/workflows/ghost",
                        "asapServerLog,Ghost,0\nGhost,d1,0\nd1,$$target\n")
                .code,
            201);
  ApiResponse submit =
      api_.Handle("POST", "/apiv1/workflows/ghost/execute?mode=async");
  ASSERT_EQ(submit.code, 202) << submit.body;
  const size_t start = submit.body.find("job-");
  const std::string job_id =
      submit.body.substr(start, submit.body.find('"', start) - start);
  const std::string record = AwaitTerminal(&api_, job_id);
  ASSERT_NE(record.find("\"state\":\"FAILED\""), std::string::npos)
      << record;

  EXPECT_GT(JsonNumber(record, "queueSeconds"), 0.0) << record;
  EXPECT_GT(JsonNumber(record, "planSeconds"), 0.0) << record;
  EXPECT_GT(JsonNumber(record, "finishedAt"), 0.0) << record;
  EXPECT_NE(record.find("\"error\":"), std::string::npos);

  // The trace still closes its spans: queue wait was picked up and the
  // plan span carries ok=false.
  ApiResponse trace =
      api_.Handle("GET", "/apiv1/jobs/" + job_id + "/trace");
  ASSERT_EQ(trace.code, 200);
  EXPECT_NE(trace.body.find("\"name\":\"job.queue_wait\""),
            std::string::npos);
  EXPECT_NE(trace.body.find("\"name\":\"job.plan\""), std::string::npos);
  EXPECT_NE(trace.body.find("\"ok\":\"false\""), std::string::npos);
}

TEST(JsonEscapeTest, EscapesControlAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace ires
