#include <gtest/gtest.h>

#include "core/rest_api.h"

namespace ires {
namespace {

class RestApiTest : public ::testing::Test {
 protected:
  RestApiTest() : api_(&server_) {}

  // Registers the LineCount artefacts of the §3.3 walkthrough via the API.
  void RegisterLineCount() {
    ASSERT_EQ(api_.Handle("POST", "/apiv1/datasets/asapServerLog",
                          "Constraints.Engine.FS=HDFS\n"
                          "Execution.path=hdfs:///log\n"
                          "Optimization.size=5e8\n"
                          "Optimization.documents=1000\n")
                  .code,
              201);
    ASSERT_EQ(api_.Handle("POST", "/apiv1/abstractOperators/LineCount",
                          "Constraints.OpSpecification.Algorithm.name="
                          "LineCount\n")
                  .code,
              201);
    ASSERT_EQ(api_.Handle("POST", "/apiv1/operators/LineCount_Spark",
                          "Constraints.Engine=Spark\n"
                          "Constraints.OpSpecification.Algorithm.name="
                          "LineCount\n"
                          "Constraints.Input0.Engine.FS=HDFS\n"
                          "Constraints.Output0.Engine.FS=HDFS\n")
                  .code,
              201);
  }

  IresServer server_;
  RestApi api_;
};

TEST_F(RestApiTest, UnknownRoutesReturn404) {
  EXPECT_EQ(api_.Handle("GET", "/nope").code, 404);
  EXPECT_EQ(api_.Handle("GET", "/apiv1/unicorns").code, 404);
  EXPECT_EQ(api_.Handle("DELETE", "/apiv1/operators/x").code, 404);
}

TEST_F(RestApiTest, EnginesListAndToggle) {
  ApiResponse list = api_.Handle("GET", "/apiv1/engines");
  ASSERT_EQ(list.code, 200);
  EXPECT_NE(list.body.find("\"Spark\":\"ON\""), std::string::npos);

  EXPECT_EQ(api_.Handle("PUT", "/apiv1/engines/Spark/availability", "off")
                .code,
            200);
  list = api_.Handle("GET", "/apiv1/engines");
  EXPECT_NE(list.body.find("\"Spark\":\"OFF\""), std::string::npos);

  EXPECT_EQ(api_.Handle("PUT", "/apiv1/engines/Spark/availability", "maybe")
                .code,
            400);
  EXPECT_EQ(api_.Handle("PUT", "/apiv1/engines/NoSuch/availability", "on")
                .code,
            404);
}

TEST_F(RestApiTest, DescriptionCrud) {
  RegisterLineCount();
  // Listing.
  ApiResponse list = api_.Handle("GET", "/apiv1/operators");
  EXPECT_NE(list.body.find("LineCount_Spark"), std::string::npos);
  // Fetch round-trips the description.
  ApiResponse get = api_.Handle("GET", "/apiv1/operators/LineCount_Spark");
  ASSERT_EQ(get.code, 200);
  EXPECT_NE(get.body.find("Constraints.Engine=Spark"), std::string::npos);
  // Missing + duplicate.
  EXPECT_EQ(api_.Handle("GET", "/apiv1/operators/none").code, 404);
  EXPECT_EQ(api_.Handle("POST", "/apiv1/operators/LineCount_Spark",
                        "Constraints.Engine=Spark\n")
                .code,
            409);
  // Malformed description.
  EXPECT_EQ(api_.Handle("POST", "/apiv1/datasets/bad", "no equals").code,
            400);
}

TEST_F(RestApiTest, WorkflowLifecycle) {
  RegisterLineCount();
  const std::string graph =
      "asapServerLog,LineCount,0\n"
      "LineCount,d1,0\n"
      "d1,$$target\n";
  ASSERT_EQ(api_.Handle("POST", "/apiv1/workflows/LineCountWorkflow", graph)
                .code,
            201);
  EXPECT_EQ(api_.Handle("POST", "/apiv1/workflows/LineCountWorkflow", graph)
                .code,
            409);
  ApiResponse list = api_.Handle("GET", "/apiv1/workflows");
  EXPECT_NE(list.body.find("LineCountWorkflow"), std::string::npos);

  ApiResponse plan =
      api_.Handle("POST", "/apiv1/workflows/LineCountWorkflow/materialize");
  ASSERT_EQ(plan.code, 200) << plan.body;
  EXPECT_NE(plan.body.find("\"estimatedSeconds\":"), std::string::npos);
  EXPECT_NE(plan.body.find("LineCount_Spark"), std::string::npos);

  ApiResponse run =
      api_.Handle("POST", "/apiv1/workflows/LineCountWorkflow/execute");
  ASSERT_EQ(run.code, 200) << run.body;
  EXPECT_NE(run.body.find("\"executionSeconds\":"), std::string::npos);
  EXPECT_NE(run.body.find("\"replans\":0"), std::string::npos);
}

TEST_F(RestApiTest, MaterializeFailsCleanlyWithoutEngines) {
  RegisterLineCount();
  (void)api_.Handle("POST", "/apiv1/workflows/wf",
                    "asapServerLog,LineCount,0\nLineCount,d1,0\n"
                    "d1,$$target\n");
  (void)api_.Handle("PUT", "/apiv1/engines/Spark/availability", "off");
  ApiResponse plan = api_.Handle("POST", "/apiv1/workflows/wf/materialize");
  EXPECT_EQ(plan.code, 422);
}

TEST_F(RestApiTest, InvalidWorkflowRejected) {
  RegisterLineCount();
  // No $$target line.
  EXPECT_EQ(api_.Handle("POST", "/apiv1/workflows/broken",
                        "asapServerLog,LineCount,0\nLineCount,d1,0\n")
                .code,
            422);
}

TEST(JsonEscapeTest, EscapesControlAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace ires
