#include <gtest/gtest.h>

#include "engines/standard_engines.h"
#include "planner/dp_planner.h"
#include "planner/materialization_report.h"
#include "workloadgen/asap_workflows.h"

namespace ires {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : registry_(MakeStandardEngineRegistry()) {}

  Result<ExecutionPlan> PlanWorkload(const GeneratedWorkload& w,
                                     DpPlanner::Options options = {}) {
    DpPlanner planner(&w.library, registry_.get());
    return planner.Plan(w.graph, options);
  }

  // The engine chosen for the (unique) operator with the given algorithm.
  std::string EngineFor(const ExecutionPlan& plan,
                        const std::string& algorithm) {
    for (const PlanStep& step : plan.steps) {
      if (step.kind == PlanStep::Kind::kOperator &&
          step.algorithm == algorithm) {
        return step.engine;
      }
    }
    return "";
  }

  std::unique_ptr<EngineRegistry> registry_;
};

// ---- Engine selection across graph scales (Fig. 11). ----------------------
TEST_F(PlannerTest, PicksJavaForSmallGraphs) {
  auto plan = PlanWorkload(MakeGraphAnalyticsWorkflow(100e3));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(EngineFor(plan.value(), "Pagerank"), "Java");
}

TEST_F(PlannerTest, PicksHamaForMediumGraphs) {
  auto plan = PlanWorkload(MakeGraphAnalyticsWorkflow(10e6));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(EngineFor(plan.value(), "Pagerank"), "Hama");
}

TEST_F(PlannerTest, PicksSparkForLargeGraphs) {
  auto plan = PlanWorkload(MakeGraphAnalyticsWorkflow(100e6));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(EngineFor(plan.value(), "Pagerank"), "Spark");
}

// ---- Hybrid text-analytics plan (Fig. 12). ---------------------------------
TEST_F(PlannerTest, SmallCorpusStaysFullyCentralized) {
  auto plan = PlanWorkload(MakeTextAnalyticsWorkflow(2e3));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(EngineFor(plan.value(), "TF_IDF"), "scikit");
  EXPECT_EQ(EngineFor(plan.value(), "kmeans"), "scikit");
}

TEST_F(PlannerTest, MidCorpusGetsHybridPlanWithMove) {
  auto plan = PlanWorkload(MakeTextAnalyticsWorkflow(20e3));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(EngineFor(plan.value(), "TF_IDF"), "scikit");
  EXPECT_EQ(EngineFor(plan.value(), "kmeans"), "Spark");
  // The planner must have inserted the Local->HDFS move/transform operator.
  int moves = 0;
  for (const PlanStep& step : plan.value().steps) {
    moves += step.kind == PlanStep::Kind::kMove;
  }
  EXPECT_EQ(moves, 1);
}

TEST_F(PlannerTest, LargeCorpusGoesFullSpark) {
  auto plan = PlanWorkload(MakeTextAnalyticsWorkflow(200e3));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(EngineFor(plan.value(), "TF_IDF"), "Spark");
  EXPECT_EQ(EngineFor(plan.value(), "kmeans"), "Spark");
}

TEST_F(PlannerTest, HybridBeatsBothSingleEnginePlans) {
  // Deliverable §4.1: for mid-size corpora the mixed plan beats the best
  // single-engine plan (by up to ~30%).
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(15e3);
  auto multi = PlanWorkload(w);
  ASSERT_TRUE(multi.ok());

  double best_single = 1e18;
  for (const std::string& only : {std::string("scikit"), std::string("Spark")}) {
    auto solo_registry = MakeStandardEngineRegistry();
    for (const std::string& name : solo_registry->Names()) {
      if (name != only) (void)solo_registry->SetAvailable(name, false);
    }
    DpPlanner planner(&w.library, solo_registry.get());
    auto plan = planner.Plan(w.graph, {});
    ASSERT_TRUE(plan.ok()) << only << ": " << plan.status();
    best_single = std::min(best_single, plan.value().metric);
  }
  EXPECT_LT(multi.value().metric, best_single);
  EXPECT_GT(multi.value().metric, best_single * 0.6);  // ~10-35% gain
}

// ---- Relational workflow placement (Fig. 13). ------------------------------
TEST_F(PlannerTest, RelationalQueriesRunWhereTheirTablesLive) {
  auto plan = PlanWorkload(MakeRelationalWorkflow(10.0));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(EngineFor(plan.value(), "SPJQuery"), "PostgreSQL");
  // q2 and q3 share the SPJQuery/SPJHeavyQuery algorithms; inspect names.
  std::map<std::string, std::string> by_name;
  for (const PlanStep& step : plan.value().steps) {
    if (step.kind == PlanStep::Kind::kOperator) {
      by_name[step.name] = step.engine;
    }
  }
  EXPECT_EQ(by_name["SPJQuery_PostgreSQL"], "PostgreSQL");
  EXPECT_EQ(by_name["SPJQuery_MemSQL"], "MemSQL");
  EXPECT_EQ(by_name["SPJHeavyQuery_Spark"], "Spark");
}

TEST_F(PlannerTest, MemSqlExcludedWhenWorkingSetTooLarge) {
  // At 50 GB the q3 inputs cannot fit MemSQL; the plan must not place the
  // heavy query there.
  auto plan = PlanWorkload(MakeRelationalWorkflow(50.0));
  ASSERT_TRUE(plan.ok()) << plan.status();
  for (const PlanStep& step : plan.value().steps) {
    if (step.algorithm == "SPJHeavyQuery") {
      EXPECT_NE(step.engine, "MemSQL");
    }
  }
}

// ---- Mechanics. -------------------------------------------------------------
TEST_F(PlannerTest, PlanIsDependencyOrderedAndAcyclic) {
  auto plan = PlanWorkload(MakeRelationalWorkflow(5.0));
  ASSERT_TRUE(plan.ok());
  for (const PlanStep& step : plan.value().steps) {
    for (int dep : step.deps) {
      EXPECT_LT(dep, step.id);  // topological emission order
    }
  }
}

TEST_F(PlannerTest, EstimatesArePositiveAndConsistent) {
  auto plan = PlanWorkload(MakeTextAnalyticsWorkflow(30e3));
  ASSERT_TRUE(plan.ok());
  double sum = 0.0;
  for (const PlanStep& step : plan.value().steps) {
    EXPECT_GT(step.estimated_seconds, 0.0);
    sum += step.estimated_seconds;
  }
  // Critical path <= serialized sum; both positive.
  EXPECT_LE(plan.value().estimated_seconds, sum + 1e-9);
  EXPECT_GT(plan.value().estimated_seconds, 0.0);
  // For min-time policy, the DP metric is the serialized seconds.
  EXPECT_NEAR(plan.value().metric, sum, 1e-6);
}

TEST_F(PlannerTest, UnavailableEngineExcludedAtPlanning) {
  (void)registry_->SetAvailable("Java", false);
  auto plan = PlanWorkload(MakeGraphAnalyticsWorkflow(100e3));
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(EngineFor(plan.value(), "Pagerank"), "Java");
}

TEST_F(PlannerTest, NoFeasiblePlanReported) {
  // Kill every engine that implements Pagerank.
  for (const char* name : {"Java", "Hama", "Spark"}) {
    (void)registry_->SetAvailable(name, false);
  }
  auto plan = PlanWorkload(MakeGraphAnalyticsWorkflow(1e6));
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PlannerTest, MissingSourceDatasetReported) {
  GeneratedWorkload w = MakeGraphAnalyticsWorkflow(1e6);
  GeneratedWorkload empty;
  empty.graph = w.graph;
  // Library without the dataset: copy operators only.
  for (const auto& [name, op] : w.library.abstract()) {
    (void)empty.library.AddAbstract(op);
  }
  for (const auto& [name, op] : w.library.materialized()) {
    (void)empty.library.AddMaterialized(op);
  }
  auto plan = PlanWorkload(empty);
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST_F(PlannerTest, MaterializedIntermediateShortCircuitsUpstream) {
  // Replanning: when "vectors" already exists, the tf-idf operator must not
  // appear in the plan.
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  DpPlanner::Options options;
  DatasetInstance vectors;
  vectors.store = "HDFS";
  vectors.format = "arff";
  vectors.bytes = 20e3 * kBytesPerDocument * 0.5;
  vectors.records = 20e3;
  options.materialized_intermediates["vectors"] = vectors;
  auto plan = PlanWorkload(w, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(EngineFor(plan.value(), "TF_IDF"), "");  // not scheduled
  EXPECT_NE(EngineFor(plan.value(), "kmeans"), "");
}

TEST_F(PlannerTest, MaterializedTargetYieldsEmptyPlan) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  DpPlanner::Options options;
  options.materialized_intermediates["clusters"] =
      DatasetInstance{"clusters", "HDFS", "clusters", 1e6, 1e3};
  auto plan = PlanWorkload(w, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().steps.empty());
  EXPECT_EQ(plan.value().metric, 0.0);
}

TEST_F(PlannerTest, MinimizeCostPolicyCanDifferFromMinTime) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(5e6);
  DpPlanner::Options time_options;
  time_options.policy = OptimizationPolicy::MinimizeTime();
  auto time_plan = PlanWorkload(w, time_options);
  DpPlanner::Options cost_options;
  cost_options.policy = OptimizationPolicy::MinimizeCost();
  auto cost_plan = PlanWorkload(w, cost_options);
  ASSERT_TRUE(time_plan.ok());
  ASSERT_TRUE(cost_plan.ok());
  // Cost policy counts resources: the 16-core engines look much worse.
  EXPECT_LE(cost_plan.value().estimated_cost,
            time_plan.value().estimated_cost + 1e-9);
}

TEST_F(PlannerTest, WeightedPolicyInterpolates) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(5e6);
  DpPlanner::Options options;
  options.policy = OptimizationPolicy::Weighted(1.0, 0.001);
  auto plan = PlanWorkload(w, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan.value().metric, 0.0);
}

TEST_F(PlannerTest, MultiOutputOperatorRunsOnce) {
  // A split operator with two output ports feeding two branches that merge
  // again: the producing run must appear exactly once in the plan, with
  // both branches depending on it.
  GeneratedWorkload w;
  MetadataTree src_meta;
  src_meta.Set("Constraints.Engine.FS", "HDFS");
  src_meta.Set("Constraints.type", "text");
  src_meta.Set("Execution.path", "sim://corpus");
  src_meta.Set("Optimization.size", "1e9");
  (void)w.library.AddDataset(Dataset("corpus", src_meta));

  auto add_op = [&](const std::string& algo, int outputs) {
    MetadataTree abstract_meta;
    abstract_meta.Set("Constraints.OpSpecification.Algorithm.name", algo);
    (void)w.library.AddAbstract(AbstractOperator(algo, abstract_meta));
    MetadataTree meta;
    meta.Set("Constraints.Engine", "Spark");
    meta.Set("Constraints.OpSpecification.Algorithm.name", algo);
    for (int port = 0; port < 2; ++port) {
      meta.Set("Constraints.Input" + std::to_string(port) + ".Engine.FS",
               "HDFS");
    }
    for (int port = 0; port < outputs; ++port) {
      meta.Set("Constraints.Output" + std::to_string(port) + ".Engine.FS",
               "HDFS");
      meta.Set("Constraints.Output" + std::to_string(port) + ".type",
               "text");
    }
    (void)w.library.AddMaterialized(
        MaterializedOperator(algo + "_Spark", meta));
  };
  add_op("Split", 2);
  add_op("TrainModel", 1);
  add_op("Evaluate", 1);
  add_op("Merge", 1);

  w.graph.AddDataset("corpus");
  w.graph.AddOperator("Split");
  (void)w.graph.Connect("corpus", "Split");
  w.graph.AddDataset("train");
  w.graph.AddDataset("test");
  (void)w.graph.Connect("Split", "train", 0);
  (void)w.graph.Connect("Split", "test", 1);
  w.graph.AddOperator("TrainModel");
  (void)w.graph.Connect("train", "TrainModel");
  w.graph.AddDataset("model");
  (void)w.graph.Connect("TrainModel", "model");
  w.graph.AddOperator("Evaluate");
  (void)w.graph.Connect("test", "Evaluate");
  w.graph.AddDataset("metrics");
  (void)w.graph.Connect("Evaluate", "metrics");
  w.graph.AddOperator("Merge");
  (void)w.graph.Connect("model", "Merge", 0);
  (void)w.graph.Connect("metrics", "Merge", 1);
  w.graph.AddDataset("report");
  (void)w.graph.Connect("Merge", "report");
  (void)w.graph.SetTarget("report");

  auto plan = PlanWorkload(w);
  ASSERT_TRUE(plan.ok()) << plan.status();
  int split_runs = 0, split_id = -1;
  for (const PlanStep& step : plan.value().steps) {
    if (step.algorithm == "Split") {
      ++split_runs;
      split_id = step.id;
      EXPECT_EQ(step.outputs.size(), 2u);
    }
  }
  EXPECT_EQ(split_runs, 1);
  // Both mid-stage operators depend on the single split run.
  for (const PlanStep& step : plan.value().steps) {
    if (step.algorithm == "TrainModel" || step.algorithm == "Evaluate") {
      ASSERT_EQ(step.deps.size(), 1u);
      EXPECT_EQ(step.deps[0], split_id);
    }
  }
}

TEST_F(PlannerTest, MaterializationReportListsAlternatives) {
  // The Fig. 19 view: every implementation of every operator with the
  // chosen one flagged and infeasible ones explained.
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(100e6);
  auto plan = PlanWorkload(w);
  ASSERT_TRUE(plan.ok());
  auto report = BuildMaterializationReport(w.graph, w.library, *registry_,
                                           plan.value());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report.value().operators.size(), 1u);
  const auto& entry = report.value().operators[0];
  EXPECT_TRUE(entry.scheduled);
  ASSERT_EQ(entry.alternatives.size(), 3u);  // Java, Hama, Spark
  int chosen = 0, infeasible = 0;
  for (const OperatorAlternative& alt : entry.alternatives) {
    chosen += alt.chosen;
    infeasible += !alt.feasible;
    if (alt.chosen) {
      EXPECT_EQ(alt.engine, "Spark");
    }
  }
  EXPECT_EQ(chosen, 1);
  EXPECT_EQ(infeasible, 2);  // Java + Hama OOM at 100M edges
  const std::string text = report.value().ToString();
  EXPECT_NE(text.find("[*] Pagerank_Spark"), std::string::npos);
  EXPECT_NE(text.find("[x] Pagerank_Java"), std::string::npos);
}

TEST_F(PlannerTest, MaterializationReportMarksReplannedAwayOperators) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  DpPlanner::Options options;
  options.materialized_intermediates["vectors"] =
      DatasetInstance{"vectors", "HDFS", "arff", 1e8, 20e3};
  auto plan = PlanWorkload(w, options);
  ASSERT_TRUE(plan.ok());
  auto report = BuildMaterializationReport(w.graph, w.library, *registry_,
                                           plan.value());
  ASSERT_TRUE(report.ok());
  for (const auto& entry : report.value().operators) {
    if (entry.operator_node == "tfidf") {
      EXPECT_FALSE(entry.scheduled);
    }
    if (entry.operator_node == "kmeans") {
      EXPECT_TRUE(entry.scheduled);
    }
  }
}

TEST_F(PlannerTest, WorkflowToDotRendersAbstractGraph) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  const std::string dot = w.graph.ToDot();
  EXPECT_NE(dot.find("digraph workflow"), std::string::npos);
  EXPECT_NE(dot.find("tfidf"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // the target
}

TEST_F(PlannerTest, ToDotRendersStepsAndEdges) {
  auto plan = PlanWorkload(MakeTextAnalyticsWorkflow(20e3));
  ASSERT_TRUE(plan.ok());
  const std::string dot = plan.value().ToDot();
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  EXPECT_NE(dot.find("TF_IDF_scikit"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("shape=folder"), std::string::npos);  // source dataset
}

TEST_F(PlannerTest, HelloWorldChainPlansAllFourOperators) {
  auto plan = PlanWorkload(MakeHelloWorldWorkflow());
  ASSERT_TRUE(plan.ok()) << plan.status();
  int operators = 0;
  for (const PlanStep& step : plan.value().steps) {
    operators += step.kind == PlanStep::Kind::kOperator;
  }
  EXPECT_EQ(operators, 4);
}

}  // namespace
}  // namespace ires
