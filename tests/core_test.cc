#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/ires_server.h"
#include "engines/standard_engines.h"
#include "workloadgen/asap_workflows.h"

namespace ires {
namespace {

TEST(IresServerTest, RegisterArtefactsFromDescriptions) {
  IresServer server;
  ASSERT_TRUE(server
                  .RegisterDataset("asapServerLog",
                                   "Optimization.documents=1\n"
                                   "Execution.path=hdfs:///log\n"
                                   "Optimization.size=1e6\n"
                                   "Constraints.Engine.FS=HDFS\n")
                  .ok());
  ASSERT_TRUE(server
                  .RegisterAbstractOperator(
                      "LineCount",
                      "Constraints.OpSpecification.Algorithm.name=LineCount\n")
                  .ok());
  ASSERT_TRUE(
      server
          .RegisterMaterializedOperator(
              "LineCount_Spark",
              "Constraints.Engine=Spark\n"
              "Constraints.OpSpecification.Algorithm.name=LineCount\n"
              "Constraints.Input0.Engine.FS=HDFS\n"
              "Constraints.Output0.Engine.FS=HDFS\n")
          .ok());
  // Duplicate registration must fail.
  EXPECT_FALSE(server.RegisterDataset("asapServerLog", "a=1\n").ok());
}

TEST(IresServerTest, LineCountWorkflowEndToEnd) {
  // The deliverable's §3.3 walkthrough: register artefacts, parse the graph
  // file, materialize, execute.
  IresServer server;
  ASSERT_TRUE(server
                  .RegisterDataset("asapServerLog",
                                   "Optimization.documents=1000\n"
                                   "Execution.path=hdfs:///log\n"
                                   "Optimization.size=2e8\n"
                                   "Constraints.Engine.FS=HDFS\n")
                  .ok());
  ASSERT_TRUE(server
                  .RegisterAbstractOperator(
                      "LineCount",
                      "Constraints.OpSpecification.Algorithm.name=LineCount\n")
                  .ok());
  ASSERT_TRUE(
      server
          .RegisterMaterializedOperator(
              "LineCount_Spark",
              "Constraints.Engine=Spark\n"
              "Constraints.OpSpecification.Algorithm.name=LineCount\n"
              "Constraints.Input0.Engine.FS=HDFS\n"
              "Constraints.Output0.Engine.FS=HDFS\n")
          .ok());

  auto graph = server.ParseWorkflow(
      "asapServerLog,LineCount,0\n"
      "LineCount,d1,0\n"
      "d1,$$target\n");
  ASSERT_TRUE(graph.ok()) << graph.status();

  auto plan = server.MaterializeWorkflow(graph.value());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().steps.size(), 1u);
  EXPECT_EQ(plan.value().steps[0].engine, "Spark");

  auto outcome = server.ExecuteWorkflow(graph.value());
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome.value().status.ok());
  EXPECT_GT(outcome.value().total_execution_seconds, 0.0);
}

TEST(IresServerTest, ImportLibraryAndExecuteTextWorkflow) {
  IresServer server;
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  ASSERT_TRUE(server.ImportLibrary(w.library).ok());
  auto outcome = server.ExecuteWorkflow(w.graph);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome.value().final_report.materialized.count("clusters") >
              0);
}

TEST(IresServerTest, ExecutionRefinesModels) {
  IresServer server;
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  ASSERT_TRUE(server.ImportLibrary(w.library).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server.ExecuteWorkflow(w.graph).ok());
  }
  // The hybrid plan ran tf-idf on scikit and k-means on Spark 3 times each.
  EXPECT_EQ(server.estimator("TF_IDF", "scikit")->sample_count(), 3u);
  EXPECT_EQ(server.estimator("kmeans", "Spark")->sample_count(), 3u);
}

TEST(IresServerTest, ModelBasedEstimatorFallsBackToAnalytic) {
  ModelLibrary models;
  ModelBasedCostEstimator estimator(&models);
  auto registry = MakeStandardEngineRegistry();
  const SimulatedEngine* spark = registry->Find("Spark");
  OperatorRunRequest request;
  request.algorithm = "Pagerank";
  request.input_bytes = 1e9;
  request.resources = spark->default_resources();
  auto model_est = estimator.Estimate(*spark, request);
  auto analytic = spark->Estimate(request);
  ASSERT_TRUE(model_est.ok());
  EXPECT_DOUBLE_EQ(model_est.value().exec_seconds,
                   analytic.value().exec_seconds);
}

TEST(IresServerTest, ModelBasedEstimatorUsesTrainedModel) {
  ModelLibrary models;
  // Train a constant-ish time model (~100 s) with fixed output stats.
  for (int i = 0; i < 30; ++i) {
    OperatorRunRequest r;
    r.algorithm = "Pagerank";
    r.input_bytes = 1e8 * (1 + i % 5);
    r.resources = {8, 2, 2.0};
    models.ObserveRun("Pagerank", "Spark", r, 100.0, 5e7, 1e6);
  }
  ModelBasedCostEstimator estimator(&models);
  auto registry = MakeStandardEngineRegistry();
  const SimulatedEngine* spark = registry->Find("Spark");
  OperatorRunRequest request;
  request.algorithm = "Pagerank";
  request.input_bytes = 3e8;
  request.resources = {8, 2, 2.0};
  auto est = estimator.Estimate(*spark, request);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().exec_seconds, 100.0, 15.0);
  // Trained output models override the analytic ratios.
  EXPECT_NEAR(est.value().output_bytes, 5e7, 2e7);
}

TEST(IresServerTest, ModelBasedEstimatorKeepsFeasibilityFromEngine) {
  ModelLibrary models;
  ModelBasedCostEstimator estimator(&models);
  auto registry = MakeStandardEngineRegistry();
  const SimulatedEngine* java = registry->Find("Java");
  OperatorRunRequest request;
  request.algorithm = "Pagerank";
  request.input_bytes = 100e6 * kBytesPerEdge;  // OOM territory for Java
  request.resources = java->default_resources();
  EXPECT_EQ(estimator.Estimate(*java, request).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ModelLibraryTest, ObserveRunTrainsAllThreeMetrics) {
  ModelLibrary models;
  Rng rng(71);
  for (int i = 0; i < 30; ++i) {
    OperatorRunRequest r;
    r.algorithm = "TF_IDF";
    r.input_bytes = rng.Uniform(1e8, 2e9);
    r.resources = {4, 2, 2.0};
    models.ObserveRun("TF_IDF", "Spark", r, r.input_bytes / 1e8,
                      r.input_bytes * 0.5, r.input_bytes / 1e4);
  }
  const ModelLibrary::OperatorModels* m = models.Find("TF_IDF", "Spark");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->exec_time.has_model());
  EXPECT_TRUE(m->output_bytes.has_model());
  EXPECT_TRUE(m->output_records.has_model());
  // The output-bytes model learned the 0.5x ratio.
  OperatorRunRequest probe;
  probe.input_bytes = 1e9;
  probe.resources = {4, 2, 2.0};
  EXPECT_NEAR(
      m->output_bytes.Predict(Profiler::FeatureVector(probe)) / 1e9, 0.5,
      0.1);
}

TEST(ModelLibraryTest, SaveLoadRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ires_models_roundtrip";
  fs::remove_all(dir);

  ModelLibrary models;
  Rng rng(72);
  for (int i = 0; i < 25; ++i) {
    OperatorRunRequest r;
    r.algorithm = "Pagerank";
    r.input_bytes = rng.Uniform(1e8, 2e9);
    r.resources = {8, 2, 2.0};
    models.ObserveRun("Pagerank", "Hama", r, 6 + r.input_bytes / 4e7,
                      r.input_bytes * 0.1, r.input_bytes / 20);
  }
  ASSERT_TRUE(models.SaveToDirectory(dir.string()).ok());

  ModelLibrary restored;
  ASSERT_TRUE(restored.LoadFromDirectory(dir.string()).ok());
  const ModelLibrary::OperatorModels* m = restored.Find("Pagerank", "Hama");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->exec_time.sample_count(), 25u);
  EXPECT_TRUE(m->exec_time.has_model());
  // The restored model predicts like the original (same samples).
  const ModelLibrary::OperatorModels* orig = models.Find("Pagerank", "Hama");
  OperatorRunRequest probe;
  probe.input_bytes = 1.2e9;
  probe.resources = {8, 2, 2.0};
  const Vector f = Profiler::FeatureVector(probe);
  EXPECT_NEAR(m->exec_time.Predict(f), orig->exec_time.Predict(f),
              std::max(1.0, orig->exec_time.Predict(f) * 0.15));
  fs::remove_all(dir);
}

TEST(ModelLibraryTest, LoadMissingDirectoryFails) {
  ModelLibrary models;
  EXPECT_EQ(models.LoadFromDirectory("/no/such/models").code(),
            StatusCode::kNotFound);
}

TEST(IresServerTest, ModelsSurviveRestart) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ires_server_models";
  fs::remove_all(dir);
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  {
    IresServer server;
    ASSERT_TRUE(server.ImportLibrary(w.library).ok());
    for (int i = 0; i < 6; ++i) ASSERT_TRUE(server.ExecuteWorkflow(w.graph).ok());
    ASSERT_TRUE(server.SaveModels(dir.string()).ok());
  }
  IresServer restarted;
  ASSERT_TRUE(restarted.LoadModels(dir.string()).ok());
  EXPECT_EQ(restarted.estimator("TF_IDF", "scikit")->sample_count(), 6u);
  EXPECT_TRUE(restarted.estimator("TF_IDF", "scikit")->has_model());
  fs::remove_all(dir);
}

TEST(IresServerTest, ProvisioningConfigShrinksAllocations) {
  IresServer::Config config;
  config.provision_resources = true;
  IresServer server(config);
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(50e3);
  ASSERT_TRUE(server.ImportLibrary(w.library).ok());
  auto plan = server.MaterializeWorkflow(w.graph);
  ASSERT_TRUE(plan.ok()) << plan.status();
  for (const PlanStep& step : plan.value().steps) {
    if (step.kind != PlanStep::Kind::kOperator) continue;
    EXPECT_LE(step.resources.containers, 8);
    EXPECT_GE(step.resources.containers, 1);
  }
}

}  // namespace
}  // namespace ires
