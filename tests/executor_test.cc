#include <gtest/gtest.h>

#include "engines/standard_engines.h"
#include "executor/execution_monitor.h"
#include "executor/recovering_executor.h"
#include "executor/trace.h"
#include "workloadgen/asap_workflows.h"

namespace ires {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : registry_(MakeStandardEngineRegistry()), cluster_(16, 4, 8.0) {}

  Result<ExecutionPlan> Plan(const GeneratedWorkload& w) {
    DpPlanner planner(&w.library, registry_.get());
    return planner.Plan(w.graph, {});
  }

  std::unique_ptr<EngineRegistry> registry_;
  ClusterSimulator cluster_;
};

TEST_F(ExecutorTest, ExecutesPlanToCompletion) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 1);
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_GT(report.makespan_seconds, 0.0);
  EXPECT_GT(report.total_cost, 0.0);
  // Every step finished after it started.
  for (const StepResult& r : report.steps) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_GE(r.finish_seconds, r.start_seconds);
  }
  // All intermediates and the target materialized.
  EXPECT_TRUE(report.materialized.count("vectors") > 0);
  EXPECT_TRUE(report.materialized.count("clusters") > 0);
  // All allocations returned.
  EXPECT_EQ(cluster_.active_allocations(), 0);
}

TEST_F(ExecutorTest, ActualTimesTrackEstimatesWithNoise) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(10e6);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 2);
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok());
  EXPECT_NEAR(report.makespan_seconds, plan.value().estimated_seconds,
              plan.value().estimated_seconds * 0.3);
}

TEST_F(ExecutorTest, RespectsDependencies) {
  const GeneratedWorkload w = MakeRelationalWorkflow(5.0);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 3);
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok());
  for (const PlanStep& step : plan.value().steps) {
    for (int dep : step.deps) {
      EXPECT_GE(report.steps[step.id].start_seconds,
                report.steps[dep].finish_seconds - 1e-9);
    }
  }
}

TEST_F(ExecutorTest, IndependentStepsOverlap) {
  const GeneratedWorkload w = MakeRelationalWorkflow(5.0);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 4);
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok());
  double serialized = 0.0;
  for (const StepResult& r : report.steps) {
    serialized += r.finish_seconds - r.start_seconds;
  }
  EXPECT_LE(report.makespan_seconds, serialized + 1e-9);
}

TEST_F(ExecutorTest, EngineFailureProducesPartialReport) {
  const GeneratedWorkload w = MakeHelloWorldWorkflow(0.5);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 5);
  // Kill whatever engine hosts HelloWorld2.
  enforcer.set_fault_injector([](const PlanStep& step, double) {
    return step.algorithm == "HelloWorld2";
  });
  ExecutionReport report = enforcer.Execute(plan.value());
  EXPECT_FALSE(report.status.ok());
  EXPECT_GE(report.failed_step, 0);
  // Upstream outputs must be recorded as materialized.
  EXPECT_TRUE(report.materialized.count("HelloWorld1_out") > 0);
  EXPECT_EQ(report.materialized.count("HelloWorld3_out"), 0u);
  EXPECT_EQ(cluster_.active_allocations(), 0);
}

TEST_F(ExecutorTest, OffEngineFailsAtStepStart) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(1e6);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  const std::string engine = plan.value().steps.back().engine;
  (void)registry_->SetAvailable(engine, false);
  Enforcer enforcer(registry_.get(), &cluster_, 6);
  ExecutionReport report = enforcer.Execute(plan.value());
  EXPECT_EQ(report.status.code(), StatusCode::kUnavailable);
}

TEST_F(ExecutorTest, NodeFailureKillsHostedSteps) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(10e6);  // Hama
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 10);
  // Kill every node 1 simulated second in: the Pagerank containers are
  // running somewhere, so the step must fail.
  for (int n = 0; n < cluster_.node_count(); ++n) {
    enforcer.ScheduleNodeFailure(n, 1.0);
  }
  ExecutionReport report = enforcer.Execute(plan.value());
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kExecutionError);
  EXPECT_GE(report.failed_step, 0);
  // The abort fires at the first fatal node death; at least that node is
  // marked unhealthy (later scheduled failures never apply).
  EXPECT_LT(cluster_.healthy_node_count(), cluster_.node_count());
}

TEST_F(ExecutorTest, IdleNodeFailureDoesNotAbort) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(1e6);  // Java, 1 box
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 11);
  // The single-container Java job occupies one node; kill a node late in
  // the run — with 16 nodes the odds are it is idle, but to be
  // deterministic, kill the highest-index node (first-fit placed the job on
  // the most-free = lowest-index after sorting; just assert the run result
  // is consistent with the health map).
  enforcer.ScheduleNodeFailure(cluster_.node_count() - 1, 0.5);
  ExecutionReport report = enforcer.Execute(plan.value());
  if (report.status.ok()) {
    EXPECT_EQ(cluster_.healthy_node_count(), cluster_.node_count() - 1);
  } else {
    EXPECT_EQ(report.status.code(), StatusCode::kExecutionError);
  }
}

TEST_F(ExecutorTest, NodeFailureRecoverableViaReplan) {
  // After a node failure the replanning loop retries; with the node dead
  // but the engine alive, the retry succeeds on the remaining nodes.
  GeneratedWorkload w = MakeGraphAnalyticsWorkflow(10e6);
  DpPlanner planner(&w.library, registry_.get());
  Enforcer enforcer(registry_.get(), &cluster_, 12);
  for (int n = 0; n < 4; ++n) enforcer.ScheduleNodeFailure(n, 1.0);
  RecoveringExecutor recovering(&planner, &enforcer, registry_.get());
  auto outcome = recovering.Run(w.graph, {}, ReplanStrategy::kIresReplan);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome.value().status.ok());
}

TEST_F(ExecutorTest, TraceExportsTimeline) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 9);
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok());

  const std::string json = ExecutionTraceJson(plan.value(), report);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"engine\":\"scikit\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"move\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);

  const std::string csv = ExecutionTraceCsv(plan.value(), report);
  // Header + one line per executed step.
  size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, plan.value().steps.size() + 1);
}

// ---------------------------------------------------------------- monitor
TEST_F(ExecutorTest, MonitorDetectsOffEngines) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(10e6);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  ExecutionMonitor monitor(registry_.get(), &cluster_);
  EXPECT_TRUE(monitor.PlanIsRunnable(plan.value()));
  (void)registry_->SetAvailable("Hama", false);
  auto off = monitor.UnavailableEngines(plan.value());
  ASSERT_EQ(off.size(), 1u);
  EXPECT_EQ(off[0], "Hama");
  EXPECT_FALSE(monitor.PlanIsRunnable(plan.value()));
}

TEST_F(ExecutorTest, MonitorRunsHealthScripts) {
  ExecutionMonitor monitor(registry_.get(), &cluster_);
  EXPECT_TRUE(monitor.RunHealthChecks().empty());
  // Custom health script that flags node 3.
  monitor.set_health_script(
      [n = 0](const ClusterSimulator::NodeState&) mutable {
        return n++ == 3 ? NodeHealth::kUnhealthy : NodeHealth::kHealthy;
      });
  auto unhealthy = monitor.RunHealthChecks();
  ASSERT_EQ(unhealthy.size(), 1u);
  EXPECT_EQ(unhealthy[0], 3);
  EXPECT_EQ(cluster_.healthy_node_count(), 15);
  EXPECT_EQ(monitor.HealthSnapshot()[3], NodeHealth::kUnhealthy);
}

// ------------------------------------------------------ recovery strategies
class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : registry_(MakeStandardEngineRegistry()),
                   cluster_(16, 4, 8.0) {}

  // Runs the HelloWorld workflow killing the engine of `fail_algorithm` the
  // first time a step of that algorithm starts.
  Result<RecoveryOutcome> RunWithFailure(const std::string& fail_algorithm,
                                         ReplanStrategy strategy) {
    workload_ = MakeHelloWorldWorkflow(0.5);
    planner_ = std::make_unique<DpPlanner>(&workload_.library,
                                           registry_.get());
    enforcer_ = std::make_unique<Enforcer>(registry_.get(), &cluster_, 7);
    bool fired = false;
    enforcer_->set_fault_injector(
        [&fired, fail_algorithm](const PlanStep& step, double) {
          if (fired || step.algorithm != fail_algorithm) return false;
          fired = true;
          return true;
        });
    RecoveringExecutor recovering(planner_.get(), enforcer_.get(),
                                  registry_.get());
    return recovering.Run(workload_.graph, {}, strategy);
  }

  GeneratedWorkload workload_;
  std::unique_ptr<EngineRegistry> registry_;
  ClusterSimulator cluster_;
  std::unique_ptr<DpPlanner> planner_;
  std::unique_ptr<Enforcer> enforcer_;
};

TEST_F(RecoveryTest, NoFailureNoReplan) {
  workload_ = MakeHelloWorldWorkflow(0.5);
  DpPlanner planner(&workload_.library, registry_.get());
  Enforcer enforcer(registry_.get(), &cluster_, 8);
  RecoveringExecutor recovering(&planner, &enforcer, registry_.get());
  auto outcome = recovering.Run(workload_.graph, {},
                                ReplanStrategy::kIresReplan);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome.value().replans, 0);
  EXPECT_TRUE(outcome.value().status.ok());
}

TEST_F(RecoveryTest, IresReplanRecoversAndReusesIntermediates) {
  auto outcome = RunWithFailure("HelloWorld2", ReplanStrategy::kIresReplan);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome.value().replans, 1);
  EXPECT_TRUE(outcome.value().status.ok());
  // The replanned final plan must NOT contain the operators that completed
  // before the failure (their outputs were reused).
  int hello1_runs = 0;
  for (const PlanStep& step : outcome.value().final_plan.steps) {
    hello1_runs += step.algorithm == "HelloWorld1";
  }
  EXPECT_EQ(hello1_runs, 0);
}

TEST_F(RecoveryTest, TrivialReplanRedoesCompletedWork) {
  auto ires = RunWithFailure("HelloWorld2", ReplanStrategy::kIresReplan);
  ASSERT_TRUE(ires.ok());
  // Fresh fixtures for the second strategy (engines were marked OFF).
  registry_ = MakeStandardEngineRegistry();
  auto trivial = RunWithFailure("HelloWorld2",
                                ReplanStrategy::kTrivialReplan);
  ASSERT_TRUE(trivial.ok());
  // The trivial strategy re-executes HelloWorld and HelloWorld1, so its
  // total execution time must exceed IResReplan's.
  EXPECT_GT(trivial.value().total_execution_seconds,
            ires.value().total_execution_seconds);
  int hello1_runs = 0;
  for (const PlanStep& step : trivial.value().final_plan.steps) {
    hello1_runs += step.algorithm == "HelloWorld1";
  }
  EXPECT_EQ(hello1_runs, 1);
}

TEST_F(RecoveryTest, LaterFailuresFavorIresReplanMore) {
  // Deliverable §4.5: the further in the execution path the failure, the
  // larger the gains of IResReplan over TrivialReplan.
  double gain_early, gain_late;
  {
    auto ires = RunWithFailure("HelloWorld1", ReplanStrategy::kIresReplan);
    ASSERT_TRUE(ires.ok());
    registry_ = MakeStandardEngineRegistry();
    auto trivial =
        RunWithFailure("HelloWorld1", ReplanStrategy::kTrivialReplan);
    ASSERT_TRUE(trivial.ok());
    gain_early = trivial.value().total_execution_seconds -
                 ires.value().total_execution_seconds;
  }
  registry_ = MakeStandardEngineRegistry();
  {
    auto ires = RunWithFailure("HelloWorld3", ReplanStrategy::kIresReplan);
    ASSERT_TRUE(ires.ok());
    registry_ = MakeStandardEngineRegistry();
    auto trivial =
        RunWithFailure("HelloWorld3", ReplanStrategy::kTrivialReplan);
    ASSERT_TRUE(trivial.ok());
    gain_late = trivial.value().total_execution_seconds -
                ires.value().total_execution_seconds;
  }
  EXPECT_GT(gain_late, gain_early);
}

TEST_F(RecoveryTest, UnrecoverableWhenNoAlternativeEngine) {
  // HelloWorld (the first operator) only has a Python implementation;
  // killing Python leaves no feasible replan.
  auto outcome = RunWithFailure("HelloWorld", ReplanStrategy::kIresReplan);
  EXPECT_FALSE(outcome.ok());
}

}  // namespace
}  // namespace ires
