#include <gtest/gtest.h>

#include "engines/standard_engines.h"
#include "executor/execution_monitor.h"
#include "executor/recovering_executor.h"
#include "executor/trace.h"
#include "workloadgen/asap_workflows.h"

namespace ires {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : registry_(MakeStandardEngineRegistry()), cluster_(16, 4, 8.0) {}

  Result<ExecutionPlan> Plan(const GeneratedWorkload& w) {
    DpPlanner planner(&w.library, registry_.get());
    return planner.Plan(w.graph, {});
  }

  std::unique_ptr<EngineRegistry> registry_;
  ClusterSimulator cluster_;
};

TEST_F(ExecutorTest, ExecutesPlanToCompletion) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 1);
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_GT(report.makespan_seconds, 0.0);
  EXPECT_GT(report.total_cost, 0.0);
  // Every step finished after it started.
  for (const StepResult& r : report.steps) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_GE(r.finish_seconds, r.start_seconds);
  }
  // All intermediates and the target materialized.
  EXPECT_TRUE(report.materialized.count("vectors") > 0);
  EXPECT_TRUE(report.materialized.count("clusters") > 0);
  // All allocations returned.
  EXPECT_EQ(cluster_.active_allocations(), 0);
}

TEST_F(ExecutorTest, ActualTimesTrackEstimatesWithNoise) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(10e6);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 2);
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok());
  EXPECT_NEAR(report.makespan_seconds, plan.value().estimated_seconds,
              plan.value().estimated_seconds * 0.3);
}

TEST_F(ExecutorTest, RespectsDependencies) {
  const GeneratedWorkload w = MakeRelationalWorkflow(5.0);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 3);
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok());
  for (const PlanStep& step : plan.value().steps) {
    for (int dep : step.deps) {
      EXPECT_GE(report.steps[step.id].start_seconds,
                report.steps[dep].finish_seconds - 1e-9);
    }
  }
}

TEST_F(ExecutorTest, IndependentStepsOverlap) {
  const GeneratedWorkload w = MakeRelationalWorkflow(5.0);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 4);
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok());
  double serialized = 0.0;
  for (const StepResult& r : report.steps) {
    serialized += r.finish_seconds - r.start_seconds;
  }
  EXPECT_LE(report.makespan_seconds, serialized + 1e-9);
}

TEST_F(ExecutorTest, EngineFailureProducesPartialReport) {
  const GeneratedWorkload w = MakeHelloWorldWorkflow(0.5);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 5);
  // Kill whatever engine hosts HelloWorld2.
  enforcer.set_fault_injector([](const PlanStep& step, double) {
    return step.algorithm == "HelloWorld2";
  });
  ExecutionReport report = enforcer.Execute(plan.value());
  EXPECT_FALSE(report.status.ok());
  EXPECT_GE(report.failed_step, 0);
  // Upstream outputs must be recorded as materialized.
  EXPECT_TRUE(report.materialized.count("HelloWorld1_out") > 0);
  EXPECT_EQ(report.materialized.count("HelloWorld3_out"), 0u);
  EXPECT_EQ(cluster_.active_allocations(), 0);
}

TEST_F(ExecutorTest, OffEngineFailsAtStepStart) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(1e6);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  const std::string engine = plan.value().steps.back().engine;
  (void)registry_->SetAvailable(engine, false);
  Enforcer enforcer(registry_.get(), &cluster_, 6);
  ExecutionReport report = enforcer.Execute(plan.value());
  EXPECT_EQ(report.status.code(), StatusCode::kUnavailable);
}

TEST_F(ExecutorTest, NodeFailureKillsHostedSteps) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(10e6);  // Hama
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 10);
  // Kill every node 1 simulated second in: the Pagerank containers are
  // running somewhere, so the step must fail.
  for (int n = 0; n < cluster_.node_count(); ++n) {
    enforcer.ScheduleNodeFailure(n, 1.0);
  }
  ExecutionReport report = enforcer.Execute(plan.value());
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kExecutionError);
  EXPECT_GE(report.failed_step, 0);
  // The abort fires at the first fatal node death; at least that node is
  // marked unhealthy (later scheduled failures never apply).
  EXPECT_LT(cluster_.healthy_node_count(), cluster_.node_count());
}

TEST_F(ExecutorTest, IdleNodeFailureDoesNotAbort) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(1e6);  // Java, 1 box
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 11);
  // The single-container Java job occupies one node; kill a node late in
  // the run — with 16 nodes the odds are it is idle, but to be
  // deterministic, kill the highest-index node (first-fit placed the job on
  // the most-free = lowest-index after sorting; just assert the run result
  // is consistent with the health map).
  enforcer.ScheduleNodeFailure(cluster_.node_count() - 1, 0.5);
  ExecutionReport report = enforcer.Execute(plan.value());
  if (report.status.ok()) {
    EXPECT_EQ(cluster_.healthy_node_count(), cluster_.node_count() - 1);
  } else {
    EXPECT_EQ(report.status.code(), StatusCode::kExecutionError);
  }
}

TEST_F(ExecutorTest, NodeFailureRecoverableViaReplan) {
  // After a node failure the replanning loop retries; with the node dead
  // but the engine alive, the retry succeeds on the remaining nodes.
  GeneratedWorkload w = MakeGraphAnalyticsWorkflow(10e6);
  DpPlanner planner(&w.library, registry_.get());
  Enforcer enforcer(registry_.get(), &cluster_, 12);
  for (int n = 0; n < 4; ++n) enforcer.ScheduleNodeFailure(n, 1.0);
  RecoveringExecutor recovering(&planner, &enforcer, registry_.get());
  auto outcome = recovering.Run(w.graph, {}, ReplanStrategy::kIresReplan);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome.value().status.ok());
}

// ------------------------------------------- retries and failure domains
TEST_F(ExecutorTest, TransientFaultsRetryInPlace) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 30);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_seconds = 1.0;
  enforcer.set_retry_policy(policy);
  // First two start attempts of step 0 hit transient faults; the third
  // succeeds inside the retry budget, so the workflow still completes.
  enforcer.set_fault_oracle([](const PlanStep& step, double, int attempt) {
    Enforcer::FaultDecision d;
    if (step.id == 0 && attempt <= 2) {
      d.fail = true;
      d.kind = FailureKind::kTransient;
    }
    return d;
  });
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.step_retries, 2);
  EXPECT_EQ(report.steps[0].attempts, 3);
  EXPECT_EQ(cluster_.active_allocations(), 0);
}

TEST_F(ExecutorTest, ExhaustedRetryBudgetAbortsWithTransientKind) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 31);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff_seconds = 1.0;
  enforcer.set_retry_policy(policy);
  enforcer.set_fault_oracle([](const PlanStep& step, double, int) {
    Enforcer::FaultDecision d;
    if (step.id == 0) {
      d.fail = true;
      d.kind = FailureKind::kTransient;
    }
    return d;
  });
  ExecutionReport report = enforcer.Execute(plan.value());
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.failed_step, 0);
  EXPECT_EQ(report.failure_kind, FailureKind::kTransient);
  EXPECT_EQ(report.steps[0].attempts, 2);
  EXPECT_EQ(report.step_retries, 1);
  EXPECT_EQ(cluster_.active_allocations(), 0);
}

TEST_F(ExecutorTest, StragglerDeadlineKillsAndRetries) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 32);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff_seconds = 1.0;
  policy.straggler_multiplier = 2.0;  // arm step deadlines
  enforcer.set_retry_policy(policy);
  const int target = plan.value().steps.back().id;
  // The first attempt of the last step hangs (an injected straggler); the
  // armed deadline kills it at 2x the estimate and the retry completes.
  enforcer.set_fault_oracle(
      [target](const PlanStep& step, double, int attempt) {
        Enforcer::FaultDecision d;
        if (step.id == target && attempt == 1) {
          d.fail = true;
          d.kind = FailureKind::kTimeout;
        }
        return d;
      });
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.step_retries, 1);
  EXPECT_EQ(report.steps[target].attempts, 2);
  // The hung attempt burned (deadline + backoff) simulated time on top of
  // the successful attempt's duration.
  EXPECT_GT(report.steps[target].finish_seconds,
            plan.value().steps[target].estimated_seconds * 2.0);
  EXPECT_EQ(cluster_.active_allocations(), 0);
}

TEST_F(ExecutorTest, NodeScheduleAndHealthPersistAcrossExecutes) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(10e6);  // Hama
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 33);
  for (int n = 0; n < cluster_.node_count(); ++n) {
    enforcer.ScheduleNodeFailure(n, 1.0);
  }
  ExecutionReport first = enforcer.Execute(plan.value());
  ASSERT_FALSE(first.status.ok());
  EXPECT_EQ(first.failure_kind, FailureKind::kNodeCrash);
  const int dead_after_first =
      cluster_.node_count() - cluster_.healthy_node_count();
  ASSERT_GT(dead_after_first, 0);

  // A replan attempt on the same enforcer: nodes that already died stay
  // dead (their events do not re-fire), while not-yet-fired failures still
  // apply — the node-failure state machine survives RunFrom attempts.
  ExecutionReport second = enforcer.Execute(plan.value());
  const int dead_after_second =
      cluster_.node_count() - cluster_.healthy_node_count();
  EXPECT_GE(dead_after_second, dead_after_first);
  if (!second.status.ok()) {
    EXPECT_EQ(second.failure_kind, FailureKind::kNodeCrash);
  }
}

TEST_F(ExecutorTest, NodeRecoveryScheduleHealsTheCluster) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(10e6);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 34);
  // Node 0 is already down (say, a prior attempt's crash); a chaos flap
  // schedule brings it back two simulated seconds into the run.
  cluster_.SetNodeHealth(0, NodeHealth::kUnhealthy);
  enforcer.ScheduleNodeRecovery(0, 2.0);
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(cluster_.healthy_node_count(), cluster_.node_count());
  // Re-running skips the already-applied recovery on the healthy node.
  ExecutionReport second = enforcer.Execute(plan.value());
  ASSERT_TRUE(second.status.ok()) << second.status;
  EXPECT_EQ(cluster_.healthy_node_count(), cluster_.node_count());
}

TEST_F(ExecutorTest, TraceExportsTimeline) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  Enforcer enforcer(registry_.get(), &cluster_, 9);
  ExecutionReport report = enforcer.Execute(plan.value());
  ASSERT_TRUE(report.status.ok());

  const std::string json = ExecutionTraceJson(plan.value(), report);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"engine\":\"scikit\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"move\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);

  const std::string csv = ExecutionTraceCsv(plan.value(), report);
  // Header + one line per executed step.
  size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, plan.value().steps.size() + 1);
}

// ---------------------------------------------------------------- monitor
TEST_F(ExecutorTest, MonitorDetectsOffEngines) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(10e6);
  auto plan = Plan(w);
  ASSERT_TRUE(plan.ok());
  ExecutionMonitor monitor(registry_.get(), &cluster_);
  EXPECT_TRUE(monitor.PlanIsRunnable(plan.value()));
  (void)registry_->SetAvailable("Hama", false);
  auto off = monitor.UnavailableEngines(plan.value());
  ASSERT_EQ(off.size(), 1u);
  EXPECT_EQ(off[0], "Hama");
  EXPECT_FALSE(monitor.PlanIsRunnable(plan.value()));
}

TEST_F(ExecutorTest, MonitorRunsHealthScripts) {
  ExecutionMonitor monitor(registry_.get(), &cluster_);
  EXPECT_TRUE(monitor.RunHealthChecks().empty());
  // Custom health script that flags node 3.
  monitor.set_health_script(
      [n = 0](const ClusterSimulator::NodeState&) mutable {
        return n++ == 3 ? NodeHealth::kUnhealthy : NodeHealth::kHealthy;
      });
  auto unhealthy = monitor.RunHealthChecks();
  ASSERT_EQ(unhealthy.size(), 1u);
  EXPECT_EQ(unhealthy[0], 3);
  EXPECT_EQ(cluster_.healthy_node_count(), 15);
  EXPECT_EQ(monitor.HealthSnapshot()[3], NodeHealth::kUnhealthy);
}

// ------------------------------------------------------ recovery strategies
class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : registry_(MakeStandardEngineRegistry()),
                   cluster_(16, 4, 8.0) {}

  // Runs the HelloWorld workflow killing the engine of `fail_algorithm` the
  // first time a step of that algorithm starts.
  Result<RecoveryOutcome> RunWithFailure(const std::string& fail_algorithm,
                                         ReplanStrategy strategy) {
    workload_ = MakeHelloWorldWorkflow(0.5);
    planner_ = std::make_unique<DpPlanner>(&workload_.library,
                                           registry_.get());
    enforcer_ = std::make_unique<Enforcer>(registry_.get(), &cluster_, 7);
    bool fired = false;
    enforcer_->set_fault_injector(
        [&fired, fail_algorithm](const PlanStep& step, double) {
          if (fired || step.algorithm != fail_algorithm) return false;
          fired = true;
          return true;
        });
    RecoveringExecutor recovering(planner_.get(), enforcer_.get(),
                                  registry_.get());
    return recovering.Run(workload_.graph, {}, strategy);
  }

  GeneratedWorkload workload_;
  std::unique_ptr<EngineRegistry> registry_;
  ClusterSimulator cluster_;
  std::unique_ptr<DpPlanner> planner_;
  std::unique_ptr<Enforcer> enforcer_;
};

TEST_F(RecoveryTest, NoFailureNoReplan) {
  workload_ = MakeHelloWorldWorkflow(0.5);
  DpPlanner planner(&workload_.library, registry_.get());
  Enforcer enforcer(registry_.get(), &cluster_, 8);
  RecoveringExecutor recovering(&planner, &enforcer, registry_.get());
  auto outcome = recovering.Run(workload_.graph, {},
                                ReplanStrategy::kIresReplan);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome.value().replans, 0);
  EXPECT_TRUE(outcome.value().status.ok());
}

TEST_F(RecoveryTest, IresReplanRecoversAndReusesIntermediates) {
  auto outcome = RunWithFailure("HelloWorld2", ReplanStrategy::kIresReplan);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome.value().replans, 1);
  EXPECT_TRUE(outcome.value().status.ok());
  // The replanned final plan must NOT contain the operators that completed
  // before the failure (their outputs were reused).
  int hello1_runs = 0;
  for (const PlanStep& step : outcome.value().final_plan.steps) {
    hello1_runs += step.algorithm == "HelloWorld1";
  }
  EXPECT_EQ(hello1_runs, 0);
}

TEST_F(RecoveryTest, TrivialReplanRedoesCompletedWork) {
  auto ires = RunWithFailure("HelloWorld2", ReplanStrategy::kIresReplan);
  ASSERT_TRUE(ires.ok());
  // Fresh fixtures for the second strategy (engines were marked OFF).
  registry_ = MakeStandardEngineRegistry();
  auto trivial = RunWithFailure("HelloWorld2",
                                ReplanStrategy::kTrivialReplan);
  ASSERT_TRUE(trivial.ok());
  // The trivial strategy re-executes HelloWorld and HelloWorld1, so its
  // total execution time must exceed IResReplan's.
  EXPECT_GT(trivial.value().total_execution_seconds,
            ires.value().total_execution_seconds);
  int hello1_runs = 0;
  for (const PlanStep& step : trivial.value().final_plan.steps) {
    hello1_runs += step.algorithm == "HelloWorld1";
  }
  EXPECT_EQ(hello1_runs, 1);
}

TEST_F(RecoveryTest, LaterFailuresFavorIresReplanMore) {
  // Deliverable §4.5: the further in the execution path the failure, the
  // larger the gains of IResReplan over TrivialReplan.
  double gain_early, gain_late;
  {
    auto ires = RunWithFailure("HelloWorld1", ReplanStrategy::kIresReplan);
    ASSERT_TRUE(ires.ok());
    registry_ = MakeStandardEngineRegistry();
    auto trivial =
        RunWithFailure("HelloWorld1", ReplanStrategy::kTrivialReplan);
    ASSERT_TRUE(trivial.ok());
    gain_early = trivial.value().total_execution_seconds -
                 ires.value().total_execution_seconds;
  }
  registry_ = MakeStandardEngineRegistry();
  {
    auto ires = RunWithFailure("HelloWorld3", ReplanStrategy::kIresReplan);
    ASSERT_TRUE(ires.ok());
    registry_ = MakeStandardEngineRegistry();
    auto trivial =
        RunWithFailure("HelloWorld3", ReplanStrategy::kTrivialReplan);
    ASSERT_TRUE(trivial.ok());
    gain_late = trivial.value().total_execution_seconds -
                ires.value().total_execution_seconds;
  }
  EXPECT_GT(gain_late, gain_early);
}

TEST_F(RecoveryTest, UnrecoverableWhenNoAlternativeEngine) {
  // HelloWorld (the first operator) only has a Python implementation;
  // killing Python leaves no feasible replan.
  auto outcome = RunWithFailure("HelloWorld", ReplanStrategy::kIresReplan);
  EXPECT_FALSE(outcome.ok());
}

// ------------------------------------------- RecoveryOutcome accounting
TEST_F(RecoveryTest, MaxReplansZeroFailsWithoutReplanning) {
  workload_ = MakeHelloWorldWorkflow(0.5);
  planner_ = std::make_unique<DpPlanner>(&workload_.library, registry_.get());
  enforcer_ = std::make_unique<Enforcer>(registry_.get(), &cluster_, 40);
  bool fired = false;
  enforcer_->set_fault_injector([&fired](const PlanStep& step, double) {
    if (fired || step.algorithm != "HelloWorld2") return false;
    fired = true;
    return true;
  });
  RecoveringExecutor recovering(planner_.get(), enforcer_.get(),
                                registry_.get());
  // A zero budget means the single failure is terminal even though a
  // replan would have succeeded — and the replan that never ran is not
  // counted.
  recovering.set_max_replans(0);
  RecoveryOutcome outcome = recovering.RunFrom(
      workload_.graph, {}, ReplanStrategy::kIresReplan, nullptr);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.replans, 0);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].attempt, 0);
  EXPECT_EQ(outcome.failures[0].kind, FailureKind::kEngineCrash);
  EXPECT_FALSE(outcome.failures[0].engine.empty());
}

TEST_F(RecoveryTest, MaxReplansOneRecoversTheSameFailure) {
  auto outcome = [this] {
    workload_ = MakeHelloWorldWorkflow(0.5);
    planner_ =
        std::make_unique<DpPlanner>(&workload_.library, registry_.get());
    enforcer_ = std::make_unique<Enforcer>(registry_.get(), &cluster_, 40);
    bool fired = false;
    enforcer_->set_fault_injector([fired](const PlanStep& step,
                                          double) mutable {
      if (fired || step.algorithm != "HelloWorld2") return false;
      fired = true;
      return true;
    });
    RecoveringExecutor recovering(planner_.get(), enforcer_.get(),
                                  registry_.get());
    recovering.set_max_replans(1);
    return recovering.RunFrom(workload_.graph, {},
                              ReplanStrategy::kIresReplan, nullptr);
  }();
  EXPECT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_EQ(outcome.replans, 1);
  EXPECT_EQ(outcome.failures.size(), 1u);  // == replans on eventual success
}

TEST_F(RecoveryTest, ReplanningMsExcludesTheInitialPlan) {
  workload_ = MakeHelloWorldWorkflow(0.5);
  DpPlanner planner(&workload_.library, registry_.get());
  Enforcer enforcer(registry_.get(), &cluster_, 41);
  RecoveringExecutor recovering(&planner, &enforcer, registry_.get());
  // Clean run: planning happened, replanning did not.
  RecoveryOutcome clean = recovering.RunFrom(
      workload_.graph, {}, ReplanStrategy::kIresReplan, nullptr);
  ASSERT_TRUE(clean.status.ok());
  EXPECT_GT(clean.total_planning_ms, 0.0);
  EXPECT_EQ(clean.replanning_ms, 0.0);

  // Failed-then-recovered run: the replan's planning time is counted in
  // both totals, the initial plan only in total_planning_ms.
  auto failed = RunWithFailure("HelloWorld2", ReplanStrategy::kIresReplan);
  ASSERT_TRUE(failed.ok());
  EXPECT_GT(failed.value().replanning_ms, 0.0);
  EXPECT_GT(failed.value().total_planning_ms, failed.value().replanning_ms);
}

TEST_F(RecoveryTest, ExecutionSecondsAccumulateAcrossFailedAttempts) {
  auto outcome = RunWithFailure("HelloWorld2", ReplanStrategy::kIresReplan);
  ASSERT_TRUE(outcome.ok());
  // The aborted first attempt's partial makespan is part of the total, so
  // the total strictly exceeds the successful attempt's makespan.
  EXPECT_GT(outcome.value().total_execution_seconds,
            outcome.value().final_report.makespan_seconds);
  EXPECT_EQ(outcome.value().step_retries, 0);  // nothing was retried in place
}

TEST_F(RecoveryTest, FailureSuspendsEngineInsteadOfAmputatingIt) {
  auto outcome = RunWithFailure("HelloWorld2", ReplanStrategy::kIresReplan);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value().failures.size(), 1u);
  const std::string& engine = outcome.value().failures[0].engine;
  auto health = registry_->HealthOf(engine);
  ASSERT_TRUE(health.ok());
  // The breaker suspended the engine rather than turning it OFF for good;
  // once the suspension lapses on the simulated clock it probes half-open
  // and is schedulable again — no restart or manual flip required.
  EXPECT_NE(health.value().health, EngineHealth::kOff);
  registry_->AdvanceSimClock(
      registry_->breaker_config().max_suspension_seconds);
  EXPECT_TRUE(registry_->IsAvailable(engine));
}

}  // namespace
}  // namespace ires
