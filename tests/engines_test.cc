#include <gtest/gtest.h>

#include "engines/standard_engines.h"

namespace ires {
namespace {

class StandardEnginesTest : public ::testing::Test {
 protected:
  StandardEnginesTest() : registry_(MakeStandardEngineRegistry()) {}

  OperatorRunRequest PagerankRequest(double edges,
                                     const SimulatedEngine& engine) {
    OperatorRunRequest r;
    r.algorithm = "Pagerank";
    r.input_bytes = edges * kBytesPerEdge;
    r.input_records = edges;
    r.resources = engine.default_resources();
    return r;
  }

  double PagerankSeconds(const std::string& engine_name, double edges) {
    const SimulatedEngine* engine = registry_->Find(engine_name);
    EXPECT_NE(engine, nullptr);
    auto est = engine->Estimate(PagerankRequest(edges, *engine));
    EXPECT_TRUE(est.ok()) << engine_name << ": " << est.status();
    return est.value().exec_seconds;
  }

  std::unique_ptr<EngineRegistry> registry_;
};

TEST_F(StandardEnginesTest, FleetMatchesEvaluationSection) {
  for (const char* name : {"Java", "Python", "scikit", "Spark", "MLLib",
                           "Hama", "MapReduce", "PostgreSQL", "MemSQL",
                           "Hive"}) {
    EXPECT_NE(registry_->Find(name), nullptr) << name;
  }
}

TEST_F(StandardEnginesTest, UnknownAlgorithmFallsBackToWildcard) {
  const SimulatedEngine* spark = registry_->Find("Spark");
  OperatorRunRequest r;
  r.algorithm = "SomethingNovel";
  r.input_bytes = 1e9;
  r.resources = spark->default_resources();
  EXPECT_TRUE(spark->Estimate(r).ok());
}

// ---- Fig. 11 calibration: who wins at which graph scale. -----------------
TEST_F(StandardEnginesTest, JavaWinsSmallGraphs) {
  EXPECT_LT(PagerankSeconds("Java", 10e3), PagerankSeconds("Hama", 10e3));
  EXPECT_LT(PagerankSeconds("Java", 10e3), PagerankSeconds("Spark", 10e3));
  EXPECT_LT(PagerankSeconds("Java", 1e6), PagerankSeconds("Hama", 1e6));
}

TEST_F(StandardEnginesTest, HamaWinsMediumGraphs) {
  EXPECT_LT(PagerankSeconds("Hama", 10e6), PagerankSeconds("Java", 10e6));
  EXPECT_LT(PagerankSeconds("Hama", 10e6), PagerankSeconds("Spark", 10e6));
}

TEST_F(StandardEnginesTest, JavaOomsOnLargeGraphs) {
  const SimulatedEngine* java = registry_->Find("Java");
  auto est = java->Estimate(PagerankRequest(100e6, *java));
  EXPECT_EQ(est.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(StandardEnginesTest, HamaOomsAt100MEdgesButSparkSurvives) {
  const SimulatedEngine* hama = registry_->Find("Hama");
  EXPECT_EQ(hama->Estimate(PagerankRequest(100e6, *hama)).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_GT(PagerankSeconds("Spark", 100e6), 0.0);
}

TEST_F(StandardEnginesTest, SparkScalesWithInput) {
  EXPECT_LT(PagerankSeconds("Spark", 1e6), PagerankSeconds("Spark", 10e6));
  EXPECT_LT(PagerankSeconds("Spark", 10e6), PagerankSeconds("Spark", 100e6));
}

// ---- Fig. 12 calibration: text analytics crossovers. ----------------------
TEST_F(StandardEnginesTest, ScikitTfIdfBeatsSparkOnSmallCorpora) {
  const SimulatedEngine* scikit = registry_->Find("scikit");
  const SimulatedEngine* spark = registry_->Find("Spark");
  for (double docs : {1e3, 10e3, 40e3}) {
    OperatorRunRequest r;
    r.algorithm = "TF_IDF";
    r.input_bytes = docs * kBytesPerDocument;
    r.resources = scikit->default_resources();
    const double scikit_s = scikit->Estimate(r).value().exec_seconds;
    r.resources = spark->default_resources();
    const double spark_s = spark->Estimate(r).value().exec_seconds;
    EXPECT_LT(scikit_s, spark_s) << docs;
  }
}

TEST_F(StandardEnginesTest, SparkKmeansBeatsScikitBeyond10kDocs) {
  const SimulatedEngine* scikit = registry_->Find("scikit");
  const SimulatedEngine* spark = registry_->Find("Spark");
  // k-means input = tf-idf vectors (~half the corpus bytes).
  OperatorRunRequest r;
  r.algorithm = "kmeans";
  r.input_bytes = 10e3 * kBytesPerDocument * 0.5;
  r.resources = scikit->default_resources();
  const double scikit_s = scikit->Estimate(r).value().exec_seconds;
  r.resources = spark->default_resources();
  const double spark_s = spark->Estimate(r).value().exec_seconds;
  EXPECT_LT(spark_s, scikit_s);
}

// ---- Engine mechanics. -----------------------------------------------------
TEST_F(StandardEnginesTest, MoreCoresSpeedUpDistributedEngines) {
  const SimulatedEngine* spark = registry_->Find("Spark");
  OperatorRunRequest small = PagerankRequest(50e6, *spark);
  small.resources = {2, 1, 2.0};
  OperatorRunRequest big = PagerankRequest(50e6, *spark);
  big.resources = {8, 4, 2.0};
  EXPECT_GT(spark->Estimate(small).value().exec_seconds,
            spark->Estimate(big).value().exec_seconds);
}

TEST_F(StandardEnginesTest, CentralizedEnginesIgnoreExtraContainers) {
  const SimulatedEngine* java = registry_->Find("Java");
  OperatorRunRequest one = PagerankRequest(1e6, *java);
  one.resources = {1, 1, 3.0};
  OperatorRunRequest many = PagerankRequest(1e6, *java);
  many.resources = {8, 1, 3.0};
  EXPECT_DOUBLE_EQ(java->Estimate(one).value().exec_seconds,
                   java->Estimate(many).value().exec_seconds);
}

TEST_F(StandardEnginesTest, DiskEnginesSpillInsteadOfFailing) {
  const SimulatedEngine* spark = registry_->Find("Spark");
  // 40 GB input, 2x working set = 80 GB >> 24 GB budget: must still run,
  // but slower per GB than an in-budget run.
  OperatorRunRequest big = PagerankRequest(2e9, *spark);
  auto est_big = spark->Estimate(big);
  ASSERT_TRUE(est_big.ok());
  OperatorRunRequest tiny = PagerankRequest(100e6, *spark);
  auto est_tiny = spark->Estimate(tiny);
  const double big_rate =
      est_big.value().exec_seconds / big.input_bytes;
  const double tiny_rate =
      est_tiny.value().exec_seconds / tiny.input_bytes;
  EXPECT_GT(big_rate, tiny_rate);
}

TEST_F(StandardEnginesTest, GroundTruthIsNoisyAroundEstimate) {
  const SimulatedEngine* spark = registry_->Find("Spark");
  OperatorRunRequest r = PagerankRequest(10e6, *spark);
  const double estimate = spark->Estimate(r).value().exec_seconds;
  Rng rng(21);
  double sum = 0.0;
  bool any_different = false;
  for (int i = 0; i < 200; ++i) {
    const double truth = spark->Run(r, &rng).value().exec_seconds;
    any_different |= truth != estimate;
    sum += truth;
  }
  EXPECT_TRUE(any_different);
  EXPECT_NEAR(sum / 200.0, estimate, estimate * 0.05);
}

TEST_F(StandardEnginesTest, UnavailableEngineRefusesToRun) {
  SimulatedEngine* spark = registry_->Find("Spark");
  spark->set_available(false);
  Rng rng(22);
  OperatorRunRequest r = PagerankRequest(1e6, *spark);
  EXPECT_EQ(spark->Run(r, &rng).status().code(), StatusCode::kUnavailable);
  // Estimation still works (the planner may ask before availability flips).
  EXPECT_TRUE(spark->Estimate(r).ok());
  spark->set_available(true);
}

TEST_F(StandardEnginesTest, InfrastructureFactorScalesRuntime) {
  SimulatedEngine* mr = registry_->Find("MapReduce");
  OperatorRunRequest r;
  r.algorithm = "Wordcount";
  r.input_bytes = 5e9;
  r.resources = mr->default_resources();
  const double before = mr->Estimate(r).value().exec_seconds;
  mr->set_infrastructure_factor(0.5);  // HDD -> SSD upgrade
  const double after = mr->Estimate(r).value().exec_seconds;
  EXPECT_LT(after, before);
  mr->set_infrastructure_factor(1.0);
}

TEST_F(StandardEnginesTest, WorkParamMultipliesWork) {
  SimulatedEngine engine(SimulatedEngine::Config{
      .name = "test",
      .kind = EngineKind::kCentralized,
      .memory_budget_gb = 100,
      .native_store = "Local"});
  AlgorithmProfile profile;
  profile.startup_seconds = 0.0;
  profile.seconds_per_gb = 10.0;
  profile.parallel_fraction = 0.0;
  profile.work_param = "iterations";
  engine.SetProfile("iter", profile);
  OperatorRunRequest r;
  r.algorithm = "iter";
  r.input_bytes = 1e9;
  r.resources = {1, 1, 4.0};  // enough memory for the 2x working set
  r.params["iterations"] = 1;
  const double one = engine.Estimate(r).value().exec_seconds;
  r.params["iterations"] = 5;
  EXPECT_NEAR(engine.Estimate(r).value().exec_seconds, 5 * one, 1e-9);
}

// ---- Data movement. --------------------------------------------------------
TEST(DataMovementTest, SameStoreNoTransformIsFree) {
  DataMovementModel model;
  EXPECT_DOUBLE_EQ(model.MoveSeconds(1e9, "HDFS", "HDFS", false), 0.0);
}

TEST(DataMovementTest, CrossStorePaysLatencyAndBandwidth) {
  DataMovementModel model;
  model.set_fixed_latency_seconds(1.0);
  model.set_default_bandwidth(100e6);
  EXPECT_NEAR(model.MoveSeconds(1e9, "A", "B", false), 1.0 + 10.0, 1e-9);
}

TEST(DataMovementTest, TransformAddsConversionPass) {
  DataMovementModel model;
  model.set_fixed_latency_seconds(1.0);
  model.set_transform_seconds_per_gb(2.0);
  const double plain = model.MoveSeconds(1e9, "A", "B", false);
  const double with_transform = model.MoveSeconds(1e9, "A", "B", true);
  EXPECT_NEAR(with_transform - plain, 2.0, 1e-9);
  // Same-store transform still costs the conversion + latency.
  EXPECT_NEAR(model.MoveSeconds(1e9, "A", "A", true), 3.0, 1e-9);
}

TEST(DataMovementTest, PerPairBandwidthOverrides) {
  DataMovementModel model;
  model.set_fixed_latency_seconds(0.0);
  model.SetBandwidth("PostgreSQL", "HDFS", 40e6);
  EXPECT_NEAR(model.MoveSeconds(4e8, "PostgreSQL", "HDFS", false), 10.0,
              1e-9);
  // The reverse direction keeps the default.
  EXPECT_NEAR(model.MoveSeconds(4e8, "HDFS", "PostgreSQL", false), 4.0, 1e-9);
}

// ---- Registry. -------------------------------------------------------------
TEST(EngineRegistryTest, AddFindAvailability) {
  EngineRegistry registry;
  SimulatedEngine::Config cfg;
  cfg.name = "X";
  ASSERT_TRUE(registry.Add(std::make_unique<SimulatedEngine>(cfg)).ok());
  EXPECT_EQ(registry.Add(std::make_unique<SimulatedEngine>(cfg)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_NE(registry.Find("X"), nullptr);
  EXPECT_EQ(registry.Find("Y"), nullptr);
  EXPECT_TRUE(registry.IsAvailable("X"));
  ASSERT_TRUE(registry.SetAvailable("X", false).ok());
  EXPECT_FALSE(registry.IsAvailable("X"));
  EXPECT_EQ(registry.SetAvailable("Y", false).code(), StatusCode::kNotFound);
  EXPECT_FALSE(registry.IsAvailable("Y"));
}

// ---- Circuit breaker. ------------------------------------------------------
class BreakerTest : public ::testing::Test {
 protected:
  BreakerTest() {
    SimulatedEngine::Config cfg;
    cfg.name = "X";
    EXPECT_TRUE(registry_.Add(std::make_unique<SimulatedEngine>(cfg)).ok());
    EngineRegistry::BreakerConfig breaker;
    breaker.base_suspension_seconds = 10.0;
    breaker.suspension_multiplier = 2.0;
    breaker.max_suspension_seconds = 100.0;
    breaker.off_after_consecutive_trips = 3;
    registry_.set_breaker_config(breaker);
  }

  EngineHealth HealthOf(const std::string& name) {
    return registry_.HealthOf(name).value().health;
  }

  EngineRegistry registry_;
};

TEST_F(BreakerTest, TripSuspendsThenProbesThenCloses) {
  const uint64_t epoch0 = registry_.availability_epoch();
  ASSERT_TRUE(registry_.ReportFailure("X").ok());
  EXPECT_EQ(HealthOf("X"), EngineHealth::kSuspended);
  EXPECT_FALSE(registry_.IsAvailable("X"));
  EXPECT_GT(registry_.availability_epoch(), epoch0);

  // Clock short of the suspension deadline: still out of rotation.
  registry_.AdvanceSimClock(9.0);
  EXPECT_EQ(HealthOf("X"), EngineHealth::kSuspended);
  // Past the deadline: half-open, available as a probe, epoch bumped again.
  const uint64_t epoch1 = registry_.availability_epoch();
  registry_.AdvanceSimClock(2.0);
  EXPECT_EQ(HealthOf("X"), EngineHealth::kHalfOpen);
  EXPECT_TRUE(registry_.IsAvailable("X"));
  EXPECT_GT(registry_.availability_epoch(), epoch1);

  ASSERT_TRUE(registry_.ReportSuccess("X").ok());
  EXPECT_EQ(HealthOf("X"), EngineHealth::kOn);
  EXPECT_EQ(registry_.HealthOf("X").value().consecutive_trips, 0);
  EXPECT_EQ(registry_.HealthOf("X").value().trips_total, 1u);
}

TEST_F(BreakerTest, BackoffEscalatesAndTripsToOff) {
  ASSERT_TRUE(registry_.ReportFailure("X").ok());
  EXPECT_DOUBLE_EQ(registry_.HealthOf("X").value().suspended_until, 10.0);
  registry_.AdvanceSimClock(10.0);
  ASSERT_EQ(HealthOf("X"), EngineHealth::kHalfOpen);

  // Second trip while half-open: doubled suspension from the current clock.
  ASSERT_TRUE(registry_.ReportFailure("X").ok());
  EXPECT_EQ(HealthOf("X"), EngineHealth::kSuspended);
  EXPECT_DOUBLE_EQ(registry_.HealthOf("X").value().suspended_until,
                   10.0 + 20.0);
  registry_.AdvanceSimClock(20.0);
  ASSERT_EQ(HealthOf("X"), EngineHealth::kHalfOpen);

  // Third consecutive trip hits the limit: permanently OFF; the clock never
  // resurrects it.
  ASSERT_TRUE(registry_.ReportFailure("X").ok());
  EXPECT_EQ(HealthOf("X"), EngineHealth::kOff);
  registry_.AdvanceSimClock(1e6);
  EXPECT_EQ(HealthOf("X"), EngineHealth::kOff);
  EXPECT_FALSE(registry_.IsAvailable("X"));
  EXPECT_EQ(registry_.HealthOf("X").value().trips_total, 3u);
}

TEST_F(BreakerTest, SuccessClosesStreakSoBackoffRestarts) {
  ASSERT_TRUE(registry_.ReportFailure("X").ok());
  registry_.AdvanceSimClock(10.0);
  ASSERT_TRUE(registry_.ReportSuccess("X").ok());
  ASSERT_EQ(HealthOf("X"), EngineHealth::kOn);

  // The recovered streak is gone: the next trip starts at base backoff
  // again instead of escalating toward OFF.
  ASSERT_TRUE(registry_.ReportFailure("X").ok());
  EXPECT_EQ(HealthOf("X"), EngineHealth::kSuspended);
  EXPECT_EQ(registry_.HealthOf("X").value().consecutive_trips, 1);
  EXPECT_DOUBLE_EQ(registry_.HealthOf("X").value().suspended_until,
                   10.0 + 10.0);
}

TEST_F(BreakerTest, ManualOffIgnoresFailuresAndRecovery) {
  ASSERT_TRUE(registry_.SetAvailable("X", false).ok());
  EXPECT_EQ(HealthOf("X"), EngineHealth::kOff);
  // Neither failure reports nor any amount of simulated time resurrect a
  // manually disabled engine.
  ASSERT_TRUE(registry_.ReportFailure("X").ok());
  registry_.AdvanceSimClock(1e9);
  EXPECT_EQ(HealthOf("X"), EngineHealth::kOff);
  EXPECT_FALSE(registry_.IsAvailable("X"));
  // Only an explicit ON undoes it, resetting the breaker entirely.
  ASSERT_TRUE(registry_.SetAvailable("X", true).ok());
  EXPECT_EQ(HealthOf("X"), EngineHealth::kOn);
  EXPECT_EQ(registry_.HealthOf("X").value().consecutive_trips, 0);
}

TEST_F(BreakerTest, NeverOffWhenTripLimitDisabled) {
  EngineRegistry::BreakerConfig breaker = registry_.breaker_config();
  breaker.off_after_consecutive_trips = 0;  // never amputate
  registry_.set_breaker_config(breaker);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(registry_.ReportFailure("X").ok());
    EXPECT_EQ(HealthOf("X"), EngineHealth::kSuspended) << i;
  }
  // Backoff is capped, so the engine always has a finite path back.
  EXPECT_LE(registry_.HealthOf("X").value().suspended_until,
            registry_.sim_clock_seconds() + 100.0);
  registry_.AdvanceSimClock(100.0);
  EXPECT_EQ(HealthOf("X"), EngineHealth::kHalfOpen);
}

TEST_F(BreakerTest, ReportsOnUnknownEngineFail) {
  EXPECT_EQ(registry_.ReportFailure("Y").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry_.ReportSuccess("Y").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry_.HealthOf("Y").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ires
