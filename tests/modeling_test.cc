#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "modeling/kernel_models.h"
#include "modeling/linear_models.h"
#include "modeling/model_selection.h"
#include "modeling/neural.h"
#include "modeling/refinement.h"
#include "modeling/tree_models.h"

namespace ires {
namespace {

// ---------------------------------------------------------------- linalg
TEST(LinalgTest, SolveLinearSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  auto x = SolveLinearSystem(a, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-9);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-9);
}

TEST(LinalgTest, SingularSystemRejected) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_FALSE(SolveLinearSystem(a, {1, 2}).ok());
}

TEST(LinalgTest, ShapeMismatchRejected) {
  Matrix a(2, 3);
  EXPECT_FALSE(SolveLinearSystem(a, {1, 2}).ok());
}

TEST(LinalgTest, LeastSquaresRecoversPlane) {
  // y = 3x0 - 2x1 (+ tiny ridge); overdetermined system.
  Matrix x;
  Vector y;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const double a = rng.Uniform(-1, 1), b = rng.Uniform(-1, 1);
    x.AppendRow({a, b});
    y.push_back(3 * a - 2 * b);
  }
  auto w = SolveLeastSquares(x, y);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(w.value()[0], 3.0, 1e-3);
  EXPECT_NEAR(w.value()[1], -2.0, 1e-3);
}

TEST(LinalgTest, WeightedLeastSquaresPrefersHeavySamples) {
  // Two inconsistent clusters; weights pull the fit toward the heavy one.
  Matrix x;
  Vector y, w;
  for (int i = 0; i < 10; ++i) {
    x.AppendRow({1.0});
    y.push_back(10.0);
    w.push_back(100.0);
  }
  for (int i = 0; i < 10; ++i) {
    x.AppendRow({1.0});
    y.push_back(0.0);
    w.push_back(1.0);
  }
  auto coef = SolveLeastSquares(x, y, 1e-9, &w);
  ASSERT_TRUE(coef.ok());
  EXPECT_GT(coef.value()[0], 9.0);
}

// --------------------------------------------------------- linear models
void FillLinear(Matrix* x, Vector* y, int n, uint64_t seed,
                double noise = 0.0) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double a = rng.Uniform(0, 10), b = rng.Uniform(0, 5);
    x->AppendRow({a, b});
    y->push_back(2 * a + 7 * b + 1 + noise * rng.Normal());
  }
}

TEST(LinearRegressionTest, RecoversCoefficients) {
  Matrix x;
  Vector y;
  FillLinear(&x, &y, 60, 1);
  LinearRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(model.coefficients()[0], 2.0, 1e-4);
  EXPECT_NEAR(model.coefficients()[1], 7.0, 1e-4);
  EXPECT_NEAR(model.intercept(), 1.0, 1e-3);
  EXPECT_NEAR(model.Predict({1, 1}), 10.0, 1e-3);
}

TEST(LinearRegressionTest, EmptyDataRejected) {
  LinearRegression model;
  EXPECT_FALSE(model.Fit(Matrix(), {}).ok());
}

TEST(LeastMedianSquaresTest, RobustToOutliers) {
  Matrix x;
  Vector y;
  FillLinear(&x, &y, 60, 2, 0.05);
  // Poison 20% of the points with gross outliers.
  Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    const size_t victim = static_cast<size_t>(rng.UniformInt(0, 59));
    y[victim] += 500.0;
  }
  LeastMedianSquares robust;
  LinearRegression plain;
  ASSERT_TRUE(robust.Fit(x, y).ok());
  ASSERT_TRUE(plain.Fit(x, y).ok());
  // Evaluate on clean data.
  Matrix tx;
  Vector ty;
  FillLinear(&tx, &ty, 40, 4);
  EXPECT_LT(Rmse(robust, tx, ty), Rmse(plain, tx, ty));
  EXPECT_LT(Rmse(robust, tx, ty), 5.0);
}

TEST(PolynomialRegressionTest, FitsQuadratic) {
  Matrix x;
  Vector y;
  Rng rng(5);
  for (int i = 0; i < 80; ++i) {
    const double a = rng.Uniform(-3, 3);
    x.AppendRow({a});
    y.push_back(2 * a * a - a + 3);
  }
  PolynomialRegression model(2);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(model.Predict({2.0}), 2 * 4 - 2 + 3, 0.05);
  EXPECT_NEAR(model.Predict({-1.5}), 2 * 2.25 + 1.5 + 3, 0.05);
}

// --------------------------------------------------------- kernel models
TEST(GaussianProcessTest, InterpolatesSmoothFunction) {
  Matrix x;
  Vector y;
  for (int i = 0; i <= 20; ++i) {
    const double t = i / 20.0 * 6.0;
    x.AppendRow({t});
    y.push_back(std::sin(t));
  }
  GaussianProcess gp(0.8, 1e-4);
  ASSERT_TRUE(gp.Fit(x, y).ok());
  EXPECT_NEAR(gp.Predict({1.55}), std::sin(1.55), 0.05);
  EXPECT_NEAR(gp.Predict({4.0}), std::sin(4.0), 0.05);
}

TEST(RbfNetworkTest, FitsNonLinearSurface) {
  Matrix x;
  Vector y;
  Rng rng(6);
  for (int i = 0; i < 150; ++i) {
    const double a = rng.Uniform(-2, 2), b = rng.Uniform(-2, 2);
    x.AppendRow({a, b});
    y.push_back(std::exp(-(a * a + b * b)));
  }
  RbfNetwork model(12);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(Rmse(model, x, y), 0.08);
}

// ----------------------------------------------------------- perceptron
TEST(MultilayerPerceptronTest, LearnsNonLinearFunction) {
  Matrix x;
  Vector y;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-1, 1);
    x.AppendRow({a});
    y.push_back(a * a);
  }
  MultilayerPerceptron::Options options;
  options.epochs = 400;
  MultilayerPerceptron mlp(options);
  ASSERT_TRUE(mlp.Fit(x, y).ok());
  EXPECT_LT(Rmse(mlp, x, y), 0.05);
}

// ----------------------------------------------------------- tree models
TEST(RegressionTreeTest, FitsPiecewiseConstant) {
  Matrix x;
  Vector y;
  for (int i = 0; i < 100; ++i) {
    const double a = i / 100.0;
    x.AppendRow({a});
    y.push_back(a < 0.5 ? 1.0 : 5.0);
  }
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_NEAR(tree.Predict({0.2}), 1.0, 1e-6);
  EXPECT_NEAR(tree.Predict({0.8}), 5.0, 1e-6);
  EXPECT_GT(tree.node_count(), 1);
}

TEST(RegressionTreeTest, RespectsMinSamplesLeaf) {
  Matrix x;
  Vector y;
  for (int i = 0; i < 4; ++i) {
    x.AppendRow({static_cast<double>(i)});
    y.push_back(i);
  }
  RegressionTree::Options options;
  options.min_samples_leaf = 10;  // cannot split at all
  RegressionTree tree(options);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_NEAR(tree.Predict({0}), 1.5, 1e-9);  // the global mean
}

TEST(BaggingTest, SmoothsSingleTreeVariance) {
  Matrix x;
  Vector y;
  Rng rng(8);
  for (int i = 0; i < 120; ++i) {
    const double a = rng.Uniform(0, 1);
    x.AppendRow({a});
    y.push_back(std::sin(6 * a) + 0.2 * rng.Normal());
  }
  Bagging bagging(15);
  ASSERT_TRUE(bagging.Fit(x, y).ok());
  EXPECT_LT(Rmse(bagging, x, y), 0.45);
}

TEST(RandomSubspaceTest, UsesFeatureSubsets) {
  Matrix x;
  Vector y;
  Rng rng(9);
  for (int i = 0; i < 120; ++i) {
    Vector row = {rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1),
                  rng.Uniform(0, 1)};
    y.push_back(3 * row[0] + row[2]);
    x.AppendRow(row);
  }
  RandomSubspace model(12, 0.5);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(MeanRelativeError(model, x, y), 0.35);
}

TEST(RegressionByDiscretizationTest, PredictsBinMeans) {
  Matrix x;
  Vector y;
  for (int i = 0; i < 100; ++i) {
    const double a = i / 100.0;
    x.AppendRow({a});
    y.push_back(a * 10);
  }
  RegressionByDiscretization model(5);
  ASSERT_TRUE(model.Fit(x, y).ok());
  // With 5 equal-frequency bins over [0,10), predictions are bin means
  // (1, 3, 5, 7, 9).
  EXPECT_NEAR(model.Predict({0.05}), 0.95, 0.6);
  EXPECT_NEAR(model.Predict({0.95}), 8.95, 0.6);
}

// -------------------------------------------------------- model selection
TEST(ModelSelectionTest, ZooHasAllSevenWekaFamilies) {
  auto zoo = DefaultModelZoo();
  std::set<std::string> names;
  for (const auto& model : zoo) names.insert(model->name());
  for (const char* expected :
       {"GaussianProcess", "MultilayerPerceptron", "LeastMedianSquares",
        "Bagging", "RandomSubspace", "RegressionByDiscretization",
        "RBFNetwork"}) {
    EXPECT_TRUE(names.count(expected) > 0) << expected;
  }
}

TEST(ModelSelectionTest, PicksReasonableModelForLinearData) {
  Matrix x;
  Vector y;
  FillLinear(&x, &y, 80, 10, 0.1);
  CrossValidationSelector selector(4);
  SelectionReport report;
  auto model = selector.SelectAndFit(x, y, {}, &report);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_LT(MeanRelativeError(*model.value(), x, y), 0.1);
  EXPECT_FALSE(report.best_model.empty());
  EXPECT_GE(report.per_model_rmse.size(), 7u);
}

TEST(ModelSelectionTest, CustomCandidateListRespected) {
  Matrix x;
  Vector y;
  FillLinear(&x, &y, 40, 12);
  std::vector<std::unique_ptr<Model>> candidates;
  candidates.push_back(std::make_unique<LinearRegression>());
  CrossValidationSelector selector(3);
  SelectionReport report;
  auto model = selector.SelectAndFit(x, y, std::move(candidates), &report);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(report.best_model, "LinearRegression");
}

TEST(ModelSelectionTest, EmptyDataRejected) {
  CrossValidationSelector selector;
  EXPECT_FALSE(selector.SelectAndFit(Matrix(), {}).ok());
}

// ------------------------------------------------------------ refinement
TEST(OnlineEstimatorTest, ErrorDropsWithObservations) {
  // Ground truth: t = 5 + 30*gb, mild noise. This is the Fig. 16a dynamic.
  Rng rng(13);
  OnlineEstimator::Options options;
  options.min_samples = 5;
  options.refit_interval = 5;
  OnlineEstimator estimator(options);

  double early_error = 0.0, late_error = 0.0;
  for (int run = 0; run < 80; ++run) {
    const double gb = rng.Uniform(0.1, 4.0);
    const double truth = (5 + 30 * gb) * std::exp(rng.Normal(0, 0.05));
    const double err = estimator.Observe({gb}, truth);
    if (run < 10) early_error += err / 10;
    if (run >= 70) late_error += err / 10;
  }
  EXPECT_GT(early_error, 0.3);
  EXPECT_LT(late_error, 0.15);
  EXPECT_TRUE(estimator.has_model());
}

TEST(OnlineEstimatorTest, WindowBoundsMemory) {
  OnlineEstimator::Options options;
  options.window = 16;
  OnlineEstimator estimator(options);
  for (int i = 0; i < 100; ++i) {
    estimator.Observe({static_cast<double>(i)}, i * 2.0);
  }
  EXPECT_EQ(estimator.sample_count(), 16u);
}

TEST(OnlineEstimatorTest, AdaptsToInfrastructureChange) {
  // Fig. 16b: regime change halves execution times; the windowed estimator
  // must re-converge instead of staying wrong forever.
  Rng rng(14);
  OnlineEstimator::Options options;
  options.window = 60;
  options.refit_interval = 5;
  OnlineEstimator estimator(options);

  auto truth = [&](double gb, bool after) {
    const double scale = after ? 0.5 : 1.0;
    return (5 + 30 * gb) * scale * std::exp(rng.Normal(0, 0.05));
  };
  for (int run = 0; run < 100; ++run) {
    const double gb = rng.Uniform(0.1, 4.0);
    estimator.Observe({gb}, truth(gb, false));
  }
  // Right after the change the stale model overestimates by ~2x.
  double spike = 0.0;
  for (int run = 0; run < 5; ++run) {
    const double gb = rng.Uniform(0.1, 4.0);
    spike += estimator.RelativeError({gb}, truth(gb, true)) / 5;
  }
  EXPECT_GT(spike, 0.4);
  // Keep observing in the new regime; the error must recover.
  double recovered = 0.0;
  for (int run = 0; run < 120; ++run) {
    const double gb = rng.Uniform(0.1, 4.0);
    const double err = estimator.Observe({gb}, truth(gb, true));
    if (run >= 110) recovered += err / 10;
  }
  EXPECT_LT(recovered, 0.15);
}

TEST(OnlineEstimatorTest, ResetDiscardsEverything) {
  OnlineEstimator estimator;
  for (int i = 0; i < 20; ++i) estimator.Observe({1.0 * i}, 2.0 * i);
  estimator.Reset();
  EXPECT_EQ(estimator.sample_count(), 0u);
  EXPECT_FALSE(estimator.has_model());
  EXPECT_EQ(estimator.Predict({1.0}), 0.0);
}

}  // namespace
}  // namespace ires
