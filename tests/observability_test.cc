// Deep-observability suite: the cost-model drift observatory (calibrated
// pairs stay quiet, mis-modeled pairs get flagged once and clear with
// hysteresis), the multi-window SLO burn-rate monitor on a fake clock, and
// the flight-recorder acceptance path — a chaos-injected failed job whose
// journal (via GET /apiv1/debug/events and the record's eventSnapshot)
// reconstructs the full decision sequence event by event.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/rest_api.h"
#include "modeling/drift.h"
#include "service/job_service.h"
#include "telemetry/event_journal.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/slo.h"

namespace ires {
namespace {

constexpr const char* kGraph =
    "asapServerLog,LineCount,0\n"
    "LineCount,d1,0\n"
    "d1,$$target\n";

void RegisterLineCount(RestApi* api) {
  ASSERT_EQ(api->Handle("POST", "/apiv1/datasets/asapServerLog",
                        "Constraints.Engine.FS=HDFS\n"
                        "Execution.path=hdfs:///log\n"
                        "Optimization.size=5e8\n"
                        "Optimization.documents=1000\n")
                .code,
            201);
  ASSERT_EQ(api->Handle("POST", "/apiv1/abstractOperators/LineCount",
                        "Constraints.OpSpecification.Algorithm.name="
                        "LineCount\n")
                .code,
            201);
  ASSERT_EQ(api->Handle("POST", "/apiv1/operators/LineCount_Spark",
                        "Constraints.Engine=Spark\n"
                        "Constraints.OpSpecification.Algorithm.name="
                        "LineCount\n"
                        "Constraints.Input0.Engine.FS=HDFS\n"
                        "Constraints.Output0.Engine.FS=HDFS\n")
                .code,
            201);
  ASSERT_EQ(api->Handle("POST", "/apiv1/workflows/lc", kGraph).code, 201);
}

// ------------------------------------------------------ Drift observatory

TEST(DriftObservatoryTest, CalibratedOperatorStaysUnflagged) {
  DriftObservatory drift;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(drift.Observe("LineCount", "Spark", 10.0, 10.2, "job-ok"));
  }
  const std::vector<DriftObservatory::PairSnapshot> pairs = drift.Snapshot();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].op, "LineCount");
  EXPECT_EQ(pairs[0].engine, "Spark");
  EXPECT_EQ(pairs[0].observations, 20u);
  EXPECT_LT(pairs[0].drift_score, 0.05);  // ~2% residual: near zero
  EXPECT_FALSE(pairs[0].flagged);
  EXPECT_TRUE(drift.RefinementCandidates().empty());
}

TEST(DriftObservatoryTest, MisModeledOperatorFlagsExactlyOnce) {
  DriftObservatory drift;
  // Predicted 1s, actual 3s: relative error 0.667 > flag threshold 0.5.
  // The pair may only flag once min_observations (5) are in.
  for (uint64_t i = 1; i <= 4; ++i) {
    EXPECT_FALSE(drift.Observe("Sort", "Hama", 1.0, 3.0,
                               "job-" + std::to_string(i)));
  }
  EXPECT_TRUE(drift.Observe("Sort", "Hama", 1.0, 3.0, "job-5"));
  // Already flagged: further bad observations do not re-flag.
  EXPECT_FALSE(drift.Observe("Sort", "Hama", 1.0, 3.0, "job-6"));

  const auto candidates = drift.RefinementCandidates();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].first, "Sort");
  EXPECT_EQ(candidates[0].second, "Hama");

  const std::vector<DriftObservatory::PairSnapshot> pairs = drift.Snapshot();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0].flagged);
  EXPECT_GT(pairs[0].drift_score, 0.5);
  EXPECT_LE(pairs[0].exemplar_jobs.size(),
            drift.options().max_exemplars);
  EXPECT_FALSE(pairs[0].exemplar_jobs.empty());
}

TEST(DriftObservatoryTest, HysteresisClearsOnlyBelowClearThreshold) {
  DriftObservatory drift;
  for (int i = 0; i < 6; ++i) {
    drift.Observe("Sort", "Hama", 1.0, 3.0, "job-bad");
  }
  ASSERT_EQ(drift.RefinementCandidates().size(), 1u);
  // Perfect predictions decay the EWMA; the flag must hold until the score
  // crosses the *clear* threshold (0.25), not the flag threshold.
  bool reflagged = false;
  for (int i = 0; i < 30; ++i) {
    reflagged = reflagged || drift.Observe("Sort", "Hama", 1.0, 1.0, "job");
  }
  EXPECT_FALSE(reflagged);
  const std::vector<DriftObservatory::PairSnapshot> pairs = drift.Snapshot();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_FALSE(pairs[0].flagged);
  EXPECT_LT(pairs[0].drift_score, drift.options().clear_threshold);
  EXPECT_TRUE(drift.RefinementCandidates().empty());
}

TEST(DriftObservatoryTest, ResidualHistogramAndJsonCarryTheEvidence) {
  MetricsRegistry registry;
  DriftObservatory drift(DriftObservatory::Options(), &registry);
  drift.Observe("Sort", "Hama", 1.0, 2.0, "job-1");  // rel error 0.5
  drift.Observe("Sort", "Hama", 1.0, 1.0, "job-2");  // rel error 0

  const std::vector<DriftObservatory::PairSnapshot> pairs = drift.Snapshot();
  ASSERT_EQ(pairs.size(), 1u);
  uint64_t bucketed = 0;
  for (uint64_t count : pairs[0].residual_counts) bucketed += count;
  EXPECT_EQ(bucketed, 2u);

  const std::string json = drift.ToJson();
  EXPECT_NE(json.find("\"pairs\""), std::string::npos);
  EXPECT_NE(json.find("\"Sort\""), std::string::npos);
  EXPECT_NE(json.find("\"refinementCandidates\""), std::string::npos);

  const std::string metrics = registry.RenderPrometheus();
  EXPECT_NE(metrics.find("ires_model_residual_relative_error"),
            std::string::npos);
  EXPECT_NE(metrics.find("ires_model_drift_score"), std::string::npos);
}

// ------------------------------------------------------------ SLO monitor

SloMonitor::Options TwoWindowOptions() {
  SloMonitor::Options options;
  options.windows_seconds = {60.0, 600.0};
  options.min_sample_interval_seconds = 1.0;
  return options;
}

TEST(SloMonitorTest, AvailabilitySloBurnsOnServerErrors) {
  MetricsRegistry registry;
  double now = 0.0;
  SloMonitor slo(&registry, TwoWindowOptions(), [&now] { return now; });
  SloSpec spec;
  spec.name = "api-availability";
  spec.workload = "all";
  spec.objective = 0.99;
  slo.AddSlo(spec);

  Counter* bad = registry.GetCounter(
      "ires_http_requests_total", "requests",
      {{"method", "GET"}, {"route", "/apiv1/jobs"}, {"code", "500"}});
  ASSERT_TRUE(slo.Burning().empty());  // baseline sample at t=0, no traffic

  now = 30.0;
  bad->Increment(100);
  const std::vector<SloMonitor::SloStatus> statuses = slo.Evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].burning);
  ASSERT_EQ(statuses[0].windows.size(), 2u);
  // 100% bad against a 1% budget: burn rate 100 in every window.
  EXPECT_GT(statuses[0].windows[0].burn_rate, 1.0);
  EXPECT_GT(statuses[0].windows[1].burn_rate, 1.0);
  EXPECT_EQ(slo.Burning(), std::vector<std::string>{"api-availability"});
  EXPECT_NE(registry.RenderPrometheus().find("ires_slo_burn_rate"),
            std::string::npos);
}

TEST(SloMonitorTest, HealthyTrafficDoesNotBurn) {
  MetricsRegistry registry;
  double now = 0.0;
  SloMonitor slo(&registry, TwoWindowOptions(), [&now] { return now; });
  SloSpec spec;
  spec.name = "api-availability";
  spec.workload = "all";
  spec.objective = 0.99;
  slo.AddSlo(spec);

  Counter* ok = registry.GetCounter(
      "ires_http_requests_total", "requests",
      {{"method", "GET"}, {"route", "/apiv1/jobs"}, {"code", "200"}});
  (void)slo.Evaluate();
  now = 30.0;
  ok->Increment(1000);
  const std::vector<SloMonitor::SloStatus> statuses = slo.Evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_FALSE(statuses[0].burning);
  EXPECT_DOUBLE_EQ(statuses[0].compliance, 1.0);
}

TEST(SloMonitorTest, LatencySloCountsHistogramBucketsBelowThreshold) {
  MetricsRegistry registry;
  double now = 0.0;
  SloMonitor slo(&registry, TwoWindowOptions(), [&now] { return now; });
  SloSpec spec;
  spec.name = "execute-latency";
  spec.workload = "dag";
  spec.method = "POST";
  spec.route = "/apiv1/workflows/{name}/execute";
  spec.latency_threshold_seconds = 1.0;
  spec.objective = 0.99;
  slo.AddSlo(spec);

  Histogram* latency = registry.GetHistogram(
      "ires_http_request_seconds", "latency",
      {{"method", "POST"}, {"route", "/apiv1/workflows/{name}/execute"}});
  (void)slo.Evaluate();
  now = 30.0;
  for (int i = 0; i < 10; ++i) latency->Observe(0.01);  // good
  for (int i = 0; i < 10; ++i) latency->Observe(2.0);   // bad: over 1s
  const std::vector<SloMonitor::SloStatus> statuses = slo.Evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].burning);
  EXPECT_EQ(statuses[0].lifetime_total, 20u);
  EXPECT_EQ(statuses[0].lifetime_good, 10u);
  // A different route's slow traffic must not count against this SLO.
  Histogram* other = registry.GetHistogram(
      "ires_http_request_seconds", "latency",
      {{"method", "POST"}, {"route", "/apiv1/sql"}});
  other->Observe(30.0);
  EXPECT_EQ(slo.Evaluate()[0].lifetime_total, 20u);
}

TEST(SloMonitorTest, MultiWindowAndSuppressesShortBursts) {
  MetricsRegistry registry;
  double now = 0.0;
  SloMonitor slo(&registry, TwoWindowOptions(), [&now] { return now; });
  SloSpec spec;
  spec.name = "api-availability";
  spec.workload = "all";
  spec.objective = 0.99;
  slo.AddSlo(spec);

  Counter* ok = registry.GetCounter(
      "ires_http_requests_total", "requests",
      {{"method", "GET"}, {"route", "/apiv1/jobs"}, {"code", "200"}});
  Counter* bad = registry.GetCounter(
      "ires_http_requests_total", "requests",
      {{"method", "GET"}, {"route", "/apiv1/jobs"}, {"code", "503"}});

  // A long healthy history...
  (void)slo.Evaluate();
  now = 5.0;
  ok->Increment(20000);
  (void)slo.Evaluate();
  // ...then a short error burst late in the long window: the 60s window
  // burns hot, but the 600s window has budget to spare, so the multi-window
  // AND keeps the SLO from flapping into the burning state.
  now = 550.0;
  bad->Increment(100);
  const std::vector<SloMonitor::SloStatus> statuses = slo.Evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  ASSERT_EQ(statuses[0].windows.size(), 2u);
  EXPECT_GT(statuses[0].windows[0].burn_rate, 1.0);  // 60s: all bad
  EXPECT_LE(statuses[0].windows[1].burn_rate, 1.0);  // 600s: within budget
  EXPECT_FALSE(statuses[0].burning);
}

// --------------------------------------- Flight-recorder acceptance (e2e)

// The decision sequence a chaos-injected doomed job must leave behind:
// admission, plan-cache miss, chosen plan, two start attempts each drawing
// an injected transient (one in-place retry between them), the breaker
// tripping on the exhausted step, one replanning round (which dies on the
// suspended engine), and the terminal failure.
const EventKind kDoomedJobSequence[] = {
    EventKind::kAdmissionAccept, EventKind::kPlanCacheMiss,
    EventKind::kPlanChosen,      EventKind::kStepStart,
    EventKind::kChaosInject,     EventKind::kStepRetry,
    EventKind::kStepStart,       EventKind::kChaosInject,
    EventKind::kBreakerTrip,     EventKind::kReplan,
    EventKind::kJobFailed,
};

IresServer::ExecutionOptions DoomedOptions() {
  IresServer::ExecutionOptions exec;
  exec.max_replans = 1;
  exec.retry.max_attempts = 2;
  exec.retry.base_backoff_seconds = 0.0;
  exec.chaos.seed = 7;
  exec.chaos.transient_probability = 1.0;
  return exec;
}

void ExpectKinds(const std::vector<JournalEvent>& events) {
  const size_t expected =
      sizeof(kDoomedJobSequence) / sizeof(kDoomedJobSequence[0]);
  ASSERT_EQ(events.size(), expected) << EventsToJson(events);
  for (size_t i = 0; i < expected; ++i) {
    EXPECT_EQ(events[i].kind, kDoomedJobSequence[i])
        << "event " << i << ": " << EventToJson(events[i]);
  }
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(FlightRecorderE2ETest, FailedJobJournalReconstructsDecisionSequence) {
  IresServer server;
  JobService::Options options;
  options.workers = 1;
  JobService jobs(&server, options);
  RestApi api(&server, &jobs);
  RegisterLineCount(&api);
  auto graph = server.ParseWorkflow(kGraph);
  ASSERT_TRUE(graph.ok());

  auto id = jobs.Submit(graph.value(), "lc", OptimizationPolicy::MinimizeTime(),
                        DoomedOptions());
  ASSERT_TRUE(id.ok()) << id.status();
  ASSERT_TRUE(jobs.WaitForIdle(30.0));

  auto record = jobs.Get(id.value());
  ASSERT_TRUE(record.ok());
  ASSERT_EQ(record.value().state, JobState::kFailed) << record.value().error;
  EXPECT_EQ(record.value().slo_class, "dag");

  // 1. The journal itself, queried by job id.
  EventJournal::Filter filter;
  filter.job = id.value();
  const std::vector<JournalEvent> events = server.journal().Query(filter);
  ExpectKinds(events);

  // Spot-check the payloads that make the sequence a postmortem rather
  // than a list of names.
  EXPECT_EQ(events[0].code, "dag");                 // admission: SLO class
  EXPECT_GT(events[2].value, 0.0);                  // plan cost
  EXPECT_NE(events[2].detail.find("engines="), std::string::npos);
  EXPECT_EQ(events[3].engine, "Spark");             // first attempt
  EXPECT_DOUBLE_EQ(events[3].value, 1.0);
  EXPECT_EQ(events[4].code, "transient");           // injected fault
  EXPECT_DOUBLE_EQ(events[6].value, 2.0);           // second attempt
  EXPECT_EQ(events[8].engine, "Spark");             // breaker trip
  EXPECT_EQ(events[8].code, "SUSPENDED");
  EXPECT_EQ(events[9].code, "transient");           // replan cause
  EXPECT_FALSE(events[10].detail.empty());          // terminal error

  // 2. The failure snapshot attached to the job record.
  ExpectKinds(record.value().event_snapshot);

  // 3. The REST surface: debug/events with job and kind filters.
  ApiResponse by_job =
      api.Handle("GET", "/apiv1/debug/events?job=" + id.value());
  ASSERT_EQ(by_job.code, 200) << by_job.body;
  for (EventKind kind : kDoomedJobSequence) {
    EXPECT_NE(by_job.body.find(EventKindName(kind)), std::string::npos)
        << EventKindName(kind);
  }
  EXPECT_NE(by_job.body.find("\"headSeq\":"), std::string::npos);

  ApiResponse starts = api.Handle(
      "GET", "/apiv1/debug/events?job=" + id.value() + "&kind=step_start");
  ASSERT_EQ(starts.code, 200);
  size_t count = 0;
  for (size_t pos = starts.body.find("step_start"); pos != std::string::npos;
       pos = starts.body.find("step_start", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);

  ApiResponse bad_kind = api.Handle("GET", "/apiv1/debug/events?kind=nope");
  EXPECT_EQ(bad_kind.code, 400);
  ApiResponse bad_limit = api.Handle("GET", "/apiv1/debug/events?limit=0");
  EXPECT_EQ(bad_limit.code, 400);

  // 4. The job record JSON carries sloClass and the event snapshot.
  ApiResponse job_json = api.Handle("GET", "/apiv1/jobs/" + id.value());
  ASSERT_EQ(job_json.code, 200);
  EXPECT_NE(job_json.body.find("\"sloClass\":\"dag\""), std::string::npos);
  EXPECT_NE(job_json.body.find("\"eventSnapshot\":["), std::string::npos);
  EXPECT_NE(job_json.body.find("breaker_trip"), std::string::npos);
}

TEST(FlightRecorderE2ETest, ProcessScopedBreakerEventsCarryNoJobId) {
  IresServer server;
  JobService::Options options;
  options.workers = 1;
  JobService jobs(&server, options);
  RestApi api(&server, &jobs);
  RegisterLineCount(&api);
  auto graph = server.ParseWorkflow(kGraph);
  ASSERT_TRUE(graph.ok());
  auto id = jobs.Submit(graph.value(), "lc", OptimizationPolicy::MinimizeTime(),
                        DoomedOptions());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(jobs.WaitForIdle(30.0));

  // The registry-level breaker transition (ON -> SUSPENDED) is recorded as
  // a process-scoped breaker_state event, job-attribution-free.
  EventJournal::Filter filter;
  filter.has_kind = true;
  filter.kind = EventKind::kBreakerState;
  const std::vector<JournalEvent> transitions = server.journal().Query(filter);
  ASSERT_FALSE(transitions.empty());
  EXPECT_TRUE(transitions[0].job.empty());
  EXPECT_EQ(transitions[0].engine, "Spark");
  EXPECT_EQ(transitions[0].code, "SUSPENDED");
  EXPECT_NE(transitions[0].detail.find("ON"), std::string::npos);
}

// -------------------------------------------- Drift + SLO REST surfaces

TEST(ObservabilityRestTest, DriftEndpointReportsCalibratedAndMisModeled) {
  IresServer server;
  RestApi api(&server);
  RegisterLineCount(&api);

  // A healthy executed workflow feeds near-zero residuals for the pairs it
  // ran (planner estimates are the simulator's own model).
  ASSERT_EQ(api.Handle("POST", "/apiv1/workflows/lc/execute").code, 200);
  bool saw_calibrated = false;
  for (const auto& pair : server.drift().Snapshot()) {
    EXPECT_FALSE(pair.flagged) << pair.op << "/" << pair.engine;
    saw_calibrated = true;
  }
  EXPECT_TRUE(saw_calibrated);
  EXPECT_TRUE(server.drift().RefinementCandidates().empty());

  // A deliberately mis-modeled pair (prediction 4x off) gets flagged and
  // surfaces through the endpoint.
  for (int i = 0; i < 6; ++i) {
    server.drift().Observe("Sort", "Hama", 1.0, 4.0, "job-bad");
  }
  ApiResponse drift = api.Handle("GET", "/apiv1/models/drift");
  ASSERT_EQ(drift.code, 200);
  EXPECT_NE(drift.body.find("\"refinementCandidates\":[{\"op\":\"Sort\""),
            std::string::npos)
      << drift.body;
  EXPECT_NE(drift.body.find("\"flagged\":true"), std::string::npos);
}

TEST(ObservabilityRestTest, HealthzRendersSloStateAndStaysOkWhenQuiet) {
  IresServer server;
  RestApi api(&server);
  ApiResponse health = api.Handle("GET", "/apiv1/healthz");
  ASSERT_EQ(health.code, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"slo\":{"), std::string::npos);
  // The default objectives registered by the server are visible.
  EXPECT_NE(health.body.find("dag-execute-latency"), std::string::npos);
  EXPECT_NE(health.body.find("sql-latency"), std::string::npos);
  EXPECT_NE(health.body.find("api-availability"), std::string::npos);
}

TEST(ObservabilityRestTest, MetricsExposeDriftAndSloFamilies) {
  IresServer server;
  RestApi api(&server);
  RegisterLineCount(&api);
  ASSERT_EQ(api.Handle("POST", "/apiv1/workflows/lc/execute").code, 200);
  (void)api.Handle("GET", "/apiv1/healthz");  // evaluates SLOs -> gauges
  ApiResponse metrics = api.Handle("GET", "/apiv1/metrics");
  ASSERT_EQ(metrics.code, 200);
  EXPECT_NE(metrics.body.find("ires_model_residual_relative_error"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ires_slo_burn_rate"), std::string::npos);
  EXPECT_NE(metrics.body.find("ires_slo_compliance"), std::string::npos);
}

}  // namespace
}  // namespace ires
