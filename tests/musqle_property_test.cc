// Property suite over the full MuSQLE TPC-H query set: structural and
// cost-consistency invariants that must hold for every query, placement
// and scale.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>

#include "sql/musqle_optimizer.h"
#include "sql/tpch_queries.h"

namespace ires::sql {
namespace {

struct Scenario {
  int query_index;
  double scale_gb;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  return "Q" + std::to_string(info.param.query_index) + "_scale" +
         std::to_string(static_cast<int>(info.param.scale_gb));
}

class MusqlePropertyTest : public ::testing::TestWithParam<Scenario> {
 protected:
  MusqlePropertyTest()
      : catalog_(MakeTpchCatalog(GetParam().scale_gb, "PostgreSQL", "MemSQL",
                                 "SparkSQL")),
        engines_(MakeStandardSqlEngines()),
        optimizer_(&catalog_, &engines_) {}

  Query ParseCurrent() {
    auto q = SqlParser::Parse(MusqleQuerySet()[GetParam().query_index]);
    EXPECT_TRUE(q.ok()) << q.status();
    return q.value();
  }

  Catalog catalog_;
  std::map<std::string, std::unique_ptr<SqlEngine>> engines_;
  MusqleOptimizer optimizer_;
};

TEST_P(MusqlePropertyTest, PlanIsStructurallySound) {
  const Query query = ParseCurrent();
  auto plan = optimizer_.Optimize(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const SqlPlan& p = plan.value();

  // Exactly one scan per table, each either at the table's home engine or
  // preceded by a bulk-replication move into the scanning engine.
  std::set<std::string> scanned;
  for (const SqlPlanNode& node : p.nodes) {
    if (node.kind != SqlPlanNode::Kind::kScan) continue;
    EXPECT_TRUE(scanned.insert(node.table).second) << node.table;
    if (node.engine != catalog_.FindTable(node.table)->engine) {
      ASSERT_EQ(node.children.size(), 1u);
      EXPECT_EQ(p.nodes[node.children[0]].kind, SqlPlanNode::Kind::kMove);
      EXPECT_EQ(p.nodes[node.children[0]].engine, node.engine);
    }
  }
  EXPECT_EQ(scanned.size(), query.tables.size());
  // n-1 joins for n tables.
  EXPECT_EQ(p.CountKind(SqlPlanNode::Kind::kJoin),
            static_cast<int>(query.tables.size()) - 1);

  // Every join's children are already at the join's engine (moves were
  // inserted where needed); every move lands at its parent's engine.
  std::function<void(int)> check = [&](int id) {
    const SqlPlanNode& node = p.nodes[id];
    for (int child : node.children) {
      if (node.kind == SqlPlanNode::Kind::kJoin) {
        EXPECT_EQ(p.nodes[child].engine, node.engine);
      }
      check(child);
    }
  };
  check(p.root);
}

TEST_P(MusqlePropertyTest, ReportedCostEqualsRepricedPlan) {
  auto plan = optimizer_.Optimize(ParseCurrent());
  ASSERT_TRUE(plan.ok());
  double sum = 0.0;
  for (const SqlPlanNode& node : plan.value().nodes) sum += node.seconds;
  EXPECT_NEAR(sum, plan.value().total_seconds,
              plan.value().total_seconds * 1e-9);
}

TEST_P(MusqlePropertyTest, MultiEngineNeverWorseThanSingleEngine) {
  const Query query = ParseCurrent();
  auto multi = optimizer_.Optimize(query);
  ASSERT_TRUE(multi.ok());
  for (const auto& [name, engine] : engines_) {
    // Skip baselines that would need replicated tables they cannot hold.
    auto single = optimizer_.PlanSingleEngine(query, name);
    if (!single.ok()) continue;
    EXPECT_LE(multi.value().total_seconds,
              single.value().total_seconds * (1.0 + 1e-9))
        << name;
  }
}

TEST_P(MusqlePropertyTest, EnumerationStrategiesAgree) {
  const Query query = ParseCurrent();
  MusqleOptimizer::Options submask;
  submask.enumeration = MusqleOptimizer::Enumeration::kSubmask;
  MusqleOptimizer other(&catalog_, &engines_, submask);
  auto a = optimizer_.Optimize(query);
  auto b = other.Optimize(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a.value().total_seconds, b.value().total_seconds,
              a.value().total_seconds * 1e-9);
}

TEST_P(MusqlePropertyTest, DeterministicAcrossRuns) {
  const Query query = ParseCurrent();
  auto a = optimizer_.Optimize(query);
  auto b = optimizer_.Optimize(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().total_seconds, b.value().total_seconds);
  EXPECT_EQ(a.value().result_engine, b.value().result_engine);
  EXPECT_EQ(a.value().nodes.size(), b.value().nodes.size());
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  const int query_count = static_cast<int>(MusqleQuerySet().size());
  for (int q = 0; q < query_count; ++q) {
    for (double scale : {5.0, 20.0}) {
      scenarios.push_back({q, scale});
    }
  }
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(AllTpchQueries, MusqlePropertyTest,
                         ::testing::ValuesIn(AllScenarios()), ScenarioName);

}  // namespace
}  // namespace ires::sql
