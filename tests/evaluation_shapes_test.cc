// End-to-end regression net for EXPERIMENTS.md: executes (not just plans)
// the evaluation workflows and asserts the paper's headline shapes — who
// wins at which scale, where the failures fall, and how large the hybrid
// gains are. If an engine-calibration change breaks a published shape,
// these tests catch it before the benches do.

#include <gtest/gtest.h>

#include "engines/standard_engines.h"
#include "executor/enforcer.h"
#include "planner/dp_planner.h"
#include "workloadgen/asap_workflows.h"

namespace ires {
namespace {

// Plans + executes `w`, optionally restricted to a single engine. Returns
// simulated seconds or a negative value when infeasible.
double Execute(const GeneratedWorkload& w, const std::string& only_engine,
               uint64_t seed) {
  auto registry = MakeStandardEngineRegistry();
  if (!only_engine.empty()) {
    for (const std::string& name : registry->Names()) {
      if (name != only_engine) (void)registry->SetAvailable(name, false);
    }
  }
  DpPlanner planner(&w.library, registry.get());
  auto plan = planner.Plan(w.graph, {});
  if (!plan.ok()) return -1.0;
  ClusterSimulator cluster(16, 4, 8.0);
  Enforcer enforcer(registry.get(), &cluster, seed);
  ExecutionReport report = enforcer.Execute(plan.value());
  return report.status.ok() ? report.makespan_seconds : -1.0;
}

// ---- Figure 11 shape. -------------------------------------------------------
struct GraphScale {
  double edges;
  const char* winner;  // the engine IReS must pick
};

class Fig11ShapeTest : public ::testing::TestWithParam<GraphScale> {};

TEST_P(Fig11ShapeTest, IresTracksTheFastestFeasibleEngine) {
  const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(GetParam().edges);
  const double ires = Execute(w, "", 42);
  ASSERT_GT(ires, 0.0);
  double best_single = 1e18;
  for (const char* engine : {"Java", "Hama", "Spark"}) {
    const double t = Execute(w, engine, 42);
    if (t > 0) best_single = std::min(best_single, t);
  }
  // IReS equals the best single engine (same seed -> same ground truth).
  EXPECT_NEAR(ires, best_single, best_single * 0.05);

  auto registry = MakeStandardEngineRegistry();
  DpPlanner planner(&w.library, registry.get());
  auto plan = planner.Plan(w.graph, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().steps.back().engine, GetParam().winner)
      << GetParam().edges;
}

INSTANTIATE_TEST_SUITE_P(
    GraphScales, Fig11ShapeTest,
    ::testing::Values(GraphScale{10e3, "Java"}, GraphScale{100e3, "Java"},
                      GraphScale{1e6, "Java"}, GraphScale{10e6, "Hama"},
                      GraphScale{100e6, "Spark"}),
    [](const ::testing::TestParamInfo<GraphScale>& info) {
      return "edges_" + std::to_string(
                            static_cast<long long>(info.param.edges));
    });

// ---- Figure 12 shape. -------------------------------------------------------
TEST(Fig12ShapeTest, HybridWindowGainsMatchThePaper) {
  // In the 10k-40k window the hybrid plan must beat the best single engine
  // by a double-digit percentage, peaking near +30%. Ground-truth noise is
  // averaged out over several seeds.
  double peak_gain = 0.0;
  for (double docs : {10e3, 20e3, 30e3, 40e3}) {
    const GeneratedWorkload w = MakeTextAnalyticsWorkflow(docs);
    double ires = 0, scikit = 0, spark = 0;
    const int kSeeds = 5;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      ires += Execute(w, "", seed) / kSeeds;
      scikit += Execute(w, "scikit", seed) / kSeeds;
      spark += Execute(w, "Spark", seed) / kSeeds;
    }
    ASSERT_GT(ires, 0.0);
    const double best_single = std::min(scikit, spark);
    const double gain = (best_single - ires) / best_single;
    EXPECT_GT(gain, 0.05) << docs;
    peak_gain = std::max(peak_gain, gain);
  }
  // Executed (noisy) gains peak slightly below the estimate-based "up to
  // 30%" of the bench (the bench reports +32% at 10k docs).
  EXPECT_GT(peak_gain, 0.18);
  EXPECT_LT(peak_gain, 0.45);
}

TEST(Fig12ShapeTest, OutsideTheWindowSingleEngineIsOptimal) {
  for (double docs : {2e3, 200e3}) {
    const GeneratedWorkload w = MakeTextAnalyticsWorkflow(docs);
    const double ires = Execute(w, "", 42);
    const double scikit = Execute(w, "scikit", 42);
    const double spark = Execute(w, "Spark", 42);
    const double best_single = std::min(scikit > 0 ? scikit : 1e18,
                                        spark > 0 ? spark : 1e18);
    EXPECT_NEAR(ires, best_single, best_single * 0.05) << docs;
  }
}

// ---- Figure 13 shape. -------------------------------------------------------
TEST(Fig13ShapeTest, MemSqlFailsPastAFewGigabytes) {
  EXPECT_GT(Execute(MakeRelationalWorkflow(1.0), "MemSQL", 42), 0.0);
  EXPECT_LT(Execute(MakeRelationalWorkflow(5.0), "MemSQL", 42), 0.0);
  EXPECT_LT(Execute(MakeRelationalWorkflow(50.0), "MemSQL", 42), 0.0);
}

TEST(Fig13ShapeTest, IresAtLeastAsGoodAsEverySingleEngineEverywhere) {
  for (double scale : {1.0, 10.0, 50.0}) {
    const GeneratedWorkload w = MakeRelationalWorkflow(scale);
    const double ires = Execute(w, "", 42);
    ASSERT_GT(ires, 0.0) << scale;
    for (const char* engine : {"PostgreSQL", "MemSQL", "Spark"}) {
      const double t = Execute(w, engine, 42);
      if (t > 0) {
        EXPECT_LE(ires, t * 1.05) << engine << " @" << scale;
      }
    }
  }
}

TEST(Fig13ShapeTest, PostgresDegradesSteeplyWithScale) {
  const double small = Execute(MakeRelationalWorkflow(1.0), "PostgreSQL", 42);
  const double large = Execute(MakeRelationalWorkflow(50.0), "PostgreSQL", 42);
  ASSERT_GT(small, 0.0);
  ASSERT_GT(large, 0.0);
  EXPECT_GT(large / small, 20.0);  // roughly linear in the shipped bytes
}

}  // namespace
}  // namespace ires
