#include <gtest/gtest.h>

#include <cmath>

#include "engines/standard_engines.h"
#include "provisioning/resource_provisioner.h"

namespace ires {
namespace {

// ------------------------------------------------------------- NSGA-II core
TEST(Nsga2Test, DominationRules) {
  EXPECT_TRUE(Nsga2::Dominates({1, 1}, {2, 2}));
  EXPECT_TRUE(Nsga2::Dominates({1, 2}, {2, 2}));
  EXPECT_FALSE(Nsga2::Dominates({1, 3}, {2, 2}));  // trade-off
  EXPECT_FALSE(Nsga2::Dominates({2, 2}, {2, 2}));  // equal
}

TEST(Nsga2Test, NonDominatedSortRanks) {
  std::vector<Nsga2::Individual> pop(4);
  pop[0].objectives = {1, 1};  // front 0
  pop[1].objectives = {2, 2};  // dominated by 0
  pop[2].objectives = {0, 3};  // front 0 (trade-off with 0)
  pop[3].objectives = {3, 3};  // dominated by all
  auto fronts = Nsga2::NonDominatedSort(&pop);
  ASSERT_GE(fronts.size(), 2u);
  EXPECT_EQ(pop[0].rank, 0);
  EXPECT_EQ(pop[2].rank, 0);
  EXPECT_EQ(pop[1].rank, 1);
  EXPECT_GT(pop[3].rank, pop[1].rank - 1);
}

TEST(Nsga2Test, CrowdingBoundariesInfinite) {
  std::vector<Nsga2::Individual> pop(3);
  pop[0].objectives = {0, 2};
  pop[1].objectives = {1, 1};
  pop[2].objectives = {2, 0};
  std::vector<int> front = {0, 1, 2};
  Nsga2::AssignCrowding(&pop, front);
  EXPECT_TRUE(std::isinf(pop[0].crowding));
  EXPECT_TRUE(std::isinf(pop[2].crowding));
  EXPECT_FALSE(std::isinf(pop[1].crowding));
}

TEST(Nsga2Test, FindsParetoFrontOfConvexProblem) {
  // Schaffer's problem: f1 = x^2, f2 = (x-2)^2; Pareto set is x in [0, 2].
  Nsga2::Options options;
  options.population = 40;
  options.generations = 60;
  Nsga2 ga(options);
  auto front = ga.Optimize({{-5.0, 5.0}}, [](const Vector& genes) -> Vector {
    const double x = genes[0];
    return {x * x, (x - 2) * (x - 2)};
  });
  ASSERT_GE(front.size(), 10u);
  for (const auto& ind : front) {
    EXPECT_GT(ind.genes[0], -0.25);
    EXPECT_LT(ind.genes[0], 2.25);
  }
  // Front spans the trade-off: some solutions near each extreme.
  EXPECT_LT(front.front().objectives[0], 0.2);
  EXPECT_LT(front.back().objectives[1], 0.2);
}

TEST(Nsga2Test, DeterministicForFixedSeed) {
  Nsga2::Options options;
  options.seed = 42;
  options.population = 20;
  options.generations = 20;
  auto evaluate = [](const Vector& g) -> Vector {
    return {g[0] * g[0], (g[0] - 1) * (g[0] - 1)};
  };
  Nsga2 ga1(options), ga2(options);
  auto f1 = ga1.Optimize({{-2, 2}}, evaluate);
  auto f2 = ga2.Optimize({{-2, 2}}, evaluate);
  ASSERT_EQ(f1.size(), f2.size());
  for (size_t i = 0; i < f1.size(); ++i) {
    EXPECT_DOUBLE_EQ(f1[i].genes[0], f2[i].genes[0]);
  }
}

// ------------------------------------------------------ resource provisioner
class ProvisionerTest : public ::testing::Test {
 protected:
  ProvisionerTest() : registry_(MakeStandardEngineRegistry()) {
    NsgaResourceProvisioner::Limits limits;
    limits.max_containers = 8;
    limits.max_cores_per_container = 4;
    limits.max_memory_gb_per_container = 6.75;
    Nsga2::Options ga;
    ga.population = 30;
    ga.generations = 40;
    provisioner_ = std::make_unique<NsgaResourceProvisioner>(limits, ga);
  }

  OperatorRunRequest TfIdfRequest(double docs) {
    OperatorRunRequest r;
    r.algorithm = "TF_IDF";
    r.input_bytes = docs * kBytesPerDocument;
    r.input_records = docs;
    r.resources = registry_->Find("Spark")->default_resources();
    return r;
  }

  std::unique_ptr<EngineRegistry> registry_;
  std::unique_ptr<NsgaResourceProvisioner> provisioner_;
};

TEST_F(ProvisionerTest, MinTimePolicyMatchesMaxResourceSpeed) {
  const SimulatedEngine* spark = registry_->Find("Spark");
  OperatorRunRequest request = TfIdfRequest(1e6);
  Resources chosen = provisioner_->Advise(*spark, request,
                                          OptimizationPolicy::MinimizeTime());
  // The advised allocation must be within 5% of the max-resources runtime.
  OperatorRunRequest max_request = request;
  max_request.resources = {8, 4, 6.75};
  OperatorRunRequest advised = request;
  advised.resources = chosen;
  const double max_time = spark->Estimate(max_request).value().exec_seconds;
  const double advised_time = spark->Estimate(advised).value().exec_seconds;
  EXPECT_LE(advised_time, max_time * 1.06);
}

TEST_F(ProvisionerTest, MinTimeCostsLessThanMaxResources) {
  const SimulatedEngine* spark = registry_->Find("Spark");
  OperatorRunRequest request = TfIdfRequest(100e3);
  Resources chosen = provisioner_->Advise(*spark, request,
                                          OptimizationPolicy::MinimizeTime());
  OperatorRunRequest max_request = request;
  max_request.resources = {8, 4, 6.75};
  OperatorRunRequest advised = request;
  advised.resources = chosen;
  EXPECT_LT(spark->Estimate(advised).value().cost,
            spark->Estimate(max_request).value().cost);
}

TEST_F(ProvisionerTest, MinCostPolicyPicksSmallAllocations) {
  const SimulatedEngine* spark = registry_->Find("Spark");
  OperatorRunRequest request = TfIdfRequest(100e3);
  Resources cheap = provisioner_->Advise(*spark, request,
                                         OptimizationPolicy::MinimizeCost());
  Resources fast = provisioner_->Advise(*spark, request,
                                        OptimizationPolicy::MinimizeTime());
  EXPECT_LE(cheap.total_cores(), fast.total_cores());
  OperatorRunRequest cheap_req = request;
  cheap_req.resources = cheap;
  OperatorRunRequest fast_req = request;
  fast_req.resources = fast;
  EXPECT_LE(spark->Estimate(cheap_req).value().cost,
            spark->Estimate(fast_req).value().cost + 1e-9);
}

TEST_F(ProvisionerTest, CentralizedEnginesGetOneContainer) {
  const SimulatedEngine* java = registry_->Find("Java");
  OperatorRunRequest request;
  request.algorithm = "Pagerank";
  request.input_bytes = 1e6 * kBytesPerEdge;
  request.resources = java->default_resources();
  Resources chosen = provisioner_->Advise(*java, request,
                                          OptimizationPolicy::MinimizeTime());
  EXPECT_EQ(chosen.containers, 1);
}

TEST_F(ProvisionerTest, GrowingInputGetsMoreResources) {
  const SimulatedEngine* spark = registry_->Find("Spark");
  Resources small = provisioner_->Advise(*spark, TfIdfRequest(1e3),
                                         OptimizationPolicy::MinimizeTime());
  Resources large = provisioner_->Advise(*spark, TfIdfRequest(10e6),
                                         OptimizationPolicy::MinimizeTime());
  EXPECT_LE(small.total_cores(), large.total_cores());
  EXPECT_LT(small.CostForDuration(1.0), large.CostForDuration(1.0) + 1e-9);
}

TEST_F(ProvisionerTest, ParetoFrontExposedAndSorted) {
  const SimulatedEngine* spark = registry_->Find("Spark");
  (void)provisioner_->Advise(*spark, TfIdfRequest(1e6),
                             OptimizationPolicy::MinimizeTime());
  const auto& front = provisioner_->last_front();
  ASSERT_FALSE(front.empty());
  for (size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].seconds, front[i - 1].seconds);
  }
}

}  // namespace
}  // namespace ires
