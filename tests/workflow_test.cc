#include <gtest/gtest.h>

#include "workflow/workflow_graph.h"

namespace ires {
namespace {

MetadataTree Tree(const std::string& description) {
  auto t = MetadataTree::ParseDescription(description);
  EXPECT_TRUE(t.ok()) << t.status();
  return t.value();
}

OperatorLibrary LineCountLibrary() {
  OperatorLibrary lib;
  EXPECT_TRUE(
      lib.AddDataset(Dataset("asapServerLog",
                             Tree("Constraints.Engine.FS=HDFS\n"
                                  "Execution.path=hdfs:///log\n"
                                  "Optimization.documents=1\n")))
          .ok());
  EXPECT_TRUE(
      lib.AddAbstract(AbstractOperator(
                          "LineCount",
                          Tree("Constraints.OpSpecification.Algorithm.name="
                               "LineCount\n")))
          .ok());
  return lib;
}

TEST(WorkflowGraphTest, BuildSimpleChain) {
  WorkflowGraph g;
  g.AddDataset("in");
  g.AddOperator("op");
  g.AddDataset("out");
  ASSERT_TRUE(g.Connect("in", "op").ok());
  ASSERT_TRUE(g.Connect("op", "out").ok());
  ASSERT_TRUE(g.SetTarget("out").ok());
  EXPECT_EQ(g.operator_count(), 1);
  EXPECT_EQ(g.dataset_count(), 2);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(WorkflowGraphTest, AddingSameNameReturnsSameId) {
  WorkflowGraph g;
  EXPECT_EQ(g.AddDataset("d"), g.AddDataset("d"));
}

TEST(WorkflowGraphTest, EdgeBetweenSameKindRejected) {
  WorkflowGraph g;
  g.AddDataset("a");
  g.AddDataset("b");
  EXPECT_EQ(g.Connect("a", "b").code(), StatusCode::kInvalidArgument);
  g.AddOperator("x");
  g.AddOperator("y");
  EXPECT_EQ(g.Connect("x", "y").code(), StatusCode::kInvalidArgument);
}

TEST(WorkflowGraphTest, ConnectUnknownNodeFails) {
  WorkflowGraph g;
  g.AddDataset("a");
  EXPECT_EQ(g.Connect("a", "nope").code(), StatusCode::kNotFound);
}

TEST(WorkflowGraphTest, TargetMustBeDataset) {
  WorkflowGraph g;
  g.AddOperator("op");
  EXPECT_EQ(g.SetTarget("op").code(), StatusCode::kInvalidArgument);
}

TEST(WorkflowGraphTest, ValidateRequiresTarget) {
  WorkflowGraph g;
  g.AddDataset("a");
  EXPECT_EQ(g.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(WorkflowGraphTest, ValidateCatchesDanglingOperator) {
  WorkflowGraph g;
  g.AddDataset("in");
  g.AddOperator("op");  // no inputs, no outputs
  g.AddDataset("out");
  ASSERT_TRUE(g.Connect("op", "out").ok());
  ASSERT_TRUE(g.SetTarget("out").ok());
  EXPECT_FALSE(g.Validate().ok());  // op has no inputs
}

TEST(WorkflowGraphTest, ValidateCatchesMultipleProducers) {
  WorkflowGraph g;
  g.AddDataset("in");
  g.AddOperator("op1");
  g.AddOperator("op2");
  g.AddDataset("out");
  ASSERT_TRUE(g.Connect("in", "op1").ok());
  ASSERT_TRUE(g.Connect("in", "op2").ok());
  ASSERT_TRUE(g.Connect("op1", "out").ok());
  ASSERT_TRUE(g.Connect("op2", "out").ok());
  ASSERT_TRUE(g.SetTarget("out").ok());
  EXPECT_FALSE(g.Validate().ok());
}

TEST(WorkflowGraphTest, ValidateCatchesUnconnectedPort) {
  WorkflowGraph g;
  g.AddDataset("in");
  g.AddOperator("join");
  g.AddDataset("out");
  // Port 1 is wired but port 0 never is.
  ASSERT_TRUE(g.Connect("in", "join", 1).ok());
  ASSERT_TRUE(g.Connect("join", "out").ok());
  ASSERT_TRUE(g.SetTarget("out").ok());
  EXPECT_FALSE(g.Validate().ok());
}

TEST(WorkflowGraphTest, TopologicalOrderRespectsDependencies) {
  // diamond: in -> a -> (d1, d2) ; d1 -> b -> d3 ; d2 -> c -> d4 ;
  // (d3, d4) -> d -> out
  WorkflowGraph g;
  g.AddDataset("in");
  for (const char* op : {"a", "b", "c", "d"}) g.AddOperator(op);
  for (const char* ds : {"d1", "d2", "d3", "d4", "out"}) g.AddDataset(ds);
  ASSERT_TRUE(g.Connect("in", "a").ok());
  ASSERT_TRUE(g.Connect("a", "d1").ok());
  ASSERT_TRUE(g.Connect("a", "d2").ok());
  ASSERT_TRUE(g.Connect("d1", "b").ok());
  ASSERT_TRUE(g.Connect("b", "d3").ok());
  ASSERT_TRUE(g.Connect("d2", "c").ok());
  ASSERT_TRUE(g.Connect("c", "d4").ok());
  ASSERT_TRUE(g.Connect("d3", "d", 0).ok());
  ASSERT_TRUE(g.Connect("d4", "d", 1).ok());
  ASSERT_TRUE(g.Connect("d", "out").ok());
  ASSERT_TRUE(g.SetTarget("out").ok());

  auto topo = g.TopologicalOperators();
  ASSERT_TRUE(topo.ok());
  const std::vector<int>& order = topo.value();
  ASSERT_EQ(order.size(), 4u);
  auto position = [&](const std::string& name) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (g.node(order[i]).name == name) return static_cast<int>(i);
    }
    return -1;
  };
  EXPECT_LT(position("a"), position("b"));
  EXPECT_LT(position("a"), position("c"));
  EXPECT_LT(position("b"), position("d"));
  EXPECT_LT(position("c"), position("d"));
}

TEST(WorkflowGraphTest, CycleDetected) {
  WorkflowGraph g;
  g.AddOperator("op1");
  g.AddOperator("op2");
  g.AddDataset("d1");
  g.AddDataset("d2");
  ASSERT_TRUE(g.Connect("op1", "d1").ok());
  ASSERT_TRUE(g.Connect("d1", "op2").ok());
  ASSERT_TRUE(g.Connect("op2", "d2").ok());
  ASSERT_TRUE(g.Connect("d2", "op1").ok());
  EXPECT_FALSE(g.TopologicalOperators().ok());
}

TEST(WorkflowGraphTest, ParseGraphFileLineCountExample) {
  // The exact file from deliverable §3.3.
  const std::string text =
      "asapServerLog,LineCount,0\n"
      "LineCount,d1,0\n"
      "d1,$$target\n";
  OperatorLibrary lib = LineCountLibrary();
  auto graph = WorkflowGraph::ParseGraphFile(text, lib);
  ASSERT_TRUE(graph.ok()) << graph.status();
  const WorkflowGraph& g = graph.value();
  EXPECT_EQ(g.operator_count(), 1);
  EXPECT_EQ(g.dataset_count(), 2);
  EXPECT_EQ(g.node(g.target()).name, "d1");
  EXPECT_TRUE(g.Validate().ok());
  // asapServerLog is known from the library -> dataset; LineCount is a
  // registered abstract operator; d1 is an unknown name -> dataset.
  EXPECT_EQ(g.node(g.node_id("LineCount")).kind,
            WorkflowGraph::NodeKind::kOperator);
  EXPECT_EQ(g.node(g.node_id("asapServerLog")).kind,
            WorkflowGraph::NodeKind::kDataset);
}

TEST(WorkflowGraphTest, ParseGraphFileTextClustering) {
  OperatorLibrary lib;
  ASSERT_TRUE(lib.AddAbstract(AbstractOperator(
                                  "tfidf_cilk",
                                  Tree("Constraints.OpSpecification."
                                       "Algorithm.name=TF_IDF\n")))
                  .ok());
  ASSERT_TRUE(lib.AddAbstract(AbstractOperator(
                                  "kmeans",
                                  Tree("Constraints.OpSpecification."
                                       "Algorithm.name=kmeans\n")))
                  .ok());
  ASSERT_TRUE(
      lib.AddDataset(Dataset("testdir", Tree("Constraints.Engine.FS=HDFS\n"
                                             "Execution.path=/in\n")))
          .ok());
  const std::string text =
      "testdir,tfidf_cilk,0\n"
      "tfidf_cilk,d1,0\n"
      "d1,kmeans,0\n"
      "kmeans,d2,0\n"
      "d2,$$target\n";
  auto graph = WorkflowGraph::ParseGraphFile(text, lib);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph.value().operator_count(), 2);
  EXPECT_TRUE(graph.value().Validate().ok());
}

TEST(WorkflowGraphTest, ParseRejectsMalformedLine) {
  OperatorLibrary lib;
  EXPECT_FALSE(WorkflowGraph::ParseGraphFile("justonename\n", lib).ok());
}

TEST(WorkflowGraphTest, ParseSkipsCommentsAndBlanks) {
  OperatorLibrary lib = LineCountLibrary();
  const std::string text =
      "# the LineCount workflow\n"
      "\n"
      "asapServerLog,LineCount,0\n"
      "LineCount,d1,0\n"
      "d1,$$target\n";
  EXPECT_TRUE(WorkflowGraph::ParseGraphFile(text, lib).ok());
}

}  // namespace
}  // namespace ires
