#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace ires {
namespace {

// ---------------------------------------------------------------- Status
TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(),  Status::NotFound("").code(),
      Status::AlreadyExists("").code(),    Status::FailedPrecondition("").code(),
      Status::Unavailable("").code(),      Status::ResourceExhausted("").code(),
      Status::ExecutionError("").code(),   Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  IRES_ASSIGN_OR_RETURN(int half, Half(x));
  IRES_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

// ------------------------------------------------------------------- Rng
TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(2, 5));
  EXPECT_EQ(seen, (std::set<int64_t>{2, 3, 4, 5}));
}

TEST(RngTest, NormalHasRightMoments) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(9);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// --------------------------------------------------------------- Strings
TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitAndTrimDropsEmpties) {
  EXPECT_EQ(SplitAndTrim(" a , b ,, c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, JoinRoundTrips) {
  EXPECT_EQ(Join({"x", "y", "z"}, "->"), "x->y->z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("Constraints.Engine", "Constraints"));
  EXPECT_FALSE(StartsWith("Con", "Constraints"));
  EXPECT_TRUE(EndsWith("file.lua", ".lua"));
  EXPECT_FALSE(EndsWith("lua", ".lua"));
}

TEST(StringsTest, HumanReadable) {
  EXPECT_EQ(HumanBytes(1536.0), "1.5KB");
  EXPECT_EQ(HumanBytes(2.5 * 1024 * 1024 * 1024.0), "2.5GB");
  EXPECT_EQ(HumanSeconds(1.2345), "1.234s");
}

// --------------------------------------------------------------- Logging
TEST(LoggingTest, ThresholdGatesMessages) {
  const LogLevel old = Logger::threshold();
  Logger::set_threshold(LogLevel::kError);
  EXPECT_EQ(Logger::threshold(), LogLevel::kError);
  IRES_LOG(kInfo) << "should be suppressed";  // just exercising the path
  Logger::set_threshold(old);
}

}  // namespace
}  // namespace ires
