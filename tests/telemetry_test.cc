// Telemetry substrate suite: metrics registry (counters, gauges, labeled
// families, histogram bucketing and quantile estimation, Prometheus
// rendering), per-job span tracing (nesting, Chrome trace JSON), and the
// production logger (format, pluggable sink, no mid-line interleaving).
// CI also runs this binary under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/trace_context.h"

namespace ires {
namespace {

// ---------------------------------------------------------------- Counters

TEST(MetricsRegistryTest, CounterIncrementsAndRenders) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("ires_test_total", "Test counter.");
  ASSERT_NE(c, nullptr);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP ires_test_total Test counter."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ires_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("ires_test_total 42"), std::string::npos);
}

TEST(MetricsRegistryTest, LabelsDistinguishChildrenAndOrderIsCanonical) {
  MetricsRegistry registry;
  Counter* spark = registry.GetCounter("ires_steps_total", "Steps.",
                                       {{"engine", "Spark"}});
  Counter* hama = registry.GetCounter("ires_steps_total", "Steps.",
                                      {{"engine", "Hama"}});
  ASSERT_NE(spark, nullptr);
  ASSERT_NE(hama, nullptr);
  EXPECT_NE(spark, hama);
  // Same labels in a different pair order resolve to the same child.
  Counter* spark2 = registry.GetCounter(
      "ires_multi_total", "Multi.", {{"b", "2"}, {"a", "1"}});
  Counter* spark3 = registry.GetCounter(
      "ires_multi_total", "Multi.", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(spark2, spark3);

  spark->Increment(3);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("ires_steps_total{engine=\"Spark\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ires_steps_total{engine=\"Hama\"} 0"),
            std::string::npos);
}

TEST(MetricsRegistryTest, LabelValuesEscapePerExpositionFormat) {
  // Regression: the exposition format requires `\`, `"` and newline in
  // label values to render as \\, \" and \n — one label value carrying all
  // three must survive a round trip through the text format unambiguously.
  MetricsRegistry registry;
  Counter* c = registry.GetCounter(
      "ires_escape_total", "Escaping.",
      {{"path", "C:\\logs\n\"prod\" dir"}});
  ASSERT_NE(c, nullptr);
  c->Increment();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(
      text.find("ires_escape_total{path=\"C:\\\\logs\\n\\\"prod\\\" dir\"} 1"),
      std::string::npos)
      << text;
  // The raw newline must never reach the output inside a label value.
  EXPECT_EQ(text.find("C:\\logs\n"), std::string::npos);

  // HELP text escapes `\` and newline (quotes are legal there).
  Counter* h = registry.GetCounter("ires_escape_help_total",
                                   "line one\nback\\slash");
  ASSERT_NE(h, nullptr);
  const std::string help = registry.RenderPrometheus();
  EXPECT_NE(
      help.find("# HELP ires_escape_help_total line one\\nback\\\\slash"),
      std::string::npos)
      << help;

  // The JSON rendering escapes label keys and values too.
  const std::string json = registry.RenderJson();
  EXPECT_EQ(json.find("\nprod"), std::string::npos);
}

TEST(MetricsRegistryTest, TypeMismatchOnNameIsRefused) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("ires_thing", "A counter."), nullptr);
  EXPECT_EQ(registry.GetGauge("ires_thing", "Now a gauge?"), nullptr);
  EXPECT_EQ(registry.GetHistogram("ires_thing", "Now a histogram?"),
            nullptr);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("ires_depth", "Depth.");
  ASSERT_NE(g, nullptr);
  g->Set(5.0);
  g->Add(2.5);
  g->Add(-1.5);
  EXPECT_DOUBLE_EQ(g->Value(), 6.0);
}

// -------------------------------------------------------------- Histograms

TEST(HistogramTest, BucketingAssignsObservationsToUpperBounds) {
  Histogram h({0.1, 1.0, 10.0});
  h.Observe(0.05);   // <= 0.1
  h.Observe(0.1);    // <= 0.1 (inclusive upper bound)
  h.Observe(0.5);    // <= 1.0
  h.Observe(5.0);    // <= 10.0
  h.Observe(100.0);  // +Inf
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_NEAR(snap.sum, 105.65, 1e-9);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h({1.0, 2.0, 4.0});
  // 100 observations uniformly inside (1, 2]: all land in bucket 2.
  for (int i = 0; i < 100; ++i) h.Observe(1.0 + (i + 0.5) / 100.0);
  // The whole mass is in [1, 2]; the median interpolates to ~1.5.
  EXPECT_NEAR(h.Quantile(0.5), 1.5, 0.05);
  EXPECT_NEAR(h.Quantile(0.0), 1.0, 0.05);
  EXPECT_NEAR(h.Quantile(1.0), 2.0, 0.05);
  // Empty histogram quantile is 0.
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileClampsInfBucketToLargestBound) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.Observe(50.0);  // all in +Inf
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.0);
}

TEST(HistogramTest, PrometheusRenderingIsCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("ires_lat_seconds", "Latency.", {},
                                       {0.1, 1.0});
  ASSERT_NE(h, nullptr);
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(2.0);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE ires_lat_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ires_lat_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ires_lat_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ires_lat_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ires_lat_seconds_count 3"), std::string::npos);
}

// ------------------------------------------------------------- Concurrency

TEST(MetricsRegistryTest, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Counter* counter = registry.GetCounter("ires_conc_total", "Concurrent.");
  Histogram* histogram =
      registry.GetHistogram("ires_conc_seconds", "Concurrent.");
  Gauge* gauge = registry.GetGauge("ires_conc_gauge", "Concurrent.");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Observe(0.001 * ((t + i) % 100));
        gauge->Add(1.0);
        // Concurrent registration of the same family must also be safe.
        registry.GetCounter("ires_conc_total", "Concurrent.",
                            {{"thread", std::to_string(t)}});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(histogram->Count(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(gauge->Value(), kThreads * kPerThread);
}

// ------------------------------------------------------------ TraceContext

TEST(TraceContextTest, SpansNestWithinParents) {
  TraceContext trace("job-test");
  const uint64_t parent = trace.BeginSpan("job.plan", "job");
  const uint64_t lookup = trace.BeginSpan("plan.cache_lookup", "plan");
  trace.EndSpan(lookup, {{"outcome", "miss"}});
  const uint64_t dp = trace.BeginSpan("plan.dp", "plan");
  trace.EndSpan(dp);
  trace.EndSpan(parent);

  const std::vector<TraceSpan> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  const TraceSpan& job = spans[0];
  EXPECT_EQ(job.name, "job.plan");
  for (size_t i = 1; i < spans.size(); ++i) {
    ASSERT_TRUE(spans[i].finished());
    // Children start no earlier and end no later than the parent.
    EXPECT_GE(spans[i].start_us, job.start_us);
    EXPECT_LE(spans[i].start_us + spans[i].duration_us,
              job.start_us + job.duration_us + 1.0);
  }
  // The two children do not overlap.
  EXPECT_GE(spans[2].start_us,
            spans[1].start_us + spans[1].duration_us - 1.0);
  EXPECT_EQ(spans[1].args.size(), 1u);
  EXPECT_EQ(spans[1].args[0].second, "miss");
}

TEST(TraceContextTest, ExplicitSimulatedTimeSpans) {
  TraceContext trace("job-sim");
  trace.AddSpan("LineCount_Spark", "step", TraceContext::kSimTimeline,
                0.0, 12.5e6, {{"engine", "Spark"}});
  trace.AddSpan("move_d1", "move", TraceContext::kSimTimeline, 12.5e6,
                1.0e6);
  const std::vector<TraceSpan> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].timeline, TraceContext::kSimTimeline);
  EXPECT_DOUBLE_EQ(spans[0].duration_us, 12.5e6);
  EXPECT_EQ(spans[1].category, "move");
}

TEST(TraceContextTest, ChromeTraceJsonIsWellFormed) {
  TraceContext trace("job-000001");
  const uint64_t span = trace.BeginSpan("job.queue_wait", "job");
  trace.EndSpan(span, {{"outcome", "picked_up"}});
  trace.AddSpan("Step\"quoted\"", "step", TraceContext::kSimTimeline, 0.0,
                5e6);
  const std::string json = trace.ToChromeTraceJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"job.queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"picked_up\""), std::string::npos);
  // The quoted step name is escaped, and the process is named after the job.
  EXPECT_NE(json.find("Step\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"job-000001\""), std::string::npos);
  // Balanced braces/brackets (a cheap well-formedness check).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceContextTest, ConcurrentAppendAndRender) {
  TraceContext trace("job-race");
  std::atomic<bool> stop{false};
  std::thread renderer([&] {
    while (!stop.load()) {
      const std::string json = trace.ToChromeTraceJson();
      ASSERT_FALSE(json.empty());
    }
  });
  for (int i = 0; i < 500; ++i) {
    const uint64_t span = trace.BeginSpan("s" + std::to_string(i), "step");
    trace.EndSpan(span);
  }
  stop.store(true);
  renderer.join();
  EXPECT_EQ(trace.Snapshot().size(), 500u);
}

// ------------------------------------------------------------------ Logger

class SinkCapture {
 public:
  SinkCapture() {
    Logger::SetSink([this](LogLevel level, const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      levels_.push_back(level);
      lines_.push_back(line);
    });
    saved_threshold_ = Logger::threshold();
  }
  ~SinkCapture() {
    Logger::SetSink(nullptr);
    Logger::set_threshold(saved_threshold_);
  }
  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }
  std::vector<LogLevel> levels() const {
    std::lock_guard<std::mutex> lock(mu_);
    return levels_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<LogLevel> levels_;
  std::vector<std::string> lines_;
  LogLevel saved_threshold_;
};

TEST(LoggerTest, FormatHasTimestampThreadIdAndLevel) {
  const std::string line = Logger::Format(LogLevel::kInfo, "hello world");
  // 2026-08-07T12:34:56.789Z [INFO] [tid 140213...] hello world
  const std::regex pattern(
      R"(^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z \[INFO\] \[tid [^\]]+\] hello world$)");
  EXPECT_TRUE(std::regex_match(line, pattern)) << line;
}

TEST(LoggerTest, SinkCapturesAboveThresholdOnly) {
  SinkCapture capture;
  Logger::set_threshold(LogLevel::kWarning);
  IRES_LOG(kInfo) << "dropped";
  IRES_LOG(kWarning) << "kept " << 42;
  IRES_LOG(kError) << "also kept";
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("kept 42"), std::string::npos);
  EXPECT_NE(lines[0].find("[WARN]"), std::string::npos);
  EXPECT_EQ(capture.levels()[1], LogLevel::kError);
}

TEST(LoggerTest, ConcurrentLogsArriveWholeLine) {
  SinkCapture capture;
  Logger::set_threshold(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        IRES_LOG(kInfo) << "thread=" << t << " msg=" << i << " end";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kPerThread));
  // Every captured line is intact: one timestamp prefix, one trailing
  // marker — nothing spliced mid-line.
  const std::regex pattern(
      R"(^\d{4}-\d{2}-\d{2}T[^ ]+ \[INFO\] \[tid [^\]]+\] thread=\d+ msg=\d+ end$)");
  for (const std::string& line : lines) {
    EXPECT_TRUE(std::regex_match(line, pattern)) << line;
  }
}

}  // namespace
}  // namespace ires
