// End-to-end suite for the SQL front door: POST /apiv1/sql parses a TPC-H
// query, runs the MuSQLE optimizer, lowers the federated plan onto the
// workflow stack and executes it through the ordinary serving machinery —
// admission control, static analysis, plan cache, metrics and the jobs
// surface all apply. Also covers the structured request-options body shared
// with the execute route, and the JSON request parser behind both.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"
#include "core/request_options.h"
#include "core/rest_api.h"
#include "service/job_service.h"
#include "service/sql_service.h"
#include "sql/lowering.h"
#include "sql/sql_parser.h"
#include "sql/tpch_queries.h"

namespace ires {
namespace {

// ------------------------------------------------------------ JSON parser

TEST(JsonValueTest, ParsesNestedDocument) {
  auto parsed = JsonValue::Parse(
      "{\"a\": 1.5, \"b\": [true, null, \"x\\ny\"], \"c\": {\"d\": -2e3}}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& v = parsed.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.GetNumber("a", 0), 1.5);
  const JsonValue* b = v.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array().size(), 3u);
  EXPECT_TRUE(b->array()[0].bool_value());
  EXPECT_TRUE(b->array()[1].is_null());
  EXPECT_EQ(b->array()[2].string_value(), "x\ny");
  const JsonValue* c = v.Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->GetNumber("d", 0), -2000.0);
}

TEST(JsonValueTest, DecodesUnicodeEscapes) {
  auto parsed = JsonValue::Parse("\"caf\\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().string_value(), "caf\xc3\xa9");
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{'single':1}").ok());
  EXPECT_FALSE(JsonValue::Parse("01").ok());
}

TEST(JsonValueTest, RejectsPathologicalNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  auto parsed = JsonValue::Parse(deep);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- shape fingerprint

TEST(QueryShapeTest, LiteralsNormalizeToSameShape) {
  auto a = sql::SqlParser::Parse(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND "
      "c_acctbal > 9000");
  auto b = sql::SqlParser::Parse(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND "
      "c_acctbal > 17");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(sql::QueryShape(a.value()), sql::QueryShape(b.value()));
  EXPECT_EQ(sql::QueryShapeId(a.value()), sql::QueryShapeId(b.value()));
}

TEST(QueryShapeTest, StructureChangesTheShape) {
  auto base = sql::SqlParser::Parse(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND "
      "c_acctbal > 9000");
  auto different_op = sql::SqlParser::Parse(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND "
      "c_acctbal < 9000");
  auto different_tables = sql::SqlParser::Parse(
      "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(different_op.ok());
  ASSERT_TRUE(different_tables.ok());
  EXPECT_NE(sql::QueryShape(base.value()),
            sql::QueryShape(different_op.value()));
  EXPECT_NE(sql::QueryShape(base.value()),
            sql::QueryShape(different_tables.value()));
}

// ---------------------------------------------------------------- lowering

TEST(SqlLoweringTest, EnsureSqlOperatorsIsIdempotent) {
  IresServer server;
  EXPECT_EQ(sql::EnsureSqlOperators(&server.library()), 9);
  EXPECT_EQ(sql::EnsureSqlOperators(&server.library()), 0);
}

TEST(SqlLoweringTest, LoweredGraphPassesTheWorkflowLinter) {
  IresServer server;
  SqlService svc(&server);
  std::vector<Diagnostic> diagnostics;
  auto prepared = svc.Prepare(
      "SELECT * FROM customer, orders, lineitem WHERE "
      "c_custkey = o_custkey AND o_orderkey = l_orderkey",
      &diagnostics);
  ASSERT_TRUE(prepared.ok()) << prepared.status().message();
  EXPECT_TRUE(diagnostics.empty());
  const SqlService::PreparedQuery& pq = prepared.value();
  // Three base relations -> at least 2 joins; the exact split between
  // scans and moves is the optimizer's call.
  EXPECT_EQ(pq.join_ops, 2);
  EXPECT_GE(pq.scan_ops + pq.move_ops, 3);
  EXPECT_FALSE(pq.shape_cache_hit);
  const std::vector<Diagnostic> findings = server.ValidateWorkflow(pq.graph);
  EXPECT_FALSE(HasErrors(findings)) << RenderJson(findings);
}

TEST(SqlServiceTest, ShapeCacheHitsOnDifferentLiterals) {
  IresServer server;
  SqlService svc(&server);
  std::vector<Diagnostic> diagnostics;
  auto first = svc.Prepare(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND "
      "c_acctbal > 9000",
      &diagnostics);
  ASSERT_TRUE(first.ok()) << first.status().message();
  EXPECT_FALSE(first.value().shape_cache_hit);
  auto second = svc.Prepare(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND "
      "c_acctbal > 42",
      &diagnostics);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().shape_cache_hit);
  EXPECT_EQ(second.value().shape_id, first.value().shape_id);
  EXPECT_EQ(svc.shape_cache_size(), 1u);
}

TEST(SqlServiceTest, RejectionsCarryStructuredDiagnostics) {
  IresServer server;
  SqlService svc(&server);
  std::vector<Diagnostic> diagnostics;
  auto bad_syntax = svc.Prepare("SELEC * FRM nowhere", &diagnostics);
  ASSERT_FALSE(bad_syntax.ok());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].code, diag::kSqlParseError);

  diagnostics.clear();
  auto bad_table = svc.Prepare(
      "SELECT * FROM nosuchtable, orders WHERE x_key = o_custkey",
      &diagnostics);
  ASSERT_FALSE(bad_table.ok());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].code, diag::kSqlUnknownName);
}

// --------------------------------------------------------- REST: /apiv1/sql

class SqlApiTest : public ::testing::Test {
 protected:
  SqlApiTest() : jobs_(&server_), api_(&server_, &jobs_) {}

  IresServer server_;
  JobService jobs_;
  RestApi api_;
};

TEST_F(SqlApiTest, RunsTpchQueriesSynchronously) {
  const std::vector<std::string> queries = sql::MusqleQuerySet();
  // Q0 (2-way), Q5 (3-way) and Q11 (join + filter) — small enough to keep
  // the suite fast, together covering scans, joins and moves.
  for (const int q : {0, 5, 11}) {
    ApiResponse response = api_.Handle("POST", "/apiv1/sql", queries[q]);
    ASSERT_EQ(response.code, 200) << "Q" << q << ": " << response.body;
    EXPECT_NE(response.body.find("\"shapeId\":\"sqlq_"), std::string::npos);
    EXPECT_NE(response.body.find("\"executionSeconds\":"), std::string::npos);
    EXPECT_NE(response.body.find("\"resultEngine\":"), std::string::npos);
  }
}

TEST_F(SqlApiTest, AsyncSubmissionRunsThroughTheJobsSurface) {
  ApiResponse response = api_.Handle(
      "POST", "/apiv1/sql?mode=async",
      "SELECT * FROM customer, nation WHERE c_nationkey = n_nationkey");
  ASSERT_EQ(response.code, 202) << response.body;
  const size_t at = response.body.find("\"jobId\":\"");
  ASSERT_NE(at, std::string::npos) << response.body;
  const size_t start = at + 9;
  const std::string job_id =
      response.body.substr(start, response.body.find('"', start) - start);
  ASSERT_TRUE(jobs_.WaitForIdle(30.0));

  ApiResponse record = api_.Handle("GET", "/apiv1/jobs/" + job_id);
  ASSERT_EQ(record.code, 200);
  EXPECT_NE(record.body.find("\"state\":\"SUCCEEDED\""), std::string::npos)
      << record.body;
  // The job is named after the query shape, so SQL work is recognizable in
  // the job listing.
  EXPECT_NE(record.body.find("\"workflow\":\"sqlq_"), std::string::npos);
  ApiResponse listing = api_.Handle("GET", "/apiv1/jobs");
  EXPECT_NE(listing.body.find(job_id), std::string::npos);
}

TEST_F(SqlApiTest, ModeCanComeFromTheOptionsBody) {
  ApiResponse response = api_.Handle(
      "POST", "/apiv1/sql",
      "{\"query\":\"SELECT * FROM nation, region WHERE "
      "n_regionkey = r_regionkey\","
      "\"options\":{\"execution\":{\"mode\":\"async\"},"
      "\"retry\":{\"attempts\":2}}}");
  ASSERT_EQ(response.code, 202) << response.body;
  EXPECT_NE(response.body.find("\"jobId\":\""), std::string::npos);
  // Structured body, no legacy parameters -> no deprecation warnings.
  EXPECT_EQ(response.body.find("\"warnings\""), std::string::npos);
  ASSERT_TRUE(jobs_.WaitForIdle(30.0));
}

TEST_F(SqlApiTest, MalformedSqlYieldsStructured422) {
  ApiResponse response =
      api_.Handle("POST", "/apiv1/sql", "SELEC oops FRM nowhere");
  ASSERT_EQ(response.code, 422) << response.body;
  EXPECT_NE(response.body.find("\"diagnostics\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"SQ001\""), std::string::npos);
}

TEST_F(SqlApiTest, UnknownTableYields422WithUnknownNameCode) {
  ApiResponse response = api_.Handle(
      "POST", "/apiv1/sql",
      "SELECT * FROM martians, orders WHERE m_key = o_custkey");
  ASSERT_EQ(response.code, 422) << response.body;
  EXPECT_NE(response.body.find("\"SQ002\""), std::string::npos);
}

TEST_F(SqlApiTest, EmptyQueryIsRejected) {
  EXPECT_EQ(api_.Handle("POST", "/apiv1/sql", "   ").code, 400);
  EXPECT_EQ(api_.Handle("POST", "/apiv1/sql", "{\"options\":{}}").code, 400);
}

TEST_F(SqlApiTest, RepeatedShapeHitsBothCachesWarm) {
  ApiResponse cold = api_.Handle(
      "POST", "/apiv1/sql",
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND "
      "c_acctbal > 9000");
  ASSERT_EQ(cold.code, 200) << cold.body;
  EXPECT_NE(cold.body.find("\"shapeCacheHit\":false"), std::string::npos);
  EXPECT_NE(cold.body.find("\"planCacheHit\":false"), std::string::npos);

  // Same shape, different literal: optimize/lower are skipped (shape cache)
  // and no artefact registration moved the library version, so the DP
  // planner's PlanCache serves the execution plan warm too.
  ApiResponse warm = api_.Handle(
      "POST", "/apiv1/sql",
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND "
      "c_acctbal > 123");
  ASSERT_EQ(warm.code, 200) << warm.body;
  EXPECT_NE(warm.body.find("\"shapeCacheHit\":true"), std::string::npos);
  EXPECT_NE(warm.body.find("\"planCacheHit\":true"), std::string::npos);
}

TEST_F(SqlApiTest, SqlTrafficShowsUpInMetrics) {
  ASSERT_EQ(api_.Handle("POST", "/apiv1/sql",
                        "SELECT * FROM nation, region WHERE "
                        "n_regionkey = r_regionkey")
                .code,
            200);
  ApiResponse metrics = api_.Handle("GET", "/apiv1/metrics");
  ASSERT_EQ(metrics.code, 200);
  EXPECT_NE(metrics.body.find("ires_sql_queries_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("ires_sql_shape_cache_misses_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ires_sql_optimize_seconds"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ires_sql_lowered_nodes_total"),
            std::string::npos);
}

// ------------------------------------------- structured execution options

TEST_F(SqlApiTest, LegacyQueryParametersWarnButWork) {
  ApiResponse response = api_.Handle(
      "POST", "/apiv1/sql?maxReplans=2&retryAttempts=2",
      "SELECT * FROM nation, region WHERE n_regionkey = r_regionkey");
  ASSERT_EQ(response.code, 200) << response.body;
  EXPECT_NE(response.body.find("\"warnings\":["), std::string::npos);
  EXPECT_NE(response.body.find("'maxReplans' is deprecated"),
            std::string::npos);
  EXPECT_NE(response.body.find("options.retry.attempts"), std::string::npos);
}

TEST_F(SqlApiTest, MixingLegacyParametersWithOptionsBodyIsRejected) {
  ApiResponse response = api_.Handle(
      "POST", "/apiv1/sql?maxReplans=2",
      "{\"query\":\"SELECT * FROM nation, region WHERE "
      "n_regionkey = r_regionkey\","
      "\"options\":{\"retry\":{\"attempts\":2}}}");
  EXPECT_EQ(response.code, 400);
  EXPECT_NE(response.body.find("both as query parameters"),
            std::string::npos);
}

TEST_F(SqlApiTest, UnknownOptionKeysAreRejectedNotIgnored) {
  ApiResponse typo_section = api_.Handle(
      "POST", "/apiv1/sql",
      "{\"query\":\"SELECT * FROM nation, region WHERE "
      "n_regionkey = r_regionkey\",\"options\":{\"retyr\":{}}}");
  EXPECT_EQ(typo_section.code, 400);
  ApiResponse typo_key = api_.Handle(
      "POST", "/apiv1/sql",
      "{\"query\":\"SELECT * FROM nation, region WHERE "
      "n_regionkey = r_regionkey\","
      "\"options\":{\"retry\":{\"atempts\":3}}}");
  EXPECT_EQ(typo_key.code, 400);
  ApiResponse out_of_range = api_.Handle(
      "POST", "/apiv1/sql",
      "{\"query\":\"SELECT * FROM nation, region WHERE "
      "n_regionkey = r_regionkey\","
      "\"options\":{\"chaos\":{\"transient\":1.5}}}");
  EXPECT_EQ(out_of_range.code, 400);
  ApiResponse bad_query_key =
      api_.Handle("POST", "/apiv1/sql?chaosBanana=1",
                  "SELECT * FROM nation, region WHERE "
                  "n_regionkey = r_regionkey");
  EXPECT_EQ(bad_query_key.code, 400);
}

TEST_F(SqlApiTest, ExecuteRouteSharesTheOptionsParser) {
  // The workflow execute route accepts the same structured body; a legacy
  // tuning parameter on it draws the same deprecation warning.
  ASSERT_EQ(api_.Handle("POST", "/apiv1/datasets/asapServerLog",
                        "Constraints.Engine.FS=HDFS\n"
                        "Execution.path=hdfs:///log\n"
                        "Optimization.size=5e8\n")
                .code,
            201);
  ASSERT_EQ(api_.Handle("POST", "/apiv1/abstractOperators/LineCount",
                        "Constraints.OpSpecification.Algorithm.name="
                        "LineCount\n")
                .code,
            201);
  ASSERT_EQ(api_.Handle("POST", "/apiv1/operators/LineCount_Spark",
                        "Constraints.Engine=Spark\n"
                        "Constraints.OpSpecification.Algorithm.name="
                        "LineCount\n"
                        "Constraints.Input0.Engine.FS=HDFS\n"
                        "Constraints.Output0.Engine.FS=HDFS\n")
                .code,
            201);
  ASSERT_EQ(api_.Handle("POST", "/apiv1/workflows/lc",
                        "asapServerLog,LineCount,0\n"
                        "LineCount,d1,0\n"
                        "d1,$$target\n")
                .code,
            201);

  ApiResponse legacy =
      api_.Handle("POST", "/apiv1/workflows/lc/execute?maxReplans=1");
  ASSERT_EQ(legacy.code, 200) << legacy.body;
  EXPECT_NE(legacy.body.find("'maxReplans' is deprecated"),
            std::string::npos);

  ApiResponse structured = api_.Handle(
      "POST", "/apiv1/workflows/lc/execute",
      "{\"options\":{\"execution\":{\"maxReplans\":1},"
      "\"retry\":{\"attempts\":2,\"backoffSeconds\":0}}}");
  ASSERT_EQ(structured.code, 200) << structured.body;
  EXPECT_EQ(structured.body.find("\"warnings\""), std::string::npos);

  ApiResponse conflict = api_.Handle(
      "POST", "/apiv1/workflows/lc/execute?maxReplans=1",
      "{\"options\":{\"retry\":{\"attempts\":2}}}");
  EXPECT_EQ(conflict.code, 400);
}

// ------------------------------------------------- route label cardinality

TEST_F(SqlApiTest, UnknownActionSegmentsCollapseInRouteLabels) {
  // Arbitrary trailing segments must not mint new metric label values:
  // only the fixed action vocabulary passes through NormalizeRoute.
  (void)api_.Handle("GET", "/apiv1/jobs/nope/trace");
  (void)api_.Handle("GET", "/apiv1/jobs/nope/fuzzer-crafted-suffix");
  ApiResponse metrics = api_.Handle("GET", "/apiv1/metrics");
  EXPECT_NE(metrics.body.find("route=\"/apiv1/jobs/{id}/trace\""),
            std::string::npos);
  EXPECT_NE(metrics.body.find("route=\"/apiv1/jobs/{id}/{action}\""),
            std::string::npos);
  EXPECT_EQ(metrics.body.find("fuzzer-crafted-suffix"), std::string::npos);
}

TEST_F(SqlApiTest, ObservabilityRoutesNormalizeWithoutMintingLabels) {
  // The namespaced observability resources keep their fixed sub-resource
  // names in the route label; anything else under debug/ or models/
  // collapses to {name}.
  (void)api_.Handle("GET", "/apiv1/debug/events");
  (void)api_.Handle("GET", "/apiv1/models/drift");
  (void)api_.Handle("GET", "/apiv1/debug/fuzzer-minted-sub");
  (void)api_.Handle("GET", "/apiv1/models/fuzzer-minted-sub");
  ApiResponse metrics = api_.Handle("GET", "/apiv1/metrics");
  EXPECT_NE(metrics.body.find("route=\"/apiv1/debug/events\""),
            std::string::npos);
  EXPECT_NE(metrics.body.find("route=\"/apiv1/models/drift\""),
            std::string::npos);
  EXPECT_NE(metrics.body.find("route=\"/apiv1/debug/{name}\""),
            std::string::npos);
  EXPECT_NE(metrics.body.find("route=\"/apiv1/models/{name}\""),
            std::string::npos);
  EXPECT_EQ(metrics.body.find("fuzzer-minted-sub"), std::string::npos);
}

}  // namespace
}  // namespace ires
