// TaskScheduler suite — the shared work-stealing execution substrate. CI
// runs this binary under ThreadSanitizer: the Chase-Lev deques, the parking
// protocol and the TaskGroup wait path are exactly the kind of code whose
// bugs only surface as races. Covers: an 8-worker steal storm, dependency
// ordering (diamond + a 4000-node chain), help-while-wait reentrancy,
// deterministic shutdown with pending tasks, the fake-clock backlog timer,
// and bit-identity of ParallelFor-backed NSGA-II / ParetoPlanner results
// against their serial paths.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "planner/pareto_planner.h"
#include "provisioning/nsga2.h"
#include "telemetry/event_journal.h"
#include "telemetry/metrics_registry.h"
#include "threading/task_scheduler.h"
#include "workloadgen/pegasus.h"

namespace ires {
namespace {

// ----------------------------------------------------------- steal storm

// Recursive binary fan-out driven entirely from worker threads: every task
// spawns two children onto its own worker's deque, so the only way the
// other workers get work is by stealing. The whole storm runs inside one
// submitted driver task (spawns from external threads would route through
// the injection queue, which workers drain without stealing), and the main
// thread waits on a future instead of helping for the same reason. Leaves
// burn a few microseconds each so the storm outlives worker wake-up
// latency and thieves get a real window.
TEST(TaskSchedulerTest, StealStormRunsEveryLeafExactlyOnce) {
  MetricsRegistry metrics;
  TaskScheduler scheduler(8, &metrics);
  std::atomic<int> leaves{0};
  std::atomic<uint64_t> sink{0};
  std::promise<void> storm_done;

  ASSERT_TRUE(scheduler.Submit([&] {
    TaskGroup group(&scheduler);
    std::function<void(int)> spawn = [&](int depth) {
      if (depth == 0) {
        uint64_t acc = 1469598103934665603ull;
        for (int i = 0; i < 2000; ++i) acc = (acc ^ i) * 1099511628211ull;
        sink.fetch_add(acc, std::memory_order_relaxed);
        leaves.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      group.Run([&spawn, depth] { spawn(depth - 1); });
      group.Run([&spawn, depth] { spawn(depth - 1); });
    };
    spawn(12);
    group.Wait();  // nested wait on a worker: helps from its own deque
    storm_done.set_value();
  }));
  storm_done.get_future().wait();

  EXPECT_EQ(leaves.load(), 1 << 12);
  const TaskScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.rejected, 0u);
  // 8190 tree tasks across 8 workers, all pushed onto the spawners' own
  // deques: the storm cannot complete without steals migrating the work.
  EXPECT_GT(stats.steals, 0u);
}

// --------------------------------------------------------- dependency DAG

TEST(TaskSchedulerTest, DiamondDependenciesRunInTopologicalOrder) {
  TaskScheduler scheduler(4);
  TaskGroup group(&scheduler);
  std::atomic<int> stage{0};
  std::atomic<bool> order_ok{true};

  const TaskGroup::TaskId a = group.Defer([&] {
    if (stage.fetch_add(1) != 0) order_ok = false;
  });
  const TaskGroup::TaskId b = group.Defer([&] {
    const int s = stage.fetch_add(1);
    if (s != 1 && s != 2) order_ok = false;
  });
  const TaskGroup::TaskId c = group.Defer([&] {
    const int s = stage.fetch_add(1);
    if (s != 1 && s != 2) order_ok = false;
  });
  const TaskGroup::TaskId d = group.Defer([&] {
    if (stage.fetch_add(1) != 3) order_ok = false;
  });
  group.DependsOn(b, a);
  group.DependsOn(c, a);
  group.DependsOn(d, b);
  group.DependsOn(d, c);
  group.Launch();
  group.Wait();

  EXPECT_EQ(stage.load(), 4);
  EXPECT_TRUE(order_ok.load());
}

// A 4000-node chain has exactly one runnable task at any moment; it must
// complete in order without unbounded stack growth (successor dispatch is
// queued, never recursed) — on the scheduler and on the inline fallback.
void RunChain(TaskScheduler* scheduler) {
  constexpr int kNodes = 4000;
  TaskGroup group(scheduler);
  std::atomic<int> next_expected{0};
  std::atomic<bool> order_ok{true};
  std::vector<TaskGroup::TaskId> ids;
  ids.reserve(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    ids.push_back(group.Defer([&next_expected, &order_ok, i] {
      if (next_expected.fetch_add(1) != i) order_ok = false;
    }));
    if (i > 0) group.DependsOn(ids[i], ids[i - 1]);
  }
  group.Launch();
  group.Wait();
  EXPECT_EQ(next_expected.load(), kNodes);
  EXPECT_TRUE(order_ok.load());
}

TEST(TaskSchedulerTest, FourThousandNodeChainRunsInOrder) {
  TaskScheduler scheduler(8);
  RunChain(&scheduler);
}

TEST(TaskSchedulerTest, FourThousandNodeChainRunsInlineWithoutScheduler) {
  RunChain(nullptr);
}

// ------------------------------------------------------- help-while-wait

// With the single worker wedged on a latch, a Wait() from the external
// thread must help-execute the group's tasks itself instead of sleeping —
// caller-blocks would deadlock here.
TEST(TaskSchedulerTest, ExternalWaiterHelpsWhenWorkersAreBusy) {
  TaskScheduler scheduler(1);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  ASSERT_TRUE(scheduler.Submit([released] { released.wait(); }));
  // Let the worker pick the blocker up before queueing group work: a helper
  // runs whatever it acquires, so if the blocker were still queued the
  // waiting thread could wedge itself on it instead.
  while (scheduler.pending() != 0) std::this_thread::yield();

  std::atomic<int> ran{0};
  TaskGroup group(&scheduler);
  for (int i = 0; i < 64; ++i) {
    group.Run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();  // must not block on the wedged worker
  EXPECT_EQ(ran.load(), 64);
  release.set_value();
}

// A task that itself creates a group and waits on it (nested wait on a
// worker thread) must help-execute too; with one worker this would
// otherwise self-deadlock.
TEST(TaskSchedulerTest, NestedWaitInsideWorkerTaskCompletes) {
  TaskScheduler scheduler(1);
  std::atomic<int> inner_ran{0};
  TaskGroup outer(&scheduler);
  outer.Run([&] {
    TaskGroup inner(&scheduler);
    for (int i = 0; i < 16; ++i) {
      inner.Run([&inner_ran] { inner_ran.fetch_add(1); });
    }
    inner.Wait();
  });
  outer.Wait();
  EXPECT_EQ(inner_ran.load(), 16);
}

// ----------------------------------------------------------------- shutdown

TEST(TaskSchedulerTest, ShutdownDrainsAcceptedTasksAndRejectsLater) {
  EventJournal journal;
  TaskScheduler::Options options;
  options.workers = 4;
  options.journal = &journal;
  TaskScheduler scheduler(std::move(options));

  std::atomic<int> ran{0};
  int accepted = 0;
  for (int i = 0; i < 500; ++i) {
    if (scheduler.Submit([&ran] { ran.fetch_add(1); })) ++accepted;
  }
  scheduler.Shutdown();

  // Every accepted task ran before the workers joined; nothing was dropped.
  EXPECT_EQ(ran.load(), accepted);
  EXPECT_EQ(scheduler.stats().executed, static_cast<uint64_t>(accepted));

  // Post-shutdown submission: deterministic false + a task_rejected event.
  EXPECT_FALSE(scheduler.Submit([&ran] { ran.fetch_add(1); }, "late.task"));
  EXPECT_EQ(ran.load(), accepted);
  EventJournal::Filter filter;
  filter.has_kind = true;
  filter.kind = EventKind::kTaskRejected;
  const std::vector<JournalEvent> rejected = journal.Query(filter);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].code, "shutdown");
  EXPECT_EQ(rejected[0].detail, "late.task");
}

// ------------------------------------------------------- backlog fake clock

TEST(TaskSchedulerTest, BacklogSecondsTracksSustainedDepthOnFakeClock) {
  std::atomic<double> now{100.0};
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();

  TaskScheduler::Options options;
  options.workers = 1;
  options.backlog_per_worker = 2;
  options.clock = [&now] { return now.load(); };
  TaskScheduler scheduler(std::move(options));

  ASSERT_TRUE(scheduler.Submit([released] { released.wait(); }));
  // Wait until the worker has picked the blocker up, so the queued tasks
  // below are pure backlog.
  while (scheduler.pending() != 0) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(scheduler.Submit([released] { released.wait(); }));
  }
  ASSERT_GT(scheduler.pending(), 2u);  // above workers * backlog_per_worker

  EXPECT_EQ(scheduler.BacklogSeconds(), 0.0);  // arms the timer
  now.store(103.5);
  EXPECT_DOUBLE_EQ(scheduler.BacklogSeconds(), 3.5);

  release.set_value();
  while (scheduler.pending() != 0) std::this_thread::yield();
  EXPECT_EQ(scheduler.BacklogSeconds(), 0.0);  // drained => disarmed
}

// ------------------------------------------------ ParallelFor bit-identity

TEST(TaskSchedulerTest, ParallelForMatchesSerialLoopBitForBit) {
  TaskScheduler scheduler(8);
  constexpr size_t kN = 10000;
  std::vector<double> serial(kN), parallel(kN);
  const auto body = [](size_t i) {
    double x = static_cast<double>(i) * 1.000000059604644775390625;
    for (int r = 0; r < 8; ++r) x = x * 0.75 + static_cast<double>(i % 7);
    return x;
  };
  for (size_t i = 0; i < kN; ++i) serial[i] = body(i);
  ParallelFor(&scheduler, kN, [&](size_t i) { parallel[i] = body(i); });
  EXPECT_EQ(serial, parallel);
}

// NSGA-II with the scheduler must reproduce the serial front exactly: the
// parallel section only evaluates objectives into index-keyed slots.
TEST(TaskSchedulerTest, Nsga2ParallelFrontIsBitIdenticalToSerial) {
  TaskScheduler scheduler(4);
  const std::vector<std::pair<double, double>> bounds = {
      {1.0, 8.0}, {1.0, 4.0}, {0.5, 6.0}};
  const Nsga2::Evaluate evaluate = [](const Vector& genes) {
    const double a = genes[0] * genes[1] + genes[2];
    const double b = (8.0 - genes[0]) + genes[2] * genes[1];
    return Vector{a, b};
  };
  Nsga2::Options serial_options;
  serial_options.population = 20;
  serial_options.generations = 12;
  Nsga2::Options parallel_options = serial_options;
  parallel_options.scheduler = &scheduler;

  const auto serial_front = Nsga2(serial_options).Optimize(bounds, evaluate);
  const auto parallel_front =
      Nsga2(parallel_options).Optimize(bounds, evaluate);
  ASSERT_EQ(serial_front.size(), parallel_front.size());
  for (size_t i = 0; i < serial_front.size(); ++i) {
    EXPECT_EQ(serial_front[i].genes, parallel_front[i].genes);
    EXPECT_EQ(serial_front[i].objectives, parallel_front[i].objectives);
  }
}

// ParetoPlanner's parallel phase stages per-candidate results and merges in
// candidate order, so the frontier must match the serial planner exactly.
TEST(TaskSchedulerTest, ParetoPlannerParallelFrontierIsBitIdentical) {
  PegasusGenerator gen(7);
  GeneratedWorkload w = gen.Generate(PegasusType::kEpigenomics, 16, 4);
  EngineRegistry registry;
  PegasusGenerator::RegisterSyntheticEngines(&registry, 4);
  TaskScheduler scheduler(4);

  ParetoPlanner planner(&w.library, &registry);
  ParetoPlanner::Options serial;
  ParetoPlanner::Options parallel;
  parallel.scheduler = &scheduler;

  auto serial_frontier = planner.PlanFrontier(w.graph, serial);
  auto parallel_frontier = planner.PlanFrontier(w.graph, parallel);
  ASSERT_TRUE(serial_frontier.ok()) << serial_frontier.status();
  ASSERT_TRUE(parallel_frontier.ok()) << parallel_frontier.status();
  ASSERT_EQ(serial_frontier.value().size(), parallel_frontier.value().size());
  for (size_t i = 0; i < serial_frontier.value().size(); ++i) {
    const auto& s = serial_frontier.value()[i];
    const auto& p = parallel_frontier.value()[i];
    EXPECT_EQ(s.seconds, p.seconds);
    EXPECT_EQ(s.cost, p.cost);
    ASSERT_EQ(s.plan.steps.size(), p.plan.steps.size());
    for (size_t j = 0; j < s.plan.steps.size(); ++j) {
      EXPECT_EQ(s.plan.steps[j].name, p.plan.steps[j].name);
      EXPECT_EQ(s.plan.steps[j].engine, p.plan.steps[j].engine);
      EXPECT_EQ(s.plan.steps[j].estimated_seconds,
                p.plan.steps[j].estimated_seconds);
    }
  }
}

// --------------------------------------------------------------- telemetry

TEST(TaskSchedulerTest, StatsAndMetricsAccountForEveryTask) {
  MetricsRegistry metrics;
  TaskScheduler scheduler(4, &metrics);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(scheduler.Submit([&ran] { ran.fetch_add(1); }));
  }
  scheduler.Shutdown();

  const TaskScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 200u);
  EXPECT_EQ(stats.executed, 200u);
  uint64_t runs = 0;
  for (uint64_t w : stats.worker_runs) runs += w;
  EXPECT_EQ(runs, 200u);

  const std::string text = metrics.RenderPrometheus();
  EXPECT_NE(text.find("ires_sched_tasks_total{event=\"executed\"} 200"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ires_sched_task_wait_seconds_count 200"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ires_sched_pending_tasks 0"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace ires
