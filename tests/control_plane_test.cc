// Resilience suite for the sharded control plane: consistent-hash routing,
// write-ahead job journal (fencing, torn tails, replay), idempotent
// resubmission, per-tenant weighted-fair admission (quota / shedding /
// preemption), replica kill + heartbeat-partition failover with
// journal-checkpoint resume, and the reconciled chaos soak proving no
// accepted job is lost or double-counted. CI runs this binary under
// ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/rest_api.h"
#include "service/control_plane.h"
#include "service/job_journal.h"
#include "workloadgen/asap_workflows.h"

namespace ires {
namespace {

constexpr const char* kGraph =
    "asapServerLog,LineCount,0\n"
    "LineCount,d1,0\n"
    "d1,$$target\n";

void RegisterLineCount(RestApi* api) {
  ASSERT_EQ(api->Handle("POST", "/apiv1/datasets/asapServerLog",
                        "Constraints.Engine.FS=HDFS\n"
                        "Execution.path=hdfs:///log\n"
                        "Optimization.size=5e8\n"
                        "Optimization.documents=1000\n")
                .code,
            201);
  ASSERT_EQ(api->Handle("POST", "/apiv1/abstractOperators/LineCount",
                        "Constraints.OpSpecification.Algorithm.name="
                        "LineCount\n")
                .code,
            201);
  ASSERT_EQ(api->Handle("POST", "/apiv1/operators/LineCount_Spark",
                        "Constraints.Engine=Spark\n"
                        "Constraints.OpSpecification.Algorithm.name="
                        "LineCount\n"
                        "Constraints.Input0.Engine.FS=HDFS\n"
                        "Constraints.Output0.Engine.FS=HDFS\n")
                .code,
            201);
  ASSERT_EQ(api->Handle("POST", "/apiv1/workflows/lc", kGraph).code, 201);
}

WorkflowGraph LineCountGraph(IresServer* server) {
  auto graph = server->ParseWorkflow(kGraph);
  EXPECT_TRUE(graph.ok()) << graph.status();
  return graph.value();
}

/// Blocks every job of the replicas it is installed on at the
/// pre-planning phase boundary until released — the deterministic way to
/// hold jobs QUEUED behind a busy worker. Must be installed before the
/// replica's first Submit and ALWAYS released before teardown (a gated
/// worker never joins).
class PlanGate {
 public:
  ~PlanGate() { Release(); }

  void InstallOn(JobService* service) {
    service->set_phase_probe(
        [this](const std::string&, int, char phase) {
          if (phase != 'p') return;
          parked_.fetch_add(1, std::memory_order_acq_rel);
          while (!open_.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        });
  }

  void Release() { open_.store(true, std::memory_order_release); }

  /// Spins until `count` jobs have reached the gate. A parked job was
  /// pulled by a worker but is still accounted QUEUED (the probe fires
  /// before the state transition), so it keeps occupying a queue slot —
  /// size capacities accordingly.
  void WaitForParked(int count) {
    for (int i = 0; i < 5000; ++i) {
      if (parked_.load(std::memory_order_acquire) >= count) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "no job ever reached the gate";
  }

 private:
  std::atomic<bool> open_{false};
  std::atomic<int> parked_{0};
};

// ------------------------------------------------------------------ routing

TEST(ControlPlaneRoutingTest, ConsistentHashIsDeterministicAndSpreads) {
  IresServer server;
  ControlPlane::Options options;
  options.replicas = 3;
  ControlPlane plane(&server, options);

  std::set<int> hit;
  for (uint64_t fp = 1; fp <= 64; ++fp) {
    const int first = plane.RouteOf(fp);
    ASSERT_GE(first, 0);
    ASSERT_LT(first, 3);
    EXPECT_EQ(plane.RouteOf(fp), first);  // stable under re-query
    hit.insert(first);
  }
  // 64 fingerprints over 3 replicas x 16 virtual nodes: every replica
  // owns a share of the ring.
  EXPECT_EQ(hit.size(), 3u);
}

TEST(ControlPlaneRoutingTest, SubmitMintsDenseIdsAndListMerges) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  const WorkflowGraph graph = LineCountGraph(&server);

  ControlPlane::Options options;
  options.replicas = 3;
  ControlPlane plane(&server, options);

  ControlPlane::SubmitRequest request;
  request.workflow_name = "lc";
  std::vector<std::string> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = plane.Submit(graph, request);
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.value());
  }
  EXPECT_EQ(ids.front(), "job-000001");
  EXPECT_EQ(ids.back(), "job-000006");
  ASSERT_TRUE(plane.WaitForIdle(60.0));

  const std::vector<JobRecord> all = plane.List();
  ASSERT_EQ(all.size(), 6u);
  for (const JobRecord& record : all) {
    EXPECT_EQ(record.state, JobState::kSucceeded) << record.id;
    EXPECT_TRUE(plane.journal().IsTerminal(record.id));
  }
  // Every acceptance was journaled before it reached a replica queue.
  EXPECT_EQ(plane.journal().stats().open_jobs, 0u);
}

// -------------------------------------------------------------- idempotency

TEST(ControlPlaneAdmissionTest, IdempotencyKeyDedupesResubmission) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  const WorkflowGraph graph = LineCountGraph(&server);

  ControlPlane::Options options;
  options.replicas = 3;
  ControlPlane plane(&server, options);

  ControlPlane::SubmitRequest request;
  request.workflow_name = "lc";
  request.idempotency_key = "client-req-7";
  auto first = plane.Submit(graph, request);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = plane.Submit(graph, request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), first.value());

  // The key keeps deduping after the job went terminal: the client's
  // retry storm arrives whenever it arrives.
  ASSERT_TRUE(plane.WaitForIdle(60.0));
  auto third = plane.Submit(graph, request);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value(), first.value());
  EXPECT_EQ(plane.List().size(), 1u);
}

TEST(ControlPlaneAdmissionTest, DuplicateKeyAcrossReplicasReturnsOriginal) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  const WorkflowGraph lc = LineCountGraph(&server);
  const GeneratedWorkload text = MakeTextAnalyticsWorkflow(1000);
  ASSERT_TRUE(server.ImportLibrary(text.library).ok());

  ControlPlane::Options options;
  options.replicas = 3;
  ControlPlane plane(&server, options);

  // Two different workflows would route to whatever replicas their
  // fingerprints pick — the dedupe table sits above routing, so the
  // second submission never reaches a replica at all.
  ControlPlane::SubmitRequest request;
  request.workflow_name = "lc";
  request.idempotency_key = "shared-key";
  auto first = plane.Submit(lc, request);
  ASSERT_TRUE(first.ok()) << first.status();

  request.workflow_name = "text";
  auto second = plane.Submit(text.graph, request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), first.value());
  ASSERT_TRUE(plane.WaitForIdle(60.0));
  EXPECT_EQ(plane.List().size(), 1u);
}

// ------------------------------------------------- tenant quota / shedding

TEST(ControlPlaneAdmissionTest, TenantQuotaBouncesAtOpenJobCount) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  const WorkflowGraph graph = LineCountGraph(&server);

  ControlPlane plane(&server);
  ControlPlane::TenantConfig config;
  config.max_open_jobs = 1;
  plane.SetTenant("acme", config);

  // Pin one open journal entry on the tenant (a job still in flight
  // elsewhere on the plane) so the quota check is deterministic.
  ASSERT_TRUE(
      plane.journal().Open("job-ghost", 0, "acme", "", "wf", "dag"));

  ControlPlane::SubmitRequest request;
  request.workflow_name = "lc";
  request.tenant = "acme";
  auto id = plane.Submit(graph, request);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(id.status().message().find("quota"), std::string::npos)
      << id.status().message();
  EXPECT_EQ(server.metrics()
                .GetCounter("ires_admission_rejects_total",
                            "Submissions bounced at admission, by tenant "
                            "and reason.",
                            {{"tenant", "acme"}, {"reason", "quota"}})
                ->Value(),
            1u);
}

TEST(ControlPlaneAdmissionTest, SheddingDropsLowestClassFirst) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  const WorkflowGraph graph = LineCountGraph(&server);

  ControlPlane::Options options;
  options.replicas = 1;
  options.replica_options.workers = 1;
  options.replica_options.queue_capacity = 5;
  options.shed_bronze_at = 0.5;
  options.shed_silver_at = 0.9;
  ControlPlane plane(&server, options);
  ControlPlane::TenantConfig gold;
  gold.qos_class = 0;
  plane.SetTenant("gold", gold);
  ControlPlane::TenantConfig bronze;
  bronze.qos_class = 2;
  plane.SetTenant("bronze", bronze);

  PlanGate gate;
  gate.InstallOn(plane.replica(0));

  // One job parks at the gate (still holding a queue slot), four more
  // saturate the queue: 5/5 = 1.0.
  ControlPlane::SubmitRequest request;
  request.workflow_name = "lc";
  request.tenant = "gold";
  ASSERT_TRUE(plane.Submit(graph, request).ok());
  gate.WaitForParked(1);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(plane.Submit(graph, request).ok());
  }

  // Bronze sheds above 0.5, silver (the default tenant) above 0.9; gold
  // never sheds — it falls through to queue-full instead.
  request.tenant = "bronze";
  auto shed_bronze = plane.Submit(graph, request);
  ASSERT_FALSE(shed_bronze.ok());
  EXPECT_EQ(shed_bronze.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(shed_bronze.status().message().find("shedding"),
            std::string::npos);

  request.tenant = "default";
  auto shed_silver = plane.Submit(graph, request);
  ASSERT_FALSE(shed_silver.ok());
  EXPECT_EQ(shed_silver.status().code(), StatusCode::kUnavailable);

  request.tenant = "gold";
  auto full = plane.Submit(graph, request);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kResourceExhausted);

  gate.Release();
  EXPECT_TRUE(plane.WaitForIdle(60.0));
}

TEST(ControlPlaneAdmissionTest, FullQueuePreemptsLowerClassQueuedJob) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  const WorkflowGraph graph = LineCountGraph(&server);

  ControlPlane::Options options;
  options.replicas = 1;
  options.replica_options.workers = 1;
  options.replica_options.queue_capacity = 2;
  ControlPlane plane(&server, options);
  ControlPlane::TenantConfig gold;
  gold.qos_class = 0;
  plane.SetTenant("gold", gold);
  ControlPlane::TenantConfig bronze;
  bronze.qos_class = 2;
  plane.SetTenant("bronze", bronze);

  PlanGate gate;
  gate.InstallOn(plane.replica(0));

  ControlPlane::SubmitRequest request;
  request.workflow_name = "lc";
  request.tenant = "gold";
  auto runner = plane.Submit(graph, request);
  ASSERT_TRUE(runner.ok()) << runner.status();
  gate.WaitForParked(1);

  request.tenant = "bronze";
  auto victim = plane.Submit(graph, request);
  ASSERT_TRUE(victim.ok()) << victim.status();

  // Queue is full (parked + bronze = 2/2) — a gold newcomer evicts the
  // queued bronze job instead of bouncing.
  request.tenant = "gold";
  auto winner = plane.Submit(graph, request);
  ASSERT_TRUE(winner.ok()) << winner.status();

  auto evicted = plane.Get(victim.value());
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(evicted.value().state, JobState::kCancelled);
  EXPECT_NE(evicted.value().error.find("preempted"), std::string::npos)
      << evicted.value().error;
  // The preempted job still went terminal exactly once in the journal.
  EXPECT_EQ(plane.journal().TerminalState(victim.value()), "CANCELLED");

  gate.Release();
  ASSERT_TRUE(plane.WaitForIdle(60.0));
  EXPECT_EQ(plane.Get(runner.value()).value().state, JobState::kSucceeded);
  EXPECT_EQ(plane.Get(winner.value()).value().state, JobState::kSucceeded);
}

TEST(ControlPlaneAdmissionTest, WeightedFairDispatchServesGoldFirst) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  const WorkflowGraph graph = LineCountGraph(&server);

  ControlPlane::Options options;
  options.replicas = 1;
  options.replica_options.workers = 1;
  options.replica_options.queue_capacity = 8;
  ControlPlane plane(&server, options);
  ControlPlane::TenantConfig gold;
  gold.qos_class = 0;
  plane.SetTenant("gold", gold);
  ControlPlane::TenantConfig bronze;
  bronze.qos_class = 2;
  plane.SetTenant("bronze", bronze);

  PlanGate gate;
  gate.InstallOn(plane.replica(0));

  ControlPlane::SubmitRequest request;
  request.workflow_name = "lc";
  request.tenant = "default";
  ASSERT_TRUE(plane.Submit(graph, request).ok());  // parks at the gate
  gate.WaitForParked(1);

  request.tenant = "bronze";
  auto b1 = plane.Submit(graph, request);
  auto b2 = plane.Submit(graph, request);
  request.tenant = "gold";
  auto g1 = plane.Submit(graph, request);
  ASSERT_TRUE(b1.ok() && b2.ok() && g1.ok());

  gate.Release();
  ASSERT_TRUE(plane.WaitForIdle(60.0));

  // Submission order was bronze, bronze, gold; dispatch order is by
  // (class, virtual finish time) — gold starts before either bronze.
  const double gold_start = plane.Get(g1.value()).value().started_at;
  EXPECT_LT(gold_start, plane.Get(b1.value()).value().started_at);
  EXPECT_LT(gold_start, plane.Get(b2.value()).value().started_at);
}

TEST(ControlPlaneAdmissionTest, ValidationRejectIsTenantAttributed) {
  IresServer server;
  ASSERT_TRUE(server
                  .RegisterDataset("asapServerLog",
                                   "Constraints.Engine.FS=HDFS\n"
                                   "Execution.path=hdfs:///log\n"
                                   "Optimization.size=5e8\n")
                  .ok());
  ASSERT_TRUE(server
                  .RegisterAbstractOperator(
                      "Mystery",
                      "Constraints.OpSpecification.Algorithm.name=Mystery\n")
                  .ok());
  auto graph = server.ParseWorkflow(
      "asapServerLog,Mystery,0\nMystery,d1,0\nd1,$$target\n");
  ASSERT_TRUE(graph.ok());

  ControlPlane plane(&server);
  ControlPlane::SubmitRequest request;
  request.workflow_name = "wf";
  request.tenant = "acme";
  auto id = plane.Submit(graph.value(), request);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kFailedPrecondition);
  // The lint reject lands on the submitting tenant's series, not an
  // anonymous global bucket.
  EXPECT_EQ(server.metrics()
                .GetCounter("ires_validation_rejects_total",
                            "Workflow submissions rejected by static "
                            "analysis, by diagnostic code.",
                            {{"code", "WF011"}, {"tenant", "acme"}})
                ->Value(),
            1u);
  // Nothing was journaled: rejects never become accepted jobs.
  EXPECT_EQ(plane.journal().stats().appended, 0u);
}

// ------------------------------------------------------------ journal unit

TEST(JobJournalTest, IncarnationFencingMakesTerminalExactlyOnce) {
  JobJournal journal;
  ASSERT_TRUE(journal.Open("job-1", 0, "default", "", "lc", "dag"));
  EXPECT_FALSE(journal.Open("job-1", 0, "default", "", "lc", "dag"));

  JobJournalRecord planning;
  planning.job = "job-1";
  planning.incarnation = 1;
  planning.phase = JournalPhase::kPlanning;
  EXPECT_TRUE(journal.Append(planning));

  // Failover fences incarnation 1; its late appends are dropped.
  EXPECT_EQ(journal.Reassign("job-1", 1), 2u);
  JobJournalRecord stale;
  stale.job = "job-1";
  stale.incarnation = 1;
  stale.phase = JournalPhase::kRunning;
  EXPECT_FALSE(journal.Append(stale));
  EXPECT_EQ(journal.stats().fenced, 1u);

  JobJournalRecord terminal;
  terminal.job = "job-1";
  terminal.incarnation = 2;
  terminal.phase = JournalPhase::kTerminal;
  terminal.state = "SUCCEEDED";
  EXPECT_TRUE(journal.Append(terminal));
  EXPECT_TRUE(journal.IsTerminal("job-1"));

  // Post-terminal appends are fenced even at the live incarnation, and a
  // kill racing the completion becomes a no-op Reassign.
  EXPECT_FALSE(journal.Append(terminal));
  EXPECT_EQ(journal.Reassign("job-1", 0), 0u);

  int terminals = 0;
  for (const JobJournalRecord& record : journal.RecordsFor("job-1")) {
    if (record.phase == JournalPhase::kTerminal) ++terminals;
  }
  EXPECT_EQ(terminals, 1);
}

TEST(JobJournalTest, TornAndTruncatedTailsDecodeTolerant) {
  JobJournal journal;
  ASSERT_TRUE(journal.Open("job-1", 0, "default", "", "lc", "dag"));

  // A crash mid-append: the record occupies its slot in memory but its
  // encoded line is truncated, so replay drops exactly that record.
  journal.TearNext();
  JobJournalRecord torn;
  torn.job = "job-1";
  torn.incarnation = 1;
  torn.phase = JournalPhase::kPlanning;
  EXPECT_TRUE(journal.Append(torn));

  JobJournalRecord running;
  running.job = "job-1";
  running.incarnation = 1;
  running.phase = JournalPhase::kRunning;
  EXPECT_TRUE(journal.Append(running));
  EXPECT_EQ(journal.stats().torn, 1u);

  const std::string text = journal.Encode();
  const JobJournal::DecodeResult decoded = JobJournal::Decode(text);
  EXPECT_EQ(decoded.torn, 1u);
  ASSERT_EQ(decoded.records.size(), 2u);  // open + running survive
  EXPECT_EQ(decoded.records.back().phase, JournalPhase::kRunning);

  // A crash can also shear the file itself mid-final-line.
  const JobJournal::DecodeResult sheared =
      JobJournal::Decode(text.substr(0, text.size() - 7));
  EXPECT_GE(sheared.torn, 1u);
  EXPECT_LE(sheared.records.size(), 2u);
}

TEST(JobJournalTest, ReplayRestoresOpenStateAndKeepsTerminalsFenced) {
  JobJournal source;
  // job-a went terminal; job-b crashed mid-run with one step journaled.
  ASSERT_TRUE(source.Open("job-a", 0, "t1", "key-a", "lc", "dag"));
  JobJournalRecord done;
  done.job = "job-a";
  done.incarnation = 1;
  done.phase = JournalPhase::kTerminal;
  done.state = "SUCCEEDED";
  ASSERT_TRUE(source.Append(done));

  ASSERT_TRUE(source.Open("job-b", 1, "t2", "", "text", "dag"));
  JobJournalRecord running;
  running.job = "job-b";
  running.incarnation = 1;
  running.replica = 1;
  running.phase = JournalPhase::kRunning;
  ASSERT_TRUE(source.Append(running));
  JobJournalRecord step;
  step.job = "job-b";
  step.incarnation = 1;
  step.replica = 1;
  step.phase = JournalPhase::kStepCompleted;
  step.step = 0;
  step.artifact.dataset_node = "d_tfidf";
  ASSERT_TRUE(source.Append(step));

  JobJournal restored;
  restored.Replay(JobJournal::Decode(source.Encode()).records);

  // The terminal-but-unacknowledged job replays terminal: a late ack (or
  // a duplicate terminal append) after recovery is still fenced.
  EXPECT_TRUE(restored.IsTerminal("job-a"));
  EXPECT_EQ(restored.TerminalState("job-a"), "SUCCEEDED");
  EXPECT_FALSE(restored.Append(done));
  EXPECT_EQ(restored.Reassign("job-a", 1), 0u);

  // The open job replays with its checkpoint intact and resumable.
  const auto open = restored.OpenJobsOn(1);
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].job, "job-b");
  EXPECT_TRUE(open[0].was_running);
  ASSERT_EQ(open[0].materialized.size(), 1u);
  EXPECT_EQ(open[0].materialized.count("d_tfidf"), 1u);
  EXPECT_EQ(restored.OpenCountForTenant("t2"), 1u);
  EXPECT_EQ(restored.OpenCountForTenant("t1"), 0u);
  EXPECT_EQ(restored.Reassign("job-b", 0), 2u);
}

// ---------------------------------------------------------------- failover

TEST(ControlPlaneFailoverTest, KillMidPlanReroutesAndCompletes) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  const WorkflowGraph graph = LineCountGraph(&server);

  ControlPlane::Options options;
  options.replicas = 2;
  ControlPlane plane(&server, options);
  const int target = plane.RouteOf(graph.Fingerprint());
  ASSERT_GE(target, 0);

  PlanGate gate;
  gate.InstallOn(plane.replica(target));

  ControlPlane::SubmitRequest request;
  request.workflow_name = "lc";
  auto id = plane.Submit(graph, request);
  ASSERT_TRUE(id.ok()) << id.status();
  gate.WaitForParked(1);

  // Kill the replica while the job is parked pre-planning; the plane
  // fences incarnation 1 and resubmits to the survivor.
  plane.KillReplica(target);
  EXPECT_EQ(plane.failovers(), 1u);
  gate.Release();
  ASSERT_TRUE(plane.WaitForIdle(60.0));

  auto record = plane.Get(id.value());
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().state, JobState::kSucceeded);
  EXPECT_TRUE(record.value().resumed);
  EXPECT_EQ(record.value().resumed_steps, 0);  // nothing ran pre-kill
  EXPECT_EQ(record.value().incarnation, 2u);
  EXPECT_NE(record.value().replica, target);

  // The dead replica's copy abandons into a CANCELLED tombstone; List
  // dedupes to the surviving incarnation.
  auto tombstone = plane.replica(target)->Get(id.value());
  ASSERT_TRUE(tombstone.ok());
  EXPECT_EQ(tombstone.value().state, JobState::kCancelled);
  const std::vector<JobRecord> all = plane.List();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].state, JobState::kSucceeded);

  int terminals = 0;
  for (const JobJournalRecord& r : plane.journal().RecordsFor(id.value())) {
    if (r.phase == JournalPhase::kTerminal) ++terminals;
  }
  EXPECT_EQ(terminals, 1);
  // The tombstone's terminal append carried the fenced incarnation.
  EXPECT_GE(plane.journal().stats().fenced, 1u);
}

TEST(ControlPlaneFailoverTest, KillMidRunResumesSkippingJournaledSteps) {
  IresServer server;
  const GeneratedWorkload text = MakeTextAnalyticsWorkflow(1000);
  ASSERT_TRUE(server.ImportLibrary(text.library).ok());

  ControlPlane::Options options;
  options.replicas = 2;
  ControlPlane plane(&server, options);

  // Kill the serving replica exactly once, right after the first step's
  // outputs hit the journal — the mid-run fault that proves resume.
  std::atomic<bool> killed{false};
  for (int i = 0; i < plane.replica_count(); ++i) {
    plane.replica(i)->set_phase_probe(
        [&plane, &killed, i](const std::string&, int done, char phase) {
          if (phase == 's' && done == 1 &&
              !killed.exchange(true, std::memory_order_acq_rel)) {
            plane.KillReplica(i);
          }
        });
  }

  ControlPlane::SubmitRequest request;
  request.workflow_name = "text";
  auto id = plane.Submit(text.graph, request);
  ASSERT_TRUE(id.ok()) << id.status();
  ASSERT_TRUE(plane.WaitForIdle(60.0));
  ASSERT_TRUE(killed.load());

  auto record = plane.Get(id.value());
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().state, JobState::kSucceeded);
  EXPECT_TRUE(record.value().resumed);
  // The survivor inherited the journaled step instead of re-planning it.
  EXPECT_GE(record.value().resumed_steps, 1);
  EXPECT_EQ(record.value().incarnation, 2u);
  EXPECT_EQ(plane.failovers(), 1u);

  int terminals = 0;
  int steps_inc1 = 0;
  for (const JobJournalRecord& r : plane.journal().RecordsFor(id.value())) {
    if (r.phase == JournalPhase::kTerminal) ++terminals;
    if (r.phase == JournalPhase::kStepCompleted && r.incarnation == 1) {
      ++steps_inc1;
    }
  }
  EXPECT_EQ(terminals, 1);
  EXPECT_GE(steps_inc1, 1);  // the checkpoint that seeded the resume
  // The dead incarnation kept executing (at-least-once) but its late
  // appends — including its terminal — were fenced out.
  EXPECT_GE(plane.journal().stats().fenced, 1u);
}

TEST(ControlPlaneFailoverTest, HeartbeatPartitionEscalatesToFailover) {
  IresServer server;
  ControlPlane::Options options;
  options.replicas = 2;
  options.suspect_after_seconds = 2.0;
  options.down_after_seconds = 5.0;
  ControlPlane plane(&server, options);

  plane.Tick(0.0);  // bootstrap heartbeats
  EXPECT_FALSE(plane.health().degraded);

  plane.PartitionReplica(0);
  plane.Tick(3.0);
  {
    const ControlPlane::Health health = plane.health();
    EXPECT_TRUE(health.degraded);
    EXPECT_EQ(health.replicas[0].state, ControlPlane::ReplicaState::kSuspect);
    EXPECT_TRUE(health.replicas[0].partitioned);
    EXPECT_EQ(health.replicas[1].state, ControlPlane::ReplicaState::kUp);
  }

  plane.Tick(6.0);
  EXPECT_EQ(plane.health().replicas[0].state,
            ControlPlane::ReplicaState::kDown);

  // Restart heals the partition and rejoins the ring.
  plane.RestartReplica(0);
  plane.Tick(7.0);
  const ControlPlane::Health health = plane.health();
  EXPECT_FALSE(health.degraded);
  EXPECT_EQ(health.replicas[0].state, ControlPlane::ReplicaState::kUp);
  EXPECT_FALSE(health.replicas[0].partitioned);
}

// ------------------------------------------------------------- REST surface

TEST(ControlPlaneRestTest, HealthzAggregatesReplicasAndDegrades) {
  IresServer server;
  ControlPlane::Options options;
  options.replicas = 2;
  ControlPlane plane(&server, options);
  RestApi api(&server, &plane);

  ApiResponse up = api.Handle("GET", "/apiv1/healthz");
  EXPECT_EQ(up.code, 200);
  EXPECT_NE(up.body.find("\"replicas\":[{\"id\":0,\"state\":\"up\""),
            std::string::npos)
      << up.body;
  EXPECT_NE(up.body.find("\"id\":1,\"state\":\"up\""), std::string::npos);
  EXPECT_NE(up.body.find("\"status\":\"ok\""), std::string::npos);

  plane.KillReplica(0);
  ApiResponse degraded = api.Handle("GET", "/apiv1/healthz");
  EXPECT_EQ(degraded.code, 200);
  EXPECT_NE(degraded.body.find("\"status\":\"degraded\""), std::string::npos)
      << degraded.body;
  EXPECT_NE(degraded.body.find("\"state\":\"down\""), std::string::npos);
}

TEST(ControlPlaneRestTest, BackpressureCarriesRetryAfter) {
  IresServer server;
  JobService::Options jobs_options;
  jobs_options.workers = 1;
  jobs_options.queue_capacity = 2;
  JobService jobs(&server, jobs_options);
  RestApi api(&server, &jobs);
  RegisterLineCount(&api);
  const WorkflowGraph graph = LineCountGraph(&server);

  PlanGate gate;
  gate.InstallOn(&jobs);

  // Fill the wrapped replica: one job parked at the gate (still holding
  // its queue slot), one more queued behind it.
  ASSERT_TRUE(jobs.Submit(graph, "lc").ok());
  gate.WaitForParked(1);
  ASSERT_TRUE(jobs.Submit(graph, "lc").ok());

  ApiResponse rejected =
      api.Handle("POST", "/apiv1/workflows/lc/execute?mode=async");
  EXPECT_EQ(rejected.code, 429) << rejected.body;
  ASSERT_EQ(rejected.headers.count("Retry-After"), 1u);
  EXPECT_GE(std::atoi(rejected.headers.at("Retry-After").c_str()), 1);
  EXPECT_NE(rejected.body.find("\"retryAfterSeconds\":"), std::string::npos)
      << rejected.body;
  EXPECT_NE(rejected.body.find("\"code\":\"ResourceExhausted\""),
            std::string::npos);

  gate.Release();
  EXPECT_TRUE(jobs.WaitForIdle(60.0));
}

TEST(ControlPlaneRestTest, TenantAndIdempotencyRideTheQueryString) {
  IresServer server;
  ControlPlane plane(&server);
  RestApi api(&server, &plane);
  RegisterLineCount(&api);

  ApiResponse first = api.Handle(
      "POST",
      "/apiv1/workflows/lc/execute?mode=async&tenant=acme&"
      "idempotencyKey=req-1");
  ASSERT_EQ(first.code, 202) << first.body;
  ApiResponse second = api.Handle(
      "POST",
      "/apiv1/workflows/lc/execute?mode=async&tenant=acme&"
      "idempotencyKey=req-1");
  ASSERT_EQ(second.code, 202);
  EXPECT_EQ(first.body, second.body);  // same jobId came back

  ASSERT_TRUE(plane.WaitForIdle(60.0));
  const std::vector<JobRecord> all = plane.List();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].tenant, "acme");
  EXPECT_EQ(all[0].idempotency_key, "req-1");
}

// --------------------------------------------------------------- chaos soak

struct SoakOutcome {
  size_t accepted = 0;
  uint64_t kills = 0;
  uint64_t failovers = 0;
  int resumed = 0;
};

/// Submits `total_jobs` across two workflows and three tenants against a
/// 3-replica plane with seeded mid-plan/mid-run kills and torn journal
/// appends, restarting dead replicas at every checkpoint, then reconciles:
/// every accepted job holds exactly one terminal journal record and its
/// plane-visible state agrees with the journal.
SoakOutcome RunControlPlaneSoak(int total_jobs, uint64_t seed) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  const WorkflowGraph lc = LineCountGraph(&server);
  const GeneratedWorkload text = MakeTextAnalyticsWorkflow(1000);
  EXPECT_TRUE(server.ImportLibrary(text.library).ok());

  ControlPlane::Options options;
  options.replicas = 3;
  options.replica_options.workers = 2;
  options.replica_options.queue_capacity = 64;
  options.chaos.seed = seed;
  options.chaos.kill_mid_plan_probability = 0.05;
  options.chaos.kill_mid_run_probability = 0.05;
  options.chaos.torn_append_probability = 0.5;
  options.chaos.max_kills = 4;
  ControlPlane plane(&server, options);
  ControlPlane::TenantConfig gold;
  gold.qos_class = 0;
  plane.SetTenant("gold", gold);
  ControlPlane::TenantConfig bronze;
  bronze.qos_class = 2;
  plane.SetTenant("bronze", bronze);
  const char* tenants[] = {"gold", "default", "bronze"};

  std::vector<std::string> accepted;
  for (int i = 0; i < total_jobs; ++i) {
    ControlPlane::SubmitRequest request;
    request.workflow_name = i % 3 == 2 ? "text" : "lc";
    request.tenant = tenants[i % 3];
    const WorkflowGraph& graph = i % 3 == 2 ? text.graph : lc;
    bool admitted = false;
    for (int attempt = 0; attempt < 200; ++attempt) {
      auto id = plane.Submit(graph, request);
      if (id.ok()) {
        accepted.push_back(id.value());
        admitted = true;
        break;
      }
      // Backpressure (or a mid-restart routing hole) is retryable — the
      // Retry-After contract; anything else would be a bug.
      EXPECT_TRUE(id.status().code() == StatusCode::kResourceExhausted ||
                  id.status().code() == StatusCode::kUnavailable)
          << id.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(admitted) << "job " << i << " never admitted";

    // Checkpoint: drain, then resurrect whatever chaos killed so routing
    // capacity recovers (and re-adoption of stranded jobs is exercised).
    if ((i + 1) % 50 == 0) {
      EXPECT_TRUE(plane.WaitForIdle(120.0));
      const ControlPlane::Health health = plane.health();
      for (const ControlPlane::ReplicaHealth& replica : health.replicas) {
        if (replica.state == ControlPlane::ReplicaState::kDown) {
          plane.RestartReplica(replica.id);
        }
      }
    }
  }
  EXPECT_TRUE(plane.WaitForIdle(120.0));

  // Reconcile against the journal: accepted => terminal exactly once,
  // and the serving layer agrees with the journal's verdict.
  for (const std::string& id : accepted) {
    EXPECT_TRUE(plane.journal().IsTerminal(id)) << id << " lost";
    int terminals = 0;
    for (const JobJournalRecord& r : plane.journal().RecordsFor(id)) {
      if (r.phase == JournalPhase::kTerminal) ++terminals;
    }
    EXPECT_EQ(terminals, 1) << id << " double-finalized";
    auto record = plane.Get(id);
    EXPECT_TRUE(record.ok()) << id;
    if (record.ok()) {
      EXPECT_EQ(JobStateName(record.value().state),
                plane.journal().TerminalState(id))
          << id;
    }
  }

  // The durable form agrees with the live journal: every intact record
  // round-trips, torn records are exactly the counted ones.
  const JobJournal::Stats stats = plane.journal().stats();
  const JobJournal::DecodeResult decoded =
      JobJournal::Decode(plane.journal().Encode());
  EXPECT_EQ(decoded.torn, stats.torn);
  EXPECT_EQ(decoded.records.size(),
            static_cast<size_t>(stats.appended - stats.torn));

  SoakOutcome outcome;
  outcome.accepted = accepted.size();
  outcome.kills = plane.chaos()->counts().kills();
  outcome.failovers = plane.failovers();
  for (const JobRecord& record : plane.List()) {
    if (record.resumed) ++outcome.resumed;
  }
  return outcome;
}

TEST(ControlPlaneSoakTest, ReconciledSoakLosesNoAcceptedJob) {
  const SoakOutcome outcome = RunControlPlaneSoak(150, 4242);
  EXPECT_EQ(outcome.accepted, 150u);
  // The seed must actually exercise failover, not just a quiet run.
  EXPECT_GE(outcome.kills, 1u);
  EXPECT_GE(outcome.failovers, outcome.kills);
  EXPECT_GE(outcome.resumed, 1);
}

// Long-haul variant for the nightly profile only (ctest -L nightly with
// IRES_NIGHTLY=1): several times the load, more kill budget.
TEST(ControlPlaneSoakTest, NightlyLongSoak) {
  if (std::getenv("IRES_NIGHTLY") == nullptr) {
    GTEST_SKIP() << "set IRES_NIGHTLY=1 to run the long soak";
  }
  const SoakOutcome outcome = RunControlPlaneSoak(200, 777);
  EXPECT_EQ(outcome.accepted, 200u);
  EXPECT_GE(outcome.kills, 1u);
}

}  // namespace
}  // namespace ires
