// Chaos suite: deterministic fault injection end to end. A soak drives
// hundreds of jobs through the full server pipeline under seeded chaos and
// reconciles every injected fault against the retry/replan/breaker
// telemetry; a concurrent variant runs the same storm through the job
// service's worker pool (CI runs this binary under ThreadSanitizer); and
// targeted tests pin down the invariants one at a time — replayability,
// node flaps never indicting engines, and IResReplan never recomputing a
// materialized intermediate.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "chaos/chaos_scheduler.h"
#include "core/ires_server.h"
#include "engines/standard_engines.h"
#include "executor/recovering_executor.h"
#include "planner/dp_planner.h"
#include "service/job_service.h"
#include "workloadgen/asap_workflows.h"

namespace ires {
namespace {

// ------------------------------------------------------------- scheduler

PlanStep OperatorStep(const std::string& algorithm,
                      const std::string& engine) {
  PlanStep step;
  step.kind = PlanStep::Kind::kOperator;
  step.name = algorithm;
  step.algorithm = algorithm;
  step.engine = engine;
  return step;
}

TEST(ChaosSchedulerTest, DisabledConfigInjectsNothing) {
  ChaosConfig config;  // seed 0 = disabled
  config.transient_probability = 1.0;
  EXPECT_FALSE(config.enabled());
  ChaosScheduler chaos(config);
  // Decide still functions (the oracle is simply never installed by Arm),
  // and an armed-less scheduler reports zero injections.
  EXPECT_EQ(chaos.counts().total(), 0u);
}

TEST(ChaosSchedulerTest, SameSeedSameDecisionStream) {
  ChaosConfig config;
  config.seed = 4242;
  config.transient_probability = 0.2;
  config.timeout_probability = 0.1;
  config.engine_crash_probability = 0.1;
  ChaosScheduler a(config);
  ChaosScheduler b(config);
  const PlanStep step = OperatorStep("TF_IDF", "Spark");
  for (int i = 0; i < 200; ++i) {
    const auto da = a.Decide(step, i * 0.5, 1 + i % 3);
    const auto db = b.Decide(step, i * 0.5, 1 + i % 3);
    ASSERT_EQ(da.fail, db.fail) << "draw " << i;
    ASSERT_EQ(da.kind, db.kind) << "draw " << i;
  }
  EXPECT_EQ(a.counts().transient, b.counts().transient);
  EXPECT_EQ(a.counts().timeout, b.counts().timeout);
  EXPECT_EQ(a.counts().engine_crash, b.counts().engine_crash);
  EXPECT_GT(a.counts().total(), 0u);
}

TEST(ChaosSchedulerTest, CrashEngineFilterSparesOtherEngines) {
  ChaosConfig config;
  config.seed = 7;
  config.engine_crash_probability = 1.0;
  config.crash_engine = "Spark";
  ChaosScheduler chaos(config);
  const auto hit = chaos.Decide(OperatorStep("kmeans", "Spark"), 0.0, 1);
  EXPECT_TRUE(hit.fail);
  EXPECT_EQ(hit.kind, FailureKind::kEngineCrash);
  const auto miss = chaos.Decide(OperatorStep("kmeans", "scikit"), 0.0, 1);
  EXPECT_FALSE(miss.fail);
  EXPECT_EQ(chaos.counts().engine_crash, 1u);
}

// ------------------------------------------------------------------ soak

/// Per-soak accumulator reconciled against the server's metric registry.
struct SoakTotals {
  uint64_t injected_transient = 0;
  uint64_t injected_timeout = 0;
  uint64_t injected_crash = 0;
  uint64_t step_retries = 0;
  uint64_t replans = 0;
  std::map<std::string, uint64_t> failures_by_kind;
  int succeeded = 0;
  int failed = 0;
};

IresServer::ExecutionOptions SoakOptions(uint64_t seed) {
  IresServer::ExecutionOptions exec;
  exec.strategy = ReplanStrategy::kIresReplan;
  exec.max_replans = 3;
  exec.retry.max_attempts = 3;
  exec.retry.base_backoff_seconds = 0.5;
  exec.chaos.seed = seed;
  exec.chaos.transient_probability = 0.10;
  exec.chaos.timeout_probability = 0.05;
  exec.chaos.engine_crash_probability = 0.06;
  return exec;
}

/// Runs `jobs` sequential chaos jobs on a fresh server, checking the
/// per-job failure-accounting invariants, and returns the totals. The
/// breaker is configured to never turn an engine permanently OFF, so the
/// soak also proves no engine is ever wrongly amputated.
SoakTotals RunSequentialSoak(IresServer* server, int jobs,
                             uint64_t seed_base) {
  EngineRegistry::BreakerConfig breaker;
  breaker.base_suspension_seconds = 5.0;
  breaker.suspension_multiplier = 2.0;
  breaker.max_suspension_seconds = 60.0;
  breaker.off_after_consecutive_trips = 0;  // chaos must never amputate
  server->engines().set_breaker_config(breaker);

  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  EXPECT_TRUE(server->ImportLibrary(w.library).ok());

  SoakTotals totals;
  for (int i = 0; i < jobs; ++i) {
    const auto result = server->RunWorkflow(
        w.graph, OptimizationPolicy::MinimizeTime(), nullptr,
        SoakOptions(seed_base + static_cast<uint64_t>(i)));
    const RecoveryOutcome& out = result.recovery;

    // Terminal either way; a failed job carries its cause.
    if (out.status.ok()) {
      ++totals.succeeded;
      // Every recorded failure was followed by the replan that fixed it.
      EXPECT_EQ(out.failures.size(), static_cast<size_t>(out.replans))
          << "job " << i;
      // IResReplan never grows the plan: after reusing materialized
      // intermediates the final plan covers at most the original steps.
      EXPECT_LE(out.final_plan.steps.size(), result.plan.steps.size())
          << "job " << i;
    } else {
      ++totals.failed;
      EXPECT_FALSE(out.status.message().empty()) << "job " << i;
      EXPECT_GE(out.failures.size(), static_cast<size_t>(out.replans))
          << "job " << i;
    }
    EXPECT_LE(out.replans, 3) << "job " << i;

    // Reconcile this job's injections against its recovery accounting:
    // every retryable injection either became an in-place retry or
    // exhausted a step's budget (one retryable workflow failure); every
    // injected engine crash aborted exactly one attempt.
    uint64_t retryable_failures = 0;
    uint64_t crash_failures = 0;
    for (const FailureEvent& failure : out.failures) {
      ++totals.failures_by_kind[FailureKindName(failure.kind)];
      if (IsRetryable(failure.kind)) ++retryable_failures;
      if (failure.kind == FailureKind::kEngineCrash) ++crash_failures;
      // Chaos injects step-attributable faults only, so the failed step
      // and its engine are always known.
      EXPECT_GE(failure.failed_step, 0) << "job " << i;
      EXPECT_FALSE(failure.engine.empty()) << "job " << i;
    }
    EXPECT_EQ(result.chaos_injected.transient + result.chaos_injected.timeout,
              static_cast<uint64_t>(out.step_retries) + retryable_failures)
        << "job " << i;
    EXPECT_EQ(result.chaos_injected.engine_crash, crash_failures)
        << "job " << i;

    totals.injected_transient += result.chaos_injected.transient;
    totals.injected_timeout += result.chaos_injected.timeout;
    totals.injected_crash += result.chaos_injected.engine_crash;
    totals.step_retries += static_cast<uint64_t>(out.step_retries);
    totals.replans += static_cast<uint64_t>(out.replans);
  }
  return totals;
}

void CheckSoakTelemetry(IresServer* server, const SoakTotals& totals) {
  // The soak injected real faults and the platform survived them.
  EXPECT_GT(totals.injected_transient + totals.injected_timeout +
                totals.injected_crash,
            0u);
  EXPECT_GT(totals.succeeded, 0);

  // No engine was wrongly lost: with the trip limit disabled every engine
  // is ON, SUSPENDED or HALF_OPEN — and a long quiet period heals them all.
  uint64_t trips_total = 0;
  for (const std::string& name : server->engines().Names()) {
    const auto health = server->engines().HealthOf(name);
    ASSERT_TRUE(health.ok()) << name;
    EXPECT_NE(health.value().health, EngineHealth::kOff) << name;
    trips_total += health.value().trips_total;
  }
  server->engines().AdvanceSimClock(
      server->engines().breaker_config().max_suspension_seconds + 1.0);
  for (const std::string& name : server->engines().Names()) {
    EXPECT_TRUE(server->engines().IsAvailable(name)) << name;
  }

  // Breaker trips reconcile: every workflow failure recorded by the soak
  // indicts its step's engine (chaos injects no node crashes here).
  uint64_t indicting_failures = 0;
  for (const auto& [kind, count] : totals.failures_by_kind) {
    indicting_failures += count;
    EXPECT_NE(kind, FailureKindName(FailureKind::kNodeCrash));
  }
  EXPECT_EQ(trips_total, indicting_failures);

  // The metric registry agrees with the per-job accounting.
  MetricsRegistry& metrics = server->metrics();
  EXPECT_EQ(metrics.GetCounter("ires_step_retries_total", "")->Value(),
            totals.step_retries);
  EXPECT_EQ(metrics
                .GetCounter("ires_replans_total", "",
                            {{"strategy", "ires_replan"}})
                ->Value(),
            totals.replans);
  EXPECT_EQ(metrics
                .GetCounter("ires_chaos_injected_total", "",
                            {{"kind", "transient"}})
                ->Value(),
            totals.injected_transient);
  EXPECT_EQ(metrics
                .GetCounter("ires_chaos_injected_total", "",
                            {{"kind", "timeout"}})
                ->Value(),
            totals.injected_timeout);
  EXPECT_EQ(metrics
                .GetCounter("ires_chaos_injected_total", "",
                            {{"kind", "engine_crash"}})
                ->Value(),
            totals.injected_crash);
  for (const auto& [kind, count] : totals.failures_by_kind) {
    EXPECT_EQ(metrics
                  .GetCounter("ires_workflow_failures_total", "",
                              {{"kind", kind}})
                  ->Value(),
              count)
        << kind;
  }
  // And the exposition renders it all without falling over.
  const std::string rendered = metrics.RenderPrometheus();
  EXPECT_NE(rendered.find("ires_chaos_injected_total"), std::string::npos);
  EXPECT_NE(rendered.find("ires_engine_state"), std::string::npos);
}

TEST(ChaosSoakTest, SequentialSoakAllTerminalAndReconciled) {
  IresServer server;
  const SoakTotals totals = RunSequentialSoak(&server, 150, 1000);
  EXPECT_EQ(totals.succeeded + totals.failed, 150);
  CheckSoakTelemetry(&server, totals);
}

// The same storm, replayed on a fresh server, produces bitwise-identical
// outcomes: chaos runs are reproducible bug reports, not flaky ones.
TEST(ChaosSoakTest, SoakIsDeterministicUnderAFixedSeed) {
  auto fingerprint = [](int jobs, uint64_t seed_base) {
    IresServer server;
    const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
    EXPECT_TRUE(server.ImportLibrary(w.library).ok());
    EngineRegistry::BreakerConfig breaker;
    breaker.base_suspension_seconds = 5.0;
    breaker.off_after_consecutive_trips = 0;
    server.engines().set_breaker_config(breaker);

    std::string print;
    char buffer[256];
    for (int i = 0; i < jobs; ++i) {
      const auto result = server.RunWorkflow(
          w.graph, OptimizationPolicy::MinimizeTime(), nullptr,
          SoakOptions(seed_base + static_cast<uint64_t>(i)));
      const RecoveryOutcome& out = result.recovery;
      // %a is exact: any drift in the simulated timeline shows up.
      std::snprintf(buffer, sizeof(buffer), "job %d ok=%d r=%d sr=%d t=%a;",
                    i, out.status.ok() ? 1 : 0, out.replans,
                    out.step_retries, out.total_execution_seconds);
      print += buffer;
      for (const FailureEvent& failure : out.failures) {
        std::snprintf(buffer, sizeof(buffer), "f(%d,%d,%s,%s);",
                      failure.attempt, failure.failed_step,
                      FailureKindName(failure.kind), failure.engine.c_str());
        print += buffer;
      }
      std::snprintf(buffer, sizeof(buffer), "c(%llu,%llu,%llu);",
                    static_cast<unsigned long long>(
                        result.chaos_injected.transient),
                    static_cast<unsigned long long>(
                        result.chaos_injected.timeout),
                    static_cast<unsigned long long>(
                        result.chaos_injected.engine_crash));
      print += buffer;
    }
    return print;
  };
  const std::string first = fingerprint(40, 5000);
  const std::string second = fingerprint(40, 5000);
  EXPECT_EQ(first, second);
  // The storm was not a no-op.
  EXPECT_NE(first.find("f("), std::string::npos);
}

// The concurrent variant: the same chaos storm submitted through the job
// service's worker pool. Per-job determinism no longer orders the shared
// breaker state, so the assertions are the order-free invariants: every
// job terminal, every record internally consistent, the shared registry
// still healthy, and the metric sums equal to the per-record sums. CI runs
// this under ThreadSanitizer.
TEST(ChaosSoakTest, ConcurrentChaosJobsStayConsistent) {
  constexpr int kJobs = 48;

  IresServer server;
  EngineRegistry::BreakerConfig breaker;
  breaker.base_suspension_seconds = 5.0;
  breaker.off_after_consecutive_trips = 0;
  server.engines().set_breaker_config(breaker);
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  ASSERT_TRUE(server.ImportLibrary(w.library).ok());

  JobService::Options options;
  options.workers = 4;
  options.queue_capacity = kJobs;
  JobService jobs(&server, options);
  for (int i = 0; i < kJobs; ++i) {
    auto id = jobs.Submit(w.graph, "text", OptimizationPolicy::MinimizeTime(),
                          SoakOptions(9000 + static_cast<uint64_t>(i)));
    ASSERT_TRUE(id.ok()) << id.status();
  }
  ASSERT_TRUE(jobs.WaitForIdle(300.0));

  uint64_t step_retries = 0;
  uint64_t replans = 0;
  uint64_t injected = 0;
  std::map<std::string, uint64_t> failures_by_kind;
  for (const JobRecord& record : jobs.List()) {
    ASSERT_TRUE(IsTerminal(record.state)) << record.id;
    ASSERT_NE(record.state, JobState::kCancelled) << record.id;
    if (record.state == JobState::kFailed) {
      EXPECT_FALSE(record.error.empty()) << record.id;
    } else {
      EXPECT_EQ(record.outcome.failures.size(),
                static_cast<size_t>(record.outcome.replans))
          << record.id;
    }
    step_retries += static_cast<uint64_t>(record.outcome.step_retries);
    replans += static_cast<uint64_t>(record.outcome.replans);
    injected += record.chaos_injected.total();
    for (const FailureEvent& failure : record.outcome.failures) {
      ++failures_by_kind[FailureKindName(failure.kind)];
    }
  }
  EXPECT_GT(injected, 0u);

  // Shared-registry invariants survive the concurrent hammering.
  uint64_t trips_total = 0;
  for (const std::string& name : server.engines().Names()) {
    const auto health = server.engines().HealthOf(name);
    ASSERT_TRUE(health.ok()) << name;
    EXPECT_NE(health.value().health, EngineHealth::kOff) << name;
    trips_total += health.value().trips_total;
  }
  // Under concurrency an attempt can also fail because a sibling job just
  // suspended its engine (an organic, uninjected engine crash), so trips
  // are bounded by — not equal to — the recorded engine-indicting
  // failures.
  uint64_t indicting = 0;
  for (const auto& [kind, count] : failures_by_kind) {
    if (kind != FailureKindName(FailureKind::kNodeCrash)) indicting += count;
  }
  EXPECT_LE(trips_total, indicting);

  MetricsRegistry& metrics = server.metrics();
  EXPECT_EQ(metrics.GetCounter("ires_step_retries_total", "")->Value(),
            step_retries);
  EXPECT_EQ(metrics
                .GetCounter("ires_replans_total", "",
                            {{"strategy", "ires_replan"}})
                ->Value(),
            replans);
  for (const auto& [kind, count] : failures_by_kind) {
    EXPECT_EQ(metrics
                  .GetCounter("ires_workflow_failures_total", "",
                              {{"kind", kind}})
                  ->Value(),
              count)
        << kind;
  }
}

// Long-haul variant for the nightly profile only (ctest -L nightly with
// IRES_NIGHTLY=1): the full invariant sweep at several times the load.
TEST(ChaosSoakTest, NightlyLongSoak) {
  if (std::getenv("IRES_NIGHTLY") == nullptr) {
    GTEST_SKIP() << "set IRES_NIGHTLY=1 to run the long soak";
  }
  IresServer server;
  const SoakTotals totals = RunSequentialSoak(&server, 600, 77000);
  EXPECT_EQ(totals.succeeded + totals.failed, 600);
  CheckSoakTelemetry(&server, totals);
}

// ------------------------------------------------------- targeted chaos

// A chaos node flap flows through the per-run enforcer: the job survives
// or fails with a node-crash cause, and — the failure-domain contract — no
// engine is ever indicted for a dead node.
TEST(ChaosNodeFlapTest, NodeEventsNeverIndictEngines) {
  IresServer server;
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  ASSERT_TRUE(server.ImportLibrary(w.library).ok());

  IresServer::ExecutionOptions exec;
  exec.chaos.seed = 11;
  exec.chaos.node_events.push_back({0, 0.2, /*fail=*/true});
  exec.chaos.node_events.push_back({1, 0.4, /*fail=*/true});
  exec.chaos.node_events.push_back({0, 5.0, /*fail=*/false});
  ASSERT_TRUE(exec.chaos.enabled());

  const auto result = server.RunWorkflow(
      w.graph, OptimizationPolicy::MinimizeTime(), nullptr, exec);
  // Probabilistic injection is off: nothing counted.
  EXPECT_EQ(result.chaos_injected.total(), 0u);
  for (const FailureEvent& failure : result.recovery.failures) {
    EXPECT_EQ(failure.kind, FailureKind::kNodeCrash)
        << FailureKindName(failure.kind);
  }
  // Node crashes never touch engine breakers.
  for (const std::string& name : server.engines().Names()) {
    const auto health = server.engines().HealthOf(name);
    ASSERT_TRUE(health.ok());
    EXPECT_EQ(health.value().health, EngineHealth::kOn) << name;
    EXPECT_EQ(health.value().trips_total, 0u) << name;
  }
}

// Execution-level proof of the IResReplan contract: an operator whose
// output was materialized before the failure never *starts* again — not
// merely "is absent from the final plan". The trivial strategy, by
// contrast, redoes the work.
class ReplanRecomputeTest : public ::testing::Test {
 protected:
  // Runs HelloWorld killing `fail_algorithm`'s engine on its first start,
  // returning how many times each algorithm started across all attempts.
  std::map<std::string, int> CountStarts(const std::string& fail_algorithm,
                                         ReplanStrategy strategy) {
    auto registry = MakeStandardEngineRegistry();
    ClusterSimulator cluster(16, 4, 8.0);
    GeneratedWorkload workload = MakeHelloWorldWorkflow(0.5);
    DpPlanner planner(&workload.library, registry.get());
    Enforcer enforcer(registry.get(), &cluster, 7);

    std::map<std::string, int> starts;
    bool fired = false;
    enforcer.set_fault_oracle(
        [&starts, &fired, fail_algorithm](const PlanStep& step, double,
                                          int) {
          Enforcer::FaultDecision decision;
          if (step.kind == PlanStep::Kind::kOperator) {
            ++starts[step.algorithm];
            if (!fired && step.algorithm == fail_algorithm) {
              fired = true;
              decision.fail = true;
              decision.kind = FailureKind::kEngineCrash;
            }
          }
          return decision;
        });
    RecoveringExecutor recovering(&planner, &enforcer, registry.get());
    auto outcome = recovering.Run(workload.graph, {}, strategy);
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    if (outcome.ok()) {
      EXPECT_TRUE(outcome.value().status.ok());
      EXPECT_EQ(outcome.value().replans, 1);
    }
    return starts;
  }
};

TEST_F(ReplanRecomputeTest, IresReplanNeverRestartsMaterializedWork) {
  const auto starts =
      CountStarts("HelloWorld2", ReplanStrategy::kIresReplan);
  // The upstream operator completed before the failure; its output seeded
  // the replan and it never ran again.
  EXPECT_EQ(starts.at("HelloWorld1"), 1);
  // The victim started twice: the killed attempt plus the replanned one.
  EXPECT_EQ(starts.at("HelloWorld2"), 2);
}

TEST_F(ReplanRecomputeTest, TrivialReplanRedoesMaterializedWork) {
  const auto starts =
      CountStarts("HelloWorld2", ReplanStrategy::kTrivialReplan);
  EXPECT_EQ(starts.at("HelloWorld1"), 2);
  EXPECT_EQ(starts.at("HelloWorld2"), 2);
}

}  // namespace
}  // namespace ires
