// Static-analysis suite: the workflow linter's malformed-workflow corpus
// (every seeded defect must surface the exact diagnostic code, severity and
// location), the plan verifier's tamper checks, and the REST/metrics wiring
// (POST /apiv1/validate, 422-with-diagnostics admission rejections and the
// ires_validation_rejects_total counter).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/plan_analyzer.h"
#include "analysis/workflow_analyzer.h"
#include "core/rest_api.h"
#include "engines/standard_engines.h"
#include "planner/dp_planner.h"
#include "service/job_service.h"
#include "workloadgen/pegasus.h"

namespace ires {
namespace {

MetadataTree MakeTree(
    const std::vector<std::pair<std::string, std::string>>& leaves) {
  MetadataTree tree;
  for (const auto& [path, value] : leaves) tree.Set(path, value);
  return tree;
}

/// First diagnostic with `code`, or nullptr.
const Diagnostic* FindCode(const std::vector<Diagnostic>& diags,
                           const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

/// A minimal healthy library: materialized HDFS-text dataset `src`, abstract
/// operator `Op` and one Spark implementation reading/writing HDFS.
OperatorLibrary MakeSmallLibrary() {
  OperatorLibrary library;
  EXPECT_TRUE(library
                  .AddDataset(Dataset(
                      "src", MakeTree({{"Constraints.Engine.FS", "HDFS"},
                                       {"Constraints.type", "text"},
                                       {"Execution.path", "hdfs:///src"},
                                       {"Optimization.size", "5e8"},
                                       {"Optimization.documents", "1000"}})))
                  .ok());
  EXPECT_TRUE(
      library
          .AddAbstract(AbstractOperator(
              "Op",
              MakeTree({{"Constraints.OpSpecification.Algorithm.name", "Op"}})))
          .ok());
  EXPECT_TRUE(library
                  .AddMaterialized(MaterializedOperator(
                      "Op_Spark",
                      MakeTree({{"Constraints.Engine", "Spark"},
                                {"Constraints.OpSpecification.Algorithm.name",
                                 "Op"},
                                {"Constraints.Input0.Engine.FS", "HDFS"},
                                {"Constraints.Output0.Engine.FS", "HDFS"}})))
                  .ok());
  return library;
}

/// src -> Op -> d1, target d1.
WorkflowGraph MakeChain() {
  WorkflowGraph graph;
  graph.AddDataset("src");
  graph.AddOperator("Op");
  graph.AddDataset("d1");
  EXPECT_TRUE(graph.Connect("src", "Op", 0).ok());
  EXPECT_TRUE(graph.Connect("Op", "d1", 0).ok());
  EXPECT_TRUE(graph.SetTarget("d1").ok());
  return graph;
}

// ------------------------------------------------------ WorkflowAnalyzer

TEST(WorkflowAnalyzerTest, CleanWorkflowHasZeroDiagnostics) {
  OperatorLibrary library = MakeSmallLibrary();
  auto engines = MakeStandardEngineRegistry();
  WorkflowAnalyzer::Options options;
  options.library = &library;
  options.engines = engines.get();
  options.cluster_total_cores = 64;
  options.cluster_total_memory_gb = 128.0;
  OptimizationPolicy policy = OptimizationPolicy::Weighted(0.5, 0.5);
  const auto diags =
      WorkflowAnalyzer(options).Analyze(MakeChain(), &policy);
  EXPECT_TRUE(diags.empty()) << RenderText(diags);
}

TEST(WorkflowAnalyzerTest, MissingTargetIsWf001) {
  WorkflowGraph graph;
  graph.AddDataset("src");
  graph.AddOperator("Op");
  graph.AddDataset("d1");
  ASSERT_TRUE(graph.Connect("src", "Op").ok());
  ASSERT_TRUE(graph.Connect("Op", "d1").ok());
  const auto diags = WorkflowAnalyzer().Analyze(graph);
  const Diagnostic* d = FindCode(diags, diag::kNoTarget);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->severity, DiagSeverity::kError);
}

TEST(WorkflowAnalyzerTest, CycleIsWf006WithCulpritOperators) {
  WorkflowGraph graph;
  graph.AddDataset("a");
  graph.AddDataset("b");
  graph.AddOperator("Op1");
  graph.AddOperator("Op2");
  ASSERT_TRUE(graph.Connect("a", "Op1").ok());
  ASSERT_TRUE(graph.Connect("Op1", "b").ok());
  ASSERT_TRUE(graph.Connect("b", "Op2").ok());
  ASSERT_TRUE(graph.Connect("Op2", "a").ok());
  ASSERT_TRUE(graph.SetTarget("b").ok());
  const auto diags = WorkflowAnalyzer().Analyze(graph);
  const Diagnostic* d = FindCode(diags, diag::kCycle);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  EXPECT_EQ(d->location.node, "Op1");
  EXPECT_NE(d->message.find("Op2"), std::string::npos);
  // The Status wrapper keeps its historical contract.
  EXPECT_EQ(graph.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(WorkflowAnalyzerTest, DanglingInputPortIsWf004AtThePort) {
  WorkflowGraph graph;
  graph.AddDataset("src");
  graph.AddOperator("Op");
  graph.AddDataset("d1");
  ASSERT_TRUE(graph.Connect("src", "Op", 1).ok());  // port 0 left dangling
  ASSERT_TRUE(graph.Connect("Op", "d1", 0).ok());
  ASSERT_TRUE(graph.SetTarget("d1").ok());
  const auto diags = WorkflowAnalyzer().Analyze(graph);
  const Diagnostic* d = FindCode(diags, diag::kDanglingInputPort);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  EXPECT_EQ(d->location.node, "Op");
  EXPECT_EQ(d->location.port, 0);
}

TEST(WorkflowAnalyzerTest, MultipleProducersIsWf005) {
  WorkflowGraph graph;
  graph.AddDataset("src");
  graph.AddOperator("Op1");
  graph.AddOperator("Op2");
  graph.AddDataset("d1");
  ASSERT_TRUE(graph.Connect("src", "Op1").ok());
  ASSERT_TRUE(graph.Connect("src", "Op2").ok());
  ASSERT_TRUE(graph.Connect("Op1", "d1").ok());
  ASSERT_TRUE(graph.Connect("Op2", "d1").ok());
  ASSERT_TRUE(graph.SetTarget("d1").ok());
  const auto diags = WorkflowAnalyzer().Analyze(graph);
  const Diagnostic* d = FindCode(diags, diag::kMultipleProducers);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->location.node, "d1");
}

TEST(WorkflowAnalyzerTest, OrphanNodeIsWf007Error) {
  WorkflowGraph graph = MakeChain();
  graph.AddDataset("stray");  // touches no edge at all
  const auto diags = WorkflowAnalyzer().Analyze(graph);
  const Diagnostic* d = FindCode(diags, diag::kOrphanNode);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  EXPECT_EQ(d->location.node, "stray");
}

TEST(WorkflowAnalyzerTest, DeadBranchIsWf008Warning) {
  WorkflowGraph graph = MakeChain();
  graph.AddOperator("Side");
  graph.AddDataset("d2");
  ASSERT_TRUE(graph.Connect("src", "Side").ok());
  ASSERT_TRUE(graph.Connect("Side", "d2").ok());
  const auto diags = WorkflowAnalyzer().Analyze(graph);
  const Diagnostic* d = FindCode(diags, diag::kUnreachableNode);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_FALSE(HasErrors(diags));  // warnings do not fail admission
}

TEST(WorkflowAnalyzerTest, UnknownAndAbstractSourceDatasets) {
  OperatorLibrary library = MakeSmallLibrary();
  EXPECT_TRUE(library
                  .AddDataset(Dataset("ghost",
                                      MakeTree({{"Constraints.Engine.FS",
                                                 "HDFS"}})))  // no path
                  .ok());
  auto engines = MakeStandardEngineRegistry();
  WorkflowAnalyzer::Options options;
  options.library = &library;
  options.engines = engines.get();

  WorkflowGraph unknown;
  unknown.AddDataset("nowhere");
  unknown.AddOperator("Op");
  unknown.AddDataset("d1");
  ASSERT_TRUE(unknown.Connect("nowhere", "Op").ok());
  ASSERT_TRUE(unknown.Connect("Op", "d1").ok());
  ASSERT_TRUE(unknown.SetTarget("d1").ok());
  auto diags = WorkflowAnalyzer(options).Analyze(unknown);
  const Diagnostic* d = FindCode(diags, diag::kUnknownSourceDataset);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->location.node, "nowhere");

  WorkflowGraph abstract_src;
  abstract_src.AddDataset("ghost");
  abstract_src.AddOperator("Op");
  abstract_src.AddDataset("d1");
  ASSERT_TRUE(abstract_src.Connect("ghost", "Op").ok());
  ASSERT_TRUE(abstract_src.Connect("Op", "d1").ok());
  ASSERT_TRUE(abstract_src.SetTarget("d1").ok());
  diags = WorkflowAnalyzer(options).Analyze(abstract_src);
  d = FindCode(diags, diag::kAbstractSourceDataset);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->location.node, "ghost");
}

TEST(WorkflowAnalyzerTest, UnresolvableOperatorIsWf011) {
  OperatorLibrary library = MakeSmallLibrary();
  auto engines = MakeStandardEngineRegistry();
  WorkflowAnalyzer::Options options;
  options.library = &library;
  options.engines = engines.get();
  WorkflowGraph graph;
  graph.AddDataset("src");
  graph.AddOperator("Mystery");  // nothing materializes it
  graph.AddDataset("d1");
  ASSERT_TRUE(graph.Connect("src", "Mystery").ok());
  ASSERT_TRUE(graph.Connect("Mystery", "d1").ok());
  ASSERT_TRUE(graph.SetTarget("d1").ok());
  const auto diags = WorkflowAnalyzer(options).Analyze(graph);
  const Diagnostic* d = FindCode(diags, diag::kUnresolvableOperator);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  EXPECT_EQ(d->location.node, "Mystery");
}

TEST(WorkflowAnalyzerTest, EngineRemovedAfterRegistrationIsWf011) {
  // The platform removes an unavailable engine's operators outright
  // (RemoveByEngine): the operator that resolved at registration time no
  // longer does at submission time.
  OperatorLibrary library = MakeSmallLibrary();
  auto engines = MakeStandardEngineRegistry();
  WorkflowAnalyzer::Options options;
  options.library = &library;
  options.engines = engines.get();
  EXPECT_TRUE(
      WorkflowAnalyzer(options).Analyze(MakeChain()).empty());
  EXPECT_EQ(library.RemoveByEngine("Spark"), 1);
  const auto diags = WorkflowAnalyzer(options).Analyze(MakeChain());
  ASSERT_NE(FindCode(diags, diag::kUnresolvableOperator), nullptr)
      << RenderText(diags);
}

TEST(WorkflowAnalyzerTest, EngineSwitchedOffIsWf012) {
  OperatorLibrary library = MakeSmallLibrary();
  auto engines = MakeStandardEngineRegistry();
  ASSERT_TRUE(engines->SetAvailable("Spark", false).ok());
  WorkflowAnalyzer::Options options;
  options.library = &library;
  options.engines = engines.get();
  const auto diags = WorkflowAnalyzer(options).Analyze(MakeChain());
  const Diagnostic* d = FindCode(diags, diag::kNoAvailableEngine);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  EXPECT_EQ(d->location.node, "Op");
  EXPECT_NE(d->message.find("Spark"), std::string::npos);
}

TEST(WorkflowAnalyzerTest, HardPortMismatchIsWf013ButMovesAreNot) {
  OperatorLibrary library = MakeSmallLibrary();
  // vec: right store, wrong schema — not bridgeable by any move.
  EXPECT_TRUE(library
                  .AddDataset(Dataset(
                      "vec", MakeTree({{"Constraints.Engine.FS", "HDFS"},
                                       {"Constraints.schema", "text"},
                                       {"Execution.path", "hdfs:///vec"}})))
                  .ok());
  // local: wrong store only — one move hop fixes it, so no diagnostic.
  EXPECT_TRUE(library
                  .AddDataset(Dataset(
                      "local", MakeTree({{"Constraints.Engine.FS", "Local"},
                                         {"Execution.path", "/tmp/x"}})))
                  .ok());
  EXPECT_TRUE(library
                  .AddMaterialized(MaterializedOperator(
                      "Strict_Spark",
                      MakeTree({{"Constraints.Engine", "Spark"},
                                {"Constraints.OpSpecification.Algorithm.name",
                                 "Strict"},
                                {"Constraints.Input0.schema", "vector"}})))
                  .ok());
  auto engines = MakeStandardEngineRegistry();
  WorkflowAnalyzer::Options options;
  options.library = &library;
  options.engines = engines.get();

  WorkflowGraph bad;
  bad.AddDataset("vec");
  bad.AddOperator("Strict");
  bad.AddDataset("d1");
  ASSERT_TRUE(bad.Connect("vec", "Strict", 0).ok());
  ASSERT_TRUE(bad.Connect("Strict", "d1").ok());
  ASSERT_TRUE(bad.SetTarget("d1").ok());
  const auto diags = WorkflowAnalyzer(options).Analyze(bad);
  const Diagnostic* d = FindCode(diags, diag::kPortMismatch);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  EXPECT_EQ(d->location.node, "Strict");
  EXPECT_EQ(d->location.port, 0);
  EXPECT_EQ(d->location.path, "schema");

  WorkflowGraph movable;
  movable.AddDataset("local");
  movable.AddOperator("Op");
  movable.AddDataset("d1");
  ASSERT_TRUE(movable.Connect("local", "Op", 0).ok());
  ASSERT_TRUE(movable.Connect("Op", "d1").ok());
  ASSERT_TRUE(movable.SetTarget("d1").ok());
  const auto clean = WorkflowAnalyzer(options).Analyze(movable);
  EXPECT_EQ(FindCode(clean, diag::kPortMismatch), nullptr)
      << RenderText(clean);
}

TEST(WorkflowAnalyzerTest, DeclaredArityMismatchIsWf014) {
  OperatorLibrary library = MakeSmallLibrary();
  EXPECT_TRUE(
      library
          .AddAbstract(AbstractOperator(
              "Join",
              MakeTree({{"Constraints.OpSpecification.Algorithm.name", "Join"},
                        {"Constraints.Input.number", "2"}})))
          .ok());
  EXPECT_TRUE(library
                  .AddMaterialized(MaterializedOperator(
                      "Join_Spark",
                      MakeTree({{"Constraints.Engine", "Spark"},
                                {"Constraints.OpSpecification.Algorithm.name",
                                 "Join"},
                                {"Constraints.Input.number", "2"}})))
                  .ok());
  auto engines = MakeStandardEngineRegistry();
  WorkflowAnalyzer::Options options;
  options.library = &library;
  options.engines = engines.get();
  WorkflowGraph graph;
  graph.AddDataset("src");
  graph.AddOperator("Join");
  graph.AddDataset("d1");
  ASSERT_TRUE(graph.Connect("src", "Join", 0).ok());  // only 1 of 2 inputs
  ASSERT_TRUE(graph.Connect("Join", "d1").ok());
  ASSERT_TRUE(graph.SetTarget("d1").ok());
  const auto diags = WorkflowAnalyzer(options).Analyze(graph);
  const Diagnostic* d = FindCode(diags, diag::kArityMismatch);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->location.node, "Join");
  EXPECT_EQ(d->location.path, "Constraints.Input.number");
}

TEST(WorkflowAnalyzerTest, OverCapacityAskIsWf015) {
  OperatorLibrary library = MakeSmallLibrary();
  EXPECT_TRUE(library
                  .AddMaterialized(MaterializedOperator(
                      "Huge_Big",
                      MakeTree({{"Constraints.Engine", "Big"},
                                {"Constraints.OpSpecification.Algorithm.name",
                                 "Huge"}})))
                  .ok());
  EngineRegistry engines;
  SimulatedEngine::Config cfg;
  cfg.name = "Big";
  cfg.default_resources = Resources{1000, 64, 512.0};
  cfg.native_store = "HDFS";
  ASSERT_TRUE(engines.Add(std::make_unique<SimulatedEngine>(cfg)).ok());
  WorkflowAnalyzer::Options options;
  options.library = &library;
  options.engines = &engines;
  options.cluster_total_cores = 64;
  options.cluster_total_memory_gb = 128.0;
  WorkflowGraph graph;
  graph.AddDataset("src");
  graph.AddOperator("Huge");
  graph.AddDataset("d1");
  ASSERT_TRUE(graph.Connect("src", "Huge").ok());
  ASSERT_TRUE(graph.Connect("Huge", "d1").ok());
  ASSERT_TRUE(graph.SetTarget("d1").ok());
  const auto diags = WorkflowAnalyzer(options).Analyze(graph);
  const Diagnostic* d = FindCode(diags, diag::kOverCapacity);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  EXPECT_EQ(d->location.node, "Huge");
}

TEST(WorkflowAnalyzerTest, BadPolicyWeightsArePo001) {
  const WorkflowGraph graph = MakeChain();
  OptimizationPolicy negative = OptimizationPolicy::Weighted(-1.0, 0.5);
  auto diags = WorkflowAnalyzer().Analyze(graph, &negative);
  const Diagnostic* d = FindCode(diags, diag::kBadPolicyWeights);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->severity, DiagSeverity::kError);

  OptimizationPolicy zeros = OptimizationPolicy::Weighted(0.0, 0.0);
  diags = WorkflowAnalyzer().Analyze(graph, &zeros);
  EXPECT_NE(FindCode(diags, diag::kBadPolicyWeights), nullptr);

  OptimizationPolicy fine = OptimizationPolicy::Weighted(0.7, 0.3);
  diags = WorkflowAnalyzer().Analyze(graph, &fine);
  EXPECT_EQ(FindCode(diags, diag::kBadPolicyWeights), nullptr);
}

TEST(WorkflowAnalyzerTest, CleanPegasusWorkflowPassesAndStillPlans) {
  PegasusGenerator generator(7);
  GeneratedWorkload workload =
      generator.Generate(PegasusType::kMontage, 20, 3);
  EngineRegistry engines;
  PegasusGenerator::RegisterSyntheticEngines(&engines, 3);
  WorkflowAnalyzer::Options options;
  options.library = &workload.library;
  options.engines = &engines;
  const auto diags =
      WorkflowAnalyzer(options).Analyze(workload.graph);
  EXPECT_TRUE(diags.empty()) << RenderText(diags);
  // Planner behaviour is unchanged by the linter: the workload still plans.
  DpPlanner planner(&workload.library, &engines);
  auto plan = planner.Plan(workload.graph, DpPlanner::Options());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan.value().steps.empty());
}

// ---------------------------------------------------------- PlanAnalyzer

class PlanAnalyzerTest : public ::testing::Test {
 protected:
  PlanAnalyzerTest()
      : library_(MakeSmallLibrary()), engines_(MakeStandardEngineRegistry()) {
    DpPlanner planner(&library_, engines_.get());
    auto plan = planner.Plan(MakeChain(), DpPlanner::Options());
    EXPECT_TRUE(plan.ok());
    plan_ = std::move(plan).value();
  }

  PlanAnalyzer MakeAnalyzer(int cores = 0, double memory_gb = 0.0) {
    PlanAnalyzer::Options options;
    options.library = &library_;
    options.engines = engines_.get();
    options.cluster_total_cores = cores;
    options.cluster_total_memory_gb = memory_gb;
    return PlanAnalyzer(options);
  }

  OperatorLibrary library_;
  std::unique_ptr<EngineRegistry> engines_;
  ExecutionPlan plan_;
};

TEST_F(PlanAnalyzerTest, CleanPlanHasZeroDiagnostics) {
  const auto diags = MakeAnalyzer(64, 128.0).Analyze(plan_);
  EXPECT_TRUE(diags.empty()) << RenderText(diags);
}

TEST_F(PlanAnalyzerTest, TamperedIdsDepsEnginesAndEstimatesAreCaught) {
  ExecutionPlan tampered = plan_;
  tampered.steps.back().id += 5;
  auto diags = MakeAnalyzer().Analyze(tampered);
  ASSERT_NE(FindCode(diags, diag::kStepIdMismatch), nullptr)
      << RenderText(diags);

  tampered = plan_;
  tampered.steps.back().deps.push_back(tampered.steps.back().id);  // self-dep
  diags = MakeAnalyzer().Analyze(tampered);
  ASSERT_NE(FindCode(diags, diag::kBadDependency), nullptr)
      << RenderText(diags);

  tampered = plan_;
  tampered.steps.back().engine = "NoSuchEngine";
  diags = MakeAnalyzer().Analyze(tampered);
  ASSERT_NE(FindCode(diags, diag::kUnknownEngine), nullptr)
      << RenderText(diags);

  tampered = plan_;
  tampered.steps.back().estimated_seconds = -1.0;
  diags = MakeAnalyzer().Analyze(tampered);
  const Diagnostic* d = FindCode(diags, diag::kBadEstimate);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
}

TEST_F(PlanAnalyzerTest, SwitchedOffEngineIsPl004) {
  ASSERT_TRUE(engines_->SetAvailable("Spark", false).ok());
  const auto diags = MakeAnalyzer().Analyze(plan_);
  ASSERT_NE(FindCode(diags, diag::kEngineUnavailable), nullptr)
      << RenderText(diags);
}

TEST_F(PlanAnalyzerTest, MalformedMoveIsPl009) {
  ExecutionPlan tampered = plan_;
  PlanStep move;
  move.id = static_cast<int>(tampered.steps.size());
  move.kind = PlanStep::Kind::kMove;
  move.name = "move(broken)";
  move.engine = "Spark";
  move.algorithm = "Move";
  // No outputs, no upstream: doubly malformed.
  tampered.steps.push_back(move);
  const auto diags = MakeAnalyzer().Analyze(tampered);
  const Diagnostic* d = FindCode(diags, diag::kMalformedMove);
  ASSERT_NE(d, nullptr) << RenderText(diags);
  EXPECT_EQ(d->location.step, move.id);
}

TEST_F(PlanAnalyzerTest, OverCapacityStepIsPl007) {
  ExecutionPlan tampered = plan_;
  tampered.steps.back().resources = Resources{100, 8, 16.0};
  const auto diags = MakeAnalyzer(64, 128.0).Analyze(tampered);
  ASSERT_NE(FindCode(diags, diag::kStepOverCapacity), nullptr)
      << RenderText(diags);
}

TEST_F(PlanAnalyzerTest, UnknownSourceDatasetIsPl010) {
  ExecutionPlan tampered = plan_;
  tampered.steps.front().source_datasets.push_back("not-registered");
  const auto diags = MakeAnalyzer().Analyze(tampered);
  ASSERT_NE(FindCode(diags, diag::kUnknownPlanSource), nullptr)
      << RenderText(diags);
}

// ------------------------------------------------------------ Diagnostics

TEST(DiagnosticsTest, RenderingAndStatusBridge) {
  Diagnostic d;
  d.code = diag::kCycle;
  d.severity = DiagSeverity::kError;
  d.location = DiagLocation::Port("op \"x\"", 2);
  d.location.path = "Engine.FS";
  d.message = "broken";
  d.fix_hint = "fix it";
  EXPECT_EQ(d.ToString(),
            "error WF006 at node 'op \"x\"' port 2 (path Engine.FS): broken "
            "[fix: fix it]");
  const std::string json = d.ToJson();
  EXPECT_NE(json.find("\"code\":\"WF006\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"x\\\""), std::string::npos) << json;  // escaped
  EXPECT_NE(json.find("\"port\":2"), std::string::npos) << json;

  Diagnostic warning;
  warning.code = diag::kUnreachableNode;
  warning.severity = DiagSeverity::kWarning;
  warning.message = "meh";
  EXPECT_TRUE(DiagnosticsToStatus({warning}).ok());
  const Status status = DiagnosticsToStatus({warning, d});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("WF006"), std::string::npos);
  EXPECT_EQ(RenderJson({}), "[]");
}

// ------------------------------------------------- REST + metrics wiring

TEST(ValidationApiTest, DryRunValidateReportsWithoutCounting) {
  IresServer server;
  RestApi api(&server);
  ASSERT_EQ(api.Handle("POST", "/apiv1/datasets/asapServerLog",
                       "Constraints.Engine.FS=HDFS\n"
                       "Execution.path=hdfs:///log\n"
                       "Optimization.size=5e8\n")
                .code,
            201);
  // Register the abstract shape only — no materialized implementation, so
  // the workflow parses but cannot be resolved (WF011).
  ASSERT_EQ(api.Handle("POST", "/apiv1/abstractOperators/Mystery",
                       "Constraints.OpSpecification.Algorithm.name=Mystery\n")
                .code,
            201);
  ApiResponse response =
      api.Handle("POST", "/apiv1/validate",
                 "asapServerLog,Mystery,0\nMystery,d1,0\nd1,$$target\n");
  ASSERT_EQ(response.code, 200) << response.body;
  EXPECT_NE(response.body.find("\"valid\":false"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"WF011\""), std::string::npos)
      << response.body;
  // Dry-run linting never counts admission rejects.
  const std::string metrics = api.Handle("GET", "/apiv1/metrics").body;
  EXPECT_EQ(metrics.find("ires_validation_rejects_total"), std::string::npos);

  // A clean workflow validates true with zero findings.
  ASSERT_EQ(api.Handle("POST", "/apiv1/abstractOperators/LineCount",
                       "Constraints.OpSpecification.Algorithm.name="
                       "LineCount\n")
                .code,
            201);
  ASSERT_EQ(api.Handle("POST", "/apiv1/operators/LineCount_Spark",
                       "Constraints.Engine=Spark\n"
                       "Constraints.OpSpecification.Algorithm.name="
                       "LineCount\n")
                .code,
            201);
  response = api.Handle("POST", "/apiv1/validate",
                        "asapServerLog,LineCount,0\nLineCount,d1,0\n"
                        "d1,$$target\n");
  ASSERT_EQ(response.code, 200) << response.body;
  EXPECT_NE(response.body.find("\"valid\":true"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"diagnostics\":[]"), std::string::npos)
      << response.body;

  // Unparseable graphs are a 400, not a lint report.
  EXPECT_EQ(api.Handle("POST", "/apiv1/validate", "one-field-only\n").code,
            400);
}

TEST(ValidationApiTest, AdmissionRejectsWith422DiagnosticsAndCounter) {
  IresServer server;
  RestApi api(&server);
  ASSERT_EQ(api.Handle("POST", "/apiv1/datasets/asapServerLog",
                       "Constraints.Engine.FS=HDFS\n"
                       "Execution.path=hdfs:///log\n"
                       "Optimization.size=5e8\n")
                .code,
            201);
  ASSERT_EQ(api.Handle("POST", "/apiv1/abstractOperators/Mystery",
                       "Constraints.OpSpecification.Algorithm.name=Mystery\n")
                .code,
            201);
  // The store route only checks structure, so an unresolvable operator
  // still stores fine...
  ASSERT_EQ(api.Handle("POST", "/apiv1/workflows/wf",
                       "asapServerLog,Mystery,0\nMystery,d1,0\nd1,$$target\n")
                .code,
            201);
  // ...and is rejected at materialize/execute time with diagnostics.
  ApiResponse response =
      api.Handle("POST", "/apiv1/workflows/wf/materialize");
  EXPECT_EQ(response.code, 422) << response.body;
  EXPECT_NE(response.body.find("\"diagnostics\""), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"WF011\""), std::string::npos)
      << response.body;
  response = api.Handle("POST", "/apiv1/workflows/wf/execute?mode=async");
  EXPECT_EQ(response.code, 422) << response.body;
  EXPECT_NE(response.body.find("\"WF011\""), std::string::npos)
      << response.body;

  const std::string metrics = api.Handle("GET", "/apiv1/metrics").body;
  const size_t pos = metrics.find("ires_validation_rejects_total");
  ASSERT_NE(pos, std::string::npos) << metrics;
  EXPECT_NE(metrics.find("WF011", pos), std::string::npos);
}

TEST(ValidationApiTest, JobServiceSubmitGatesOnTheLinter) {
  IresServer server;
  ASSERT_TRUE(server
                  .RegisterDataset("asapServerLog",
                                   "Constraints.Engine.FS=HDFS\n"
                                   "Execution.path=hdfs:///log\n"
                                   "Optimization.size=5e8\n")
                  .ok());
  ASSERT_TRUE(server
                  .RegisterAbstractOperator(
                      "Mystery",
                      "Constraints.OpSpecification.Algorithm.name=Mystery\n")
                  .ok());
  auto graph = server.ParseWorkflow(
      "asapServerLog,Mystery,0\nMystery,d1,0\nd1,$$target\n");
  ASSERT_TRUE(graph.ok());
  JobService jobs(&server);
  auto id = jobs.Submit(graph.value(), "wf");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(id.status().message().find("WF011"), std::string::npos)
      << id.status().message();
  // Submit-path rejects are tenant-attributable (direct submissions land
  // on the "default" tenant).
  EXPECT_EQ(server.metrics()
                .GetCounter("ires_validation_rejects_total",
                            "Workflow submissions rejected by static "
                            "analysis, by diagnostic code.",
                            {{"code", diag::kUnresolvableOperator},
                             {"tenant", "default"}})
                ->Value(),
            1u);
}

}  // namespace
}  // namespace ires
