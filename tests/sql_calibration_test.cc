#include <gtest/gtest.h>

#include "sql/calibration.h"
#include "sql/musqle_optimizer.h"

namespace ires::sql {
namespace {

TEST(EstimateCalibratorTest, IdentityUntilEnoughSamples) {
  EstimateCalibrator calibrator;
  EXPECT_DOUBLE_EQ(calibrator.Calibrate("PG", 10.0), 10.0);
  calibrator.Record("PG", 1.0, 2.0);
  calibrator.Record("PG", 2.0, 4.0);
  EXPECT_DOUBLE_EQ(calibrator.Calibrate("PG", 10.0), 10.0);  // 2 < min
}

TEST(EstimateCalibratorTest, LearnsLinearBias) {
  // Engine reports cost units; wall time = 2.5 * units + 1.
  EstimateCalibrator calibrator;
  for (double u : {1.0, 2.0, 5.0, 8.0, 10.0}) {
    calibrator.Record("PG", u, 2.5 * u + 1.0);
  }
  EXPECT_NEAR(calibrator.Calibrate("PG", 4.0), 11.0, 1e-9);
  EXPECT_NEAR(calibrator.Calibrate("PG", 20.0), 51.0, 1e-9);
  EXPECT_NEAR(calibrator.Correlation("PG"), 1.0, 1e-9);
}

TEST(EstimateCalibratorTest, CalibrationNeverNegative) {
  EstimateCalibrator calibrator;
  for (double u : {1.0, 2.0, 3.0}) calibrator.Record("X", u, 10.0 - 3.0 * u);
  EXPECT_GE(calibrator.Calibrate("X", 100.0), 0.0);
}

TEST(EstimateCalibratorTest, CorrelationDetectsUselessEstimates) {
  EstimateCalibrator calibrator;
  Rng rng(51);
  // Estimates uncorrelated with actuals.
  for (int i = 0; i < 50; ++i) {
    calibrator.Record("Bad", rng.Uniform(1, 10), rng.Uniform(1, 10));
  }
  // Estimates strongly predictive.
  for (int i = 0; i < 50; ++i) {
    const double e = rng.Uniform(1, 10);
    calibrator.Record("Good", e, 3 * e + rng.Normal(0, 0.1));
  }
  EXPECT_LT(std::fabs(calibrator.Correlation("Bad")), 0.4);
  EXPECT_GT(calibrator.Correlation("Good"), 0.95);

  // Trust frequency tracks correlation.
  int trust_bad = 0, trust_good = 0;
  Rng coin(52);
  for (int i = 0; i < 1000; ++i) {
    trust_bad += calibrator.TrustEngine("Bad", &coin);
    trust_good += calibrator.TrustEngine("Good", &coin);
  }
  EXPECT_LT(trust_bad, 450);
  EXPECT_GT(trust_good, 900);
}

TEST(EstimateCalibratorTest, UnknownEngineIsTrusted) {
  EstimateCalibrator calibrator;
  Rng rng(53);
  EXPECT_TRUE(calibrator.TrustEngine("fresh", &rng));
}

TEST(CalibratedSqlEngineTest, WrapsAndCorrectsEstimates) {
  PostgresSqlEngine pg;
  EstimateCalibrator calibrator;
  // Measured: PG wall time is consistently 2x its estimate.
  RelationStats rel{1e6, 100};
  const double raw = pg.ScanSeconds(rel, 1.0);
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    RelationStats r{1e6 * scale, 100};
    const double est = pg.ScanSeconds(r, 1.0);
    calibrator.Record("PostgreSQL", est, 2.0 * est);
  }
  CalibratedSqlEngine calibrated(&pg, &calibrator);
  EXPECT_NEAR(calibrated.ScanSeconds(rel, 1.0), 2.0 * raw, raw * 0.01);
  // Feasibility passes through unchanged.
  EXPECT_EQ(calibrated.Feasible(1e15), pg.Feasible(1e15));
}

TEST(CalibratedSqlEngineTest, ClosedLoopReducesEstimationError) {
  // End-to-end: run queries, record (estimate, actual), re-optimize with
  // the calibrated fleet, and check the estimates moved toward the truth.
  Catalog catalog = MakeTpchCatalog(5.0, "PostgreSQL", "MemSQL", "SparkSQL");
  auto fleet = MakeStandardSqlEngines();
  MusqleOptimizer optimizer(&catalog, &fleet);
  auto query = SqlParser::Parse(
      "SELECT * FROM customer, orders, lineitem WHERE "
      "c_custkey = o_custkey AND o_orderkey = l_orderkey");
  ASSERT_TRUE(query.ok());

  EstimateCalibrator calibrator;
  Rng rng(54);
  // Training loop: per-operation measurements from single-engine runs (the
  // metastore logs subquery-level estimates and actuals).
  for (int i = 0; i < 20; ++i) {
    auto plan = optimizer.PlanSingleEngine(query.value(), "SparkSQL");
    ASSERT_TRUE(plan.ok());
    for (const SqlPlanNode& node : plan.value().nodes) {
      const double actual =
          node.seconds * fleet.at("SparkSQL")->TruthFactor(&rng);
      calibrator.Record("SparkSQL", node.seconds, actual);
    }
  }

  auto calibrated = CalibrateFleet(fleet, &calibrator);
  MusqleOptimizer calibrated_optimizer(&catalog, &calibrated);
  auto raw_plan = optimizer.PlanSingleEngine(query.value(), "SparkSQL");
  auto cal_plan =
      calibrated_optimizer.PlanSingleEngine(query.value(), "SparkSQL");
  ASSERT_TRUE(raw_plan.ok());
  ASSERT_TRUE(cal_plan.ok());

  // Measure fresh actuals and compare estimation errors.
  double raw_err = 0, cal_err = 0;
  for (int i = 0; i < 30; ++i) {
    const double actual =
        ExecutePlanGroundTruth(raw_plan.value(), fleet, &rng);
    raw_err += std::fabs(actual - raw_plan.value().total_seconds);
    cal_err += std::fabs(actual - cal_plan.value().total_seconds);
  }
  EXPECT_LT(cal_err, raw_err);
}

}  // namespace
}  // namespace ires::sql
