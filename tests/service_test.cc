// Concurrency suite for the serving layer: the job service's admission
// queue, worker pool and lifecycle, the REST jobs surface, the plan cache,
// and — crucially — that N threads hammering the API concurrently lose no
// model-refinement updates and trip no data races (CI runs this binary
// under ThreadSanitizer).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/rest_api.h"
#include "service/job_service.h"
#include "threading/task_scheduler.h"
#include "telemetry/trace_context.h"

namespace ires {
namespace {

constexpr const char* kGraph =
    "asapServerLog,LineCount,0\n"
    "LineCount,d1,0\n"
    "d1,$$target\n";

void RegisterLineCount(RestApi* api) {
  ASSERT_EQ(api->Handle("POST", "/apiv1/datasets/asapServerLog",
                        "Constraints.Engine.FS=HDFS\n"
                        "Execution.path=hdfs:///log\n"
                        "Optimization.size=5e8\n"
                        "Optimization.documents=1000\n")
                .code,
            201);
  ASSERT_EQ(api->Handle("POST", "/apiv1/abstractOperators/LineCount",
                        "Constraints.OpSpecification.Algorithm.name="
                        "LineCount\n")
                .code,
            201);
  ASSERT_EQ(api->Handle("POST", "/apiv1/operators/LineCount_Spark",
                        "Constraints.Engine=Spark\n"
                        "Constraints.OpSpecification.Algorithm.name="
                        "LineCount\n"
                        "Constraints.Input0.Engine.FS=HDFS\n"
                        "Constraints.Output0.Engine.FS=HDFS\n")
                .code,
            201);
  ASSERT_EQ(api->Handle("POST", "/apiv1/workflows/lc", kGraph).code, 201);
}

// ------------------------------------------------------------ TaskScheduler

TEST(TaskSchedulerTest, RunsAllSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    TaskScheduler scheduler(4);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(scheduler.Submit([&ran] { ran.fetch_add(1); }));
    }
  }  // destructor drains + joins
  EXPECT_EQ(ran.load(), 100);
}

TEST(TaskSchedulerTest, RejectsAfterShutdown) {
  TaskScheduler scheduler(2);
  scheduler.Shutdown();
  EXPECT_FALSE(scheduler.Submit([] {}));
}

// --------------------------------------------------------------- JobService

TEST(JobServiceTest, SubmitRunsToSuccess) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  auto graph = server.ParseWorkflow(kGraph);
  ASSERT_TRUE(graph.ok());

  JobService jobs(&server);
  auto id = jobs.Submit(graph.value(), "lc");
  ASSERT_TRUE(id.ok()) << id.status();
  ASSERT_TRUE(jobs.WaitForIdle(30.0));

  auto record = jobs.Get(id.value());
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().state, JobState::kSucceeded);
  EXPECT_GT(record.value().outcome.total_execution_seconds, 0.0);
  EXPECT_EQ(record.value().plan_steps, 1);
  EXPECT_FALSE(record.value().plan_summary.empty());
  EXPECT_GT(record.value().finished_at, 0.0);
}

TEST(JobServiceTest, UnknownJobAndBadCancel) {
  IresServer server;
  JobService jobs(&server);
  EXPECT_EQ(jobs.Get("job-999999").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(jobs.Cancel("job-999999").code(), StatusCode::kNotFound);
}

TEST(JobServiceTest, QueueFullRejectsWithResourceExhausted) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  auto graph = server.ParseWorkflow(kGraph);
  ASSERT_TRUE(graph.ok());

  JobService::Options options;
  options.workers = 1;
  options.queue_capacity = 2;
  JobService jobs(&server, options);

  // Many rapid submissions against 1 worker + 2 queue slots must bounce at
  // least one (the worker may drain a few in between).
  int rejected = 0;
  for (int i = 0; i < 50; ++i) {
    auto id = jobs.Submit(graph.value(), "lc");
    if (!id.ok()) {
      EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_TRUE(jobs.WaitForIdle(60.0));
  EXPECT_EQ(jobs.stats().rejected, static_cast<uint64_t>(rejected));
}

TEST(JobServiceTest, CancelQueuedJob) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  auto graph = server.ParseWorkflow(kGraph);
  ASSERT_TRUE(graph.ok());

  // One worker, deep queue: the tail submission is still QUEUED when we
  // cancel it.
  JobService::Options options;
  options.workers = 1;
  options.queue_capacity = 64;
  JobService jobs(&server, options);
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = jobs.Submit(graph.value(), "lc");
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  const Status cancel = jobs.Cancel(ids.back());
  // Either we caught it queued (OK) or the pool already finished it.
  auto record = jobs.Get(ids.back());
  ASSERT_TRUE(record.ok());
  if (cancel.ok()) {
    EXPECT_TRUE(record.value().state == JobState::kCancelled ||
                record.value().state == JobState::kSucceeded);
  }
  ASSERT_TRUE(jobs.WaitForIdle(60.0));
  record = jobs.Get(ids.back());
  ASSERT_TRUE(record.ok());
  EXPECT_TRUE(IsTerminal(record.value().state));
}

TEST(JobServiceTest, CancelledJobsStillCarryQueueTiming) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  auto graph = server.ParseWorkflow(kGraph);
  ASSERT_TRUE(graph.ok());

  // One worker, deep queue, many jobs: the tail is still QUEUED when
  // cancelled, and its record must nonetheless carry its queue wait — a
  // cancelled job's latency is part of the serving signal.
  JobService::Options options;
  options.workers = 1;
  options.queue_capacity = 64;
  JobService jobs(&server, options);
  std::vector<std::string> ids;
  for (int i = 0; i < 12; ++i) {
    auto id = jobs.Submit(graph.value(), "lc");
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  const Status cancel = jobs.Cancel(ids.back());
  ASSERT_TRUE(jobs.WaitForIdle(60.0));
  for (const JobRecord& record : jobs.List()) {
    ASSERT_TRUE(IsTerminal(record.state));
    EXPECT_GT(record.finished_at, 0.0) << record.id;
    // Every terminal job measured the phases it reached.
    EXPECT_GT(record.queue_seconds, 0.0) << record.id;
    if (record.state == JobState::kSucceeded) {
      EXPECT_GT(record.plan_seconds, 0.0) << record.id;
      EXPECT_GT(record.exec_wall_seconds, 0.0) << record.id;
    }
    // The trace exists and its queue-wait span is closed.
    ASSERT_NE(record.trace, nullptr) << record.id;
    bool queue_span_closed = false;
    for (const TraceSpan& span : record.trace->Snapshot()) {
      if (span.name == "job.queue_wait" && span.finished()) {
        queue_span_closed = true;
      }
    }
    EXPECT_TRUE(queue_span_closed) << record.id;
  }
  if (cancel.ok()) {
    auto record = jobs.Get(ids.back());
    ASSERT_TRUE(record.ok());
    if (record.value().state == JobState::kCancelled) {
      // Cancelled while queued: no planning/execution phases, queue wait
      // spans its whole lifetime.
      EXPECT_EQ(record.value().started_at, 0.0);
      EXPECT_NEAR(record.value().queue_seconds,
                  record.value().finished_at - record.value().submitted_at,
                  1e-9);
    }
  }
}

TEST(JobServiceTest, ShutdownCancelsQueuedJobs) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  auto graph = server.ParseWorkflow(kGraph);
  ASSERT_TRUE(graph.ok());

  JobService::Options options;
  options.workers = 1;
  options.queue_capacity = 64;
  auto jobs = std::make_unique<JobService>(&server, options);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(jobs->Submit(graph.value(), "lc").ok());
  }
  jobs->Shutdown();
  for (const JobRecord& record : jobs->List()) {
    EXPECT_TRUE(IsTerminal(record.state))
        << record.id << " left in " << JobStateName(record.state);
  }
}

TEST(JobServiceTest, EngineRecoversAfterFailedJob) {
  // Regression for the engine-availability leak: a job whose failure
  // indicts Spark used to mark the engine OFF forever, so every later
  // LineCount submission (Spark is its only engine) failed planning. With
  // the circuit breaker the failure only suspends Spark on the simulated
  // clock, and a later job probes and reuses it.
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  auto graph = server.ParseWorkflow(kGraph);
  ASSERT_TRUE(graph.ok());

  JobService::Options options;
  options.workers = 1;
  JobService jobs(&server, options);

  // Job 1 runs under a chaos schedule that always crashes Spark; with no
  // replan budget the failure is terminal.
  IresServer::ExecutionOptions chaotic;
  chaotic.max_replans = 0;
  chaotic.chaos.seed = 21;
  chaotic.chaos.engine_crash_probability = 1.0;
  chaotic.chaos.crash_engine = "Spark";
  auto first = jobs.Submit(graph.value(), "lc",
                           OptimizationPolicy::MinimizeTime(), chaotic);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(jobs.WaitForIdle(30.0));

  auto record = jobs.Get(first.value());
  ASSERT_TRUE(record.ok());
  ASSERT_EQ(record.value().state, JobState::kFailed);
  ASSERT_FALSE(record.value().outcome.failures.empty());
  EXPECT_EQ(record.value().outcome.failures[0].engine, "Spark");
  // The breaker suspended Spark instead of amputating it.
  auto health = server.engines().HealthOf("Spark");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health.value().health, EngineHealth::kOff);

  // Simulated work elapses (other tenants' jobs); the suspension expires.
  server.engines().AdvanceSimClock(
      server.engines().breaker_config().max_suspension_seconds + 1.0);

  // Job 2, no chaos: it must plan onto the recovered Spark and succeed.
  auto second = jobs.Submit(graph.value(), "lc");
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_TRUE(jobs.WaitForIdle(30.0));
  record = jobs.Get(second.value());
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().state, JobState::kSucceeded)
      << record.value().error;
  // The successful probe closed the breaker back to ON.
  health = server.engines().HealthOf("Spark");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().health, EngineHealth::kOn);
}

TEST(JobServiceTest, FailedJobCarriesSloClassAndEventSnapshot) {
  IresServer server;
  RestApi setup(&server);
  RegisterLineCount(&setup);
  auto graph = server.ParseWorkflow(kGraph);
  ASSERT_TRUE(graph.ok());

  JobService::Options options;
  options.workers = 1;
  JobService jobs(&server, options);

  // A doomed job (chaos always crashes Spark, no replan budget) must carry
  // its flight-recorder snapshot into the terminal record; a caller-tagged
  // SLO class sticks.
  IresServer::ExecutionOptions chaotic;
  chaotic.max_replans = 0;
  chaotic.chaos.seed = 33;
  chaotic.chaos.engine_crash_probability = 1.0;
  chaotic.chaos.crash_engine = "Spark";
  auto failed = jobs.Submit(graph.value(), "lc",
                            OptimizationPolicy::MinimizeTime(), chaotic,
                            /*slo_class=*/"sql");
  ASSERT_TRUE(failed.ok()) << failed.status();
  ASSERT_TRUE(jobs.WaitForIdle(30.0));

  auto record = jobs.Get(failed.value());
  ASSERT_TRUE(record.ok());
  ASSERT_EQ(record.value().state, JobState::kFailed);
  EXPECT_EQ(record.value().slo_class, "sql");
  ASSERT_FALSE(record.value().event_snapshot.empty());
  // Snapshot is this job's history in order, ending at the terminal event.
  for (const JournalEvent& event : record.value().event_snapshot) {
    EXPECT_EQ(event.job, failed.value());
  }
  EXPECT_EQ(record.value().event_snapshot.back().kind, EventKind::kJobFailed);
  EXPECT_EQ(record.value().event_snapshot.front().kind,
            EventKind::kAdmissionAccept);

  // A successful job stays snapshot-free (the journal is queryable, but
  // only failures pin history into the record). Let the suspension from the
  // failure above expire first.
  server.engines().AdvanceSimClock(
      server.engines().breaker_config().max_suspension_seconds + 1.0);
  auto ok = jobs.Submit(graph.value(), "lc");
  ASSERT_TRUE(ok.ok()) << ok.status();
  ASSERT_TRUE(jobs.WaitForIdle(30.0));
  record = jobs.Get(ok.value());
  ASSERT_TRUE(record.ok());
  ASSERT_EQ(record.value().state, JobState::kSucceeded)
      << record.value().error;
  EXPECT_EQ(record.value().slo_class, "dag");
  EXPECT_TRUE(record.value().event_snapshot.empty());
}

// ------------------------------------------------------------ REST surface

TEST(JobsRestTest, AsyncExecuteLifecycle) {
  IresServer server;
  RestApi api(&server);
  RegisterLineCount(&api);

  ApiResponse submit =
      api.Handle("POST", "/apiv1/workflows/lc/execute?mode=async");
  ASSERT_EQ(submit.code, 202) << submit.body;
  ASSERT_NE(submit.body.find("\"jobId\":\"job-"), std::string::npos);
  const size_t start = submit.body.find("job-");
  const std::string job_id =
      submit.body.substr(start, submit.body.find('"', start) - start);

  // Poll until terminal.
  ApiResponse record;
  for (int i = 0; i < 600; ++i) {
    record = api.Handle("GET", "/apiv1/jobs/" + job_id);
    ASSERT_EQ(record.code, 200) << record.body;
    if (record.body.find("\"state\":\"SUCCEEDED\"") != std::string::npos ||
        record.body.find("\"state\":\"FAILED\"") != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(record.body.find("\"state\":\"SUCCEEDED\""), std::string::npos)
      << record.body;
  EXPECT_NE(record.body.find("\"plan\":\""), std::string::npos);

  ApiResponse list = api.Handle("GET", "/apiv1/jobs");
  ASSERT_EQ(list.code, 200);
  EXPECT_NE(list.body.find(job_id), std::string::npos);

  // Cancelling a finished job is a 422 with the uniform envelope.
  ApiResponse cancel =
      api.Handle("POST", "/apiv1/jobs/" + job_id + "/cancel");
  EXPECT_EQ(cancel.code, 422);
  EXPECT_NE(cancel.body.find("\"error\":{\"code\":\"FailedPrecondition\""),
            std::string::npos)
      << cancel.body;
}

TEST(JobsRestTest, QueueFullReturns429) {
  IresServer server;
  JobService::Options options;
  options.workers = 1;
  options.queue_capacity = 1;
  JobService jobs(&server, options);
  RestApi api(&server, &jobs);
  RegisterLineCount(&api);

  int rejected_429 = 0;
  for (int i = 0; i < 50; ++i) {
    ApiResponse r =
        api.Handle("POST", "/apiv1/workflows/lc/execute?mode=async");
    if (r.code == 429) {
      ++rejected_429;
      EXPECT_NE(r.body.find("\"error\":{\"code\":\"ResourceExhausted\""),
                std::string::npos)
          << r.body;
    } else {
      EXPECT_EQ(r.code, 202) << r.body;
    }
  }
  EXPECT_GT(rejected_429, 0);
  EXPECT_TRUE(jobs.WaitForIdle(60.0));
}

TEST(JobsRestTest, StatsEndpointCountsCacheHits) {
  IresServer server;
  RestApi api(&server);
  RegisterLineCount(&api);

  // Repeated submission of the same workflow: first plan is a miss, the
  // rest hit the plan cache instead of re-running the DP.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(api.Handle("POST", "/apiv1/workflows/lc/execute").code, 200);
  }
  ApiResponse stats = api.Handle("GET", "/apiv1/stats");
  ASSERT_EQ(stats.code, 200) << stats.body;
  EXPECT_NE(stats.body.find("\"planCache\":{\"hits\":3,\"misses\":1"),
            std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("\"jobs\":{"), std::string::npos);
}

TEST(JobsRestTest, ErrorEnvelopeIsUniform) {
  IresServer server;
  RestApi api(&server);
  ApiResponse missing = api.Handle("GET", "/apiv1/jobs/job-000042");
  EXPECT_EQ(missing.code, 404);
  EXPECT_NE(missing.body.find("\"error\":{\"code\":\"NotFound\""),
            std::string::npos)
      << missing.body;
  ApiResponse unknown = api.Handle("GET", "/nope");
  EXPECT_EQ(unknown.code, 404);
  EXPECT_NE(unknown.body.find("\"error\":{\"code\":\"NotFound\""),
            std::string::npos);
}

// ------------------------------------------------------------- stress test

TEST(ServiceStressTest, ConcurrentSubmissionsAllTerminalNoLostUpdates) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 8;  // 64 runs total, within the model window

  IresServer server;
  JobService::Options options;
  options.workers = 4;
  options.queue_capacity = kThreads * kPerThread;
  JobService jobs(&server, options);
  RestApi api(&server, &jobs);
  RegisterLineCount(&api);

  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&api, &accepted] {
      for (int i = 0; i < kPerThread; ++i) {
        ApiResponse r =
            api.Handle("POST", "/apiv1/workflows/lc/execute?mode=async");
        ASSERT_EQ(r.code, 202) << r.body;  // queue sized for all submissions
        accepted.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(accepted.load(), kThreads * kPerThread);
  ASSERT_TRUE(jobs.WaitForIdle(120.0));

  // Every job reached a terminal state, none failed.
  int succeeded = 0;
  for (const JobRecord& record : jobs.List()) {
    EXPECT_TRUE(IsTerminal(record.state))
        << record.id << " in " << JobStateName(record.state);
    if (record.state == JobState::kSucceeded) ++succeeded;
    EXPECT_TRUE(record.error.empty()) << record.error;
  }
  EXPECT_EQ(succeeded, kThreads * kPerThread);

  // No lost model-refinement updates: the LineCount plan runs exactly one
  // operator (on Spark), so the refined sample count must equal the number
  // of executed runs.
  EXPECT_EQ(server.estimator("LineCount", "Spark")->sample_count(),
            static_cast<size_t>(kThreads * kPerThread));

  // The plan cache absorbed the repeated DP invocations.
  const PlanCache::Stats cache = server.plan_cache().stats();
  EXPECT_GT(cache.hits, 0u);
  EXPECT_GE(cache.hits + cache.misses,
            static_cast<uint64_t>(kThreads * kPerThread));

  const JobService::Stats stats = jobs.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.succeeded, static_cast<uint64_t>(succeeded));
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.running, 0u);

  // The stats above are thin reads over the metrics registry; the rendered
  // exposition must agree with them after the concurrent hammering.
  const std::string metrics = server.metrics().RenderPrometheus();
  EXPECT_NE(metrics.find("ires_jobs_total{event=\"submitted\"} 64"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("ires_jobs_total{event=\"succeeded\"} 64"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("ires_job_queue_wait_seconds_count 64"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("ires_sched_task_wait_seconds_count 64"),
            std::string::npos)
      << metrics;
}

}  // namespace
}  // namespace ires
