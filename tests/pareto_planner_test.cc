#include <gtest/gtest.h>

#include "engines/standard_engines.h"
#include "planner/dp_planner.h"
#include "planner/pareto_planner.h"
#include "workloadgen/asap_workflows.h"

namespace ires {
namespace {

class ParetoPlannerTest : public ::testing::Test {
 protected:
  ParetoPlannerTest() : registry_(MakeStandardEngineRegistry()) {}

  Result<std::vector<ParetoPlanner::FrontierPlan>> Frontier(
      const GeneratedWorkload& w, ParetoPlanner::Options options = {}) {
    ParetoPlanner planner(&w.library, registry_.get());
    return planner.PlanFrontier(w.graph, options);
  }

  std::unique_ptr<EngineRegistry> registry_;
};

TEST_F(ParetoPlannerTest, FrontierIsSortedAndNonDominated) {
  auto frontier = Frontier(MakeTextAnalyticsWorkflow(20e3));
  ASSERT_TRUE(frontier.ok()) << frontier.status();
  const auto& plans = frontier.value();
  ASSERT_FALSE(plans.empty());
  for (size_t i = 1; i < plans.size(); ++i) {
    EXPECT_GT(plans[i].seconds, plans[i - 1].seconds);
    EXPECT_LT(plans[i].cost, plans[i - 1].cost);  // strict trade-off
  }
}

TEST_F(ParetoPlannerTest, FastestPointMatchesScalarMinTimePlanner) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  auto frontier = Frontier(w);
  ASSERT_TRUE(frontier.ok());
  DpPlanner scalar(&w.library, registry_.get());
  auto min_time = scalar.Plan(w.graph, {});
  ASSERT_TRUE(min_time.ok());
  EXPECT_NEAR(frontier.value().front().seconds, min_time.value().metric,
              1e-6);
}

TEST_F(ParetoPlannerTest, CheapestPointMatchesScalarMinCostPlanner) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  auto frontier = Frontier(w);
  ASSERT_TRUE(frontier.ok());
  DpPlanner scalar(&w.library, registry_.get());
  DpPlanner::Options options;
  options.policy = OptimizationPolicy::MinimizeCost();
  auto min_cost = scalar.Plan(w.graph, options);
  ASSERT_TRUE(min_cost.ok());
  EXPECT_NEAR(frontier.value().back().cost, min_cost.value().metric, 1e-6);
}

TEST_F(ParetoPlannerTest, TextWorkflowExposesTimeCostTradeOff) {
  // At mid corpus sizes the hybrid plan is fastest but burns 16 Spark
  // cores; the all-scikit plan is slower but much cheaper. The frontier
  // must expose both.
  auto frontier = Frontier(MakeTextAnalyticsWorkflow(20e3));
  ASSERT_TRUE(frontier.ok());
  const auto& plans = frontier.value();
  ASSERT_GE(plans.size(), 2u);
  EXPECT_LT(plans.front().seconds * 1.2, plans.back().seconds);
  EXPECT_LT(plans.back().cost * 1.2, plans.front().cost);
  // Fastest plan uses Spark somewhere; cheapest stays centralized.
  EXPECT_FALSE(plans.front().plan.EnginesUsed().empty());
  const auto cheap_engines = plans.back().plan.EnginesUsed();
  EXPECT_EQ(cheap_engines, (std::vector<std::string>{"scikit"}));
}

TEST_F(ParetoPlannerTest, SingleImplementationYieldsSinglePoint) {
  // Pagerank at 100M edges: only Spark survives -> exactly one plan.
  auto frontier = Frontier(MakeGraphAnalyticsWorkflow(100e6));
  ASSERT_TRUE(frontier.ok());
  EXPECT_EQ(frontier.value().size(), 1u);
  EXPECT_EQ(frontier.value()[0].plan.EnginesUsed(),
            (std::vector<std::string>{"Spark"}));
}

TEST_F(ParetoPlannerTest, FrontierCapRespected) {
  ParetoPlanner::Options options;
  options.max_frontier_size = 2;
  auto frontier = Frontier(MakeRelationalWorkflow(10.0), options);
  ASSERT_TRUE(frontier.ok());
  EXPECT_LE(frontier.value().size(), 8u);  // small, pruned frontier
}

TEST_F(ParetoPlannerTest, PlansAreStructurallyValid) {
  auto frontier = Frontier(MakeRelationalWorkflow(10.0));
  ASSERT_TRUE(frontier.ok());
  for (const auto& fp : frontier.value()) {
    ASSERT_FALSE(fp.plan.steps.empty());
    for (const PlanStep& step : fp.plan.steps) {
      for (int dep : step.deps) EXPECT_LT(dep, step.id);
      EXPECT_GT(step.estimated_seconds, 0.0);
    }
    double sum = 0.0;
    for (const PlanStep& step : fp.plan.steps) {
      sum += step.estimated_seconds;
    }
    EXPECT_NEAR(sum, fp.seconds, 1e-6);
  }
}

TEST_F(ParetoPlannerTest, MaterializedIntermediatesRespected) {
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  ParetoPlanner::Options options;
  options.materialized_intermediates["vectors"] =
      DatasetInstance{"vectors", "HDFS", "arff", 1e8, 20e3};
  auto frontier = Frontier(w, options);
  ASSERT_TRUE(frontier.ok());
  for (const auto& fp : frontier.value()) {
    for (const PlanStep& step : fp.plan.steps) {
      EXPECT_NE(step.algorithm, "TF_IDF");
    }
  }
}

TEST_F(ParetoPlannerTest, NoFeasiblePlanReported) {
  for (const char* name : {"Java", "Hama", "Spark"}) {
    (void)registry_->SetAvailable(name, false);
  }
  auto frontier = Frontier(MakeGraphAnalyticsWorkflow(1e6));
  EXPECT_EQ(frontier.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ires
