#include <gtest/gtest.h>

#include "metadata/metadata_tree.h"
#include "metadata/tree_match.h"

namespace ires {
namespace {

TEST(MetadataTreeTest, SetGetRoundTrip) {
  MetadataTree tree;
  tree.Set("Constraints.Engine", "Spark");
  tree.Set("Constraints.Input.number", "1");
  EXPECT_EQ(tree.Get("Constraints.Engine"), "Spark");
  EXPECT_EQ(tree.Get("Constraints.Input.number"), "1");
  EXPECT_FALSE(tree.Get("Constraints.Output").has_value());
  EXPECT_EQ(tree.GetOr("Missing.path", "dflt"), "dflt");
}

TEST(MetadataTreeTest, InteriorNodesHaveNoValue) {
  MetadataTree tree;
  tree.Set("A.B.C", "x");
  EXPECT_TRUE(tree.Has("A"));
  EXPECT_TRUE(tree.Has("A.B"));
  EXPECT_FALSE(tree.Get("A.B").has_value());
  EXPECT_EQ(tree.Get("A.B.C"), "x");
}

TEST(MetadataTreeTest, OverwriteValue) {
  MetadataTree tree;
  tree.Set("k", "1");
  tree.Set("k", "2");
  EXPECT_EQ(tree.Get("k"), "2");
}

TEST(MetadataTreeTest, EraseSubtree) {
  MetadataTree tree;
  tree.Set("A.B.C", "x");
  tree.Set("A.D", "y");
  EXPECT_TRUE(tree.Erase("A.B"));
  EXPECT_FALSE(tree.Has("A.B.C"));
  EXPECT_TRUE(tree.Has("A.D"));
  EXPECT_FALSE(tree.Erase("A.B"));  // already gone
}

TEST(MetadataTreeTest, ChildLabelsAreLexicographic) {
  MetadataTree tree;
  tree.Set("root.zeta", "1");
  tree.Set("root.alpha", "2");
  tree.Set("root.mid", "3");
  EXPECT_EQ(tree.ChildLabels("root"),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(MetadataTreeTest, NodeCountCountsAllNodes) {
  MetadataTree tree;
  tree.Set("A.B", "1");   // A, B
  tree.Set("A.C", "2");   // C
  tree.Set("D", "3");     // D
  EXPECT_EQ(tree.NodeCount(), 4u);
}

TEST(MetadataTreeTest, FlattenSortedPaths) {
  MetadataTree tree;
  tree.Set("b.y", "2");
  tree.Set("a.x", "1");
  auto flat = tree.Flatten();
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_EQ(flat[0].first, "a.x");
  EXPECT_EQ(flat[1].first, "b.y");
}

TEST(MetadataTreeTest, ParseDescriptionFormat) {
  const std::string text =
      "# a comment\n"
      "Constraints.Engine=Spark\n"
      "\n"
      "Execution.path=hdfs\\:///user/root/asap-server.log\n"
      "Optimization.documents=1\n";
  auto tree = MetadataTree::ParseDescription(text);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().Get("Constraints.Engine"), "Spark");
  // "\:" unescapes to ":".
  EXPECT_EQ(tree.value().Get("Execution.path"),
            "hdfs:///user/root/asap-server.log");
  EXPECT_EQ(tree.value().Get("Optimization.documents"), "1");
}

TEST(MetadataTreeTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(MetadataTree::ParseDescription("no equals sign").ok());
  EXPECT_FALSE(MetadataTree::ParseDescription("=value-without-path").ok());
}

TEST(MetadataTreeTest, DescriptionRoundTrip) {
  MetadataTree tree;
  tree.Set("Constraints.Engine", "Hama");
  tree.Set("Optimization.cost", "1.0");
  auto reparsed = MetadataTree::ParseDescription(tree.ToDescription());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed.value() == tree);
}

TEST(MetadataTreeTest, EqualityIsStructural) {
  MetadataTree a, b;
  a.Set("x.y", "1");
  b.Set("x.y", "1");
  EXPECT_TRUE(a == b);
  b.Set("x.z", "2");
  EXPECT_FALSE(a == b);
}

// ------------------------------------------------------------ Tree match
MetadataTree FromDescription(const std::string& text) {
  auto tree = MetadataTree::ParseDescription(text);
  EXPECT_TRUE(tree.ok()) << tree.status();
  return tree.value();
}

TEST(TreeMatchTest, ExactLeafMatch) {
  MetadataTree pattern = FromDescription("Constraints.Engine=Spark\n");
  MetadataTree concrete = FromDescription(
      "Constraints.Engine=Spark\nConstraints.Extra=ignored\n");
  EXPECT_TRUE(MatchTrees(pattern, concrete).matched);
}

TEST(TreeMatchTest, ValueMismatchReportsPath) {
  MetadataTree pattern = FromDescription("Constraints.Engine=Spark\n");
  MetadataTree concrete = FromDescription("Constraints.Engine=Hama\n");
  MatchResult r = MatchTrees(pattern, concrete);
  EXPECT_FALSE(r.matched);
  EXPECT_EQ(r.mismatch_path, "Constraints.Engine");
}

TEST(TreeMatchTest, MissingPathFails) {
  MetadataTree pattern = FromDescription("Constraints.Input.number=1\n");
  MetadataTree concrete = FromDescription("Constraints.Engine=Spark\n");
  MatchResult r = MatchTrees(pattern, concrete);
  EXPECT_FALSE(r.matched);
  EXPECT_EQ(r.mismatch_path, "Constraints.Input");
}

TEST(TreeMatchTest, WildcardMatchesAnyValue) {
  MetadataTree pattern = FromDescription("Constraints.Engine=*\n");
  MetadataTree spark = FromDescription("Constraints.Engine=Spark\n");
  MetadataTree hama = FromDescription("Constraints.Engine=Hama\n");
  EXPECT_TRUE(MatchTrees(pattern, spark).matched);
  EXPECT_TRUE(MatchTrees(pattern, hama).matched);
}

TEST(TreeMatchTest, WildcardStillRequiresPath) {
  MetadataTree pattern = FromDescription("Constraints.Engine=*\n");
  MetadataTree concrete = FromDescription("Constraints.type=text\n");
  EXPECT_FALSE(MatchTrees(pattern, concrete).matched);
}

TEST(TreeMatchTest, StructuralConstraintWithoutValue) {
  // A pattern node without a value only requires the path to exist.
  MetadataTree pattern;
  pattern.Set("Constraints.Engine.FS", "HDFS");
  MetadataTree concrete;
  concrete.Set("Constraints.Engine.FS", "HDFS");
  concrete.Set("Constraints.Engine.location", "cluster");
  EXPECT_TRUE(MatchTrees(pattern, concrete).matched);
}

TEST(TreeMatchTest, EmptyPatternMatchesEverything) {
  MetadataTree pattern;
  MetadataTree concrete = FromDescription("a.b=1\nc=2\n");
  EXPECT_TRUE(MatchTrees(pattern, concrete).matched);
}

TEST(TreeMatchTest, MatchSubtreesMissingPatternSubtreeOk) {
  MetadataTree pattern = FromDescription("Execution.path=/x\n");
  MetadataTree concrete;
  EXPECT_TRUE(MatchSubtrees(pattern, concrete, "Constraints").matched);
  EXPECT_FALSE(MatchSubtrees(pattern, concrete, "Execution").matched);
}

TEST(TreeMatchTest, PaperTfIdfExample) {
  // Deliverable §2.1: abstract TF_IDF matches TF_IDF_mahout.
  MetadataTree abstract_op = FromDescription(
      "Constraints.Input.number=1\n"
      "Constraints.Output.number=1\n"
      "Constraints.OpSpecification.Algorithm.name=TF_IDF\n");
  MetadataTree mahout = FromDescription(
      "Constraints.Input.number=1\n"
      "Constraints.Output.number=1\n"
      "Constraints.OpSpecification.Algorithm.name=TF_IDF\n"
      "Constraints.Engine=Hadoop\n"
      "Constraints.Input0.type=sequence\n"
      "Constraints.Input0.Engine.FS=HDFS\n"
      "Execution.LuaScript=tfidf.lua\n");
  EXPECT_TRUE(MatchSubtrees(abstract_op, mahout, "Constraints").matched);

  // A different algorithm must not match.
  MetadataTree wordcount = FromDescription(
      "Constraints.Input.number=1\n"
      "Constraints.Output.number=1\n"
      "Constraints.OpSpecification.Algorithm.name=Wordcount\n");
  EXPECT_FALSE(MatchSubtrees(abstract_op, wordcount, "Constraints").matched);
}

TEST(TreeMatchTest, LinearMergeHandlesInterleavedLabels) {
  // Pattern children interleave with extra concrete children; the single
  // pass must still find all of them.
  MetadataTree pattern = FromDescription("r.b=1\nr.d=2\nr.f=3\n");
  MetadataTree concrete =
      FromDescription("r.a=0\nr.b=1\nr.c=0\nr.d=2\nr.e=0\nr.f=3\nr.g=0\n");
  EXPECT_TRUE(MatchTrees(pattern, concrete).matched);
}

}  // namespace
}  // namespace ires
