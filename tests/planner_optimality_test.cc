// Property test: on workflows where exhaustive enumeration is feasible
// (chains, where the DP's additive cost model is exact), the DP planner's
// metric must equal the optimum found by brute force over every assignment
// of materialized implementations.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "planner/dp_planner.h"
#include "workloadgen/pegasus.h"

namespace ires {
namespace {

// Builds a linear workflow of `ops` operators, each with `m` alternative
// implementations over the synthetic engines, with per-engine native-store
// input/output constraints (so moves are required between different
// engines). `seed` perturbs source size.
GeneratedWorkload MakeChain(int ops, int m, uint64_t seed) {
  Rng rng(seed);
  GeneratedWorkload w;
  MetadataTree source_meta;
  source_meta.Set("Constraints.Engine.FS", "Store0");
  source_meta.Set("Constraints.type", "bin");
  source_meta.Set("Execution.path", "sim://chain_src");
  source_meta.Set("Optimization.size",
                  std::to_string(rng.Uniform(0.5e9, 4e9)));
  source_meta.Set("Optimization.documents", "1000");
  (void)w.library.AddDataset(Dataset("src", source_meta));
  w.graph.AddDataset("src");

  std::string upstream = "src";
  for (int k = 0; k < ops; ++k) {
    const std::string op_name = "Op" + std::to_string(k);
    MetadataTree abstract_meta;
    abstract_meta.Set("Constraints.OpSpecification.Algorithm.name", op_name);
    (void)w.library.AddAbstract(AbstractOperator(op_name, abstract_meta));
    for (int e = 0; e < m; ++e) {
      MetadataTree meta;
      meta.Set("Constraints.Engine", "Eng" + std::to_string(e));
      meta.Set("Constraints.OpSpecification.Algorithm.name", op_name);
      meta.Set("Constraints.Input0.Engine.FS", "Store" + std::to_string(e));
      meta.Set("Constraints.Output0.Engine.FS", "Store" + std::to_string(e));
      meta.Set("Constraints.Output0.type", "bin");
      (void)w.library.AddMaterialized(MaterializedOperator(
          op_name + "_Eng" + std::to_string(e), std::move(meta)));
    }
    w.graph.AddOperator(op_name);
    (void)w.graph.Connect(upstream, op_name);
    upstream = op_name + "_out";
    w.graph.AddDataset(upstream);
    (void)w.graph.Connect(op_name, upstream);
  }
  (void)w.graph.SetTarget(upstream);
  return w;
}

// Exhaustively evaluates every implementation assignment of the chain and
// returns the minimum total seconds (operator estimates + forced moves).
double BruteForceOptimum(const GeneratedWorkload& w,
                         const EngineRegistry& registry, int ops, int m) {
  const Dataset* src = w.library.FindDatasetByName("src");
  double best = std::numeric_limits<double>::infinity();

  std::vector<int> assignment(ops, 0);
  while (true) {
    // Evaluate this assignment.
    double total = 0.0;
    bool feasible = true;
    DatasetInstance current{"src", src->store(), src->format(),
                            src->size_bytes(), src->record_count()};
    for (int k = 0; k < ops && feasible; ++k) {
      const std::string mo_name =
          "Op" + std::to_string(k) + "_Eng" + std::to_string(assignment[k]);
      const MaterializedOperator* mo =
          w.library.FindMaterializedByName(mo_name);
      const SimulatedEngine* engine = registry.Find(mo->engine());
      const std::string required_store =
          "Store" + std::to_string(assignment[k]);
      DatasetInstance input = current;
      if (input.store != required_store) {
        total += registry.movement().MoveSeconds(input.bytes, input.store,
                                                 required_store, false);
        input.store = required_store;
      }
      OperatorRunRequest request;
      request.algorithm = mo->algorithm();
      request.input_bytes = input.bytes;
      request.input_records = input.records;
      request.resources = engine->default_resources();
      auto est = engine->Estimate(request);
      if (!est.ok()) {
        feasible = false;
        break;
      }
      total += est.value().exec_seconds;
      current.store = required_store;
      current.format = "bin";
      current.bytes = est.value().output_bytes;
      current.records = est.value().output_records;
    }
    if (feasible) best = std::min(best, total);

    // Next assignment (odometer).
    int pos = 0;
    while (pos < ops && ++assignment[pos] == m) {
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == ops) break;
  }
  return best;
}

class OptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimalityTest, DpMatchesBruteForceOnChains) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng shape_rng(seed * 7919 + 13);
  const int ops = static_cast<int>(shape_rng.UniformInt(1, 5));
  const int m = static_cast<int>(shape_rng.UniformInt(2, 4));

  EngineRegistry registry;
  PegasusGenerator::RegisterSyntheticEngines(&registry, m);
  const GeneratedWorkload w = MakeChain(ops, m, seed);

  DpPlanner planner(&w.library, &registry);
  auto plan = planner.Plan(w.graph, {});
  ASSERT_TRUE(plan.ok()) << plan.status();

  const double brute = BruteForceOptimum(w, registry, ops, m);
  ASSERT_TRUE(std::isfinite(brute));
  EXPECT_NEAR(plan.value().metric, brute, brute * 1e-9)
      << "ops=" << ops << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(RandomChains, OptimalityTest,
                         ::testing::Range(1, 26));

}  // namespace
}  // namespace ires
