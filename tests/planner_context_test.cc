// PlannerContext: memoized candidate resolution, invalidation on library /
// engine-registry version bumps, snapshot safety across RemoveByEngine,
// concurrency (exercised under TSan in CI), parallel-planner determinism,
// and the deep-chain reconstruction regression.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "planner/dp_planner.h"
#include "planner/pareto_planner.h"
#include "planner/planner_context.h"
#include "provisioning/nsga2.h"
#include "threading/task_scheduler.h"
#include "workloadgen/pegasus.h"

namespace ires {
namespace {

GeneratedWorkload MakeWorkload(int operators = 24, int m = 4) {
  PegasusGenerator gen(99);
  return gen.Generate(PegasusType::kEpigenomics, operators, m);
}

MaterializedOperator MakeImpl(const std::string& name,
                              const std::string& algorithm,
                              const std::string& engine,
                              const std::string& store) {
  MetadataTree meta;
  meta.Set("Constraints.Engine", engine);
  meta.Set("Constraints.OpSpecification.Algorithm.name", algorithm);
  meta.Set("Constraints.Input0.Engine.FS", store);
  meta.Set("Constraints.Output0.Engine.FS", store);
  meta.Set("Constraints.Output0.type", "bin");
  return MaterializedOperator(name, std::move(meta));
}

// ---- Memoization and counters. ---------------------------------------------

TEST(PlannerContextTest, RepeatedResolveHitsTheCache) {
  GeneratedWorkload w = MakeWorkload();
  EngineRegistry registry;
  PegasusGenerator::RegisterSyntheticEngines(&registry, 4);
  PlannerContext context(&w.library, &registry);

  // Every abstract node in the workload resolves through the index; the
  // second pass must be all hits.
  const CandidateSnapshot first = context.Resolve("fastQSplit_0");
  EXPECT_GT(first.size(), 0u);
  const PlannerContext::Stats after_miss = context.stats();
  EXPECT_EQ(after_miss.misses, 1u);
  EXPECT_EQ(after_miss.hits, 0u);

  const CandidateSnapshot second = context.Resolve("fastQSplit_0");
  const PlannerContext::Stats after_hit = context.stats();
  EXPECT_EQ(after_hit.misses, 1u);
  EXPECT_EQ(after_hit.hits, 1u);
  ASSERT_EQ(second.size(), first.size());
  // Hit returns the identical shared set, not a rebuilt copy.
  EXPECT_EQ(&first[0], &second[0]);
}

TEST(PlannerContextTest, SynthesizesAbstractForInlineOperators) {
  OperatorLibrary library;
  ASSERT_TRUE(
      library.AddMaterialized(MakeImpl("Grep_Eng0", "Grep", "Eng0", "Store0"))
          .ok());
  EngineRegistry registry;
  PegasusGenerator::RegisterSyntheticEngines(&registry, 1);
  PlannerContext context(&library, &registry);

  // "Grep" has no registered abstract; the context synthesizes one whose
  // algorithm is the node name (the planners' shared fallback).
  const CandidateSnapshot snapshot = context.Resolve("Grep");
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].op.name(), "Grep_Eng0");
  EXPECT_EQ(snapshot[0].engine_name, "Eng0");
  EXPECT_TRUE(snapshot[0].engine_available);
  EXPECT_EQ(snapshot[0].InputReq(0).store, "Store0");
  // Ports beyond the constrained ones are unconstrained.
  EXPECT_TRUE(snapshot[0].InputReq(7).store.empty());
}

// ---- Invalidation. ---------------------------------------------------------

TEST(PlannerContextTest, LibraryRegistrationEvictsStaleEntries) {
  OperatorLibrary library;
  ASSERT_TRUE(
      library.AddMaterialized(MakeImpl("Grep_Eng0", "Grep", "Eng0", "Store0"))
          .ok());
  EngineRegistry registry;
  PegasusGenerator::RegisterSyntheticEngines(&registry, 2);
  PlannerContext context(&library, &registry);

  EXPECT_EQ(context.Resolve("Grep").size(), 1u);
  const uint64_t stamped = context.Resolve("Grep").library_version();
  EXPECT_EQ(stamped, library.version());

  // A registration bumps the library version: the cached entry is stale and
  // must be rebuilt (a miss), now seeing both implementations.
  ASSERT_TRUE(
      library.AddMaterialized(MakeImpl("Grep_Eng1", "Grep", "Eng1", "Store1"))
          .ok());
  const PlannerContext::Stats before = context.stats();
  const CandidateSnapshot rebuilt = context.Resolve("Grep");
  EXPECT_EQ(context.stats().misses, before.misses + 1);
  EXPECT_EQ(rebuilt.size(), 2u);
  EXPECT_EQ(rebuilt.library_version(), library.version());
}

TEST(PlannerContextTest, EngineAvailabilityFlipEvictsStaleEntries) {
  OperatorLibrary library;
  ASSERT_TRUE(
      library.AddMaterialized(MakeImpl("Grep_Eng0", "Grep", "Eng0", "Store0"))
          .ok());
  EngineRegistry registry;
  PegasusGenerator::RegisterSyntheticEngines(&registry, 1);
  PlannerContext context(&library, &registry);

  EXPECT_TRUE(context.Resolve("Grep")[0].engine_available);

  ASSERT_TRUE(registry.SetAvailable("Eng0", false).ok());
  const PlannerContext::Stats before = context.stats();
  EXPECT_FALSE(context.Resolve("Grep")[0].engine_available);
  EXPECT_EQ(context.stats().misses, before.misses + 1);

  ASSERT_TRUE(registry.SetAvailable("Eng0", true).ok());
  EXPECT_TRUE(context.Resolve("Grep")[0].engine_available);
}

// ---- Snapshot safety across RemoveByEngine (the dangling-pointer fix). -----

TEST(PlannerContextTest, SnapshotOutlivesRemoveByEngine) {
  OperatorLibrary library;
  ASSERT_TRUE(
      library.AddMaterialized(MakeImpl("Grep_Eng0", "Grep", "Eng0", "Store0"))
          .ok());
  ASSERT_TRUE(
      library.AddMaterialized(MakeImpl("Grep_Eng1", "Grep", "Eng1", "Store1"))
          .ok());
  EngineRegistry registry;
  PegasusGenerator::RegisterSyntheticEngines(&registry, 2);
  PlannerContext context(&library, &registry);

  const CandidateSnapshot held = context.Resolve("Grep");
  ASSERT_EQ(held.size(), 2u);

  // Erase one engine's operators. The held snapshot owns copies, so its
  // candidates stay fully readable; a fresh resolve reflects the removal.
  EXPECT_EQ(library.RemoveByEngine("Eng1"), 1);
  EXPECT_EQ(held.size(), 2u);
  EXPECT_EQ(held[1].op.name(), "Grep_Eng1");
  EXPECT_EQ(held[1].op.algorithm(), "Grep");
  EXPECT_EQ(held[1].InputReq(0).store, "Store1");

  const CandidateSnapshot fresh = context.Resolve("Grep");
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].op.name(), "Grep_Eng0");
}

TEST(PlannerContextTest, MatchSnapshotIsVersionStamped) {
  OperatorLibrary library;
  ASSERT_TRUE(
      library.AddMaterialized(MakeImpl("Grep_Eng0", "Grep", "Eng0", "Store0"))
          .ok());
  MetadataTree meta;
  meta.Set("Constraints.OpSpecification.Algorithm.name", "Grep");
  const AbstractOperator abstract("Grep", std::move(meta));

  const OperatorLibrary::MatchSnapshot snapshot =
      library.FindMaterializedSnapshot(abstract);
  EXPECT_EQ(snapshot.version, library.version());
  ASSERT_EQ(snapshot.operators.size(), 1u);
  EXPECT_EQ(snapshot.operators[0].name(), "Grep_Eng0");
}

// ---- Concurrency: planners race registrations and availability flips. ------
// The interesting assertions here are TSan's (the CI tsan job builds this
// test): the sharded cache, the owning snapshots and the library's locking
// must keep concurrent register/remove/plan free of data races.

TEST(PlannerContextTest, ConcurrentRegisterAndPlanStaysConsistent) {
  GeneratedWorkload w = MakeWorkload(16, 3);
  EngineRegistry registry;
  // One engine more than the workload uses: the mutator thread churns
  // Eng3-bound operators without ever making the workflow infeasible.
  PegasusGenerator::RegisterSyntheticEngines(&registry, 4);
  PlannerContext context(&w.library, &registry);

  std::atomic<bool> stop{false};
  std::atomic<int> planned{0};
  std::vector<std::thread> planners;
  for (int t = 0; t < 3; ++t) {
    planners.emplace_back([&] {
      DpPlanner planner(&w.library, &registry, &context);
      while (!stop.load(std::memory_order_relaxed)) {
        auto plan = planner.Plan(w.graph, {});
        ASSERT_TRUE(plan.ok()) << plan.status();
        planned.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread mutator([&] {
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(w.library
                      .AddMaterialized(MakeImpl(
                          "Churn_" + std::to_string(i), "ChurnAlgo", "Eng3",
                          "Store3"))
                      .ok());
      if (i % 8 == 7) {
        EXPECT_GT(w.library.RemoveByEngine("Eng3"), 0);
      }
      ASSERT_TRUE(registry.SetAvailable("Eng3", i % 2 == 0).ok());
      (void)context.Resolve("ChurnAlgo");
    }
    stop.store(true, std::memory_order_relaxed);
  });
  mutator.join();
  for (std::thread& t : planners) t.join();
  EXPECT_GT(planned.load(), 0);
}

// ---- Determinism of the parallel paths. ------------------------------------

void ExpectPlansIdentical(const ExecutionPlan& a, const ExecutionPlan& b) {
  EXPECT_EQ(a.ToString(), b.ToString());
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].deps, b.steps[i].deps);
    EXPECT_EQ(a.steps[i].params, b.steps[i].params);
    EXPECT_EQ(a.steps[i].estimated_seconds, b.steps[i].estimated_seconds);
    EXPECT_EQ(a.steps[i].estimated_cost, b.steps[i].estimated_cost);
  }
  EXPECT_EQ(a.estimated_seconds, b.estimated_seconds);
  EXPECT_EQ(a.estimated_cost, b.estimated_cost);
  EXPECT_EQ(a.metric, b.metric);
}

TEST(PlannerContextTest, ParetoParallelMatchesSerialBitForBit) {
  GeneratedWorkload w = MakeWorkload(32, 6);
  EngineRegistry registry;
  PegasusGenerator::RegisterSyntheticEngines(&registry, 6);
  TaskScheduler scheduler(4);

  ParetoPlanner planner(&w.library, &registry);
  ParetoPlanner::Options serial;
  ParetoPlanner::Options parallel;
  parallel.scheduler = &scheduler;

  auto serial_frontier = planner.PlanFrontier(w.graph, serial);
  auto parallel_frontier = planner.PlanFrontier(w.graph, parallel);
  ASSERT_TRUE(serial_frontier.ok()) << serial_frontier.status();
  ASSERT_TRUE(parallel_frontier.ok()) << parallel_frontier.status();

  ASSERT_EQ(serial_frontier.value().size(), parallel_frontier.value().size());
  for (size_t i = 0; i < serial_frontier.value().size(); ++i) {
    const auto& s = serial_frontier.value()[i];
    const auto& p = parallel_frontier.value()[i];
    EXPECT_EQ(s.seconds, p.seconds);
    EXPECT_EQ(s.cost, p.cost);
    ExpectPlansIdentical(s.plan, p.plan);
  }
}

TEST(PlannerContextTest, NsgaParallelMatchesSerialBitForBit) {
  TaskScheduler scheduler(4);
  const std::vector<std::pair<double, double>> bounds = {
      {1.0, 8.0}, {1.0, 4.0}, {0.5, 6.0}};
  const Nsga2::Evaluate evaluate = [](const Vector& genes) {
    // Two smooth competing objectives over the box.
    const double a = genes[0] * genes[1] + genes[2];
    const double b = (8.0 - genes[0]) + genes[2] * genes[1];
    return Vector{a, b};
  };

  Nsga2::Options serial_options;
  serial_options.population = 24;
  serial_options.generations = 20;
  Nsga2::Options parallel_options = serial_options;
  parallel_options.scheduler = &scheduler;

  const auto serial_front = Nsga2(serial_options).Optimize(bounds, evaluate);
  const auto parallel_front =
      Nsga2(parallel_options).Optimize(bounds, evaluate);
  ASSERT_EQ(serial_front.size(), parallel_front.size());
  for (size_t i = 0; i < serial_front.size(); ++i) {
    ASSERT_EQ(serial_front[i].genes.size(), parallel_front[i].genes.size());
    for (size_t g = 0; g < serial_front[i].genes.size(); ++g) {
      EXPECT_EQ(serial_front[i].genes[g], parallel_front[i].genes[g]);
    }
    for (size_t m = 0; m < serial_front[i].objectives.size(); ++m) {
      EXPECT_EQ(serial_front[i].objectives[m], parallel_front[i].objectives[m]);
    }
  }
}

// ---- Deep-chain regression: reconstruction must not recurse. ---------------

TEST(PlannerContextTest, DeepChainDoesNotOverflowTheStack) {
  constexpr int kDepth = 4000;
  GeneratedWorkload w;
  {
    MetadataTree meta;
    meta.Set("Constraints.Engine.FS", "Store0");
    meta.Set("Constraints.type", "bin");
    meta.Set("Execution.path", "sim://chain_src");
    meta.Set("Optimization.size", "1e8");
    meta.Set("Optimization.documents", "1e5");
    ASSERT_TRUE(w.library.AddDataset(Dataset("chain_src", meta)).ok());
  }
  ASSERT_TRUE(
      w.library.AddMaterialized(MakeImpl("Step_Eng0", "Step", "Eng0", "Store0"))
          .ok());
  w.graph.AddDataset("chain_src");
  std::string prev = "chain_src";
  for (int i = 0; i < kDepth; ++i) {
    const std::string op = "op" + std::to_string(i);
    const std::string out = op + "_out";
    MetadataTree meta;
    meta.Set("Constraints.OpSpecification.Algorithm.name", "Step");
    ASSERT_TRUE(w.library.AddAbstract(AbstractOperator(op, meta)).ok());
    w.graph.AddOperator(op);
    w.graph.AddDataset(out);
    ASSERT_TRUE(w.graph.Connect(prev, op).ok());
    ASSERT_TRUE(w.graph.Connect(op, out).ok());
    prev = out;
  }
  ASSERT_TRUE(w.graph.SetTarget(prev).ok());

  EngineRegistry registry;
  PegasusGenerator::RegisterSyntheticEngines(&registry, 1);

  DpPlanner planner(&w.library, &registry);
  auto plan = planner.Plan(w.graph, {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().steps.size(), static_cast<size_t>(kDepth));

  ParetoPlanner pareto(&w.library, &registry);
  auto frontier = pareto.PlanFrontier(w.graph, {});
  ASSERT_TRUE(frontier.ok()) << frontier.status();
  ASSERT_FALSE(frontier.value().empty());
  EXPECT_EQ(frontier.value()[0].plan.steps.size(),
            static_cast<size_t>(kDepth));
}

}  // namespace
}  // namespace ires
