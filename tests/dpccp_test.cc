#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "sql/dpccp.h"
#include "threading/task_scheduler.h"

namespace ires::sql {
namespace {

bool Connected(uint32_t mask, const std::vector<uint32_t>& adjacency) {
  if (mask == 0) return false;
  uint32_t reached = mask & static_cast<uint32_t>(-static_cast<int32_t>(mask));
  while (true) {
    uint32_t next = reached;
    for (uint32_t rest = reached; rest != 0; rest &= rest - 1) {
      next |= adjacency[__builtin_ctz(rest)] & mask;
    }
    if (next == reached) break;
    reached = next;
  }
  return reached == mask;
}

// Ground truth: all unordered csg-cmp pairs by brute force.
std::set<std::pair<uint32_t, uint32_t>> BruteForcePairs(
    const std::vector<uint32_t>& adjacency, int n) {
  std::set<std::pair<uint32_t, uint32_t>> pairs;
  const uint32_t full = (1u << n) - 1;
  for (uint32_t s1 = 1; s1 <= full; ++s1) {
    if (!Connected(s1, adjacency)) continue;
    for (uint32_t s2 = 1; s2 <= full; ++s2) {
      if ((s1 & s2) != 0 || !Connected(s2, adjacency)) continue;
      // An edge must link the two sets.
      bool linked = false;
      for (uint32_t rest = s1; rest != 0 && !linked; rest &= rest - 1) {
        linked = (adjacency[__builtin_ctz(rest)] & s2) != 0;
      }
      if (!linked) continue;
      const uint32_t a = std::min(s1, s2);
      const uint32_t b = std::max(s1, s2);
      pairs.emplace(a, b);
    }
  }
  return pairs;
}

std::vector<uint32_t> MakeAdjacency(
    int n, const std::vector<std::pair<int, int>>& edges) {
  std::vector<uint32_t> adjacency(n, 0);
  for (auto [a, b] : edges) {
    adjacency[a] |= 1u << b;
    adjacency[b] |= 1u << a;
  }
  return adjacency;
}

void ExpectMatchesBruteForce(const std::vector<uint32_t>& adjacency, int n) {
  std::set<std::pair<uint32_t, uint32_t>> produced;
  int emissions = 0;
  EnumerateCsgCmpPairs(adjacency, n, [&](uint32_t s1, uint32_t s2) {
    ASSERT_NE(s1, 0u);
    ASSERT_NE(s2, 0u);
    ASSERT_EQ(s1 & s2, 0u);
    ++emissions;
    produced.emplace(std::min(s1, s2), std::max(s1, s2));
  });
  const auto expected = BruteForcePairs(adjacency, n);
  EXPECT_EQ(produced, expected);
  // Exactly-once property: one emission per unordered pair.
  EXPECT_EQ(emissions, static_cast<int>(expected.size()));
}

TEST(DpccpTest, Chain) {
  ExpectMatchesBruteForce(MakeAdjacency(4, {{0, 1}, {1, 2}, {2, 3}}), 4);
}

TEST(DpccpTest, Star) {
  ExpectMatchesBruteForce(MakeAdjacency(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}),
                          5);
}

TEST(DpccpTest, Cycle) {
  ExpectMatchesBruteForce(MakeAdjacency(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                            {4, 0}}),
                          5);
}

TEST(DpccpTest, Clique) {
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) edges.emplace_back(a, b);
  }
  ExpectMatchesBruteForce(MakeAdjacency(5, edges), 5);
}

TEST(DpccpTest, TwoVertexEdge) {
  ExpectMatchesBruteForce(MakeAdjacency(2, {{0, 1}}), 2);
}

TEST(DpccpTest, ChainPairCountIsKnownClosedForm) {
  // For a chain of n vertices the number of csg-cmp pairs is
  // (n^3 - n) / 6 (Moerkotte & Neumann).
  for (int n : {2, 3, 4, 5, 6, 7}) {
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
    const auto adjacency = MakeAdjacency(n, edges);
    int count = 0;
    EnumerateCsgCmpPairs(adjacency, n,
                         [&](uint32_t, uint32_t) { ++count; });
    EXPECT_EQ(count, (n * n * n - n) / 6) << "chain n=" << n;
  }
}

TEST(DpccpTest, CliqueCsgCountIsAllSubsets) {
  // Every non-empty subset of a clique is connected: 2^n - 1.
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) edges.emplace_back(a, b);
  }
  EXPECT_EQ(CountConnectedSubgraphs(MakeAdjacency(6, edges), 6), 63);
}

// The parallel enumeration must not just produce the same *set* of pairs —
// the emitted *sequence* must be bit-identical to the serial one, because
// the optimizer's tie-breaking (and thus the chosen plan) depends on
// emission order.
TEST(DpccpTest, ParallelEmissionSequenceIsBitIdenticalToSerial) {
  TaskScheduler scheduler(4);
  Rng rng(42);
  for (int round = 0; round < 12; ++round) {
    const int n = static_cast<int>(rng.UniformInt(1, 8));
    std::vector<std::pair<int, int>> edges;
    for (int v = 1; v < n; ++v) {
      edges.emplace_back(v, static_cast<int>(rng.UniformInt(0, v - 1)));
    }
    const int extra = static_cast<int>(rng.UniformInt(0, n));
    for (int e = 0; e < extra; ++e) {
      const int a = static_cast<int>(rng.UniformInt(0, n - 1));
      const int b = static_cast<int>(rng.UniformInt(0, n - 1));
      if (a != b) edges.emplace_back(a, b);
    }
    const auto adjacency = MakeAdjacency(n, edges);

    std::vector<std::pair<uint32_t, uint32_t>> serial, parallel;
    EnumerateCsgCmpPairs(adjacency, n, [&](uint32_t s1, uint32_t s2) {
      serial.emplace_back(s1, s2);
    });
    EnumerateCsgCmpPairsParallel(adjacency, n, &scheduler,
                                 [&](uint32_t s1, uint32_t s2) {
                                   parallel.emplace_back(s1, s2);
                                 });
    EXPECT_EQ(serial, parallel) << "round " << round << " n=" << n;
  }
}

TEST(DpccpTest, ParallelWithNullPoolDegradesToSerial) {
  const auto adjacency = MakeAdjacency(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<std::pair<uint32_t, uint32_t>> serial, fallback;
  EnumerateCsgCmpPairs(adjacency, 4, [&](uint32_t s1, uint32_t s2) {
    serial.emplace_back(s1, s2);
  });
  EnumerateCsgCmpPairsParallel(adjacency, 4, nullptr,
                               [&](uint32_t s1, uint32_t s2) {
                                 fallback.emplace_back(s1, s2);
                               });
  EXPECT_EQ(serial, fallback);
}

class DpccpRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DpccpRandomTest, MatchesBruteForceOnRandomConnectedGraphs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  const int n = static_cast<int>(rng.UniformInt(2, 7));
  // Random spanning tree + extra random edges keeps the graph connected.
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < n; ++v) {
    edges.emplace_back(v, static_cast<int>(rng.UniformInt(0, v - 1)));
  }
  const int extra = static_cast<int>(rng.UniformInt(0, n));
  for (int e = 0; e < extra; ++e) {
    const int a = static_cast<int>(rng.UniformInt(0, n - 1));
    const int b = static_cast<int>(rng.UniformInt(0, n - 1));
    if (a != b) edges.emplace_back(a, b);
  }
  ExpectMatchesBruteForce(MakeAdjacency(n, edges), n);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DpccpRandomTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace ires::sql
