#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "operators/operator_library.h"

namespace ires {
namespace {

MetadataTree Tree(const std::string& description) {
  auto t = MetadataTree::ParseDescription(description);
  EXPECT_TRUE(t.ok()) << t.status();
  return t.value();
}

Dataset CrawlDocuments() {
  return Dataset("crawlDocuments", Tree("Constraints.Engine.FS=HDFS\n"
                                        "Constraints.type=sequence\n"
                                        "Execution.path=hdfs:///docs\n"
                                        "Optimization.documents=5000\n"
                                        "Optimization.size=1e8\n"));
}

AbstractOperator AbstractTfIdf() {
  return AbstractOperator("TF_IDF",
                          Tree("Constraints.Input.number=1\n"
                               "Constraints.Output.number=1\n"
                               "Constraints.OpSpecification.Algorithm.name=TF_IDF\n"));
}

MaterializedOperator MahoutTfIdf() {
  return MaterializedOperator(
      "TF_IDF_mahout",
      Tree("Constraints.Input.number=1\n"
           "Constraints.Output.number=1\n"
           "Constraints.OpSpecification.Algorithm.name=TF_IDF\n"
           "Constraints.Engine=Hadoop\n"
           "Constraints.Input0.type=sequence\n"
           "Constraints.Input0.Engine.FS=HDFS\n"
           "Constraints.Output0.type=sequence\n"
           "Constraints.Output0.Engine.FS=HDFS\n"
           "Execution.Output0.path=hdfs:///tfidf.out\n"));
}

TEST(DatasetTest, AccessorsReadMetadata) {
  Dataset d = CrawlDocuments();
  EXPECT_TRUE(d.IsMaterialized());
  EXPECT_EQ(d.store(), "HDFS");
  EXPECT_EQ(d.format(), "sequence");
  EXPECT_EQ(d.path(), "hdfs:///docs");
  EXPECT_DOUBLE_EQ(d.record_count(), 5000.0);
  EXPECT_DOUBLE_EQ(d.size_bytes(), 1e8);
}

TEST(DatasetTest, AbstractDatasetHasNoPath) {
  Dataset d("intermediate", MetadataTree());
  EXPECT_FALSE(d.IsMaterialized());
  EXPECT_EQ(d.size_bytes(), 0.0);
}

TEST(OperatorTest, AbstractAccessors) {
  AbstractOperator op = AbstractTfIdf();
  EXPECT_EQ(op.algorithm(), "TF_IDF");
  EXPECT_EQ(op.input_count(), 1);
  EXPECT_EQ(op.output_count(), 1);
}

TEST(OperatorTest, MaterializedAccessors) {
  MaterializedOperator op = MahoutTfIdf();
  EXPECT_EQ(op.engine(), "Hadoop");
  EXPECT_EQ(op.algorithm(), "TF_IDF");
  ASSERT_NE(op.InputSpec(0), nullptr);
  EXPECT_EQ(op.InputSpec(1), nullptr);
}

TEST(OperatorTest, PaperMatchingExample) {
  // Deliverable Fig. 2/3: TF_IDF_mahout matches TF_IDF, and
  // crawlDocuments can be used as its input as-is.
  EXPECT_TRUE(MatchesAbstract(AbstractTfIdf(), MahoutTfIdf()).matched);
  EXPECT_TRUE(MahoutTfIdf().AcceptsInput(0, CrawlDocuments()));
}

TEST(OperatorTest, InputRejectedOnWrongFormat) {
  Dataset text_data("textData", Tree("Constraints.Engine.FS=HDFS\n"
                                     "Constraints.type=text\n"
                                     "Execution.path=/x\n"));
  EXPECT_FALSE(MahoutTfIdf().AcceptsInput(0, text_data));
}

TEST(OperatorTest, UnconstrainedInputAcceptsAnything) {
  MaterializedOperator op(
      "AnyOp", Tree("Constraints.OpSpecification.Algorithm.name=Any\n"
                    "Constraints.Engine=Spark\n"));
  EXPECT_TRUE(op.AcceptsInput(0, CrawlDocuments()));
}

TEST(OperatorTest, MakeOutputMetaCopiesSpec) {
  MetadataTree out = MahoutTfIdf().MakeOutputMeta(0);
  EXPECT_EQ(out.Get("Constraints.Engine.FS"), "HDFS");
  EXPECT_EQ(out.Get("Constraints.type"), "sequence");
  EXPECT_EQ(out.Get("Execution.path"), "hdfs:///tfidf.out");
}

TEST(OperatorTest, ArityMismatchFailsMatch) {
  AbstractOperator two_inputs(
      "TwoIn", Tree("Constraints.Input.number=2\n"
                    "Constraints.OpSpecification.Algorithm.name=TF_IDF\n"));
  EXPECT_FALSE(MatchesAbstract(two_inputs, MahoutTfIdf()).matched);
}

// ------------------------------------------------------------ the library
TEST(OperatorLibraryTest, AddAndFind) {
  OperatorLibrary lib;
  ASSERT_TRUE(lib.AddMaterialized(MahoutTfIdf()).ok());
  ASSERT_TRUE(lib.AddAbstract(AbstractTfIdf()).ok());
  ASSERT_TRUE(lib.AddDataset(CrawlDocuments()).ok());
  EXPECT_NE(lib.FindMaterializedByName("TF_IDF_mahout"), nullptr);
  EXPECT_NE(lib.FindAbstractByName("TF_IDF"), nullptr);
  EXPECT_NE(lib.FindDatasetByName("crawlDocuments"), nullptr);
  EXPECT_EQ(lib.FindMaterializedByName("nope"), nullptr);
}

TEST(OperatorLibraryTest, DuplicateNamesRejected) {
  OperatorLibrary lib;
  ASSERT_TRUE(lib.AddMaterialized(MahoutTfIdf()).ok());
  EXPECT_EQ(lib.AddMaterialized(MahoutTfIdf()).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(lib.AddDataset(CrawlDocuments()).ok());
  EXPECT_EQ(lib.AddDataset(CrawlDocuments()).code(),
            StatusCode::kAlreadyExists);
}

TEST(OperatorLibraryTest, EmptyNamesRejected) {
  OperatorLibrary lib;
  EXPECT_EQ(lib.AddMaterialized(MaterializedOperator()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(lib.AddDataset(Dataset()).code(), StatusCode::kInvalidArgument);
}

TEST(OperatorLibraryTest, FindMaterializedUsesAlgorithmIndex) {
  OperatorLibrary lib;
  ASSERT_TRUE(lib.AddMaterialized(MahoutTfIdf()).ok());
  MaterializedOperator spark_tfidf(
      "TF_IDF_spark", Tree("Constraints.Input.number=1\n"
                           "Constraints.Output.number=1\n"
                           "Constraints.OpSpecification.Algorithm.name=TF_IDF\n"
                           "Constraints.Engine=Spark\n"));
  ASSERT_TRUE(lib.AddMaterialized(spark_tfidf).ok());
  MaterializedOperator wordcount(
      "WC_spark", Tree("Constraints.Input.number=1\n"
                       "Constraints.Output.number=1\n"
                       "Constraints.OpSpecification.Algorithm.name=Wordcount\n"
                       "Constraints.Engine=Spark\n"));
  ASSERT_TRUE(lib.AddMaterialized(wordcount).ok());

  auto matches = lib.FindMaterializedOperators(AbstractTfIdf());
  EXPECT_EQ(matches.size(), 2u);
  for (const MaterializedOperator* mo : matches) {
    EXPECT_EQ(mo->algorithm(), "TF_IDF");
  }
}

TEST(OperatorLibraryTest, WildcardAlgorithmScansAll) {
  OperatorLibrary lib;
  ASSERT_TRUE(lib.AddMaterialized(MahoutTfIdf()).ok());
  AbstractOperator any("any", Tree("Constraints.Input.number=1\n"));
  EXPECT_EQ(lib.FindMaterializedOperators(any).size(), 1u);
}

TEST(OperatorLibraryTest, EngineConstraintInAbstractFilters) {
  OperatorLibrary lib;
  ASSERT_TRUE(lib.AddMaterialized(MahoutTfIdf()).ok());
  AbstractOperator hadoop_only(
      "TF_IDF_hadoop",
      Tree("Constraints.OpSpecification.Algorithm.name=TF_IDF\n"
           "Constraints.Engine=Hadoop\n"));
  EXPECT_EQ(lib.FindMaterializedOperators(hadoop_only).size(), 1u);
  AbstractOperator spark_only(
      "TF_IDF_spark",
      Tree("Constraints.OpSpecification.Algorithm.name=TF_IDF\n"
           "Constraints.Engine=Spark\n"));
  EXPECT_TRUE(lib.FindMaterializedOperators(spark_only).empty());
}

TEST(OperatorLibraryTest, RemoveByEngine) {
  OperatorLibrary lib;
  ASSERT_TRUE(lib.AddMaterialized(MahoutTfIdf()).ok());
  EXPECT_EQ(lib.RemoveByEngine("Hadoop"), 1);
  EXPECT_EQ(lib.materialized_count(), 0u);
  EXPECT_TRUE(lib.FindMaterializedOperators(AbstractTfIdf()).empty());
}

TEST(OperatorLibraryTest, LoadFromDirectoryMirrorsAsapLayout) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "ires_lib_test";
  fs::remove_all(root);
  fs::create_directories(root / "operators" / "LineCount");
  fs::create_directories(root / "abstractOperators");
  fs::create_directories(root / "datasets");
  {
    std::ofstream f(root / "operators" / "LineCount" / "description");
    f << "Constraints.Engine=Spark\n"
         "Constraints.OpSpecification.Algorithm.name=LineCount\n"
         "Constraints.Input.number=1\n"
         "Constraints.Output.number=1\n";
  }
  {
    std::ofstream f(root / "abstractOperators" / "LineCount");
    f << "Constraints.OpSpecification.Algorithm.name=LineCount\n"
         "Constraints.Input.number=1\n"
         "Constraints.Output.number=1\n";
  }
  {
    std::ofstream f(root / "datasets" / "asapServerLog");
    f << "Optimization.documents=1\n"
         "Execution.path=hdfs\\:///user/root/asap-server.log\n"
         "Constraints.Engine.FS=HDFS\n";
  }

  OperatorLibrary lib;
  ASSERT_TRUE(lib.LoadFromDirectory(root.string()).ok());
  EXPECT_EQ(lib.materialized_count(), 1u);
  EXPECT_EQ(lib.abstract_count(), 1u);
  EXPECT_EQ(lib.dataset_count(), 1u);
  const Dataset* log = lib.FindDatasetByName("asapServerLog");
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->path(), "hdfs:///user/root/asap-server.log");
  fs::remove_all(root);
}

TEST(OperatorLibraryTest, SaveLoadRoundTrip) {
  namespace fs = std::filesystem;
  OperatorLibrary lib;
  ASSERT_TRUE(lib.AddMaterialized(MahoutTfIdf()).ok());
  ASSERT_TRUE(lib.AddAbstract(AbstractTfIdf()).ok());
  ASSERT_TRUE(lib.AddDataset(CrawlDocuments()).ok());

  const fs::path root = fs::temp_directory_path() / "ires_lib_roundtrip";
  fs::remove_all(root);
  ASSERT_TRUE(lib.SaveToDirectory(root.string()).ok());

  OperatorLibrary reloaded;
  ASSERT_TRUE(reloaded.LoadFromDirectory(root.string()).ok());
  EXPECT_EQ(reloaded.materialized_count(), 1u);
  EXPECT_EQ(reloaded.abstract_count(), 1u);
  EXPECT_EQ(reloaded.dataset_count(), 1u);
  const MaterializedOperator* op =
      reloaded.FindMaterializedByName("TF_IDF_mahout");
  ASSERT_NE(op, nullptr);
  EXPECT_TRUE(op->meta() == MahoutTfIdf().meta());
  const Dataset* data = reloaded.FindDatasetByName("crawlDocuments");
  ASSERT_NE(data, nullptr);
  EXPECT_TRUE(data->meta() == CrawlDocuments().meta());
  fs::remove_all(root);
}

TEST(OperatorLibraryTest, LoadFromMissingDirectoryFails) {
  OperatorLibrary lib;
  EXPECT_EQ(lib.LoadFromDirectory("/no/such/dir").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ires
