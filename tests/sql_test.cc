#include <gtest/gtest.h>

#include <algorithm>

#include "sql/musqle_optimizer.h"

namespace ires::sql {
namespace {

// ------------------------------------------------------------------ parser
TEST(SqlParserTest, ParsesSelectStar) {
  auto q = SqlParser::Parse("SELECT * FROM lineitem");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q.value().select.empty());
  EXPECT_EQ(q.value().tables, (std::vector<std::string>{"lineitem"}));
}

TEST(SqlParserTest, ParsesPaperExampleQuery) {
  // Query Qe from the MuSQLE paper (§V).
  auto q = SqlParser::Parse(
      "SELECT c_name, o_orderdate "
      "FROM part, partsupp, lineitem, orders, customer, nation WHERE "
      "p_partkey = ps_partkey AND "
      "c_nationkey = n_nationkey AND "
      "l_partkey = p_partkey AND "
      "o_custkey = c_custkey AND "
      "o_orderkey = l_orderkey AND "
      "p_retailprice > 2090 AND "
      "n_name = 'GERMANY'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q.value().tables.size(), 6u);
  EXPECT_EQ(q.value().joins.size(), 5u);
  EXPECT_EQ(q.value().filters.size(), 2u);
  EXPECT_EQ(q.value().select.size(), 2u);
  EXPECT_TRUE(q.value().filters[0].is_numeric);
  EXPECT_DOUBLE_EQ(q.value().filters[0].numeric_value, 2090);
  EXPECT_FALSE(q.value().filters[1].is_numeric);
}

TEST(SqlParserTest, QualifiedColumnRefs) {
  auto q = SqlParser::Parse(
      "SELECT a.x FROM a, b WHERE a.x = b.y AND a.z >= 5;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q.value().joins[0].left.table, "a");
  EXPECT_EQ(q.value().joins[0].right.column, "y");
  EXPECT_EQ(q.value().filters[0].op, CompareOp::kGe);
}

TEST(SqlParserTest, AllComparisonOperators) {
  for (const char* op : {"=", "<>", "!=", "<", "<=", ">", ">="}) {
    auto q = SqlParser::Parse(std::string("SELECT * FROM t WHERE t.c ") + op +
                              " 3");
    EXPECT_TRUE(q.ok()) << op << ": " << q.status();
  }
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(SqlParser::Parse("select * from t where t.a = 1").ok());
  EXPECT_TRUE(SqlParser::Parse("SeLeCt * FrOm t").ok());
}

TEST(SqlParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(SqlParser::Parse("FROM t").ok());
  EXPECT_FALSE(SqlParser::Parse("SELECT * WHERE x = 1").ok());
  EXPECT_FALSE(SqlParser::Parse("SELECT * FROM").ok());
  EXPECT_FALSE(SqlParser::Parse("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(SqlParser::Parse("SELECT * FROM t WHERE a = ").ok());
  EXPECT_FALSE(SqlParser::Parse("SELECT * FROM t WHERE a = 'unterminated").ok());
  EXPECT_FALSE(SqlParser::Parse("SELECT * FROM t extra garbage").ok());
}

TEST(SqlParserTest, ToStringRoundTripsStructure) {
  auto q = SqlParser::Parse(
      "SELECT a.x FROM a, b WHERE a.x = b.y AND a.z > 1");
  ASSERT_TRUE(q.ok());
  auto q2 = SqlParser::Parse(q.value().ToString());
  ASSERT_TRUE(q2.ok()) << q.value().ToString();
  EXPECT_EQ(q2.value().tables, q.value().tables);
  EXPECT_EQ(q2.value().joins.size(), q.value().joins.size());
  EXPECT_EQ(q2.value().filters.size(), q.value().filters.size());
}

// ----------------------------------------------------------------- catalog
TEST(CatalogTest, TpchCardinalitiesScale) {
  Catalog c = MakeTpchCatalog(10.0, "PostgreSQL", "MemSQL", "SparkSQL");
  const TableDef* lineitem = c.FindTable("lineitem");
  ASSERT_NE(lineitem, nullptr);
  EXPECT_DOUBLE_EQ(lineitem->rows, 60e6);
  EXPECT_EQ(lineitem->engine, "SparkSQL");
  EXPECT_EQ(c.FindTable("nation")->engine, "PostgreSQL");
  EXPECT_EQ(c.FindTable("partsupp")->engine, "MemSQL");
  EXPECT_NE(lineitem->FindColumn("l_orderkey"), nullptr);
  EXPECT_EQ(lineitem->FindColumn("nope"), nullptr);
}

TEST(CatalogTest, DuplicateAndMissingTables) {
  Catalog c;
  ASSERT_TRUE(c.AddTable({"t", "E", 10, 100, {}}).ok());
  EXPECT_EQ(c.AddTable({"t", "E", 10, 100, {}}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(c.FindTable("x"), nullptr);
  EXPECT_TRUE(c.SetTableEngine("t", "F").ok());
  EXPECT_EQ(c.FindTable("t")->engine, "F");
  EXPECT_FALSE(c.SetTableEngine("x", "F").ok());
}

// ----------------------------------------------------------------- engines
TEST(SqlEngineTest, SparkJoinPrefersBroadcastForSmallSide) {
  SparkSqlEngine spark;
  RelationStats small{1e4, 100};
  RelationStats large{50e6, 100};
  RelationStats out{50e6, 200};
  EXPECT_LT(spark.BroadcastHashJoinCost(small, large, out),
            spark.SortMergeJoinCost(small, large, out));
}

TEST(SqlEngineTest, SparkExchangeGrowsWithRows) {
  SparkSqlEngine spark;
  EXPECT_LT(spark.ExchangeCost({1e5, 100}), spark.ExchangeCost({1e7, 100}));
}

TEST(SqlEngineTest, MemSqlFeasibilityBound) {
  MemSqlSqlEngine memsql(1.0);  // 1 GB budget
  EXPECT_TRUE(memsql.Feasible(0.5e9));
  EXPECT_FALSE(memsql.Feasible(2e9));
  PostgresSqlEngine pg;
  EXPECT_TRUE(pg.Feasible(1e15));  // disk-backed
}

TEST(SqlEngineTest, PostgresDiskBoundOnLargeScans) {
  PostgresSqlEngine pg;
  MemSqlSqlEngine memsql;
  RelationStats big{50e6, 112};
  EXPECT_GT(pg.ScanSeconds(big, 1.0), memsql.ScanSeconds(big, 1.0));
}

TEST(SqlEngineTest, TruthFactorCentersNearBias) {
  PostgresSqlEngine pg;
  Rng rng(31);
  double sum = 0.0;
  for (int i = 0; i < 500; ++i) sum += pg.TruthFactor(&rng);
  EXPECT_NEAR(sum / 500.0, 1.25, 0.08);
}

// --------------------------------------------------------------- optimizer
class MusqleTest : public ::testing::Test {
 protected:
  MusqleTest()
      : catalog_(MakeTpchCatalog(5.0, "PostgreSQL", "MemSQL", "SparkSQL")),
        engines_(MakeStandardSqlEngines()),
        optimizer_(&catalog_, &engines_) {}

  Query Parse(const std::string& text) {
    auto q = SqlParser::Parse(text);
    EXPECT_TRUE(q.ok()) << q.status();
    return q.value();
  }

  Catalog catalog_;
  std::map<std::string, std::unique_ptr<SqlEngine>> engines_;
  MusqleOptimizer optimizer_;
};

TEST_F(MusqleTest, SingleTableScanRunsAtHomeEngine) {
  auto plan = optimizer_.Optimize(Parse("SELECT * FROM nation"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().nodes.size(), 1u);
  EXPECT_EQ(plan.value().result_engine, "PostgreSQL");
}

TEST_F(MusqleTest, TwoTableJoinSameEngineStaysLocal) {
  auto plan = optimizer_.Optimize(Parse(
      "SELECT * FROM nation, region WHERE n_regionkey = r_regionkey"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().result_engine, "PostgreSQL");
  EXPECT_EQ(plan.value().CountKind(SqlPlanNode::Kind::kMove), 0);
}

TEST_F(MusqleTest, CrossEngineJoinInsertsMove) {
  auto plan = optimizer_.Optimize(Parse(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_GE(plan.value().CountKind(SqlPlanNode::Kind::kMove), 1);
}

TEST_F(MusqleTest, BigJoinsLandOnSpark) {
  // lineitem x orders is huge: shipping it into PostgreSQL or MemSQL would
  // be far worse than executing on the engine that holds it.
  auto plan = optimizer_.Optimize(Parse(
      "SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().result_engine, "SparkSQL");
}

TEST_F(MusqleTest, PaperExampleQueryProducesMultiEnginePlan) {
  auto plan = optimizer_.Optimize(Parse(
      "SELECT c_name, o_orderdate "
      "FROM part, partsupp, lineitem, orders, customer, nation WHERE "
      "p_partkey = ps_partkey AND c_nationkey = n_nationkey AND "
      "l_partkey = p_partkey AND o_custkey = c_custkey AND "
      "o_orderkey = l_orderkey AND p_retailprice > 2090 AND "
      "n_name = 'GERMANY'"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  // 6 scans, 5 joins, and at least one shipped intermediate.
  EXPECT_EQ(plan.value().CountKind(SqlPlanNode::Kind::kScan), 6);
  EXPECT_EQ(plan.value().CountKind(SqlPlanNode::Kind::kJoin), 5);
  EXPECT_GE(plan.value().CountKind(SqlPlanNode::Kind::kMove), 1);
  // More than one engine participates.
  std::set<std::string> engines;
  for (const SqlPlanNode& node : plan.value().nodes) {
    if (node.kind != SqlPlanNode::Kind::kMove) engines.insert(node.engine);
  }
  EXPECT_GE(engines.size(), 2u);
}

TEST_F(MusqleTest, OptimizerStatsAccountApiCalls) {
  OptimizerStats stats;
  auto plan = optimizer_.Optimize(
      Parse("SELECT * FROM customer, orders, lineitem WHERE "
            "c_custkey = o_custkey AND o_orderkey = l_orderkey"),
      &stats);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(stats.explain_calls, 3);  // 3 scans + join candidates
  EXPECT_GT(stats.inject_calls, 0);
  EXPECT_GT(stats.modeled_explain_seconds, 0.0);
  EXPECT_GT(stats.enumeration_wall_seconds, 0.0);
}

TEST_F(MusqleTest, CardinalityModelUsesFiltersAndKeys) {
  const Query q = Parse(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey");
  // Full join: |orders| rows (every order has one customer).
  auto both = optimizer_.EstimateSubset(q, 0b11);
  ASSERT_TRUE(both.ok());
  const TableDef* orders = catalog_.FindTable("orders");
  EXPECT_NEAR(both.value().rows, orders->rows, orders->rows * 0.01);

  const Query filtered = Parse(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND "
      "c_name = 'x'");
  auto few = optimizer_.EstimateSubset(filtered, 0b11);
  ASSERT_TRUE(few.ok());
  EXPECT_LT(few.value().rows, 100.0);  // one customer's orders
}

TEST_F(MusqleTest, ThetaJoinPredicatesReduceCardinality) {
  // `o_totalprice > c_acctbal` is a theta join: no graph edge, but any
  // subset containing both tables shrinks by the range selectivity (1/3).
  const Query plain = Parse(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey");
  const Query theta = Parse(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND "
      "o_totalprice > c_acctbal");
  auto plain_stats = optimizer_.EstimateSubset(plain, 0b11);
  auto theta_stats = optimizer_.EstimateSubset(theta, 0b11);
  ASSERT_TRUE(plain_stats.ok());
  ASSERT_TRUE(theta_stats.ok());
  EXPECT_NEAR(theta_stats.value().rows, plain_stats.value().rows / 3.0,
              plain_stats.value().rows * 0.01);
  // The theta predicate alone must not make the graph "connected".
  EXPECT_FALSE(
      optimizer_
          .Optimize(Parse("SELECT * FROM customer, orders WHERE "
                          "o_totalprice > c_acctbal"))
          .ok());
}

TEST_F(MusqleTest, DisconnectedJoinGraphRejected) {
  EXPECT_FALSE(optimizer_.Optimize(Parse("SELECT * FROM nation, part")).ok());
}

TEST_F(MusqleTest, UnknownTableOrColumnRejected) {
  EXPECT_FALSE(optimizer_.Optimize(Parse("SELECT * FROM nosuch")).ok());
  EXPECT_FALSE(
      optimizer_
          .Optimize(Parse("SELECT * FROM nation WHERE nation.bogus = 1"))
          .ok());
}

TEST_F(MusqleTest, SingleEngineBaselineChargesShipping) {
  const Query q = Parse(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey");
  auto multi = optimizer_.Optimize(q);
  auto spark_only = optimizer_.PlanSingleEngine(q, "SparkSQL");
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE(spark_only.ok());
  EXPECT_LE(multi.value().total_seconds,
            spark_only.value().total_seconds + 1e-9);
}

TEST_F(MusqleTest, MemSqlBaselineOomsOnLargeWorkingSets) {
  Catalog big = MakeTpchCatalog(20.0, "PostgreSQL", "MemSQL", "SparkSQL");
  MusqleOptimizer optimizer(&big, &engines_);
  auto plan = optimizer.PlanSingleEngine(
      Parse("SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey"),
      "MemSQL");
  EXPECT_EQ(plan.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(MusqleTest, LeftDeepIsValidButNeverBeatsBushy) {
  MusqleOptimizer::Options ld_options;
  ld_options.enumeration = MusqleOptimizer::Enumeration::kLeftDeep;
  MusqleOptimizer left_deep(&catalog_, &engines_, ld_options);
  for (const char* sql :
       {"SELECT * FROM nation, region WHERE n_regionkey = r_regionkey",
        "SELECT * FROM customer, orders, lineitem WHERE "
        "c_custkey = o_custkey AND o_orderkey = l_orderkey",
        "SELECT c_name, o_orderdate FROM part, partsupp, lineitem, orders, "
        "customer, nation WHERE p_partkey = ps_partkey AND "
        "c_nationkey = n_nationkey AND l_partkey = p_partkey AND "
        "o_custkey = c_custkey AND o_orderkey = l_orderkey AND "
        "p_retailprice > 2090 AND n_name = 'GERMANY'"}) {
    const Query q = Parse(sql);
    auto bushy = optimizer_.Optimize(q);
    auto ld = left_deep.Optimize(q);
    ASSERT_TRUE(bushy.ok()) << sql;
    ASSERT_TRUE(ld.ok()) << sql;
    EXPECT_LE(bushy.value().total_seconds,
              ld.value().total_seconds * (1 + 1e-9))
        << sql;
    // Left-deep structure: every join has at least one scan/move child.
    for (const SqlPlanNode& node : ld.value().nodes) {
      if (node.kind != SqlPlanNode::Kind::kJoin) continue;
      bool has_base_side = false;
      for (int child : ld.value().nodes[node.id].children) {
        const SqlPlanNode* c = &ld.value().nodes[child];
        if (c->kind == SqlPlanNode::Kind::kMove && !c->children.empty()) {
          c = &ld.value().nodes[c->children[0]];
        }
        has_base_side |= c->kind == SqlPlanNode::Kind::kScan;
      }
      EXPECT_TRUE(has_base_side) << sql;
    }
  }
}

TEST_F(MusqleTest, SimulatedMakespanOverlapsIndependentSubtrees) {
  // part x partsupp and customer x nation can run concurrently; the
  // makespan must be below the engine-busy total but at least the sum of
  // the critical path's nodes.
  auto plan = optimizer_.Optimize(Parse(
      "SELECT * FROM part, partsupp, customer, nation WHERE "
      "p_partkey = ps_partkey AND c_nationkey = n_nationkey AND "
      "p_partkey = c_custkey"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  Rng rng(88);
  const SqlExecutionOutcome outcome =
      SimulateSqlPlan(plan.value(), engines_, &rng);
  EXPECT_LT(outcome.makespan_seconds, outcome.busy_seconds);
  double max_node = 0.0;
  for (const SqlPlanNode& node : plan.value().nodes) {
    max_node = std::max(max_node, node.seconds);
  }
  EXPECT_GE(outcome.makespan_seconds, max_node * 0.5);
}

TEST_F(MusqleTest, GroundTruthExecutionIsNoisyButProportional) {
  auto plan = optimizer_.Optimize(Parse(
      "SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey"));
  ASSERT_TRUE(plan.ok());
  Rng rng(33);
  double total = 0.0;
  for (int i = 0; i < 50; ++i) {
    total += ExecutePlanGroundTruth(plan.value(), engines_, &rng);
  }
  const double mean = total / 50;
  // Ground truth includes each engine's systematic bias (>1).
  EXPECT_GT(mean, plan.value().total_seconds);
  EXPECT_LT(mean, plan.value().total_seconds * 1.6);
}

TEST_F(MusqleTest, DpccpAndSubmaskEnumerationsAgree) {
  // Both enumeration strategies must find plans of identical cost for every
  // query in the evaluation set shape.
  MusqleOptimizer::Options submask_options;
  submask_options.enumeration = MusqleOptimizer::Enumeration::kSubmask;
  MusqleOptimizer submask(&catalog_, &engines_, submask_options);
  MusqleOptimizer::Options dpccp_options;
  dpccp_options.enumeration = MusqleOptimizer::Enumeration::kDpccp;
  MusqleOptimizer dpccp(&catalog_, &engines_, dpccp_options);
  for (const char* sql :
       {"SELECT * FROM nation, region WHERE n_regionkey = r_regionkey",
        "SELECT * FROM customer, orders, lineitem WHERE "
        "c_custkey = o_custkey AND o_orderkey = l_orderkey",
        "SELECT c_name, o_orderdate FROM part, partsupp, lineitem, orders, "
        "customer, nation WHERE p_partkey = ps_partkey AND "
        "c_nationkey = n_nationkey AND l_partkey = p_partkey AND "
        "o_custkey = c_custkey AND o_orderkey = l_orderkey AND "
        "p_retailprice > 2090 AND n_name = 'GERMANY'"}) {
    const Query q = Parse(sql);
    auto a = submask.Optimize(q);
    auto b = dpccp.Optimize(q);
    ASSERT_TRUE(a.ok()) << sql;
    ASSERT_TRUE(b.ok()) << sql;
    EXPECT_NEAR(a.value().total_seconds, b.value().total_seconds,
                a.value().total_seconds * 1e-9)
        << sql;
  }
}

TEST_F(MusqleTest, PlanToStringMentionsAllNodeKinds) {
  auto plan = optimizer_.Optimize(Parse(
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey"));
  ASSERT_TRUE(plan.ok());
  const std::string text = plan.value().ToString();
  EXPECT_NE(text.find("scan"), std::string::npos);
  EXPECT_NE(text.find("join"), std::string::npos);
  EXPECT_NE(text.find("total est="), std::string::npos);
}

}  // namespace
}  // namespace ires::sql
