#include <gtest/gtest.h>

#include <cmath>

#include "engines/standard_engines.h"
#include "modeling/model_selection.h"
#include "profiling/adaptive_profiler.h"
#include "profiling/profiler.h"

namespace ires {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest() : registry_(MakeStandardEngineRegistry()) {}
  std::unique_ptr<EngineRegistry> registry_;
};

TEST_F(ProfilerTest, FeatureVectorLayout) {
  OperatorRunRequest r;
  r.input_bytes = 2e9;
  r.resources = {4, 2, 3.0};
  r.params["iterations"] = 10;
  r.params["clusters"] = 5;
  const Vector f = Profiler::FeatureVector(r);
  // [gb, containers, cores, mem, total_cores, gb/total_cores, params...]
  ASSERT_EQ(f.size(), 8u);
  EXPECT_DOUBLE_EQ(f[0], 2.0);
  EXPECT_DOUBLE_EQ(f[1], 4.0);
  EXPECT_DOUBLE_EQ(f[2], 2.0);
  EXPECT_DOUBLE_EQ(f[3], 3.0);
  EXPECT_DOUBLE_EQ(f[4], 8.0);
  EXPECT_DOUBLE_EQ(f[5], 0.25);
  // Params in sorted-name order: clusters before iterations.
  EXPECT_DOUBLE_EQ(f[6], 5.0);
  EXPECT_DOUBLE_EQ(f[7], 10.0);
}

TEST_F(ProfilerTest, RunOnceRecordsMetricsAndTimeline) {
  Profiler profiler(registry_->Find("MapReduce"), 11);
  OperatorRunRequest r;
  r.algorithm = "Wordcount";
  r.input_bytes = 4e9;
  r.input_records = 1e6;
  r.resources = {4, 2, 2.0};
  auto record = profiler.RunOnce(r);
  ASSERT_TRUE(record.ok()) << record.status();
  const ProfileRecord& p = record.value();
  EXPECT_GT(p.exec_seconds, 0.0);
  EXPECT_GT(p.metrics.at("execTime"), 0.0);
  EXPECT_DOUBLE_EQ(p.metrics.at("inputBytes"), 4e9);
  EXPECT_DOUBLE_EQ(p.metrics.at("totalCores"), 8);
  EXPECT_GE(p.timeline.size(), 3u);
  for (const auto& sample : p.timeline) {
    EXPECT_GE(sample[0], 0.0);   // CPU %
    EXPECT_LE(sample[0], 100.0);
    EXPECT_GE(sample[3], 0.0);   // IOPS
  }
}

TEST_F(ProfilerTest, RunOnceRejectsInfeasibleConfigs) {
  Profiler profiler(registry_->Find("Java"), 12);
  OperatorRunRequest r;
  r.algorithm = "Pagerank";
  r.input_bytes = 10e9;  // far beyond the 3 GB heap
  r.resources = {1, 1, 3.0};
  EXPECT_EQ(profiler.RunOnce(r).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(ProfilerTest, SweepCoversTheGridAndSkipsInfeasible) {
  Profiler profiler(registry_->Find("Spark"), 13);
  Profiler::Sweep sweep;
  sweep.input_bytes = {1e9, 2e9};
  sweep.resources = {{2, 2, 2.0}, {4, 2, 2.0}};
  sweep.params["iterations"] = {1, 5, 10};
  auto records = profiler.RunSweep("Pagerank", sweep);
  EXPECT_EQ(records.size(), 2u * 2u * 3u);
}

TEST_F(ProfilerTest, TrainProducesUsableEstimator) {
  Profiler profiler(registry_->Find("MapReduce"), 14);
  Profiler::Sweep sweep;
  for (int i = 1; i <= 10; ++i) sweep.input_bytes.push_back(i * 0.8e9);
  sweep.resources = {{2, 2, 2.0}, {4, 2, 2.0}, {8, 2, 2.0}};
  auto records = profiler.RunSweep("Wordcount", sweep);
  OnlineEstimator estimator;
  Profiler::Train(records, &estimator);
  ASSERT_TRUE(estimator.has_model());
  // The trained model predicts an unseen configuration within ~20%.
  OperatorRunRequest probe;
  probe.algorithm = "Wordcount";
  probe.input_bytes = 5.1e9;
  probe.resources = {4, 2, 2.0};
  const double truth = registry_->Find("MapReduce")
                           ->Estimate(probe)
                           .value()
                           .exec_seconds;
  EXPECT_NEAR(estimator.Predict(Profiler::FeatureVector(probe)), truth,
              truth * 0.2);
}

// --------------------------------------------------------------- adaptive
TEST_F(ProfilerTest, AdaptiveProfilerStaysWithinBudget) {
  AdaptiveProfiler::Options options;
  options.total_budget = 25;
  options.initial_samples = 6;
  AdaptiveProfiler adaptive(registry_->Find("Spark"), options);
  auto records = adaptive.Profile("Pagerank", AdaptiveProfiler::Domain{});
  EXPECT_LE(records.size(), 25u);
  EXPECT_GE(records.size(), 10u);
}

TEST_F(ProfilerTest, AdaptiveBeatsUniformOnCliffySurface) {
  // Hama's Pagerank has a hard memory cliff; with a small budget the
  // adaptive sampler should model the surface at least as well as the
  // uniform one (measured on a dense feasible test grid).
  AdaptiveProfiler::Options options;
  options.total_budget = 32;
  options.initial_samples = 8;
  options.seed = 99;
  AdaptiveProfiler adaptive(registry_->Find("Spark"), options);
  AdaptiveProfiler::Domain domain;
  domain.max_input_bytes = 40e9;  // deep into Spark's spill region

  auto fit = [&](const std::vector<ProfileRecord>& records) {
    Matrix x;
    Vector y;
    for (const ProfileRecord& r : records) {
      x.AppendRow(r.features);
      y.push_back(r.exec_seconds);
    }
    CrossValidationSelector selector(3);
    return selector.SelectAndFit(x, y);
  };
  auto adaptive_model = fit(adaptive.Profile("Pagerank", domain));
  auto uniform_model = fit(adaptive.ProfileUniform("Pagerank", domain));
  ASSERT_TRUE(adaptive_model.ok());
  ASSERT_TRUE(uniform_model.ok());

  // Dense test grid (noise-free analytic truth).
  const SimulatedEngine* spark = registry_->Find("Spark");
  double adaptive_err = 0.0, uniform_err = 0.0;
  int n = 0;
  Rng rng(101);
  for (int i = 0; i < 200; ++i) {
    OperatorRunRequest probe;
    probe.algorithm = "Pagerank";
    probe.input_bytes = rng.Uniform(0.2e9, 40e9);
    probe.resources = {static_cast<int>(rng.UniformInt(1, 8)),
                       static_cast<int>(rng.UniformInt(1, 4)),
                       rng.Uniform(1.0, 6.0)};
    auto truth = spark->Estimate(probe);
    if (!truth.ok()) continue;
    const Vector f = Profiler::FeatureVector(probe);
    const double t = truth.value().exec_seconds;
    adaptive_err += std::fabs(adaptive_model.value()->Predict(f) - t) / t;
    uniform_err += std::fabs(uniform_model.value()->Predict(f) - t) / t;
    ++n;
  }
  ASSERT_GT(n, 100);
  // Allow slack: adaptive must not be meaningfully worse, and both sane.
  EXPECT_LT(adaptive_err / n, uniform_err / n * 1.25);
  EXPECT_LT(adaptive_err / n, 0.5);
}

}  // namespace
}  // namespace ires
