// Cross-cutting property tests: determinism of the whole pipeline,
// monotonicity of every engine's performance model, and algebraic
// properties of the metadata matcher on random trees.

#include <gtest/gtest.h>

#include "core/ires_server.h"
#include "engines/standard_engines.h"
#include "workloadgen/asap_workflows.h"

namespace ires {
namespace {

// ------------------------------------------------------------ determinism
TEST(DeterminismTest, IdenticalServersProduceIdenticalRuns) {
  auto run_once = [] {
    IresServer server;
    const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
    EXPECT_TRUE(server.ImportLibrary(w.library).ok());
    auto outcome = server.ExecuteWorkflow(w.graph);
    EXPECT_TRUE(outcome.ok());
    return outcome.value().total_execution_seconds;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentGroundTruth) {
  auto run_with_seed = [](uint64_t seed) {
    IresServer::Config config;
    config.seed = seed;
    IresServer server(config);
    const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
    EXPECT_TRUE(server.ImportLibrary(w.library).ok());
    auto outcome = server.ExecuteWorkflow(w.graph);
    EXPECT_TRUE(outcome.ok());
    return outcome.value().total_execution_seconds;
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

// ----------------------------------------------- engine model monotonicity
struct EngineCase {
  const char* engine;
  const char* algorithm;
  double max_gb;  // keep inside the engine's feasibility envelope
};

class EngineMonotonicityTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineMonotonicityTest, RuntimeNonDecreasingInInputSize) {
  auto registry = MakeStandardEngineRegistry();
  const SimulatedEngine* engine = registry->Find(GetParam().engine);
  ASSERT_NE(engine, nullptr);
  double previous = 0.0;
  for (int i = 1; i <= 10; ++i) {
    OperatorRunRequest r;
    r.algorithm = GetParam().algorithm;
    r.input_bytes = GetParam().max_gb * 1e9 * i / 10.0;
    r.resources = engine->default_resources();
    auto est = engine->Estimate(r);
    ASSERT_TRUE(est.ok()) << GetParam().engine << " @" << r.input_bytes;
    EXPECT_GE(est.value().exec_seconds, previous);
    EXPECT_GT(est.value().exec_seconds, 0.0);
    EXPECT_GE(est.value().output_bytes, 0.0);
    previous = est.value().exec_seconds;
  }
}

TEST_P(EngineMonotonicityTest, CostConsistentWithDuration) {
  auto registry = MakeStandardEngineRegistry();
  const SimulatedEngine* engine = registry->Find(GetParam().engine);
  OperatorRunRequest r;
  r.algorithm = GetParam().algorithm;
  r.input_bytes = GetParam().max_gb * 1e9 / 2;
  r.resources = engine->default_resources();
  auto est = engine->Estimate(r);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().cost,
              r.resources.CostForDuration(est.value().exec_seconds),
              est.value().cost * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineMonotonicityTest,
    ::testing::Values(EngineCase{"Java", "Pagerank", 0.5},
                      EngineCase{"Java", "Wordcount", 1.4},
                      EngineCase{"Python", "HelloWorld", 0.9},
                      EngineCase{"scikit", "TF_IDF", 2.0},
                      EngineCase{"scikit", "kmeans", 1.8},
                      EngineCase{"Cilk", "TF_IDF", 2.8},
                      EngineCase{"Spark", "Pagerank", 50.0},
                      EngineCase{"Spark", "TF_IDF", 50.0},
                      EngineCase{"MLLib", "kmeans", 20.0},
                      EngineCase{"Hama", "Pagerank", 1.7},
                      EngineCase{"MapReduce", "Wordcount", 50.0},
                      EngineCase{"PostgreSQL", "SPJQuery", 50.0},
                      EngineCase{"MemSQL", "SPJQuery", 7.0},
                      EngineCase{"Hive", "SPJQuery", 50.0}),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return std::string(info.param.engine) + "_" + info.param.algorithm;
    });

// ------------------------------------------------ metadata match algebra
MetadataTree RandomTree(Rng* rng, int leaves) {
  MetadataTree tree;
  static const char* kSegments[] = {"Constraints", "Engine", "Input0",
                                    "type",        "FS",     "Algorithm",
                                    "Execution",   "path",   "extra"};
  for (int i = 0; i < leaves; ++i) {
    std::string path;
    const int depth = static_cast<int>(rng->UniformInt(1, 4));
    for (int d = 0; d < depth; ++d) {
      if (d > 0) path += ".";
      path += kSegments[rng->UniformInt(0, 8)];
      path += std::to_string(rng->UniformInt(0, 3));
    }
    tree.Set(path, "v" + std::to_string(rng->UniformInt(0, 5)));
  }
  return tree;
}

class MetadataAlgebraTest : public ::testing::TestWithParam<int> {};

TEST_P(MetadataAlgebraTest, MatchingIsReflexive) {
  Rng rng(GetParam() * 131 + 7);
  const MetadataTree tree = RandomTree(&rng, 12);
  EXPECT_TRUE(MatchTrees(tree, tree).matched);
}

TEST_P(MetadataAlgebraTest, SupersetStillMatchesAndPrunedPatternToo) {
  Rng rng(GetParam() * 131 + 8);
  MetadataTree pattern = RandomTree(&rng, 8);
  // Concrete = pattern + extra fields: must match.
  MetadataTree concrete = pattern;
  concrete.Set("zzz.added.field", "x");
  concrete.Set("aaa.added", "y");
  EXPECT_TRUE(MatchTrees(pattern, concrete).matched);
  // Removing a random pattern leaf keeps the (smaller) pattern matching.
  auto flat = pattern.Flatten();
  if (!flat.empty()) {
    pattern.Erase(flat[rng.UniformInt(0, flat.size() - 1)].first);
    EXPECT_TRUE(MatchTrees(pattern, concrete).matched);
  }
}

TEST_P(MetadataAlgebraTest, ChangedLeafValueBreaksMatch) {
  Rng rng(GetParam() * 131 + 9);
  const MetadataTree pattern = RandomTree(&rng, 10);
  MetadataTree concrete = pattern;
  auto flat = pattern.Flatten();
  ASSERT_FALSE(flat.empty());
  const auto& [path, value] = flat[rng.UniformInt(0, flat.size() - 1)];
  concrete.Set(path, value + "_changed");
  MatchResult r = MatchTrees(pattern, concrete);
  EXPECT_FALSE(r.matched);
  EXPECT_EQ(r.mismatch_path, path);
}

TEST_P(MetadataAlgebraTest, WildcardedPatternMatchesAnyValues) {
  Rng rng(GetParam() * 131 + 10);
  const MetadataTree concrete = RandomTree(&rng, 10);
  MetadataTree pattern = concrete;
  for (const auto& [path, value] : pattern.Flatten()) {
    pattern.Set(path, "*");
  }
  EXPECT_TRUE(MatchTrees(pattern, concrete).matched);
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, MetadataAlgebraTest,
                         ::testing::Range(0, 10));

// -------------------------------------------------------- policy algebra
TEST(PolicyTest, MetricFormulas) {
  EXPECT_DOUBLE_EQ(OptimizationPolicy::MinimizeTime().Metric(7, 100), 7);
  EXPECT_DOUBLE_EQ(OptimizationPolicy::MinimizeCost().Metric(7, 100), 100);
  EXPECT_DOUBLE_EQ(OptimizationPolicy::Weighted(2, 0.5).Metric(7, 100),
                   2 * 7 + 0.5 * 100);
}

TEST(PolicyTest, ToStringNamesObjective) {
  EXPECT_EQ(OptimizationPolicy::MinimizeTime().ToString(), "min-time");
  EXPECT_EQ(OptimizationPolicy::MinimizeCost().ToString(), "min-cost");
  EXPECT_NE(OptimizationPolicy::Weighted(1, 2).ToString().find("weighted"),
            std::string::npos);
}

}  // namespace
}  // namespace ires
