#include <gtest/gtest.h>


#include <set>
#include <vector>
#include "cluster/cluster_simulator.h"

namespace ires {
namespace {

TEST(ResourcesTest, Totals) {
  Resources r{4, 2, 1.5};
  EXPECT_EQ(r.total_cores(), 8);
  EXPECT_DOUBLE_EQ(r.total_memory_gb(), 6.0);
}

TEST(ResourcesTest, CostMetricMatchesPaperFormula) {
  // #VM * cores/VM * GB/VM * t
  Resources r{4, 2, 3.0};
  EXPECT_DOUBLE_EQ(r.CostForDuration(10.0), 4 * 2 * 3.0 * 10.0);
}

TEST(ClusterSimulatorTest, CapacityAccounting) {
  ClusterSimulator cluster(4, 8, 16.0);
  EXPECT_EQ(cluster.node_count(), 4);
  EXPECT_EQ(cluster.total_cores(), 32);
  EXPECT_DOUBLE_EQ(cluster.total_memory_gb(), 64.0);
  EXPECT_EQ(cluster.free_cores(), 32);

  auto alloc = cluster.Allocate({2, 4, 8.0});
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(cluster.free_cores(), 24);
  EXPECT_DOUBLE_EQ(cluster.free_memory_gb(), 48.0);

  ASSERT_TRUE(cluster.Release(alloc.value().id).ok());
  EXPECT_EQ(cluster.free_cores(), 32);
}

TEST(ClusterSimulatorTest, AllocationSpreadsAcrossNodes) {
  ClusterSimulator cluster(4, 4, 8.0);
  auto alloc = cluster.Allocate({4, 4, 8.0});  // each container fills a node
  ASSERT_TRUE(alloc.ok());
  std::set<int> nodes(alloc.value().container_nodes.begin(),
                      alloc.value().container_nodes.end());
  EXPECT_EQ(nodes.size(), 4u);
}

TEST(ClusterSimulatorTest, OversizedRequestRejectedAtomically) {
  ClusterSimulator cluster(2, 4, 8.0);
  // 3 containers of 4 cores need 3 nodes; only 2 exist.
  auto alloc = cluster.Allocate({3, 4, 8.0});
  EXPECT_EQ(alloc.status().code(), StatusCode::kResourceExhausted);
  // Nothing must have been leaked by the failed attempt.
  EXPECT_EQ(cluster.free_cores(), 8);
  EXPECT_EQ(cluster.active_allocations(), 0);
}

TEST(ClusterSimulatorTest, InvalidRequestsRejected) {
  ClusterSimulator cluster(2, 4, 8.0);
  EXPECT_FALSE(cluster.Allocate({0, 1, 1.0}).ok());
  EXPECT_FALSE(cluster.Allocate({1, -1, 1.0}).ok());
  EXPECT_FALSE(cluster.Allocate({1, 1, 0.0}).ok());
}

TEST(ClusterSimulatorTest, ReleaseUnknownAllocationFails) {
  ClusterSimulator cluster(1, 1, 1.0);
  EXPECT_EQ(cluster.Release(123).code(), StatusCode::kNotFound);
}

TEST(ClusterSimulatorTest, UnhealthyNodesExcludedFromPlacement) {
  ClusterSimulator cluster(2, 4, 8.0);
  cluster.SetNodeHealth(0, NodeHealth::kUnhealthy);
  EXPECT_EQ(cluster.healthy_node_count(), 1);
  // Two single-node containers no longer fit.
  EXPECT_FALSE(cluster.Allocate({2, 4, 8.0}).ok());
  EXPECT_TRUE(cluster.Allocate({1, 4, 8.0}).ok());
}

TEST(ClusterSimulatorTest, FailedAllocationsReported) {
  ClusterSimulator cluster(2, 4, 8.0);
  auto a = cluster.Allocate({2, 2, 2.0});
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(cluster.FailedAllocations().empty());
  cluster.SetNodeHealth(a.value().container_nodes[0],
                        NodeHealth::kUnhealthy);
  auto failed = cluster.FailedAllocations();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], a.value().id);
}

TEST(ClusterSimulatorTest, ServiceStatusDefaultsOn) {
  ClusterSimulator cluster(1, 1, 1.0);
  EXPECT_TRUE(cluster.IsServiceOn("Spark"));
  cluster.SetServiceStatus("Spark", false);
  EXPECT_FALSE(cluster.IsServiceOn("Spark"));
  cluster.SetServiceStatus("Spark", true);
  EXPECT_TRUE(cluster.IsServiceOn("Spark"));
}

TEST(ClusterSimulatorTest, ConcurrentAllocationsUntilFull) {
  ClusterSimulator cluster(4, 2, 4.0);
  std::vector<int> ids;
  for (int i = 0; i < 8; ++i) {
    auto alloc = cluster.Allocate({1, 1, 2.0});
    ASSERT_TRUE(alloc.ok()) << i;
    ids.push_back(alloc.value().id);
  }
  EXPECT_EQ(cluster.free_cores(), 0);
  EXPECT_FALSE(cluster.Allocate({1, 1, 1.0}).ok());
  for (int id : ids) ASSERT_TRUE(cluster.Release(id).ok());
  EXPECT_EQ(cluster.free_cores(), 8);
}

}  // namespace
}  // namespace ires
