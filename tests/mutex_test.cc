// Tests for the rank-checked mutex wrappers (common/mutex.h): the runtime
// lock-order registry (inversion / recursive / upgrade death tests, the
// blessed cross-subsystem chain), condition-variable integration, and
// regression coverage for the concurrency bugs the thread-safety sweep
// fixed (operator-library move assignment, pooled provisioner advise,
// logger sink swaps, REST workflow-store races).

#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/rest_api.h"
#include "engines/standard_engines.h"
#include "operators/operator_library.h"
#include "provisioning/resource_provisioner.h"
#include "threading/task_scheduler.h"

namespace ires {
namespace {

using lock_rank::DescribeHeld;
using lock_rank::HeldCount;
using lock_rank::ScopedChecksForTest;

TEST(LockRankRegistryTest, TracksHeldLocks) {
  ScopedChecksForTest checks(true);
  Mutex low(LockRank::kJobService, "test.low");
  Mutex high(LockRank::kEngineRegistry, "test.high");
  EXPECT_EQ(HeldCount(), 0);
  {
    MutexLock a(low);
    EXPECT_EQ(HeldCount(), 1);
    MutexLock b(high);
    EXPECT_EQ(HeldCount(), 2);
    const std::string held = DescribeHeld();
    EXPECT_NE(held.find("test.low"), std::string::npos) << held;
    EXPECT_NE(held.find("test.high"), std::string::npos) << held;
  }
  EXPECT_EQ(HeldCount(), 0);
}

TEST(LockRankRegistryTest, RankInversionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedChecksForTest checks(true);
        Mutex high(LockRank::kEngineRegistry, "test.high");
        Mutex low(LockRank::kPlanCache, "test.low");
        MutexLock a(high);
        MutexLock b(low);  // 550 then 300: inversion
      },
      "lock-rank violation");
}

TEST(LockRankRegistryTest, RecursiveAcquireAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedChecksForTest checks(true);
        Mutex mu(LockRank::kPlanCache, "test.recursive");
        mu.Lock();
        mu.Lock();  // same instance, same thread
      },
      "recursive acquire");
}

TEST(LockRankRegistryTest, SharedToExclusiveUpgradeAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedChecksForTest checks(true);
        SharedMutex mu(LockRank::kOperatorLibrary, "test.upgrade");
        mu.LockShared();
        mu.Lock();  // reader hold upgraded in place
      },
      "upgrade");
}

TEST(LockRankRegistryTest, EqualRankNestingAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedChecksForTest checks(true);
        Mutex a(LockRank::kEventJournalShard, "test.shard_a");
        Mutex b(LockRank::kEventJournalShard, "test.shard_b");
        MutexLock la(a);
        MutexLock lb(b);  // equal ranks may never nest
      },
      "lock-rank violation");
}

TEST(LockRankRegistryTest, EqualRankSequentialIsAllowed) {
  ScopedChecksForTest checks(true);
  Mutex a(LockRank::kEventJournalShard, "test.shard_a");
  Mutex b(LockRank::kEventJournalShard, "test.shard_b");
  { MutexLock la(a); }
  { MutexLock lb(b); }  // one shard at a time, like the journal
  EXPECT_EQ(HeldCount(), 0);
}

TEST(LockRankRegistryTest, TryLockParticipatesInOrdering) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedChecksForTest checks(true);
        Mutex high(LockRank::kMetricsRegistry, "test.high");
        Mutex low(LockRank::kJobService, "test.low");
        MutexLock a(high);
        (void)low.TryLock();  // cannot deadlock, still rot
      },
      "lock-rank violation");
}

TEST(LockRankRegistryTest, TryLockInOrderSucceeds) {
  ScopedChecksForTest checks(true);
  Mutex low(LockRank::kJobService, "test.low");
  Mutex high(LockRank::kMetricsRegistry, "test.high");
  MutexLock a(low);
  ASSERT_TRUE(high.TryLock());
  EXPECT_EQ(HeldCount(), 2);
  high.Unlock();
}

TEST(LockRankRegistryTest, DisabledChecksEnforceNothing) {
  ScopedChecksForTest checks(false);
  Mutex high(LockRank::kEngineRegistry, "test.high");
  Mutex low(LockRank::kPlanCache, "test.low");
  MutexLock a(high);
  MutexLock b(low);  // inversion, but checking is off
  EXPECT_EQ(HeldCount(), 0);  // bookkeeping only runs while enabled
}

/// The serving stack's blessed chain: job bookkeeping -> plan cache ->
/// engine registry. Nesting in rank order passes; the reverse aborts with
/// both lock sets in the message.
TEST(LockRankRegistryTest, BlessedCrossSubsystemChainPasses) {
  ScopedChecksForTest checks(true);
  Mutex jobs(LockRank::kJobService, "jobs.service");
  Mutex plans(LockRank::kPlanCache, "planner.plan_cache");
  Mutex engines(LockRank::kEngineRegistry, "engines.health");
  MutexLock a(jobs);
  MutexLock b(plans);
  MutexLock c(engines);
  EXPECT_EQ(HeldCount(), 3);
}

TEST(LockRankRegistryTest, ReversedCrossSubsystemChainAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedChecksForTest checks(true);
        Mutex jobs(LockRank::kJobService, "jobs.service");
        Mutex engines(LockRank::kEngineRegistry, "engines.health");
        MutexLock c(engines);
        MutexLock a(jobs);
      },
      "lock-rank violation");
}

TEST(LockRankRegistryTest, ViolationMessageNamesBothLockSets) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedChecksForTest checks(true);
        Mutex jobs(LockRank::kJobService, "jobs.service");
        Mutex engines(LockRank::kEngineRegistry, "engines.health");
        // Bless the jobs -> engines edge so the violation can cite the
        // witness thread's lock set for the opposite direction.
        {
          MutexLock a(jobs);
          MutexLock b(engines);
        }
        MutexLock c(engines);
        MutexLock d(jobs);
      },
      "engines.health");
}

TEST(MutexTest, ConditionVariableWaitKeepsBookkeeping) {
  ScopedChecksForTest checks(true);
  Mutex mu(LockRank::kJobService, "test.cv");
  std::condition_variable_any cv;
  bool ready = false;

  std::thread notifier([&] {
    ScopedChecksForTest thread_checks(true);
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });

  {
    MutexLock lock(mu);
    // The wait releases mu (bookkeeping drops to 0 for this thread) and
    // reacquires it before returning.
    cv.wait(mu, [&] { return ready; });
    EXPECT_EQ(HeldCount(), 1);
  }
  EXPECT_EQ(HeldCount(), 0);
  notifier.join();
}

/// TSan target: hammer the blessed order from many threads. Any missed
/// synchronization in the wrappers or registry shows up as a race; any
/// ordering slip aborts.
TEST(MutexTest, BlessedOrderStressIsClean) {
  ScopedChecksForTest checks(true);
  Mutex low(LockRank::kJobService, "stress.low");
  Mutex high(LockRank::kMetricsRegistry, "stress.high");
  SharedMutex shared(LockRank::kOperatorLibrary, "stress.shared");
  int guarded = 0;
  std::atomic<int> reads{0};

  constexpr int kThreads = 8;
  constexpr int kIterations = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ScopedChecksForTest thread_checks(true);
      for (int i = 0; i < kIterations; ++i) {
        if ((t + i) % 3 == 0) {
          ReaderLock r(shared);
          reads.fetch_add(1, std::memory_order_relaxed);
        } else {
          MutexLock a(low);
          MutexLock b(high);
          ++guarded;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(HeldCount(), 0);
  int expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kIterations; ++i) {
      if ((t + i) % 3 != 0) ++expected;
    }
  }
  MutexLock a(low);
  EXPECT_EQ(guarded, expected);
}

// ------------------------------------------------- sweep regression tests

/// Move assignment used to scoped_lock both libraries' same-rank locks at
/// once — an equal-rank double acquire (and a latent ABBA deadlock). It now
/// drains the source and installs under each lock in turn.
TEST(SweepRegressionTest, OperatorLibraryMoveAssignUnderRankChecks) {
  ScopedChecksForTest checks(true);
  OperatorLibrary source;
  MetadataTree meta;
  meta.Set("Constraints.Engine", "Spark");
  meta.Set("Constraints.OpSpecification.Algorithm.name", "LineCount");
  ASSERT_TRUE(
      source.AddMaterialized(MaterializedOperator("LC_Spark", std::move(meta)))
          .ok());

  OperatorLibrary destination;
  destination = std::move(source);
  EXPECT_EQ(destination.materialized_count(), 1u);
  EXPECT_NE(destination.FindMaterializedByName("LC_Spark"), nullptr);
  EXPECT_EQ(HeldCount(), 0);
}

/// Advise used to hold the provisioner mutex across the pooled GA run —
/// a ranked lock held through TaskGroup::Wait, where caller-helps waiting
/// executes arbitrary unrelated tasks. The GA now runs on locals; with the
/// registry live, concurrent pooled Advise calls must pass cleanly.
TEST(SweepRegressionTest, ProvisionerPooledAdviseUnderRankChecks) {
  ScopedChecksForTest checks(true);
  TaskScheduler::Options sched_options;
  sched_options.workers = 2;
  TaskScheduler scheduler(sched_options);

  std::unique_ptr<EngineRegistry> registry = MakeStandardEngineRegistry();
  const SimulatedEngine* spark = registry->Find("Spark");
  ASSERT_NE(spark, nullptr);

  NsgaResourceProvisioner::Limits limits;
  Nsga2::Options ga;
  ga.population = 12;
  ga.generations = 6;
  ga.scheduler = &scheduler;
  NsgaResourceProvisioner provisioner(limits, ga);

  OperatorRunRequest request;
  request.algorithm = "TF_IDF";
  request.input_bytes = 1e9;
  request.input_records = 1e6;
  request.resources = spark->default_resources();

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      ScopedChecksForTest thread_checks(true);
      const Resources advised = provisioner.Advise(
          *spark, request, OptimizationPolicy::MinimizeTime());
      EXPECT_GE(advised.containers, 1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(provisioner.last_front().empty());
  scheduler.Shutdown();
}

/// Logger sink swaps race logging from worker threads; both paths now go
/// through the ranked sink mutex, so every captured line arrives complete.
TEST(SweepRegressionTest, LoggerSinkSwapConcurrentWithLogging) {
  ScopedChecksForTest checks(true);
  std::atomic<int> captured{0};
  std::atomic<bool> stop{false};

  std::thread logger([&] {
    ScopedChecksForTest thread_checks(true);
    while (!stop.load(std::memory_order_acquire)) {
      Logger::Log(LogLevel::kError, "sink swap race probe");
    }
  });
  for (int i = 0; i < 200; ++i) {
    Logger::SetSink([&captured](LogLevel, const std::string& line) {
      EXPECT_NE(line.find("sink swap race probe"), std::string::npos);
      captured.fetch_add(1, std::memory_order_relaxed);
    });
    Logger::SetSink(nullptr);
  }
  stop.store(true, std::memory_order_release);
  logger.join();
  Logger::SetSink(nullptr);
  SUCCEED();  // completion without a race/abort is the assertion
}

/// The REST workflow store is the outermost lock of the stack: concurrent
/// stores, lists and executes must interleave cleanly with the rank
/// registry enabled (the execute path takes service locks downstream).
TEST(SweepRegressionTest, RestApiWorkflowRoutesConcurrent) {
  ScopedChecksForTest checks(true);
  IresServer server;
  RestApi api(&server);
  ASSERT_EQ(api.Handle("POST", "/apiv1/datasets/asapServerLog",
                       "Constraints.Engine.FS=HDFS\n"
                       "Execution.path=hdfs:///log\n"
                       "Optimization.size=5e8\n"
                       "Optimization.documents=1000\n")
                .code,
            201);
  ASSERT_EQ(api.Handle("POST", "/apiv1/abstractOperators/LineCount",
                       "Constraints.OpSpecification.Algorithm.name="
                       "LineCount\n")
                .code,
            201);
  ASSERT_EQ(api.Handle("POST", "/apiv1/operators/LineCount_Spark",
                       "Constraints.Engine=Spark\n"
                       "Constraints.OpSpecification.Algorithm.name="
                       "LineCount\n"
                       "Constraints.Input0.Engine.FS=HDFS\n"
                       "Constraints.Output0.Engine.FS=HDFS\n")
                .code,
            201);
  const std::string graph =
      "asapServerLog,LineCount,0\n"
      "LineCount,d1,0\n"
      "d1,$$target\n";

  constexpr int kWriters = 4;
  std::atomic<int> stored{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      ScopedChecksForTest thread_checks(true);
      const std::string name = "wf" + std::to_string(t);
      if (api.Handle("POST", "/apiv1/workflows/" + name, graph).code == 201) {
        stored.fetch_add(1, std::memory_order_relaxed);
      }
      for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(api.Handle("GET", "/apiv1/workflows").code, 200);
      }
      EXPECT_EQ(
          api.Handle("POST", "/apiv1/workflows/" + name + "/materialize")
              .code,
          200);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(stored.load(), kWriters);
  const ApiResponse list = api.Handle("GET", "/apiv1/workflows");
  for (int t = 0; t < kWriters; ++t) {
    EXPECT_NE(list.body.find("wf" + std::to_string(t)), std::string::npos);
  }
}

}  // namespace
}  // namespace ires
