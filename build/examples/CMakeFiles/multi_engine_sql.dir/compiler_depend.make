# Empty compiler generated dependencies file for multi_engine_sql.
# This may be replaced when dependencies are built.
