file(REMOVE_RECURSE
  "CMakeFiles/multi_engine_sql.dir/multi_engine_sql.cpp.o"
  "CMakeFiles/multi_engine_sql.dir/multi_engine_sql.cpp.o.d"
  "multi_engine_sql"
  "multi_engine_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_engine_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
