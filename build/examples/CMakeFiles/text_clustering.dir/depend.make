# Empty dependencies file for text_clustering.
# This may be replaced when dependencies are built.
