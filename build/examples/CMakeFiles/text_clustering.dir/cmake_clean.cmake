file(REMOVE_RECURSE
  "CMakeFiles/text_clustering.dir/text_clustering.cpp.o"
  "CMakeFiles/text_clustering.dir/text_clustering.cpp.o.d"
  "text_clustering"
  "text_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
