# Empty compiler generated dependencies file for resource_elasticity.
# This may be replaced when dependencies are built.
