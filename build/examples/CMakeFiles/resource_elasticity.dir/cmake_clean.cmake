file(REMOVE_RECURSE
  "CMakeFiles/resource_elasticity.dir/resource_elasticity.cpp.o"
  "CMakeFiles/resource_elasticity.dir/resource_elasticity.cpp.o.d"
  "resource_elasticity"
  "resource_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
