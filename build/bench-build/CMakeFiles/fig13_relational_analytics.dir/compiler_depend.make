# Empty compiler generated dependencies file for fig13_relational_analytics.
# This may be replaced when dependencies are built.
