file(REMOVE_RECURSE
  "../bench/fig13_relational_analytics"
  "../bench/fig13_relational_analytics.pdb"
  "CMakeFiles/fig13_relational_analytics.dir/fig13_relational_analytics.cc.o"
  "CMakeFiles/fig13_relational_analytics.dir/fig13_relational_analytics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_relational_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
