file(REMOVE_RECURSE
  "../bench/fig14_planner_workflow_types"
  "../bench/fig14_planner_workflow_types.pdb"
  "CMakeFiles/fig14_planner_workflow_types.dir/fig14_planner_workflow_types.cc.o"
  "CMakeFiles/fig14_planner_workflow_types.dir/fig14_planner_workflow_types.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_planner_workflow_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
