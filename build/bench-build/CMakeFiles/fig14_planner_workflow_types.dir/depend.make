# Empty dependencies file for fig14_planner_workflow_types.
# This may be replaced when dependencies are built.
