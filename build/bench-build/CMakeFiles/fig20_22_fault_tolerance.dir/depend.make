# Empty dependencies file for fig20_22_fault_tolerance.
# This may be replaced when dependencies are built.
