file(REMOVE_RECURSE
  "../bench/fig20_22_fault_tolerance"
  "../bench/fig20_22_fault_tolerance.pdb"
  "CMakeFiles/fig20_22_fault_tolerance.dir/fig20_22_fault_tolerance.cc.o"
  "CMakeFiles/fig20_22_fault_tolerance.dir/fig20_22_fault_tolerance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_22_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
