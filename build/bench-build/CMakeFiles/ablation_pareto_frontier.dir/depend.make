# Empty dependencies file for ablation_pareto_frontier.
# This may be replaced when dependencies are built.
