file(REMOVE_RECURSE
  "../bench/ablation_pareto_frontier"
  "../bench/ablation_pareto_frontier.pdb"
  "CMakeFiles/ablation_pareto_frontier.dir/ablation_pareto_frontier.cc.o"
  "CMakeFiles/ablation_pareto_frontier.dir/ablation_pareto_frontier.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pareto_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
