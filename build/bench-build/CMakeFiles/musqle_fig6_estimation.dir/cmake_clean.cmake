file(REMOVE_RECURSE
  "../bench/musqle_fig6_estimation"
  "../bench/musqle_fig6_estimation.pdb"
  "CMakeFiles/musqle_fig6_estimation.dir/musqle_fig6_estimation.cc.o"
  "CMakeFiles/musqle_fig6_estimation.dir/musqle_fig6_estimation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musqle_fig6_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
