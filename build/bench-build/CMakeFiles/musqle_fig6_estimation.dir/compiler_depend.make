# Empty compiler generated dependencies file for musqle_fig6_estimation.
# This may be replaced when dependencies are built.
