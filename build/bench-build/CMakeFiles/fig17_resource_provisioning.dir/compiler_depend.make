# Empty compiler generated dependencies file for fig17_resource_provisioning.
# This may be replaced when dependencies are built.
