file(REMOVE_RECURSE
  "../bench/fig17_resource_provisioning"
  "../bench/fig17_resource_provisioning.pdb"
  "CMakeFiles/fig17_resource_provisioning.dir/fig17_resource_provisioning.cc.o"
  "CMakeFiles/fig17_resource_provisioning.dir/fig17_resource_provisioning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_resource_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
