
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig17_resource_provisioning.cc" "bench-build/CMakeFiles/fig17_resource_provisioning.dir/fig17_resource_provisioning.cc.o" "gcc" "bench-build/CMakeFiles/fig17_resource_provisioning.dir/fig17_resource_provisioning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ires_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_executor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_provisioning.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_workloadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_operators.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_modeling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
