# Empty dependencies file for ablation_model_zoo.
# This may be replaced when dependencies are built.
