file(REMOVE_RECURSE
  "../bench/ablation_model_zoo"
  "../bench/ablation_model_zoo.pdb"
  "CMakeFiles/ablation_model_zoo.dir/ablation_model_zoo.cc.o"
  "CMakeFiles/ablation_model_zoo.dir/ablation_model_zoo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
