# Empty dependencies file for ablation_enumeration.
# This may be replaced when dependencies are built.
