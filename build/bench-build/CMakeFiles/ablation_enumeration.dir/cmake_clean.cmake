file(REMOVE_RECURSE
  "../bench/ablation_enumeration"
  "../bench/ablation_enumeration.pdb"
  "CMakeFiles/ablation_enumeration.dir/ablation_enumeration.cc.o"
  "CMakeFiles/ablation_enumeration.dir/ablation_enumeration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
