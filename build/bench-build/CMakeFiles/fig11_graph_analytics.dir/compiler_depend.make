# Empty compiler generated dependencies file for fig11_graph_analytics.
# This may be replaced when dependencies are built.
