file(REMOVE_RECURSE
  "../bench/fig11_graph_analytics"
  "../bench/fig11_graph_analytics.pdb"
  "CMakeFiles/fig11_graph_analytics.dir/fig11_graph_analytics.cc.o"
  "CMakeFiles/fig11_graph_analytics.dir/fig11_graph_analytics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_graph_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
