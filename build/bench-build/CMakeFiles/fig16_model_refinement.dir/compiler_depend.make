# Empty compiler generated dependencies file for fig16_model_refinement.
# This may be replaced when dependencies are built.
