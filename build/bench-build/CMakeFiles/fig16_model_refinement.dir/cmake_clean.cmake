file(REMOVE_RECURSE
  "../bench/fig16_model_refinement"
  "../bench/fig16_model_refinement.pdb"
  "CMakeFiles/fig16_model_refinement.dir/fig16_model_refinement.cc.o"
  "CMakeFiles/fig16_model_refinement.dir/fig16_model_refinement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_model_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
