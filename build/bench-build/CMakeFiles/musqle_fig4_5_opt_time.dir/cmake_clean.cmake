file(REMOVE_RECURSE
  "../bench/musqle_fig4_5_opt_time"
  "../bench/musqle_fig4_5_opt_time.pdb"
  "CMakeFiles/musqle_fig4_5_opt_time.dir/musqle_fig4_5_opt_time.cc.o"
  "CMakeFiles/musqle_fig4_5_opt_time.dir/musqle_fig4_5_opt_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musqle_fig4_5_opt_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
