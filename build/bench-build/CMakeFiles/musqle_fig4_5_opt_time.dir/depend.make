# Empty dependencies file for musqle_fig4_5_opt_time.
# This may be replaced when dependencies are built.
