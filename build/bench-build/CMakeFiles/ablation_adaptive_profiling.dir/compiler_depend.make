# Empty compiler generated dependencies file for ablation_adaptive_profiling.
# This may be replaced when dependencies are built.
