file(REMOVE_RECURSE
  "../bench/ablation_adaptive_profiling"
  "../bench/ablation_adaptive_profiling.pdb"
  "CMakeFiles/ablation_adaptive_profiling.dir/ablation_adaptive_profiling.cc.o"
  "CMakeFiles/ablation_adaptive_profiling.dir/ablation_adaptive_profiling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
