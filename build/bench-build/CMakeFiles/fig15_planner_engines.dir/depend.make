# Empty dependencies file for fig15_planner_engines.
# This may be replaced when dependencies are built.
