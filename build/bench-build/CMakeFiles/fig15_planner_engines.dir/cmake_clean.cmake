file(REMOVE_RECURSE
  "../bench/fig15_planner_engines"
  "../bench/fig15_planner_engines.pdb"
  "CMakeFiles/fig15_planner_engines.dir/fig15_planner_engines.cc.o"
  "CMakeFiles/fig15_planner_engines.dir/fig15_planner_engines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_planner_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
