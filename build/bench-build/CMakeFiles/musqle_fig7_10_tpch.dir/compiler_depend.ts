# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for musqle_fig7_10_tpch.
