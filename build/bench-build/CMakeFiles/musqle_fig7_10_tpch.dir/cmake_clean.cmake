file(REMOVE_RECURSE
  "../bench/musqle_fig7_10_tpch"
  "../bench/musqle_fig7_10_tpch.pdb"
  "CMakeFiles/musqle_fig7_10_tpch.dir/musqle_fig7_10_tpch.cc.o"
  "CMakeFiles/musqle_fig7_10_tpch.dir/musqle_fig7_10_tpch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musqle_fig7_10_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
