# Empty dependencies file for musqle_fig7_10_tpch.
# This may be replaced when dependencies are built.
