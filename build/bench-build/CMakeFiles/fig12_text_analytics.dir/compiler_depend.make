# Empty compiler generated dependencies file for fig12_text_analytics.
# This may be replaced when dependencies are built.
