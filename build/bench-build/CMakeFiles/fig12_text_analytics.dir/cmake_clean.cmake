file(REMOVE_RECURSE
  "../bench/fig12_text_analytics"
  "../bench/fig12_text_analytics.pdb"
  "CMakeFiles/fig12_text_analytics.dir/fig12_text_analytics.cc.o"
  "CMakeFiles/fig12_text_analytics.dir/fig12_text_analytics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_text_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
