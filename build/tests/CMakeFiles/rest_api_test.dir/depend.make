# Empty dependencies file for rest_api_test.
# This may be replaced when dependencies are built.
