file(REMOVE_RECURSE
  "CMakeFiles/modeling_test.dir/modeling_test.cc.o"
  "CMakeFiles/modeling_test.dir/modeling_test.cc.o.d"
  "modeling_test"
  "modeling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modeling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
