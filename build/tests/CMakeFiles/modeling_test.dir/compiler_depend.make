# Empty compiler generated dependencies file for modeling_test.
# This may be replaced when dependencies are built.
