# Empty compiler generated dependencies file for planner_optimality_test.
# This may be replaced when dependencies are built.
