file(REMOVE_RECURSE
  "CMakeFiles/planner_optimality_test.dir/planner_optimality_test.cc.o"
  "CMakeFiles/planner_optimality_test.dir/planner_optimality_test.cc.o.d"
  "planner_optimality_test"
  "planner_optimality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_optimality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
