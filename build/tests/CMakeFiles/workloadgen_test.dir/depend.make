# Empty dependencies file for workloadgen_test.
# This may be replaced when dependencies are built.
