# Empty compiler generated dependencies file for dpccp_test.
# This may be replaced when dependencies are built.
