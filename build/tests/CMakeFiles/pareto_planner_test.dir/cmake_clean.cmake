file(REMOVE_RECURSE
  "CMakeFiles/pareto_planner_test.dir/pareto_planner_test.cc.o"
  "CMakeFiles/pareto_planner_test.dir/pareto_planner_test.cc.o.d"
  "pareto_planner_test"
  "pareto_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
