file(REMOVE_RECURSE
  "CMakeFiles/sql_calibration_test.dir/sql_calibration_test.cc.o"
  "CMakeFiles/sql_calibration_test.dir/sql_calibration_test.cc.o.d"
  "sql_calibration_test"
  "sql_calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
