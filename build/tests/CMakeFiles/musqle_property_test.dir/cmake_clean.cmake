file(REMOVE_RECURSE
  "CMakeFiles/musqle_property_test.dir/musqle_property_test.cc.o"
  "CMakeFiles/musqle_property_test.dir/musqle_property_test.cc.o.d"
  "musqle_property_test"
  "musqle_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musqle_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
