# Empty dependencies file for musqle_property_test.
# This may be replaced when dependencies are built.
