# Empty dependencies file for evaluation_shapes_test.
# This may be replaced when dependencies are built.
