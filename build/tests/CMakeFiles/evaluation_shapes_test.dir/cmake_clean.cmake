file(REMOVE_RECURSE
  "CMakeFiles/evaluation_shapes_test.dir/evaluation_shapes_test.cc.o"
  "CMakeFiles/evaluation_shapes_test.dir/evaluation_shapes_test.cc.o.d"
  "evaluation_shapes_test"
  "evaluation_shapes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluation_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
