file(REMOVE_RECURSE
  "libires_common.a"
)
