file(REMOVE_RECURSE
  "CMakeFiles/ires_common.dir/common/logging.cc.o"
  "CMakeFiles/ires_common.dir/common/logging.cc.o.d"
  "CMakeFiles/ires_common.dir/common/rng.cc.o"
  "CMakeFiles/ires_common.dir/common/rng.cc.o.d"
  "CMakeFiles/ires_common.dir/common/status.cc.o"
  "CMakeFiles/ires_common.dir/common/status.cc.o.d"
  "CMakeFiles/ires_common.dir/common/strings.cc.o"
  "CMakeFiles/ires_common.dir/common/strings.cc.o.d"
  "libires_common.a"
  "libires_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
