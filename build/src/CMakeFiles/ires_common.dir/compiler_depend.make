# Empty compiler generated dependencies file for ires_common.
# This may be replaced when dependencies are built.
