file(REMOVE_RECURSE
  "libires_provisioning.a"
)
