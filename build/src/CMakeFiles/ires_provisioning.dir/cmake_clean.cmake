file(REMOVE_RECURSE
  "CMakeFiles/ires_provisioning.dir/provisioning/nsga2.cc.o"
  "CMakeFiles/ires_provisioning.dir/provisioning/nsga2.cc.o.d"
  "CMakeFiles/ires_provisioning.dir/provisioning/resource_provisioner.cc.o"
  "CMakeFiles/ires_provisioning.dir/provisioning/resource_provisioner.cc.o.d"
  "libires_provisioning.a"
  "libires_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
