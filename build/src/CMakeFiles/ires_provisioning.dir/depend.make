# Empty dependencies file for ires_provisioning.
# This may be replaced when dependencies are built.
