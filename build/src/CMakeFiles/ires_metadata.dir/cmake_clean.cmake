file(REMOVE_RECURSE
  "CMakeFiles/ires_metadata.dir/metadata/metadata_tree.cc.o"
  "CMakeFiles/ires_metadata.dir/metadata/metadata_tree.cc.o.d"
  "CMakeFiles/ires_metadata.dir/metadata/tree_match.cc.o"
  "CMakeFiles/ires_metadata.dir/metadata/tree_match.cc.o.d"
  "libires_metadata.a"
  "libires_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
