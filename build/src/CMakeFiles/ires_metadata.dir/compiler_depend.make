# Empty compiler generated dependencies file for ires_metadata.
# This may be replaced when dependencies are built.
