file(REMOVE_RECURSE
  "libires_metadata.a"
)
