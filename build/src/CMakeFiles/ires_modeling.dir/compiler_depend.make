# Empty compiler generated dependencies file for ires_modeling.
# This may be replaced when dependencies are built.
