
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modeling/kernel_models.cc" "src/CMakeFiles/ires_modeling.dir/modeling/kernel_models.cc.o" "gcc" "src/CMakeFiles/ires_modeling.dir/modeling/kernel_models.cc.o.d"
  "/root/repo/src/modeling/linalg.cc" "src/CMakeFiles/ires_modeling.dir/modeling/linalg.cc.o" "gcc" "src/CMakeFiles/ires_modeling.dir/modeling/linalg.cc.o.d"
  "/root/repo/src/modeling/linear_models.cc" "src/CMakeFiles/ires_modeling.dir/modeling/linear_models.cc.o" "gcc" "src/CMakeFiles/ires_modeling.dir/modeling/linear_models.cc.o.d"
  "/root/repo/src/modeling/model.cc" "src/CMakeFiles/ires_modeling.dir/modeling/model.cc.o" "gcc" "src/CMakeFiles/ires_modeling.dir/modeling/model.cc.o.d"
  "/root/repo/src/modeling/model_selection.cc" "src/CMakeFiles/ires_modeling.dir/modeling/model_selection.cc.o" "gcc" "src/CMakeFiles/ires_modeling.dir/modeling/model_selection.cc.o.d"
  "/root/repo/src/modeling/neural.cc" "src/CMakeFiles/ires_modeling.dir/modeling/neural.cc.o" "gcc" "src/CMakeFiles/ires_modeling.dir/modeling/neural.cc.o.d"
  "/root/repo/src/modeling/refinement.cc" "src/CMakeFiles/ires_modeling.dir/modeling/refinement.cc.o" "gcc" "src/CMakeFiles/ires_modeling.dir/modeling/refinement.cc.o.d"
  "/root/repo/src/modeling/tree_models.cc" "src/CMakeFiles/ires_modeling.dir/modeling/tree_models.cc.o" "gcc" "src/CMakeFiles/ires_modeling.dir/modeling/tree_models.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ires_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
