file(REMOVE_RECURSE
  "libires_modeling.a"
)
