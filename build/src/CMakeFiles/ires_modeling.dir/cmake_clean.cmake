file(REMOVE_RECURSE
  "CMakeFiles/ires_modeling.dir/modeling/kernel_models.cc.o"
  "CMakeFiles/ires_modeling.dir/modeling/kernel_models.cc.o.d"
  "CMakeFiles/ires_modeling.dir/modeling/linalg.cc.o"
  "CMakeFiles/ires_modeling.dir/modeling/linalg.cc.o.d"
  "CMakeFiles/ires_modeling.dir/modeling/linear_models.cc.o"
  "CMakeFiles/ires_modeling.dir/modeling/linear_models.cc.o.d"
  "CMakeFiles/ires_modeling.dir/modeling/model.cc.o"
  "CMakeFiles/ires_modeling.dir/modeling/model.cc.o.d"
  "CMakeFiles/ires_modeling.dir/modeling/model_selection.cc.o"
  "CMakeFiles/ires_modeling.dir/modeling/model_selection.cc.o.d"
  "CMakeFiles/ires_modeling.dir/modeling/neural.cc.o"
  "CMakeFiles/ires_modeling.dir/modeling/neural.cc.o.d"
  "CMakeFiles/ires_modeling.dir/modeling/refinement.cc.o"
  "CMakeFiles/ires_modeling.dir/modeling/refinement.cc.o.d"
  "CMakeFiles/ires_modeling.dir/modeling/tree_models.cc.o"
  "CMakeFiles/ires_modeling.dir/modeling/tree_models.cc.o.d"
  "libires_modeling.a"
  "libires_modeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_modeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
