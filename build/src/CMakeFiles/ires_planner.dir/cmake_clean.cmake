file(REMOVE_RECURSE
  "CMakeFiles/ires_planner.dir/planner/dp_planner.cc.o"
  "CMakeFiles/ires_planner.dir/planner/dp_planner.cc.o.d"
  "CMakeFiles/ires_planner.dir/planner/execution_plan.cc.o"
  "CMakeFiles/ires_planner.dir/planner/execution_plan.cc.o.d"
  "CMakeFiles/ires_planner.dir/planner/materialization_report.cc.o"
  "CMakeFiles/ires_planner.dir/planner/materialization_report.cc.o.d"
  "CMakeFiles/ires_planner.dir/planner/pareto_planner.cc.o"
  "CMakeFiles/ires_planner.dir/planner/pareto_planner.cc.o.d"
  "CMakeFiles/ires_planner.dir/planner/planner_common.cc.o"
  "CMakeFiles/ires_planner.dir/planner/planner_common.cc.o.d"
  "libires_planner.a"
  "libires_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
