# Empty compiler generated dependencies file for ires_planner.
# This may be replaced when dependencies are built.
