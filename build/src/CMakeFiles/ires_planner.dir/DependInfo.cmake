
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planner/dp_planner.cc" "src/CMakeFiles/ires_planner.dir/planner/dp_planner.cc.o" "gcc" "src/CMakeFiles/ires_planner.dir/planner/dp_planner.cc.o.d"
  "/root/repo/src/planner/execution_plan.cc" "src/CMakeFiles/ires_planner.dir/planner/execution_plan.cc.o" "gcc" "src/CMakeFiles/ires_planner.dir/planner/execution_plan.cc.o.d"
  "/root/repo/src/planner/materialization_report.cc" "src/CMakeFiles/ires_planner.dir/planner/materialization_report.cc.o" "gcc" "src/CMakeFiles/ires_planner.dir/planner/materialization_report.cc.o.d"
  "/root/repo/src/planner/pareto_planner.cc" "src/CMakeFiles/ires_planner.dir/planner/pareto_planner.cc.o" "gcc" "src/CMakeFiles/ires_planner.dir/planner/pareto_planner.cc.o.d"
  "/root/repo/src/planner/planner_common.cc" "src/CMakeFiles/ires_planner.dir/planner/planner_common.cc.o" "gcc" "src/CMakeFiles/ires_planner.dir/planner/planner_common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ires_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_modeling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_operators.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
