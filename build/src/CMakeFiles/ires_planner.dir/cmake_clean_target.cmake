file(REMOVE_RECURSE
  "libires_planner.a"
)
