file(REMOVE_RECURSE
  "libires_cluster.a"
)
