# Empty compiler generated dependencies file for ires_cluster.
# This may be replaced when dependencies are built.
