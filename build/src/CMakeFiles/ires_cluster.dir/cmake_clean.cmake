file(REMOVE_RECURSE
  "CMakeFiles/ires_cluster.dir/cluster/cluster_simulator.cc.o"
  "CMakeFiles/ires_cluster.dir/cluster/cluster_simulator.cc.o.d"
  "libires_cluster.a"
  "libires_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
