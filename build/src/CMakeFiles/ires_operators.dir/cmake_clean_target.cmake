file(REMOVE_RECURSE
  "libires_operators.a"
)
