file(REMOVE_RECURSE
  "CMakeFiles/ires_operators.dir/operators/operator.cc.o"
  "CMakeFiles/ires_operators.dir/operators/operator.cc.o.d"
  "CMakeFiles/ires_operators.dir/operators/operator_library.cc.o"
  "CMakeFiles/ires_operators.dir/operators/operator_library.cc.o.d"
  "libires_operators.a"
  "libires_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
