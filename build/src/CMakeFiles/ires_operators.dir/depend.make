# Empty dependencies file for ires_operators.
# This may be replaced when dependencies are built.
