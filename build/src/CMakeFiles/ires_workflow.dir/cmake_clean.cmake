file(REMOVE_RECURSE
  "CMakeFiles/ires_workflow.dir/workflow/workflow_graph.cc.o"
  "CMakeFiles/ires_workflow.dir/workflow/workflow_graph.cc.o.d"
  "libires_workflow.a"
  "libires_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
