file(REMOVE_RECURSE
  "libires_workflow.a"
)
