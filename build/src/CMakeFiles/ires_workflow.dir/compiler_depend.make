# Empty compiler generated dependencies file for ires_workflow.
# This may be replaced when dependencies are built.
