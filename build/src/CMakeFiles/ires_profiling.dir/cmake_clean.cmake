file(REMOVE_RECURSE
  "CMakeFiles/ires_profiling.dir/profiling/adaptive_profiler.cc.o"
  "CMakeFiles/ires_profiling.dir/profiling/adaptive_profiler.cc.o.d"
  "CMakeFiles/ires_profiling.dir/profiling/profiler.cc.o"
  "CMakeFiles/ires_profiling.dir/profiling/profiler.cc.o.d"
  "libires_profiling.a"
  "libires_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
