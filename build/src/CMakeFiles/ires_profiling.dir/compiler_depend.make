# Empty compiler generated dependencies file for ires_profiling.
# This may be replaced when dependencies are built.
