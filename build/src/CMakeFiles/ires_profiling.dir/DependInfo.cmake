
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/adaptive_profiler.cc" "src/CMakeFiles/ires_profiling.dir/profiling/adaptive_profiler.cc.o" "gcc" "src/CMakeFiles/ires_profiling.dir/profiling/adaptive_profiler.cc.o.d"
  "/root/repo/src/profiling/profiler.cc" "src/CMakeFiles/ires_profiling.dir/profiling/profiler.cc.o" "gcc" "src/CMakeFiles/ires_profiling.dir/profiling/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ires_modeling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
