file(REMOVE_RECURSE
  "libires_profiling.a"
)
