file(REMOVE_RECURSE
  "CMakeFiles/ires_workloadgen.dir/workloadgen/asap_workflows.cc.o"
  "CMakeFiles/ires_workloadgen.dir/workloadgen/asap_workflows.cc.o.d"
  "CMakeFiles/ires_workloadgen.dir/workloadgen/pegasus.cc.o"
  "CMakeFiles/ires_workloadgen.dir/workloadgen/pegasus.cc.o.d"
  "libires_workloadgen.a"
  "libires_workloadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_workloadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
