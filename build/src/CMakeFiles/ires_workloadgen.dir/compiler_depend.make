# Empty compiler generated dependencies file for ires_workloadgen.
# This may be replaced when dependencies are built.
