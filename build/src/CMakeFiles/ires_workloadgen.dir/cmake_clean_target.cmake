file(REMOVE_RECURSE
  "libires_workloadgen.a"
)
