file(REMOVE_RECURSE
  "libires_executor.a"
)
