# Empty dependencies file for ires_executor.
# This may be replaced when dependencies are built.
