file(REMOVE_RECURSE
  "CMakeFiles/ires_executor.dir/executor/enforcer.cc.o"
  "CMakeFiles/ires_executor.dir/executor/enforcer.cc.o.d"
  "CMakeFiles/ires_executor.dir/executor/execution_monitor.cc.o"
  "CMakeFiles/ires_executor.dir/executor/execution_monitor.cc.o.d"
  "CMakeFiles/ires_executor.dir/executor/recovering_executor.cc.o"
  "CMakeFiles/ires_executor.dir/executor/recovering_executor.cc.o.d"
  "CMakeFiles/ires_executor.dir/executor/trace.cc.o"
  "CMakeFiles/ires_executor.dir/executor/trace.cc.o.d"
  "libires_executor.a"
  "libires_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
