file(REMOVE_RECURSE
  "libires_core.a"
)
