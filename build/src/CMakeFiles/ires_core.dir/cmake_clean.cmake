file(REMOVE_RECURSE
  "CMakeFiles/ires_core.dir/core/ires_server.cc.o"
  "CMakeFiles/ires_core.dir/core/ires_server.cc.o.d"
  "CMakeFiles/ires_core.dir/core/model_library.cc.o"
  "CMakeFiles/ires_core.dir/core/model_library.cc.o.d"
  "CMakeFiles/ires_core.dir/core/rest_api.cc.o"
  "CMakeFiles/ires_core.dir/core/rest_api.cc.o.d"
  "libires_core.a"
  "libires_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
