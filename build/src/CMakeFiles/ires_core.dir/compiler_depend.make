# Empty compiler generated dependencies file for ires_core.
# This may be replaced when dependencies are built.
