# Empty compiler generated dependencies file for ires_engines.
# This may be replaced when dependencies are built.
