file(REMOVE_RECURSE
  "libires_engines.a"
)
