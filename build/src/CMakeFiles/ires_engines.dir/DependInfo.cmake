
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engines/data_movement.cc" "src/CMakeFiles/ires_engines.dir/engines/data_movement.cc.o" "gcc" "src/CMakeFiles/ires_engines.dir/engines/data_movement.cc.o.d"
  "/root/repo/src/engines/engine.cc" "src/CMakeFiles/ires_engines.dir/engines/engine.cc.o" "gcc" "src/CMakeFiles/ires_engines.dir/engines/engine.cc.o.d"
  "/root/repo/src/engines/engine_registry.cc" "src/CMakeFiles/ires_engines.dir/engines/engine_registry.cc.o" "gcc" "src/CMakeFiles/ires_engines.dir/engines/engine_registry.cc.o.d"
  "/root/repo/src/engines/standard_engines.cc" "src/CMakeFiles/ires_engines.dir/engines/standard_engines.cc.o" "gcc" "src/CMakeFiles/ires_engines.dir/engines/standard_engines.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ires_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_operators.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
