file(REMOVE_RECURSE
  "CMakeFiles/ires_engines.dir/engines/data_movement.cc.o"
  "CMakeFiles/ires_engines.dir/engines/data_movement.cc.o.d"
  "CMakeFiles/ires_engines.dir/engines/engine.cc.o"
  "CMakeFiles/ires_engines.dir/engines/engine.cc.o.d"
  "CMakeFiles/ires_engines.dir/engines/engine_registry.cc.o"
  "CMakeFiles/ires_engines.dir/engines/engine_registry.cc.o.d"
  "CMakeFiles/ires_engines.dir/engines/standard_engines.cc.o"
  "CMakeFiles/ires_engines.dir/engines/standard_engines.cc.o.d"
  "libires_engines.a"
  "libires_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
