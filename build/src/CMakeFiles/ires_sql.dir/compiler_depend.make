# Empty compiler generated dependencies file for ires_sql.
# This may be replaced when dependencies are built.
