file(REMOVE_RECURSE
  "libires_sql.a"
)
