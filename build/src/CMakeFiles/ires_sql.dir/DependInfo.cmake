
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/calibration.cc" "src/CMakeFiles/ires_sql.dir/sql/calibration.cc.o" "gcc" "src/CMakeFiles/ires_sql.dir/sql/calibration.cc.o.d"
  "/root/repo/src/sql/catalog.cc" "src/CMakeFiles/ires_sql.dir/sql/catalog.cc.o" "gcc" "src/CMakeFiles/ires_sql.dir/sql/catalog.cc.o.d"
  "/root/repo/src/sql/dpccp.cc" "src/CMakeFiles/ires_sql.dir/sql/dpccp.cc.o" "gcc" "src/CMakeFiles/ires_sql.dir/sql/dpccp.cc.o.d"
  "/root/repo/src/sql/musqle_optimizer.cc" "src/CMakeFiles/ires_sql.dir/sql/musqle_optimizer.cc.o" "gcc" "src/CMakeFiles/ires_sql.dir/sql/musqle_optimizer.cc.o.d"
  "/root/repo/src/sql/sql_engine.cc" "src/CMakeFiles/ires_sql.dir/sql/sql_engine.cc.o" "gcc" "src/CMakeFiles/ires_sql.dir/sql/sql_engine.cc.o.d"
  "/root/repo/src/sql/sql_parser.cc" "src/CMakeFiles/ires_sql.dir/sql/sql_parser.cc.o" "gcc" "src/CMakeFiles/ires_sql.dir/sql/sql_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ires_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_modeling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_operators.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ires_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
