file(REMOVE_RECURSE
  "CMakeFiles/ires_sql.dir/sql/calibration.cc.o"
  "CMakeFiles/ires_sql.dir/sql/calibration.cc.o.d"
  "CMakeFiles/ires_sql.dir/sql/catalog.cc.o"
  "CMakeFiles/ires_sql.dir/sql/catalog.cc.o.d"
  "CMakeFiles/ires_sql.dir/sql/dpccp.cc.o"
  "CMakeFiles/ires_sql.dir/sql/dpccp.cc.o.d"
  "CMakeFiles/ires_sql.dir/sql/musqle_optimizer.cc.o"
  "CMakeFiles/ires_sql.dir/sql/musqle_optimizer.cc.o.d"
  "CMakeFiles/ires_sql.dir/sql/sql_engine.cc.o"
  "CMakeFiles/ires_sql.dir/sql/sql_engine.cc.o.d"
  "CMakeFiles/ires_sql.dir/sql/sql_parser.cc.o"
  "CMakeFiles/ires_sql.dir/sql/sql_parser.cc.o.d"
  "libires_sql.a"
  "libires_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
