#include "threading/thread_pool.h"

#include <algorithm>

namespace ires {

ThreadPool::ThreadPool(int workers, MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    pending_gauge_ = metrics->GetGauge(
        "ires_pool_pending_tasks",
        "Tasks enqueued on the worker pool awaiting pickup.");
    wait_histogram_ = metrics->GetHistogram(
        "ires_pool_task_wait_seconds",
        "Latency from task enqueue to worker pickup.");
  }
  const int n = std::max(1, workers);
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    tasks_.push_back({std::move(task), std::chrono::steady_clock::now()});
    if (pending_gauge_ != nullptr) {
      pending_gauge_->Set(static_cast<double>(tasks_.size()));
    }
  }
  wake_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      // A second Shutdown (e.g. explicit call followed by the destructor)
      // only needs to join whatever is still running.
    }
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      if (pending_gauge_ != nullptr) {
        pending_gauge_->Set(static_cast<double>(tasks_.size()));
      }
    }
    if (wait_histogram_ != nullptr) {
      wait_histogram_->Observe(std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   task.enqueued_at)
                                   .count());
    }
    task.fn();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared between the caller and the helper tasks; heap-allocated so a
  // helper that outlives an early-returning caller path can never touch a
  // dead frame (the caller always waits, but the shared_ptr keeps the
  // invariant local and obvious).
  struct State {
    std::atomic<size_t> next{0};
    size_t n;
    std::function<void(size_t)> fn;
    std::mutex mu;
    std::condition_variable done;
    int live_helpers = 0;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->fn = fn;

  auto drain = [](State* s) {
    for (size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
         i < s->n; i = s->next.fetch_add(1, std::memory_order_relaxed)) {
      s->fn(i);
    }
  };

  const size_t helpers =
      std::min(static_cast<size_t>(pool->worker_count()), n - 1);
  int submitted = 0;
  for (size_t h = 0; h < helpers; ++h) {
    const bool ok = pool->Submit([state, drain] {
      drain(state.get());
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->live_helpers == 0) state->done.notify_all();
    });
    if (ok) ++submitted;
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->live_helpers += submitted;
  }

  drain(state.get());  // the caller works too — progress without any worker

  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] { return state->live_helpers <= 0; });
}

}  // namespace ires
