#include "threading/task_scheduler.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace ires {

namespace {

// Worker-thread identity: which scheduler (if any) owns the current thread,
// and its worker index there. Lets Enqueue push straight onto the local
// deque, and lets TaskGroup::Wait help-execute with proper attribution even
// when called from inside a task. Workers of *another* scheduler instance
// resolve to "external" for this one.
thread_local TaskScheduler* tls_scheduler = nullptr;
thread_local int tls_worker = -1;

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

namespace sched_internal {

// ---------------------------------------------------------------- WorkDeque
//
// Memory-order notes: this is the Chase–Lev deque with the fence-free
// formulation (seq_cst on the bottom-store/top-load pair in Pop and on the
// top/bottom loads in Steal) instead of standalone
// std::atomic_thread_fence — equivalent ordering, but ThreadSanitizer
// models operations on atomics precisely while it ignores free fences, so
// this version is provably clean under the CI tsan job.

WorkDeque::Ring::Ring(size_t cap)
    : capacity(cap), mask(cap - 1),
      slots(std::make_unique<std::atomic<Task*>[]>(cap)) {}

WorkDeque::WorkDeque(size_t initial_capacity) {
  auto ring = std::make_unique<Ring>(
      RoundUpPow2(std::max<size_t>(initial_capacity, 8)));
  ring_.store(ring.get(), std::memory_order_relaxed);
  retired_.push_back(std::move(ring));
}

WorkDeque::~WorkDeque() = default;

WorkDeque::Ring* WorkDeque::Grow(Ring* ring, int64_t top, int64_t bottom) {
  auto grown = std::make_unique<Ring>(ring->capacity * 2);
  for (int64_t i = top; i < bottom; ++i) grown->Put(i, ring->Get(i));
  Ring* raw = grown.get();
  // Publish before the slot at `bottom` is written; thieves that still read
  // the old ring see identical values at every live index, so a stale ring
  // pointer is harmless (and the old ring stays allocated in retired_).
  ring_.store(raw, std::memory_order_release);
  retired_.push_back(std::move(grown));
  return raw;
}

void WorkDeque::Push(Task* task) {
  const int64_t b = bottom_.load(std::memory_order_relaxed);
  const int64_t t = top_.load(std::memory_order_acquire);
  Ring* ring = ring_.load(std::memory_order_relaxed);
  if (b - t >= static_cast<int64_t>(ring->capacity) - 1) {
    ring = Grow(ring, t, b);
  }
  ring->Put(b, task);
  // Release: a thief that observes bottom > its top also observes the slot.
  bottom_.store(b + 1, std::memory_order_release);
}

Task* WorkDeque::Pop() {
  const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Ring* ring = ring_.load(std::memory_order_relaxed);
  // seq_cst store/load pair: the bottom decrement must be globally visible
  // before we read top, or a concurrent Steal of the same last element
  // could also succeed (both taking the task).
  bottom_.store(b, std::memory_order_seq_cst);
  int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {
    // Deque was empty; restore.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return nullptr;
  }
  Task* task = ring->Get(b);
  if (t == b) {
    // Single element left: race the thieves for it via CAS on top.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      task = nullptr;  // a thief won
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return task;
}

Task* WorkDeque::Steal() {
  int64_t t = top_.load(std::memory_order_seq_cst);
  const int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Ring* ring = ring_.load(std::memory_order_acquire);
  Task* task = ring->Get(t);
  // The CAS claims index t; on failure another thief (or the owner's Pop of
  // the last element) got it first.
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;
  }
  return task;
}

size_t WorkDeque::ApproxSize() const {
  const int64_t b = bottom_.load(std::memory_order_relaxed);
  const int64_t t = top_.load(std::memory_order_relaxed);
  return b > t ? static_cast<size_t>(b - t) : 0;
}

}  // namespace sched_internal

// ------------------------------------------------------------ TaskScheduler

TaskScheduler::TaskScheduler(int workers, MetricsRegistry* metrics)
    : TaskScheduler([&] {
        Options options;
        options.workers = workers;
        options.metrics = metrics;
        return options;
      }()) {}

TaskScheduler::TaskScheduler(Options options)
    : backlog_per_worker_(std::max<size_t>(options.backlog_per_worker, 1)),
      clock_(std::move(options.clock)),
      journal_(options.journal) {
  int workers = options.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 4;
  }
  if (options.metrics != nullptr) {
    MetricsRegistry& m = *options.metrics;
    steals_total_ = m.GetCounter("ires_sched_steals_total",
                                 "Successful work-steals between workers");
    parks_total_ = m.GetCounter("ires_sched_parks_total",
                                "Worker park (sleep) transitions");
    submitted_total_ =
        m.GetCounter("ires_sched_tasks_total", "Scheduler task lifecycle",
                     {{"event", "submitted"}});
    executed_total_ =
        m.GetCounter("ires_sched_tasks_total", "Scheduler task lifecycle",
                     {{"event", "executed"}});
    rejected_total_ =
        m.GetCounter("ires_sched_tasks_total", "Scheduler task lifecycle",
                     {{"event", "rejected"}});
    pending_gauge_ = m.GetGauge("ires_sched_pending_tasks",
                                "Tasks enqueued and not yet running");
    wait_seconds_ = m.GetHistogram(
        "ires_sched_task_wait_seconds",
        "Queue wait from enqueue to a worker picking the task up");
  }
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->steal_seed = 0x9e3779b97f4a7c15ull * (i + 1) + 1;
    if (options.metrics != nullptr) {
      worker->runs_total = options.metrics->GetCounter(
          "ires_sched_worker_runs_total", "Tasks executed, per worker",
          {{"worker", std::to_string(i)}});
    }
    workers_.push_back(std::move(worker));
  }
  threads_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() { Shutdown(); }

double TaskScheduler::ClockSeconds() const {
  return clock_ ? clock_() : SteadySeconds();
}

int TaskScheduler::CurrentWorkerIndex() const {
  return tls_scheduler == this ? tls_worker : -1;
}

bool TaskScheduler::Enqueue(Task* task) {
  // Shared lock vs. Shutdown's unique lock: once Shutdown returns, no
  // enqueue can still be in flight with the flag unseen, so "false" and
  // "will be drained" are exhaustive and exclusive outcomes.
  ReaderLock gate(gate_);
  if (shutting_down_.load(std::memory_order_relaxed)) return false;
  task->enqueued_at = ClockSeconds();
  ready_count_.fetch_add(1, std::memory_order_seq_cst);
  const int self = CurrentWorkerIndex();
  if (self >= 0) {
    workers_[self]->deque.Push(task);
  } else {
    MutexLock lock(inject_mu_);
    inject_.push_back(task);
  }
  if (pending_gauge_ != nullptr) pending_gauge_->Add(1.0);
  NotifyOne();
  return true;
}

void TaskScheduler::NotifyOne() {
  // seq_cst pairing with the parking protocol: the enqueuer's ready_count
  // increment and the parker's parked_ increment are both seq_cst, so either
  // the parker sees the new task on its re-check, or we see parked_ > 0 and
  // take the lock to wake it. No lost wakeup either way.
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    MutexLock lock(park_mu_);
    park_cv_.notify_one();
  }
}

TaskScheduler::Task* TaskScheduler::TryAcquire(int worker_index) {
  Task* task = nullptr;
  if (worker_index >= 0) task = workers_[worker_index]->deque.Pop();
  if (task == nullptr) {
    MutexLock lock(inject_mu_);
    if (!inject_.empty()) {
      task = inject_.front();
      inject_.pop_front();
    }
  }
  if (task == nullptr && !workers_.empty()) {
    // Steal sweep: one full pass over the other workers starting from a
    // per-thread pseudo-random offset (xorshift), so thieves spread out.
    thread_local uint64_t steal_rng = 0x2545f4914f6cdd1dull;
    steal_rng ^= steal_rng << 13;
    steal_rng ^= steal_rng >> 7;
    steal_rng ^= steal_rng << 17;
    const size_t n = workers_.size();
    const size_t start = static_cast<size_t>(steal_rng % n);
    for (size_t i = 0; i < n && task == nullptr; ++i) {
      const size_t victim = (start + i) % n;
      if (static_cast<int>(victim) == worker_index) continue;
      task = workers_[victim]->deque.Steal();
    }
    if (task != nullptr) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      if (steals_total_ != nullptr) steals_total_->Increment();
    }
  }
  if (task != nullptr) {
    ready_count_.fetch_sub(1, std::memory_order_seq_cst);
    if (pending_gauge_ != nullptr) pending_gauge_->Add(-1.0);
  }
  return task;
}

void TaskScheduler::Execute(Task* task, int worker_index) {
  if (wait_seconds_ != nullptr) {
    const double wait = ClockSeconds() - task->enqueued_at;
    wait_seconds_->Observe(wait > 0.0 ? wait : 0.0);
  }
  const bool span = journal_ != nullptr && journal_->enabled() &&
                    !task->label.empty();
  const double started = span ? SteadySeconds() : 0.0;
  task->fn();
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (executed_total_ != nullptr) executed_total_->Increment();
  if (worker_index >= 0) {
    Worker& worker = *workers_[worker_index];
    worker.runs.fetch_add(1, std::memory_order_relaxed);
    if (worker.runs_total != nullptr) worker.runs_total->Increment();
  }
  if (span) {
    JournalEvent event;
    event.kind = EventKind::kTaskSpan;
    event.value = SteadySeconds() - started;
    event.detail = task->label;
    journal_->Append(std::move(event));
  }
  // Fire successors before settling the group: outstanding_ still counts
  // them, so the group cannot be destroyed under us either way, but this
  // order gets ready work onto the deques before any waiter wakes.
  TaskGroup* group = task->group;
  for (Task* successor : task->successors) {
    if (successor->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      group->Dispatch(successor);
    }
  }
  const bool detached = task->detached;
  if (detached) delete task;
  if (group != nullptr) group->OnTaskFinished();
}

void TaskScheduler::WorkerLoop(int index) {
  tls_scheduler = this;
  tls_worker = index;
  for (;;) {
    Task* task = TryAcquire(index);
    if (task != nullptr) {
      Execute(task, index);
      continue;
    }
    if (shutting_down_.load(std::memory_order_acquire) &&
        ready_count_.load(std::memory_order_seq_cst) == 0) {
      break;
    }
    // Park. The seq_cst parked_ increment happens-before the ready_count
    // re-check; see NotifyOne for the pairing. The timed wait is
    // belt-and-suspenders against any missed signal (worst case: one 50ms
    // hiccup, not a hang). condition_variable_any waits directly on the
    // ires::Mutex, so the rank registry tracks the release/reacquire
    // inside wait_for.
    MutexLock lock(park_mu_);
    parked_.fetch_add(1, std::memory_order_seq_cst);
    if (ready_count_.load(std::memory_order_seq_cst) == 0 &&
        !shutting_down_.load(std::memory_order_acquire)) {
      parks_.fetch_add(1, std::memory_order_relaxed);
      if (parks_total_ != nullptr) parks_total_->Increment();
      park_cv_.wait_for(park_mu_, std::chrono::milliseconds(50));
    }
    parked_.fetch_sub(1, std::memory_order_seq_cst);
  }
  tls_scheduler = nullptr;
  tls_worker = -1;
}

bool TaskScheduler::Submit(std::function<void()> fn,
                           const std::string& label) {
  Task* task = new Task();
  task->fn = std::move(fn);
  task->detached = true;
  task->label = label;
  if (!Enqueue(task)) {
    delete task;
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (rejected_total_ != nullptr) rejected_total_->Increment();
    if (journal_ != nullptr) {
      JournalEvent event;
      event.kind = EventKind::kTaskRejected;
      event.code = "shutdown";
      event.detail = label;
      journal_->Append(std::move(event));
    }
    return false;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (submitted_total_ != nullptr) submitted_total_->Increment();
  return true;
}

void TaskScheduler::Shutdown() {
  {
    // A second caller sees exchange(true) return true but still waits for
    // the joins below (idempotent, and the destructor must not return
    // while threads run).
    WriterLock gate(gate_);
    shutting_down_.exchange(true);
  }
  {
    // Taken so a parker between its re-check and wait cannot miss the wake.
    MutexLock lock(park_mu_);
    park_cv_.notify_all();
  }
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

size_t TaskScheduler::pending() const {
  const int64_t n = ready_count_.load(std::memory_order_relaxed);
  return n > 0 ? static_cast<size_t>(n) : 0;
}

TaskScheduler::Stats TaskScheduler::stats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.parks = parks_.load(std::memory_order_relaxed);
  stats.worker_runs.reserve(workers_.size());
  for (const auto& worker : workers_) {
    stats.worker_runs.push_back(worker->runs.load(std::memory_order_relaxed));
  }
  return stats;
}

double TaskScheduler::BacklogSeconds() {
  const size_t depth = pending();
  const size_t threshold = workers_.size() * backlog_per_worker_;
  MutexLock lock(backlog_mu_);
  if (depth <= threshold) {
    backlog_since_ = -1.0;
    return 0.0;
  }
  const double now = ClockSeconds();
  if (backlog_since_ < 0.0) backlog_since_ = now;
  return now - backlog_since_;
}

// ---------------------------------------------------------------- TaskGroup

TaskGroup::TaskGroup(TaskScheduler* scheduler) : scheduler_(scheduler) {}

TaskGroup::~TaskGroup() { Wait(); }

TaskGroup::TaskId TaskGroup::Defer(std::function<void()> fn,
                                   const std::string& label) {
  assert(!launched_ && "Defer after Launch");
  auto task = std::make_unique<Task>();
  task->fn = std::move(fn);
  task->group = this;
  task->label = label;
  tasks_.push_back(std::move(task));
  return static_cast<TaskId>(tasks_.size()) - 1;
}

void TaskGroup::DependsOn(TaskId task, TaskId prerequisite) {
  assert(!launched_ && "DependsOn after Launch");
  assert(task != prerequisite);
  tasks_[prerequisite]->successors.push_back(tasks_[task].get());
  tasks_[task]->prerequisites += 1;
  tasks_[task]->pending.fetch_add(1, std::memory_order_relaxed);
}

void TaskGroup::Launch() {
  assert(!launched_ && "Launch called twice");
  launched_ = true;
  // Count everything before dispatching anything, or a fast worker could
  // drive outstanding_ through zero while roots are still being enqueued.
  outstanding_.fetch_add(static_cast<int64_t>(tasks_.size()),
                         std::memory_order_acq_rel);
  for (const auto& task : tasks_) {
    // Roots by *static* in-degree. Reading the live pending counter here
    // would race already-dispatched predecessors driving a successor's
    // count to zero mid-loop and dispatch that task twice.
    if (task->prerequisites == 0) {
      Dispatch(task.get());
    }
  }
}

void TaskGroup::Run(std::function<void()> fn, const std::string& label) {
  auto task = std::make_unique<Task>();
  task->fn = std::move(fn);
  task->group = this;
  task->label = label;
  Task* raw = task.get();
  {
    MutexLock lock(done_mu_);
    tasks_.push_back(std::move(task));
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  Dispatch(raw);
}

void TaskGroup::Dispatch(Task* task) {
  if (scheduler_ == nullptr || !scheduler_->Enqueue(task)) {
    PushInline(task);
  }
}

void TaskGroup::PushInline(Task* task) {
  MutexLock lock(done_mu_);
  inline_ready_.push_back(task);
  done_cv_.notify_all();
}

TaskGroup::Task* TaskGroup::PopInline() {
  MutexLock lock(done_mu_);
  if (inline_ready_.empty()) return nullptr;
  Task* task = inline_ready_.front();
  inline_ready_.pop_front();
  return task;
}

void TaskGroup::ExecuteInline(Task* task) {
  task->fn();
  for (Task* successor : task->successors) {
    if (successor->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Dispatch(successor);
    }
  }
  OnTaskFinished();
}

void TaskGroup::OnTaskFinished() {
  // The decrement happens under done_mu_ and Wait only *returns* while
  // holding done_mu_ after observing zero — so a waiter that sees the group
  // finished also knows this (last) finisher has released the mutex and
  // will never touch the group again. Without that pairing, Wait could
  // return (and the group be destroyed) while the finisher is still inside
  // the notify, a use-after-free on done_mu_.
  MutexLock lock(done_mu_);
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    done_cv_.notify_all();
  }
}

void TaskGroup::Wait() {
  for (;;) {
    if (outstanding_.load(std::memory_order_acquire) == 0) {
      // Lock-synchronized re-check; see OnTaskFinished.
      MutexLock lock(done_mu_);
      if (outstanding_.load(std::memory_order_acquire) == 0) return;
      continue;
    }
    // Help: our own refused/inline tasks first (they exist nowhere else),
    // then anything runnable in the scheduler — possibly tasks of an
    // unrelated group. This is why scheduler tasks must not block
    // indefinitely (the substrate contract, see the class comment): a
    // helper runs whatever it acquires, and a task that parks forever
    // would wedge the waiter with it.
    Task* task = PopInline();
    if (task != nullptr) {
      if (scheduler_ != nullptr) {
        scheduler_->Execute(task, scheduler_->CurrentWorkerIndex());
      } else {
        ExecuteInline(task);
      }
      continue;
    }
    if (scheduler_ != nullptr) {
      task = scheduler_->TryAcquire(scheduler_->CurrentWorkerIndex());
      if (task != nullptr) {
        scheduler_->Execute(task, scheduler_->CurrentWorkerIndex());
        continue;
      }
    }
    MutexLock lock(done_mu_);
    if (outstanding_.load(std::memory_order_acquire) == 0) return;
    if (!inline_ready_.empty()) continue;
    // Short timed wait: our remaining tasks are running on workers (or
    // queued behind other groups' work we cannot see from here) — re-poll
    // rather than risk a missed notify during heavy churn.
    done_cv_.wait_for(done_mu_, std::chrono::milliseconds(1));
  }
}

// -------------------------------------------------------------- ParallelFor

void ParallelFor(TaskScheduler* scheduler, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (scheduler == nullptr || n == 1 || scheduler->worker_count() == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Indices are claimed from one shared counter by the helpers and the
  // caller, so results depend only on the index each claim returns — writes
  // keyed by index are bit-identical to a serial run no matter how the
  // claims interleave. The caller always drains too: even with zero helpers
  // running (workers busy, or scheduler shut down and every helper refused
  // onto the inline list), the loop completes on this thread.
  std::atomic<size_t> next{0};
  auto drain = [&next, &fn, n] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  const size_t helpers =
      std::min<size_t>(static_cast<size_t>(scheduler->worker_count()), n - 1);
  TaskGroup group(scheduler);
  for (size_t h = 0; h < helpers; ++h) group.Run(drain);
  drain();
  group.Wait();
}

}  // namespace ires
