#ifndef IRES_THREADING_THREAD_POOL_H_
#define IRES_THREADING_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/metrics_registry.h"

namespace ires {

/// Fixed-size worker pool backing the job service. Tasks are plain
/// callables drained FIFO by `workers` threads; admission control (bounded
/// queues, rejection) is the caller's responsibility — the pool itself
/// never blocks a submitter.
///
/// When constructed with a MetricsRegistry, the pool publishes
/// `ires_pool_pending_tasks` (queue depth) and observes each task's
/// enqueue→pickup latency into `ires_pool_task_wait_seconds`.
class ThreadPool {
 public:
  explicit ThreadPool(int workers, MetricsRegistry* metrics = nullptr);

  /// Joins all workers. Tasks already queued are still drained; Submit
  /// after (or during) destruction is a caller bug.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Returns false when the
  /// pool is shutting down (the task is dropped).
  bool Submit(std::function<void()> task);

  /// Stops accepting tasks, drains the queue and joins the workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  int worker_count() const { return static_cast<int>(threads_.size()); }

  /// Tasks queued but not yet picked up by a worker.
  size_t pending() const;

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::deque<QueuedTask> tasks_;
  std::vector<std::thread> threads_;
  bool shutting_down_ = false;
  Gauge* pending_gauge_ = nullptr;          // null when unmetered
  Histogram* wait_histogram_ = nullptr;
};

/// Runs `fn(0) .. fn(n-1)` across `pool`, blocking until every index has
/// finished. Indices are claimed from a shared atomic counter by up to
/// worker_count helper tasks plus the calling thread, so the call makes
/// progress (degrading to serial on the caller) even when every pool worker
/// is busy or the pool is shutting down — it can never deadlock on itself.
/// A null pool runs everything inline.
///
/// `fn` is invoked concurrently and must be thread-safe; writes keyed by
/// index keep results deterministic regardless of scheduling.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace ires

#endif  // IRES_THREADING_THREAD_POOL_H_
