#ifndef IRES_THREADING_TASK_SCHEDULER_H_
#define IRES_THREADING_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "telemetry/event_journal.h"
#include "telemetry/metrics_registry.h"

namespace ires {

class TaskScheduler;
class TaskGroup;

namespace sched_internal {

struct Task;

/// Chase–Lev work-stealing deque of Task pointers (Chase & Lev, SPAA'05;
/// memory orders per Lê et al., PPoPP'13). The owning worker pushes and pops
/// at the bottom (LIFO — the hot task is cache-warm), thieves take from the
/// top (FIFO — they get the oldest, largest-granularity work). Push/Pop are
/// owner-only; Steal is safe from any thread. The backing ring grows on
/// demand; retired rings are kept alive until destruction so a concurrent
/// thief can never read through a freed array.
class WorkDeque {
 public:
  explicit WorkDeque(size_t initial_capacity = 256);
  ~WorkDeque();

  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  // The deque is the analysis boundary of the thread-safety sweep: it is
  // lock-free (no capability to annotate), and its correctness rests on the
  // Chase–Lev ownership protocol — owner-only Push/Pop at the bottom,
  // CAS-claimed Steal at the top, memory orders per Lê et al. (PPoPP'13),
  // see the proof notes in task_scheduler.cc — not on any mutex the
  // analysis could check. NO_THREAD_SAFETY_ANALYSIS marks that boundary
  // explicitly rather than leaving the methods silently unchecked.

  /// Owner only: push one task at the bottom.
  void Push(Task* task) NO_THREAD_SAFETY_ANALYSIS;
  /// Owner only: pop the most recently pushed task; null when empty.
  Task* Pop() NO_THREAD_SAFETY_ANALYSIS;
  /// Any thread: take the oldest task; null when empty or lost a race.
  Task* Steal() NO_THREAD_SAFETY_ANALYSIS;

  /// Approximate (racy) size — telemetry only.
  size_t ApproxSize() const;

 private:
  struct Ring {
    explicit Ring(size_t capacity);
    const size_t capacity;  // power of two
    const size_t mask;
    std::unique_ptr<std::atomic<Task*>[]> slots;

    Task* Get(int64_t index) const {
      return slots[static_cast<size_t>(index) & mask].load(
          std::memory_order_relaxed);
    }
    void Put(int64_t index, Task* task) {
      slots[static_cast<size_t>(index) & mask].store(
          task, std::memory_order_relaxed);
    }
  };

  Ring* Grow(Ring* ring, int64_t top, int64_t bottom);

  std::atomic<int64_t> top_{0};     // next index thieves take from
  std::atomic<int64_t> bottom_{0};  // next index the owner pushes at
  std::atomic<Ring*> ring_;
  // Retired rings, freed at destruction (owner-only mutation under push).
  std::vector<std::unique_ptr<Ring>> retired_;
};

/// One schedulable node. Graph tasks are owned by their TaskGroup; detached
/// tasks (TaskScheduler::Submit) own themselves and are deleted after
/// running.
struct Task {
  std::function<void()> fn;
  /// Predecessors not yet finished; the task becomes runnable when this
  /// reaches zero. Counts down at runtime — dispatch decisions at Launch
  /// must use `prerequisites` (the static in-degree), because a fast
  /// predecessor can drive this to zero while Launch is still iterating,
  /// and reading it there would double-dispatch the task.
  std::atomic<int> pending{0};
  /// Static in-degree, fixed before Launch. Zero = root task.
  int prerequisites = 0;
  std::vector<Task*> successors;
  TaskGroup* group = nullptr;  // null for detached tasks
  bool detached = false;
  /// Non-empty labels get a flight-recorder task span on completion.
  std::string label;
  double enqueued_at = 0.0;  // steady seconds at ready time
};

}  // namespace sched_internal

/// The shared execution substrate of the serving stack: a work-stealing
/// task scheduler with one Chase–Lev deque per worker, dependency-counted
/// task nodes and a caller-helps wait primitive (TaskGroup). Planner
/// fan-outs, job execution, SQL optimization and provisioning all run here
/// instead of fighting over per-subsystem pools — a blocked waiter executes
/// tasks instead of sleeping, so the substrate is work-conserving under any
/// mix of workloads.
///
/// Scheduling policy: a worker pops its own deque LIFO (locality), then
/// drains the external injection queue, then steals FIFO from a random
/// victim. Workers that find nothing park on a condition variable and are
/// woken by the next enqueue. External threads (REST handlers, tests,
/// benchmark drivers) submit through a mutex-guarded injection queue and
/// help-execute when they wait on a TaskGroup.
///
/// Substrate contract: tasks must not block indefinitely. A waiting thread
/// helps by running whatever it acquires — including tasks of unrelated
/// groups — so a task that parks forever wedges its helper too. Bounded
/// waits (a job step simulating I/O) are fine; open-ended ones belong on a
/// dedicated thread, not the scheduler.
///
/// Shutdown semantics: Shutdown() stops admission *deterministically* —
/// every Submit after it returns false and journals a `task_rejected`
/// event; tasks already queued are drained by the workers before they
/// join (nothing is silently dropped, fixing the old ThreadPool window
/// where Submit during the drain dropped tasks while workers still ran).
/// TaskGroup work is never lost even across Shutdown: refused group tasks
/// fall back to an inline list their waiter executes.
///
/// Telemetry (when built with a MetricsRegistry):
///   ires_sched_steals_total        successful steals
///   ires_sched_parks_total         worker park (sleep) transitions
///   ires_sched_tasks_total{event=submitted|executed|rejected}
///   ires_sched_pending_tasks       tasks queued, not yet running
///   ires_sched_task_wait_seconds   enqueue-to-pickup queue wait histogram
///   ires_sched_worker_runs_total{worker=...}  per-worker executed tasks
/// With an EventJournal, labelled tasks emit `task_span` events (value =
/// run seconds) and refused submissions emit `task_rejected`.
class TaskScheduler {
 public:
  struct Options {
    /// Worker threads; <=0 uses std::thread::hardware_concurrency().
    int workers = 0;
    MetricsRegistry* metrics = nullptr;
    EventJournal* journal = nullptr;
    /// Injectable wall clock (seconds) for the backlog/saturation tracker;
    /// null uses steady_clock. Tests march a fake clock forward.
    std::function<double()> clock;
    /// Queue depth above workers*backlog_per_worker arms the backlog
    /// timer that /apiv1/healthz reads (see BacklogSeconds).
    size_t backlog_per_worker = 4;
  };

  explicit TaskScheduler(int workers, MetricsRegistry* metrics = nullptr);
  explicit TaskScheduler(Options options);

  /// Shuts down: drains queued tasks, joins workers.
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Enqueues a detached fire-and-forget task. Returns false — always, and
  /// only, after Shutdown() has been called — in which case the task is not
  /// run and a `task_rejected` journal event records the drop. A non-empty
  /// `label` opts the task into flight-recorder span events.
  bool Submit(std::function<void()> fn, const std::string& label = "");

  /// Stops admission, drains every queued task and joins the workers.
  /// Idempotent; called by the destructor.
  void Shutdown() EXCLUDES(gate_, park_mu_);

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Tasks enqueued (deques + injection queue) and not yet picked up.
  /// Approximate under concurrency — telemetry and saturation only.
  size_t pending() const;

  struct Stats {
    uint64_t submitted = 0;
    uint64_t executed = 0;
    uint64_t rejected = 0;
    uint64_t steals = 0;
    uint64_t parks = 0;
    std::vector<uint64_t> worker_runs;  // executed per worker
  };
  Stats stats() const;

  /// Sustained seconds the queue depth has exceeded
  /// workers*backlog_per_worker, measured across calls with the injected
  /// clock (poll-driven: healthz calls it on every scrape). Returns 0 and
  /// re-arms whenever the backlog clears — the saturation signal behind
  /// /apiv1/healthz "degraded".
  double BacklogSeconds() EXCLUDES(backlog_mu_);

 private:
  friend class TaskGroup;
  using Task = sched_internal::Task;

  struct Worker {
    sched_internal::WorkDeque deque;
    std::atomic<uint64_t> runs{0};
    Counter* runs_total = nullptr;
    uint64_t steal_seed = 0;
  };

  void WorkerLoop(int index);
  /// Enqueues a ready task: own deque on a worker thread, injection queue
  /// otherwise. Returns false (task untouched) after Shutdown.
  bool Enqueue(Task* task) EXCLUDES(gate_, inject_mu_, park_mu_);
  /// Dequeues one task for `worker_index` (own pop → inject → steal), or
  /// for an external helper (worker_index < 0: inject → steal).
  Task* TryAcquire(int worker_index) EXCLUDES(inject_mu_);
  /// Runs a task, fires successors, settles group/detached accounting.
  void Execute(Task* task, int worker_index);
  void NotifyOne() EXCLUDES(park_mu_);
  double ClockSeconds() const;
  /// This thread's worker index in *this* scheduler, or -1 (external
  /// helper — including workers of a different scheduler instance).
  int CurrentWorkerIndex() const;

  const size_t backlog_per_worker_;
  std::function<double()> clock_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  /// Submitters hold shared, Shutdown holds unique while flipping the
  /// flag — so "Submit returns false" and "the task will be drained" are
  /// mutually exclusive with no in-between window (the old ThreadPool
  /// dropped tasks submitted during its drain).
  SharedMutex gate_{LockRank::kSchedulerGate, "sched.gate"};
  std::atomic<bool> shutting_down_{false};
  /// Tasks enqueued anywhere, not yet dequeued. Parking and drain gate on
  /// this, so enqueue/dequeue keep it exactly consistent.
  std::atomic<int64_t> ready_count_{0};

  mutable Mutex inject_mu_{LockRank::kSchedulerInject, "sched.inject"};
  std::deque<Task*> inject_ GUARDED_BY(inject_mu_);

  Mutex park_mu_{LockRank::kSchedulerPark, "sched.park"};
  std::condition_variable_any park_cv_;
  std::atomic<int> parked_{0};

  Mutex backlog_mu_{LockRank::kSchedulerBacklog, "sched.backlog"};
  double backlog_since_ GUARDED_BY(backlog_mu_) = -1.0;

  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> parks_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};

  EventJournal* journal_ = nullptr;
  Counter* steals_total_ = nullptr;
  Counter* parks_total_ = nullptr;
  Counter* submitted_total_ = nullptr;
  Counter* executed_total_ = nullptr;
  Counter* rejected_total_ = nullptr;
  Gauge* pending_gauge_ = nullptr;
  Histogram* wait_seconds_ = nullptr;
};

/// A batch of tasks with optional dependency edges, waited on as a unit.
/// The waiting caller *helps*: instead of sleeping it executes tasks —
/// its own group's refused/inline tasks first, then anything runnable in
/// the scheduler — so a caller blocked in Wait can never deadlock the
/// substrate, and Wait() makes progress even when every worker is busy or
/// the scheduler has shut down. Reentrant: a task may itself create a
/// TaskGroup and Wait on it.
///
/// Usage (graph):
///   TaskGroup group(&scheduler);
///   auto a = group.Defer(fa); auto b = group.Defer(fb);
///   auto d = group.Defer(fd);
///   group.DependsOn(d, a); group.DependsOn(d, b);
///   group.Launch();
///   group.Wait();
/// Usage (flat): group.Run(fn) any number of times, then Wait().
class TaskGroup {
 public:
  using TaskId = int;

  /// A null scheduler degrades gracefully: every task lands on the inline
  /// list and Wait() runs them on the caller in dependency order (queued,
  /// not recursed — a 100k-node chain cannot overflow the stack).
  explicit TaskGroup(TaskScheduler* scheduler);

  /// Waits for all tasks; never throws.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Creates a dependency-counted node (not yet runnable). Only valid
  /// before Launch().
  TaskId Defer(std::function<void()> fn, const std::string& label = "");

  /// Declares that `task` runs only after `prerequisite` finished. Only
  /// valid before Launch().
  void DependsOn(TaskId task, TaskId prerequisite);

  /// Freezes the graph and enqueues every task with no pending
  /// prerequisites. Call at most once.
  void Launch();

  /// Submits one independent task (usable before or after Launch, and for
  /// plain fan-out without Defer/Launch).
  void Run(std::function<void()> fn, const std::string& label = "")
      EXCLUDES(done_mu_);

  /// Blocks until every task in the group has finished, executing tasks
  /// (help) instead of sleeping whenever any are runnable. Reentrant.
  /// Never call Wait (or ParallelFor) while holding ANY ranked mutex: the
  /// caller helps by executing arbitrary unrelated tasks, which may
  /// acquire any rank in the table — the lock-rank registry turns such a
  /// call into a deterministic abort instead of a latent deadlock.
  void Wait() EXCLUDES(done_mu_);

  /// Tasks not yet finished (telemetry/tests).
  int64_t outstanding() const {
    return outstanding_.load(std::memory_order_acquire);
  }

 private:
  friend class TaskScheduler;
  using Task = sched_internal::Task;

  /// Called by the scheduler (or inline execution) when one task finishes.
  void OnTaskFinished() EXCLUDES(done_mu_);
  /// Fallback for tasks the scheduler refused (shutdown) — the waiter runs
  /// them inline, preserving the no-work-lost guarantee.
  void PushInline(Task* task) EXCLUDES(done_mu_);
  Task* PopInline() EXCLUDES(done_mu_);
  /// Routes a ready task to the scheduler or the inline list.
  void Dispatch(Task* task);
  /// Runs a task on the caller without a scheduler (null-scheduler groups).
  void ExecuteInline(Task* task);

  TaskScheduler* scheduler_;
  /// Not GUARDED_BY(done_mu_): Defer/DependsOn/Launch run in the owner's
  /// single-threaded setup phase by contract (asserted via launched_);
  /// after Launch only Run appends, and it does lock done_mu_ because it
  /// may race the scheduler's Execute reading task pointers.
  std::vector<std::unique_ptr<Task>> tasks_;
  bool launched_ = false;
  std::atomic<int64_t> outstanding_{0};
  Mutex done_mu_{LockRank::kTaskGroup, "sched.group"};
  std::condition_variable_any done_cv_;
  std::deque<Task*> inline_ready_ GUARDED_BY(done_mu_);
};

/// Runs `fn(0) .. fn(n-1)` across the scheduler, blocking until every index
/// has finished — a thin shim over a TaskGroup. Indices are claimed from a
/// shared atomic counter by up to worker_count helper tasks plus the calling
/// thread, so the call makes progress (degrading to serial on the caller)
/// even when every worker is busy or the scheduler has shut down — it can
/// never deadlock on itself. A null scheduler runs everything inline.
///
/// `fn` is invoked concurrently and must be thread-safe; writes keyed by
/// index keep results deterministic (bit-identical to a serial run)
/// regardless of scheduling.
void ParallelFor(TaskScheduler* scheduler, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace ires

#endif  // IRES_THREADING_TASK_SCHEDULER_H_
