#ifndef IRES_CORE_MODEL_LIBRARY_H_
#define IRES_CORE_MODEL_LIBRARY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engines/engine.h"
#include "modeling/refinement.h"

namespace ires {

/// The IReS model library (deliverable §2: "the models are stored and
/// updated in an IReS library"): for every (operator algorithm, engine)
/// pair it keeps one online-refined estimator per profiled metric —
/// execution time, output size and output cardinality — and persists the
/// underlying profiling samples across server restarts.
///
/// Thread safety: the pair map is guarded by a library-level mutex
/// (kModelLibraryMap), and every OperatorModels carries its own mutex
/// (kModelLibraryPair) so that refinement from N concurrent jobs
/// serializes per (algorithm, engine) while distinct pairs refine in
/// parallel. Callers touching the estimators directly must hold that
/// per-pair mutex (ObserveRun and the model-based cost estimator do).
/// SaveToDirectory nests map -> pair, which is the blessed direction
/// (kModelLibraryMap < kModelLibraryPair).
class ModelLibrary {
 public:
  /// The per-(operator, engine) metric estimators.
  struct OperatorModels {
    /// Serializes refits/predictions on this pair across jobs. All pair
    /// mutexes share kModelLibraryPair: no code path ever holds two pairs
    /// at once (each job run touches exactly one (algorithm, engine)).
    mutable Mutex mu{LockRank::kModelLibraryPair, "models.pair"};
    OnlineEstimator exec_time GUARDED_BY(mu);
    OnlineEstimator output_bytes GUARDED_BY(mu);
    OnlineEstimator output_records GUARDED_BY(mu);
  };

  ModelLibrary() = default;
  ModelLibrary(const ModelLibrary&) = delete;
  ModelLibrary& operator=(const ModelLibrary&) = delete;

  /// The models for one pair, created on first use.
  OperatorModels* Get(const std::string& algorithm,
                      const std::string& engine) EXCLUDES(map_mu_);
  const OperatorModels* Find(const std::string& algorithm,
                             const std::string& engine) const
      EXCLUDES(map_mu_);

  /// Feeds one observed run into all metric estimators (serialized per
  /// pair) and bumps version(). Returns the exec-time estimator's
  /// pre-absorption relative error — the refinement-error signal the
  /// telemetry layer tracks per (algorithm, engine).
  double ObserveRun(const std::string& algorithm, const std::string& engine,
                    const OperatorRunRequest& request, double actual_seconds,
                    double output_bytes, double output_records)
      EXCLUDES(map_mu_);

  size_t size() const EXCLUDES(map_mu_);

  /// Monotonic counter bumped by every observation/import; part of the
  /// plan-cache key so refined models invalidate cached plans.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Persists every estimator's sample window as CSV files
  /// (`<dir>/<algorithm>__<engine>.<metric>.csv`, one `target,f0,f1,...`
  /// row per sample). Overwrites existing files.
  Status SaveToDirectory(const std::string& dir) const EXCLUDES(map_mu_);

  /// Loads every CSV produced by SaveToDirectory and refits the estimators.
  Status LoadFromDirectory(const std::string& dir) EXCLUDES(map_mu_);

 private:
  /// Guards models_ (the map, not the estimators behind the pointers).
  mutable Mutex map_mu_{LockRank::kModelLibraryMap, "models.map"};
  std::atomic<uint64_t> version_{0};
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<OperatorModels>>
      models_ GUARDED_BY(map_mu_);
};

}  // namespace ires

#endif  // IRES_CORE_MODEL_LIBRARY_H_
