#ifndef IRES_CORE_MODEL_LIBRARY_H_
#define IRES_CORE_MODEL_LIBRARY_H_

#include <map>
#include <memory>
#include <string>

#include "engines/engine.h"
#include "modeling/refinement.h"

namespace ires {

/// The IReS model library (deliverable §2: "the models are stored and
/// updated in an IReS library"): for every (operator algorithm, engine)
/// pair it keeps one online-refined estimator per profiled metric —
/// execution time, output size and output cardinality — and persists the
/// underlying profiling samples across server restarts.
class ModelLibrary {
 public:
  /// The per-(operator, engine) metric estimators.
  struct OperatorModels {
    OnlineEstimator exec_time;
    OnlineEstimator output_bytes;
    OnlineEstimator output_records;
  };

  ModelLibrary() = default;
  ModelLibrary(const ModelLibrary&) = delete;
  ModelLibrary& operator=(const ModelLibrary&) = delete;

  /// The models for one pair, created on first use.
  OperatorModels* Get(const std::string& algorithm,
                      const std::string& engine);
  const OperatorModels* Find(const std::string& algorithm,
                             const std::string& engine) const;

  /// Feeds one observed run into all metric estimators.
  void ObserveRun(const std::string& algorithm, const std::string& engine,
                  const OperatorRunRequest& request, double actual_seconds,
                  double output_bytes, double output_records);

  size_t size() const { return models_.size(); }

  /// Persists every estimator's sample window as CSV files
  /// (`<dir>/<algorithm>__<engine>.<metric>.csv`, one `target,f0,f1,...`
  /// row per sample). Overwrites existing files.
  Status SaveToDirectory(const std::string& dir) const;

  /// Loads every CSV produced by SaveToDirectory and refits the estimators.
  Status LoadFromDirectory(const std::string& dir);

 private:
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<OperatorModels>>
      models_;
};

}  // namespace ires

#endif  // IRES_CORE_MODEL_LIBRARY_H_
