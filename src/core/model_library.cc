#include "core/model_library.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "profiling/profiler.h"

namespace ires {

namespace {

constexpr const char* kMetricNames[] = {"execTime", "outputBytes",
                                        "outputRecords"};

OnlineEstimator* MetricEstimator(ModelLibrary::OperatorModels* models,
                                 int metric) REQUIRES(models->mu) {
  switch (metric) {
    case 0: return &models->exec_time;
    case 1: return &models->output_bytes;
    default: return &models->output_records;
  }
}

}  // namespace

ModelLibrary::OperatorModels* ModelLibrary::Get(const std::string& algorithm,
                                                const std::string& engine) {
  MutexLock lock(map_mu_);
  auto key = std::make_pair(algorithm, engine);
  auto it = models_.find(key);
  if (it == models_.end()) {
    it = models_.emplace(key, std::make_unique<OperatorModels>()).first;
  }
  // unique_ptr storage keeps the pointer stable across later insertions.
  return it->second.get();
}

const ModelLibrary::OperatorModels* ModelLibrary::Find(
    const std::string& algorithm, const std::string& engine) const {
  MutexLock lock(map_mu_);
  auto it = models_.find({algorithm, engine});
  return it == models_.end() ? nullptr : it->second.get();
}

double ModelLibrary::ObserveRun(const std::string& algorithm,
                                const std::string& engine,
                                const OperatorRunRequest& request,
                                double actual_seconds, double output_bytes,
                                double output_records) {
  OperatorModels* models = Get(algorithm, engine);
  const Vector features = Profiler::FeatureVector(request);
  double exec_time_error = 0.0;
  {
    MutexLock lock(models->mu);
    exec_time_error = models->exec_time.Observe(features, actual_seconds);
    models->output_bytes.Observe(features, output_bytes);
    models->output_records.Observe(features, output_records);
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return exec_time_error;
}

size_t ModelLibrary::size() const {
  MutexLock lock(map_mu_);
  return models_.size();
}

Status ModelLibrary::SaveToDirectory(const std::string& dir) const {
  namespace fs = std::filesystem;
  // Blessed nesting: map (kModelLibraryMap) -> pair (kModelLibraryPair).
  MutexLock map_lock(map_mu_);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::Internal("mkdir failed: " + dir);
  for (const auto& [key, models] : models_) {
    MutexLock lock(models->mu);
    for (int metric = 0; metric < 3; ++metric) {
      const OnlineEstimator* estimator =
          MetricEstimator(models.get(), metric);
      const auto samples = estimator->ExportSamples();
      if (samples.empty()) continue;
      const fs::path path = fs::path(dir) / (key.first + "__" + key.second +
                                             "." + kMetricNames[metric] +
                                             ".csv");
      std::ofstream out(path);
      if (!out) return Status::Internal("cannot write " + path.string());
      for (const OnlineEstimator::Sample& sample : samples) {
        out << sample.target;
        for (double f : sample.features) out << ',' << f;
        out << '\n';
      }
    }
  }
  return Status::OK();
}

Status ModelLibrary::LoadFromDirectory(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::exists(dir)) return Status::NotFound("model directory: " + dir);
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string filename = entry.path().filename().string();
    if (!EndsWith(filename, ".csv")) continue;
    // <algorithm>__<engine>.<metric>.csv
    const size_t sep = filename.find("__");
    if (sep == std::string::npos) continue;
    const std::string stem = filename.substr(0, filename.size() - 4);
    const size_t metric_dot = stem.rfind('.');
    if (metric_dot == std::string::npos || metric_dot < sep) continue;
    const std::string algorithm = stem.substr(0, sep);
    const std::string engine = stem.substr(sep + 2, metric_dot - sep - 2);
    const std::string metric_name = stem.substr(metric_dot + 1);
    int metric = -1;
    for (int m = 0; m < 3; ++m) {
      if (metric_name == kMetricNames[m]) metric = m;
    }
    if (metric < 0) continue;

    std::ifstream in(entry.path());
    if (!in) return Status::Internal("cannot read " + entry.path().string());
    std::vector<OnlineEstimator::Sample> samples;
    std::string line;
    while (std::getline(in, line)) {
      const std::vector<std::string> fields = SplitAndTrim(line, ',');
      if (fields.empty()) continue;
      OnlineEstimator::Sample sample;
      sample.target = std::strtod(fields[0].c_str(), nullptr);
      for (size_t i = 1; i < fields.size(); ++i) {
        sample.features.push_back(std::strtod(fields[i].c_str(), nullptr));
      }
      samples.push_back(std::move(sample));
    }
    OperatorModels* models = Get(algorithm, engine);
    // A failed refit (e.g. too few samples) still keeps the samples.
    {
      MutexLock lock(models->mu);
      (void)MetricEstimator(models, metric)->ImportSamples(samples);
    }
    version_.fetch_add(1, std::memory_order_acq_rel);
  }
  return Status::OK();
}

}  // namespace ires
