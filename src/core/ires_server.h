#ifndef IRES_CORE_IRES_SERVER_H_
#define IRES_CORE_IRES_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "analysis/workflow_analyzer.h"
#include "chaos/chaos_scheduler.h"
#include "cluster/cluster_simulator.h"
#include "core/model_library.h"
#include "executor/enforcer.h"
#include "executor/execution_monitor.h"
#include "executor/recovering_executor.h"
#include "modeling/drift.h"
#include "modeling/refinement.h"
#include "planner/dp_planner.h"
#include "planner/plan_cache.h"
#include "profiling/profiler.h"
#include "provisioning/resource_provisioner.h"
#include "telemetry/event_journal.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/slo.h"
#include "telemetry/trace_context.h"
#include "threading/task_scheduler.h"
#include "workflow/workflow_graph.h"

namespace ires {

/// Cost estimator backed by the online-refined model library: it predicts
/// execution time, output size and output cardinality with each
/// (algorithm, engine) pair's trained estimators when they exist, and falls
/// back to the engine's analytic model otherwise. Feasibility always comes
/// from the engine. Thread-safe: predictions take the per-pair model mutex,
/// so they never race with concurrent refinement.
class ModelBasedCostEstimator : public CostEstimator {
 public:
  explicit ModelBasedCostEstimator(const ModelLibrary* models)
      : models_(models) {}

  Result<OperatorRunEstimate> Estimate(
      const SimulatedEngine& engine,
      const OperatorRunRequest& request) const override;

 private:
  const ModelLibrary* models_;
};

/// The kind of artefact registered with the platform's interface layer.
enum class ArtifactKind {
  kDataset,
  kAbstractOperator,
  kMaterializedOperator,
};

const char* ArtifactKindName(ArtifactKind kind);

/// The IReS server facade: wires the interface, optimizer and executor
/// layers (deliverable Fig. 1) into the API the examples and experiments
/// drive — register artefacts, materialize (plan) workflows, execute them
/// with monitoring/recovery, and refine the models with every run.
///
/// Concurrency: RegisterArtifact, PlanWorkflowCached, MaterializeWorkflow
/// and RunWorkflow are safe to call from many threads at once (the job
/// service's worker pool does exactly that). ExecuteWorkflow keeps the
/// legacy single-caller semantics — it drives the shared enforcer/cluster,
/// whose discrete-event state is not meant for interleaved runs.
class IresServer {
 public:
  struct Config {
    int cluster_nodes = 16;
    int cores_per_node = 4;
    double memory_gb_per_node = 8.0;
    uint64_t seed = 99;
    /// When true the planner consults the online-refined models; otherwise
    /// the converged analytic models.
    bool use_refined_models = false;
    /// When set, NSGA-II provisions container resources per operator.
    bool provision_resources = false;
    /// Capacity of the planner-level plan cache (0 disables caching).
    size_t plan_cache_capacity = 128;
    /// Worker threads of the shared task scheduler every subsystem
    /// (job execution, SQL optimization, planner fan-out, NSGA-II) runs
    /// on; <=0 uses the hardware concurrency.
    int scheduler_workers = 0;
    /// Injectable clock (seconds) for the scheduler's backlog tracker —
    /// what /apiv1/healthz saturation tests march forward. Null uses the
    /// steady clock.
    std::function<double()> scheduler_clock;
  };

  IresServer() : IresServer(Config()) {}
  explicit IresServer(Config config);

  // ---- Interface layer ----------------------------------------------------
  /// Registers one artefact from its key=value description text — the
  /// unified entry point behind the REST description routes.
  Status RegisterArtifact(ArtifactKind kind, const std::string& name,
                          const std::string& description);

  /// Deprecated per-kind wrappers; prefer RegisterArtifact.
  Status RegisterDataset(const std::string& name,
                         const std::string& description) {
    return RegisterArtifact(ArtifactKind::kDataset, name, description);
  }
  Status RegisterAbstractOperator(const std::string& name,
                                  const std::string& description) {
    return RegisterArtifact(ArtifactKind::kAbstractOperator, name,
                            description);
  }
  Status RegisterMaterializedOperator(const std::string& name,
                                      const std::string& description) {
    return RegisterArtifact(ArtifactKind::kMaterializedOperator, name,
                            description);
  }

  /// Imports an externally assembled library (merges, name clashes fail).
  Status ImportLibrary(const OperatorLibrary& library);
  /// Parses a workflow `graph` file against the current library.
  Result<WorkflowGraph> ParseWorkflow(const std::string& graph_text) const;

  /// Runs the full workflow linter (structure, reachability, policy,
  /// library resolution, engine availability, port compatibility, cluster
  /// capacity) against this server's library/engines/cluster. This is what
  /// POST /apiv1/validate serves and what job admission gates on; it never
  /// mutates state and does not count rejects (callers at rejection sites
  /// do, via CountValidationRejects).
  std::vector<Diagnostic> ValidateWorkflow(
      const WorkflowGraph& graph,
      const OptimizationPolicy* policy = nullptr) const;

  // ---- Optimizer layer ----------------------------------------------------
  /// Materializes (plans) a workflow under `policy`, consulting the plan
  /// cache first.
  Result<ExecutionPlan> MaterializeWorkflow(
      const WorkflowGraph& graph,
      OptimizationPolicy policy = OptimizationPolicy::MinimizeTime());

  /// A cached or freshly planned workflow plus planning accounting.
  struct PlannedWorkflow {
    ExecutionPlan plan;
    bool cache_hit = false;
    /// Wall-clock spent planning (0 on a cache hit).
    double planning_ms = 0.0;
  };

  /// Plans under `policy` through the plan cache, keyed on the graph
  /// fingerprint, the policy, and the operator-library / model-library /
  /// engine-availability versions. Thread-safe. When `trace` is non-null,
  /// records "plan.cache_lookup" and "plan.dp" spans and feeds the planner
  /// latency histogram.
  Result<PlannedWorkflow> PlanWorkflowCached(const WorkflowGraph& graph,
                                             OptimizationPolicy policy,
                                             TraceContext* trace = nullptr);

  // ---- Executor layer -----------------------------------------------------
  /// Plans + executes with monitoring and IResReplan recovery; feeds every
  /// observed operator run back into the model-refinement library. Legacy
  /// synchronous entry point over the shared enforcer; single caller at a
  /// time.
  Result<RecoveryOutcome> ExecuteWorkflow(
      const WorkflowGraph& graph,
      OptimizationPolicy policy = OptimizationPolicy::MinimizeTime());

  /// Per-run execution knobs: recovery strategy and budget, in-place retry
  /// policy, and the chaos fault schedule. Carried per job by the job
  /// service, so two concurrent submissions can run under different
  /// fault-tolerance regimes.
  struct ExecutionOptions {
    ReplanStrategy strategy = ReplanStrategy::kIresReplan;
    int max_replans = 5;
    RetryPolicy retry;
    ChaosConfig chaos;
    /// Failover resume: step outputs a previous incarnation of this job
    /// already materialized (from the write-ahead job journal). Non-empty
    /// discards the cached initial plan and plans fresh with these entering
    /// the dpTable at cost 0, so completed steps are never re-executed.
    std::map<std::string, DatasetInstance> resume_materialized;
    /// Per-completed-step callback (see Enforcer::StepObserver); carried
    /// here so the job service can checkpoint steps into the job journal.
    Enforcer::StepObserver step_observer;
  };

  /// Everything one workflow run produced: the recovery outcome plus the
  /// initially chosen plan (so callers — notably async job records — get
  /// the plan summary without re-planning) and whether it came from the
  /// plan cache.
  struct WorkflowRunResult {
    RecoveryOutcome recovery;
    ExecutionPlan plan;
    bool plan_cache_hit = false;
    /// What the run's chaos schedule actually injected (all zero when
    /// chaos was disabled).
    ChaosScheduler::Counts chaos_injected;
  };

  /// Thread-safe plan→execute→refine pipeline used by the job service:
  /// plans through the cache, executes on a private per-run enforcer over a
  /// private cluster view (the shared registry still tracks engine
  /// availability), and refines the models on success. Errors are carried
  /// in `recovery.status` so planning/execution accounting survives
  /// failures.
  WorkflowRunResult RunWorkflow(
      const WorkflowGraph& graph,
      OptimizationPolicy policy = OptimizationPolicy::MinimizeTime(),
      TraceContext* trace = nullptr);
  WorkflowRunResult RunWorkflow(const WorkflowGraph& graph,
                                OptimizationPolicy policy,
                                TraceContext* trace,
                                const ExecutionOptions& exec);

  /// Executes `planned` (obtained from PlanWorkflowCached) without
  /// re-planning the first attempt. Thread-safe; see RunWorkflow. When
  /// `trace` is non-null, records the "job.execute" wall span, per-step
  /// simulated-time spans and the "model.refine" span.
  WorkflowRunResult ExecutePlanned(const WorkflowGraph& graph,
                                   OptimizationPolicy policy,
                                   const PlannedWorkflow& planned,
                                   TraceContext* trace = nullptr);
  WorkflowRunResult ExecutePlanned(const WorkflowGraph& graph,
                                   OptimizationPolicy policy,
                                   const PlannedWorkflow& planned,
                                   TraceContext* trace,
                                   const ExecutionOptions& exec);

  // ---- Access to the wired components (experiments drive them directly). --
  OperatorLibrary& library() { return library_; }
  EngineRegistry& engines() { return *engines_; }
  ClusterSimulator& cluster() { return *cluster_; }
  DpPlanner& planner() { return *planner_; }
  /// The memoized candidate-resolution index the planner plans through;
  /// share it with any ParetoPlanner / BuildMaterializationReport built
  /// over this server's library and engines.
  PlannerContext& planner_context() { return *planner_context_; }
  Enforcer& enforcer() { return *enforcer_; }
  ExecutionMonitor& monitor() { return *monitor_; }
  NsgaResourceProvisioner& provisioner() { return *provisioner_; }
  PlanCache& plan_cache() { return *plan_cache_; }
  const Config& config() const { return config_; }

  /// The server-wide metric catalogue: every layer (plan cache, planner,
  /// job service, REST surface, model refinement) registers its
  /// instruments here, and GET /apiv1/metrics renders it.
  MetricsRegistry& metrics() { return metrics_; }

  /// The flight recorder: every decision-relevant transition (admission,
  /// planning, step retries, breaker flips, replans) lands here, and
  /// GET /apiv1/debug/events queries it.
  EventJournal& journal() { return journal_; }

  /// Cost-model drift observatory behind GET /apiv1/models/drift: residual
  /// tracking of predicted vs simulated-actual step times, feeding forced
  /// refits for high-drift (operator, engine) pairs.
  DriftObservatory& drift() { return drift_; }

  /// SLO burn-rate monitor rendered by /apiv1/healthz and /apiv1/metrics.
  SloMonitor& slo() { return slo_; }

  /// The shared work-stealing execution substrate. One instance per server:
  /// JobService dispatch, the SQL optimizer's DPccp enumeration, planner
  /// fan-out and NSGA-II evaluation all run here, so a busy subsystem can
  /// soak up the workers an idle one isn't using.
  TaskScheduler& scheduler() { return *scheduler_; }

  /// The refined execution-time estimator for one (algorithm, engine)
  /// pair, created on first use. Inspection accessor: bypasses the
  /// per-pair model lock, so it is only safe while no concurrent
  /// ObserveRun/Refit can touch the pair (tests, offline tools).
  OnlineEstimator* estimator(const std::string& algorithm,
                             const std::string& engine);

  /// The full multi-metric model library.
  ModelLibrary& models() { return models_; }

  /// Persists / restores the model library (profiling samples + refits),
  /// so a restarted server keeps its learned knowledge.
  Status SaveModels(const std::string& dir) const {
    return models_.SaveToDirectory(dir);
  }
  Status LoadModels(const std::string& dir) {
    return models_.LoadFromDirectory(dir);
  }

 private:
  DpPlanner::Options MakePlannerOptions(const OptimizationPolicy& policy);
  void RefineFromReport(const ExecutionPlan& plan,
                        const ExecutionReport& report);
  /// Feeds every completed operator step's (predicted, actual) time into
  /// the drift observatory; newly flagged pairs get an immediate forced
  /// refit of their exec-time estimator.
  void ObserveDrift(const ExecutionPlan& plan, const ExecutionReport& report,
                    const std::string& job_id);
  void RecordExecutionMetrics(const ExecutionPlan& plan,
                              const ExecutionReport& report);
  void RecordRecoveryMetrics(const RecoveryOutcome& recovery,
                             const ExecutionOptions& exec,
                             const ChaosScheduler::Counts& injected);

  Config config_;
  /// Declared before every component that registers instruments in it.
  MetricsRegistry metrics_;
  /// Declared right after metrics_ so every later component may journal.
  EventJournal journal_;
  DriftObservatory drift_;
  SloMonitor slo_;
  /// Declared right after the telemetry it reports into and before every
  /// component that executes on it — destroyed (joined) after them all.
  std::unique_ptr<TaskScheduler> scheduler_;
  OperatorLibrary library_;
  std::unique_ptr<EngineRegistry> engines_;
  std::unique_ptr<ClusterSimulator> cluster_;
  /// Declared before the planners that resolve through it.
  std::unique_ptr<PlannerContext> planner_context_;
  std::unique_ptr<DpPlanner> planner_;
  std::unique_ptr<Enforcer> enforcer_;
  std::unique_ptr<ExecutionMonitor> monitor_;
  std::unique_ptr<NsgaResourceProvisioner> provisioner_;
  ModelLibrary models_;
  std::unique_ptr<ModelBasedCostEstimator> model_estimator_;
  std::unique_ptr<PlanCache> plan_cache_;
  /// Distinguishes per-run enforcer noise streams across concurrent jobs.
  std::atomic<uint64_t> run_counter_{0};
};

}  // namespace ires

#endif  // IRES_CORE_IRES_SERVER_H_
