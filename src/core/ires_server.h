#ifndef IRES_CORE_IRES_SERVER_H_
#define IRES_CORE_IRES_SERVER_H_

#include <map>
#include <memory>
#include <string>

#include "cluster/cluster_simulator.h"
#include "core/model_library.h"
#include "executor/enforcer.h"
#include "executor/execution_monitor.h"
#include "executor/recovering_executor.h"
#include "modeling/refinement.h"
#include "planner/dp_planner.h"
#include "profiling/profiler.h"
#include "provisioning/resource_provisioner.h"
#include "workflow/workflow_graph.h"

namespace ires {

/// Cost estimator backed by the online-refined model library: it predicts
/// execution time, output size and output cardinality with each
/// (algorithm, engine) pair's trained estimators when they exist, and falls
/// back to the engine's analytic model otherwise. Feasibility always comes
/// from the engine.
class ModelBasedCostEstimator : public CostEstimator {
 public:
  explicit ModelBasedCostEstimator(const ModelLibrary* models)
      : models_(models) {}

  Result<OperatorRunEstimate> Estimate(
      const SimulatedEngine& engine,
      const OperatorRunRequest& request) const override;

 private:
  const ModelLibrary* models_;
};

/// The IReS server facade: wires the interface, optimizer and executor
/// layers (deliverable Fig. 1) into the API the examples and experiments
/// drive — register artefacts, materialize (plan) workflows, execute them
/// with monitoring/recovery, and refine the models with every run.
class IresServer {
 public:
  struct Config {
    int cluster_nodes = 16;
    int cores_per_node = 4;
    double memory_gb_per_node = 8.0;
    uint64_t seed = 99;
    /// When true the planner consults the online-refined models; otherwise
    /// the converged analytic models.
    bool use_refined_models = false;
    /// When set, NSGA-II provisions container resources per operator.
    bool provision_resources = false;
  };

  IresServer() : IresServer(Config()) {}
  explicit IresServer(Config config);

  // ---- Interface layer ----------------------------------------------------
  /// Registers artefacts from their key=value description text.
  Status RegisterDataset(const std::string& name,
                         const std::string& description);
  Status RegisterAbstractOperator(const std::string& name,
                                  const std::string& description);
  Status RegisterMaterializedOperator(const std::string& name,
                                      const std::string& description);
  /// Imports an externally assembled library (merges, name clashes fail).
  Status ImportLibrary(const OperatorLibrary& library);
  /// Parses a workflow `graph` file against the current library.
  Result<WorkflowGraph> ParseWorkflow(const std::string& graph_text) const;

  // ---- Optimizer layer ----------------------------------------------------
  /// Materializes (plans) a workflow under `policy`.
  Result<ExecutionPlan> MaterializeWorkflow(
      const WorkflowGraph& graph,
      OptimizationPolicy policy = OptimizationPolicy::MinimizeTime());

  // ---- Executor layer -----------------------------------------------------
  /// Plans + executes with monitoring and IResReplan recovery; feeds every
  /// observed operator run back into the model-refinement library.
  Result<RecoveryOutcome> ExecuteWorkflow(
      const WorkflowGraph& graph,
      OptimizationPolicy policy = OptimizationPolicy::MinimizeTime());

  // ---- Access to the wired components (experiments drive them directly). --
  OperatorLibrary& library() { return library_; }
  EngineRegistry& engines() { return *engines_; }
  ClusterSimulator& cluster() { return *cluster_; }
  DpPlanner& planner() { return *planner_; }
  Enforcer& enforcer() { return *enforcer_; }
  ExecutionMonitor& monitor() { return *monitor_; }
  NsgaResourceProvisioner& provisioner() { return *provisioner_; }


  /// The refined execution-time estimator for one (algorithm, engine)
  /// pair, created on first use.
  OnlineEstimator* estimator(const std::string& algorithm,
                             const std::string& engine);

  /// The full multi-metric model library.
  ModelLibrary& models() { return models_; }

  /// Persists / restores the model library (profiling samples + refits),
  /// so a restarted server keeps its learned knowledge.
  Status SaveModels(const std::string& dir) const {
    return models_.SaveToDirectory(dir);
  }
  Status LoadModels(const std::string& dir) {
    return models_.LoadFromDirectory(dir);
  }

 private:
  void RefineFromReport(const ExecutionPlan& plan,
                        const ExecutionReport& report);

  Config config_;
  OperatorLibrary library_;
  std::unique_ptr<EngineRegistry> engines_;
  std::unique_ptr<ClusterSimulator> cluster_;
  std::unique_ptr<DpPlanner> planner_;
  std::unique_ptr<Enforcer> enforcer_;
  std::unique_ptr<ExecutionMonitor> monitor_;
  std::unique_ptr<NsgaResourceProvisioner> provisioner_;
  ModelLibrary models_;
  std::unique_ptr<ModelBasedCostEstimator> model_estimator_;
};

}  // namespace ires

#endif  // IRES_CORE_IRES_SERVER_H_
