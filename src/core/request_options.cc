#include "core/request_options.h"

#include <cstdlib>

#include "common/strings.h"

namespace ires {

namespace {

bool ParseDoubleText(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

Status BadField(const std::string& where, const std::string& what) {
  return Status::InvalidArgument("options." + where + " " + what);
}

/// Reads one numeric member, enforcing [lo, hi]; absent members are OK.
Status ReadNumber(const JsonValue& section, const std::string& where,
                  const std::string& key, double lo, double hi, bool* present,
                  double* out) {
  *present = false;
  const JsonValue* v = section.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number()) return BadField(where + "." + key, "must be a number");
  if (v->number_value() < lo || v->number_value() > hi) {
    return BadField(where + "." + key,
                    "must be in [" + std::to_string(lo) + ", " +
                        std::to_string(hi) + "]");
  }
  *present = true;
  *out = v->number_value();
  return Status::OK();
}

Status RejectUnknownKeys(const JsonValue& section, const std::string& where,
                         std::initializer_list<const char*> known) {
  for (const auto& [key, value] : section.object()) {
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) return BadField(where + "." + key, "is not a recognized option");
  }
  return Status::OK();
}

Status ApplyStrategy(const std::string& value, const std::string& where,
                     IresServer::ExecutionOptions* exec) {
  if (value == "ires") {
    exec->strategy = ReplanStrategy::kIresReplan;
  } else if (value == "trivial") {
    exec->strategy = ReplanStrategy::kTrivialReplan;
  } else {
    return Status::InvalidArgument(where + " must be ires or trivial");
  }
  return Status::OK();
}

Status ParseOptionsBody(const JsonValue& options, ParsedExecution* out) {
  if (!options.is_object()) {
    return Status::InvalidArgument("options must be a JSON object");
  }
  IRES_RETURN_IF_ERROR(
      RejectUnknownKeys(options, "", {"execution", "retry", "chaos"}));
  bool present = false;
  double number = 0.0;

  if (const JsonValue* execution = options.Find("execution")) {
    if (!execution->is_object()) {
      return BadField("execution", "must be an object");
    }
    IRES_RETURN_IF_ERROR(RejectUnknownKeys(*execution, "execution",
                                           {"mode", "strategy", "maxReplans"}));
    if (const JsonValue* mode = execution->Find("mode")) {
      if (!mode->is_string() ||
          (mode->string_value() != "sync" && mode->string_value() != "async")) {
        return BadField("execution.mode", "must be \"sync\" or \"async\"");
      }
      out->async = mode->string_value() == "async";
    }
    if (const JsonValue* strategy = execution->Find("strategy")) {
      if (!strategy->is_string()) {
        return BadField("execution.strategy", "must be a string");
      }
      IRES_RETURN_IF_ERROR(ApplyStrategy(strategy->string_value(),
                                         "options.execution.strategy",
                                         &out->exec));
    }
    IRES_RETURN_IF_ERROR(ReadNumber(*execution, "execution", "maxReplans", 0,
                                    1000, &present, &number));
    if (present) out->exec.max_replans = static_cast<int>(number);
  }

  if (const JsonValue* retry = options.Find("retry")) {
    if (!retry->is_object()) return BadField("retry", "must be an object");
    IRES_RETURN_IF_ERROR(RejectUnknownKeys(
        *retry, "retry", {"attempts", "backoffSeconds", "stragglerMultiplier"}));
    IRES_RETURN_IF_ERROR(
        ReadNumber(*retry, "retry", "attempts", 1, 100, &present, &number));
    if (present) out->exec.retry.max_attempts = static_cast<int>(number);
    IRES_RETURN_IF_ERROR(ReadNumber(*retry, "retry", "backoffSeconds", 0,
                                    1e9, &present, &number));
    if (present) out->exec.retry.base_backoff_seconds = number;
    IRES_RETURN_IF_ERROR(ReadNumber(*retry, "retry", "stragglerMultiplier", 0,
                                    1e9, &present, &number));
    if (present) out->exec.retry.straggler_multiplier = number;
  }

  if (const JsonValue* chaos = options.Find("chaos")) {
    if (!chaos->is_object()) return BadField("chaos", "must be an object");
    IRES_RETURN_IF_ERROR(RejectUnknownKeys(
        *chaos, "chaos",
        {"seed", "transient", "timeout", "crash", "crashEngine"}));
    IRES_RETURN_IF_ERROR(
        ReadNumber(*chaos, "chaos", "seed", 1, 1e18, &present, &number));
    if (present) out->exec.chaos.seed = static_cast<uint64_t>(number);
    IRES_RETURN_IF_ERROR(
        ReadNumber(*chaos, "chaos", "transient", 0, 1, &present, &number));
    if (present) out->exec.chaos.transient_probability = number;
    IRES_RETURN_IF_ERROR(
        ReadNumber(*chaos, "chaos", "timeout", 0, 1, &present, &number));
    if (present) out->exec.chaos.timeout_probability = number;
    IRES_RETURN_IF_ERROR(
        ReadNumber(*chaos, "chaos", "crash", 0, 1, &present, &number));
    if (present) out->exec.chaos.engine_crash_probability = number;
    if (const JsonValue* engine = chaos->Find("crashEngine")) {
      if (!engine->is_string()) {
        return BadField("chaos.crashEngine", "must be a string");
      }
      out->exec.chaos.crash_engine = engine->string_value();
    }
  }
  return Status::OK();
}

}  // namespace

Status ParseExecutionOptions(const std::string& query,
                             const JsonValue* options, ParsedExecution* out) {
  *out = ParsedExecution();
  bool used_legacy = false;
  auto deprecated = [&](const std::string& key, const std::string& new_path) {
    used_legacy = true;
    out->warnings.push_back("query parameter '" + key +
                            "' is deprecated and will be removed next "
                            "release; set options." +
                            new_path + " in the request body instead");
  };

  for (const std::string& pair :
       query.empty() ? std::vector<std::string>{} : SplitAndTrim(query, '&')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("query parameter needs a value: " + pair);
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    double number = 0.0;
    if (key == "mode") {
      if (value == "async") {
        out->async = true;
      } else if (value != "sync") {
        return Status::InvalidArgument("mode must be sync or async");
      }
    } else if (key == "tenant") {
      // Routing identity like mode, not a tuning knob: stays a query
      // parameter for good.
      if (value.empty()) {
        return Status::InvalidArgument("tenant must be non-empty");
      }
      out->tenant = value;
    } else if (key == "idempotencyKey") {
      if (value.empty()) {
        return Status::InvalidArgument("idempotencyKey must be non-empty");
      }
      out->idempotency_key = value;
    } else if (key == "strategy") {
      deprecated(key, "execution.strategy");
      IRES_RETURN_IF_ERROR(ApplyStrategy(value, "strategy", &out->exec));
    } else if (key == "maxReplans") {
      deprecated(key, "execution.maxReplans");
      if (!ParseDoubleText(value, &number) || number < 0 || number > 1000) {
        return Status::InvalidArgument("maxReplans must be in [0, 1000]");
      }
      out->exec.max_replans = static_cast<int>(number);
    } else if (key == "retryAttempts") {
      deprecated(key, "retry.attempts");
      if (!ParseDoubleText(value, &number) || number < 1 || number > 100) {
        return Status::InvalidArgument("retryAttempts must be in [1, 100]");
      }
      out->exec.retry.max_attempts = static_cast<int>(number);
    } else if (key == "retryBackoffSeconds") {
      deprecated(key, "retry.backoffSeconds");
      if (!ParseDoubleText(value, &number) || number < 0) {
        return Status::InvalidArgument("retryBackoffSeconds must be >= 0");
      }
      out->exec.retry.base_backoff_seconds = number;
    } else if (key == "stragglerMultiplier") {
      deprecated(key, "retry.stragglerMultiplier");
      if (!ParseDoubleText(value, &number) || number < 0) {
        return Status::InvalidArgument("stragglerMultiplier must be >= 0");
      }
      out->exec.retry.straggler_multiplier = number;
    } else if (key == "chaosSeed") {
      deprecated(key, "chaos.seed");
      if (!ParseDoubleText(value, &number) || number < 1) {
        return Status::InvalidArgument("chaosSeed must be a positive integer");
      }
      out->exec.chaos.seed = static_cast<uint64_t>(number);
    } else if (key == "chaosTransient" || key == "chaosTimeout" ||
               key == "chaosCrash") {
      deprecated(key, key == "chaosTransient"
                          ? "chaos.transient"
                          : key == "chaosTimeout" ? "chaos.timeout"
                                                  : "chaos.crash");
      if (!ParseDoubleText(value, &number) || number < 0 || number > 1) {
        return Status::InvalidArgument(key + " must be in [0, 1]");
      }
      if (key == "chaosTransient") {
        out->exec.chaos.transient_probability = number;
      } else if (key == "chaosTimeout") {
        out->exec.chaos.timeout_probability = number;
      } else {
        out->exec.chaos.engine_crash_probability = number;
      }
    } else if (key == "chaosCrashEngine") {
      deprecated(key, "chaos.crashEngine");
      out->exec.chaos.crash_engine = value;
    } else {
      return Status::InvalidArgument("unsupported execute query key: " + key);
    }
  }

  if (options != nullptr) {
    if (used_legacy) {
      return Status::InvalidArgument(
          "execution options were supplied both as query parameters and in "
          "the request body; move the query parameters into the body");
    }
    IRES_RETURN_IF_ERROR(ParseOptionsBody(*options, out));
  }
  return Status::OK();
}

std::string WarningsFragment(const std::vector<std::string>& warnings) {
  if (warnings.empty()) return "";
  std::string out = ",\"warnings\":[";
  for (size_t i = 0; i < warnings.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(warnings[i]) + "\"";
  }
  out += "]";
  return out;
}

}  // namespace ires
