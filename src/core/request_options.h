#ifndef IRES_CORE_REQUEST_OPTIONS_H_
#define IRES_CORE_REQUEST_OPTIONS_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "core/ires_server.h"

namespace ires {

/// The per-request execution regime as decoded from one REST call, shared
/// by POST /workflows/{name}/execute and POST /apiv1/sql.
struct ParsedExecution {
  bool async = false;
  IresServer::ExecutionOptions exec;
  /// Admission identity: the control plane accounts the job under this
  /// tenant's QoS class, weight and quota (`?tenant=` query parameter).
  std::string tenant = "default";
  /// Client dedupe key (`?idempotencyKey=`): resubmitting with a known key
  /// returns the original job id instead of admitting a duplicate.
  std::string idempotency_key;
  /// Deprecation notices to surface in the success envelope's "warnings"
  /// array (one per legacy query parameter used).
  std::vector<std::string> warnings;
};

/// Decodes the execution options of one request from its query string and
/// optional structured JSON `options` body (null when the request carried
/// none):
///
///   {"execution": {"mode": "sync|async", "strategy": "ires|trivial",
///                  "maxReplans": N},
///    "retry":     {"attempts": N, "backoffSeconds": S,
///                  "stragglerMultiplier": M},
///    "chaos":     {"seed": N, "transient": P, "timeout": P, "crash": P,
///                  "crashEngine": "name"}}
///
/// The flat query parameters of the pre-options API (`strategy`,
/// `maxReplans`, `retryAttempts`, `retryBackoffSeconds`,
/// `stragglerMultiplier`, `chaosSeed`, `chaosTransient`, `chaosTimeout`,
/// `chaosCrash`, `chaosCrashEngine`) keep working as deprecated aliases for
/// one release; each use appends a deprecation notice to `out->warnings`.
/// Mixing the legacy parameters with a structured body is rejected
/// (InvalidArgument) — there is no precedence rule to misremember. `mode`
/// stays a first-class query parameter (it routes, it does not tune) and
/// may be given either way.
///
/// Unknown query keys, unknown body sections/keys and out-of-range values
/// all fail with InvalidArgument so typos never silently run with defaults.
Status ParseExecutionOptions(const std::string& query,
                             const JsonValue* options, ParsedExecution* out);

/// Renders `warnings` as a `,"warnings":[...]` JSON fragment, or "" when
/// empty — appended inside success envelopes.
std::string WarningsFragment(const std::vector<std::string>& warnings);

}  // namespace ires

#endif  // IRES_CORE_REQUEST_OPTIONS_H_
