#include "core/rest_api.h"

#include <cstdio>

#include "common/strings.h"

namespace ires {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

ApiResponse Error(int code, const std::string& message) {
  return {code, "{\"error\":\"" + JsonEscape(message) + "\"}"};
}

ApiResponse FromStatus(const Status& status, int ok_code = 200,
                       const std::string& ok_body = "{\"ok\":true}") {
  if (status.ok()) return {ok_code, ok_body};
  switch (status.code()) {
    case StatusCode::kNotFound: return Error(404, status.message());
    case StatusCode::kAlreadyExists: return Error(409, status.message());
    case StatusCode::kInvalidArgument: return Error(400, status.message());
    case StatusCode::kFailedPrecondition:
    case StatusCode::kResourceExhausted:
      return Error(422, status.message());
    default: return Error(500, status.ToString());
  }
}

std::string JsonStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(items[i]) + "\"";
  }
  out += "]";
  return out;
}

}  // namespace

ApiResponse RestApi::Handle(const std::string& method,
                            const std::string& path,
                            const std::string& body) {
  std::vector<std::string> parts = SplitAndTrim(path, '/');
  if (parts.size() < 2 || parts[0] != "apiv1") {
    return Error(404, "unknown route: " + path);
  }
  const std::string& resource = parts[1];
  if (resource == "engines") return HandleEngines(method, parts, body);
  if (resource == "datasets" || resource == "abstractOperators" ||
      resource == "operators") {
    return HandleDescriptions(method, parts, body);
  }
  if (resource == "workflows") return HandleWorkflows(method, parts, body);
  return Error(404, "unknown resource: " + resource);
}

ApiResponse RestApi::HandleEngines(const std::string& method,
                                   const std::vector<std::string>& parts,
                                   const std::string& body) {
  if (method == "GET" && parts.size() == 2) {
    std::string out = "{";
    bool first = true;
    for (const std::string& name : server_->engines().Names()) {
      if (!first) out += ",";
      first = false;
      out += "\"" + JsonEscape(name) + "\":\"" +
             (server_->engines().IsAvailable(name) ? "ON" : "OFF") + "\"";
    }
    out += "}";
    return {200, out};
  }
  if (method == "PUT" && parts.size() == 4 && parts[3] == "availability") {
    const std::string value = ToLower(Trim(body));
    if (value != "on" && value != "off") {
      return Error(400, "availability body must be 'on' or 'off'");
    }
    return FromStatus(
        server_->engines().SetAvailable(parts[2], value == "on"));
  }
  return Error(404, "unknown engines route");
}

ApiResponse RestApi::HandleDescriptions(const std::string& method,
                                        const std::vector<std::string>& parts,
                                        const std::string& body) {
  const std::string& resource = parts[1];
  OperatorLibrary& library = server_->library();

  if (method == "GET" && parts.size() == 2) {
    std::vector<std::string> names;
    if (resource == "datasets") {
      for (const auto& [name, d] : library.datasets()) names.push_back(name);
    } else if (resource == "abstractOperators") {
      for (const auto& [name, o] : library.abstract()) names.push_back(name);
    } else {
      names = library.MaterializedNames();
    }
    return {200, JsonStringArray(names)};
  }

  if (parts.size() != 3) return Error(404, "expected /" + resource + "/{name}");
  const std::string& name = parts[2];

  if (method == "GET") {
    const MetadataTree* meta = nullptr;
    if (resource == "datasets") {
      const Dataset* d = library.FindDatasetByName(name);
      if (d != nullptr) meta = &d->meta();
    } else if (resource == "abstractOperators") {
      const AbstractOperator* o = library.FindAbstractByName(name);
      if (o != nullptr) meta = &o->meta();
    } else {
      const MaterializedOperator* o = library.FindMaterializedByName(name);
      if (o != nullptr) meta = &o->meta();
    }
    if (meta == nullptr) return Error(404, resource + ": " + name);
    return {200, "{\"name\":\"" + JsonEscape(name) + "\",\"description\":\"" +
                     JsonEscape(meta->ToDescription()) + "\"}"};
  }

  if (method == "POST") {
    Status added;
    if (resource == "datasets") {
      added = server_->RegisterDataset(name, body);
    } else if (resource == "abstractOperators") {
      added = server_->RegisterAbstractOperator(name, body);
    } else {
      added = server_->RegisterMaterializedOperator(name, body);
    }
    return FromStatus(added, 201);
  }
  return Error(404, "unsupported method " + method);
}

ApiResponse RestApi::HandleWorkflows(const std::string& method,
                                     const std::vector<std::string>& parts,
                                     const std::string& body) {
  if (method == "GET" && parts.size() == 2) {
    std::vector<std::string> names;
    for (const auto& [name, graph] : workflows_) names.push_back(name);
    return {200, JsonStringArray(names)};
  }
  if (method == "POST" && parts.size() == 3) {
    auto graph = server_->ParseWorkflow(body);
    if (!graph.ok()) return FromStatus(graph.status());
    const Status valid = graph.value().Validate();
    if (!valid.ok()) return FromStatus(valid);
    if (workflows_.count(parts[2]) > 0) {
      return Error(409, "workflow exists: " + parts[2]);
    }
    workflows_.emplace(parts[2], std::move(graph).value());
    return {201, "{\"ok\":true}"};
  }
  if (method == "POST" && parts.size() == 4) {
    auto it = workflows_.find(parts[2]);
    if (it == workflows_.end()) return Error(404, "workflow: " + parts[2]);
    if (parts[3] == "materialize") {
      auto plan = server_->MaterializeWorkflow(it->second);
      if (!plan.ok()) return FromStatus(plan.status());
      char head[160];
      std::snprintf(head, sizeof(head),
                    "{\"estimatedSeconds\":%.3f,\"estimatedCost\":%.1f,"
                    "\"steps\":%zu,\"plan\":\"",
                    plan.value().estimated_seconds,
                    plan.value().estimated_cost, plan.value().steps.size());
      return {200,
              std::string(head) + JsonEscape(plan.value().ToString()) + "\"}"};
    }
    if (parts[3] == "execute") {
      auto outcome = server_->ExecuteWorkflow(it->second);
      if (!outcome.ok()) return FromStatus(outcome.status());
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "{\"executionSeconds\":%.3f,\"planningMs\":%.3f,"
                    "\"replans\":%d}",
                    outcome.value().total_execution_seconds,
                    outcome.value().total_planning_ms,
                    outcome.value().replans);
      return {200, buf};
    }
  }
  return Error(404, "unknown workflows route");
}

}  // namespace ires
