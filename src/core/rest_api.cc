#include "core/rest_api.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/json.h"
#include "common/strings.h"

namespace ires {

namespace {

/// The single StatusCode -> HTTP mapping behind every error response (see
/// the envelope table in the header).
int HttpCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kNotFound: return 404;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kFailedPrecondition: return 422;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kUnavailable: return 503;
    default: return 500;
  }
}

/// Uniform error envelope: {"error":{"code":...,"message":...}}.
ApiResponse ErrorEnvelope(StatusCode code, const std::string& message) {
  return {HttpCodeFor(code),
          std::string("{\"error\":{\"code\":\"") + StatusCodeToString(code) +
              "\",\"message\":\"" + JsonEscape(message) + "\"}}"};
}

ApiResponse NotFoundError(const std::string& message) {
  return ErrorEnvelope(StatusCode::kNotFound, message);
}

bool ParseDoubleText(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

ApiResponse FromStatus(const Status& status, int ok_code = 200,
                       const std::string& ok_body = "{\"ok\":true}") {
  if (status.ok()) return {ok_code, ok_body};
  return ErrorEnvelope(status.code(), status.message());
}

std::string JsonStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(items[i]) + "\"";
  }
  out += "]";
  return out;
}

std::string JobRecordJson(const JobRecord& record, bool include_plan) {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "\"state\":\"%s\",\"planSteps\":%d,\"estimatedSeconds\":%.3f,"
      "\"estimatedCost\":%.1f,\"planCacheHit\":%s,"
      "\"executionSeconds\":%.3f,\"planningMs\":%.3f,\"replans\":%d,"
      "\"stepRetries\":%d,"
      "\"submittedAt\":%.3f,\"startedAt\":%.3f,\"finishedAt\":%.3f,"
      "\"queueSeconds\":%.6f,\"planSeconds\":%.6f,\"execWallSeconds\":%.6f",
      JobStateName(record.state), record.plan_steps,
      record.estimated_seconds, record.estimated_cost,
      record.plan_cache_hit ? "true" : "false",
      record.outcome.total_execution_seconds,
      record.outcome.total_planning_ms, record.outcome.replans,
      record.outcome.step_retries,
      record.submitted_at, record.started_at, record.finished_at,
      record.queue_seconds, record.plan_seconds, record.exec_wall_seconds);
  std::string out = "{\"id\":\"" + JsonEscape(record.id) +
                    "\",\"workflow\":\"" + JsonEscape(record.workflow) +
                    "\",\"policy\":\"" + JsonEscape(record.policy.ToString()) +
                    "\",\"sloClass\":\"" + JsonEscape(record.slo_class) +
                    "\"," + buf;
  if (!record.error.empty()) {
    out += ",\"error\":\"" + JsonEscape(record.error) + "\"";
  }
  // Structured failure causes: every failed execution attempt, in order,
  // with its failure domain — the post-mortem a bare error string can't
  // carry.
  if (!record.outcome.failures.empty()) {
    out += ",\"failures\":[";
    for (size_t i = 0; i < record.outcome.failures.size(); ++i) {
      const FailureEvent& f = record.outcome.failures[i];
      if (i > 0) out += ",";
      char fbuf[128];
      std::snprintf(fbuf, sizeof(fbuf),
                    "{\"attempt\":%d,\"step\":%d,\"kind\":\"%s\"", f.attempt,
                    f.failed_step, FailureKindName(f.kind));
      out += fbuf;
      if (!f.engine.empty()) {
        out += ",\"engine\":\"" + JsonEscape(f.engine) + "\"";
      }
      out += "}";
    }
    out += "]";
  }
  if (record.chaos_injected.total() > 0) {
    char cbuf[128];
    std::snprintf(cbuf, sizeof(cbuf),
                  ",\"chaosInjected\":{\"transient\":%llu,\"timeout\":%llu,"
                  "\"engineCrash\":%llu}",
                  static_cast<unsigned long long>(
                      record.chaos_injected.transient),
                  static_cast<unsigned long long>(record.chaos_injected.timeout),
                  static_cast<unsigned long long>(
                      record.chaos_injected.engine_crash));
    out += cbuf;
  }
  if (include_plan && !record.plan_summary.empty()) {
    out += ",\"plan\":\"" + JsonEscape(record.plan_summary) + "\"";
  }
  // The flight-recorder snapshot captured at failure time: the decision
  // sequence survives in the job record even after the journal ring wraps.
  if (include_plan && !record.event_snapshot.empty()) {
    out += ",\"eventSnapshot\":" + EventsToJson(record.event_snapshot);
  }
  out += "}";
  return out;
}

/// Decodes an execute/sql request body: either empty, or a JSON object
/// whose only recognized member is "options" (plus "query" on the sql
/// route, extracted by the caller). On success `options` points into
/// `parsed` (null when the body carried no options).
Status ExtractOptionsBody(const std::string& body, JsonValue* parsed,
                          const JsonValue** options, bool allow_query) {
  *options = nullptr;
  if (Trim(body).empty()) return Status::OK();
  IRES_ASSIGN_OR_RETURN(*parsed, JsonValue::Parse(body));
  if (!parsed->is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  for (const auto& [key, value] : parsed->object()) {
    if (key == "options" || (allow_query && key == "query")) continue;
    return Status::InvalidArgument("unrecognized request body member: " + key);
  }
  *options = parsed->Find("options");
  return Status::OK();
}

/// Metric-label form of a request path: resource names stay, per-entity
/// segments become {name}/{id}, and action suffixes pass through only when
/// they belong to the API's fixed action vocabulary — an arbitrary suffix
/// collapses to {action}, so traffic can never mint new label values.
std::string NormalizeRoute(const std::vector<std::string>& parts) {
  if (parts.size() < 2 || parts[0] != "apiv1") return "unknown";
  std::string route = "/apiv1/" + parts[1];
  if (parts.size() < 3) return route;
  // Namespaced observability resources: the sub-resource is part of the
  // fixed API vocabulary, not a caller-minted entity name.
  if (parts[1] == "debug" || parts[1] == "models") {
    static constexpr const char* kSubResources[] = {"events", "drift"};
    for (const char* sub : kSubResources) {
      if (parts[2] == sub) return route + "/" + sub;
    }
    return route + "/{name}";
  }
  route += parts[1] == "jobs" ? "/{id}" : "/{name}";
  if (parts.size() >= 4) {
    static constexpr const char* kActions[] = {
        "availability", "cancel", "execute", "health", "materialize",
        "trace"};
    bool known = false;
    for (const char* action : kActions) {
      if (parts[3] == action) {
        known = true;
        break;
      }
    }
    route += known ? "/" + parts[3] : "/{action}";
  }
  return route;
}

}  // namespace

RestApi::RestApi(IresServer* server)
    : server_(server),
      owned_plane_(std::make_unique<ControlPlane>(server)),
      plane_(owned_plane_.get()),
      sql_(std::make_unique<SqlService>(server)) {}

RestApi::RestApi(IresServer* server, JobService* jobs)
    : server_(server),
      owned_plane_(std::make_unique<ControlPlane>(server, jobs)),
      plane_(owned_plane_.get()),
      sql_(std::make_unique<SqlService>(server)) {}

RestApi::RestApi(IresServer* server, ControlPlane* plane)
    : server_(server),
      plane_(plane),
      sql_(std::make_unique<SqlService>(server)) {}

RestApi::~RestApi() = default;

ApiResponse RestApi::Handle(const std::string& method,
                            const std::string& path,
                            const std::string& body) {
  // Split off the query string before routing on path segments.
  std::string route = path, query;
  if (const size_t q = path.find('?'); q != std::string::npos) {
    route = path.substr(0, q);
    query = path.substr(q + 1);
  }
  std::vector<std::string> parts = SplitAndTrim(route, '/');

  const auto start = std::chrono::steady_clock::now();
  ApiResponse response = Dispatch(method, parts, query, body, path);
  // Backpressure responses tell the client when to come back: a
  // Retry-After header derived from replica backlog, mirrored as
  // retryAfterSeconds inside the error envelope so JSON-only clients see
  // it too.
  if (response.code == 429 || response.code == 503) {
    const int retry_after = static_cast<int>(plane_->RetryAfterSeconds());
    response.headers["Retry-After"] = std::to_string(retry_after);
    static constexpr char kEnvelopeSuffix[] = "\"}}";
    if (response.body.size() >= sizeof(kEnvelopeSuffix) - 1 &&
        response.body.compare(
            response.body.size() - (sizeof(kEnvelopeSuffix) - 1),
            sizeof(kEnvelopeSuffix) - 1, kEnvelopeSuffix) == 0) {
      response.body.insert(response.body.size() - 2,
                           ",\"retryAfterSeconds\":" +
                               std::to_string(retry_after));
    }
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  MetricsRegistry& metrics = server_->metrics();
  const std::string normalized = NormalizeRoute(parts);
  metrics
      .GetHistogram("ires_http_request_seconds",
                    "REST request latency by method and normalized route.",
                    {{"method", method}, {"route", normalized}})
      ->Observe(seconds);
  metrics
      .GetCounter("ires_http_requests_total",
                  "REST requests by method, normalized route and status.",
                  {{"method", method},
                   {"route", normalized},
                   {"code", std::to_string(response.code)}})
      ->Increment();
  return response;
}

ApiResponse RestApi::Dispatch(const std::string& method,
                              const std::vector<std::string>& parts,
                              const std::string& query,
                              const std::string& body,
                              const std::string& path) {
  if (parts.size() < 2 || parts[0] != "apiv1") {
    return NotFoundError("unknown route: " + path);
  }
  const std::string& resource = parts[1];
  if (resource == "engines") return HandleEngines(method, parts, body);
  if (resource == "datasets" || resource == "abstractOperators" ||
      resource == "operators") {
    return HandleDescriptions(method, parts, body);
  }
  if (resource == "workflows") {
    return HandleWorkflows(method, parts, query, body);
  }
  if (resource == "validate" && method == "POST" && parts.size() == 2) {
    return HandleValidate(body);
  }
  if (resource == "sql") return HandleSql(method, parts, query, body);
  if (resource == "jobs") return HandleJobs(method, parts);
  if (resource == "stats" && method == "GET" && parts.size() == 2) {
    return HandleStats();
  }
  if (resource == "metrics" && method == "GET" && parts.size() == 2) {
    return {200, server_->metrics().RenderPrometheus()};
  }
  if (resource == "healthz" && method == "GET" && parts.size() == 2) {
    return HandleHealthz();
  }
  if (resource == "debug" && method == "GET" && parts.size() == 3 &&
      parts[2] == "events") {
    return HandleDebugEvents(query);
  }
  if (resource == "models" && method == "GET" && parts.size() == 3 &&
      parts[2] == "drift") {
    return {200, server_->drift().ToJson()};
  }
  return NotFoundError("unknown resource: " + resource);
}

ApiResponse RestApi::HandleHealthz() {
  const JobService::Stats stats = plane_->AggregateStats();
  const ControlPlane::Health plane_health = plane_->health();
  const size_t capacity = plane_health.queue_capacity;
  const double saturation =
      capacity == 0 ? 0.0
                    : static_cast<double>(stats.queue_depth) /
                          static_cast<double>(capacity);
  const bool saturated = capacity > 0 && stats.queue_depth >= capacity;
  // Execution-substrate saturation: all subsystems share one work-stealing
  // scheduler, so its ready-queue depth is the replica-wide backpressure
  // signal (it replaced the old per-pool ires_pool_pending_tasks gauges).
  // A transient burst is normal; a backlog that *stays* above
  // workers x backlog_per_worker for longer than the grace window means the
  // replica is falling behind and the probe degrades.
  TaskScheduler& sched = server_->scheduler();
  const size_t sched_pending = sched.pending();
  const double backlog_seconds = sched.BacklogSeconds();
  constexpr double kBacklogGraceSeconds = 1.0;
  const bool sched_backlogged = backlog_seconds > kBacklogGraceSeconds;
  // SLO accounting: a burning objective degrades the replica (visible to
  // operators and dashboards) without failing the liveness probe — only
  // saturation, which new submissions cannot survive, turns the probe red.
  const std::string slo_json = server_->slo().ToJson();
  // A down (or suspect) replica degrades the aggregate even when the
  // survivors keep absorbing the load — operators need to see it.
  const bool degraded =
      sched_backlogged || plane_health.degraded ||
      slo_json.find("\"burning\":[]") == std::string::npos;
  const char* status =
      saturated ? "saturated" : (degraded ? "degraded" : "ok");
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\"status\":\"%s\",\"queueDepth\":%zu,"
                "\"queueCapacity\":%zu,\"running\":%zu,\"workers\":%d,"
                "\"saturation\":%.3f,"
                "\"scheduler\":{\"pendingTasks\":%zu,\"workers\":%d,"
                "\"backlogSeconds\":%.3f,\"backlogged\":%s},\"replicas\":[",
                status, stats.queue_depth, capacity, stats.running,
                stats.workers, saturation, sched_pending, sched.worker_count(),
                backlog_seconds, sched_backlogged ? "true" : "false");
  std::string out = buf;
  for (size_t i = 0; i < plane_health.replicas.size(); ++i) {
    const ControlPlane::ReplicaHealth& replica = plane_health.replicas[i];
    char rbuf[224];
    std::snprintf(rbuf, sizeof(rbuf),
                  "%s{\"id\":%d,\"state\":\"%s\",\"partitioned\":%s,"
                  "\"queueDepth\":%zu,\"running\":%zu,"
                  "\"backlogSeconds\":%.3f,\"journalLag\":%llu}",
                  i > 0 ? "," : "", replica.id,
                  ControlPlane::ReplicaStateName(replica.state),
                  replica.partitioned ? "true" : "false", replica.queue_depth,
                  replica.running, replica.backlog_seconds,
                  static_cast<unsigned long long>(replica.journal_lag));
    out += rbuf;
  }
  out += "],\"slo\":";
  return {saturated ? 503 : 200, out + slo_json + "}"};
}

ApiResponse RestApi::HandleDebugEvents(const std::string& query) {
  EventJournal::Filter filter;
  for (const std::string& pair :
       query.empty() ? std::vector<std::string>{} : SplitAndTrim(query, '&')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return ErrorEnvelope(StatusCode::kInvalidArgument,
                           "query parameter needs a value: " + pair);
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    double number = 0.0;
    if (key == "job") {
      filter.job = value;
    } else if (key == "kind") {
      EventKind kind;
      if (!ParseEventKind(value, &kind)) {
        return ErrorEnvelope(StatusCode::kInvalidArgument,
                             "unknown event kind: " + value);
      }
      filter.has_kind = true;
      filter.kind = kind;
    } else if (key == "since") {
      if (!ParseDoubleText(value, &number) || number < 0) {
        return ErrorEnvelope(StatusCode::kInvalidArgument,
                             "since must be a sequence number >= 0");
      }
      filter.since_seq = static_cast<uint64_t>(number);
    } else if (key == "limit") {
      if (!ParseDoubleText(value, &number) || number < 1 || number > 4096) {
        return ErrorEnvelope(StatusCode::kInvalidArgument,
                             "limit must be in [1, 4096]");
      }
      filter.limit = static_cast<size_t>(number);
    } else {
      return ErrorEnvelope(StatusCode::kInvalidArgument,
                           "unknown query parameter: " + key);
    }
  }
  const EventJournal& journal = server_->journal();
  const std::vector<JournalEvent> events = journal.Query(filter);
  const EventJournal::Stats stats = journal.stats();
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                ",\"headSeq\":%llu,\"appended\":%llu,\"dropped\":%llu}",
                static_cast<unsigned long long>(journal.head_seq()),
                static_cast<unsigned long long>(stats.appended),
                static_cast<unsigned long long>(stats.dropped));
  return {200, "{\"events\":" + EventsToJson(events) + tail};
}

ApiResponse RestApi::HandleEngines(const std::string& method,
                                   const std::vector<std::string>& parts,
                                   const std::string& body) {
  if (method == "GET" && parts.size() == 2) {
    // Values are the breaker state names; the historic ON/OFF strings are a
    // subset, so clients switching on them keep working.
    std::string out = "{";
    bool first = true;
    for (const std::string& name : server_->engines().Names()) {
      if (!first) out += ",";
      first = false;
      auto health = server_->engines().HealthOf(name);
      out += "\"" + JsonEscape(name) + "\":\"" +
             (health.ok() ? EngineHealthName(health.value().health)
                          : (server_->engines().IsAvailable(name) ? "ON"
                                                                  : "OFF")) +
             "\"";
    }
    out += "}";
    return {200, out};
  }
  if (method == "GET" && parts.size() == 4 && parts[3] == "health") {
    auto health = server_->engines().HealthOf(parts[2]);
    if (!health.ok()) return FromStatus(health.status());
    const EngineRegistry::HealthSnapshot& snap = health.value();
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "{\"engine\":\"%s\",\"health\":\"%s\",\"available\":%s,"
        "\"suspendedUntil\":%.3f,\"consecutiveTrips\":%d,\"tripsTotal\":%llu,"
        "\"simClockSeconds\":%.3f}",
        JsonEscape(parts[2]).c_str(), EngineHealthName(snap.health),
        server_->engines().IsAvailable(parts[2]) ? "true" : "false",
        snap.suspended_until, snap.consecutive_trips,
        static_cast<unsigned long long>(snap.trips_total),
        server_->engines().sim_clock_seconds());
    return {200, buf};
  }
  if (method == "PUT" && parts.size() == 4 && parts[3] == "availability") {
    const std::string value = ToLower(Trim(body));
    if (value != "on" && value != "off") {
      return ErrorEnvelope(StatusCode::kInvalidArgument,
                           "availability body must be 'on' or 'off'");
    }
    return FromStatus(
        server_->engines().SetAvailable(parts[2], value == "on"));
  }
  return NotFoundError("unknown engines route");
}

ApiResponse RestApi::HandleDescriptions(const std::string& method,
                                        const std::vector<std::string>& parts,
                                        const std::string& body) {
  const std::string& resource = parts[1];
  OperatorLibrary& library = server_->library();
  const ArtifactKind kind = resource == "datasets"
                                ? ArtifactKind::kDataset
                                : resource == "abstractOperators"
                                      ? ArtifactKind::kAbstractOperator
                                      : ArtifactKind::kMaterializedOperator;

  if (method == "GET" && parts.size() == 2) {
    std::vector<std::string> names;
    switch (kind) {
      case ArtifactKind::kDataset:
        for (const auto& [name, d] : library.datasets()) {
          names.push_back(name);
        }
        break;
      case ArtifactKind::kAbstractOperator:
        for (const auto& [name, o] : library.abstract()) {
          names.push_back(name);
        }
        break;
      case ArtifactKind::kMaterializedOperator:
        names = library.MaterializedNames();
        break;
    }
    return {200, JsonStringArray(names)};
  }

  if (parts.size() != 3) {
    return NotFoundError("expected /" + resource + "/{name}");
  }
  const std::string& name = parts[2];

  if (method == "GET") {
    const MetadataTree* meta = nullptr;
    switch (kind) {
      case ArtifactKind::kDataset: {
        const Dataset* d = library.FindDatasetByName(name);
        if (d != nullptr) meta = &d->meta();
        break;
      }
      case ArtifactKind::kAbstractOperator: {
        const AbstractOperator* o = library.FindAbstractByName(name);
        if (o != nullptr) meta = &o->meta();
        break;
      }
      case ArtifactKind::kMaterializedOperator: {
        const MaterializedOperator* o = library.FindMaterializedByName(name);
        if (o != nullptr) meta = &o->meta();
        break;
      }
    }
    if (meta == nullptr) return NotFoundError(resource + ": " + name);
    return {200, "{\"name\":\"" + JsonEscape(name) + "\",\"description\":\"" +
                     JsonEscape(meta->ToDescription()) + "\"}"};
  }

  if (method == "POST") {
    return FromStatus(server_->RegisterArtifact(kind, name, body), 201);
  }
  return NotFoundError("unsupported method " + method);
}

ApiResponse RestApi::HandleValidate(const std::string& body) {
  // Dry-run lint: parse + full analyzer passes, no state change and no
  // reject accounting (nothing was rejected — nothing was submitted).
  auto graph = server_->ParseWorkflow(body);
  if (!graph.ok()) return FromStatus(graph.status());
  const std::vector<Diagnostic> findings =
      server_->ValidateWorkflow(graph.value());
  char head[96];
  std::snprintf(head, sizeof(head),
                "{\"valid\":%s,\"errors\":%zu,\"warnings\":%zu,"
                "\"diagnostics\":",
                HasErrors(findings) ? "false" : "true",
                CountSeverity(findings, DiagSeverity::kError),
                CountSeverity(findings, DiagSeverity::kWarning));
  return {200, std::string(head) + RenderJson(findings) + "}"};
}

/// 422 envelope carrying the structured findings; the admission-rejection
/// shape shared by the materialize/execute routes.
ApiResponse RestApi::ValidationRejection(
    const std::vector<Diagnostic>& findings) {
  CountValidationRejects(&server_->metrics(), findings);
  return {422,
          "{\"error\":{\"code\":\"FailedPrecondition\","
          "\"message\":\"workflow failed validation\",\"diagnostics\":" +
              RenderJson(findings) + "}}"};
}

ApiResponse RestApi::HandleWorkflows(const std::string& method,
                                     const std::vector<std::string>& parts,
                                     const std::string& query,
                                     const std::string& body) {
  if (method == "GET" && parts.size() == 2) {
    ReaderLock lock(workflows_mu_);
    std::vector<std::string> names;
    for (const auto& [name, graph] : workflows_) names.push_back(name);
    return {200, JsonStringArray(names)};
  }
  if (method == "POST" && parts.size() == 3) {
    auto graph = server_->ParseWorkflow(body);
    if (!graph.ok()) return FromStatus(graph.status());
    const Status valid = graph.value().Validate();
    if (!valid.ok()) return FromStatus(valid);
    WriterLock lock(workflows_mu_);
    if (workflows_.count(parts[2]) > 0) {
      return ErrorEnvelope(StatusCode::kAlreadyExists,
                           "workflow exists: " + parts[2]);
    }
    workflows_.emplace(parts[2], std::move(graph).value());
    return {201, "{\"ok\":true}"};
  }
  if (method == "POST" && parts.size() == 4) {
    // Snapshot the graph under the lock; planning/execution run without it.
    WorkflowGraph graph;
    {
      ReaderLock lock(workflows_mu_);
      auto it = workflows_.find(parts[2]);
      if (it == workflows_.end()) {
        return NotFoundError("workflow: " + parts[2]);
      }
      graph = it->second;
    }
    // Deep pre-admission lint (the store route only checks structure — the
    // library may have changed since). Returning here, before Submit, keeps
    // each rejection counted exactly once.
    if (parts[3] == "materialize" || parts[3] == "execute") {
      const std::vector<Diagnostic> findings =
          server_->ValidateWorkflow(graph);
      if (HasErrors(findings)) return ValidationRejection(findings);
    }
    if (parts[3] == "materialize") {
      auto plan = server_->MaterializeWorkflow(graph);
      if (!plan.ok()) return FromStatus(plan.status());
      char head[160];
      std::snprintf(head, sizeof(head),
                    "{\"estimatedSeconds\":%.3f,\"estimatedCost\":%.1f,"
                    "\"steps\":%zu,\"plan\":\"",
                    plan.value().estimated_seconds,
                    plan.value().estimated_cost, plan.value().steps.size());
      return {200,
              std::string(head) + JsonEscape(plan.value().ToString()) + "\"}"};
    }
    if (parts[3] == "execute") {
      JsonValue body_json;
      const JsonValue* options = nullptr;
      const Status extracted =
          ExtractOptionsBody(body, &body_json, &options, /*allow_query=*/false);
      if (!extracted.ok()) return FromStatus(extracted);
      ParsedExecution parsed;
      const Status opt_status = ParseExecutionOptions(query, options, &parsed);
      if (!opt_status.ok()) return FromStatus(opt_status);
      const std::string warnings = WarningsFragment(parsed.warnings);
      if (parsed.async) {
        ControlPlane::SubmitRequest submit;
        submit.workflow_name = parts[2];
        submit.exec = parsed.exec;
        submit.tenant = parsed.tenant;
        submit.idempotency_key = parsed.idempotency_key;
        auto job_id = plane_->Submit(graph, submit);
        if (!job_id.ok()) return FromStatus(job_id.status());
        return {202, "{\"jobId\":\"" + JsonEscape(job_id.value()) + "\"" +
                         warnings + "}"};
      }
      IresServer::WorkflowRunResult result = server_->RunWorkflow(
          graph, OptimizationPolicy::MinimizeTime(), nullptr, parsed.exec);
      if (!result.recovery.status.ok()) {
        return FromStatus(result.recovery.status);
      }
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "{\"executionSeconds\":%.3f,\"planningMs\":%.3f,"
                    "\"replans\":%d,\"stepRetries\":%d,\"planCacheHit\":%s",
                    result.recovery.total_execution_seconds,
                    result.recovery.total_planning_ms,
                    result.recovery.replans, result.recovery.step_retries,
                    result.plan_cache_hit ? "true" : "false");
      return {200, std::string(buf) + warnings + "}"};
    }
  }
  return NotFoundError("unknown workflows route");
}

ApiResponse RestApi::HandleSql(const std::string& method,
                               const std::vector<std::string>& parts,
                               const std::string& query,
                               const std::string& body) {
  if (method != "POST" || parts.size() != 2) {
    return NotFoundError("unknown sql route");
  }
  // The body is either bare SQL text or {"query": "...", "options": {...}}.
  std::string sql_text = body;
  JsonValue body_json;
  const JsonValue* options = nullptr;
  if (!Trim(body).empty() && Trim(body)[0] == '{') {
    const Status extracted =
        ExtractOptionsBody(body, &body_json, &options, /*allow_query=*/true);
    if (!extracted.ok()) return FromStatus(extracted);
    const JsonValue* q = body_json.Find("query");
    if (q == nullptr || !q->is_string()) {
      return ErrorEnvelope(StatusCode::kInvalidArgument,
                           "JSON sql body needs a \"query\" string member");
    }
    sql_text = q->string_value();
  }
  if (Trim(sql_text).empty()) {
    return ErrorEnvelope(StatusCode::kInvalidArgument, "empty SQL query");
  }

  ParsedExecution parsed;
  const Status opt_status = ParseExecutionOptions(query, options, &parsed);
  if (!opt_status.ok()) return FromStatus(opt_status);
  const std::string warnings = WarningsFragment(parsed.warnings);

  // Parse + MuSQLE optimize + lower. Front-end failures carry SQxxx
  // diagnostics and surface as the structured 422 envelope, mirroring the
  // workflow-lint rejections.
  std::vector<Diagnostic> diagnostics;
  auto prepared = sql_->Prepare(sql_text, &diagnostics);
  if (!prepared.ok()) {
    if (!diagnostics.empty()) return ValidationRejection(diagnostics);
    return FromStatus(prepared.status());
  }
  const SqlService::PreparedQuery& pq = prepared.value();

  // The lowered graph goes through the same pre-admission lint as any
  // stored workflow before it reaches the planner.
  const std::vector<Diagnostic> findings = server_->ValidateWorkflow(pq.graph);
  if (HasErrors(findings)) return ValidationRejection(findings);

  char sql_fields[320];
  std::snprintf(sql_fields, sizeof(sql_fields),
                "\"shapeId\":\"%s\",\"shapeCacheHit\":%s,"
                "\"resultEngine\":\"%s\",\"estimatedSeconds\":%.3f,"
                "\"scans\":%d,\"joins\":%d,\"moves\":%d",
                JsonEscape(pq.shape_id).c_str(),
                pq.shape_cache_hit ? "true" : "false",
                JsonEscape(pq.result_engine).c_str(), pq.estimated_seconds,
                pq.scan_ops, pq.join_ops, pq.move_ops);

  if (parsed.async) {
    ControlPlane::SubmitRequest submit;
    submit.workflow_name = pq.shape_id;
    submit.exec = parsed.exec;
    submit.slo_class = "sql";
    submit.tenant = parsed.tenant;
    submit.idempotency_key = parsed.idempotency_key;
    auto job_id = plane_->Submit(pq.graph, submit);
    if (!job_id.ok()) return FromStatus(job_id.status());
    return {202, "{\"jobId\":\"" + JsonEscape(job_id.value()) + "\"," +
                     sql_fields + warnings + "}"};
  }

  IresServer::WorkflowRunResult result = server_->RunWorkflow(
      pq.graph, OptimizationPolicy::MinimizeTime(), nullptr, parsed.exec);
  if (!result.recovery.status.ok()) {
    return FromStatus(result.recovery.status);
  }
  char run_fields[192];
  std::snprintf(run_fields, sizeof(run_fields),
                ",\"executionSeconds\":%.3f,\"planningMs\":%.3f,"
                "\"replans\":%d,\"stepRetries\":%d,\"planCacheHit\":%s",
                result.recovery.total_execution_seconds,
                result.recovery.total_planning_ms, result.recovery.replans,
                result.recovery.step_retries,
                result.plan_cache_hit ? "true" : "false");
  return {200,
          "{" + std::string(sql_fields) + run_fields + warnings + "}"};
}

ApiResponse RestApi::HandleJobs(const std::string& method,
                                const std::vector<std::string>& parts) {
  if (method == "GET" && parts.size() == 2) {
    std::string out = "[";
    bool first = true;
    for (const JobRecord& record : plane_->List()) {
      if (!first) out += ",";
      first = false;
      out += JobRecordJson(record, /*include_plan=*/false);
    }
    out += "]";
    return {200, out};
  }
  if (method == "GET" && parts.size() == 3) {
    auto record = plane_->Get(parts[2]);
    if (!record.ok()) return FromStatus(record.status());
    return {200, JobRecordJson(record.value(), /*include_plan=*/true)};
  }
  if (method == "GET" && parts.size() == 4 && parts[3] == "trace") {
    auto record = plane_->Get(parts[2]);
    if (!record.ok()) return FromStatus(record.status());
    if (!record.value().trace) {
      return ErrorEnvelope(StatusCode::kFailedPrecondition,
                           "job has no trace: " + parts[2]);
    }
    return {200, record.value().trace->ToChromeTraceJson()};
  }
  if (method == "POST" && parts.size() == 4 && parts[3] == "cancel") {
    return FromStatus(plane_->Cancel(parts[2]));
  }
  return NotFoundError("unknown jobs route");
}

ApiResponse RestApi::HandleStats() {
  const JobService::Stats jobs = plane_->AggregateStats();
  const PlanCache::Stats cache = server_->plan_cache().stats();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"jobs\":{\"submitted\":%llu,\"rejected\":%llu,\"succeeded\":%llu,"
      "\"failed\":%llu,\"cancelled\":%llu,\"queueDepth\":%zu,"
      "\"running\":%zu,\"workers\":%d},"
      "\"planCache\":{\"hits\":%llu,\"misses\":%llu,\"insertions\":%llu,"
      "\"evictions\":%llu,\"entries\":%zu}}",
      static_cast<unsigned long long>(jobs.submitted),
      static_cast<unsigned long long>(jobs.rejected),
      static_cast<unsigned long long>(jobs.succeeded),
      static_cast<unsigned long long>(jobs.failed),
      static_cast<unsigned long long>(jobs.cancelled), jobs.queue_depth,
      jobs.running, jobs.workers,
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.insertions),
      static_cast<unsigned long long>(cache.evictions), cache.entries);
  return {200, buf};
}

}  // namespace ires
