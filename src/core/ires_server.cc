#include "core/ires_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "engines/standard_engines.h"
#include "executor/trace.h"
#include "profiling/profiler.h"

namespace ires {

namespace {

/// Bounded-cardinality label for "planner time per DAG size": workflows are
/// bucketed by node count instead of labelling with the raw size.
const char* DagSizeBucket(size_t nodes) {
  if (nodes <= 2) return "1-2";
  if (nodes <= 4) return "3-4";
  if (nodes <= 8) return "5-8";
  if (nodes <= 16) return "9-16";
  return "17+";
}

}  // namespace

Result<OperatorRunEstimate> ModelBasedCostEstimator::Estimate(
    const SimulatedEngine& engine, const OperatorRunRequest& request) const {
  // Feasibility always comes from the engine; each metric prediction is
  // replaced by its refined model when one has been trained.
  auto analytic = engine.Estimate(request);
  if (!analytic.ok()) return analytic.status();
  OperatorRunEstimate estimate = analytic.value();

  const ModelLibrary::OperatorModels* models =
      models_->Find(request.algorithm, engine.name());
  if (models == nullptr) return estimate;
  const Vector features = Profiler::FeatureVector(request);
  MutexLock lock(models->mu);
  if (models->exec_time.has_model()) {
    const double predicted = models->exec_time.Predict(features);
    if (predicted > 0.0) {
      estimate.exec_seconds = predicted;
      estimate.cost = request.resources.CostForDuration(predicted);
    }
  }
  if (models->output_bytes.has_model()) {
    estimate.output_bytes =
        std::max(0.0, models->output_bytes.Predict(features));
  }
  if (models->output_records.has_model()) {
    estimate.output_records =
        std::max(0.0, models->output_records.Predict(features));
  }
  return estimate;
}

const char* ArtifactKindName(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kDataset: return "dataset";
    case ArtifactKind::kAbstractOperator: return "abstractOperator";
    case ArtifactKind::kMaterializedOperator: return "materializedOperator";
  }
  return "?";
}

IresServer::IresServer(Config config)
    : config_(config),
      drift_(DriftObservatory::Options(), &metrics_),
      slo_(&metrics_) {
  TaskScheduler::Options sched_options;
  sched_options.workers = config.scheduler_workers;
  sched_options.metrics = &metrics_;
  sched_options.journal = &journal_;
  sched_options.clock = config.scheduler_clock;
  scheduler_ = std::make_unique<TaskScheduler>(std::move(sched_options));

  engines_ = MakeStandardEngineRegistry();
  engines_->EnableMetrics(&metrics_);
  engines_->EnableJournal(&journal_);

  // Default objectives over the normalized-route request metrics: latency
  // per workload class plus an API-wide availability target. The routes
  // must match NormalizeRoute's output exactly.
  SloSpec dag_latency;
  dag_latency.name = "dag-execute-latency";
  dag_latency.workload = "dag";
  dag_latency.method = "POST";
  dag_latency.route = "/apiv1/workflows/{name}/execute";
  dag_latency.latency_threshold_seconds = 1.0;
  dag_latency.objective = 0.99;
  slo_.AddSlo(dag_latency);
  SloSpec sql_latency;
  sql_latency.name = "sql-latency";
  sql_latency.workload = "sql";
  sql_latency.method = "POST";
  sql_latency.route = "/apiv1/sql";
  sql_latency.latency_threshold_seconds = 1.0;
  sql_latency.objective = 0.99;
  slo_.AddSlo(sql_latency);
  SloSpec availability;
  availability.name = "api-availability";
  availability.workload = "all";
  availability.objective = 0.999;
  slo_.AddSlo(availability);
  cluster_ = std::make_unique<ClusterSimulator>(
      config.cluster_nodes, config.cores_per_node, config.memory_gb_per_node);
  planner_context_ = std::make_unique<PlannerContext>(&library_,
                                                      engines_.get(),
                                                      &metrics_);
  planner_ = std::make_unique<DpPlanner>(&library_, engines_.get(),
                                         planner_context_.get());
  enforcer_ = std::make_unique<Enforcer>(engines_.get(), cluster_.get(),
                                         config.seed);
  monitor_ = std::make_unique<ExecutionMonitor>(engines_.get(),
                                                cluster_.get());
  NsgaResourceProvisioner::Limits limits;
  limits.max_containers = config.cluster_nodes / 2;
  limits.max_cores_per_container = config.cores_per_node;
  limits.max_memory_gb_per_container = config.memory_gb_per_node * 0.85;
  Nsga2::Options ga;
  ga.population = 24;
  ga.generations = 30;
  ga.scheduler = scheduler_.get();
  provisioner_ = std::make_unique<NsgaResourceProvisioner>(limits, ga);
  model_estimator_ = std::make_unique<ModelBasedCostEstimator>(&models_);
  plan_cache_ =
      std::make_unique<PlanCache>(config.plan_cache_capacity, &metrics_);
}

Status IresServer::RegisterArtifact(ArtifactKind kind,
                                    const std::string& name,
                                    const std::string& description) {
  IRES_ASSIGN_OR_RETURN(MetadataTree meta,
                        MetadataTree::ParseDescription(description));
  switch (kind) {
    case ArtifactKind::kDataset:
      return library_.AddDataset(Dataset(name, std::move(meta)));
    case ArtifactKind::kAbstractOperator:
      return library_.AddAbstract(AbstractOperator(name, std::move(meta)));
    case ArtifactKind::kMaterializedOperator:
      return library_.AddMaterialized(
          MaterializedOperator(name, std::move(meta)));
  }
  return Status::InvalidArgument("unknown artifact kind");
}

Status IresServer::ImportLibrary(const OperatorLibrary& library) {
  for (const auto& [name, dataset] : library.datasets()) {
    IRES_RETURN_IF_ERROR(library_.AddDataset(dataset));
  }
  for (const auto& [name, op] : library.abstract()) {
    IRES_RETURN_IF_ERROR(library_.AddAbstract(op));
  }
  for (const auto& [name, op] : library.materialized()) {
    IRES_RETURN_IF_ERROR(library_.AddMaterialized(op));
  }
  return Status::OK();
}

Result<WorkflowGraph> IresServer::ParseWorkflow(
    const std::string& graph_text) const {
  return WorkflowGraph::ParseGraphFile(graph_text, library_);
}

std::vector<Diagnostic> IresServer::ValidateWorkflow(
    const WorkflowGraph& graph, const OptimizationPolicy* policy) const {
  WorkflowAnalyzer::Options options;
  options.library = &library_;
  options.engines = engines_.get();
  options.context = planner_context_.get();
  options.cluster_total_cores = cluster_->total_cores();
  options.cluster_total_memory_gb = cluster_->total_memory_gb();
  return WorkflowAnalyzer(options).Analyze(graph, policy);
}

DpPlanner::Options IresServer::MakePlannerOptions(
    const OptimizationPolicy& policy) {
  DpPlanner::Options options;
  options.policy = policy;
  if (config_.use_refined_models) options.estimator = model_estimator_.get();
  if (config_.provision_resources) options.advisor = provisioner_.get();
  return options;
}

Result<ExecutionPlan> IresServer::MaterializeWorkflow(
    const WorkflowGraph& graph, OptimizationPolicy policy) {
  auto planned = PlanWorkflowCached(graph, policy);
  if (!planned.ok()) return planned.status();
  return std::move(planned).value().plan;
}

Result<IresServer::PlannedWorkflow> IresServer::PlanWorkflowCached(
    const WorkflowGraph& graph, OptimizationPolicy policy,
    TraceContext* trace) {
  PlanCache::Key key;
  key.graph_fingerprint = graph.Fingerprint();
  key.policy = policy.ToString();
  key.library_version = library_.version();
  key.model_version =
      config_.use_refined_models ? models_.version() : 0;
  key.engine_epoch = engines_->availability_epoch();

  // Plan decisions are journaled under the job id (== trace id) so a job's
  // event stream replays why it got the plan it did.
  const JournalWriter writer(&journal_, trace ? trace->trace_id() : "");
  auto plan_chosen_detail = [](const ExecutionPlan& plan) {
    std::string engines;
    for (const std::string& engine : plan.EnginesUsed()) {
      if (!engines.empty()) engines += "+";
      engines += engine;
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "seconds=%.3f steps=%zu engines=",
                  plan.estimated_seconds, plan.steps.size());
    return std::string(buf) + engines;
  };

  const uint64_t lookup_span =
      trace ? trace->BeginSpan("plan.cache_lookup", "plan") : 0;
  auto cached = plan_cache_->Lookup(key);
  if (trace) {
    trace->EndSpan(lookup_span,
                   {{"outcome", cached.has_value() ? "hit" : "miss"}});
  }
  if (cached) {
    PlannedWorkflow out;
    out.plan = std::move(*cached);
    out.cache_hit = true;
    writer.Emit(EventKind::kPlanCacheHit);
    writer.Emit(EventKind::kPlanChosen, -1, "", "", out.plan.estimated_cost,
                plan_chosen_detail(out.plan));
    return out;
  }
  writer.Emit(EventKind::kPlanCacheMiss);

  const uint64_t dp_span = trace ? trace->BeginSpan("plan.dp", "plan") : 0;
  const auto start = std::chrono::steady_clock::now();
  auto plan = planner_->Plan(graph, MakePlannerOptions(policy));
  const double planning_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
  metrics_
      .GetHistogram("ires_planner_plan_seconds",
                    "DP planning latency, labelled by workflow size bucket.",
                    {{"dag_nodes", DagSizeBucket(graph.size())}})
      ->Observe(planning_ms / 1000.0);
  if (trace) {
    trace->EndSpan(dp_span, {{"dag_nodes", std::to_string(graph.size())},
                             {"ok", plan.ok() ? "true" : "false"}});
  }
  if (!plan.ok()) return plan.status();
  PlannedWorkflow out;
  out.plan = std::move(plan).value();
  out.planning_ms = planning_ms;
  writer.Emit(EventKind::kPlanChosen, -1, "", "", out.plan.estimated_cost,
              plan_chosen_detail(out.plan));
  // The key was captured before planning, so a library/model mutation that
  // lands mid-DP leaves this plan filed under the old versions — future
  // lookups (which read the new versions) can never be served the stale
  // plan.
  plan_cache_->Insert(key, out.plan);
  return out;
}

Result<RecoveryOutcome> IresServer::ExecuteWorkflow(
    const WorkflowGraph& graph, OptimizationPolicy policy) {
  auto planned = PlanWorkflowCached(graph, policy);
  if (!planned.ok()) return planned.status();

  RecoveringExecutor recovering(planner_.get(), enforcer_.get(),
                                engines_.get());
  RecoveryOutcome outcome =
      recovering.RunFrom(graph, MakePlannerOptions(policy),
                         ReplanStrategy::kIresReplan, &planned.value().plan,
                         planned.value().planning_ms);
  if (outcome.status.ok()) {
    RefineFromReport(outcome.final_plan, outcome.final_report);
  }
  if (!outcome.status.ok()) return outcome.status;
  return outcome;
}

IresServer::WorkflowRunResult IresServer::RunWorkflow(
    const WorkflowGraph& graph, OptimizationPolicy policy,
    TraceContext* trace) {
  return RunWorkflow(graph, policy, trace, ExecutionOptions());
}

IresServer::WorkflowRunResult IresServer::ExecutePlanned(
    const WorkflowGraph& graph, OptimizationPolicy policy,
    const PlannedWorkflow& planned, TraceContext* trace) {
  return ExecutePlanned(graph, policy, planned, trace, ExecutionOptions());
}

IresServer::WorkflowRunResult IresServer::RunWorkflow(
    const WorkflowGraph& graph, OptimizationPolicy policy,
    TraceContext* trace, const ExecutionOptions& exec) {
  auto planned = PlanWorkflowCached(graph, policy, trace);
  if (!planned.ok()) {
    WorkflowRunResult result;
    result.recovery.status = planned.status();
    return result;
  }
  return ExecutePlanned(graph, policy, planned.value(), trace, exec);
}

IresServer::WorkflowRunResult IresServer::ExecutePlanned(
    const WorkflowGraph& graph, OptimizationPolicy policy,
    const PlannedWorkflow& planned, TraceContext* trace,
    const ExecutionOptions& exec) {
  WorkflowRunResult result;
  result.plan = planned.plan;
  result.plan_cache_hit = planned.cache_hit;

  // Each run simulates on its own cluster view (every sequential
  // ExecuteWorkflow run also starts from an idle cluster, so semantics
  // match) with a distinct noise stream; the engine registry — and with it
  // availability flips from failure recovery — stays shared.
  ClusterSimulator cluster(config_.cluster_nodes, config_.cores_per_node,
                           config_.memory_gb_per_node);
  const uint64_t run_id =
      run_counter_.fetch_add(1, std::memory_order_acq_rel);
  Enforcer enforcer(engines_.get(), &cluster,
                    config_.seed + 0x9e3779b97f4a7c15ull * (run_id + 1));
  enforcer.set_retry_policy(exec.retry);
  if (exec.step_observer) enforcer.set_step_observer(exec.step_observer);
  const std::string job_id = trace ? trace->trace_id() : "";
  const JournalWriter writer(&journal_, job_id);
  enforcer.set_journal(writer);
  ChaosScheduler chaos(exec.chaos);
  chaos.Arm(&enforcer);
  RecoveringExecutor recovering(planner_.get(), &enforcer, engines_.get());
  recovering.set_max_replans(exec.max_replans);
  recovering.set_journal(writer);
  const uint64_t exec_span =
      trace ? trace->BeginSpan("job.execute", "job") : 0;
  DpPlanner::Options planner_options = MakePlannerOptions(policy);
  const ExecutionPlan* initial_plan = &planned.plan;
  if (!exec.resume_materialized.empty()) {
    // Failover resume: the cached plan predates the crash; replan with the
    // journaled checkpoints entering the dpTable at cost 0 so the resumed
    // run schedules only the residual workflow.
    planner_options.materialized_intermediates = exec.resume_materialized;
    initial_plan = nullptr;
  }
  result.recovery = recovering.RunFrom(graph, planner_options, exec.strategy,
                                       initial_plan, planned.planning_ms);
  result.chaos_injected = chaos.counts();
  RecordRecoveryMetrics(result.recovery, exec, result.chaos_injected);
  if (trace) {
    char sim[32];
    std::snprintf(sim, sizeof(sim), "%.3f",
                  result.recovery.total_execution_seconds);
    trace->EndSpan(exec_span,
                   {{"simulatedSeconds", sim},
                    {"replans", std::to_string(result.recovery.replans)},
                    {"ok", result.recovery.status.ok() ? "true" : "false"}});
    AddExecutionSpans(result.recovery.final_plan,
                      result.recovery.final_report, trace);
  }
  RecordExecutionMetrics(result.recovery.final_plan,
                         result.recovery.final_report);
  // Drift feeds on every completed step, success or not — a failed run's
  // completed prefix is still evidence about the cost models.
  ObserveDrift(result.recovery.final_plan, result.recovery.final_report,
               job_id);
  if (result.recovery.status.ok()) {
    const uint64_t refine_span =
        trace ? trace->BeginSpan("model.refine", "model") : 0;
    RefineFromReport(result.recovery.final_plan,
                     result.recovery.final_report);
    if (trace) trace->EndSpan(refine_span);
  }
  return result;
}

void IresServer::RecordRecoveryMetrics(
    const RecoveryOutcome& recovery, const ExecutionOptions& exec,
    const ChaosScheduler::Counts& injected) {
  metrics_
      .GetCounter("ires_step_retries_total",
                  "In-place step retries (transient faults and straggler "
                  "kills) across all runs.")
      ->Increment(static_cast<uint64_t>(recovery.step_retries));
  metrics_
      .GetCounter("ires_replans_total",
                  "Workflow replanning rounds by recovery strategy.",
                  {{"strategy", ReplanStrategyName(exec.strategy)}})
      ->Increment(static_cast<uint64_t>(recovery.replans));
  for (const FailureEvent& failure : recovery.failures) {
    metrics_
        .GetCounter("ires_workflow_failures_total",
                    "Workflow-level execution-attempt failures by domain.",
                    {{"kind", FailureKindName(failure.kind)}})
        ->Increment();
  }
  if (exec.chaos.enabled()) {
    const std::string help = "Chaos-injected faults by failure domain.";
    metrics_.GetCounter("ires_chaos_injected_total", help,
                        {{"kind", "transient"}})
        ->Increment(injected.transient);
    metrics_.GetCounter("ires_chaos_injected_total", help,
                        {{"kind", "timeout"}})
        ->Increment(injected.timeout);
    metrics_.GetCounter("ires_chaos_injected_total", help,
                        {{"kind", "engine_crash"}})
        ->Increment(injected.engine_crash);
  }
}

void IresServer::RecordExecutionMetrics(const ExecutionPlan& plan,
                                        const ExecutionReport& report) {
  // Per-engine accounting over every step that actually ran, successful or
  // not — failed steps still consumed simulated time on their engine.
  for (const PlanStep& step : plan.steps) {
    if (step.id < 0 || step.id >= static_cast<int>(report.steps.size())) {
      continue;
    }
    const StepResult& result = report.steps[step.id];
    if (result.step_id < 0) continue;
    // A step caught mid-backoff by an abort has no finish time; skip it
    // rather than credit a negative duration.
    if (result.finish_seconds < result.start_seconds) continue;
    const char* kind =
        step.kind == PlanStep::Kind::kMove ? "move" : "operator";
    metrics_
        .GetCounter("ires_engine_steps_total",
                    "Executed plan steps by engine and step kind.",
                    {{"engine", step.engine}, {"kind", kind}})
        ->Increment();
    metrics_
        .GetCounter("ires_engine_sim_milliseconds_total",
                    "Simulated execution time by engine, in milliseconds.",
                    {{"engine", step.engine}})
        ->Increment(static_cast<uint64_t>(
            (result.finish_seconds - result.start_seconds) * 1000.0));
  }
}

void IresServer::ObserveDrift(const ExecutionPlan& plan,
                              const ExecutionReport& report,
                              const std::string& job_id) {
  for (const PlanStep& step : plan.steps) {
    if (step.kind != PlanStep::Kind::kOperator) continue;
    if (step.id < 0 || step.id >= static_cast<int>(report.steps.size())) {
      continue;
    }
    const StepResult& result = report.steps[step.id];
    if (result.step_id < 0 || !result.status.ok()) continue;
    const double actual = result.finish_seconds - result.start_seconds;
    if (actual < 0.0) continue;
    const bool newly_flagged = drift_.Observe(
        step.algorithm, step.engine, step.estimated_seconds, actual, job_id);
    if (!newly_flagged) continue;
    // High drift means the estimator's view of this pair is stale; force a
    // refit from its sample window right now instead of waiting for the
    // periodic refit interval.
    ModelLibrary::OperatorModels* models =
        models_.Get(step.algorithm, step.engine);
    if (models != nullptr) {
      MutexLock lock(models->mu);
      (void)models->exec_time.Refit();
    }
    metrics_
        .GetCounter("ires_model_refit_forced_total",
                    "Forced exec-time refits triggered by drift flagging.",
                    {{"engine", step.engine}})
        ->Increment();
  }
}

// Analysis waiver: hands out a pointer to a pair-guarded estimator without
// the pair lock. This is an inspection accessor for tests and offline tools
// only — the quiescence contract is the caller's (see the header comment),
// and no lock discipline here could check it.
OnlineEstimator* IresServer::estimator(
    const std::string& algorithm,
    const std::string& engine) NO_THREAD_SAFETY_ANALYSIS {
  return &models_.Get(algorithm, engine)->exec_time;
}

void IresServer::RefineFromReport(const ExecutionPlan& plan,
                                  const ExecutionReport& report) {
  // Model refinement (deliverable §2.2.2): every successfully executed
  // operator feeds its observed runtime back into the estimator library.
  for (const PlanStep& step : plan.steps) {
    if (step.kind != PlanStep::Kind::kOperator) continue;
    const StepResult& result = report.steps[step.id];
    if (!result.status.ok()) continue;
    OperatorRunRequest request;
    request.algorithm = step.algorithm;
    request.input_bytes = step.input_bytes;
    request.input_records = step.input_records;
    request.resources = step.resources;
    request.params = step.params;
    double output_bytes = 0.0, output_records = 0.0;
    for (const DatasetInstance& out : step.outputs) {
      output_bytes += out.bytes;
      output_records += out.records;
    }
    const double error =
        models_.ObserveRun(step.algorithm, step.engine, request,
                           result.finish_seconds - result.start_seconds,
                           output_bytes, output_records);
    metrics_
        .GetCounter("ires_model_refinements_total",
                    "Model-refinement updates by engine.",
                    {{"engine", step.engine}})
        ->Increment();
    metrics_
        .GetHistogram(
            "ires_model_refine_relative_error",
            "Pre-absorption relative error of the exec-time estimator.",
            {},
            {0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0})
        ->Observe(error);
  }
}

}  // namespace ires
