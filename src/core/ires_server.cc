#include "core/ires_server.h"

#include <algorithm>

#include "engines/standard_engines.h"
#include "profiling/profiler.h"

namespace ires {

Result<OperatorRunEstimate> ModelBasedCostEstimator::Estimate(
    const SimulatedEngine& engine, const OperatorRunRequest& request) const {
  // Feasibility always comes from the engine; each metric prediction is
  // replaced by its refined model when one has been trained.
  auto analytic = engine.Estimate(request);
  if (!analytic.ok()) return analytic.status();
  OperatorRunEstimate estimate = analytic.value();

  const ModelLibrary::OperatorModels* models =
      models_->Find(request.algorithm, engine.name());
  if (models == nullptr) return estimate;
  const Vector features = Profiler::FeatureVector(request);
  if (models->exec_time.has_model()) {
    const double predicted = models->exec_time.Predict(features);
    if (predicted > 0.0) {
      estimate.exec_seconds = predicted;
      estimate.cost = request.resources.CostForDuration(predicted);
    }
  }
  if (models->output_bytes.has_model()) {
    estimate.output_bytes =
        std::max(0.0, models->output_bytes.Predict(features));
  }
  if (models->output_records.has_model()) {
    estimate.output_records =
        std::max(0.0, models->output_records.Predict(features));
  }
  return estimate;
}

IresServer::IresServer(Config config) : config_(config) {
  engines_ = MakeStandardEngineRegistry();
  cluster_ = std::make_unique<ClusterSimulator>(
      config.cluster_nodes, config.cores_per_node, config.memory_gb_per_node);
  planner_ = std::make_unique<DpPlanner>(&library_, engines_.get());
  enforcer_ = std::make_unique<Enforcer>(engines_.get(), cluster_.get(),
                                         config.seed);
  monitor_ = std::make_unique<ExecutionMonitor>(engines_.get(),
                                                cluster_.get());
  NsgaResourceProvisioner::Limits limits;
  limits.max_containers = config.cluster_nodes / 2;
  limits.max_cores_per_container = config.cores_per_node;
  limits.max_memory_gb_per_container = config.memory_gb_per_node * 0.85;
  Nsga2::Options ga;
  ga.population = 24;
  ga.generations = 30;
  provisioner_ = std::make_unique<NsgaResourceProvisioner>(limits, ga);
  model_estimator_ = std::make_unique<ModelBasedCostEstimator>(&models_);
}

Status IresServer::RegisterDataset(const std::string& name,
                                   const std::string& description) {
  IRES_ASSIGN_OR_RETURN(MetadataTree meta,
                        MetadataTree::ParseDescription(description));
  return library_.AddDataset(Dataset(name, std::move(meta)));
}

Status IresServer::RegisterAbstractOperator(const std::string& name,
                                            const std::string& description) {
  IRES_ASSIGN_OR_RETURN(MetadataTree meta,
                        MetadataTree::ParseDescription(description));
  return library_.AddAbstract(AbstractOperator(name, std::move(meta)));
}

Status IresServer::RegisterMaterializedOperator(
    const std::string& name, const std::string& description) {
  IRES_ASSIGN_OR_RETURN(MetadataTree meta,
                        MetadataTree::ParseDescription(description));
  return library_.AddMaterialized(MaterializedOperator(name, std::move(meta)));
}

Status IresServer::ImportLibrary(const OperatorLibrary& library) {
  for (const auto& [name, dataset] : library.datasets()) {
    IRES_RETURN_IF_ERROR(library_.AddDataset(dataset));
  }
  for (const auto& [name, op] : library.abstract()) {
    IRES_RETURN_IF_ERROR(library_.AddAbstract(op));
  }
  for (const auto& [name, op] : library.materialized()) {
    IRES_RETURN_IF_ERROR(library_.AddMaterialized(op));
  }
  return Status::OK();
}

Result<WorkflowGraph> IresServer::ParseWorkflow(
    const std::string& graph_text) const {
  return WorkflowGraph::ParseGraphFile(graph_text, library_);
}

Result<ExecutionPlan> IresServer::MaterializeWorkflow(
    const WorkflowGraph& graph, OptimizationPolicy policy) {
  DpPlanner::Options options;
  options.policy = policy;
  if (config_.use_refined_models) options.estimator = model_estimator_.get();
  if (config_.provision_resources) options.advisor = provisioner_.get();
  return planner_->Plan(graph, options);
}

Result<RecoveryOutcome> IresServer::ExecuteWorkflow(
    const WorkflowGraph& graph, OptimizationPolicy policy) {
  DpPlanner::Options options;
  options.policy = policy;
  if (config_.use_refined_models) options.estimator = model_estimator_.get();
  if (config_.provision_resources) options.advisor = provisioner_.get();

  RecoveringExecutor recovering(planner_.get(), enforcer_.get(),
                                engines_.get());
  auto outcome = recovering.Run(graph, options, ReplanStrategy::kIresReplan);
  if (outcome.ok()) {
    RefineFromReport(outcome.value().final_plan,
                     outcome.value().final_report);
  }
  return outcome;
}

OnlineEstimator* IresServer::estimator(const std::string& algorithm,
                                       const std::string& engine) {
  return &models_.Get(algorithm, engine)->exec_time;
}

void IresServer::RefineFromReport(const ExecutionPlan& plan,
                                  const ExecutionReport& report) {
  // Model refinement (deliverable §2.2.2): every successfully executed
  // operator feeds its observed runtime back into the estimator library.
  for (const PlanStep& step : plan.steps) {
    if (step.kind != PlanStep::Kind::kOperator) continue;
    const StepResult& result = report.steps[step.id];
    if (!result.status.ok()) continue;
    OperatorRunRequest request;
    request.algorithm = step.algorithm;
    request.input_bytes = step.input_bytes;
    request.input_records = step.input_records;
    request.resources = step.resources;
    request.params = step.params;
    double output_bytes = 0.0, output_records = 0.0;
    for (const DatasetInstance& out : step.outputs) {
      output_bytes += out.bytes;
      output_records += out.records;
    }
    models_.ObserveRun(step.algorithm, step.engine, request,
                       result.finish_seconds - result.start_seconds,
                       output_bytes, output_records);
  }
}

}  // namespace ires
