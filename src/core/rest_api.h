#ifndef IRES_CORE_REST_API_H_
#define IRES_CORE_REST_API_H_

#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/strings.h"
#include "common/thread_annotations.h"
#include "core/ires_server.h"
#include "core/request_options.h"
#include "service/control_plane.h"
#include "service/job_service.h"
#include "service/sql_service.h"

namespace ires {

/// Response of one API call: an HTTP-style status code plus a JSON body,
/// plus any response headers a transport should forward (currently just
/// Retry-After on 429/503).
struct ApiResponse {
  int code = 200;
  std::string body;
  std::map<std::string, std::string> headers;

  bool ok() const { return code >= 200 && code < 300; }
};

/// The platform's external API (deliverable §3.5): the IReS server exposes
/// its functionality to the rest of the ASAP components through a RESTful
/// interface. This class implements the resource routing and JSON
/// serialization; a transport (HTTP server, CLI, tests) feeds it
/// (method, path, body) triples. Handle is thread-safe: concurrent callers
/// may register artefacts, store workflows and submit jobs at once.
/// Supported routes:
///
///   GET  /apiv1/engines                         list engines + status
///   PUT  /apiv1/engines/{name}/availability     body: "on" | "off"
///   GET  /apiv1/datasets                        list datasets
///   GET  /apiv1/datasets/{name}                 one description
///   POST /apiv1/datasets/{name}                 body: description text
///   GET  /apiv1/abstractOperators[/{name}]
///   POST /apiv1/abstractOperators/{name}
///   GET  /apiv1/operators[/{name}]              materialized operators
///   POST /apiv1/operators/{name}                (the send_operator.sh path)
///   GET  /apiv1/workflows                       list stored workflows
///   POST /apiv1/workflows/{name}                body: `graph` file text
///   POST /apiv1/validate                        dry-run workflow lint;
///                                               200 + {"valid",...,
///                                               "diagnostics":[...]}
///   POST /apiv1/workflows/{name}/materialize    plan; returns the plan
///   POST /apiv1/workflows/{name}/execute        plan + run + refine models
///   POST /apiv1/workflows/{name}/execute?mode=async
///                                               submit; 202 + {"jobId":...}
///   POST /apiv1/sql                             body: SQL text, or
///                                               {"query":"...","options":{}}
///                                               optimize + lower + run
///                                               (?mode=async submits a job)
///   GET  /apiv1/jobs                            list job summaries
///   GET  /apiv1/jobs/{id}                       one job record
///   GET  /apiv1/jobs/{id}/trace                 Chrome trace-event JSON
///   POST /apiv1/jobs/{id}/cancel                cancel a queued/running job
///   GET  /apiv1/stats                           serving + plan-cache counters
///   GET  /apiv1/metrics                         Prometheus text exposition
///   GET  /apiv1/healthz                         liveness + queue saturation
///                                               + SLO burn rates (degraded)
///   GET  /apiv1/debug/events?job=&kind=&since=&limit=
///                                               flight-recorder query
///   GET  /apiv1/models/drift                    cost-model drift by
///                                               (operator, engine) pair
///
/// The execute and sql routes accept a structured JSON `options` body
/// (`{"execution":{...},"retry":{...},"chaos":{...}}`, see
/// core/request_options.h). The flat tuning query parameters of the
/// pre-options API remain as deprecated aliases for one release; responses
/// to requests that still use them carry a "warnings" array.
///
/// Every request is timed into `ires_http_request_seconds{method,route}`
/// and counted in `ires_http_requests_total{method,route,code}`, with
/// `route` normalized ({name}/{id} placeholders) to keep label cardinality
/// bounded.
///
/// Error envelope: every non-2xx response body is
///   {"error":{"code":"<StatusCode name>","message":"<detail>"}}
/// Workflow-lint rejections (materialize/execute of an invalid workflow)
/// additionally carry "diagnostics": a JSON array of structured findings
/// (code, severity, location, message, fixHint) from the analysis layer.
/// with StatusCode mapped to HTTP in one place:
///   kNotFound            -> 404     kAlreadyExists       -> 409
///   kInvalidArgument     -> 400     kFailedPrecondition  -> 422
///   kResourceExhausted   -> 429     kUnavailable         -> 503
///   anything else        -> 500
class RestApi {
 public:
  /// Owns a default-configured single-replica ControlPlane for the async
  /// routes (the job-service behavior of old, plus journaling).
  explicit RestApi(IresServer* server);

  /// Wraps an externally configured JobService (not owned) as the control
  /// plane's single replica — lets tests and deployments bound the worker
  /// pool / admission queue themselves.
  RestApi(IresServer* server, JobService* jobs);

  /// Serves an externally configured (possibly multi-replica) control
  /// plane (not owned).
  RestApi(IresServer* server, ControlPlane* plane);

  ~RestApi();

  /// Dispatches one request. Unknown routes return 404; other failures
  /// follow the error-envelope table above.
  ApiResponse Handle(const std::string& method, const std::string& path,
                     const std::string& body = "");

 private:
  ApiResponse Dispatch(const std::string& method,
                       const std::vector<std::string>& parts,
                       const std::string& query, const std::string& body,
                       const std::string& path);
  ApiResponse HandleEngines(const std::string& method,
                            const std::vector<std::string>& parts,
                            const std::string& body);
  ApiResponse HandleDescriptions(const std::string& method,
                                 const std::vector<std::string>& parts,
                                 const std::string& body);
  ApiResponse HandleWorkflows(const std::string& method,
                              const std::vector<std::string>& parts,
                              const std::string& query,
                              const std::string& body)
      EXCLUDES(workflows_mu_);
  ApiResponse HandleValidate(const std::string& body);
  ApiResponse HandleSql(const std::string& method,
                        const std::vector<std::string>& parts,
                        const std::string& query, const std::string& body);
  ApiResponse ValidationRejection(const std::vector<Diagnostic>& findings);
  ApiResponse HandleJobs(const std::string& method,
                         const std::vector<std::string>& parts);
  ApiResponse HandleStats();
  ApiResponse HandleHealthz();
  ApiResponse HandleDebugEvents(const std::string& query);

  IresServer* server_;
  std::unique_ptr<ControlPlane> owned_plane_;
  ControlPlane* plane_;
  std::unique_ptr<SqlService> sql_;
  /// The workflow store is read-mostly (every execute/materialize snapshots
  /// a graph; stores are rare), so readers share the lock. kRestApiWorkflows
  /// is the outermost rank: handler sections lock it before any service or
  /// planner lock can be taken downstream.
  SharedMutex workflows_mu_{LockRank::kRestApiWorkflows, "rest.workflows"};
  std::map<std::string, WorkflowGraph> workflows_ GUARDED_BY(workflows_mu_);
};

}  // namespace ires

#endif  // IRES_CORE_REST_API_H_
