#ifndef IRES_CORE_REST_API_H_
#define IRES_CORE_REST_API_H_

#include <map>
#include <string>

#include "core/ires_server.h"

namespace ires {

/// Response of one API call: an HTTP-style status code plus a JSON body.
struct ApiResponse {
  int code = 200;
  std::string body;

  bool ok() const { return code >= 200 && code < 300; }
};

/// The platform's external API (deliverable §3.5): the IReS server exposes
/// its functionality to the rest of the ASAP components through a RESTful
/// interface. This class implements the resource routing and JSON
/// serialization; a transport (HTTP server, CLI, tests) feeds it
/// (method, path, body) triples. Supported routes:
///
///   GET  /apiv1/engines                         list engines + status
///   PUT  /apiv1/engines/{name}/availability     body: "on" | "off"
///   GET  /apiv1/datasets                        list datasets
///   GET  /apiv1/datasets/{name}                 one description
///   POST /apiv1/datasets/{name}                 body: description text
///   GET  /apiv1/abstractOperators[/{name}]
///   POST /apiv1/abstractOperators/{name}
///   GET  /apiv1/operators[/{name}]              materialized operators
///   POST /apiv1/operators/{name}                (the send_operator.sh path)
///   GET  /apiv1/workflows                       list stored workflows
///   POST /apiv1/workflows/{name}                body: `graph` file text
///   POST /apiv1/workflows/{name}/materialize    plan; returns the plan
///   POST /apiv1/workflows/{name}/execute        plan + run + refine models
class RestApi {
 public:
  explicit RestApi(IresServer* server) : server_(server) {}

  /// Dispatches one request. Unknown routes return 404, bad payloads 400,
  /// conflicts 409, planner/executor failures 422/500.
  ApiResponse Handle(const std::string& method, const std::string& path,
                     const std::string& body = "");

 private:
  ApiResponse HandleEngines(const std::string& method,
                            const std::vector<std::string>& parts,
                            const std::string& body);
  ApiResponse HandleDescriptions(const std::string& method,
                                 const std::vector<std::string>& parts,
                                 const std::string& body);
  ApiResponse HandleWorkflows(const std::string& method,
                              const std::vector<std::string>& parts,
                              const std::string& body);

  IresServer* server_;
  std::map<std::string, WorkflowGraph> workflows_;
};

/// Minimal JSON string escaping for API payloads.
std::string JsonEscape(const std::string& text);

}  // namespace ires

#endif  // IRES_CORE_REST_API_H_
