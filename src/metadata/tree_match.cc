#include "metadata/tree_match.h"

namespace ires {

namespace {

// Recursive ordered merge. `prefix` tracks the dotted path for diagnostics.
MatchResult MatchNodes(const MetadataTree::Node& pattern,
                       const MetadataTree::Node& concrete,
                       const std::string& prefix) {
  if (pattern.value.has_value() &&
      *pattern.value != MetadataTree::kWildcard) {
    if (!concrete.value.has_value() || *concrete.value != *pattern.value) {
      return MatchResult::Fail(prefix);
    }
  }
  // Linear merge over the lexicographically ordered children: advance the
  // concrete iterator to each pattern label; std::map iteration order makes
  // this a single pass over both child lists.
  auto cit = concrete.children.begin();
  for (const auto& [label, pattern_child] : pattern.children) {
    while (cit != concrete.children.end() && cit->first < label) ++cit;
    const std::string child_path =
        prefix.empty() ? label : prefix + "." + label;
    if (cit == concrete.children.end() || cit->first != label) {
      return MatchResult::Fail(child_path);
    }
    MatchResult r = MatchNodes(pattern_child, cit->second, child_path);
    if (!r.matched) return r;
    ++cit;
  }
  return MatchResult::Ok();
}

}  // namespace

MatchResult MatchTrees(const MetadataTree& pattern,
                       const MetadataTree& concrete) {
  return MatchNodes(pattern.root(), concrete.root(), "");
}

MatchResult MatchTreeNodes(const MetadataTree::Node& pattern,
                           const MetadataTree::Node& concrete,
                           const std::string& prefix) {
  return MatchNodes(pattern, concrete, prefix);
}

MatchResult MatchSubtrees(const MetadataTree& pattern,
                          const MetadataTree& concrete,
                          std::string_view path) {
  const MetadataTree::Node* pattern_sub = pattern.Find(path);
  if (pattern_sub == nullptr) return MatchResult::Ok();
  const MetadataTree::Node* concrete_sub = concrete.Find(path);
  if (concrete_sub == nullptr) {
    return MatchResult::Fail(std::string(path));
  }
  return MatchNodes(*pattern_sub, *concrete_sub, std::string(path));
}

}  // namespace ires
