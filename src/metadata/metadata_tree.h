#ifndef IRES_METADATA_METADATA_TREE_H_
#define IRES_METADATA_METADATA_TREE_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ires {

/// The generic tree of properties that accompanies every IReS dataset and
/// operator (deliverable §2.1). Nodes are string-labelled and children are
/// kept lexicographically ordered (std::map), which is what enables the
/// one-pass O(t) matching algorithm in tree_match.h.
///
/// Trees are populated from dotted paths, mirroring the on-disk description
/// format used by the platform:
///
///   Constraints.Engine=Spark
///   Constraints.OpSpecification.Algorithm.name=TF_IDF
///   Execution.Argument0=In0.path.local
///
/// Leaf values are strings; the special value "*" acts as a wildcard during
/// abstract/materialized matching.
class MetadataTree {
 public:
  /// Wildcard leaf value: matches any concrete value for the same path.
  static constexpr std::string_view kWildcard = "*";

  struct Node {
    std::optional<std::string> value;
    std::map<std::string, Node> children;

    bool IsLeaf() const { return children.empty(); }
  };

  MetadataTree() = default;

  /// Sets the value at the dotted `path`, creating intermediate nodes.
  /// Overwrites any previous value at that path.
  void Set(std::string_view path, std::string value);

  /// Returns the value at `path`, or nullopt when the node is absent or has
  /// no value of its own.
  std::optional<std::string> Get(std::string_view path) const;

  /// Returns the value at `path` or `fallback` when absent.
  std::string GetOr(std::string_view path, std::string fallback) const;

  /// True when a node (leaf or interior) exists at `path`.
  bool Has(std::string_view path) const;

  /// Returns the subtree rooted at `path`, or nullptr when absent. The
  /// pointer is invalidated by subsequent mutation.
  const Node* Find(std::string_view path) const;

  /// Removes the node at `path` (and its subtree). Returns true if removed.
  bool Erase(std::string_view path);

  /// Lists the immediate child labels of the node at `path` (empty path =
  /// root), in lexicographic order.
  std::vector<std::string> ChildLabels(std::string_view path) const;

  /// Flattens the tree back to sorted "path=value" pairs (leaves with values
  /// only). Interior nodes that carry a value are included too.
  std::vector<std::pair<std::string, std::string>> Flatten() const;

  /// Serializes to the on-disk description format (one `path=value` line per
  /// flattened entry, sorted).
  std::string ToDescription() const;

  /// Parses the on-disk description format: `path=value` lines, `#` comments,
  /// blank lines ignored, `\:` unescaped to `:` inside values (the format the
  /// deliverable uses for HDFS paths). Returns InvalidArgument on lines
  /// without '=' or with an empty path.
  static Result<MetadataTree> ParseDescription(std::string_view text);

  /// Total number of nodes, excluding the root. Matching cost is O(nodes).
  size_t NodeCount() const;

  bool Empty() const { return root_.children.empty() && !root_.value; }

  const Node& root() const { return root_; }

  /// Structural + value equality.
  friend bool operator==(const MetadataTree& a, const MetadataTree& b);

 private:
  Node* FindMutable(std::string_view path, bool create);
  const Node* FindConst(std::string_view path) const;

  Node root_;
};

}  // namespace ires

#endif  // IRES_METADATA_METADATA_TREE_H_
