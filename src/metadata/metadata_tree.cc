#include "metadata/metadata_tree.h"

#include <functional>

#include "common/strings.h"

namespace ires {

namespace {

// Splits a dotted path into segments; empty path -> no segments.
std::vector<std::string> PathSegments(std::string_view path) {
  if (path.empty()) return {};
  return Split(path, '.');
}

}  // namespace

void MetadataTree::Set(std::string_view path, std::string value) {
  Node* node = FindMutable(path, /*create=*/true);
  node->value = std::move(value);
}

std::optional<std::string> MetadataTree::Get(std::string_view path) const {
  const Node* node = FindConst(path);
  if (node == nullptr) return std::nullopt;
  return node->value;
}

std::string MetadataTree::GetOr(std::string_view path,
                                std::string fallback) const {
  std::optional<std::string> v = Get(path);
  return v.has_value() ? *v : std::move(fallback);
}

bool MetadataTree::Has(std::string_view path) const {
  return FindConst(path) != nullptr;
}

const MetadataTree::Node* MetadataTree::Find(std::string_view path) const {
  return FindConst(path);
}

bool MetadataTree::Erase(std::string_view path) {
  std::vector<std::string> segments = PathSegments(path);
  if (segments.empty()) return false;
  Node* node = &root_;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    auto it = node->children.find(segments[i]);
    if (it == node->children.end()) return false;
    node = &it->second;
  }
  return node->children.erase(segments.back()) > 0;
}

std::vector<std::string> MetadataTree::ChildLabels(
    std::string_view path) const {
  const Node* node = FindConst(path);
  std::vector<std::string> labels;
  if (node == nullptr) return labels;
  labels.reserve(node->children.size());
  for (const auto& [label, child] : node->children) labels.push_back(label);
  return labels;
}

std::vector<std::pair<std::string, std::string>> MetadataTree::Flatten()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  std::function<void(const Node&, const std::string&)> visit =
      [&](const Node& node, const std::string& prefix) {
        if (node.value.has_value() && !prefix.empty()) {
          out.emplace_back(prefix, *node.value);
        }
        for (const auto& [label, child] : node.children) {
          visit(child, prefix.empty() ? label : prefix + "." + label);
        }
      };
  visit(root_, "");
  return out;
}

std::string MetadataTree::ToDescription() const {
  std::string out;
  for (const auto& [path, value] : Flatten()) {
    out += path;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

Result<MetadataTree> MetadataTree::ParseDescription(std::string_view text) {
  MetadataTree tree;
  int line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("description line " +
                                     std::to_string(line_no) +
                                     " has no '=': " + line);
    }
    std::string path = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    if (path.empty()) {
      return Status::InvalidArgument("description line " +
                                     std::to_string(line_no) +
                                     " has an empty path");
    }
    // Unescape "\:" (used by the platform for HDFS URIs).
    std::string unescaped;
    unescaped.reserve(value.size());
    for (size_t i = 0; i < value.size(); ++i) {
      if (value[i] == '\\' && i + 1 < value.size() && value[i + 1] == ':') {
        unescaped += ':';
        ++i;
      } else {
        unescaped += value[i];
      }
    }
    tree.Set(path, std::move(unescaped));
  }
  return tree;
}

size_t MetadataTree::NodeCount() const {
  std::function<size_t(const Node&)> count = [&](const Node& node) -> size_t {
    size_t n = 0;
    for (const auto& [label, child] : node.children) n += 1 + count(child);
    return n;
  };
  return count(root_);
}

namespace {
bool NodesEqual(const MetadataTree::Node& a, const MetadataTree::Node& b) {
  if (a.value != b.value) return false;
  if (a.children.size() != b.children.size()) return false;
  auto ia = a.children.begin();
  auto ib = b.children.begin();
  for (; ia != a.children.end(); ++ia, ++ib) {
    if (ia->first != ib->first) return false;
    if (!NodesEqual(ia->second, ib->second)) return false;
  }
  return true;
}
}  // namespace

bool operator==(const MetadataTree& a, const MetadataTree& b) {
  return NodesEqual(a.root_, b.root_);
}

MetadataTree::Node* MetadataTree::FindMutable(std::string_view path,
                                              bool create) {
  Node* node = &root_;
  for (const std::string& segment : PathSegments(path)) {
    if (create) {
      node = &node->children[segment];
    } else {
      auto it = node->children.find(segment);
      if (it == node->children.end()) return nullptr;
      node = &it->second;
    }
  }
  return node;
}

const MetadataTree::Node* MetadataTree::FindConst(
    std::string_view path) const {
  const Node* node = &root_;
  for (const std::string& segment : PathSegments(path)) {
    auto it = node->children.find(segment);
    if (it == node->children.end()) return nullptr;
    node = &it->second;
  }
  return node;
}

}  // namespace ires
