#ifndef IRES_METADATA_TREE_MATCH_H_
#define IRES_METADATA_TREE_MATCH_H_

#include <string>

#include "metadata/metadata_tree.h"

namespace ires {

/// Outcome of a metadata match attempt. On failure, `mismatch_path` names the
/// first (lexicographically) constraint that could not be satisfied, which
/// the planner surfaces in diagnostics.
struct MatchResult {
  bool matched = false;
  std::string mismatch_path;

  static MatchResult Ok() { return {true, {}}; }
  static MatchResult Fail(std::string path) {
    return {false, std::move(path)};
  }
};

/// One-pass structural matching of metadata trees (deliverable §2.2.3): every
/// leaf of `pattern` must be satisfied by `concrete`:
///   * the same path must exist in `concrete`;
///   * values must be equal, unless the pattern value is "*" (wildcard) or
///     the pattern node carries no value (pure structural constraint).
/// Fields present only in `concrete` are unconstrained. Because both trees
/// keep children lexicographically ordered, the walk is a linear merge:
/// O(min(|pattern|, |concrete|)) node visits.
MatchResult MatchTrees(const MetadataTree& pattern,
                       const MetadataTree& concrete);

/// Node-level variant: matches two subtrees directly. `prefix` seeds the
/// diagnostic path reported on mismatch.
MatchResult MatchTreeNodes(const MetadataTree::Node& pattern,
                           const MetadataTree::Node& concrete,
                           const std::string& prefix = "");

/// Matches only the subtree at `path` of both trees; a missing pattern
/// subtree matches trivially, a missing concrete subtree fails (unless the
/// pattern subtree is also missing).
MatchResult MatchSubtrees(const MetadataTree& pattern,
                          const MetadataTree& concrete,
                          std::string_view path);

}  // namespace ires

#endif  // IRES_METADATA_TREE_MATCH_H_
