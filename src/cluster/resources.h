#ifndef IRES_CLUSTER_RESOURCES_H_
#define IRES_CLUSTER_RESOURCES_H_

#include <cstdio>
#include <string>

namespace ires {

/// A container-level resource request, the unit YARN (and our simulator)
/// allocates: `containers` containers, each with `cores` vCPUs and
/// `memory_gb` of RAM.
struct Resources {
  int containers = 1;
  int cores = 1;
  double memory_gb = 1.0;

  int total_cores() const { return containers * cores; }
  double total_memory_gb() const { return containers * memory_gb; }

  /// The paper's execution-cost metric (§4.4, after Truong & Dustdar):
  /// #VM · cores/VM · GB/VM · t.
  double CostForDuration(double seconds) const {
    return containers * cores * memory_gb * seconds;
  }

  std::string ToString() const {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%dx(%dc,%.2fg)", containers, cores,
                  memory_gb);
    return buf;
  }

  friend bool operator==(const Resources& a, const Resources& b) {
    return a.containers == b.containers && a.cores == b.cores &&
           a.memory_gb == b.memory_gb;
  }
};

}  // namespace ires

#endif  // IRES_CLUSTER_RESOURCES_H_
