#ifndef IRES_CLUSTER_CLUSTER_SIMULATOR_H_
#define IRES_CLUSTER_CLUSTER_SIMULATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "cluster/resources.h"

namespace ires {

/// Health of a cluster node as reported by the platform's periodic health
/// scripts (deliverable §2.3).
enum class NodeHealth { kHealthy, kUnhealthy };

/// Container-level cluster resource manager — the simulator standing in for
/// YARN. Tracks per-node core/memory capacity, places container requests,
/// and maintains node health plus per-service (engine/datastore) ON/OFF
/// availability.
class ClusterSimulator {
 public:
  struct NodeState {
    int cores_total = 0;
    double memory_total_gb = 0.0;
    int cores_used = 0;
    double memory_used_gb = 0.0;
    NodeHealth health = NodeHealth::kHealthy;
  };

  /// A granted allocation: which node hosts each container.
  struct Allocation {
    int id = -1;
    Resources request;
    std::vector<int> container_nodes;
  };

  /// Builds a homogeneous cluster of `nodes` nodes.
  ClusterSimulator(int nodes, int cores_per_node, double memory_gb_per_node);

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int healthy_node_count() const;
  const NodeState& node(int i) const { return nodes_[i]; }

  int total_cores() const;
  double total_memory_gb() const;
  int free_cores() const;
  double free_memory_gb() const;

  /// Places `request` on healthy nodes (first-fit decreasing free capacity).
  /// Fails with ResourceExhausted when the request cannot be satisfied.
  Result<Allocation> Allocate(const Resources& request);

  /// Returns the resources of allocation `id` to the pool.
  Status Release(int allocation_id);

  int active_allocations() const {
    return static_cast<int>(allocations_.size());
  }

  /// Health script outcome for one node. Unhealthy nodes stop accepting
  /// containers; running containers on them are considered failed (the
  /// execution monitor reacts to that).
  void SetNodeHealth(int node_index, NodeHealth health);

  /// Service (engine/datastore) availability map: the ON/OFF status checks
  /// of §2.3. Unknown services default to ON.
  void SetServiceStatus(const std::string& service, bool on);
  bool IsServiceOn(const std::string& service) const;

  /// Allocation ids that have at least one container on an unhealthy node.
  std::vector<int> FailedAllocations() const;

 private:
  std::vector<NodeState> nodes_;
  std::map<int, Allocation> allocations_;
  std::map<std::string, bool> services_;
  int next_allocation_id_ = 1;
};

}  // namespace ires

#endif  // IRES_CLUSTER_CLUSTER_SIMULATOR_H_
