#include "cluster/cluster_simulator.h"

#include <algorithm>
#include <numeric>

namespace ires {

ClusterSimulator::ClusterSimulator(int nodes, int cores_per_node,
                                   double memory_gb_per_node) {
  nodes_.resize(std::max(0, nodes));
  for (NodeState& n : nodes_) {
    n.cores_total = cores_per_node;
    n.memory_total_gb = memory_gb_per_node;
  }
}

int ClusterSimulator::healthy_node_count() const {
  return static_cast<int>(
      std::count_if(nodes_.begin(), nodes_.end(), [](const NodeState& n) {
        return n.health == NodeHealth::kHealthy;
      }));
}

int ClusterSimulator::total_cores() const {
  int total = 0;
  for (const NodeState& n : nodes_) total += n.cores_total;
  return total;
}

double ClusterSimulator::total_memory_gb() const {
  double total = 0.0;
  for (const NodeState& n : nodes_) total += n.memory_total_gb;
  return total;
}

int ClusterSimulator::free_cores() const {
  int total = 0;
  for (const NodeState& n : nodes_) {
    if (n.health == NodeHealth::kHealthy) {
      total += n.cores_total - n.cores_used;
    }
  }
  return total;
}

double ClusterSimulator::free_memory_gb() const {
  double total = 0.0;
  for (const NodeState& n : nodes_) {
    if (n.health == NodeHealth::kHealthy) {
      total += n.memory_total_gb - n.memory_used_gb;
    }
  }
  return total;
}

Result<ClusterSimulator::Allocation> ClusterSimulator::Allocate(
    const Resources& request) {
  if (request.containers <= 0 || request.cores <= 0 ||
      request.memory_gb <= 0.0) {
    return Status::InvalidArgument("allocation request must be positive");
  }
  // First-fit over nodes sorted by descending free cores; we tentatively
  // place every container and only commit when all fit.
  std::vector<int> order(nodes_.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<NodeState> scratch = nodes_;
  std::vector<int> placement;
  placement.reserve(request.containers);
  for (int c = 0; c < request.containers; ++c) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const int fa = scratch[a].cores_total - scratch[a].cores_used;
      const int fb = scratch[b].cores_total - scratch[b].cores_used;
      if (fa != fb) return fa > fb;
      return a < b;
    });
    bool placed = false;
    for (int idx : order) {
      NodeState& n = scratch[idx];
      if (n.health != NodeHealth::kHealthy) continue;
      if (n.cores_total - n.cores_used >= request.cores &&
          n.memory_total_gb - n.memory_used_gb >= request.memory_gb) {
        n.cores_used += request.cores;
        n.memory_used_gb += request.memory_gb;
        placement.push_back(idx);
        placed = true;
        break;
      }
    }
    if (!placed) {
      return Status::ResourceExhausted(
          "cannot place container " + std::to_string(c) + " of " +
          request.ToString());
    }
  }
  nodes_ = std::move(scratch);
  Allocation alloc;
  alloc.id = next_allocation_id_++;
  alloc.request = request;
  alloc.container_nodes = std::move(placement);
  allocations_.emplace(alloc.id, alloc);
  return alloc;
}

Status ClusterSimulator::Release(int allocation_id) {
  auto it = allocations_.find(allocation_id);
  if (it == allocations_.end()) {
    return Status::NotFound("allocation " + std::to_string(allocation_id));
  }
  const Allocation& alloc = it->second;
  for (int node_idx : alloc.container_nodes) {
    nodes_[node_idx].cores_used -= alloc.request.cores;
    nodes_[node_idx].memory_used_gb -= alloc.request.memory_gb;
  }
  allocations_.erase(it);
  return Status::OK();
}

void ClusterSimulator::SetNodeHealth(int node_index, NodeHealth health) {
  if (node_index < 0 || node_index >= node_count()) return;
  nodes_[node_index].health = health;
}

void ClusterSimulator::SetServiceStatus(const std::string& service, bool on) {
  services_[service] = on;
}

bool ClusterSimulator::IsServiceOn(const std::string& service) const {
  auto it = services_.find(service);
  return it == services_.end() ? true : it->second;
}

std::vector<int> ClusterSimulator::FailedAllocations() const {
  std::vector<int> failed;
  for (const auto& [id, alloc] : allocations_) {
    for (int node_idx : alloc.container_nodes) {
      if (nodes_[node_idx].health == NodeHealth::kUnhealthy) {
        failed.push_back(id);
        break;
      }
    }
  }
  return failed;
}

}  // namespace ires
