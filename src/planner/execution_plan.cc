#include "planner/execution_plan.h"

#include <algorithm>
#include <cstdio>

namespace ires {

std::string ExecutionPlan::ToString() const {
  std::string out;
  for (const PlanStep& step : steps) {
    char line[256];
    std::string deps;
    for (size_t i = 0; i < step.deps.size(); ++i) {
      if (i > 0) deps += ",";
      deps += std::to_string(step.deps[i]);
    }
    std::snprintf(line, sizeof(line),
                  "#%d %-6s %-28s @%-12s deps=[%s] est=%.2fs cost=%.1f\n",
                  step.id, step.kind == PlanStep::Kind::kMove ? "move" : "op",
                  step.name.c_str(), step.engine.c_str(), deps.c_str(),
                  step.estimated_seconds, step.estimated_cost);
    out += line;
  }
  char total[128];
  std::snprintf(total, sizeof(total),
                "total: est=%.2fs cost=%.1f metric=%.2f\n", estimated_seconds,
                estimated_cost, metric);
  out += total;
  return out;
}

std::string ExecutionPlan::ToDot() const {
  std::string out = "digraph plan {\n  rankdir=LR;\n";
  std::vector<std::string> dataset_nodes;
  for (const PlanStep& step : steps) {
    char node[256];
    std::snprintf(node, sizeof(node),
                  "  s%d [shape=%s,label=\"%s\\n@%s (%.1fs)\"];\n", step.id,
                  step.kind == PlanStep::Kind::kMove ? "ellipse" : "box",
                  step.name.c_str(), step.engine.c_str(),
                  step.estimated_seconds);
    out += node;
    for (int dep : step.deps) {
      out += "  s" + std::to_string(dep) + " -> s" +
             std::to_string(step.id) + ";\n";
    }
    for (const std::string& source : step.source_datasets) {
      const std::string id = "d_" + source;
      if (std::find(dataset_nodes.begin(), dataset_nodes.end(), id) ==
          dataset_nodes.end()) {
        dataset_nodes.push_back(id);
        out += "  \"" + id + "\" [shape=folder,label=\"" + source + "\"];\n";
      }
      out += "  \"" + id + "\" -> s" + std::to_string(step.id) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::vector<int> ExecutionPlan::Roots() const {
  std::vector<int> roots;
  for (const PlanStep& step : steps) {
    if (step.deps.empty()) roots.push_back(step.id);
  }
  return roots;
}

std::vector<std::string> ExecutionPlan::EnginesUsed() const {
  std::vector<std::string> engines;
  for (const PlanStep& step : steps) {
    if (step.kind == PlanStep::Kind::kOperator) {
      engines.push_back(step.engine);
    }
  }
  std::sort(engines.begin(), engines.end());
  engines.erase(std::unique(engines.begin(), engines.end()), engines.end());
  return engines;
}

}  // namespace ires
