#ifndef IRES_PLANNER_COST_ESTIMATOR_H_
#define IRES_PLANNER_COST_ESTIMATOR_H_

#include "common/status.h"
#include "engines/engine.h"

namespace ires {

/// The planner's view of the IReS model library: given an engine and a run
/// request, predict performance and cost. Implementations range from the
/// converged analytic models (AnalyticCostEstimator) to online-trained
/// estimators fed by the profiler (see profiling/).
class CostEstimator {
 public:
  virtual ~CostEstimator() = default;

  virtual Result<OperatorRunEstimate> Estimate(
      const SimulatedEngine& engine,
      const OperatorRunRequest& request) const = 0;
};

/// Uses each engine's analytic performance model directly — equivalent to a
/// fully trained, noise-free model library.
class AnalyticCostEstimator : public CostEstimator {
 public:
  Result<OperatorRunEstimate> Estimate(
      const SimulatedEngine& engine,
      const OperatorRunRequest& request) const override {
    return engine.Estimate(request);
  }
};

}  // namespace ires

#endif  // IRES_PLANNER_COST_ESTIMATOR_H_
