#ifndef IRES_PLANNER_PLANNER_COMMON_H_
#define IRES_PLANNER_PLANNER_COMMON_H_

#include <map>
#include <string>

#include "metadata/metadata_tree.h"
#include "operators/operator.h"
#include "planner/execution_plan.h"

namespace ires::planner_internal {

/// A store/format requirement extracted from a Constraints.Input<i> subtree;
/// an empty string means unconstrained.
struct IoRequirement {
  std::string store;
  std::string format;
};

/// Reads the Engine.FS / type leaves of an Input/Output spec subtree
/// (nullptr and "*" mean unconstrained).
IoRequirement RequirementFromSpec(const MetadataTree::Node* spec);

/// True when the instance's location/format satisfies the requirement.
bool InstanceSatisfies(const DatasetInstance& instance,
                       const IoRequirement& req);

/// Reads Optimization.params.* leaves of a materialized operator into a run
/// request parameter map.
std::map<std::string, double> ReadParams(const MaterializedOperator& mo);

}  // namespace ires::planner_internal

#endif  // IRES_PLANNER_PLANNER_COMMON_H_
