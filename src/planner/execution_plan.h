#ifndef IRES_PLANNER_EXECUTION_PLAN_H_
#define IRES_PLANNER_EXECUTION_PLAN_H_

#include <map>
#include <string>
#include <vector>

#include "cluster/resources.h"

namespace ires {

/// A concrete piece of data at a specific location — what flows along the
/// edges of a materialized plan.
struct DatasetInstance {
  std::string dataset_node;  // abstract dataset node it materializes
  std::string store;         // "HDFS", "PostgreSQL", "Local", ...
  std::string format;        // "text", "arff", "tsv", ...
  double bytes = 0.0;
  double records = 0.0;
};

/// One node of the materialized execution plan: either a materialized
/// operator bound to an engine, or a move/transform operator the planner
/// injected between engines.
struct PlanStep {
  enum class Kind { kOperator, kMove };

  int id = -1;
  Kind kind = Kind::kOperator;
  /// Materialized operator name, or a synthesized "move(...)" label.
  std::string name;
  /// Engine the step runs on; moves carry the destination engine.
  std::string engine;
  std::string algorithm;
  /// Ids of plan steps whose outputs this step consumes (empty for steps
  /// reading only source datasets).
  std::vector<int> deps;
  /// Abstract dataset nodes consumed directly from storage.
  std::vector<std::string> source_datasets;
  /// What the step produces (one entry per output port).
  std::vector<DatasetInstance> outputs;
  /// Provisioned resources.
  Resources resources;
  /// Model estimates at planning time.
  double estimated_seconds = 0.0;
  double estimated_cost = 0.0;
  /// Operator parameters forwarded to the engine.
  std::map<std::string, double> params;
  /// Aggregate input statistics (for the executor's run request).
  double input_bytes = 0.0;
  double input_records = 0.0;
};

/// The planner's output: a DAG of plan steps plus the end-to-end estimates
/// under the chosen policy.
struct ExecutionPlan {
  std::vector<PlanStep> steps;
  /// Critical-path execution-time estimate (seconds).
  double estimated_seconds = 0.0;
  /// Total resource cost estimate (sum over steps).
  double estimated_cost = 0.0;
  /// The scalar metric value the DP minimized.
  double metric = 0.0;

  /// Pretty-printed plan (one line per step) for logs and examples.
  std::string ToString() const;

  /// Graphviz rendering of the plan DAG (operators as boxes labelled with
  /// their engine, moves as ellipses, source datasets as folders).
  std::string ToDot() const;

  /// Steps with no dependencies.
  std::vector<int> Roots() const;

  /// Engines used by at least one operator step, sorted unique.
  std::vector<std::string> EnginesUsed() const;
};

}  // namespace ires

#endif  // IRES_PLANNER_EXECUTION_PLAN_H_
