#include "planner/planner_context.h"

#include <chrono>
#include <cstddef>
#include <functional>
#include <utility>

#include "metadata/metadata_tree.h"

namespace ires {

namespace {

using planner_internal::IoRequirement;
using planner_internal::ReadParams;
using planner_internal::RequirementFromSpec;

const IoRequirement kUnconstrained;

/// Highest numeric suffix among `Constraints.<prefix><i>` children, or -1
/// when none exist. "Input" (the arity leaf) has no suffix and is skipped.
int MaxPortIndex(const MetadataTree& meta, const std::string& prefix) {
  const MetadataTree::Node* constraints = meta.Find("Constraints");
  if (constraints == nullptr) return -1;
  int max_index = -1;
  for (const auto& [label, child] : constraints->children) {
    if (label.size() <= prefix.size() || label.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    int index = 0;
    bool numeric = true;
    for (size_t i = prefix.size(); i < label.size(); ++i) {
      if (label[i] < '0' || label[i] > '9') {
        numeric = false;
        break;
      }
      index = index * 10 + (label[i] - '0');
    }
    if (numeric && index > max_index) max_index = index;
  }
  return max_index;
}

}  // namespace

const IoRequirement& ResolvedCandidate::InputReq(size_t i) const {
  return i < input_reqs.size() ? input_reqs[i] : kUnconstrained;
}

const IoRequirement& ResolvedCandidate::OutputReq(size_t i) const {
  return i < output_reqs.size() ? output_reqs[i] : kUnconstrained;
}

PlannerContext::PlannerContext(const OperatorLibrary* library,
                               const EngineRegistry* engines,
                               MetricsRegistry* metrics)
    : library_(library), engines_(engines) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  hits_ = metrics->GetCounter(
      "ires_planner_candidate_cache_hits_total",
      "Candidate resolutions served from the memoized index.");
  misses_ = metrics->GetCounter(
      "ires_planner_candidate_cache_misses_total",
      "Candidate resolutions that ran abstract->materialized matching.");
  match_seconds_ = metrics->GetHistogram(
      "ires_planner_candidate_match_seconds",
      "Latency of one miss-path candidate resolution (tree matching plus "
      "snapshot construction).",
      {},
      {1e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 5e-3, 1e-2,
       0.1});
}

CandidateSnapshot PlannerContext::Resolve(const std::string& name) const {
  const uint64_t library_version = library_->version();
  const uint64_t engine_epoch = engines_->availability_epoch();
  Shard& shard = shards_[std::hash<std::string>{}(name) % kShards];
  {
    ReaderLock lock(shard.mu);
    auto it = shard.entries.find(name);
    if (it != shard.entries.end() &&
        it->second->library_version == library_version &&
        it->second->engine_epoch == engine_epoch) {
      hits_->Increment();
      return CandidateSnapshot(it->second);
    }
  }

  misses_->Increment();
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const CandidateSnapshot::Set> set =
      Build(name, engine_epoch);
  match_seconds_->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());
  {
    WriterLock lock(shard.mu);
    // Concurrent rebuilds of the same entry race benignly: every built set
    // is self-consistent, the last writer wins.
    shard.entries[name] = set;
  }
  return CandidateSnapshot(std::move(set));
}

std::shared_ptr<const CandidateSnapshot::Set> PlannerContext::Build(
    const std::string& name, uint64_t engine_epoch) const {
  // Abstract operators are only ever added, never erased, so the pointer
  // stays valid past the library's internal lock (std::map node stability).
  const AbstractOperator* abstract = library_->FindAbstractByName(name);
  AbstractOperator synthesized;
  if (abstract == nullptr) {
    MetadataTree meta;
    meta.Set("Constraints.OpSpecification.Algorithm.name", name);
    synthesized = AbstractOperator(name, std::move(meta));
    abstract = &synthesized;
  }

  OperatorLibrary::MatchSnapshot match =
      library_->FindMaterializedSnapshot(*abstract);

  auto set = std::make_shared<CandidateSnapshot::Set>();
  // Stamp with the version the operators were actually read at (it may be
  // newer than the version sampled before the lookup — still consistent).
  set->library_version = match.version;
  set->engine_epoch = engine_epoch;
  set->candidates.reserve(match.operators.size());
  for (MaterializedOperator& op : match.operators) {
    ResolvedCandidate candidate;
    candidate.engine_name = op.engine();
    candidate.algorithm = op.algorithm();
    candidate.engine = engines_->Find(candidate.engine_name);
    candidate.engine_available =
        candidate.engine != nullptr && candidate.engine->available();
    candidate.params = ReadParams(op);
    const int max_in = MaxPortIndex(op.meta(), "Input");
    candidate.input_reqs.reserve(max_in + 1);
    for (int i = 0; i <= max_in; ++i) {
      candidate.input_reqs.push_back(RequirementFromSpec(op.InputSpec(i)));
    }
    const int max_out = MaxPortIndex(op.meta(), "Output");
    candidate.output_reqs.reserve(max_out + 1);
    for (int i = 0; i <= max_out; ++i) {
      candidate.output_reqs.push_back(RequirementFromSpec(op.OutputSpec(i)));
    }
    candidate.op = std::move(op);
    set->candidates.push_back(std::move(candidate));
  }
  return set;
}

PlannerContext::Stats PlannerContext::stats() const {
  return Stats{hits_->Value(), misses_->Value()};
}

}  // namespace ires
