#include "planner/plan_cache.h"

namespace ires {

PlanCache::PlanCache(size_t capacity, MetricsRegistry* metrics)
    : capacity_(capacity) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  const std::string help = "Plan-cache events by outcome.";
  hits_ = metrics->GetCounter("ires_plan_cache_events_total", help,
                              {{"event", "hit"}});
  misses_ = metrics->GetCounter("ires_plan_cache_events_total", help,
                                {{"event", "miss"}});
  insertions_ = metrics->GetCounter("ires_plan_cache_events_total", help,
                                    {{"event", "insert"}});
  evictions_ = metrics->GetCounter("ires_plan_cache_events_total", help,
                                   {{"event", "evict"}});
  entries_gauge_ = metrics->GetGauge("ires_plan_cache_entries",
                                     "Plans currently cached.");
}

std::optional<ExecutionPlan> PlanCache::Lookup(const Key& key) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_->Increment();
    return std::nullopt;
  }
  hits_->Increment();
  return it->second;
}

void PlanCache::Insert(const Key& key, const ExecutionPlan& plan) {
  MutexLock lock(mu_);
  if (capacity_ == 0) return;
  if (entries_.count(key) > 0) return;
  while (entries_.size() >= capacity_ && !insertion_order_.empty()) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    evictions_->Increment();
  }
  entries_.emplace(key, plan);
  insertion_order_.push_back(key);
  insertions_->Increment();
  entries_gauge_->Set(static_cast<double>(entries_.size()));
}

void PlanCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  insertion_order_.clear();
  entries_gauge_->Set(0.0);
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mu_);
  Stats out;
  out.hits = hits_->Value();
  out.misses = misses_->Value();
  out.insertions = insertions_->Value();
  out.evictions = evictions_->Value();
  out.entries = entries_.size();
  return out;
}

}  // namespace ires
