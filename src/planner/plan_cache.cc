#include "planner/plan_cache.h"

namespace ires {

std::optional<ExecutionPlan> PlanCache::Lookup(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void PlanCache::Insert(const Key& key, const ExecutionPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  if (entries_.count(key) > 0) return;
  while (entries_.size() >= capacity_ && !insertion_order_.empty()) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    ++stats_.evictions;
  }
  entries_.emplace(key, plan);
  insertion_order_.push_back(key);
  ++stats_.insertions;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  insertion_order_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = entries_.size();
  return out;
}

}  // namespace ires
