#include "planner/pareto_planner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "analysis/plan_analyzer.h"
#include "common/arena.h"
#include "common/interner.h"
#include "common/logging.h"
#include "planner/planner_common.h"

namespace ires {

namespace {

using planner_internal::InstanceSatisfies;
using planner_internal::IoRequirement;

// How one input port of one candidate run is fed: a dpTable entry id plus
// an optional move.
struct InputChoice {
  int entry_id = -1;
  bool move = false;
  DatasetInstance moved_instance;
  double move_seconds = 0.0;
  double move_cost = 0.0;
};

// One Pareto record: a way to materialize a dataset node with a particular
// (seconds, cost) trade-off. Entries live in a global arena and are
// referenced by id so that back-pointers stay stable. Producer identity is
// a (op node, candidate index) reference into that node's candidate
// snapshot; name/engine/algorithm/params strings live there exactly once.
struct Entry {
  DatasetInstance instance;
  int32_t store_id = -1;   // interned at insert time
  int32_t format_id = -1;
  double seconds = 0.0;
  double cost = 0.0;
  int producer_op_node = -1;  // <0: source data
  int producer_cand = -1;
  Resources resources;
  OperatorRunEstimate op_estimate;
  std::vector<InputChoice> inputs;
  double op_input_bytes = 0.0;
  double op_input_records = 0.0;
};

bool Dominates(double s1, double c1, double s2, double c2) {
  return (s1 <= s2 && c1 <= c2) && (s1 < s2 || c1 < c2);
}

// Partial accumulation while combining the Pareto sets of multiple inputs.
struct Partial {
  double seconds = 0.0;
  double cost = 0.0;
  double bytes = 0.0;
  double records = 0.0;
  std::vector<InputChoice> choices;
};

// Keeps only non-dominated partials, capped at `cap` by keeping the
// extremes and evenly spread interior points (sorted by seconds).
void PrunePartials(std::vector<Partial>* partials, int cap) {
  std::sort(partials->begin(), partials->end(),
            [](const Partial& a, const Partial& b) {
              if (a.seconds != b.seconds) return a.seconds < b.seconds;
              return a.cost < b.cost;
            });
  std::vector<Partial> frontier;
  double best_cost = std::numeric_limits<double>::infinity();
  for (Partial& p : *partials) {
    if (p.cost < best_cost - 1e-12) {
      best_cost = p.cost;
      frontier.push_back(std::move(p));
    }
  }
  if (static_cast<int>(frontier.size()) > cap) {
    std::vector<Partial> kept;
    kept.reserve(cap);
    for (int i = 0; i < cap; ++i) {
      const size_t idx = static_cast<size_t>(
          std::llround(static_cast<double>(i) * (frontier.size() - 1) /
                       (cap - 1)));
      kept.push_back(std::move(frontier[idx]));
    }
    frontier = std::move(kept);
  }
  *partials = std::move(frontier);
}

}  // namespace

const PlannerContext& ParetoPlanner::context() const {
  if (context_ != nullptr) return *context_;
  std::call_once(owned_context_once_, [this] {
    owned_context_ = std::make_unique<PlannerContext>(library_, engines_);
  });
  return *owned_context_;
}

Result<std::vector<ParetoPlanner::FrontierPlan>> ParetoPlanner::PlanFrontier(
    const WorkflowGraph& graph, const Options& options) const {
  IRES_RETURN_IF_ERROR(graph.Validate());
  static const AnalyticCostEstimator kAnalytic;
  const CostEstimator& estimator =
      options.estimator != nullptr ? *options.estimator : kAnalytic;
  const DataMovementModel& movement = engines_->movement();
  const PlannerContext& ctx = context();
  const int cap = std::max(2, options.max_frontier_size);

  // The entry store and dp buckets grow only in the serial phases (init +
  // phase-2 merge), so they can draw from a per-plan bump arena. The
  // parallel phase 1 reads them but never mutates, and its staged
  // containers stay heap-allocated — Arena is single-threaded by design.
  Arena plan_arena;
  using IdVec = std::vector<int, ArenaAllocator<int>>;
  std::vector<Entry, ArenaAllocator<Entry>> arena{
      ArenaAllocator<Entry>(&plan_arena)};
  // Per dataset node: ids of the current Pareto entries (across all
  // store/format variants; dominance is checked within a variant only,
  // since a "worse" location can still enable a cheaper downstream plan).
  std::vector<IdVec> dp(graph.size(), IdVec(ArenaAllocator<int>(&plan_arena)));
  // Candidate snapshots per operator node, kept for plan reconstruction.
  std::vector<CandidateSnapshot> snapshots(graph.size());
  StringInterner interner;

  auto insert_entry = [&](int node, Entry entry) {
    entry.store_id = interner.Intern(entry.instance.store);
    entry.format_id = interner.Intern(entry.instance.format);
    IdVec& bucket = dp[node];
    // Drop the new entry if a same-location entry dominates it; drop
    // dominated same-location entries.
    for (int id : bucket) {
      const Entry& other = arena[id];
      if (other.store_id == entry.store_id &&
          other.format_id == entry.format_id &&
          (Dominates(other.seconds, other.cost, entry.seconds, entry.cost) ||
           (other.seconds == entry.seconds && other.cost == entry.cost))) {
        return;
      }
    }
    bucket.erase(
        std::remove_if(bucket.begin(), bucket.end(),
                       [&](int id) {
                         const Entry& other = arena[id];
                         return other.store_id == entry.store_id &&
                                other.format_id == entry.format_id &&
                                Dominates(entry.seconds, entry.cost,
                                          other.seconds, other.cost);
                       }),
        bucket.end());
    const int id = static_cast<int>(arena.size());
    arena.push_back(std::move(entry));
    bucket.push_back(id);
    // Cap per (store, format): keep extremes + spread, by seconds order.
    std::map<std::pair<int32_t, int32_t>, std::vector<int>> groups;
    for (int e : bucket) {
      groups[{arena[e].store_id, arena[e].format_id}].push_back(e);
    }
    IdVec pruned{ArenaAllocator<int>(&plan_arena)};
    for (auto& [key, ids] : groups) {
      std::sort(ids.begin(), ids.end(), [&](int a, int b) {
        return arena[a].seconds < arena[b].seconds;
      });
      if (static_cast<int>(ids.size()) <= cap) {
        pruned.insert(pruned.end(), ids.begin(), ids.end());
      } else {
        for (int i = 0; i < cap; ++i) {
          const size_t idx = static_cast<size_t>(std::llround(
              static_cast<double>(i) * (ids.size() - 1) / (cap - 1)));
          pruned.push_back(ids[idx]);
        }
      }
    }
    bucket = std::move(pruned);
  };

  // ---- dpTable initialization. --------------------------------------------
  for (size_t id = 0; id < graph.size(); ++id) {
    const WorkflowGraph::Node& node = graph.node(static_cast<int>(id));
    if (node.kind != WorkflowGraph::NodeKind::kDataset) continue;
    auto pre_it = options.materialized_intermediates.find(node.name);
    if (pre_it != options.materialized_intermediates.end()) {
      Entry entry;
      entry.instance = pre_it->second;
      entry.instance.dataset_node = node.name;
      insert_entry(static_cast<int>(id), std::move(entry));
      continue;
    }
    if (!node.outputs.empty()) continue;
    const Dataset* dataset = library_->FindDatasetByName(node.name);
    if (dataset == nullptr) {
      return Status::NotFound("source dataset not in library: " + node.name);
    }
    if (!dataset->IsMaterialized()) {
      return Status::FailedPrecondition("source dataset is abstract: " +
                                        node.name);
    }
    Entry entry;
    entry.instance.dataset_node = node.name;
    entry.instance.store = dataset->store();
    entry.instance.format = dataset->format();
    entry.instance.bytes = dataset->size_bytes();
    entry.instance.records = dataset->record_count();
    insert_entry(static_cast<int>(id), std::move(entry));
  }

  IRES_ASSIGN_OR_RETURN(std::vector<int> topo, graph.TopologicalOperators());

  // ---- DP over operators, combining input Pareto sets. ---------------------
  for (int op_node : topo) {
    const WorkflowGraph::Node& node = graph.node(op_node);
    snapshots[op_node] = ctx.Resolve(node.name);
    const CandidateSnapshot& candidates = snapshots[op_node];

    // Phase 1 — per candidate, combine input Pareto sets and estimate runs.
    // Touches only this op's *input* nodes, which earlier topological steps
    // finalized, so it is read-only on dp/arena and safe to fan out. New
    // entries are staged per candidate instead of inserted.
    struct PendingEntry {
      int out_node;
      Entry entry;
    };
    std::vector<std::vector<PendingEntry>> staged(candidates.size());
    ParallelFor(options.scheduler, candidates.size(), [&](size_t cand_idx) {
      const ResolvedCandidate& cand = candidates[cand_idx];
      if (!cand.engine_available) return;
      const SimulatedEngine* engine = cand.engine;

      // Combine the inputs' Pareto sets port by port.
      std::vector<Partial> partials = {Partial{}};
      for (size_t port = 0; port < node.inputs.size(); ++port) {
        const int in_node = node.inputs[port];
        const IoRequirement& req = cand.InputReq(port);
        std::vector<Partial> next;
        for (const Partial& base : partials) {
          for (int entry_id : dp[in_node]) {
            const Entry& tin = arena[entry_id];
            InputChoice choice;
            choice.entry_id = entry_id;
            choice.moved_instance = tin.instance;
            if (!InstanceSatisfies(tin.instance, req)) {
              if (!req.store.empty()) choice.moved_instance.store = req.store;
              const bool transform =
                  !req.format.empty() && req.format != tin.instance.format;
              if (transform) choice.moved_instance.format = req.format;
              choice.move = true;
              choice.move_seconds = movement.MoveSeconds(
                  tin.instance.bytes, tin.instance.store,
                  choice.moved_instance.store, transform);
              choice.move_cost =
                  Resources{1, 1, 1.0}.CostForDuration(choice.move_seconds);
            }
            Partial combined = base;
            combined.seconds += tin.seconds + choice.move_seconds;
            combined.cost += tin.cost + choice.move_cost;
            combined.bytes += choice.moved_instance.bytes;
            combined.records += choice.moved_instance.records;
            combined.choices.push_back(std::move(choice));
            next.push_back(std::move(combined));
          }
        }
        if (next.empty()) return;  // infeasible on this candidate
        PrunePartials(&next, cap);
        partials = std::move(next);
      }

      for (Partial& partial : partials) {
        OperatorRunRequest request;
        request.algorithm = cand.algorithm;
        request.input_bytes = partial.bytes;
        request.input_records = partial.records;
        request.params = cand.params;
        request.resources = engine->default_resources();
        auto estimate = estimator.Estimate(*engine, request);
        if (!estimate.ok()) continue;
        const OperatorRunEstimate& est = estimate.value();

        for (size_t port = 0; port < node.outputs.size(); ++port) {
          const int out_node = node.outputs[port];
          if (out_node < 0) continue;
          const IoRequirement& out_req = cand.OutputReq(port);
          Entry entry;
          entry.instance.dataset_node = graph.node(out_node).name;
          entry.instance.store =
              !out_req.store.empty() ? out_req.store : engine->native_store();
          entry.instance.format =
              !out_req.format.empty()
                  ? out_req.format
                  : (partial.choices.empty()
                         ? ""
                         : partial.choices[0].moved_instance.format);
          entry.instance.bytes = est.output_bytes;
          entry.instance.records = est.output_records;
          entry.seconds = partial.seconds + est.exec_seconds;
          entry.cost = partial.cost + est.cost;
          entry.producer_op_node = op_node;
          entry.producer_cand = static_cast<int>(cand_idx);
          entry.resources = request.resources;
          entry.op_estimate = est;
          // The last output port owns the choices; earlier ports copy.
          if (port + 1 == node.outputs.size()) {
            entry.inputs = std::move(partial.choices);
          } else {
            entry.inputs = partial.choices;
          }
          entry.op_input_bytes = partial.bytes;
          entry.op_input_records = partial.records;
          staged[cand_idx].push_back(PendingEntry{out_node, std::move(entry)});
        }
      }
    });

    // Phase 2 — merge in candidate-index order. This is exactly the order
    // the serial loop inserted in, so dominance pruning (which is
    // insertion-order sensitive on ties) produces identical dpTables.
    for (std::vector<PendingEntry>& pending : staged) {
      for (PendingEntry& p : pending) {
        insert_entry(p.out_node, std::move(p.entry));
      }
    }
  }

  // ---- Collect the target frontier (across locations). ---------------------
  std::vector<int> target_ids(dp[graph.target()].begin(),
                              dp[graph.target()].end());
  if (target_ids.empty()) {
    return Status::FailedPrecondition(
        "no feasible execution plan reaches the target dataset");
  }
  // Global dominance across locations for the final answer.
  std::sort(target_ids.begin(), target_ids.end(), [&](int a, int b) {
    if (arena[a].seconds != arena[b].seconds) {
      return arena[a].seconds < arena[b].seconds;
    }
    return arena[a].cost < arena[b].cost;
  });
  std::vector<int> frontier_ids;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int id : target_ids) {
    if (arena[id].cost < best_cost - 1e-12) {
      best_cost = arena[id].cost;
      frontier_ids.push_back(id);
    }
  }

  // ---- Reconstruct one plan per frontier point. ----------------------------
  std::vector<FrontierPlan> frontier;
  for (int target_id : frontier_ids) {
    FrontierPlan out;
    out.seconds = arena[target_id].seconds;
    out.cost = arena[target_id].cost;
    ExecutionPlan& plan = out.plan;
    std::map<int, int> step_of_entry;  // entry id -> producing plan step

    // Explicit worklist (deep chains must not overflow the stack). A frame
    // suspends before an unbuilt producer and retries the same input once
    // that producer's step is memoized, reproducing the recursive step
    // order exactly.
    struct Frame {
      int entry_id;
      size_t next_input = 0;
      PlanStep step;
    };
    std::vector<Frame> stack;
    auto push_frame = [&](int entry_id) -> bool {
      const Entry& entry = arena[entry_id];
      if (entry.producer_op_node < 0) return false;  // source data
      if (step_of_entry.count(entry_id) > 0) return false;
      const ResolvedCandidate& cand =
          snapshots[entry.producer_op_node][entry.producer_cand];
      Frame frame;
      frame.entry_id = entry_id;
      PlanStep& step = frame.step;
      step.kind = PlanStep::Kind::kOperator;
      step.name = cand.op.name();
      step.engine = cand.engine_name;
      step.algorithm = cand.algorithm;
      step.resources = entry.resources;
      step.estimated_seconds = entry.op_estimate.exec_seconds;
      step.estimated_cost = entry.op_estimate.cost;
      step.params = cand.params;
      step.input_bytes = entry.op_input_bytes;
      step.input_records = entry.op_input_records;
      step.outputs.push_back(entry.instance);
      stack.push_back(std::move(frame));
      return true;
    };

    push_frame(target_id);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const Entry& entry = arena[frame.entry_id];
      bool suspended = false;
      while (frame.next_input < entry.inputs.size()) {
        const InputChoice& choice = entry.inputs[frame.next_input];
        const Entry& in_entry = arena[choice.entry_id];
        int producer_step = -1;
        if (in_entry.producer_op_node >= 0) {
          auto it = step_of_entry.find(choice.entry_id);
          if (it == step_of_entry.end()) {
            push_frame(choice.entry_id);
            suspended = true;
            break;
          }
          producer_step = it->second;
        }
        int upstream = producer_step;
        if (choice.move) {
          PlanStep move_step;
          move_step.kind = PlanStep::Kind::kMove;
          move_step.name = "move(" + in_entry.instance.dataset_node + ":" +
                           in_entry.instance.store + "->" +
                           choice.moved_instance.store + ")";
          move_step.engine = frame.step.engine;
          move_step.algorithm = "Move";
          move_step.resources = Resources{1, 1, 1.0};
          move_step.estimated_seconds = choice.move_seconds;
          move_step.estimated_cost = choice.move_cost;
          move_step.outputs.push_back(choice.moved_instance);
          move_step.input_bytes = in_entry.instance.bytes;
          move_step.input_records = in_entry.instance.records;
          if (producer_step >= 0) {
            move_step.deps.push_back(producer_step);
          } else {
            move_step.source_datasets.push_back(
                in_entry.instance.dataset_node);
          }
          move_step.id = static_cast<int>(plan.steps.size());
          plan.steps.push_back(move_step);
          upstream = move_step.id;
        }
        if (upstream >= 0) {
          frame.step.deps.push_back(upstream);
        } else {
          frame.step.source_datasets.push_back(in_entry.instance.dataset_node);
        }
        ++frame.next_input;
      }
      if (suspended) continue;

      frame.step.id = static_cast<int>(plan.steps.size());
      step_of_entry.emplace(frame.entry_id, frame.step.id);
      plan.steps.push_back(std::move(frame.step));
      stack.pop_back();
    }

    std::vector<double> finish(plan.steps.size(), 0.0);
    double makespan = 0.0, total_cost = 0.0;
    for (const PlanStep& step : plan.steps) {
      double start = 0.0;
      for (int dep : step.deps) start = std::max(start, finish[dep]);
      finish[step.id] = start + step.estimated_seconds;
      makespan = std::max(makespan, finish[step.id]);
      total_cost += step.estimated_cost;
    }
    plan.estimated_seconds = makespan;
    plan.estimated_cost = total_cost;
    plan.metric = out.seconds;
#ifndef NDEBUG
    // Debug-only self-check mirroring DpPlanner: every frontier plan must
    // pass the structural plan verifier.
    {
      PlanAnalyzer::Options check;
      check.library = library_;
      check.engines = engines_;
      check.materialized_intermediates = &options.materialized_intermediates;
      const std::vector<Diagnostic> findings =
          PlanAnalyzer(check).Analyze(plan);
      if (HasErrors(findings)) {
        IRES_LOG(kError) << "ParetoPlanner produced an invalid plan:\n"
                         << RenderText(findings);
        assert(false &&
               "ParetoPlanner emitted a plan that fails PlanAnalyzer");
      }
    }
#endif
    frontier.push_back(std::move(out));
  }
  return frontier;
}

}  // namespace ires
