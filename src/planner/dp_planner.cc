#include "planner/dp_planner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "analysis/plan_analyzer.h"
#include "common/arena.h"
#include "common/interner.h"
#include "common/logging.h"
#include "common/strings.h"
#include "planner/planner_common.h"

namespace ires {

namespace {

using planner_internal::InstanceSatisfies;
using planner_internal::IoRequirement;

// How one input port of one candidate operator is fed.
struct InputChoice {
  int dataset_node = -1;
  int entry_index = -1;
  bool move = false;
  DatasetInstance moved_instance;  // instance after the move/transform
  double move_seconds = 0.0;
  double move_cost = 0.0;
};

// DP-table storage draws from a per-plan bump arena: entry buckets and
// input-choice lists are allocated thousands of times per plan and all die
// together when Plan() returns, so a warm plan performs no per-entry heap
// round-trips (see common/arena.h; planner_bench measures the delta).
using ChoiceAlloc = ArenaAllocator<InputChoice>;
using ChoiceVec = std::vector<InputChoice, ChoiceAlloc>;

// One dpTable record: the best known way to materialize a dataset node in a
// particular (store, format). Strings shared by every entry of one producer
// (operator name, engine, algorithm, params) live once in the candidate
// snapshot and are referenced by (producer_op_node, producer_cand); the
// (store, format) pair is interned to ids so bucket dedup compares ints.
struct Entry {
  explicit Entry(const ChoiceAlloc& alloc) : inputs(alloc) {}

  DatasetInstance instance;
  int32_t store_id = -1;
  int32_t format_id = -1;
  double metric = 0.0;   // cumulative optimal policy metric
  double seconds = 0.0;  // cumulative work seconds (additive model)
  double cost = 0.0;     // cumulative resource cost
  // Producer; op_node < 0 means the data pre-exists (source/intermediate).
  int producer_op_node = -1;
  int producer_cand = -1;  // index into the producer node's snapshot
  Resources resources;
  OperatorRunEstimate op_estimate;
  ChoiceVec inputs;
  double op_input_bytes = 0.0;
  double op_input_records = 0.0;
};

using EntryVec = std::vector<Entry, ArenaAllocator<Entry>>;

}  // namespace

const PlannerContext& DpPlanner::context() const {
  if (context_ != nullptr) return *context_;
  std::call_once(owned_context_once_, [this] {
    owned_context_ = std::make_unique<PlannerContext>(library_, engines_);
  });
  return *owned_context_;
}

Result<ExecutionPlan> DpPlanner::Plan(const WorkflowGraph& graph,
                                      const Options& options) const {
  IRES_RETURN_IF_ERROR(graph.Validate());
  static const AnalyticCostEstimator kAnalytic;
  const CostEstimator& estimator =
      options.estimator != nullptr ? *options.estimator : kAnalytic;
  const OptimizationPolicy& policy = options.policy;
  const DataMovementModel& movement = engines_->movement();
  const PlannerContext& ctx = context();

  Arena plan_arena;
  const ChoiceAlloc choice_alloc(&plan_arena);
  std::vector<EntryVec> dp_table(graph.size(),
                                 EntryVec(ArenaAllocator<Entry>(&plan_arena)));
  // Per operator node: the resolved candidates, kept alive for the whole
  // plan so entry back-references stay valid.
  std::vector<CandidateSnapshot> snapshots(graph.size());
  StringInterner interner;

  // ---- dpTable initialization (Algorithm 1, lines 5-10). -----------------
  for (size_t id = 0; id < graph.size(); ++id) {
    const WorkflowGraph::Node& node = graph.node(static_cast<int>(id));
    if (node.kind != WorkflowGraph::NodeKind::kDataset) continue;

    auto pre_it = options.materialized_intermediates.find(node.name);
    if (pre_it != options.materialized_intermediates.end()) {
      Entry entry(choice_alloc);
      entry.instance = pre_it->second;
      entry.instance.dataset_node = node.name;
      entry.store_id = interner.Intern(entry.instance.store);
      entry.format_id = interner.Intern(entry.instance.format);
      dp_table[id].push_back(std::move(entry));
      continue;
    }
    if (!node.outputs.empty()) continue;  // produced by an operator

    const Dataset* dataset = library_->FindDatasetByName(node.name);
    if (dataset == nullptr) {
      return Status::NotFound("source dataset not in library: " + node.name);
    }
    if (!dataset->IsMaterialized()) {
      return Status::FailedPrecondition("source dataset is abstract: " +
                                        node.name);
    }
    Entry entry(choice_alloc);
    entry.instance.dataset_node = node.name;
    entry.instance.store = dataset->store();
    entry.instance.format = dataset->format();
    entry.instance.bytes = dataset->size_bytes();
    entry.instance.records = dataset->record_count();
    entry.store_id = interner.Intern(entry.instance.store);
    entry.format_id = interner.Intern(entry.instance.format);
    dp_table[id].push_back(std::move(entry));
  }

  // Target already materialized -> empty plan, cost 0 (lines 8-9).
  if (!dp_table[graph.target()].empty()) {
    ExecutionPlan plan;
    return plan;
  }

  IRES_ASSIGN_OR_RETURN(std::vector<int> topo, graph.TopologicalOperators());

  // ---- Main DP loop over abstract operators (lines 11-31). ---------------
  for (int op_node : topo) {
    const WorkflowGraph::Node& node = graph.node(op_node);

    // findMaterializedOperators (line 12) through the memoized index; the
    // synthesized-abstract fallback for inline operators lives there too.
    snapshots[op_node] = ctx.Resolve(node.name);
    const CandidateSnapshot& candidates = snapshots[op_node];

    for (size_t cand_idx = 0; cand_idx < candidates.size(); ++cand_idx) {
      const ResolvedCandidate& cand = candidates[cand_idx];
      // Unavailable engines are excluded at planning time (§2.3).
      if (!cand.engine_available) continue;
      const SimulatedEngine* engine = cand.engine;

      // ---- Resolve every input port (lines 14-26). ----------------------
      bool feasible = true;
      double input_metric = 0.0;
      double input_seconds = 0.0;
      double input_cost = 0.0;
      double total_bytes = 0.0;
      double total_records = 0.0;
      ChoiceVec choices(choice_alloc);
      choices.reserve(node.inputs.size());
      for (size_t port = 0; port < node.inputs.size() && feasible; ++port) {
        const int in_node = node.inputs[port];
        const IoRequirement& req = cand.InputReq(port);
        double best = std::numeric_limits<double>::infinity();
        InputChoice best_choice;
        const EntryVec& entries = dp_table[in_node];
        for (size_t e = 0; e < entries.size(); ++e) {
          const Entry& tin = entries[e];
          if (InstanceSatisfies(tin.instance, req)) {
            if (tin.metric < best) {
              best = tin.metric;
              best_choice = InputChoice{static_cast<int>(in_node),
                                        static_cast<int>(e), false,
                                        tin.instance, 0.0, 0.0};
            }
          } else {
            // checkMove / moveCost (lines 22-25): one move/transform hop.
            DatasetInstance moved = tin.instance;
            if (!req.store.empty()) moved.store = req.store;
            const bool transform =
                !req.format.empty() && req.format != tin.instance.format;
            if (transform) moved.format = req.format;
            const double move_seconds = movement.MoveSeconds(
                tin.instance.bytes, tin.instance.store, moved.store,
                transform);
            // Moves run on a minimal 1x(1c,1g) container.
            const double move_cost = Resources{1, 1, 1.0}.CostForDuration(
                move_seconds);
            const double metric =
                tin.metric + policy.Metric(move_seconds, move_cost);
            if (metric < best) {
              best = metric;
              best_choice =
                  InputChoice{static_cast<int>(in_node), static_cast<int>(e),
                              true, moved, move_seconds, move_cost};
            }
          }
        }
        if (!std::isfinite(best)) {
          feasible = false;
          break;
        }
        const Entry& chosen = entries[best_choice.entry_index];
        input_metric += best;
        input_seconds += chosen.seconds + best_choice.move_seconds;
        input_cost += chosen.cost + best_choice.move_cost;
        total_bytes += best_choice.moved_instance.bytes;
        total_records += best_choice.moved_instance.records;
        choices.push_back(std::move(best_choice));
      }
      if (!feasible) continue;

      // ---- Estimate the operator itself (line 27). -----------------------
      OperatorRunRequest request;
      request.algorithm = cand.algorithm;
      request.input_bytes = total_bytes;
      request.input_records = total_records;
      request.params = cand.params;
      request.resources = engine->default_resources();
      if (options.advisor != nullptr) {
        request.resources =
            options.advisor->Advise(*engine, request, policy);
      }
      auto estimate = estimator.Estimate(*engine, request);
      if (!estimate.ok()) continue;  // infeasible on this engine (e.g. OOM)
      const OperatorRunEstimate& est = estimate.value();
      const double op_metric = policy.Metric(est.exec_seconds, est.cost);
      const double total_metric = input_metric + op_metric;

      // ---- Insert every output dataset into the dpTable (lines 29-31). --
      for (size_t port = 0; port < node.outputs.size(); ++port) {
        const int out_node = node.outputs[port];
        if (out_node < 0) continue;
        const IoRequirement& out_req = cand.OutputReq(port);
        Entry entry(choice_alloc);
        entry.instance.dataset_node = graph.node(out_node).name;
        entry.instance.store =
            !out_req.store.empty() ? out_req.store : engine->native_store();
        entry.instance.format = !out_req.format.empty()
                                    ? out_req.format
                                    : (choices.empty()
                                           ? ""
                                           : choices[0].moved_instance.format);
        entry.store_id = interner.Intern(entry.instance.store);
        entry.format_id = interner.Intern(entry.instance.format);
        entry.instance.bytes = est.output_bytes;
        entry.instance.records = est.output_records;
        entry.metric = total_metric;
        entry.seconds = input_seconds + est.exec_seconds;
        entry.cost = input_cost + est.cost;
        entry.producer_op_node = op_node;
        entry.producer_cand = static_cast<int>(cand_idx);
        entry.resources = request.resources;
        entry.op_estimate = est;
        entry.op_input_bytes = total_bytes;
        entry.op_input_records = total_records;
        // The last output port owns the choices; earlier ports copy.
        if (port + 1 == node.outputs.size()) {
          entry.inputs = std::move(choices);
        } else {
          entry.inputs = choices;
        }

        // Keep one record per (store, format): the cheapest. Buckets hold
        // at most one entry per distinct location, so a flat vector with
        // interned-id comparison beats any map.
        EntryVec& bucket = dp_table[out_node];
        if (bucket.capacity() == 0) bucket.reserve(candidates.size());
        auto existing = std::find_if(
            bucket.begin(), bucket.end(), [&](const Entry& other) {
              return other.store_id == entry.store_id &&
                     other.format_id == entry.format_id;
            });
        if (existing == bucket.end()) {
          bucket.push_back(std::move(entry));
        } else if (entry.metric < existing->metric) {
          *existing = std::move(entry);
        }
      }
    }
  }

  // ---- Pick the optimal target entry (line 32). ---------------------------
  const EntryVec& target_entries = dp_table[graph.target()];
  if (target_entries.empty()) {
    return Status::FailedPrecondition(
        "no feasible execution plan reaches the target dataset");
  }
  size_t best_idx = 0;
  for (size_t i = 1; i < target_entries.size(); ++i) {
    if (target_entries[i].metric < target_entries[best_idx].metric) {
      best_idx = i;
    }
  }

  // ---- Reconstruct the chosen plan from the back-pointers. ---------------
  ExecutionPlan plan;
  // Memo: one plan step per producing run, keyed by (op node, candidate).
  std::map<std::pair<int, int>, int> produced;

  // Explicit worklist in place of recursion: deep (1000+ operator) chains
  // must not overflow the stack. Each frame mirrors one recursive
  // activation; a frame suspends before an unbuilt producer and resumes at
  // the same input once the producer's step is memoized, which reproduces
  // the recursive step order (producer subtree, then the move step, then
  // the consumer) exactly.
  struct Frame {
    int dataset_node;
    int entry_index;
    size_t next_input = 0;
    PlanStep step;
  };
  auto build_plan = [&](int root_node, int root_entry) {
    {
      const Entry& root = dp_table[root_node][root_entry];
      if (root.producer_op_node < 0) return;  // source data, empty plan
    }
    std::vector<Frame> stack;
    auto push_frame = [&](int dataset_node, int entry_index) -> bool {
      const Entry& entry = dp_table[dataset_node][entry_index];
      if (produced.count({entry.producer_op_node, entry.producer_cand}) > 0) {
        return false;  // already built
      }
      Frame frame;
      frame.dataset_node = dataset_node;
      frame.entry_index = entry_index;
      const ResolvedCandidate& cand =
          snapshots[entry.producer_op_node][entry.producer_cand];
      PlanStep& step = frame.step;
      step.kind = PlanStep::Kind::kOperator;
      step.name = cand.op.name();
      step.engine = cand.engine_name;
      step.algorithm = cand.algorithm;
      step.resources = entry.resources;
      step.estimated_seconds = entry.op_estimate.exec_seconds;
      step.estimated_cost = entry.op_estimate.cost;
      step.params = cand.params;
      step.input_bytes = entry.op_input_bytes;
      step.input_records = entry.op_input_records;
      for (int out_node : graph.node(entry.producer_op_node).outputs) {
        if (out_node < 0) continue;
        // All outputs of this run share the producer's estimate; find the
        // entry for each output that this run created.
        for (const Entry& out_entry : dp_table[out_node]) {
          if (out_entry.producer_op_node == entry.producer_op_node &&
              out_entry.producer_cand == entry.producer_cand) {
            step.outputs.push_back(out_entry.instance);
            break;
          }
        }
      }
      stack.push_back(std::move(frame));
      return true;
    };

    push_frame(root_node, root_entry);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const Entry& entry = dp_table[frame.dataset_node][frame.entry_index];
      bool suspended = false;
      while (frame.next_input < entry.inputs.size()) {
        const InputChoice& choice = entry.inputs[frame.next_input];
        const Entry& in_entry =
            dp_table[choice.dataset_node][choice.entry_index];
        int producer_step = -1;
        if (in_entry.producer_op_node >= 0) {
          auto it = produced.find(
              {in_entry.producer_op_node, in_entry.producer_cand});
          if (it == produced.end()) {
            // Build the producer first; resume this input afterwards.
            push_frame(choice.dataset_node, choice.entry_index);
            suspended = true;
            break;
          }
          producer_step = it->second;
        }
        int upstream = producer_step;
        if (choice.move) {
          PlanStep move_step;
          move_step.kind = PlanStep::Kind::kMove;
          move_step.name = "move(" + in_entry.instance.dataset_node + ":" +
                           in_entry.instance.store + "->" +
                           choice.moved_instance.store + ")";
          move_step.engine = frame.step.engine;
          move_step.algorithm = "Move";
          move_step.resources = Resources{1, 1, 1.0};
          move_step.estimated_seconds = choice.move_seconds;
          move_step.estimated_cost = choice.move_cost;
          move_step.outputs.push_back(choice.moved_instance);
          move_step.input_bytes = in_entry.instance.bytes;
          move_step.input_records = in_entry.instance.records;
          if (producer_step >= 0) {
            move_step.deps.push_back(producer_step);
          } else {
            move_step.source_datasets.push_back(
                in_entry.instance.dataset_node);
          }
          move_step.id = static_cast<int>(plan.steps.size());
          plan.steps.push_back(move_step);
          upstream = move_step.id;
        }
        if (upstream >= 0) {
          frame.step.deps.push_back(upstream);
        } else {
          frame.step.source_datasets.push_back(in_entry.instance.dataset_node);
        }
        ++frame.next_input;
      }
      if (suspended) continue;

      frame.step.id = static_cast<int>(plan.steps.size());
      produced.emplace(
          std::make_pair(entry.producer_op_node, entry.producer_cand),
          frame.step.id);
      plan.steps.push_back(std::move(frame.step));
      stack.pop_back();
    }
  };
  build_plan(graph.target(), static_cast<int>(best_idx));

  // ---- End-to-end estimates: critical path + summed cost. ----------------
  std::vector<double> finish(plan.steps.size(), 0.0);
  double makespan = 0.0;
  double total_cost = 0.0;
  for (const PlanStep& step : plan.steps) {  // steps are in dependency order
    double start = 0.0;
    for (int dep : step.deps) start = std::max(start, finish[dep]);
    finish[step.id] = start + step.estimated_seconds;
    makespan = std::max(makespan, finish[step.id]);
    total_cost += step.estimated_cost;
  }
  plan.estimated_seconds = makespan;
  plan.estimated_cost = total_cost;
  plan.metric = target_entries[best_idx].metric;
#ifndef NDEBUG
  // Debug-only self-check: the DP must never emit a structurally unsound
  // plan (dense ids, backward deps, known available engines, covered cost
  // models, satisfiable edges). Release builds skip this entirely.
  {
    PlanAnalyzer::Options check;
    check.library = library_;
    check.engines = engines_;
    check.materialized_intermediates = &options.materialized_intermediates;
    const std::vector<Diagnostic> findings = PlanAnalyzer(check).Analyze(plan);
    if (HasErrors(findings)) {
      IRES_LOG(kError) << "DpPlanner produced an invalid plan:\n"
                       << RenderText(findings);
      assert(false && "DpPlanner emitted a plan that fails PlanAnalyzer");
    }
  }
#endif
  return plan;
}

}  // namespace ires
