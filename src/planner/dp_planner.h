#ifndef IRES_PLANNER_DP_PLANNER_H_
#define IRES_PLANNER_DP_PLANNER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engines/engine_registry.h"
#include "operators/operator_library.h"
#include "planner/cost_estimator.h"
#include "planner/execution_plan.h"
#include "planner/optimization_policy.h"
#include "workflow/workflow_graph.h"

namespace ires {

/// Chooses container resources for one operator run. The NSGA-II-based
/// provisioner (src/provisioning/) implements this; when absent, the planner
/// uses each engine's default grid.
class ResourceAdvisor {
 public:
  virtual ~ResourceAdvisor() = default;

  /// Returns the resources to provision for `request` on `engine` under
  /// `policy`. `request.resources` carries the engine default on entry.
  virtual Resources Advise(const SimulatedEngine& engine,
                           const OperatorRunRequest& request,
                           const OptimizationPolicy& policy) = 0;
};

/// The IReS multi-engine planner: the dynamic-programming optimizer of
/// deliverable §2.2.3 (Algorithm 1). Processes abstract operators in DAG
/// topological order; for every abstract dataset node it keeps one optimal
/// sub-plan per distinct (store, format) the dataset can exist in; move/
/// transform operators are injected when a chosen input lives in the wrong
/// store or format. Worst-case complexity O(op · m² · k).
class DpPlanner {
 public:
  struct Options {
    OptimizationPolicy policy = OptimizationPolicy::MinimizeTime();
    /// Cost model library; null = analytic models.
    const CostEstimator* estimator = nullptr;
    /// Elastic resource provisioning hook; null = engine defaults.
    ResourceAdvisor* advisor = nullptr;
    /// Replanning support: intermediate results that already exist
    /// (dataset-node name -> location/size). These enter the dpTable at
    /// cost 0, so completed work is never re-scheduled (§2.3).
    std::map<std::string, DatasetInstance> materialized_intermediates;
  };

  DpPlanner(const OperatorLibrary* library, const EngineRegistry* engines)
      : library_(library), engines_(engines) {}

  /// Plans `graph` under `options`. Fails with FailedPrecondition when no
  /// feasible materialized plan reaches the target.
  Result<ExecutionPlan> Plan(const WorkflowGraph& graph,
                             const Options& options) const;

 private:
  const OperatorLibrary* library_;
  const EngineRegistry* engines_;
};

}  // namespace ires

#endif  // IRES_PLANNER_DP_PLANNER_H_
