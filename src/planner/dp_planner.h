#ifndef IRES_PLANNER_DP_PLANNER_H_
#define IRES_PLANNER_DP_PLANNER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engines/engine_registry.h"
#include "operators/operator_library.h"
#include "planner/cost_estimator.h"
#include "planner/execution_plan.h"
#include "planner/optimization_policy.h"
#include "planner/planner_context.h"
#include "workflow/workflow_graph.h"

namespace ires {

/// Chooses container resources for one operator run. The NSGA-II-based
/// provisioner (src/provisioning/) implements this; when absent, the planner
/// uses each engine's default grid.
class ResourceAdvisor {
 public:
  virtual ~ResourceAdvisor() = default;

  /// Returns the resources to provision for `request` on `engine` under
  /// `policy`. `request.resources` carries the engine default on entry.
  virtual Resources Advise(const SimulatedEngine& engine,
                           const OperatorRunRequest& request,
                           const OptimizationPolicy& policy) = 0;
};

/// The IReS multi-engine planner: the dynamic-programming optimizer of
/// deliverable §2.2.3 (Algorithm 1). Processes abstract operators in DAG
/// topological order; for every abstract dataset node it keeps one optimal
/// sub-plan per distinct (store, format) the dataset can exist in; move/
/// transform operators are injected when a chosen input lives in the wrong
/// store or format. Worst-case complexity O(op · m² · k).
class DpPlanner {
 public:
  struct Options {
    OptimizationPolicy policy = OptimizationPolicy::MinimizeTime();
    /// Cost model library; null = analytic models.
    const CostEstimator* estimator = nullptr;
    /// Elastic resource provisioning hook; null = engine defaults.
    ResourceAdvisor* advisor = nullptr;
    /// Replanning support: intermediate results that already exist
    /// (dataset-node name -> location/size). These enter the dpTable at
    /// cost 0, so completed work is never re-scheduled (§2.3).
    std::map<std::string, DatasetInstance> materialized_intermediates;
  };

  /// When `context` is non-null it must be built over the same `library`
  /// and `engines`; sharing one context across planners (and with the
  /// Pareto planner / materialization report) is what lets repeated jobs
  /// skip candidate tree-matching. When null, the planner lazily owns a
  /// private context, so repeated Plan calls on one instance still warm up.
  DpPlanner(const OperatorLibrary* library, const EngineRegistry* engines,
            const PlannerContext* context = nullptr)
      : library_(library), engines_(engines), context_(context) {}

  /// Plans `graph` under `options`. Fails with FailedPrecondition when no
  /// feasible materialized plan reaches the target. Thread-safe.
  Result<ExecutionPlan> Plan(const WorkflowGraph& graph,
                             const Options& options) const;

 private:
  const PlannerContext& context() const;

  const OperatorLibrary* library_;
  const EngineRegistry* engines_;
  const PlannerContext* context_;
  mutable std::once_flag owned_context_once_;
  mutable std::unique_ptr<PlannerContext> owned_context_;
};

}  // namespace ires

#endif  // IRES_PLANNER_DP_PLANNER_H_
