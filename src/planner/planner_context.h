#ifndef IRES_PLANNER_PLANNER_CONTEXT_H_
#define IRES_PLANNER_PLANNER_CONTEXT_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engines/engine_registry.h"
#include "operators/operator_library.h"
#include "planner/planner_common.h"
#include "telemetry/metrics_registry.h"

namespace ires {

/// One materialized implementation of an abstract workflow node, resolved
/// and pre-digested for the planner hot loop: an owning copy of the
/// operator (immune to concurrent RemoveByEngine), the engine it binds to,
/// and the per-port I/O requirements plus run parameters that the DP inner
/// loop would otherwise re-extract from the metadata tree on every
/// (candidate × port × entry) visit.
struct ResolvedCandidate {
  MaterializedOperator op;
  std::string engine_name;   // Constraints.Engine
  std::string algorithm;     // Constraints.OpSpecification.Algorithm.name
  /// Registry entry for engine_name (stable — engines are never erased);
  /// null when the engine is not deployed.
  const SimulatedEngine* engine = nullptr;
  /// Availability sampled at snapshot time; snapshots are keyed on the
  /// registry's availability epoch, so a flip makes the snapshot stale
  /// rather than wrong.
  bool engine_available = false;
  /// Optimization.params.* leaves, ready for OperatorRunRequest::params.
  std::map<std::string, double> params;
  std::vector<planner_internal::IoRequirement> input_reqs;
  std::vector<planner_internal::IoRequirement> output_reqs;

  /// Requirement for input/output port `i`; ports beyond the declared
  /// Constraints.Input<i>/Output<i> subtrees are unconstrained, matching
  /// RequirementFromSpec(nullptr).
  const planner_internal::IoRequirement& InputReq(size_t i) const;
  const planner_internal::IoRequirement& OutputReq(size_t i) const;
};

/// The version-stamped result of resolving one abstract node: a shared,
/// immutable candidate list. Copies are cheap (one shared_ptr); the data
/// stays alive as long as any snapshot references it, independent of
/// library mutation.
class CandidateSnapshot {
 public:
  CandidateSnapshot() = default;

  size_t size() const { return set_ == nullptr ? 0 : set_->candidates.size(); }
  bool empty() const { return size() == 0; }
  const ResolvedCandidate& operator[](size_t i) const {
    return set_->candidates[i];
  }
  const std::vector<ResolvedCandidate>& candidates() const {
    static const std::vector<ResolvedCandidate> kEmpty;
    return set_ == nullptr ? kEmpty : set_->candidates;
  }

  /// Operator-library version / engine-availability epoch the candidates
  /// were resolved at.
  uint64_t library_version() const {
    return set_ == nullptr ? 0 : set_->library_version;
  }
  uint64_t engine_epoch() const {
    return set_ == nullptr ? 0 : set_->engine_epoch;
  }

 private:
  friend class PlannerContext;
  struct Set {
    uint64_t library_version = 0;
    uint64_t engine_epoch = 0;
    std::vector<ResolvedCandidate> candidates;
  };
  explicit CandidateSnapshot(std::shared_ptr<const Set> set)
      : set_(std::move(set)) {}

  std::shared_ptr<const Set> set_;
};

/// Shared planner state for one (operator library, engine registry) pair:
/// the memoized candidate-resolution index that lets repeated jobs skip
/// abstract→materialized tree matching entirely. DpPlanner, ParetoPlanner
/// and BuildMaterializationReport all resolve through it.
///
/// Entries are keyed by abstract node name and validated against the
/// library version and engine-availability epoch, so any registration,
/// removal or ON/OFF flip invalidates exactly the stale entries (they
/// rebuild on next use). The cache is sharded: lookups take a per-shard
/// shared lock, so concurrent planners scale reads while rebuilds only
/// contend within one shard.
///
/// Telemetry (when a registry is supplied, else a private one):
///   ires_planner_candidate_cache_hits_total / _misses_total
///   ires_planner_candidate_match_seconds (miss-path resolution latency)
class PlannerContext {
 public:
  PlannerContext(const OperatorLibrary* library, const EngineRegistry* engines,
                 MetricsRegistry* metrics = nullptr);

  PlannerContext(const PlannerContext&) = delete;
  PlannerContext& operator=(const PlannerContext&) = delete;

  /// Candidates for the abstract node `name`: the library's abstract
  /// operator of that name, or — when none is registered — a synthesized
  /// abstract whose algorithm is the node name itself (workflows may
  /// reference operators that exist only inline). Thread-safe.
  CandidateSnapshot Resolve(const std::string& name) const;

  const OperatorLibrary* library() const { return library_; }
  const EngineRegistry* engines() const { return engines_; }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  Stats stats() const;

 private:
  static constexpr size_t kShards = 8;

  /// All shards share kPlannerContextShard: Resolve touches exactly one
  /// shard, and the resolution itself (library matching, engine lookups)
  /// runs *between* the shared-lock probe and the unique-lock store, so no
  /// two shard locks are ever held at once.
  struct Shard {
    mutable SharedMutex mu{LockRank::kPlannerContextShard, "planner.shard"};
    std::unordered_map<std::string,
                       std::shared_ptr<const CandidateSnapshot::Set>>
        entries GUARDED_BY(mu);
  };

  std::shared_ptr<const CandidateSnapshot::Set> Build(
      const std::string& name, uint64_t engine_epoch) const;

  const OperatorLibrary* library_;
  const EngineRegistry* engines_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // fallback registry
  Counter* hits_;
  Counter* misses_;
  Histogram* match_seconds_;
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace ires

#endif  // IRES_PLANNER_PLANNER_CONTEXT_H_
