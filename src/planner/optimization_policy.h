#ifndef IRES_PLANNER_OPTIMIZATION_POLICY_H_
#define IRES_PLANNER_OPTIMIZATION_POLICY_H_

#include <algorithm>
#include <string>

namespace ires {

/// The user-defined optimization policy: the planner minimizes a scalar
/// metric that is either execution time, monetary/resource cost, or a
/// weighted combination of the two (deliverable §2.2.3: "one metric or a
/// function of multiple performance metrics").
struct OptimizationPolicy {
  enum class Objective {
    kMinimizeTime,
    kMinimizeCost,
    kWeighted,
  };

  Objective objective = Objective::kMinimizeTime;
  /// Weights for the kWeighted objective; the metric is
  /// time_weight * seconds + cost_weight * cost.
  double time_weight = 1.0;
  double cost_weight = 0.0;

  static OptimizationPolicy MinimizeTime() { return {}; }
  static OptimizationPolicy MinimizeCost() {
    OptimizationPolicy p;
    p.objective = Objective::kMinimizeCost;
    return p;
  }
  static OptimizationPolicy Weighted(double time_weight, double cost_weight) {
    OptimizationPolicy p;
    p.objective = Objective::kWeighted;
    p.time_weight = time_weight;
    p.cost_weight = cost_weight;
    return p;
  }

  /// Scalarizes (seconds, cost) under this policy.
  double Metric(double seconds, double cost) const {
    switch (objective) {
      case Objective::kMinimizeTime: return seconds;
      case Objective::kMinimizeCost: return cost;
      case Objective::kWeighted:
        return time_weight * seconds + cost_weight * cost;
    }
    return seconds;
  }

  std::string ToString() const {
    switch (objective) {
      case Objective::kMinimizeTime: return "min-time";
      case Objective::kMinimizeCost: return "min-cost";
      case Objective::kWeighted:
        return "weighted(t=" + std::to_string(time_weight) +
               ",c=" + std::to_string(cost_weight) + ")";
    }
    return "?";
  }
};

}  // namespace ires

#endif  // IRES_PLANNER_OPTIMIZATION_POLICY_H_
