#ifndef IRES_PLANNER_MATERIALIZATION_REPORT_H_
#define IRES_PLANNER_MATERIALIZATION_REPORT_H_

#include <string>
#include <vector>

#include "engines/engine_registry.h"
#include "operators/operator_library.h"
#include "planner/execution_plan.h"
#include "planner/planner_context.h"
#include "workflow/workflow_graph.h"

namespace ires {

/// One candidate implementation of an abstract operator — a row of the
/// "materialized workflow" view the platform's web UI renders (deliverable
/// Fig. 19: the optimal plan in green, the alternatives in red).
struct OperatorAlternative {
  std::string materialized;  // materialized operator name
  std::string engine;
  bool feasible = false;
  std::string infeasibility;      // why not (OOM, engine OFF, ...)
  double estimated_seconds = 0.0;  // at the chosen plan's input stats
  bool chosen = false;
};

/// The full alternatives view of one planned workflow.
struct MaterializationReport {
  struct OperatorEntry {
    std::string operator_node;   // abstract operator node name
    bool scheduled = false;      // false when replanning skipped it
    std::vector<OperatorAlternative> alternatives;
  };
  std::vector<OperatorEntry> operators;

  /// Text rendering: "[*]" marks the chosen implementation.
  std::string ToString() const;
};

/// Builds the alternatives view for `graph` against the chosen `plan`:
/// every matching materialized operator is re-estimated with the input
/// statistics the chosen plan established, so the numbers are comparable
/// with the selected implementation's.
///
/// When `context` is non-null (built over the same library/registry, e.g.
/// the planner's), candidate resolution is served from its memoized index;
/// otherwise a transient context resolves each node once.
Result<MaterializationReport> BuildMaterializationReport(
    const WorkflowGraph& graph, const OperatorLibrary& library,
    const EngineRegistry& engines, const ExecutionPlan& plan,
    const PlannerContext* context = nullptr);

}  // namespace ires

#endif  // IRES_PLANNER_MATERIALIZATION_REPORT_H_
