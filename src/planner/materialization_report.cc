#include "planner/materialization_report.h"

#include <cstdio>
#include <map>
#include <memory>

namespace ires {

std::string MaterializationReport::ToString() const {
  std::string out;
  for (const OperatorEntry& entry : operators) {
    out += entry.operator_node;
    out += entry.scheduled ? ":\n" : ": (not scheduled - reused result)\n";
    for (const OperatorAlternative& alt : entry.alternatives) {
      char line[192];
      if (alt.feasible) {
        std::snprintf(line, sizeof(line), "  [%c] %-28s @%-12s est=%.2fs\n",
                      alt.chosen ? '*' : ' ', alt.materialized.c_str(),
                      alt.engine.c_str(), alt.estimated_seconds);
      } else {
        std::snprintf(line, sizeof(line), "  [x] %-28s @%-12s %s\n",
                      alt.materialized.c_str(), alt.engine.c_str(),
                      alt.infeasibility.c_str());
      }
      out += line;
    }
  }
  return out;
}

Result<MaterializationReport> BuildMaterializationReport(
    const WorkflowGraph& graph, const OperatorLibrary& library,
    const EngineRegistry& engines, const ExecutionPlan& plan,
    const PlannerContext* context) {
  std::unique_ptr<PlannerContext> transient;
  if (context == nullptr) {
    transient = std::make_unique<PlannerContext>(&library, &engines);
    context = transient.get();
  }
  // Map each produced dataset node to its producing plan step.
  // Moves re-emit the dataset they ship, so only operator steps count as
  // producers here.
  std::map<std::string, const PlanStep*> producer_of;
  for (const PlanStep& step : plan.steps) {
    if (step.kind != PlanStep::Kind::kOperator) continue;
    for (const DatasetInstance& out : step.outputs) {
      producer_of[out.dataset_node] = &step;
    }
  }

  IRES_ASSIGN_OR_RETURN(std::vector<int> topo, graph.TopologicalOperators());
  MaterializationReport report;
  for (int op_node : topo) {
    const WorkflowGraph::Node& node = graph.node(op_node);
    MaterializationReport::OperatorEntry entry;
    entry.operator_node = node.name;

    // The chosen plan step (if any): the producer of the first output.
    const PlanStep* chosen_step = nullptr;
    for (int out_node : node.outputs) {
      if (out_node < 0) continue;
      auto it = producer_of.find(graph.node(out_node).name);
      if (it != producer_of.end() &&
          it->second->kind == PlanStep::Kind::kOperator) {
        chosen_step = it->second;
        break;
      }
    }
    entry.scheduled = chosen_step != nullptr;

    // Candidate implementations, estimated at the chosen step's input
    // statistics (or zero inputs when the operator was not scheduled).
    // Resolution (including the synthesized-abstract fallback for inline
    // operators) is shared with the planners via the context's index.
    const CandidateSnapshot candidates = context->Resolve(node.name);
    for (const ResolvedCandidate& cand : candidates.candidates()) {
      OperatorAlternative alt;
      alt.materialized = cand.op.name();
      alt.engine = cand.engine_name;
      alt.chosen =
          chosen_step != nullptr && chosen_step->name == cand.op.name();
      if (!cand.engine_available) {
        alt.infeasibility = "engine unavailable";
        entry.alternatives.push_back(std::move(alt));
        continue;
      }
      const SimulatedEngine* engine = cand.engine;
      OperatorRunRequest request;
      request.algorithm = cand.algorithm;
      if (chosen_step != nullptr) {
        request.input_bytes = chosen_step->input_bytes;
        request.input_records = chosen_step->input_records;
      }
      request.params = cand.params;
      request.resources = engine->default_resources();
      auto estimate = engine->Estimate(request);
      if (estimate.ok()) {
        alt.feasible = true;
        alt.estimated_seconds = estimate.value().exec_seconds;
      } else {
        alt.infeasibility = estimate.status().ToString();
      }
      entry.alternatives.push_back(std::move(alt));
    }
    report.operators.push_back(std::move(entry));
  }
  return report;
}

}  // namespace ires
