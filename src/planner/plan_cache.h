#ifndef IRES_PLANNER_PLAN_CACHE_H_
#define IRES_PLANNER_PLAN_CACHE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "planner/execution_plan.h"
#include "telemetry/metrics_registry.h"

namespace ires {

/// Thread-safe cache of DP-planner outputs. Concurrent submissions of the
/// same workflow under the same policy hit the cache instead of re-running
/// the O(op·m²·k) dynamic program. Entries are keyed on everything the
/// planner's answer depends on — the workflow-graph fingerprint, the policy,
/// and version counters of the operator library, model library and engine
/// availability — so any registration, model refit or engine ON/OFF flip
/// naturally invalidates stale plans (their keys stop being produced).
///
/// Hit/miss/insertion/eviction accounting lives on `ires_plan_cache_*`
/// counters in a MetricsRegistry (the server's when one is supplied, a
/// private one otherwise); stats() is a thin read over those counters, so
/// the REST stats route and /apiv1/metrics report from one source.
class PlanCache {
 public:
  struct Key {
    uint64_t graph_fingerprint = 0;
    std::string policy;          // OptimizationPolicy::ToString()
    uint64_t library_version = 0;
    uint64_t model_version = 0;
    uint64_t engine_epoch = 0;

    bool operator<(const Key& other) const {
      return std::tie(graph_fingerprint, policy, library_version,
                      model_version, engine_epoch) <
             std::tie(other.graph_fingerprint, other.policy,
                      other.library_version, other.model_version,
                      other.engine_epoch);
    }
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  /// When `metrics` is null the cache keeps its counters in a private
  /// registry (standalone/test use); the server passes its own so the
  /// counters surface on /apiv1/metrics.
  explicit PlanCache(size_t capacity = 128,
                     MetricsRegistry* metrics = nullptr);

  /// Returns a copy of the cached plan for `key`, counting a hit/miss.
  std::optional<ExecutionPlan> Lookup(const Key& key) EXCLUDES(mu_);

  /// Stores `plan` under `key` (no-op if already present), evicting the
  /// oldest entry when full.
  void Insert(const Key& key, const ExecutionPlan& plan) EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);
  Stats stats() const EXCLUDES(mu_);

 private:
  const size_t capacity_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // fallback registry
  Counter* hits_;
  Counter* misses_;
  Counter* insertions_;
  Counter* evictions_;
  Gauge* entries_gauge_;
  mutable Mutex mu_{LockRank::kPlanCache, "planner.plan_cache"};
  std::map<Key, ExecutionPlan> entries_ GUARDED_BY(mu_);
  std::deque<Key> insertion_order_ GUARDED_BY(mu_);  // FIFO eviction
};

}  // namespace ires

#endif  // IRES_PLANNER_PLAN_CACHE_H_
