#ifndef IRES_PLANNER_PARETO_PLANNER_H_
#define IRES_PLANNER_PARETO_PLANNER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engines/engine_registry.h"
#include "operators/operator_library.h"
#include "planner/cost_estimator.h"
#include "planner/execution_plan.h"
#include "planner/planner_context.h"
#include "threading/task_scheduler.h"
#include "workflow/workflow_graph.h"

namespace ires {

/// Multi-objective variant of the IReS planner. Deliverable §2.2.3 names
/// this as work in progress ("we are currently investigating methods for
/// optimizing multiple dimensions of performance metrics, such as finding
/// Pareto frontier execution plans"); this class implements it: instead of
/// one scalar-optimal record per (dataset, store, format), the dpTable keeps
/// a pruned Pareto set over (execution seconds, execution cost), and the
/// planner returns the whole frontier of non-dominated plans at the target.
/// The user (or a policy layer) then picks the preferred trade-off.
class ParetoPlanner {
 public:
  struct Options {
    /// Cost model library; null = analytic models. Must be thread-safe for
    /// concurrent Estimate calls when `scheduler` is set.
    const CostEstimator* estimator = nullptr;
    /// Frontier-size cap per dpTable bucket; larger = finer frontier,
    /// slower planning. Pruning keeps the extremes plus evenly spread
    /// interior points.
    int max_frontier_size = 16;
    /// Replanning support, as in DpPlanner.
    std::map<std::string, DatasetInstance> materialized_intermediates;
    /// When set, per-candidate input combination and cost estimation fan
    /// out across the scheduler. The result is bit-identical to the serial
    /// path: the parallel phase only reads the dpTable, and entries are
    /// merged in candidate-index order afterwards.
    TaskScheduler* scheduler = nullptr;
  };

  /// One frontier plan with its objective vector.
  struct FrontierPlan {
    ExecutionPlan plan;
    double seconds = 0.0;  // cumulative work seconds (DP objective 1)
    double cost = 0.0;     // cumulative resource cost (DP objective 2)
  };

  /// As with DpPlanner: a shared non-null `context` (built over the same
  /// library/registry) lets repeated jobs reuse memoized candidate
  /// resolution; when null a private context is created lazily.
  ParetoPlanner(const OperatorLibrary* library, const EngineRegistry* engines,
                const PlannerContext* context = nullptr)
      : library_(library), engines_(engines), context_(context) {}

  /// Computes the Pareto frontier of execution plans for `graph`, sorted by
  /// ascending seconds (and thus descending cost). Fails when no feasible
  /// plan reaches the target.
  Result<std::vector<FrontierPlan>> PlanFrontier(const WorkflowGraph& graph,
                                                 const Options& options) const;

 private:
  const PlannerContext& context() const;

  const OperatorLibrary* library_;
  const EngineRegistry* engines_;
  const PlannerContext* context_;
  mutable std::once_flag owned_context_once_;
  mutable std::unique_ptr<PlannerContext> owned_context_;
};

}  // namespace ires

#endif  // IRES_PLANNER_PARETO_PLANNER_H_
