#include "planner/planner_common.h"

#include <cstdlib>

namespace ires::planner_internal {

IoRequirement RequirementFromSpec(const MetadataTree::Node* spec) {
  IoRequirement req;
  if (spec == nullptr) return req;
  auto engine_it = spec->children.find("Engine");
  if (engine_it != spec->children.end()) {
    auto fs_it = engine_it->second.children.find("FS");
    if (fs_it != engine_it->second.children.end() &&
        fs_it->second.value.has_value() &&
        *fs_it->second.value != MetadataTree::kWildcard) {
      req.store = *fs_it->second.value;
    }
  }
  auto type_it = spec->children.find("type");
  if (type_it != spec->children.end() && type_it->second.value.has_value() &&
      *type_it->second.value != MetadataTree::kWildcard) {
    req.format = *type_it->second.value;
  }
  return req;
}

bool InstanceSatisfies(const DatasetInstance& instance,
                       const IoRequirement& req) {
  if (!req.store.empty() && req.store != instance.store) return false;
  if (!req.format.empty() && req.format != instance.format) return false;
  return true;
}

std::map<std::string, double> ReadParams(const MaterializedOperator& mo) {
  std::map<std::string, double> params;
  const MetadataTree::Node* node = mo.meta().Find("Optimization.params");
  if (node == nullptr) return params;
  for (const auto& [key, child] : node->children) {
    if (child.value.has_value()) {
      params[key] = std::strtod(child.value->c_str(), nullptr);
    }
  }
  return params;
}

}  // namespace ires::planner_internal
