#include "chaos/chaos_scheduler.h"

namespace ires {

void ChaosScheduler::Arm(Enforcer* enforcer) {
  if (enforcer == nullptr || !config_.enabled()) return;
  enforcer->set_fault_oracle(
      [this](const PlanStep& step, double now, int attempt) {
        return Decide(step, now, attempt);
      });
  for (const ChaosConfig::NodeEvent& event : config_.node_events) {
    if (event.node < 0) continue;
    if (event.fail) {
      enforcer->ScheduleNodeFailure(event.node, event.at_seconds);
    } else {
      enforcer->ScheduleNodeRecovery(event.node, event.at_seconds);
    }
  }
}

Enforcer::FaultDecision ChaosScheduler::Decide(const PlanStep& step,
                                               double /*now*/,
                                               int /*attempt*/) {
  Enforcer::FaultDecision decision;
  const double total = config_.transient_probability +
                       config_.timeout_probability +
                       config_.engine_crash_probability;
  if (total <= 0.0) return decision;
  // One uniform draw per attempt, partitioned into bands: enabling or
  // tuning one fault kind never shifts which attempts another kind hits.
  const double u = rng_.Uniform(0.0, 1.0);
  double band = config_.transient_probability;
  if (u < band) {
    decision.fail = true;
    decision.kind = FailureKind::kTransient;
    transient_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  band += config_.timeout_probability;
  if (u < band) {
    decision.fail = true;
    decision.kind = FailureKind::kTimeout;
    timeout_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  band += config_.engine_crash_probability;
  if (u < band &&
      (config_.crash_engine.empty() || step.engine == config_.crash_engine)) {
    decision.fail = true;
    decision.kind = FailureKind::kEngineCrash;
    engine_crash_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  return decision;
}

}  // namespace ires
