#include "chaos/chaos_scheduler.h"

namespace ires {

void ChaosScheduler::Arm(Enforcer* enforcer) {
  if (enforcer == nullptr || !config_.enabled()) return;
  enforcer->set_fault_oracle(
      [this](const PlanStep& step, double now, int attempt) {
        return Decide(step, now, attempt);
      });
  for (const ChaosConfig::NodeEvent& event : config_.node_events) {
    if (event.node < 0) continue;
    if (event.fail) {
      enforcer->ScheduleNodeFailure(event.node, event.at_seconds);
    } else {
      enforcer->ScheduleNodeRecovery(event.node, event.at_seconds);
    }
  }
}

Enforcer::FaultDecision ChaosScheduler::Decide(const PlanStep& step,
                                               double /*now*/,
                                               int /*attempt*/) {
  Enforcer::FaultDecision decision;
  const double total = config_.transient_probability +
                       config_.timeout_probability +
                       config_.engine_crash_probability;
  if (total <= 0.0) return decision;
  // One uniform draw per attempt, partitioned into bands: enabling or
  // tuning one fault kind never shifts which attempts another kind hits.
  const double u = rng_.Uniform(0.0, 1.0);
  double band = config_.transient_probability;
  if (u < band) {
    decision.fail = true;
    decision.kind = FailureKind::kTransient;
    transient_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  band += config_.timeout_probability;
  if (u < band) {
    decision.fail = true;
    decision.kind = FailureKind::kTimeout;
    timeout_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  band += config_.engine_crash_probability;
  if (u < band &&
      (config_.crash_engine.empty() || step.engine == config_.crash_engine)) {
    decision.fail = true;
    decision.kind = FailureKind::kEngineCrash;
    engine_crash_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  return decision;
}

bool ControlPlaneChaos::DecideKill(char phase) {
  if (!config_.enabled()) return false;
  const double probability = phase == 'p'
                                 ? config_.kill_mid_plan_probability
                                 : config_.kill_mid_run_probability;
  if (probability <= 0.0) return false;
  bool kill = false;
  {
    MutexLock lock(mu_);
    if (kills_ >= config_.max_kills) return false;
    kill = rng_.Uniform(0.0, 1.0) < probability;
    if (kill) ++kills_;
  }
  if (kill) {
    (phase == 'p' ? kills_mid_plan_ : kills_mid_run_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  return kill;
}

bool ControlPlaneChaos::DecideTorn() {
  if (config_.torn_append_probability <= 0.0) return false;
  bool torn = false;
  {
    MutexLock lock(mu_);
    torn = rng_.Uniform(0.0, 1.0) < config_.torn_append_probability;
  }
  if (torn) torn_appends_.fetch_add(1, std::memory_order_relaxed);
  return torn;
}

bool ControlPlaneChaos::DecidePartition() {
  if (!config_.enabled() || config_.heartbeat_partition_probability <= 0.0) {
    return false;
  }
  bool partition = false;
  {
    MutexLock lock(mu_);
    partition =
        rng_.Uniform(0.0, 1.0) < config_.heartbeat_partition_probability;
  }
  if (partition) partitions_.fetch_add(1, std::memory_order_relaxed);
  return partition;
}

}  // namespace ires
