#ifndef IRES_CHAOS_CHAOS_SCHEDULER_H_
#define IRES_CHAOS_CHAOS_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "executor/enforcer.h"
#include "executor/failure.h"

namespace ires {

/// Declarative fault schedule for one job. All randomness is drawn from a
/// dedicated xoshiro stream seeded with `seed`, so the same config against
/// the same plan injects the same faults at the same step attempts — chaos
/// runs are replayable bug reports, not flaky ones.
struct ChaosConfig {
  /// 0 disables chaos entirely (the scheduler injects nothing).
  uint64_t seed = 0;

  /// Per start-attempt probabilities, evaluated in this order from a single
  /// uniform draw (so enabling one kind never perturbs another kind's
  /// stream). Sums above 1.0 are nonsensical; keep the total <= 1.
  double transient_probability = 0.0;
  double timeout_probability = 0.0;
  double engine_crash_probability = 0.0;

  /// Restricts engine-crash injection to steps on this engine; empty hits
  /// any engine. Transient/timeout faults always apply to any step.
  std::string crash_engine;

  /// Node flap schedule: nodes die and come back at fixed simulated times.
  struct NodeEvent {
    int node = -1;
    double at_seconds = 0.0;
    bool fail = true;  // false = recovery
  };
  std::vector<NodeEvent> node_events;

  bool enabled() const {
    return seed != 0 &&
           (transient_probability > 0.0 || timeout_probability > 0.0 ||
            engine_crash_probability > 0.0 || !node_events.empty());
  }
};

/// Deterministic fault scheduler: turns a ChaosConfig into the enforcer's
/// FaultOracle plus node failure/recovery schedules, and counts what it
/// injected so tests can reconcile injected faults against retry and replan
/// telemetry. One scheduler per job; it must outlive every Execute() call
/// of the enforcer it armed.
class ChaosScheduler {
 public:
  explicit ChaosScheduler(const ChaosConfig& config)
      : config_(config), rng_(config.seed == 0 ? 1 : config.seed) {}

  ChaosScheduler(const ChaosScheduler&) = delete;
  ChaosScheduler& operator=(const ChaosScheduler&) = delete;

  /// Installs this scheduler as `enforcer`'s fault oracle and arms the
  /// configured node events. No-op when the config is disabled.
  void Arm(Enforcer* enforcer);

  /// The oracle body: decides whether the given step start attempt fails,
  /// and with which failure kind.
  Enforcer::FaultDecision Decide(const PlanStep& step, double now,
                                 int attempt);

  /// Injected-fault tallies (reads are safe after the armed runs finish).
  struct Counts {
    uint64_t transient = 0;
    uint64_t timeout = 0;
    uint64_t engine_crash = 0;
    uint64_t total() const { return transient + timeout + engine_crash; }
  };
  Counts counts() const {
    Counts c;
    c.transient = transient_.load(std::memory_order_relaxed);
    c.timeout = timeout_.load(std::memory_order_relaxed);
    c.engine_crash = engine_crash_.load(std::memory_order_relaxed);
    return c;
  }

  const ChaosConfig& config() const { return config_; }

 private:
  const ChaosConfig config_;
  Rng rng_;
  std::atomic<uint64_t> transient_{0};
  std::atomic<uint64_t> timeout_{0};
  std::atomic<uint64_t> engine_crash_{0};
};

}  // namespace ires

#endif  // IRES_CHAOS_CHAOS_SCHEDULER_H_
