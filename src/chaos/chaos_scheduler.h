#ifndef IRES_CHAOS_CHAOS_SCHEDULER_H_
#define IRES_CHAOS_CHAOS_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "executor/enforcer.h"
#include "executor/failure.h"

namespace ires {

/// Declarative fault schedule for one job. All randomness is drawn from a
/// dedicated xoshiro stream seeded with `seed`, so the same config against
/// the same plan injects the same faults at the same step attempts — chaos
/// runs are replayable bug reports, not flaky ones.
struct ChaosConfig {
  /// 0 disables chaos entirely (the scheduler injects nothing).
  uint64_t seed = 0;

  /// Per start-attempt probabilities, evaluated in this order from a single
  /// uniform draw (so enabling one kind never perturbs another kind's
  /// stream). Sums above 1.0 are nonsensical; keep the total <= 1.
  double transient_probability = 0.0;
  double timeout_probability = 0.0;
  double engine_crash_probability = 0.0;

  /// Restricts engine-crash injection to steps on this engine; empty hits
  /// any engine. Transient/timeout faults always apply to any step.
  std::string crash_engine;

  /// Node flap schedule: nodes die and come back at fixed simulated times.
  struct NodeEvent {
    int node = -1;
    double at_seconds = 0.0;
    bool fail = true;  // false = recovery
  };
  std::vector<NodeEvent> node_events;

  bool enabled() const {
    return seed != 0 &&
           (transient_probability > 0.0 || timeout_probability > 0.0 ||
            engine_crash_probability > 0.0 || !node_events.empty());
  }
};

/// Deterministic fault scheduler: turns a ChaosConfig into the enforcer's
/// FaultOracle plus node failure/recovery schedules, and counts what it
/// injected so tests can reconcile injected faults against retry and replan
/// telemetry. One scheduler per job; it must outlive every Execute() call
/// of the enforcer it armed.
class ChaosScheduler {
 public:
  explicit ChaosScheduler(const ChaosConfig& config)
      : config_(config), rng_(config.seed == 0 ? 1 : config.seed) {}

  ChaosScheduler(const ChaosScheduler&) = delete;
  ChaosScheduler& operator=(const ChaosScheduler&) = delete;

  /// Installs this scheduler as `enforcer`'s fault oracle and arms the
  /// configured node events. No-op when the config is disabled.
  void Arm(Enforcer* enforcer);

  /// The oracle body: decides whether the given step start attempt fails,
  /// and with which failure kind.
  Enforcer::FaultDecision Decide(const PlanStep& step, double now,
                                 int attempt);

  /// Injected-fault tallies (reads are safe after the armed runs finish).
  struct Counts {
    uint64_t transient = 0;
    uint64_t timeout = 0;
    uint64_t engine_crash = 0;
    uint64_t total() const { return transient + timeout + engine_crash; }
  };
  Counts counts() const {
    Counts c;
    c.transient = transient_.load(std::memory_order_relaxed);
    c.timeout = timeout_.load(std::memory_order_relaxed);
    c.engine_crash = engine_crash_.load(std::memory_order_relaxed);
    return c;
  }

  const ChaosConfig& config() const { return config_; }

 private:
  const ChaosConfig config_;
  Rng rng_;
  std::atomic<uint64_t> transient_{0};
  std::atomic<uint64_t> timeout_{0};
  std::atomic<uint64_t> engine_crash_{0};
};

/// Control-plane fault schedule: replica kills at precise job phase
/// boundaries, torn journal appends riding the kill, and heartbeat
/// partitions. Like ChaosConfig, a zero seed disables everything and the
/// same seed replays the same fault sequence against the same workload.
struct ControlPlaneChaosConfig {
  uint64_t seed = 0;

  /// Probability a job's replica is killed just before planning starts
  /// (evaluated once per job pickup).
  double kill_mid_plan_probability = 0.0;
  /// Probability the replica is killed right after a step's outputs
  /// materialize (evaluated once per completed step) — the mid-run kill
  /// that proves journal-checkpoint resume.
  double kill_mid_run_probability = 0.0;
  /// Probability a kill also tears the journal's in-flight append (the
  /// crash-during-journal-append fault).
  double torn_append_probability = 0.0;
  /// Probability per heartbeat tick that one replica's heartbeats stop
  /// arriving (a partition; heals on RestartReplica/HealReplica).
  double heartbeat_partition_probability = 0.0;

  /// Hard cap on injected replica kills across the scheduler's lifetime —
  /// soaks bound their fault volume the same way retry budgets do.
  int max_kills = 4;

  bool enabled() const {
    return seed != 0 &&
           (kill_mid_plan_probability > 0.0 ||
            kill_mid_run_probability > 0.0 ||
            heartbeat_partition_probability > 0.0);
  }
};

/// Seeded decision source for control-plane faults. Thread-safe: the
/// control plane consults it from every replica's job threads at once, so
/// the RNG sits behind a leaf-rank mutex (decisions acquire nothing else).
class ControlPlaneChaos {
 public:
  explicit ControlPlaneChaos(const ControlPlaneChaosConfig& config)
      : config_(config), rng_(config.seed == 0 ? 1 : config.seed) {}

  ControlPlaneChaos(const ControlPlaneChaos&) = delete;
  ControlPlaneChaos& operator=(const ControlPlaneChaos&) = delete;

  /// Whether to kill the probing replica at this phase boundary
  /// ('p' = about to plan, 's' = step just completed). Honors max_kills.
  bool DecideKill(char phase) EXCLUDES(mu_);
  /// Whether a decided kill also tears the journal append.
  bool DecideTorn() EXCLUDES(mu_);
  /// Whether this heartbeat tick partitions a replica.
  bool DecidePartition() EXCLUDES(mu_);

  struct Counts {
    uint64_t kills_mid_plan = 0;
    uint64_t kills_mid_run = 0;
    uint64_t torn_appends = 0;
    uint64_t partitions = 0;
    uint64_t kills() const { return kills_mid_plan + kills_mid_run; }
  };
  Counts counts() const {
    Counts c;
    c.kills_mid_plan = kills_mid_plan_.load(std::memory_order_relaxed);
    c.kills_mid_run = kills_mid_run_.load(std::memory_order_relaxed);
    c.torn_appends = torn_appends_.load(std::memory_order_relaxed);
    c.partitions = partitions_.load(std::memory_order_relaxed);
    return c;
  }

  const ControlPlaneChaosConfig& config() const { return config_; }

 private:
  const ControlPlaneChaosConfig config_;
  mutable Mutex mu_{LockRank::kLeaf, "chaos.control_plane"};
  Rng rng_ GUARDED_BY(mu_);
  int kills_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> kills_mid_plan_{0};
  std::atomic<uint64_t> kills_mid_run_{0};
  std::atomic<uint64_t> torn_appends_{0};
  std::atomic<uint64_t> partitions_{0};
};

}  // namespace ires

#endif  // IRES_CHAOS_CHAOS_SCHEDULER_H_
