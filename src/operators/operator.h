#ifndef IRES_OPERATORS_OPERATOR_H_
#define IRES_OPERATORS_OPERATOR_H_

#include <string>
#include <vector>

#include "common/strings.h"
#include "metadata/metadata_tree.h"
#include "metadata/tree_match.h"
#include "operators/dataset.h"

namespace ires {

/// An *abstract* operator: the engine-agnostic description used when
/// composing workflows (deliverable §2.1, Fig. 2b). It pins down the
/// algorithm and arity but leaves implementation/engine unspecified (or
/// wildcarded).
class AbstractOperator {
 public:
  AbstractOperator() = default;
  AbstractOperator(std::string name, MetadataTree meta)
      : name_(std::move(name)), meta_(std::move(meta)) {}

  const std::string& name() const { return name_; }
  const MetadataTree& meta() const { return meta_; }
  MetadataTree& mutable_meta() { return meta_; }

  /// Algorithm identifier (`Constraints.OpSpecification.Algorithm.name`);
  /// this is the highly selective attribute the operator library indexes on.
  std::string algorithm() const {
    return meta_.GetOr("Constraints.OpSpecification.Algorithm.name", "");
  }

  int input_count() const {
    return ParseIntOr(meta_.GetOr("Constraints.Input.number", "1"), 1);
  }
  int output_count() const {
    return ParseIntOr(meta_.GetOr("Constraints.Output.number", "1"), 1);
  }

 private:
  std::string name_;
  MetadataTree meta_;
};

/// A *materialized* operator: a concrete implementation bound to an engine,
/// with full input/output specifications and optimization hints (deliverable
/// §2.1, Fig. 3). Instances live in the OperatorLibrary.
class MaterializedOperator {
 public:
  MaterializedOperator() = default;
  MaterializedOperator(std::string name, MetadataTree meta)
      : name_(std::move(name)), meta_(std::move(meta)) {}

  const std::string& name() const { return name_; }
  const MetadataTree& meta() const { return meta_; }
  MetadataTree& mutable_meta() { return meta_; }

  std::string algorithm() const {
    return meta_.GetOr("Constraints.OpSpecification.Algorithm.name", "");
  }

  /// Execution engine (`Constraints.Engine`), e.g. "Spark", "Java".
  std::string engine() const { return meta_.GetOr("Constraints.Engine", ""); }

  int input_count() const {
    return ParseIntOr(meta_.GetOr("Constraints.Input.number", "1"), 1);
  }
  int output_count() const {
    return ParseIntOr(meta_.GetOr("Constraints.Output.number", "1"), 1);
  }

  /// The constraint subtree for input `i` (`Constraints.Input<i>`), used as a
  /// pattern against candidate input datasets. Returns nullptr when the
  /// operator declares no constraints for that input (accepts anything).
  const MetadataTree::Node* InputSpec(int i) const {
    return meta_.Find("Constraints.Input" + std::to_string(i));
  }

  /// The constraint subtree for output `i` (`Constraints.Output<i>`); this
  /// describes the dataset the operator produces (store, format, ...).
  const MetadataTree::Node* OutputSpec(int i) const {
    return meta_.Find("Constraints.Output" + std::to_string(i));
  }

  /// True when `dataset` can be fed to input `i` as-is (its metadata
  /// satisfies the `Constraints.Input<i>` pattern). Missing spec = match.
  bool AcceptsInput(int i, const Dataset& dataset) const;

  /// Builds the metadata of the dataset produced at output `i`: the
  /// operator's `Output<i>` constraints become the dataset's `Constraints`.
  MetadataTree MakeOutputMeta(int i) const;

 private:
  std::string name_;
  MetadataTree meta_;
};

/// Matches an abstract operator against a materialized implementation:
/// the abstract `Constraints` subtree is a pattern that the materialized
/// operator's `Constraints` must satisfy (wildcards allowed). Input/Output
/// arity fields participate like any other constraint.
MatchResult MatchesAbstract(const AbstractOperator& abstract,
                            const MaterializedOperator& materialized);

}  // namespace ires

#endif  // IRES_OPERATORS_OPERATOR_H_
