#ifndef IRES_OPERATORS_DATASET_H_
#define IRES_OPERATORS_DATASET_H_

#include <cstdlib>
#include <string>

#include "metadata/metadata_tree.h"

namespace ires {

/// A dataset node of a workflow, described by a metadata tree (deliverable
/// §2.1, Fig. 2a). A dataset is *materialized* when it exists somewhere
/// concrete (it has an `Execution.path`); abstract datasets are placeholders
/// produced and consumed inside a workflow definition.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, MetadataTree meta)
      : name_(std::move(name)), meta_(std::move(meta)) {}

  const std::string& name() const { return name_; }
  const MetadataTree& meta() const { return meta_; }
  MetadataTree& mutable_meta() { return meta_; }

  /// Materialized datasets carry a concrete location.
  bool IsMaterialized() const { return meta_.Has("Execution.path"); }

  /// Storage path (empty for abstract datasets).
  std::string path() const { return meta_.GetOr("Execution.path", ""); }

  /// Filesystem / store the data lives in, e.g. "HDFS", "PostgreSQL".
  std::string store() const {
    return meta_.GetOr("Constraints.Engine.FS", "");
  }

  /// Serialization format ("text", "arff", "sequence", ...).
  std::string format() const { return meta_.GetOr("Constraints.type", ""); }

  /// Size in bytes from `Optimization.size` (0 when unknown).
  double size_bytes() const {
    std::string v = meta_.GetOr("Optimization.size", "0");
    return std::strtod(v.c_str(), nullptr);
  }

  /// Record/document count from `Optimization.documents` (0 when unknown).
  double record_count() const {
    std::string v = meta_.GetOr("Optimization.documents", "0");
    return std::strtod(v.c_str(), nullptr);
  }

  void set_size_bytes(double bytes) {
    meta_.Set("Optimization.size", std::to_string(bytes));
  }
  void set_record_count(double n) {
    meta_.Set("Optimization.documents", std::to_string(n));
  }

 private:
  std::string name_;
  MetadataTree meta_;
};

}  // namespace ires

#endif  // IRES_OPERATORS_DATASET_H_
