#include "operators/operator.h"

#include <functional>

namespace ires {

bool MaterializedOperator::AcceptsInput(int i, const Dataset& dataset) const {
  const MetadataTree::Node* spec = InputSpec(i);
  if (spec == nullptr) return true;
  const MetadataTree::Node* data_constraints =
      dataset.meta().Find("Constraints");
  static const MetadataTree::Node kEmpty;
  if (data_constraints == nullptr) data_constraints = &kEmpty;
  return MatchTreeNodes(*spec, *data_constraints).matched;
}

MetadataTree MaterializedOperator::MakeOutputMeta(int i) const {
  MetadataTree out;
  const MetadataTree::Node* spec = OutputSpec(i);
  if (spec != nullptr) {
    // Copy the Output<i> subtree as the dataset's Constraints subtree.
    std::function<void(const MetadataTree::Node&, const std::string&)> copy =
        [&](const MetadataTree::Node& node, const std::string& prefix) {
          if (node.value.has_value()) out.Set(prefix, *node.value);
          for (const auto& [label, child] : node.children) {
            copy(child, prefix + "." + label);
          }
        };
    copy(*spec, "Constraints");
  }
  std::string out_path =
      meta_.GetOr("Execution.Output" + std::to_string(i) + ".path", "");
  if (!out_path.empty()) out.Set("Execution.path", out_path);
  return out;
}

MatchResult MatchesAbstract(const AbstractOperator& abstract,
                            const MaterializedOperator& materialized) {
  return MatchSubtrees(abstract.meta(), materialized.meta(), "Constraints");
}

}  // namespace ires
