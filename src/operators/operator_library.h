#ifndef IRES_OPERATORS_OPERATOR_LIBRARY_H_
#define IRES_OPERATORS_OPERATOR_LIBRARY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "operators/dataset.h"
#include "operators/operator.h"

namespace ires {

/// The IReS operator library (deliverable Fig. 1): the registry of
/// materialized operators, abstract operators and datasets known to the
/// platform. Materialized operators are indexed by their highly selective
/// algorithm attribute so that FindMaterializedOperators only runs the full
/// O(t) tree match against plausible candidates.
class OperatorLibrary {
 public:
  OperatorLibrary() = default;

  /// Registers a materialized operator. Names must be unique.
  Status AddMaterialized(MaterializedOperator op);

  /// Registers an abstract operator (reusable across workflows).
  Status AddAbstract(AbstractOperator op);

  /// Registers a dataset description.
  Status AddDataset(Dataset dataset);

  /// All materialized operators matching `abstract`: algorithm-index lookup
  /// followed by full metadata-tree matching.
  std::vector<const MaterializedOperator*> FindMaterializedOperators(
      const AbstractOperator& abstract) const;

  const MaterializedOperator* FindMaterializedByName(
      const std::string& name) const;
  const AbstractOperator* FindAbstractByName(const std::string& name) const;
  const Dataset* FindDatasetByName(const std::string& name) const;

  /// Removes every materialized operator bound to `engine` (used when an
  /// engine is reported unavailable). Returns the number removed.
  int RemoveByEngine(const std::string& engine);

  size_t materialized_count() const { return materialized_.size(); }
  size_t abstract_count() const { return abstract_.size(); }
  size_t dataset_count() const { return datasets_.size(); }

  /// Names of all materialized operators, sorted.
  std::vector<std::string> MaterializedNames() const;

  /// Read-only views over the registered artefacts (for merging/export).
  const std::map<std::string, MaterializedOperator>& materialized() const {
    return materialized_;
  }
  const std::map<std::string, AbstractOperator>& abstract() const {
    return abstract_;
  }
  const std::map<std::string, Dataset>& datasets() const { return datasets_; }

  /// Loads a library from an on-disk layout mirroring the platform's
  /// `asapLibrary/` directory:
  ///   <dir>/operators/<Name>/description   (materialized operators)
  ///   <dir>/abstractOperators/<Name>       (abstract operator files)
  ///   <dir>/datasets/<Name>                (dataset description files)
  /// Missing subdirectories are skipped silently.
  Status LoadFromDirectory(const std::string& dir);

  /// Writes the library back out in the same layout (description files are
  /// regenerated from the metadata trees). Existing files are overwritten.
  Status SaveToDirectory(const std::string& dir) const;

 private:
  void ReindexMaterialized();

  std::map<std::string, MaterializedOperator> materialized_;
  std::map<std::string, AbstractOperator> abstract_;
  std::map<std::string, Dataset> datasets_;
  // algorithm name -> materialized operator names.
  std::multimap<std::string, std::string> algorithm_index_;
};

}  // namespace ires

#endif  // IRES_OPERATORS_OPERATOR_LIBRARY_H_
