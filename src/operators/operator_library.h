#ifndef IRES_OPERATORS_OPERATOR_LIBRARY_H_
#define IRES_OPERATORS_OPERATOR_LIBRARY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "operators/dataset.h"
#include "operators/operator.h"

namespace ires {

/// The IReS operator library (deliverable Fig. 1): the registry of
/// materialized operators, abstract operators and datasets known to the
/// platform. Materialized operators are indexed by their highly selective
/// algorithm attribute so that FindMaterializedOperators only runs the full
/// O(t) tree match against plausible candidates.
///
/// Thread safety: all methods are internally synchronized with a
/// reader/writer lock, so concurrent job submissions can register artefacts
/// while the planner reads. Returned pointers stay valid as long as the
/// named entry is not erased (std::map node stability); RemoveByEngine is
/// the only eraser, so planners running concurrently with removals must go
/// through FindMaterializedSnapshot (owning, version-stamped copies) rather
/// than the raw-pointer FindMaterializedOperators.
class OperatorLibrary {
 public:
  OperatorLibrary() = default;

  // Copy/move transfer the registered artefacts but not the lock state;
  // the source must be quiescent (no concurrent mutation) during the copy.
  OperatorLibrary(const OperatorLibrary& other);
  OperatorLibrary& operator=(const OperatorLibrary& other);
  OperatorLibrary(OperatorLibrary&& other) noexcept;
  OperatorLibrary& operator=(OperatorLibrary&& other) noexcept;

  /// Registers a materialized operator. Names must be unique.
  Status AddMaterialized(MaterializedOperator op);

  /// Registers an abstract operator (reusable across workflows).
  Status AddAbstract(AbstractOperator op);

  /// Registers a dataset description.
  Status AddDataset(Dataset dataset);

  /// All materialized operators matching `abstract`: algorithm-index lookup
  /// followed by full metadata-tree matching.
  ///
  /// The returned pointers are only safe while no concurrent RemoveByEngine
  /// can run (erasure frees the pointed-to nodes). Concurrent planners must
  /// use FindMaterializedSnapshot (or the PlannerContext cache built on it)
  /// instead.
  std::vector<const MaterializedOperator*> FindMaterializedOperators(
      const AbstractOperator& abstract) const;

  /// Version-stamped, owning variant of FindMaterializedOperators: the
  /// matching operators are copied out under one shared lock together with
  /// the library version they were read at, so the result can never dangle
  /// (RemoveByEngine erases map nodes) and callers can detect staleness by
  /// comparing `version` against version().
  struct MatchSnapshot {
    uint64_t version = 0;
    std::vector<MaterializedOperator> operators;
  };
  MatchSnapshot FindMaterializedSnapshot(const AbstractOperator& abstract) const;

  const MaterializedOperator* FindMaterializedByName(
      const std::string& name) const;
  const AbstractOperator* FindAbstractByName(const std::string& name) const;
  const Dataset* FindDatasetByName(const std::string& name) const;

  /// Removes every materialized operator bound to `engine` (used when an
  /// engine is reported unavailable). Returns the number removed.
  int RemoveByEngine(const std::string& engine);

  size_t materialized_count() const;
  size_t abstract_count() const;
  size_t dataset_count() const;

  /// Names of all materialized operators, sorted.
  std::vector<std::string> MaterializedNames() const;

  /// Monotonic counter bumped by every successful mutation; part of the
  /// plan-cache key, so plans computed against an older library version are
  /// never served after a registration or removal.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Read-only views over the registered artefacts (for merging/export).
  /// Not synchronized: only safe while no concurrent mutation can run
  /// (setup, tests, single-threaded tools).
  const std::map<std::string, MaterializedOperator>& materialized() const {
    return materialized_;
  }
  const std::map<std::string, AbstractOperator>& abstract() const {
    return abstract_;
  }
  const std::map<std::string, Dataset>& datasets() const { return datasets_; }

  /// Loads a library from an on-disk layout mirroring the platform's
  /// `asapLibrary/` directory:
  ///   <dir>/operators/<Name>/description   (materialized operators)
  ///   <dir>/abstractOperators/<Name>       (abstract operator files)
  ///   <dir>/datasets/<Name>                (dataset description files)
  /// Missing subdirectories are skipped silently.
  Status LoadFromDirectory(const std::string& dir);

  /// Writes the library back out in the same layout (description files are
  /// regenerated from the metadata trees). Existing files are overwritten.
  Status SaveToDirectory(const std::string& dir) const;

 private:
  void ReindexMaterialized();
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  mutable std::shared_mutex mu_;
  std::atomic<uint64_t> version_{0};
  std::map<std::string, MaterializedOperator> materialized_;
  std::map<std::string, AbstractOperator> abstract_;
  std::map<std::string, Dataset> datasets_;
  // algorithm name -> materialized operator names.
  std::multimap<std::string, std::string> algorithm_index_;
};

}  // namespace ires

#endif  // IRES_OPERATORS_OPERATOR_LIBRARY_H_
