#ifndef IRES_OPERATORS_OPERATOR_LIBRARY_H_
#define IRES_OPERATORS_OPERATOR_LIBRARY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "operators/dataset.h"
#include "operators/operator.h"

namespace ires {

/// The IReS operator library (deliverable Fig. 1): the registry of
/// materialized operators, abstract operators and datasets known to the
/// platform. Materialized operators are indexed by their highly selective
/// algorithm attribute so that FindMaterializedOperators only runs the full
/// O(t) tree match against plausible candidates.
///
/// Thread safety: all methods are internally synchronized with a
/// reader/writer lock, so concurrent job submissions can register artefacts
/// while the planner reads. Returned pointers stay valid as long as the
/// named entry is not erased (std::map node stability); RemoveByEngine is
/// the only eraser, so planners running concurrently with removals must go
/// through FindMaterializedSnapshot (owning, version-stamped copies) rather
/// than the raw-pointer FindMaterializedOperators.
class OperatorLibrary {
 public:
  OperatorLibrary() = default;

  // Copy/move transfer the registered artefacts but not the lock state;
  // the source must be quiescent (no concurrent mutation) during the copy.
  OperatorLibrary(const OperatorLibrary& other);
  OperatorLibrary& operator=(const OperatorLibrary& other);
  OperatorLibrary(OperatorLibrary&& other) noexcept;
  OperatorLibrary& operator=(OperatorLibrary&& other) noexcept;

  /// Registers a materialized operator. Names must be unique.
  Status AddMaterialized(MaterializedOperator op) EXCLUDES(mu_);

  /// Registers an abstract operator (reusable across workflows).
  Status AddAbstract(AbstractOperator op) EXCLUDES(mu_);

  /// Registers a dataset description.
  Status AddDataset(Dataset dataset) EXCLUDES(mu_);

  /// All materialized operators matching `abstract`: algorithm-index lookup
  /// followed by full metadata-tree matching.
  ///
  /// The returned pointers are only safe while no concurrent RemoveByEngine
  /// can run (erasure frees the pointed-to nodes). Concurrent planners must
  /// use FindMaterializedSnapshot (or the PlannerContext cache built on it)
  /// instead.
  std::vector<const MaterializedOperator*> FindMaterializedOperators(
      const AbstractOperator& abstract) const EXCLUDES(mu_);

  /// Version-stamped, owning variant of FindMaterializedOperators: the
  /// matching operators are copied out under one shared lock together with
  /// the library version they were read at, so the result can never dangle
  /// (RemoveByEngine erases map nodes) and callers can detect staleness by
  /// comparing `version` against version().
  struct MatchSnapshot {
    uint64_t version = 0;
    std::vector<MaterializedOperator> operators;
  };
  MatchSnapshot FindMaterializedSnapshot(const AbstractOperator& abstract)
      const EXCLUDES(mu_);

  const MaterializedOperator* FindMaterializedByName(
      const std::string& name) const EXCLUDES(mu_);
  const AbstractOperator* FindAbstractByName(const std::string& name) const
      EXCLUDES(mu_);
  const Dataset* FindDatasetByName(const std::string& name) const
      EXCLUDES(mu_);

  /// Removes every materialized operator bound to `engine` (used when an
  /// engine is reported unavailable). Returns the number removed.
  int RemoveByEngine(const std::string& engine) EXCLUDES(mu_);

  size_t materialized_count() const EXCLUDES(mu_);
  size_t abstract_count() const EXCLUDES(mu_);
  size_t dataset_count() const EXCLUDES(mu_);

  /// Names of all materialized operators, sorted.
  std::vector<std::string> MaterializedNames() const EXCLUDES(mu_);

  /// Monotonic counter bumped by every successful mutation; part of the
  /// plan-cache key, so plans computed against an older library version are
  /// never served after a registration or removal.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Read-only views over the registered artefacts (for merging/export).
  /// Not synchronized: only safe while no concurrent mutation can run
  /// (setup, tests, single-threaded tools) — which is exactly why the
  /// analysis waiver is justified: the quiescence contract is the caller's,
  /// and no lock discipline inside this class could check it.
  const std::map<std::string, MaterializedOperator>& materialized() const
      NO_THREAD_SAFETY_ANALYSIS {
    return materialized_;
  }
  const std::map<std::string, AbstractOperator>& abstract() const
      NO_THREAD_SAFETY_ANALYSIS {
    return abstract_;
  }
  // Same quiescence-contract waiver as materialized() above.
  const std::map<std::string, Dataset>& datasets() const
      NO_THREAD_SAFETY_ANALYSIS {
    return datasets_;
  }

  /// Loads a library from an on-disk layout mirroring the platform's
  /// `asapLibrary/` directory:
  ///   <dir>/operators/<Name>/description   (materialized operators)
  ///   <dir>/abstractOperators/<Name>       (abstract operator files)
  ///   <dir>/datasets/<Name>                (dataset description files)
  /// Missing subdirectories are skipped silently.
  Status LoadFromDirectory(const std::string& dir);

  /// Writes the library back out in the same layout (description files are
  /// regenerated from the metadata trees). Existing files are overwritten.
  Status SaveToDirectory(const std::string& dir) const EXCLUDES(mu_);

 private:
  void ReindexMaterialized() REQUIRES(mu_);
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  mutable SharedMutex mu_{LockRank::kOperatorLibrary, "operators.library"};
  std::atomic<uint64_t> version_{0};
  std::map<std::string, MaterializedOperator> materialized_ GUARDED_BY(mu_);
  std::map<std::string, AbstractOperator> abstract_ GUARDED_BY(mu_);
  std::map<std::string, Dataset> datasets_ GUARDED_BY(mu_);
  // algorithm name -> materialized operator names.
  std::multimap<std::string, std::string> algorithm_index_ GUARDED_BY(mu_);
};

}  // namespace ires

#endif  // IRES_OPERATORS_OPERATOR_LIBRARY_H_
