#include "operators/operator_library.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace ires {

namespace {

Result<std::string> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open file: " + path.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

OperatorLibrary::OperatorLibrary(const OperatorLibrary& other) {
  ReaderLock lock(other.mu_);
  materialized_ = other.materialized_;
  abstract_ = other.abstract_;
  datasets_ = other.datasets_;
  algorithm_index_ = other.algorithm_index_;
  version_.store(other.version_.load(std::memory_order_acquire),
                 std::memory_order_release);
}

OperatorLibrary& OperatorLibrary::operator=(const OperatorLibrary& other) {
  if (this == &other) return *this;
  OperatorLibrary copy(other);
  return *this = std::move(copy);
}

OperatorLibrary::OperatorLibrary(OperatorLibrary&& other) noexcept {
  WriterLock lock(other.mu_);
  materialized_ = std::move(other.materialized_);
  abstract_ = std::move(other.abstract_);
  datasets_ = std::move(other.datasets_);
  algorithm_index_ = std::move(other.algorithm_index_);
  version_.store(other.version_.load(std::memory_order_acquire),
                 std::memory_order_release);
}

OperatorLibrary& OperatorLibrary::operator=(
    OperatorLibrary&& other) noexcept {
  if (this == &other) return *this;
  // The two library locks share one rank, so they are never held together:
  // drain `other` under its lock into locals, then install under ours.
  // (The old scoped_lock over both also risked the classic ABBA deadlock
  // when two threads assigned in opposite directions.)
  std::map<std::string, MaterializedOperator> materialized;
  std::map<std::string, AbstractOperator> abstract;
  std::map<std::string, Dataset> datasets;
  std::multimap<std::string, std::string> algorithm_index;
  uint64_t version = 0;
  {
    WriterLock lock(other.mu_);
    materialized = std::move(other.materialized_);
    abstract = std::move(other.abstract_);
    datasets = std::move(other.datasets_);
    algorithm_index = std::move(other.algorithm_index_);
    version = other.version_.load(std::memory_order_acquire);
  }
  {
    WriterLock lock(mu_);
    materialized_ = std::move(materialized);
    abstract_ = std::move(abstract);
    datasets_ = std::move(datasets);
    algorithm_index_ = std::move(algorithm_index);
    version_.store(version, std::memory_order_release);
  }
  return *this;
}

Status OperatorLibrary::AddMaterialized(MaterializedOperator op) {
  if (op.name().empty()) {
    return Status::InvalidArgument("materialized operator needs a name");
  }
  WriterLock lock(mu_);
  if (materialized_.count(op.name()) > 0) {
    return Status::AlreadyExists("materialized operator: " + op.name());
  }
  algorithm_index_.emplace(op.algorithm(), op.name());
  materialized_.emplace(op.name(), std::move(op));
  BumpVersion();
  return Status::OK();
}

Status OperatorLibrary::AddAbstract(AbstractOperator op) {
  if (op.name().empty()) {
    return Status::InvalidArgument("abstract operator needs a name");
  }
  WriterLock lock(mu_);
  if (abstract_.count(op.name()) > 0) {
    return Status::AlreadyExists("abstract operator: " + op.name());
  }
  abstract_.emplace(op.name(), std::move(op));
  BumpVersion();
  return Status::OK();
}

Status OperatorLibrary::AddDataset(Dataset dataset) {
  if (dataset.name().empty()) {
    return Status::InvalidArgument("dataset needs a name");
  }
  WriterLock lock(mu_);
  if (datasets_.count(dataset.name()) > 0) {
    return Status::AlreadyExists("dataset: " + dataset.name());
  }
  datasets_.emplace(dataset.name(), std::move(dataset));
  BumpVersion();
  return Status::OK();
}

std::vector<const MaterializedOperator*>
OperatorLibrary::FindMaterializedOperators(
    const AbstractOperator& abstract) const {
  ReaderLock lock(mu_);
  std::vector<const MaterializedOperator*> out;
  const std::string algorithm = abstract.algorithm();
  auto consider = [&](const MaterializedOperator& candidate) {
    if (MatchesAbstract(abstract, candidate).matched) {
      out.push_back(&candidate);
    }
  };
  if (!algorithm.empty() && algorithm != MetadataTree::kWildcard) {
    // Index fast path: only candidates with the right algorithm attribute.
    auto [begin, end] = algorithm_index_.equal_range(algorithm);
    for (auto it = begin; it != end; ++it) {
      consider(materialized_.at(it->second));
    }
  } else {
    for (const auto& [name, candidate] : materialized_) consider(candidate);
  }
  return out;
}

OperatorLibrary::MatchSnapshot OperatorLibrary::FindMaterializedSnapshot(
    const AbstractOperator& abstract) const {
  ReaderLock lock(mu_);
  MatchSnapshot snapshot;
  snapshot.version = version_.load(std::memory_order_acquire);
  const std::string algorithm = abstract.algorithm();
  auto consider = [&](const MaterializedOperator& candidate) {
    if (MatchesAbstract(abstract, candidate).matched) {
      snapshot.operators.push_back(candidate);
    }
  };
  if (!algorithm.empty() && algorithm != MetadataTree::kWildcard) {
    auto [begin, end] = algorithm_index_.equal_range(algorithm);
    for (auto it = begin; it != end; ++it) {
      consider(materialized_.at(it->second));
    }
  } else {
    for (const auto& [name, candidate] : materialized_) consider(candidate);
  }
  return snapshot;
}

const MaterializedOperator* OperatorLibrary::FindMaterializedByName(
    const std::string& name) const {
  ReaderLock lock(mu_);
  auto it = materialized_.find(name);
  return it == materialized_.end() ? nullptr : &it->second;
}

const AbstractOperator* OperatorLibrary::FindAbstractByName(
    const std::string& name) const {
  ReaderLock lock(mu_);
  auto it = abstract_.find(name);
  return it == abstract_.end() ? nullptr : &it->second;
}

const Dataset* OperatorLibrary::FindDatasetByName(
    const std::string& name) const {
  ReaderLock lock(mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : &it->second;
}

int OperatorLibrary::RemoveByEngine(const std::string& engine) {
  WriterLock lock(mu_);
  int removed = 0;
  for (auto it = materialized_.begin(); it != materialized_.end();) {
    if (it->second.engine() == engine) {
      it = materialized_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (removed > 0) {
    ReindexMaterialized();
    BumpVersion();
  }
  return removed;
}

size_t OperatorLibrary::materialized_count() const {
  ReaderLock lock(mu_);
  return materialized_.size();
}

size_t OperatorLibrary::abstract_count() const {
  ReaderLock lock(mu_);
  return abstract_.size();
}

size_t OperatorLibrary::dataset_count() const {
  ReaderLock lock(mu_);
  return datasets_.size();
}

std::vector<std::string> OperatorLibrary::MaterializedNames() const {
  ReaderLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(materialized_.size());
  for (const auto& [name, op] : materialized_) names.push_back(name);
  return names;
}

Status OperatorLibrary::LoadFromDirectory(const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path root(dir);
  if (!fs::exists(root)) {
    return Status::NotFound("library directory: " + dir);
  }

  const fs::path ops_dir = root / "operators";
  if (fs::exists(ops_dir)) {
    for (const auto& entry : fs::directory_iterator(ops_dir)) {
      if (!entry.is_directory()) continue;
      const fs::path desc = entry.path() / "description";
      if (!fs::exists(desc)) continue;
      IRES_ASSIGN_OR_RETURN(std::string text, ReadFile(desc));
      IRES_ASSIGN_OR_RETURN(MetadataTree tree,
                            MetadataTree::ParseDescription(text));
      IRES_RETURN_IF_ERROR(AddMaterialized(MaterializedOperator(
          entry.path().filename().string(), std::move(tree))));
    }
  }

  const fs::path abs_dir = root / "abstractOperators";
  if (fs::exists(abs_dir)) {
    for (const auto& entry : fs::directory_iterator(abs_dir)) {
      if (!entry.is_regular_file()) continue;
      IRES_ASSIGN_OR_RETURN(std::string text, ReadFile(entry.path()));
      IRES_ASSIGN_OR_RETURN(MetadataTree tree,
                            MetadataTree::ParseDescription(text));
      IRES_RETURN_IF_ERROR(AddAbstract(AbstractOperator(
          entry.path().filename().string(), std::move(tree))));
    }
  }

  const fs::path data_dir = root / "datasets";
  if (fs::exists(data_dir)) {
    for (const auto& entry : fs::directory_iterator(data_dir)) {
      if (!entry.is_regular_file()) continue;
      IRES_ASSIGN_OR_RETURN(std::string text, ReadFile(entry.path()));
      IRES_ASSIGN_OR_RETURN(MetadataTree tree,
                            MetadataTree::ParseDescription(text));
      IRES_RETURN_IF_ERROR(AddDataset(
          Dataset(entry.path().filename().string(), std::move(tree))));
    }
  }

  return Status::OK();
}

Status OperatorLibrary::SaveToDirectory(const std::string& dir) const {
  namespace fs = std::filesystem;
  ReaderLock lock(mu_);
  std::error_code ec;
  auto write_file = [](const fs::path& path,
                       const std::string& content) -> Status {
    std::ofstream out(path);
    if (!out) return Status::Internal("cannot write " + path.string());
    out << content;
    return Status::OK();
  };

  for (const auto& [name, op] : materialized_) {
    const fs::path op_dir = fs::path(dir) / "operators" / name;
    fs::create_directories(op_dir, ec);
    if (ec) return Status::Internal("mkdir failed: " + op_dir.string());
    IRES_RETURN_IF_ERROR(
        write_file(op_dir / "description", op.meta().ToDescription()));
  }
  if (!abstract_.empty()) {
    const fs::path abs_dir = fs::path(dir) / "abstractOperators";
    fs::create_directories(abs_dir, ec);
    if (ec) return Status::Internal("mkdir failed: " + abs_dir.string());
    for (const auto& [name, op] : abstract_) {
      IRES_RETURN_IF_ERROR(
          write_file(abs_dir / name, op.meta().ToDescription()));
    }
  }
  if (!datasets_.empty()) {
    const fs::path data_dir = fs::path(dir) / "datasets";
    fs::create_directories(data_dir, ec);
    if (ec) return Status::Internal("mkdir failed: " + data_dir.string());
    for (const auto& [name, dataset] : datasets_) {
      IRES_RETURN_IF_ERROR(
          write_file(data_dir / name, dataset.meta().ToDescription()));
    }
  }
  return Status::OK();
}

void OperatorLibrary::ReindexMaterialized() {
  algorithm_index_.clear();
  for (const auto& [name, op] : materialized_) {
    algorithm_index_.emplace(op.algorithm(), name);
  }
}

}  // namespace ires
