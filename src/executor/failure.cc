#include "executor/failure.h"

#include <algorithm>
#include <cmath>

namespace ires {

const char* FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kTransient: return "transient";
    case FailureKind::kTimeout: return "timeout";
    case FailureKind::kEngineCrash: return "engine_crash";
    case FailureKind::kNodeCrash: return "node_crash";
  }
  return "?";
}

FailureKind ClassifyFailure(const Status& status) {
  // Every natural (non-injected) step failure indicts the hosting engine:
  // kUnavailable (engine OFF at step start), kNotFound (engine or profile
  // missing), kResourceExhausted (deterministic memory infeasibility — a
  // retry on the same engine re-fails identically) and kExecutionError (a
  // container died). Transient/timeout kinds are only ever assigned
  // explicitly, by the fault oracle or the straggler deadline.
  (void)status;
  return FailureKind::kEngineCrash;
}

double RetryPolicy::BackoffSeconds(int retry, Rng* rng) const {
  if (retry < 1) retry = 1;
  double backoff = base_backoff_seconds *
                   std::pow(backoff_multiplier, static_cast<double>(retry - 1));
  backoff = std::min(backoff, max_backoff_seconds);
  if (rng != nullptr && jitter_fraction > 0.0) {
    backoff *= rng->Uniform(1.0 - jitter_fraction, 1.0 + jitter_fraction);
  }
  return std::max(backoff, 0.0);
}

double RetryPolicy::DeadlineSeconds(double estimated_seconds) const {
  if (straggler_multiplier <= 0.0 || estimated_seconds <= 0.0) return 0.0;
  return std::max(straggler_multiplier * estimated_seconds,
                  min_deadline_seconds);
}

}  // namespace ires
