#ifndef IRES_EXECUTOR_RECOVERING_EXECUTOR_H_
#define IRES_EXECUTOR_RECOVERING_EXECUTOR_H_

#include <vector>

#include "executor/enforcer.h"
#include "planner/dp_planner.h"

namespace ires {

/// How the platform reacts to a mid-workflow failure (deliverable §4.5).
enum class ReplanStrategy {
  /// IReS behaviour: keep successfully materialized intermediate results,
  /// replan only the residual workflow on the surviving engines.
  kIresReplan,
  /// Baseline: discard intermediates and reschedule the entire workflow.
  kTrivialReplan,
};

/// End-to-end outcome of a run with recovery.
struct RecoveryOutcome {
  Status status;
  /// Total simulated execution time across all attempts.
  double total_execution_seconds = 0.0;
  /// Total wall-clock planning time across all attempts (milliseconds) —
  /// the "planning time" column of Figures 20-22.
  double total_planning_ms = 0.0;
  /// Planning time of replans only (excluding the initial plan).
  double replanning_ms = 0.0;
  int replans = 0;
  ExecutionReport final_report;
  ExecutionPlan final_plan;
};

/// Plans, executes, monitors and — on failure — replans a workflow until it
/// completes or no feasible plan remains. Failed engines are marked OFF so
/// that replanning excludes them, exactly as §2.3 prescribes.
class RecoveringExecutor {
 public:
  RecoveringExecutor(const DpPlanner* planner, Enforcer* enforcer,
                     EngineRegistry* engines)
      : planner_(planner), enforcer_(enforcer), engines_(engines) {}

  /// At most this many replans before giving up.
  void set_max_replans(int n) { max_replans_ = n; }

  Result<RecoveryOutcome> Run(const WorkflowGraph& graph,
                              DpPlanner::Options options,
                              ReplanStrategy strategy);

  /// Like Run, but the first attempt executes `initial_plan` (when non-null)
  /// instead of invoking the planner — the plan-cache fast path of the job
  /// service; `initial_plan_ms` credits the planning time already spent
  /// producing it. Replans after a failure always go through the planner.
  /// Unlike Run, the outcome is returned even when the workflow ultimately
  /// fails: `outcome.status` carries the error and the accumulated
  /// planning/execution accounting survives.
  RecoveryOutcome RunFrom(const WorkflowGraph& graph,
                          DpPlanner::Options options, ReplanStrategy strategy,
                          const ExecutionPlan* initial_plan,
                          double initial_plan_ms = 0.0);

 private:
  const DpPlanner* planner_;
  Enforcer* enforcer_;
  EngineRegistry* engines_;
  int max_replans_ = 5;
};

}  // namespace ires

#endif  // IRES_EXECUTOR_RECOVERING_EXECUTOR_H_
