#ifndef IRES_EXECUTOR_RECOVERING_EXECUTOR_H_
#define IRES_EXECUTOR_RECOVERING_EXECUTOR_H_

#include <string>
#include <vector>

#include "executor/enforcer.h"
#include "executor/failure.h"
#include "planner/dp_planner.h"

namespace ires {

/// How the platform reacts to a mid-workflow failure (deliverable §4.5).
enum class ReplanStrategy {
  /// IReS behaviour: keep successfully materialized intermediate results,
  /// replan only the residual workflow on the surviving engines.
  kIresReplan,
  /// Baseline: discard intermediates and reschedule the entire workflow.
  kTrivialReplan,
};

/// Metric-label / JSON name of a strategy ("ires_replan", "trivial_replan").
const char* ReplanStrategyName(ReplanStrategy strategy);

/// One recorded workflow-level failure (a failed execution attempt).
struct FailureEvent {
  /// 0-based execution attempt that failed (0 = the initial plan).
  int attempt = 0;
  int failed_step = -1;
  FailureKind kind = FailureKind::kTransient;
  /// Engine of the failed step; empty when no step is attributable.
  std::string engine;
  std::string message;
};

/// End-to-end outcome of a run with recovery.
struct RecoveryOutcome {
  Status status;
  /// Total simulated execution time across all attempts (failed attempts
  /// included — their partial makespans accumulate here).
  double total_execution_seconds = 0.0;
  /// Total wall-clock planning time across all attempts (milliseconds) —
  /// the "planning time" column of Figures 20-22.
  double total_planning_ms = 0.0;
  /// Planning time of replans only (excluding the initial plan).
  double replanning_ms = 0.0;
  /// Replanning rounds actually performed. A run that gives up because the
  /// budget is exhausted does not count the replan it never ran, so with
  /// set_max_replans(0) this stays 0 even though one failure was recorded.
  int replans = 0;
  /// In-place step retries summed across all execution attempts.
  int step_retries = 0;
  /// Every failed execution attempt, in order; failures.size() >= replans,
  /// with equality iff the workflow eventually succeeded.
  std::vector<FailureEvent> failures;
  ExecutionReport final_report;
  ExecutionPlan final_plan;
};

/// Plans, executes, monitors and — on failure — replans a workflow until it
/// completes or no feasible plan remains (§2.3), escalating by failure
/// domain: transient faults and straggler kills are already retried in
/// place by the Enforcer; failures that survive retries indict the hosting
/// engine through the registry's circuit breaker (suspension with backoff,
/// not permanent OFF), while node crashes leave engines unindicted — the
/// node stays UNHEALTHY for the replan and the planner works around it.
/// Each run advances the registry's shared simulated clock by its total
/// execution time, so suspended engines heal as simulated work flows.
class RecoveringExecutor {
 public:
  RecoveringExecutor(const DpPlanner* planner, Enforcer* enforcer,
                     EngineRegistry* engines)
      : planner_(planner), enforcer_(enforcer), engines_(engines) {}

  /// At most this many replans before giving up.
  void set_max_replans(int n) { max_replans_ = n; }
  int max_replans() const { return max_replans_; }

  /// Flight-recorder handle: breaker indictments and replanning rounds are
  /// journaled under the writer's job id.
  void set_journal(JournalWriter journal) { journal_ = std::move(journal); }

  Result<RecoveryOutcome> Run(const WorkflowGraph& graph,
                              DpPlanner::Options options,
                              ReplanStrategy strategy);

  /// Like Run, but the first attempt executes `initial_plan` (when non-null)
  /// instead of invoking the planner — the plan-cache fast path of the job
  /// service; `initial_plan_ms` credits the planning time already spent
  /// producing it. Replans after a failure always go through the planner.
  /// Unlike Run, the outcome is returned even when the workflow ultimately
  /// fails: `outcome.status` carries the error and the accumulated
  /// planning/execution accounting survives.
  RecoveryOutcome RunFrom(const WorkflowGraph& graph,
                          DpPlanner::Options options, ReplanStrategy strategy,
                          const ExecutionPlan* initial_plan,
                          double initial_plan_ms = 0.0);

 private:
  const DpPlanner* planner_;
  Enforcer* enforcer_;
  EngineRegistry* engines_;
  JournalWriter journal_;
  int max_replans_ = 5;
};

}  // namespace ires

#endif  // IRES_EXECUTOR_RECOVERING_EXECUTOR_H_
