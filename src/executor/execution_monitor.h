#ifndef IRES_EXECUTOR_EXECUTION_MONITOR_H_
#define IRES_EXECUTOR_EXECUTION_MONITOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster_simulator.h"
#include "engines/engine_registry.h"
#include "planner/execution_plan.h"

namespace ires {

/// The execution monitor of deliverable §2.3: runs (simulated) health
/// scripts on every cluster node and checks the ON/OFF status of every
/// service an execution plan needs. Its findings gate both planning (engines
/// reported OFF are excluded) and execution (failures trigger replanning).
class ExecutionMonitor {
 public:
  /// A health script: given a node's state, report HEALTHY/UNHEALTHY.
  /// The default script flags nodes whose memory is oversubscribed.
  using HealthScript =
      std::function<NodeHealth(const ClusterSimulator::NodeState&)>;

  ExecutionMonitor(EngineRegistry* engines, ClusterSimulator* cluster)
      : engines_(engines), cluster_(cluster) {}

  /// Installs a custom health script (parametrizable per deployment).
  void set_health_script(HealthScript script) {
    health_script_ = std::move(script);
  }

  /// Runs the health script on every node, updates the cluster's health
  /// map, and returns the indices of UNHEALTHY nodes.
  std::vector<int> RunHealthChecks();

  /// Service-availability sweep: returns the engines that are OFF out of
  /// those the plan relies on.
  std::vector<std::string> UnavailableEngines(const ExecutionPlan& plan) const;

  /// True when every engine the plan needs is ON and every node is healthy.
  bool PlanIsRunnable(const ExecutionPlan& plan);

  /// Snapshot of per-node health (HEALTHY/UNHEALTHY), by node index.
  std::vector<NodeHealth> HealthSnapshot() const;

 private:
  EngineRegistry* engines_;
  ClusterSimulator* cluster_;
  HealthScript health_script_;
};

}  // namespace ires

#endif  // IRES_EXECUTOR_EXECUTION_MONITOR_H_
