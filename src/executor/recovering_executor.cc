#include "executor/recovering_executor.h"

#include <chrono>
#include <set>

#include "common/logging.h"

namespace ires {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

const char* ReplanStrategyName(ReplanStrategy strategy) {
  switch (strategy) {
    case ReplanStrategy::kIresReplan: return "ires_replan";
    case ReplanStrategy::kTrivialReplan: return "trivial_replan";
  }
  return "?";
}

Result<RecoveryOutcome> RecoveringExecutor::Run(const WorkflowGraph& graph,
                                                DpPlanner::Options options,
                                                ReplanStrategy strategy) {
  RecoveryOutcome outcome =
      RunFrom(graph, std::move(options), strategy, nullptr);
  if (!outcome.status.ok()) return outcome.status;
  return outcome;
}

RecoveryOutcome RecoveringExecutor::RunFrom(const WorkflowGraph& graph,
                                            DpPlanner::Options options,
                                            ReplanStrategy strategy,
                                            const ExecutionPlan* initial_plan,
                                            double initial_plan_ms) {
  RecoveryOutcome outcome;

  for (int attempt = 0;; ++attempt) {
    Result<ExecutionPlan> plan = [&]() -> Result<ExecutionPlan> {
      if (attempt == 0 && initial_plan != nullptr) {
        outcome.total_planning_ms += initial_plan_ms;
        return *initial_plan;
      }
      const auto plan_start = std::chrono::steady_clock::now();
      auto planned = planner_->Plan(graph, options);
      const double plan_ms = ElapsedMs(plan_start);
      outcome.total_planning_ms += plan_ms;
      if (attempt > 0) outcome.replanning_ms += plan_ms;
      return planned;
    }();
    if (!plan.ok()) {
      outcome.status = plan.status();
      engines_->AdvanceSimClock(outcome.total_execution_seconds);
      return outcome;
    }

    ExecutionReport report = enforcer_->Execute(plan.value());
    outcome.total_execution_seconds += report.makespan_seconds;
    outcome.step_retries += report.step_retries;

    if (report.status.ok()) {
      // Close any half-open probes among the engines that just delivered,
      // then let the simulated clock tick past this run's makespan so
      // suspended engines heal as work flows.
      std::set<std::string> used;
      for (const PlanStep& step : plan.value().steps) {
        used.insert(step.engine);
      }
      for (const std::string& engine : used) {
        (void)engines_->ReportSuccess(engine);
      }
      engines_->AdvanceSimClock(outcome.total_execution_seconds);
      outcome.status = Status::OK();
      outcome.final_report = std::move(report);
      outcome.final_plan = std::move(plan).value();
      return outcome;
    }

    // Record the failure and escalate by its domain (§2.3). The Enforcer
    // already retried transient/straggler faults in place; whatever reaches
    // this layer aborted the attempt.
    FailureEvent event;
    event.attempt = attempt;
    event.failed_step = report.failed_step;
    event.kind = report.failure_kind;
    event.message = report.status.message();
    if (report.failed_step >= 0 &&
        report.failed_step < static_cast<int>(plan.value().steps.size())) {
      event.engine = plan.value().steps[report.failed_step].engine;
    }
    if (!event.engine.empty() && IndictsEngine(event.kind)) {
      IRES_LOG(kInfo) << "engine " << event.engine << " failed ("
                      << FailureKindName(event.kind)
                      << "); tripping breaker and replanning";
      (void)engines_->ReportFailure(event.engine);
      std::string breaker_state;
      if (auto health = engines_->HealthOf(event.engine); health.ok()) {
        breaker_state = EngineHealthName(health.value().health);
      }
      journal_.Emit(EventKind::kBreakerTrip, event.failed_step, event.engine,
                    breaker_state, attempt, event.message);
    } else {
      // Node crashes leave the engine unindicted: the cluster health map
      // already carries the dead node, and the replan packs around it.
      IRES_LOG(kInfo) << "attempt " << attempt << " failed ("
                      << FailureKindName(event.kind)
                      << "); replanning without engine indictment";
    }
    outcome.failures.push_back(std::move(event));

    if (outcome.replans >= max_replans_) {
      outcome.status = report.status;
      outcome.final_report = std::move(report);
      outcome.final_plan = std::move(plan).value();
      engines_->AdvanceSimClock(outcome.total_execution_seconds);
      return outcome;
    }
    ++outcome.replans;
    const FailureEvent& recorded = outcome.failures.back();
    journal_.Emit(EventKind::kReplan, recorded.failed_step, recorded.engine,
                  FailureKindName(recorded.kind), outcome.replans,
                  ReplanStrategyName(strategy));

    switch (strategy) {
      case ReplanStrategy::kIresReplan:
        // Identify every successfully materialized intermediate and seed
        // the next planning round with it — completed work is never redone.
        for (const auto& [node, instance] : report.materialized) {
          options.materialized_intermediates[node] = instance;
        }
        break;
      case ReplanStrategy::kTrivialReplan:
        options.materialized_intermediates.clear();
        break;
    }
  }
}

}  // namespace ires
