#include "executor/recovering_executor.h"

#include <chrono>

#include "common/logging.h"

namespace ires {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Result<RecoveryOutcome> RecoveringExecutor::Run(const WorkflowGraph& graph,
                                                DpPlanner::Options options,
                                                ReplanStrategy strategy) {
  RecoveryOutcome outcome =
      RunFrom(graph, std::move(options), strategy, nullptr);
  if (!outcome.status.ok()) return outcome.status;
  return outcome;
}

RecoveryOutcome RecoveringExecutor::RunFrom(const WorkflowGraph& graph,
                                            DpPlanner::Options options,
                                            ReplanStrategy strategy,
                                            const ExecutionPlan* initial_plan,
                                            double initial_plan_ms) {
  RecoveryOutcome outcome;

  for (int attempt = 0;; ++attempt) {
    Result<ExecutionPlan> plan = [&]() -> Result<ExecutionPlan> {
      if (attempt == 0 && initial_plan != nullptr) {
        outcome.total_planning_ms += initial_plan_ms;
        return *initial_plan;
      }
      const auto plan_start = std::chrono::steady_clock::now();
      auto planned = planner_->Plan(graph, options);
      const double plan_ms = ElapsedMs(plan_start);
      outcome.total_planning_ms += plan_ms;
      if (attempt > 0) outcome.replanning_ms += plan_ms;
      return planned;
    }();
    if (!plan.ok()) {
      outcome.status = plan.status();
      return outcome;
    }

    ExecutionReport report = enforcer_->Execute(plan.value());
    outcome.total_execution_seconds += report.makespan_seconds;

    if (report.status.ok()) {
      outcome.status = Status::OK();
      outcome.final_report = std::move(report);
      outcome.final_plan = std::move(plan).value();
      return outcome;
    }

    // Failure: the engine that hosted the failed step is reported OFF so
    // the next plan excludes it (§2.3).
    if (report.failed_step >= 0) {
      const std::string& dead_engine =
          plan.value().steps[report.failed_step].engine;
      IRES_LOG(kInfo) << "engine " << dead_engine
                      << " failed; marking OFF and replanning";
      (void)engines_->SetAvailable(dead_engine, false);
    }
    ++outcome.replans;
    if (outcome.replans > max_replans_) {
      outcome.status = report.status;
      outcome.final_report = std::move(report);
      outcome.final_plan = std::move(plan).value();
      return outcome;
    }

    switch (strategy) {
      case ReplanStrategy::kIresReplan:
        // Identify every successfully materialized intermediate and seed
        // the next planning round with it — completed work is never redone.
        for (const auto& [node, instance] : report.materialized) {
          options.materialized_intermediates[node] = instance;
        }
        break;
      case ReplanStrategy::kTrivialReplan:
        options.materialized_intermediates.clear();
        break;
    }
  }
}

}  // namespace ires
