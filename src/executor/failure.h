#ifndef IRES_EXECUTOR_FAILURE_H_
#define IRES_EXECUTOR_FAILURE_H_

#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace ires {

/// Failure-domain taxonomy of the executor layer (deliverable §2.3). Every
/// step failure is classified into one of these domains, and each domain has
/// its own recovery ladder:
///
///   kTransient    - a flake local to one step attempt (lost container,
///                   spurious task error). Retried in place with backoff on
///                   the simulated clock; escalates to replanning only after
///                   the retry budget is exhausted.
///   kTimeout      - a straggler: the step ran past k× its planner estimate
///                   and was killed. Retried like a transient.
///   kEngineCrash  - the hosting engine's service died or misbehaved.
///                   Escalates immediately: the engine's circuit breaker
///                   trips (EngineRegistry) and the workflow replans around
///                   it.
///   kNodeCrash    - a cluster node became UNHEALTHY. The node stays
///                   unhealthy for the replan attempt, but the engine is not
///                   at fault and its breaker is left alone.
enum class FailureKind {
  kTransient,
  kTimeout,
  kEngineCrash,
  kNodeCrash,
};

const char* FailureKindName(FailureKind kind);

/// True when the failure domain is retried in place by the enforcer before
/// replanning is considered.
inline bool IsRetryable(FailureKind kind) {
  return kind == FailureKind::kTransient || kind == FailureKind::kTimeout;
}

/// True when the failure domain indicts the hosting engine — the recovering
/// executor trips that engine's circuit breaker so replanning avoids it.
inline bool IndictsEngine(FailureKind kind) {
  return kind != FailureKind::kNodeCrash;
}

/// Fallback classification for failures that carry no explicit kind (engine
/// estimate/run errors, availability checks). Conservative: everything that
/// is not clearly a node problem indicts the engine, matching the historic
/// mark-OFF-and-replan behaviour.
FailureKind ClassifyFailure(const Status& status);

/// Per-step retry budget applied by the Enforcer before a failure escalates
/// to replanning. Backoff is exponential with multiplicative jitter and is
/// charged to the *simulated* clock, so retries cost simulated makespan, not
/// wall time.
struct RetryPolicy {
  /// Total start attempts per step (1 = never retry, the legacy behaviour).
  int max_attempts = 3;
  double base_backoff_seconds = 2.0;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 60.0;
  /// Backoff is multiplied by a uniform draw in [1-j, 1+j].
  double jitter_fraction = 0.2;
  /// Step deadline: a step still running after this multiple of its planner
  /// estimate is killed and retried as a kTimeout. 0 disables deadlines.
  double straggler_multiplier = 0.0;
  /// Deadlines only apply once k× the estimate exceeds this floor, so short
  /// steps are never killed over estimate noise.
  double min_deadline_seconds = 1.0;

  /// Backoff before retry number `retry` (1-based: the wait after the
  /// first failed attempt is retry == 1). Draws jitter from `rng`.
  double BackoffSeconds(int retry, Rng* rng) const;

  /// Kill deadline for a step whose planner estimate is
  /// `estimated_seconds`, or 0 when deadlines are disabled for it.
  double DeadlineSeconds(double estimated_seconds) const;
};

}  // namespace ires

#endif  // IRES_EXECUTOR_FAILURE_H_
