#ifndef IRES_EXECUTOR_ENFORCER_H_
#define IRES_EXECUTOR_ENFORCER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster_simulator.h"
#include "common/rng.h"
#include "engines/engine_registry.h"
#include "planner/execution_plan.h"

namespace ires {

/// Outcome of one plan step.
struct StepResult {
  int step_id = -1;
  double start_seconds = 0.0;
  double finish_seconds = 0.0;
  double cost = 0.0;
  Status status;
};

/// Outcome of enforcing a plan.
struct ExecutionReport {
  Status status;                // overall: OK or the first failure
  double makespan_seconds = 0.0;
  double total_cost = 0.0;
  std::vector<StepResult> steps;
  /// Intermediate results that completed successfully: abstract dataset
  /// node -> where/what it is. These seed IResReplan after a failure.
  std::map<std::string, DatasetInstance> materialized;
  int failed_step = -1;
};

/// The executor-layer enforcer (deliverable §2.3): turns the planner's
/// execution plan into container allocations on the simulated cluster and
/// advances a discrete-event simulation of the run. Step durations are the
/// engines' noisy ground truth, so enforcement times differ slightly from
/// planning estimates, as on a real cluster.
class Enforcer {
 public:
  /// Inspects a step about to start; returning true injects a fault and
  /// fails the step (used by the fault-tolerance experiments to kill an
  /// engine mid-workflow).
  using FaultInjector = std::function<bool(const PlanStep&, double now)>;

  Enforcer(EngineRegistry* engines, ClusterSimulator* cluster,
           uint64_t seed = 777)
      : engines_(engines), cluster_(cluster), rng_(seed) {}

  void set_fault_injector(FaultInjector injector) {
    fault_injector_ = std::move(injector);
  }

  /// Schedules cluster node `node_index` to die at simulated time
  /// `at_seconds`: the health scripts mark it UNHEALTHY and every step with
  /// a container on it fails (the hardware-failure path of §2.3). Cleared
  /// after each Execute call.
  void ScheduleNodeFailure(int node_index, double at_seconds) {
    node_failures_.push_back({at_seconds, node_index});
  }

  /// Runs the plan to completion or first failure. On failure the report
  /// carries the completed steps' materialized outputs and the failed step.
  ExecutionReport Execute(const ExecutionPlan& plan);

 private:
  EngineRegistry* engines_;
  ClusterSimulator* cluster_;
  Rng rng_;
  FaultInjector fault_injector_;
  std::vector<std::pair<double, int>> node_failures_;  // (time, node)
};

}  // namespace ires

#endif  // IRES_EXECUTOR_ENFORCER_H_
