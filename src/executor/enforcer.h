#ifndef IRES_EXECUTOR_ENFORCER_H_
#define IRES_EXECUTOR_ENFORCER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster_simulator.h"
#include "common/rng.h"
#include "engines/engine_registry.h"
#include "executor/failure.h"
#include "planner/execution_plan.h"
#include "telemetry/event_journal.h"

namespace ires {

/// Outcome of one plan step.
struct StepResult {
  int step_id = -1;
  double start_seconds = 0.0;
  double finish_seconds = 0.0;
  double cost = 0.0;
  Status status;
  /// Start attempts consumed (0 = the step never started; >1 = it was
  /// retried in place after transient faults or straggler kills).
  int attempts = 0;
  /// Failure domain of the step's final failure; meaningless when ok.
  FailureKind failure_kind = FailureKind::kTransient;
};

/// Outcome of enforcing a plan.
struct ExecutionReport {
  Status status;                // overall: OK or the first failure
  double makespan_seconds = 0.0;
  double total_cost = 0.0;
  std::vector<StepResult> steps;
  /// Intermediate results that completed successfully: abstract dataset
  /// node -> where/what it is. These seed IResReplan after a failure.
  std::map<std::string, DatasetInstance> materialized;
  int failed_step = -1;
  /// Failure domain of the abort cause; meaningless when status is OK.
  FailureKind failure_kind = FailureKind::kTransient;
  /// In-place step retries performed across all steps of this run.
  int step_retries = 0;
};

/// The executor-layer enforcer (deliverable §2.3): turns the planner's
/// execution plan into container allocations on the simulated cluster and
/// advances a discrete-event simulation of the run. Step durations are the
/// engines' noisy ground truth, so enforcement times differ slightly from
/// planning estimates, as on a real cluster.
///
/// Failure handling is domain-aware (executor/failure.h): transient faults
/// and straggler kills are retried per step with backoff on the simulated
/// clock under the configured RetryPolicy; engine crashes and fatal node
/// deaths abort the run so the recovering executor can replan around them.
class Enforcer {
 public:
  /// Inspects a step about to start; returning true injects an
  /// engine-crash fault and fails the step (the legacy hook of the
  /// fault-tolerance experiments). Prefer FaultOracle for domain-typed
  /// injection.
  using FaultInjector = std::function<bool(const PlanStep&, double now)>;

  /// Domain-typed fault injection: consulted at every step start attempt
  /// (attempt is 1-based). `fail == false` lets the attempt proceed.
  struct FaultDecision {
    bool fail = false;
    FailureKind kind = FailureKind::kEngineCrash;
  };
  using FaultOracle =
      std::function<FaultDecision(const PlanStep&, double now, int attempt)>;

  /// Invoked once per output dataset as a step completes (after the output
  /// is recorded in the report's materialized map). The job service uses
  /// this to journal step checkpoints, and the control-plane chaos layer
  /// to kill a replica mid-run at a precise step boundary. Runs on the
  /// executing thread with no service locks held.
  using StepObserver = std::function<void(int step_id, const DatasetInstance&)>;

  Enforcer(EngineRegistry* engines, ClusterSimulator* cluster,
           uint64_t seed = 777)
      : engines_(engines), cluster_(cluster), rng_(seed) {}

  void set_fault_injector(FaultInjector injector) {
    fault_injector_ = std::move(injector);
  }
  void set_fault_oracle(FaultOracle oracle) {
    fault_oracle_ = std::move(oracle);
  }
  void set_step_observer(StepObserver observer) {
    step_observer_ = std::move(observer);
  }

  /// Flight-recorder handle: step starts, retries, straggler kills and
  /// chaos injections are journaled under the writer's job id.
  void set_journal(JournalWriter journal) { journal_ = std::move(journal); }

  /// Per-step retry budget and straggler deadline. The default policy never
  /// retries (max_attempts = 1 semantics are preserved by retries applying
  /// only to transient/timeout failures, which are never produced without a
  /// fault oracle or an armed straggler deadline).
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Schedules cluster node `node_index` to die at simulated time
  /// `at_seconds`: the health scripts mark it UNHEALTHY and every step with
  /// a container on it fails (the hardware-failure path of §2.3). The
  /// schedule persists across Execute calls — a replan attempt re-arms
  /// events that have not fired yet (nodes already UNHEALTHY do not
  /// re-fire), so a dead node stays dead for the retry while engines keep
  /// their own availability.
  void ScheduleNodeFailure(int node_index, double at_seconds) {
    node_schedule_.push_back({at_seconds, node_index, /*fail=*/true});
  }

  /// Schedules node `node_index` to return to HEALTHY at `at_seconds` — the
  /// recovery half of a chaos node-flap schedule.
  void ScheduleNodeRecovery(int node_index, double at_seconds) {
    node_schedule_.push_back({at_seconds, node_index, /*fail=*/false});
  }

  /// Drops all scheduled node events (tests and benches re-arming a fresh
  /// scenario on a reused enforcer).
  void ClearNodeSchedule() { node_schedule_.clear(); }

  /// Runs the plan to completion or first failure. On failure the report
  /// carries the completed steps' materialized outputs and the failed step.
  ExecutionReport Execute(const ExecutionPlan& plan);

 private:
  struct NodeEvent {
    double time = 0.0;
    int node = -1;
    bool fail = true;
  };

  EngineRegistry* engines_;
  ClusterSimulator* cluster_;
  Rng rng_;
  FaultInjector fault_injector_;
  FaultOracle fault_oracle_;
  StepObserver step_observer_;
  JournalWriter journal_;
  RetryPolicy retry_policy_;
  std::vector<NodeEvent> node_schedule_;
};

}  // namespace ires

#endif  // IRES_EXECUTOR_ENFORCER_H_
