#include "executor/execution_monitor.h"

namespace ires {

std::vector<int> ExecutionMonitor::RunHealthChecks() {
  std::vector<int> unhealthy;
  for (int i = 0; i < cluster_->node_count(); ++i) {
    const ClusterSimulator::NodeState& state = cluster_->node(i);
    NodeHealth health;
    if (health_script_) {
      health = health_script_(state);
    } else {
      // Default script: a node is unhealthy when its memory is
      // oversubscribed (more promised to containers than it has).
      health = state.memory_used_gb > state.memory_total_gb
                   ? NodeHealth::kUnhealthy
                   : state.health;
    }
    cluster_->SetNodeHealth(i, health);
    if (health == NodeHealth::kUnhealthy) unhealthy.push_back(i);
  }
  return unhealthy;
}

std::vector<std::string> ExecutionMonitor::UnavailableEngines(
    const ExecutionPlan& plan) const {
  std::vector<std::string> off;
  for (const std::string& engine : plan.EnginesUsed()) {
    if (!engines_->IsAvailable(engine)) off.push_back(engine);
  }
  return off;
}

bool ExecutionMonitor::PlanIsRunnable(const ExecutionPlan& plan) {
  if (!UnavailableEngines(plan).empty()) return false;
  return RunHealthChecks().empty();
}

std::vector<NodeHealth> ExecutionMonitor::HealthSnapshot() const {
  std::vector<NodeHealth> snapshot;
  snapshot.reserve(cluster_->node_count());
  for (int i = 0; i < cluster_->node_count(); ++i) {
    snapshot.push_back(cluster_->node(i).health);
  }
  return snapshot;
}

}  // namespace ires
