#include "executor/enforcer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/logging.h"

namespace ires {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One scheduled simulation event. kFinish completes a running step, kKill
/// aborts a straggler attempt at its deadline, kRetry re-readies a step
/// after its backoff expires.
struct SimEvent {
  enum class Kind { kFinish, kKill, kRetry };

  double time = 0.0;
  int step_id = -1;
  int allocation_id = -1;  // kFinish / kKill only
  Kind kind = Kind::kFinish;

  bool operator>(const SimEvent& other) const {
    if (time != other.time) return time > other.time;
    if (step_id != other.step_id) return step_id > other.step_id;
    return static_cast<int>(kind) > static_cast<int>(other.kind);
  }
};

}  // namespace

ExecutionReport Enforcer::Execute(const ExecutionPlan& plan) {
  ExecutionReport report;
  report.steps.resize(plan.steps.size());

  std::vector<int> pending_deps(plan.steps.size(), 0);
  std::vector<std::vector<int>> dependents(plan.steps.size());
  for (const PlanStep& step : plan.steps) {
    pending_deps[step.id] = static_cast<int>(step.deps.size());
    for (int dep : step.deps) dependents[dep].push_back(step.id);
  }

  // Ready queue ordered by step id for determinism.
  std::vector<int> ready;
  for (const PlanStep& step : plan.steps) {
    if (pending_deps[step.id] == 0) ready.push_back(step.id);
  }
  std::sort(ready.begin(), ready.end());

  std::priority_queue<SimEvent, std::vector<SimEvent>, std::greater<SimEvent>>
      events;
  std::map<int, int> step_of_allocation;

  // Node events persist across Execute calls (replan attempts must see the
  // same schedule); events whose node is already in the scheduled state are
  // skipped, so a fired failure does not re-fire on the retry attempt.
  std::vector<NodeEvent> node_events = node_schedule_;
  std::stable_sort(node_events.begin(), node_events.end(),
                   [](const NodeEvent& a, const NodeEvent& b) {
                     return a.time < b.time;
                   });
  size_t next_node_event = 0;
  auto pending_node_event = [&]() -> const NodeEvent* {
    while (next_node_event < node_events.size()) {
      const NodeEvent& event = node_events[next_node_event];
      const NodeHealth current = cluster_->node(event.node).health;
      const NodeHealth target =
          event.fail ? NodeHealth::kUnhealthy : NodeHealth::kHealthy;
      if (current == target) {
        ++next_node_event;  // already in the scheduled state; no-op event
        continue;
      }
      return &event;
    }
    return nullptr;
  };

  double now = 0.0;
  int completed = 0;

  // Marks one completed step's outputs as materialized.
  auto complete_step = [&](const SimEvent& event) {
    (void)cluster_->Release(event.allocation_id);
    step_of_allocation.erase(event.allocation_id);
    StepResult& result = report.steps[event.step_id];
    result.finish_seconds = event.time;
    result.status = Status::OK();
    report.total_cost += result.cost;
    report.makespan_seconds = std::max(report.makespan_seconds, event.time);
    for (const DatasetInstance& out : plan.steps[event.step_id].outputs) {
      report.materialized[out.dataset_node] = out;
      if (step_observer_) step_observer_(event.step_id, out);
    }
  };

  // Aborts the workflow: `failed_steps` fail at `now` with `kind`;
  // everything else still running drains so its outputs count as
  // materialized for replanning. Straggler attempts pending a kill and
  // steps waiting out a retry backoff never complete — their attempt died
  // with the run.
  auto abort_workflow = [&](const Status& cause, FailureKind kind,
                            const std::vector<int>& failed_steps) {
    report.status = cause;
    report.failure_kind = kind;
    report.failed_step = failed_steps.empty() ? -1 : failed_steps.front();
    for (int step_id : failed_steps) {
      report.steps[step_id].status = cause;
      report.steps[step_id].failure_kind = kind;
      report.steps[step_id].finish_seconds = now;
    }
    report.makespan_seconds = std::max(report.makespan_seconds, now);
    while (!events.empty()) {
      const SimEvent event = events.top();
      events.pop();
      if (event.kind != SimEvent::Kind::kFinish ||
          std::find(failed_steps.begin(), failed_steps.end(),
                    event.step_id) != failed_steps.end()) {
        if (event.allocation_id >= 0) {
          (void)cluster_->Release(event.allocation_id);
        }
        continue;  // failed, killed or backing-off: no outputs
      }
      complete_step(event);
    }
  };

  // Outcome of one start attempt.
  enum class StartResult { kStarted, kNoCapacity, kFailed };
  Status start_failure;                 // valid when kFailed
  FailureKind start_failure_kind = FailureKind::kEngineCrash;

  // Schedules a retry of `step_id` after the policy backoff, or reports
  // that the retry budget is exhausted (false).
  auto schedule_retry = [&](int step_id) -> bool {
    StepResult& result = report.steps[step_id];
    if (result.attempts >= retry_policy_.max_attempts) return false;
    const double backoff =
        retry_policy_.BackoffSeconds(result.attempts, &rng_);
    ++report.step_retries;
    journal_.Emit(EventKind::kStepRetry, step_id,
                  plan.steps[step_id].engine, "", backoff,
                  "backoff after attempt " +
                      std::to_string(result.attempts));
    events.push(SimEvent{now + backoff, step_id, -1, SimEvent::Kind::kRetry});
    return true;
  };

  auto start_step = [&](int step_id) -> StartResult {
    const PlanStep& step = plan.steps[step_id];
    StepResult& result = report.steps[step_id];
    result.step_id = step_id;
    result.start_seconds = now;
    ++result.attempts;
    journal_.Emit(EventKind::kStepStart, step_id, step.engine, "",
                  result.attempts, step.name);

    auto fail = [&](Status status, FailureKind kind) {
      start_failure = std::move(status);
      start_failure_kind = kind;
      result.failure_kind = kind;
      return StartResult::kFailed;
    };

    // Execution monitoring: service availability + injected faults.
    SimulatedEngine* engine = engines_->Find(step.engine);
    if (engine == nullptr) {
      return fail(Status::NotFound("engine not deployed: " + step.engine),
                  FailureKind::kEngineCrash);
    }
    if (!engine->available()) {
      return fail(Status::Unavailable("engine " + step.engine + " is OFF"),
                  FailureKind::kEngineCrash);
    }

    bool injected_hang = false;
    FaultDecision decision;
    if (fault_oracle_) {
      decision = fault_oracle_(step, now, result.attempts);
    } else if (fault_injector_ && fault_injector_(step, now)) {
      decision = {true, FailureKind::kEngineCrash};
    }
    if (decision.fail) {
      journal_.Emit(EventKind::kChaosInject, step_id, step.engine,
                    FailureKindName(decision.kind), result.attempts);
      switch (decision.kind) {
        case FailureKind::kTransient:
          if (schedule_retry(step_id)) return StartResult::kStarted;
          return fail(
              Status::ExecutionError(
                  "transient fault running " + step.name + " on " +
                  step.engine + "; retry budget exhausted after " +
                  std::to_string(result.attempts) + " attempts"),
              FailureKind::kTransient);
        case FailureKind::kTimeout:
          // The attempt hangs: it runs until the straggler deadline kills
          // it. Without an armed deadline it degrades to a transient.
          if (retry_policy_.DeadlineSeconds(step.estimated_seconds) > 0.0) {
            injected_hang = true;
            break;
          }
          if (schedule_retry(step_id)) return StartResult::kStarted;
          return fail(Status::ExecutionError(
                          "step " + step.name + " on " + step.engine +
                          " hung; retry budget exhausted after " +
                          std::to_string(result.attempts) + " attempts"),
                      FailureKind::kTimeout);
        default:
          return fail(Status::ExecutionError(
                          "fault injected while running " + step.name +
                          " on " + step.engine),
                      decision.kind);
      }
    }

    double duration;
    double cost;
    if (step.kind == PlanStep::Kind::kMove) {
      // Moves ship bytes between stores; noise mirrors network variance.
      duration = step.estimated_seconds * std::exp(rng_.Normal(0.0, 0.05));
      cost = step.resources.CostForDuration(duration);
    } else {
      OperatorRunRequest request;
      request.algorithm = step.algorithm;
      request.input_bytes = step.input_bytes;
      request.input_records = step.input_records;
      request.resources = step.resources;
      request.params = step.params;
      auto run = engine->Run(request, &rng_);
      if (!run.ok()) {
        return fail(run.status(), ClassifyFailure(run.status()));
      }
      duration = run.value().exec_seconds;
      cost = run.value().cost;
    }
    if (injected_hang) duration = kInf;

    auto allocation = cluster_->Allocate(step.resources);
    if (!allocation.ok()) {
      if (allocation.status().code() == StatusCode::kResourceExhausted) {
        --result.attempts;  // deferral is not a consumed attempt
        start_failure = allocation.status();
        return StartResult::kNoCapacity;
      }
      return fail(allocation.status(), FailureKind::kNodeCrash);
    }

    result.cost = cost;
    step_of_allocation[allocation.value().id] = step_id;

    // Step deadline: attempts running past k× the planner estimate are
    // killed (and retried) as stragglers.
    const double deadline =
        retry_policy_.DeadlineSeconds(step.estimated_seconds);
    if (deadline > 0.0 && duration > deadline) {
      events.push(SimEvent{now + deadline, step_id, allocation.value().id,
                           SimEvent::Kind::kKill});
    } else {
      events.push(SimEvent{now + duration, step_id, allocation.value().id,
                           SimEvent::Kind::kFinish});
    }
    return StartResult::kStarted;
  };

  while (true) {
    // Launch every ready step we can place right now.
    std::vector<int> deferred;
    for (int step_id : ready) {
      const StartResult started = start_step(step_id);
      if (started == StartResult::kStarted) continue;
      if (started == StartResult::kNoCapacity &&
          (!events.empty() || pending_node_event() != nullptr)) {
        // Cluster is momentarily full; retry after the next event.
        deferred.push_back(step_id);
        continue;
      }
      // Hard failure: engine down / fault injected / unplaceable. A
      // capacity failure that nothing pending can relieve is a cluster
      // problem, not an engine one.
      if (started == StartResult::kNoCapacity) {
        start_failure_kind = FailureKind::kNodeCrash;
      }
      abort_workflow(start_failure, start_failure_kind, {step_id});
      return report;
    }
    ready = std::move(deferred);

    const NodeEvent* node_event = pending_node_event();
    if (events.empty() && node_event == nullptr) break;

    // A scheduled node event may precede the next simulation event.
    const double next_sim_time = events.empty() ? kInf : events.top().time;
    if (node_event != nullptr && node_event->time <= next_sim_time) {
      now = std::max(now, node_event->time);
      const int node = node_event->node;
      const bool fail = node_event->fail;
      ++next_node_event;
      if (!fail) {
        // Node recovered: capacity is back; deferred steps retry at the
        // top of the loop.
        cluster_->SetNodeHealth(node, NodeHealth::kHealthy);
        continue;
      }
      cluster_->SetNodeHealth(node, NodeHealth::kUnhealthy);
      std::vector<int> dead_steps;
      for (int allocation_id : cluster_->FailedAllocations()) {
        auto it = step_of_allocation.find(allocation_id);
        if (it != step_of_allocation.end()) dead_steps.push_back(it->second);
      }
      std::sort(dead_steps.begin(), dead_steps.end());
      if (!dead_steps.empty()) {
        abort_workflow(
            Status::ExecutionError("cluster node " + std::to_string(node) +
                                   " became UNHEALTHY"),
            FailureKind::kNodeCrash, dead_steps);
        return report;
      }
      continue;  // node died idle; keep executing
    }

    const SimEvent event = events.top();
    events.pop();
    now = event.time;
    switch (event.kind) {
      case SimEvent::Kind::kFinish: {
        complete_step(event);
        ++completed;
        for (int dependent : dependents[event.step_id]) {
          if (--pending_deps[dependent] == 0) {
            ready.insert(
                std::upper_bound(ready.begin(), ready.end(), dependent),
                dependent);
          }
        }
        break;
      }
      case SimEvent::Kind::kKill: {
        // Straggler attempt hit its deadline: release its containers,
        // charge the burned time, then retry or escalate.
        (void)cluster_->Release(event.allocation_id);
        step_of_allocation.erase(event.allocation_id);
        const PlanStep& step = plan.steps[event.step_id];
        StepResult& result = report.steps[event.step_id];
        report.total_cost += step.resources.CostForDuration(
            now - result.start_seconds);
        journal_.Emit(EventKind::kStragglerKill, event.step_id, step.engine,
                      "", result.attempts,
                      "deadline hit after " +
                          std::to_string(now - result.start_seconds) + "s");
        if (!schedule_retry(event.step_id)) {
          abort_workflow(
              Status::ExecutionError(
                  "step " + step.name + " on " + step.engine +
                  " exceeded its deadline (" +
                  std::to_string(retry_policy_.straggler_multiplier) +
                  "x estimate); retry budget exhausted after " +
                  std::to_string(result.attempts) + " attempts"),
              FailureKind::kTimeout, {event.step_id});
          return report;
        }
        break;
      }
      case SimEvent::Kind::kRetry: {
        ready.insert(
            std::upper_bound(ready.begin(), ready.end(), event.step_id),
            event.step_id);
        break;
      }
    }
  }

  if (completed != static_cast<int>(plan.steps.size())) {
    report.status = Status::Internal("scheduler deadlock: " +
                                     std::to_string(completed) + "/" +
                                     std::to_string(plan.steps.size()) +
                                     " steps completed");
  } else {
    report.status = Status::OK();
  }
  report.makespan_seconds = std::max(report.makespan_seconds, now);
  return report;
}

}  // namespace ires
