#include "executor/enforcer.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"

namespace ires {

namespace {

struct CompletionEvent {
  double time = 0.0;
  int step_id = -1;
  int allocation_id = -1;
  bool operator>(const CompletionEvent& other) const {
    if (time != other.time) return time > other.time;
    return step_id > other.step_id;
  }
};

}  // namespace

ExecutionReport Enforcer::Execute(const ExecutionPlan& plan) {
  ExecutionReport report;
  report.steps.resize(plan.steps.size());

  std::vector<int> pending_deps(plan.steps.size(), 0);
  std::vector<std::vector<int>> dependents(plan.steps.size());
  for (const PlanStep& step : plan.steps) {
    pending_deps[step.id] = static_cast<int>(step.deps.size());
    for (int dep : step.deps) dependents[dep].push_back(step.id);
  }

  // Ready queue ordered by step id for determinism.
  std::vector<int> ready;
  for (const PlanStep& step : plan.steps) {
    if (pending_deps[step.id] == 0) ready.push_back(step.id);
  }
  std::sort(ready.begin(), ready.end());

  std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                      std::greater<CompletionEvent>>
      running;
  std::map<int, int> step_of_allocation;
  std::vector<std::pair<double, int>> failures = std::move(node_failures_);
  node_failures_.clear();
  std::sort(failures.begin(), failures.end());
  size_t next_failure = 0;
  double now = 0.0;
  int completed = 0;

  // Marks one completed step's outputs as materialized.
  auto complete_step = [&](const CompletionEvent& event) {
    (void)cluster_->Release(event.allocation_id);
    step_of_allocation.erase(event.allocation_id);
    StepResult& result = report.steps[event.step_id];
    result.finish_seconds = event.time;
    result.status = Status::OK();
    report.total_cost += result.cost;
    report.makespan_seconds = std::max(report.makespan_seconds, event.time);
    for (const DatasetInstance& out : plan.steps[event.step_id].outputs) {
      report.materialized[out.dataset_node] = out;
    }
  };

  // Aborts the workflow: `failed_steps` fail at `now`; everything else
  // still running drains so its outputs count as materialized for
  // replanning.
  auto abort_workflow = [&](const Status& cause,
                            const std::vector<int>& failed_steps) {
    report.status = cause;
    report.failed_step = failed_steps.empty() ? -1 : failed_steps.front();
    for (int step_id : failed_steps) {
      report.steps[step_id].status = cause;
      report.steps[step_id].finish_seconds = now;
    }
    report.makespan_seconds = std::max(report.makespan_seconds, now);
    while (!running.empty()) {
      const CompletionEvent event = running.top();
      running.pop();
      if (std::find(failed_steps.begin(), failed_steps.end(),
                    event.step_id) != failed_steps.end()) {
        (void)cluster_->Release(event.allocation_id);
        continue;  // this one died; no outputs
      }
      complete_step(event);
    }
  };

  auto start_step = [&](int step_id) -> Status {
    const PlanStep& step = plan.steps[step_id];
    StepResult& result = report.steps[step_id];
    result.step_id = step_id;
    result.start_seconds = now;

    // Execution monitoring: service availability + injected faults.
    SimulatedEngine* engine = engines_->Find(step.engine);
    if (engine == nullptr) {
      return Status::NotFound("engine not deployed: " + step.engine);
    }
    if (!engine->available()) {
      return Status::Unavailable("engine " + step.engine + " is OFF");
    }
    if (fault_injector_ && fault_injector_(step, now)) {
      return Status::ExecutionError("fault injected while running " +
                                    step.name + " on " + step.engine);
    }

    double duration;
    double cost;
    if (step.kind == PlanStep::Kind::kMove) {
      // Moves ship bytes between stores; noise mirrors network variance.
      duration =
          step.estimated_seconds * std::exp(rng_.Normal(0.0, 0.05));
      cost = step.resources.CostForDuration(duration);
    } else {
      OperatorRunRequest request;
      request.algorithm = step.algorithm;
      request.input_bytes = step.input_bytes;
      request.input_records = step.input_records;
      request.resources = step.resources;
      request.params = step.params;
      auto run = engine->Run(request, &rng_);
      if (!run.ok()) return run.status();
      duration = run.value().exec_seconds;
      cost = run.value().cost;
    }

    auto allocation = cluster_->Allocate(step.resources);
    if (!allocation.ok()) return allocation.status();

    result.cost = cost;
    step_of_allocation[allocation.value().id] = step_id;
    running.push(CompletionEvent{now + duration, step_id,
                                 allocation.value().id});
    return Status::OK();
  };

  while (true) {
    // Launch every ready step we can place right now.
    std::vector<int> deferred;
    for (int step_id : ready) {
      Status started = start_step(step_id);
      if (started.ok()) continue;
      if (started.code() == StatusCode::kResourceExhausted &&
          !running.empty()) {
        // Cluster is momentarily full; retry after the next completion.
        deferred.push_back(step_id);
        continue;
      }
      // Hard failure: engine down / fault injected / unplaceable.
      abort_workflow(started, {step_id});
      return report;
    }
    ready = std::move(deferred);

    if (running.empty()) break;

    // A scheduled node failure may precede the next completion.
    const CompletionEvent next_completion = running.top();
    if (next_failure < failures.size() &&
        failures[next_failure].first <= next_completion.time) {
      now = failures[next_failure].first;
      const int node = failures[next_failure].second;
      ++next_failure;
      cluster_->SetNodeHealth(node, NodeHealth::kUnhealthy);
      std::vector<int> dead_steps;
      for (int allocation_id : cluster_->FailedAllocations()) {
        auto it = step_of_allocation.find(allocation_id);
        if (it != step_of_allocation.end()) dead_steps.push_back(it->second);
      }
      std::sort(dead_steps.begin(), dead_steps.end());
      if (!dead_steps.empty()) {
        abort_workflow(
            Status::ExecutionError("cluster node " + std::to_string(node) +
                                   " became UNHEALTHY"),
            dead_steps);
        return report;
      }
      continue;  // node died idle; keep executing
    }

    running.pop();
    now = next_completion.time;
    complete_step(next_completion);
    ++completed;
    for (int dependent : dependents[next_completion.step_id]) {
      if (--pending_deps[dependent] == 0) {
        ready.insert(std::upper_bound(ready.begin(), ready.end(), dependent),
                     dependent);
      }
    }
  }

  if (completed != static_cast<int>(plan.steps.size())) {
    report.status = Status::Internal("scheduler deadlock: " +
                                     std::to_string(completed) + "/" +
                                     std::to_string(plan.steps.size()) +
                                     " steps completed");
  } else {
    report.status = Status::OK();
  }
  report.makespan_seconds = std::max(report.makespan_seconds, now);
  return report;
}

}  // namespace ires
