#ifndef IRES_EXECUTOR_TRACE_H_
#define IRES_EXECUTOR_TRACE_H_

#include <string>

#include "executor/enforcer.h"
#include "planner/execution_plan.h"
#include "telemetry/trace_context.h"

namespace ires {

/// Serializes an execution report as a Gantt-style JSON array — one object
/// per step with its name, engine, kind, start/finish (simulated seconds),
/// cost and status. What the platform's monitoring UI renders.
std::string ExecutionTraceJson(const ExecutionPlan& plan,
                               const ExecutionReport& report);

/// The same timeline as CSV (`step,name,engine,kind,start,finish,cost,ok`)
/// for spreadsheet-side analysis.
std::string ExecutionTraceCsv(const ExecutionPlan& plan,
                              const ExecutionReport& report);

/// The same per-step Gantt, recorded as spans on `trace`'s simulated-time
/// timeline: one span per executed step (category "step", or "move" for
/// data movement) carrying engine/cost/status args. This is how the
/// serving layer folds the execution report into a job's Chrome trace.
void AddExecutionSpans(const ExecutionPlan& plan,
                       const ExecutionReport& report, TraceContext* trace);

}  // namespace ires

#endif  // IRES_EXECUTOR_TRACE_H_
