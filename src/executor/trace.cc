#include "executor/trace.h"

#include <cstdio>

namespace ires {

namespace {

const char* KindName(PlanStep::Kind kind) {
  return kind == PlanStep::Kind::kMove ? "move" : "operator";
}

}  // namespace

std::string ExecutionTraceJson(const ExecutionPlan& plan,
                               const ExecutionReport& report) {
  std::string out = "[";
  bool first = true;
  for (const PlanStep& step : plan.steps) {
    const StepResult& result = report.steps[step.id];
    if (result.step_id < 0) continue;  // never started
    if (!first) out += ",";
    first = false;
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "{\"step\":%d,\"name\":\"%s\",\"engine\":\"%s\","
                  "\"kind\":\"%s\",\"start\":%.3f,\"finish\":%.3f,"
                  "\"cost\":%.1f,\"ok\":%s}",
                  step.id, step.name.c_str(), step.engine.c_str(),
                  KindName(step.kind), result.start_seconds,
                  result.finish_seconds, result.cost,
                  result.status.ok() ? "true" : "false");
    out += buf;
  }
  out += "]";
  return out;
}

void AddExecutionSpans(const ExecutionPlan& plan,
                       const ExecutionReport& report, TraceContext* trace) {
  if (trace == nullptr) return;
  for (const PlanStep& step : plan.steps) {
    const StepResult& result = report.steps[step.id];
    if (result.step_id < 0) continue;  // never started
    char cost[32];
    std::snprintf(cost, sizeof(cost), "%.1f", result.cost);
    trace->AddSpan(
        step.name,
        step.kind == PlanStep::Kind::kMove ? "move" : "step",
        TraceContext::kSimTimeline, result.start_seconds * 1e6,
        (result.finish_seconds - result.start_seconds) * 1e6,
        {{"engine", step.engine},
         {"cost", cost},
         {"status", result.status.ok() ? "ok" : result.status.ToString()}});
  }
}

std::string ExecutionTraceCsv(const ExecutionPlan& plan,
                              const ExecutionReport& report) {
  std::string out = "step,name,engine,kind,start,finish,cost,ok\n";
  for (const PlanStep& step : plan.steps) {
    const StepResult& result = report.steps[step.id];
    if (result.step_id < 0) continue;
    char buf[320];
    std::snprintf(buf, sizeof(buf), "%d,%s,%s,%s,%.3f,%.3f,%.1f,%d\n",
                  step.id, step.name.c_str(), step.engine.c_str(),
                  KindName(step.kind), result.start_seconds,
                  result.finish_seconds, result.cost,
                  result.status.ok() ? 1 : 0);
    out += buf;
  }
  return out;
}

}  // namespace ires
