#ifndef IRES_PROFILING_ADAPTIVE_PROFILER_H_
#define IRES_PROFILING_ADAPTIVE_PROFILER_H_

#include <memory>
#include <vector>

#include "modeling/model.h"
#include "profiling/profiler.h"

namespace ires {

/// PANIC-style adaptive profiling (Giannakopoulos et al., IC2E'15 — the
/// mechanism deliverable §2.2.1 builds its profiler on): instead of sweeping
/// a uniform grid over the (data, resources, parameters) configuration
/// space, each next profiling run is placed where the current model
/// ensemble disagrees the most, concentrating the profiling budget on the
/// least-understood regions of the performance surface (memory cliffs,
/// parallelism knees).
class AdaptiveProfiler {
 public:
  struct Options {
    /// Random runs before uncertainty-driven selection kicks in.
    int initial_samples = 8;
    /// Total profiling runs (including the initial ones).
    int total_budget = 40;
    /// Size of the bootstrap ensemble used to score uncertainty.
    int ensemble_size = 5;
    /// Size of the random candidate pool scored per round.
    int candidate_pool = 200;
    uint64_t seed = 7777;
  };

  /// The configuration space to explore.
  struct Domain {
    double min_input_bytes = 1e8;
    double max_input_bytes = 8e9;
    int max_containers = 8;
    int max_cores = 4;
    double min_memory_gb = 1.0;
    double max_memory_gb = 6.0;
  };

  explicit AdaptiveProfiler(SimulatedEngine* engine)
      : AdaptiveProfiler(engine, Options()) {}
  AdaptiveProfiler(SimulatedEngine* engine, Options options)
      : engine_(engine), options_(options) {}

  /// Profiles `algorithm` over `domain`, returning the collected records
  /// (at most total_budget; infeasible configurations are observed as
  /// failures and skipped but still consume budget, as on a real cluster).
  std::vector<ProfileRecord> Profile(const std::string& algorithm,
                                     const Domain& domain);

  /// Convenience: the uniform-random baseline with the same budget (the
  /// ablation compares the two).
  std::vector<ProfileRecord> ProfileUniform(const std::string& algorithm,
                                            const Domain& domain);

 private:
  OperatorRunRequest SampleConfig(const std::string& algorithm,
                                  const Domain& domain, Rng* rng) const;

  SimulatedEngine* engine_;
  Options options_;
};

}  // namespace ires

#endif  // IRES_PROFILING_ADAPTIVE_PROFILER_H_
