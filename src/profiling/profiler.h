#ifndef IRES_PROFILING_PROFILER_H_
#define IRES_PROFILING_PROFILER_H_

#include <array>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engines/engine.h"
#include "modeling/refinement.h"

namespace ires {

/// One profiling observation: the named metrics the platform collects per
/// run (execution time, input/output sizes and counts, operator parameters,
/// resource configuration, plus a periodic system-metric timeline pulled
/// from monitoring — CPU, RAM, network, IOPS). Together with the timestamp
/// this mirrors the 45-metric schema of deliverable §2.2.1.
struct ProfileRecord {
  /// Canonical model features, in FeatureVector() order.
  Vector features;
  /// Every named scalar metric of the run.
  std::map<std::string, double> metrics;
  double exec_seconds = 0.0;
  double cost = 0.0;
  /// Synthetic monitoring timeline: one (cpu%, ram%, net MB/s, IOPS) sample
  /// per simulated 5-second tick.
  std::vector<std::array<double, 4>> timeline;
};

/// Offline profiler (deliverable §2.2.1): executes an operator on an engine
/// across a grid of data-, operator- and resource-specific parameters and
/// records performance/cost metrics used to train the estimation models.
class Profiler {
 public:
  /// Parameter grid of a profiling campaign.
  struct Sweep {
    std::vector<double> input_bytes;
    std::vector<double> records_per_byte;  // optional; default {0.0}
    std::vector<Resources> resources;
    std::map<std::string, std::vector<double>> params;
  };

  Profiler(const SimulatedEngine* engine, uint64_t seed = 4242)
      : engine_(engine), rng_(seed) {}

  /// The canonical feature layout shared by profiler and planner-side model
  /// consumers: [input_gb, containers, cores/container, GB/container,
  /// total_cores, input_gb/total_cores, param values in sorted-name order].
  static Vector FeatureVector(const OperatorRunRequest& request);

  /// Runs the full cross-product of the sweep. Infeasible combinations
  /// (engine OOM) are skipped.
  std::vector<ProfileRecord> RunSweep(const std::string& algorithm,
                                      const Sweep& sweep);

  /// Executes one profiling run; returns NotFound/ResourceExhausted errors
  /// from the engine unchanged.
  Result<ProfileRecord> RunOnce(const OperatorRunRequest& request);

  /// Feeds `records` into `estimator` (bulk offline training).
  static void Train(const std::vector<ProfileRecord>& records,
                    OnlineEstimator* estimator);

 private:
  const SimulatedEngine* engine_;
  Rng rng_;
};

}  // namespace ires

#endif  // IRES_PROFILING_PROFILER_H_
