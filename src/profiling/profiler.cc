#include "profiling/profiler.h"

#include <algorithm>
#include <cmath>

namespace ires {

Vector Profiler::FeatureVector(const OperatorRunRequest& request) {
  Vector features;
  const double gb = request.input_bytes / 1e9;
  const double total_cores =
      std::max(1, request.resources.total_cores());
  features.push_back(gb);
  features.push_back(static_cast<double>(request.resources.containers));
  features.push_back(static_cast<double>(request.resources.cores));
  features.push_back(request.resources.memory_gb);
  // Derived monitoring features: total parallelism and per-core data volume
  // (these linearize the Amdahl-shaped runtime surface for the regressors).
  features.push_back(total_cores);
  features.push_back(gb / total_cores);
  for (const auto& [name, value] : request.params) {  // sorted by name
    features.push_back(value);
  }
  return features;
}

Result<ProfileRecord> Profiler::RunOnce(const OperatorRunRequest& request) {
  IRES_ASSIGN_OR_RETURN(OperatorRunEstimate run, engine_->Run(request, &rng_));

  ProfileRecord record;
  record.features = FeatureVector(request);
  record.exec_seconds = run.exec_seconds;
  record.cost = run.cost;

  record.metrics["execTime"] = run.exec_seconds;
  record.metrics["cost"] = run.cost;
  record.metrics["inputBytes"] = request.input_bytes;
  record.metrics["inputCount"] = request.input_records;
  record.metrics["outputBytes"] = run.output_bytes;
  record.metrics["outputCount"] = run.output_records;
  record.metrics["containers"] = request.resources.containers;
  record.metrics["coresPerContainer"] = request.resources.cores;
  record.metrics["memoryGbPerContainer"] = request.resources.memory_gb;
  record.metrics["totalCores"] = request.resources.total_cores();
  for (const auto& [name, value] : request.params) {
    record.metrics["param." + name] = value;
  }

  // Synthetic monitoring timeline: utilization ramps up after startup, holds
  // with jitter, then drains — the shape ganglia would report for a batch
  // job. One sample per 5 simulated seconds, at least 3 samples.
  const int samples =
      std::max(3, static_cast<int>(std::ceil(run.exec_seconds / 5.0)));
  for (int s = 0; s < samples; ++s) {
    const double phase = (s + 0.5) / samples;
    const double envelope =
        phase < 0.15 ? phase / 0.15 : (phase > 0.9 ? (1.0 - phase) / 0.1 : 1.0);
    const double jitter = 1.0 + 0.1 * rng_.Normal();
    std::array<double, 4> sample;
    sample[0] = std::clamp(85.0 * envelope * jitter, 0.0, 100.0);  // CPU %
    sample[1] = std::clamp(20.0 + 60.0 * phase, 0.0, 100.0);       // RAM %
    sample[2] = std::max(0.0, 40.0 * envelope * jitter);   // net MB/s
    sample[3] = std::max(0.0, 800.0 * envelope * jitter);  // IOPS
    record.timeline.push_back(sample);
  }
  record.metrics["timelineSamples"] = samples;
  return record;
}

std::vector<ProfileRecord> Profiler::RunSweep(const std::string& algorithm,
                                              const Sweep& sweep) {
  std::vector<ProfileRecord> records;
  std::vector<double> records_per_byte = sweep.records_per_byte;
  if (records_per_byte.empty()) records_per_byte.push_back(0.0);

  // Expand the parameter grid (cross product over sorted parameter names).
  std::vector<std::map<std::string, double>> param_grid = {{}};
  for (const auto& [name, values] : sweep.params) {
    std::vector<std::map<std::string, double>> next;
    for (const auto& base : param_grid) {
      for (double v : values) {
        auto combo = base;
        combo[name] = v;
        next.push_back(std::move(combo));
      }
    }
    param_grid = std::move(next);
  }

  for (double bytes : sweep.input_bytes) {
    for (double rpb : records_per_byte) {
      for (const Resources& res : sweep.resources) {
        for (const auto& params : param_grid) {
          OperatorRunRequest request;
          request.algorithm = algorithm;
          request.input_bytes = bytes;
          request.input_records = bytes * rpb;
          request.resources = res;
          request.params = params;
          auto record = RunOnce(request);
          if (record.ok()) records.push_back(std::move(record).value());
        }
      }
    }
  }
  return records;
}

void Profiler::Train(const std::vector<ProfileRecord>& records,
                     OnlineEstimator* estimator) {
  for (const ProfileRecord& record : records) {
    estimator->Observe(record.features, record.exec_seconds);
  }
  (void)estimator->Refit();
}

}  // namespace ires
