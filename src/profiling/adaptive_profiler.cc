#include "profiling/adaptive_profiler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "modeling/tree_models.h"

namespace ires {

OperatorRunRequest AdaptiveProfiler::SampleConfig(
    const std::string& algorithm, const Domain& domain, Rng* rng) const {
  OperatorRunRequest request;
  request.algorithm = algorithm;
  // Log-uniform over the input range: performance cliffs live at scale
  // boundaries, so small sizes deserve proportional representation.
  const double log_lo = std::log(domain.min_input_bytes);
  const double log_hi = std::log(domain.max_input_bytes);
  request.input_bytes = std::exp(rng->Uniform(log_lo, log_hi));
  request.resources.containers =
      static_cast<int>(rng->UniformInt(1, domain.max_containers));
  request.resources.cores =
      static_cast<int>(rng->UniformInt(1, domain.max_cores));
  request.resources.memory_gb =
      rng->Uniform(domain.min_memory_gb, domain.max_memory_gb);
  return request;
}

std::vector<ProfileRecord> AdaptiveProfiler::Profile(
    const std::string& algorithm, const Domain& domain) {
  Rng rng(options_.seed);
  Profiler profiler(engine_, rng.Next());
  std::vector<ProfileRecord> records;

  auto observe = [&](const OperatorRunRequest& request) {
    auto record = profiler.RunOnce(request);
    if (record.ok()) records.push_back(std::move(record).value());
  };

  // Phase 1: random bootstrap.
  for (int i = 0; i < options_.initial_samples; ++i) {
    observe(SampleConfig(algorithm, domain, &rng));
  }

  // Phase 2: uncertainty-driven selection.
  for (int run = options_.initial_samples; run < options_.total_budget;
       ++run) {
    if (records.size() < 4) {
      // Not enough successful observations to fit anything useful yet.
      observe(SampleConfig(algorithm, domain, &rng));
      continue;
    }
    // Fit a bootstrap ensemble on the current observations.
    Matrix x;
    Vector y;
    for (const ProfileRecord& record : records) {
      x.AppendRow(record.features);
      y.push_back(record.exec_seconds);
    }
    std::vector<std::unique_ptr<Model>> ensemble;
    for (int m = 0; m < options_.ensemble_size; ++m) {
      Matrix bx;
      Vector by;
      for (size_t i = 0; i < x.rows(); ++i) {
        const size_t pick =
            static_cast<size_t>(rng.UniformInt(0, x.rows() - 1));
        bx.AppendRow(x.Row(pick));
        by.push_back(y[pick]);
      }
      auto tree = std::make_unique<RegressionTree>();
      if (tree->Fit(bx, by).ok()) ensemble.push_back(std::move(tree));
    }
    if (ensemble.empty()) {
      observe(SampleConfig(algorithm, domain, &rng));
      continue;
    }
    // Score a random candidate pool by ensemble disagreement.
    OperatorRunRequest best_candidate;
    double best_score = -1.0;
    for (int c = 0; c < options_.candidate_pool; ++c) {
      OperatorRunRequest candidate = SampleConfig(algorithm, domain, &rng);
      const Vector features = Profiler::FeatureVector(candidate);
      double mean = 0.0, sq = 0.0;
      for (const auto& model : ensemble) {
        const double p = model->Predict(features);
        mean += p;
        sq += p * p;
      }
      mean /= ensemble.size();
      const double variance =
          std::max(0.0, sq / ensemble.size() - mean * mean);
      // Relative disagreement (coefficient of variation): absolute variance
      // would chase only the large-runtime corner of the space and leave
      // the small-size region unlearned.
      const double score =
          std::sqrt(variance) / std::max(1e-6, std::fabs(mean));
      if (score > best_score) {
        best_score = score;
        best_candidate = std::move(candidate);
      }
    }
    observe(best_candidate);
  }
  return records;
}

std::vector<ProfileRecord> AdaptiveProfiler::ProfileUniform(
    const std::string& algorithm, const Domain& domain) {
  Rng rng(options_.seed ^ 0xABCDEF);
  Profiler profiler(engine_, rng.Next());
  std::vector<ProfileRecord> records;
  for (int i = 0; i < options_.total_budget; ++i) {
    auto record = profiler.RunOnce(SampleConfig(algorithm, domain, &rng));
    if (record.ok()) records.push_back(std::move(record).value());
  }
  return records;
}

}  // namespace ires
