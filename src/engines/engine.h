#ifndef IRES_ENGINES_ENGINE_H_
#define IRES_ENGINES_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "cluster/resources.h"
#include "common/rng.h"
#include "common/status.h"

namespace ires {

/// A request to run (or estimate) one operator on one engine.
struct OperatorRunRequest {
  std::string algorithm;      // e.g. "Pagerank", "TF_IDF", "kmeans"
  double input_bytes = 0.0;
  double input_records = 0.0;
  Resources resources;
  /// Operator-specific parameters (e.g. {"iterations", 10}, {"k", 16}).
  std::map<std::string, double> params;
};

/// Cost/performance estimate (or ground-truth outcome) of one operator run.
struct OperatorRunEstimate {
  double exec_seconds = 0.0;
  double output_bytes = 0.0;
  double output_records = 0.0;
  /// Execution cost in the paper's #VM·cores·GB·t metric.
  double cost = 0.0;
};

/// Execution behaviour class of an engine; governs parallelism and the
/// memory-feasibility rule.
enum class EngineKind {
  /// Single process on one node (Java, Python/scikit, PostgreSQL): uses one
  /// container's cores; infeasible when the working set exceeds one node's
  /// memory budget.
  kCentralized,
  /// Distributed, memory-resident (Hama, MemSQL): parallel across
  /// containers; infeasible when the working set exceeds the engine's
  /// aggregate memory budget.
  kDistributedMemory,
  /// Distributed, disk-backed (Spark, MapReduce, Hive): parallel and always
  /// feasible; work spills with a slowdown when memory is short.
  kDistributedDisk,
};

/// Per-algorithm performance profile of an engine. The analytic form is
///   t = startup + container_startup·containers
///       + seconds_per_gb · gb · iterations · amdahl(cores) · spill_penalty
/// with amdahl(c) = (1-parallel_fraction) + parallel_fraction / c.
struct AlgorithmProfile {
  double startup_seconds = 2.0;
  double container_startup_seconds = 0.0;
  double seconds_per_gb = 10.0;
  double parallel_fraction = 0.95;    // ignored for centralized engines
  /// Working-set bytes per input byte (memory footprint factor).
  double memory_per_input = 2.0;
  /// Output size as a fraction of input size / records.
  double output_bytes_ratio = 1.0;
  double output_records_ratio = 1.0;
  /// Name of the run-request param that multiplies the work (e.g.
  /// "iterations"); empty = none.
  std::string work_param;
};

/// A simulated execution engine: the stand-in for Spark/Hama/PostgreSQL/...
/// It answers cost estimates (what the trained IReS models would predict
/// once converged) and produces noisy ground-truth runtimes (what the real
/// cluster would measure), which is what the profiler and model-refinement
/// experiments consume.
class SimulatedEngine {
 public:
  struct Config {
    std::string name;
    EngineKind kind = EngineKind::kDistributedDisk;
    /// Memory budget in GB: per-node for centralized engines, aggregate for
    /// distributed-memory engines, soft (spill threshold) for disk-backed.
    double memory_budget_gb = 8.0;
    /// Disk-backed engines run this many times slower on the spilled
    /// fraction of the working set.
    double spill_slowdown = 3.0;
    /// Default resources used when the planner does not provision
    /// explicitly.
    Resources default_resources{4, 2, 2.0};
    /// Relative std-dev of multiplicative log-normal noise on ground truth.
    double noise_stddev = 0.06;
    /// Store this engine reads/writes natively ("HDFS", "PostgreSQL", ...).
    std::string native_store;
    /// Multiplies all processing rates; the infrastructure-change lever used
    /// by the Fig. 16b experiment (e.g. 0.5 after an HDD -> SSD upgrade).
    double infrastructure_factor = 1.0;
  };

  SimulatedEngine(Config config) : config_(std::move(config)) {}
  virtual ~SimulatedEngine() = default;

  const std::string& name() const { return config_.name; }
  EngineKind kind() const { return config_.kind; }
  const std::string& native_store() const { return config_.native_store; }
  const Resources& default_resources() const {
    return config_.default_resources;
  }

  // Availability is the one engine attribute flipped at serving time (by
  // the REST API and by failure recovery), so it is atomic: planner reads
  // never race with ON/OFF flips.
  bool available() const {
    return available_.load(std::memory_order_acquire);
  }
  void set_available(bool on) {
    available_.store(on, std::memory_order_release);
  }

  void set_infrastructure_factor(double f) {
    config_.infrastructure_factor = f;
  }
  double infrastructure_factor() const { return config_.infrastructure_factor; }

  /// Registers the performance profile for one algorithm. A profile under
  /// the wildcard name "*" is the fallback for unknown algorithms.
  void SetProfile(const std::string& algorithm, AlgorithmProfile profile);
  const AlgorithmProfile* FindProfile(const std::string& algorithm) const;

  /// Noise-free analytic estimate (the converged cost model). Fails with
  /// ResourceExhausted when the working set exceeds the memory rule and
  /// NotFound when no profile covers the algorithm.
  Result<OperatorRunEstimate> Estimate(const OperatorRunRequest& request) const;

  /// Ground truth for an actual run: the analytic estimate perturbed by
  /// multiplicative log-normal noise drawn from `rng`.
  Result<OperatorRunEstimate> Run(const OperatorRunRequest& request,
                                  Rng* rng) const;

 private:
  Config config_;
  std::atomic<bool> available_{true};
  std::map<std::string, AlgorithmProfile> profiles_;
};

}  // namespace ires

#endif  // IRES_ENGINES_ENGINE_H_
