#ifndef IRES_ENGINES_STANDARD_ENGINES_H_
#define IRES_ENGINES_STANDARD_ENGINES_H_

#include <memory>

#include "engines/engine_registry.h"

namespace ires {

/// Builds the engine fleet the ASAP evaluation deployed (deliverable §4:
/// Hadoop MapReduce, Spark + MLlib, Hama, Java, Python/scikit-learn,
/// PostgreSQL, MemSQL, Hive), with performance models calibrated so that the
/// paper's qualitative behaviour holds:
///
///  * PageRank ("Pagerank", input = edge list at ~20 B/edge): centralized
///    Java wins small graphs, OOMs past a single node's memory; Hama wins
///    medium graphs, OOMs past the aggregate cluster memory; Spark is
///    slower but survives everything (Fig. 11).
///  * Text analytics ("TF_IDF", "kmeans", input = corpus at ~10 KB/doc):
///    scikit wins small corpora; Spark/MLlib wins large; the tf-idf
///    crossover sits well above the k-means crossover, opening the hybrid
///    window where scikit tf-idf + Spark k-means beats both single-engine
///    plans (Fig. 12).
///  * Relational ("SPJQuery" light joins, "SPJHeavyQuery" joins with large
///    intermediates): PostgreSQL is fine for small inputs but centralized;
///    MemSQL is fastest while the working set fits its aggregate memory;
///    SparkSQL always completes (Fig. 13).
///  * "Wordcount" (MapReduce) and "HelloWorld" (all engines of Table 1)
///    support the modeling and fault-tolerance experiments.
///
/// All engines default to the 16-VM-class cluster of the paper
/// (8 containers x 2 cores x 2 GB).
std::unique_ptr<EngineRegistry> MakeStandardEngineRegistry();

/// Bytes per graph edge assumed by the Pagerank workloads.
inline constexpr double kBytesPerEdge = 20.0;
/// Bytes per document assumed by the text-analytics workloads.
inline constexpr double kBytesPerDocument = 10e3;

}  // namespace ires

#endif  // IRES_ENGINES_STANDARD_ENGINES_H_
