#include "engines/engine_registry.h"

namespace ires {

Status EngineRegistry::Add(std::unique_ptr<SimulatedEngine> engine) {
  if (engine == nullptr) return Status::InvalidArgument("null engine");
  const std::string name = engine->name();
  if (name.empty()) return Status::InvalidArgument("engine needs a name");
  if (engines_.count(name) > 0) {
    return Status::AlreadyExists("engine: " + name);
  }
  engines_.emplace(name, std::move(engine));
  return Status::OK();
}

SimulatedEngine* EngineRegistry::Find(const std::string& name) {
  auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : it->second.get();
}

const SimulatedEngine* EngineRegistry::Find(const std::string& name) const {
  auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : it->second.get();
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [name, engine] : engines_) names.push_back(name);
  return names;
}

Status EngineRegistry::SetAvailable(const std::string& name, bool on) {
  SimulatedEngine* engine = Find(name);
  if (engine == nullptr) return Status::NotFound("engine: " + name);
  engine->set_available(on);
  availability_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

bool EngineRegistry::IsAvailable(const std::string& name) const {
  const SimulatedEngine* engine = Find(name);
  return engine != nullptr && engine->available();
}

}  // namespace ires
