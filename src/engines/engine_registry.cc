#include "engines/engine_registry.h"

#include <algorithm>
#include <cmath>

namespace ires {

namespace {

/// Gauge encoding of the breaker state: readable in dashboards as an
/// ordered severity scale.
double StateGaugeValue(EngineHealth health) {
  switch (health) {
    case EngineHealth::kOff: return 0.0;
    case EngineHealth::kSuspended: return 1.0;
    case EngineHealth::kHalfOpen: return 2.0;
    case EngineHealth::kOn: return 3.0;
  }
  return 3.0;
}

bool IsAvailableState(EngineHealth health) {
  return health == EngineHealth::kOn || health == EngineHealth::kHalfOpen;
}

/// Time-to-recovery buckets in simulated seconds (outages span sub-minute
/// flaps to hour-long suspensions).
const std::vector<double>& RecoveryBuckets() {
  static const std::vector<double> kBuckets = {
      1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0};
  return kBuckets;
}

}  // namespace

const char* EngineHealthName(EngineHealth health) {
  switch (health) {
    case EngineHealth::kOn: return "ON";
    case EngineHealth::kSuspended: return "SUSPENDED";
    case EngineHealth::kHalfOpen: return "HALF_OPEN";
    case EngineHealth::kOff: return "OFF";
  }
  return "?";
}

Status EngineRegistry::Add(std::unique_ptr<SimulatedEngine> engine) {
  if (engine == nullptr) return Status::InvalidArgument("null engine");
  const std::string name = engine->name();
  if (name.empty()) return Status::InvalidArgument("engine needs a name");
  if (engines_.count(name) > 0) {
    return Status::AlreadyExists("engine: " + name);
  }
  engines_.emplace(name, std::move(engine));
  MutexLock lock(health_mu_);
  health_[name] = BreakerState{};
  if (metrics_ != nullptr) {
    metrics_
        ->GetGauge("ires_engine_state",
                   "Engine breaker state: 0=OFF 1=SUSPENDED 2=HALF_OPEN 3=ON.",
                   {{"engine", name}})
        ->Set(StateGaugeValue(EngineHealth::kOn));
  }
  return Status::OK();
}

SimulatedEngine* EngineRegistry::Find(const std::string& name) {
  auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : it->second.get();
}

const SimulatedEngine* EngineRegistry::Find(const std::string& name) const {
  auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : it->second.get();
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [name, engine] : engines_) names.push_back(name);
  return names;
}

bool EngineRegistry::TransitionLocked(const std::string& name,
                                      BreakerState* state,
                                      EngineHealth health) {
  const bool was_available = IsAvailableState(state->health);
  const EngineHealth previous = state->health;
  state->health = health;
  if (journal_ != nullptr && previous != health) {
    JournalEvent event;
    event.kind = EventKind::kBreakerState;
    event.engine = name;
    event.code = EngineHealthName(health);
    event.value = static_cast<double>(state->consecutive_trips);
    event.detail = std::string(EngineHealthName(previous)) + " -> " +
                   EngineHealthName(health);
    journal_->Append(std::move(event));
  }
  const bool now_available = IsAvailableState(health);
  engines_.at(name)->set_available(now_available);
  if (metrics_ != nullptr) {
    metrics_
        ->GetGauge("ires_engine_state",
                   "Engine breaker state: 0=OFF 1=SUSPENDED 2=HALF_OPEN 3=ON.",
                   {{"engine", name}})
        ->Set(StateGaugeValue(health));
  }
  return was_available != now_available;
}

Status EngineRegistry::SetAvailable(const std::string& name, bool on) {
  if (Find(name) == nullptr) return Status::NotFound("engine: " + name);
  MutexLock lock(health_mu_);
  BreakerState& state = health_[name];
  if (on) {
    state.manual_off = false;
    state.consecutive_trips = 0;
    state.suspended_until = 0.0;
    (void)TransitionLocked(name, &state, EngineHealth::kOn);
  } else {
    state.manual_off = true;
    (void)TransitionLocked(name, &state, EngineHealth::kOff);
  }
  // Administrative flips always bump: callers rely on the epoch advancing
  // even for redundant ON->ON writes (the historic contract).
  BumpEpoch();
  return Status::OK();
}

bool EngineRegistry::IsAvailable(const std::string& name) const {
  const SimulatedEngine* engine = Find(name);
  return engine != nullptr && engine->available();
}

Status EngineRegistry::ReportFailure(const std::string& name) {
  if (Find(name) == nullptr) return Status::NotFound("engine: " + name);
  MutexLock lock(health_mu_);
  BreakerState& state = health_[name];
  if (state.manual_off) return Status::OK();  // an operator said OFF; obey
  if (IsAvailableState(state.health)) state.tripped_at = sim_clock_;
  ++state.trips_total;
  ++state.consecutive_trips;
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("ires_engine_trips_total",
                     "Circuit-breaker trips by engine.", {{"engine", name}})
        ->Increment();
  }
  const double backoff = std::min(
      breaker_.base_suspension_seconds *
          std::pow(breaker_.suspension_multiplier,
                   static_cast<double>(state.consecutive_trips - 1)),
      breaker_.max_suspension_seconds);
  state.suspended_until = sim_clock_ + backoff;
  const EngineHealth next =
      (breaker_.off_after_consecutive_trips > 0 &&
       state.consecutive_trips >= breaker_.off_after_consecutive_trips)
          ? EngineHealth::kOff
          : EngineHealth::kSuspended;
  if (TransitionLocked(name, &state, next)) BumpEpoch();
  return Status::OK();
}

Status EngineRegistry::ReportSuccess(const std::string& name) {
  if (Find(name) == nullptr) return Status::NotFound("engine: " + name);
  MutexLock lock(health_mu_);
  BreakerState& state = health_[name];
  switch (state.health) {
    case EngineHealth::kHalfOpen: {
      // Probe succeeded: close the breaker and record how long the engine
      // was out of rotation.
      state.consecutive_trips = 0;
      state.suspended_until = 0.0;
      if (recovery_seconds_ != nullptr) {
        recovery_seconds_->Observe(
            std::max(0.0, sim_clock_ - state.tripped_at));
      }
      if (TransitionLocked(name, &state, EngineHealth::kOn)) BumpEpoch();
      break;
    }
    case EngineHealth::kOn:
      state.consecutive_trips = 0;  // success breaks the trip streak
      break;
    case EngineHealth::kSuspended:
    case EngineHealth::kOff:
      // A run that started before the trip finished fine; the breaker's
      // verdict stands until the suspension expires.
      break;
  }
  return Status::OK();
}

double EngineRegistry::AdvanceSimClock(double delta_seconds) {
  MutexLock lock(health_mu_);
  if (delta_seconds > 0.0) sim_clock_ += delta_seconds;
  bool changed = false;
  for (auto& [name, state] : health_) {
    if (state.health == EngineHealth::kSuspended &&
        state.suspended_until <= sim_clock_) {
      changed |= TransitionLocked(name, &state, EngineHealth::kHalfOpen);
    }
  }
  if (changed) BumpEpoch();
  return sim_clock_;
}

double EngineRegistry::sim_clock_seconds() const {
  MutexLock lock(health_mu_);
  return sim_clock_;
}

Result<EngineRegistry::HealthSnapshot> EngineRegistry::HealthOf(
    const std::string& name) const {
  if (Find(name) == nullptr) return Status::NotFound("engine: " + name);
  MutexLock lock(health_mu_);
  HealthSnapshot snapshot;
  auto it = health_.find(name);
  if (it == health_.end()) return snapshot;  // never reported: ON
  snapshot.health = it->second.health;
  snapshot.suspended_until = it->second.suspended_until;
  snapshot.consecutive_trips = it->second.consecutive_trips;
  snapshot.trips_total = it->second.trips_total;
  return snapshot;
}

void EngineRegistry::set_breaker_config(const BreakerConfig& config) {
  MutexLock lock(health_mu_);
  breaker_ = config;
}

EngineRegistry::BreakerConfig EngineRegistry::breaker_config() const {
  MutexLock lock(health_mu_);
  return breaker_;
}

void EngineRegistry::EnableMetrics(MetricsRegistry* metrics) {
  MutexLock lock(health_mu_);
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    recovery_seconds_ = nullptr;
    return;
  }
  recovery_seconds_ = metrics_->GetHistogram(
      "ires_engine_recovery_sim_seconds",
      "Simulated time from breaker trip to recovered (HALF_OPEN -> ON).", {},
      RecoveryBuckets());
  for (const auto& [name, state] : health_) {
    metrics_
        ->GetGauge("ires_engine_state",
                   "Engine breaker state: 0=OFF 1=SUSPENDED 2=HALF_OPEN 3=ON.",
                   {{"engine", name}})
        ->Set(StateGaugeValue(state.health));
  }
}

void EngineRegistry::EnableJournal(EventJournal* journal) {
  MutexLock lock(health_mu_);
  journal_ = journal;
}

}  // namespace ires
