#include "engines/engine.h"

#include <algorithm>
#include <cmath>

namespace ires {

void SimulatedEngine::SetProfile(const std::string& algorithm,
                                 AlgorithmProfile profile) {
  profiles_[algorithm] = std::move(profile);
}

const AlgorithmProfile* SimulatedEngine::FindProfile(
    const std::string& algorithm) const {
  auto it = profiles_.find(algorithm);
  if (it != profiles_.end()) return &it->second;
  it = profiles_.find("*");
  if (it != profiles_.end()) return &it->second;
  return nullptr;
}

Result<OperatorRunEstimate> SimulatedEngine::Estimate(
    const OperatorRunRequest& request) const {
  const AlgorithmProfile* profile = FindProfile(request.algorithm);
  if (profile == nullptr) {
    return Status::NotFound("engine " + config_.name +
                            " has no profile for " + request.algorithm);
  }
  const double gb = request.input_bytes / 1e9;
  const double working_set_gb = gb * profile->memory_per_input;

  // Effective memory: the engine cannot use more than what the provisioned
  // containers were granted (this is what makes the NSGA-II provisioner's
  // memory gene meaningful), capped by the engine's own budget.
  const double allocated_gb = config_.kind == EngineKind::kCentralized
                                  ? request.resources.memory_gb
                                  : request.resources.total_memory_gb();
  const double effective_budget_gb =
      std::min(config_.memory_budget_gb,
               allocated_gb > 0 ? allocated_gb : config_.memory_budget_gb);

  // Memory feasibility / spill behaviour by engine kind.
  double spill_penalty = 1.0;
  switch (config_.kind) {
    case EngineKind::kCentralized:
    case EngineKind::kDistributedMemory:
      if (working_set_gb > effective_budget_gb) {
        return Status::ResourceExhausted(
            config_.name + ": working set " + std::to_string(working_set_gb) +
            "GB exceeds memory budget " +
            std::to_string(effective_budget_gb) + "GB");
      }
      break;
    case EngineKind::kDistributedDisk:
      if (working_set_gb > effective_budget_gb && effective_budget_gb > 0) {
        const double spilled_fraction =
            (working_set_gb - effective_budget_gb) / working_set_gb;
        spill_penalty =
            1.0 + spilled_fraction * (config_.spill_slowdown - 1.0);
      }
      break;
  }

  // Effective parallelism.
  const Resources& res = request.resources;
  double amdahl = 1.0;
  int containers = 1;
  if (config_.kind == EngineKind::kCentralized) {
    // One process; extra cores beyond the first container do not help.
    const int cores = std::max(1, res.cores);
    amdahl = (1.0 - profile->parallel_fraction) +
             profile->parallel_fraction / cores;
  } else {
    const int total_cores = std::max(1, res.total_cores());
    containers = std::max(1, res.containers);
    amdahl = (1.0 - profile->parallel_fraction) +
             profile->parallel_fraction / total_cores;
  }

  double work_multiplier = 1.0;
  if (!profile->work_param.empty()) {
    auto it = request.params.find(profile->work_param);
    if (it != request.params.end()) work_multiplier = std::max(1.0, it->second);
  }

  OperatorRunEstimate out;
  out.exec_seconds =
      profile->startup_seconds +
      profile->container_startup_seconds * containers +
      profile->seconds_per_gb * gb * work_multiplier * amdahl *
          spill_penalty * config_.infrastructure_factor;
  out.output_bytes = request.input_bytes * profile->output_bytes_ratio;
  out.output_records = request.input_records * profile->output_records_ratio;
  out.cost = res.CostForDuration(out.exec_seconds);
  return out;
}

Result<OperatorRunEstimate> SimulatedEngine::Run(
    const OperatorRunRequest& request, Rng* rng) const {
  if (!available_) {
    return Status::Unavailable("engine " + config_.name + " is OFF");
  }
  IRES_ASSIGN_OR_RETURN(OperatorRunEstimate est, Estimate(request));
  if (rng != nullptr && config_.noise_stddev > 0.0) {
    const double factor = std::exp(rng->Normal(0.0, config_.noise_stddev));
    est.exec_seconds *= factor;
    est.cost *= factor;
  }
  return est;
}

}  // namespace ires
