#include "engines/standard_engines.h"

namespace ires {

namespace {

// Default container grid: 8 containers x 2 cores x 2 GB — 16 cores total,
// matching the 16-VM OpenStack deployment of the evaluation.
const Resources kClusterDefault{8, 2, 2.0};
// Effective Amdahl factor of the default grid at parallel_fraction 0.95:
// 0.05 + 0.95/16 ~= 0.109. Single-core rates below are chosen so that
// rate * 0.109 hits the effective rates quoted in the comments.

std::unique_ptr<SimulatedEngine> MakeEngine(SimulatedEngine::Config config) {
  return std::make_unique<SimulatedEngine>(std::move(config));
}

AlgorithmProfile Profile(double startup, double seconds_per_gb,
                         double parallel_fraction, double memory_per_input,
                         double out_bytes, double out_records) {
  AlgorithmProfile p;
  p.startup_seconds = startup;
  p.seconds_per_gb = seconds_per_gb;
  p.parallel_fraction = parallel_fraction;
  p.memory_per_input = memory_per_input;
  p.output_bytes_ratio = out_bytes;
  p.output_records_ratio = out_records;
  return p;
}

}  // namespace

std::unique_ptr<EngineRegistry> MakeStandardEngineRegistry() {
  auto registry = std::make_unique<EngineRegistry>();

  // ----- Java: centralized JVM process on one node (3 GB heap). -----------
  {
    SimulatedEngine::Config cfg;
    cfg.name = "Java";
    cfg.kind = EngineKind::kCentralized;
    cfg.memory_budget_gb = 3.0;
    cfg.default_resources = {1, 1, 3.0};
    cfg.native_store = "Local";
    auto engine = MakeEngine(cfg);
    // Pagerank: t = 2 + 150 s/GB; OOM when 5x working set exceeds 3 GB
    // (~30M edges) -> wins small graphs, dies at 100M (Fig. 11).
    engine->SetProfile("Pagerank", Profile(2.0, 150.0, 0.0, 5.0, 0.1, 1.0));
    // Wordcount (centralized Java baseline of Fig. 16a).
    engine->SetProfile("Wordcount", Profile(1.5, 45.0, 0.0, 2.0, 0.05, 0.1));
    engine->SetProfile("*", Profile(1.0, 60.0, 0.0, 2.0, 1.0, 1.0));
    (void)registry->Add(std::move(engine));
  }

  // ----- Python: the HelloWorld workflow engine of Table 1. ---------------
  {
    SimulatedEngine::Config cfg;
    cfg.name = "Python";
    cfg.kind = EngineKind::kCentralized;
    cfg.memory_budget_gb = 3.0;
    cfg.default_resources = {1, 1, 2.0};
    cfg.native_store = "Local";
    auto engine = MakeEngine(cfg);
    engine->SetProfile("*", Profile(1.0, 80.0, 0.0, 2.0, 1.0, 1.0));
    (void)registry->Add(std::move(engine));
  }

  // ----- scikit-learn: centralized Python ML (text analytics). ------------
  {
    SimulatedEngine::Config cfg;
    cfg.name = "scikit";
    cfg.kind = EngineKind::kCentralized;
    cfg.memory_budget_gb = 6.0;
    cfg.default_resources = {1, 1, 6.0};
    cfg.native_store = "Local";
    auto engine = MakeEngine(cfg);
    // TF_IDF: 45 s/GB (~0.45 s per 1k docs) -> beats Spark tf-idf up to
    // ~85k docs; with the intermediate move, the hybrid plan flips to full
    // Spark near ~55k docs.
    engine->SetProfile("TF_IDF", Profile(1.0, 45.0, 0.0, 2.5, 0.5, 1.0));
    // k-means on tf-idf vectors: 450 s/GB -> Spark k-means wins above ~7k
    // docs, opening the hybrid window of Fig. 12.
    engine->SetProfile("kmeans", Profile(1.0, 450.0, 0.0, 3.0, 0.01, 0.001));
    engine->SetProfile("*", Profile(1.0, 100.0, 0.0, 2.5, 1.0, 1.0));
    (void)registry->Add(std::move(engine));
  }

  // ----- Spark: distributed, disk-backed, 24 GB aggregate cache. ----------
  {
    SimulatedEngine::Config cfg;
    cfg.name = "Spark";
    cfg.kind = EngineKind::kDistributedDisk;
    cfg.memory_budget_gb = 24.0;
    cfg.spill_slowdown = 3.0;
    cfg.default_resources = kClusterDefault;
    cfg.native_store = "HDFS";
    auto engine = MakeEngine(cfg);
    // Pagerank: effective ~44 s/GB at 16 cores; high startup.
    engine->SetProfile("Pagerank", Profile(12.0, 400.0, 0.95, 2.0, 0.1, 1.0));
    // MLlib text operators (effective ~30 / ~26 s/GB).
    engine->SetProfile("TF_IDF", Profile(14.0, 275.0, 0.95, 1.5, 0.5, 1.0));
    engine->SetProfile("kmeans", Profile(14.0, 240.0, 0.95, 1.8, 0.01, 0.001));
    // SparkSQL joins: effective ~8 s/GB, never OOMs (spills instead).
    engine->SetProfile("SPJQuery", Profile(15.0, 73.0, 0.95, 2.0, 0.2, 0.2));
    engine->SetProfile("SPJHeavyQuery",
                       Profile(15.0, 90.0, 0.95, 4.0, 0.2, 0.2));
    // Federated SQL operators lowered from /apiv1/sql plans: high startup
    // (job submission) but cluster-parallel scans/joins; moves model the
    // bulk write into HDFS.
    engine->SetProfile("SqlScan", Profile(8.0, 20.0, 0.95, 1.5, 0.3, 0.3));
    engine->SetProfile("SqlJoin", Profile(15.0, 73.0, 0.95, 2.0, 0.2, 0.2));
    engine->SetProfile("SqlMove", Profile(5.0, 15.0, 0.95, 1.2, 1.0, 1.0));
    engine->SetProfile("Wordcount", Profile(10.0, 90.0, 0.95, 1.5, 0.05, 0.1));
    engine->SetProfile("*", Profile(12.0, 150.0, 0.95, 2.0, 1.0, 1.0));
    (void)registry->Add(std::move(engine));
  }

  // ----- MLlib: Spark's ML library surfaced as its own engine entry (the
  // fault-tolerance experiment of Table 1 lists it separately). ------------
  {
    SimulatedEngine::Config cfg;
    cfg.name = "MLLib";
    cfg.kind = EngineKind::kDistributedDisk;
    cfg.memory_budget_gb = 24.0;
    cfg.default_resources = kClusterDefault;
    cfg.native_store = "HDFS";
    auto engine = MakeEngine(cfg);
    engine->SetProfile("*", Profile(13.0, 160.0, 0.95, 2.0, 1.0, 1.0));
    (void)registry->Add(std::move(engine));
  }

  // ----- Hama: BSP, strictly memory-resident (8 GB aggregate). ------------
  {
    SimulatedEngine::Config cfg;
    cfg.name = "Hama";
    cfg.kind = EngineKind::kDistributedMemory;
    cfg.memory_budget_gb = 8.0;
    cfg.default_resources = kClusterDefault;
    cfg.native_store = "HDFS";
    auto engine = MakeEngine(cfg);
    // Pagerank: effective ~27 s/GB -> fastest for medium graphs; working
    // set 4.5x input exceeds 8 GB past ~90M edges (dies at 100M).
    engine->SetProfile("Pagerank", Profile(6.0, 250.0, 0.95, 4.5, 0.1, 1.0));
    engine->SetProfile("*", Profile(6.0, 300.0, 0.95, 4.0, 1.0, 1.0));
    (void)registry->Add(std::move(engine));
  }

  // ----- Hadoop MapReduce: distributed, disk-heavy, slow startup. ---------
  {
    SimulatedEngine::Config cfg;
    cfg.name = "MapReduce";
    cfg.kind = EngineKind::kDistributedDisk;
    cfg.memory_budget_gb = 32.0;
    cfg.default_resources = kClusterDefault;
    cfg.native_store = "HDFS";
    auto engine = MakeEngine(cfg);
    engine->SetProfile("Wordcount",
                       Profile(15.0, 300.0, 0.90, 1.2, 0.05, 0.1));
    engine->SetProfile("TF_IDF", Profile(18.0, 350.0, 0.90, 1.5, 0.5, 1.0));
    engine->SetProfile("kmeans", Profile(18.0, 380.0, 0.90, 1.8, 0.01, 0.001));
    engine->SetProfile("*", Profile(15.0, 320.0, 0.90, 1.5, 1.0, 1.0));
    (void)registry->Add(std::move(engine));
  }

  // ----- PostgreSQL: centralized RDBMS, disk-backed (never OOMs). ---------
  {
    SimulatedEngine::Config cfg;
    cfg.name = "PostgreSQL";
    cfg.kind = EngineKind::kCentralized;
    cfg.memory_budget_gb = 1e6;  // disk-backed: effectively unbounded
    cfg.default_resources = {1, 2, 4.0};
    cfg.native_store = "PostgreSQL";
    auto engine = MakeEngine(cfg);
    // Disk-backed: only buffer-pool working memory is needed (0.05x).
    engine->SetProfile("SPJQuery", Profile(0.5, 15.0, 0.0, 0.05, 0.2, 0.2));
    engine->SetProfile("SPJHeavyQuery",
                       Profile(0.5, 25.0, 0.0, 0.05, 0.2, 0.2));
    // Federated SQL operators: near-zero startup and sequential execution —
    // unbeatable on small home-resident tables, loses past a few GB.
    engine->SetProfile("SqlScan", Profile(0.2, 8.0, 0.0, 0.05, 0.3, 0.3));
    engine->SetProfile("SqlJoin", Profile(0.5, 15.0, 0.0, 0.05, 0.2, 0.2));
    engine->SetProfile("SqlMove", Profile(0.3, 20.0, 0.0, 0.05, 1.0, 1.0));
    engine->SetProfile("*", Profile(0.5, 50.0, 0.0, 0.05, 1.0, 1.0));
    (void)registry->Add(std::move(engine));
  }

  // ----- MemSQL: distributed in-memory SQL (12 GB aggregate). -------------
  {
    SimulatedEngine::Config cfg;
    cfg.name = "MemSQL";
    cfg.kind = EngineKind::kDistributedMemory;
    cfg.memory_budget_gb = 12.0;
    cfg.default_resources = kClusterDefault;
    cfg.native_store = "MemSQL";
    auto engine = MakeEngine(cfg);
    // Light joins keep intermediates ~1.5x input; heavy (lineitem-scale)
    // joins blow up 4x, so the heavy query (and with it the whole-workflow
    // plan) dies on MemSQL past ~3.5 GB of TPC-H scale.
    engine->SetProfile("SPJQuery", Profile(1.0, 37.0, 0.95, 1.5, 0.2, 0.2));
    engine->SetProfile("SPJHeavyQuery",
                       Profile(1.0, 45.0, 0.95, 4.0, 0.2, 0.2));
    // Federated SQL operators: fast in-memory scans/joins, but working sets
    // above the 12 GB aggregate are infeasible (the planner routes around).
    engine->SetProfile("SqlScan", Profile(0.5, 4.0, 0.95, 1.2, 0.3, 0.3));
    engine->SetProfile("SqlJoin", Profile(1.0, 37.0, 0.95, 1.5, 0.2, 0.2));
    engine->SetProfile("SqlMove", Profile(0.5, 10.0, 0.95, 1.2, 1.0, 1.0));
    engine->SetProfile("*", Profile(1.0, 40.0, 0.95, 1.5, 1.0, 1.0));
    (void)registry->Add(std::move(engine));
  }

  // ----- Cilk: single-node multicore C++ runtime; hosts the hand-tuned
  // tf-idf/k-means binaries of deliverable §3.4. Much faster per core than
  // the Python stack but limited to one machine. ---------------------------
  {
    SimulatedEngine::Config cfg;
    cfg.name = "Cilk";
    cfg.kind = EngineKind::kCentralized;
    cfg.memory_budget_gb = 6.0;
    cfg.default_resources = {1, 4, 6.0};
    cfg.native_store = "Local";
    auto engine = MakeEngine(cfg);
    // Centralized engines use one container but do scale with its cores.
    engine->SetProfile("TF_IDF", Profile(0.5, 80.0, 0.9, 2.0, 0.5, 1.0));
    engine->SetProfile("kmeans", Profile(0.5, 600.0, 0.9, 2.5, 0.01, 0.001));
    engine->SetProfile("*", Profile(0.5, 120.0, 0.9, 2.0, 1.0, 1.0));
    (void)registry->Add(std::move(engine));
  }

  // ----- Hive: SQL-on-MapReduce; listed in Table 1. ------------------------
  {
    SimulatedEngine::Config cfg;
    cfg.name = "Hive";
    cfg.kind = EngineKind::kDistributedDisk;
    cfg.memory_budget_gb = 32.0;
    cfg.default_resources = kClusterDefault;
    cfg.native_store = "HDFS";
    auto engine = MakeEngine(cfg);
    engine->SetProfile("SPJQuery", Profile(20.0, 200.0, 0.90, 1.5, 0.2, 0.2));
    engine->SetProfile("*", Profile(20.0, 250.0, 0.90, 1.5, 1.0, 1.0));
    (void)registry->Add(std::move(engine));
  }

  // ----- Store-to-store bandwidths. ----------------------------------------
  DataMovementModel& movement = registry->movement();
  movement.SetBandwidth("PostgreSQL", "HDFS", 40e6);
  movement.SetBandwidth("HDFS", "PostgreSQL", 35e6);
  movement.SetBandwidth("MemSQL", "HDFS", 120e6);
  movement.SetBandwidth("HDFS", "MemSQL", 110e6);
  movement.SetBandwidth("PostgreSQL", "MemSQL", 45e6);
  movement.SetBandwidth("MemSQL", "PostgreSQL", 40e6);
  movement.SetBandwidth("Local", "HDFS", 80e6);
  movement.SetBandwidth("HDFS", "Local", 90e6);

  return registry;
}

}  // namespace ires
