#include "engines/data_movement.h"

#include <utility>

namespace ires {

DataMovementModel::DataMovementModel()
    : default_bandwidth_(100e6),       // 100 MB/s, a 1GbE-class link
      fixed_latency_seconds_(1.0),     // move-job submission overhead
      transform_seconds_per_gb_(2.0) {}

double DataMovementModel::MoveSeconds(double bytes,
                                      const std::string& from_store,
                                      const std::string& to_store,
                                      bool transform) const {
  double seconds = 0.0;
  if (from_store != to_store) {
    double bandwidth = default_bandwidth_;
    auto it = bandwidth_.find({from_store, to_store});
    if (it != bandwidth_.end()) bandwidth = it->second;
    seconds += fixed_latency_seconds_ + bytes / bandwidth;
  }
  if (transform) {
    if (from_store == to_store) seconds += fixed_latency_seconds_;
    seconds += transform_seconds_per_gb_ * bytes / 1e9;
  }
  return seconds;
}

void DataMovementModel::SetBandwidth(const std::string& from_store,
                                     const std::string& to_store,
                                     double bytes_per_second) {
  bandwidth_[{from_store, to_store}] = bytes_per_second;
}

}  // namespace ires
