#ifndef IRES_ENGINES_DATA_MOVEMENT_H_
#define IRES_ENGINES_DATA_MOVEMENT_H_

#include <map>
#include <string>

namespace ires {

/// Cost model for the move/transform operators the planner injects between
/// engines with mismatched stores or formats (deliverable §2.2.3, lines
/// 22-25 of Algorithm 1).
class DataMovementModel {
 public:
  DataMovementModel();

  /// Seconds to ship `bytes` from `from_store` to `to_store`, plus a format
  /// transformation pass when `transform` is set. Moving within the same
  /// store without a transform is free.
  double MoveSeconds(double bytes, const std::string& from_store,
                     const std::string& to_store, bool transform) const;

  /// Overrides the effective bandwidth (bytes/second) between two stores
  /// (asymmetric; set both directions explicitly if needed).
  void SetBandwidth(const std::string& from_store, const std::string& to_store,
                    double bytes_per_second);

  void set_default_bandwidth(double bytes_per_second) {
    default_bandwidth_ = bytes_per_second;
  }
  void set_fixed_latency_seconds(double seconds) {
    fixed_latency_seconds_ = seconds;
  }
  void set_transform_seconds_per_gb(double seconds) {
    transform_seconds_per_gb_ = seconds;
  }

 private:
  double default_bandwidth_;           // bytes/s
  double fixed_latency_seconds_;       // per-move setup (job submission)
  double transform_seconds_per_gb_;    // format conversion pass
  std::map<std::pair<std::string, std::string>, double> bandwidth_;
};

}  // namespace ires

#endif  // IRES_ENGINES_DATA_MOVEMENT_H_
