#ifndef IRES_ENGINES_ENGINE_REGISTRY_H_
#define IRES_ENGINES_ENGINE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engines/data_movement.h"
#include "engines/engine.h"

namespace ires {

/// Registry of the deployed engines and the data-movement model between
/// their stores — the "Multi-Engine Cloud" box of the architecture figure.
class EngineRegistry {
 public:
  EngineRegistry() = default;

  /// Registers an engine; names must be unique.
  Status Add(std::unique_ptr<SimulatedEngine> engine);

  SimulatedEngine* Find(const std::string& name);
  const SimulatedEngine* Find(const std::string& name) const;

  /// Names of all registered engines, sorted.
  std::vector<std::string> Names() const;

  /// Marks an engine ON/OFF (the service-availability check of §2.3).
  /// Safe to call while planners read availability concurrently; each flip
  /// bumps availability_epoch() so cached plans from before the flip are
  /// never reused.
  Status SetAvailable(const std::string& name, bool on);
  bool IsAvailable(const std::string& name) const;

  /// Monotonic counter bumped by every SetAvailable; part of the
  /// plan-cache key.
  uint64_t availability_epoch() const {
    return availability_epoch_.load(std::memory_order_acquire);
  }

  DataMovementModel& movement() { return movement_; }
  const DataMovementModel& movement() const { return movement_; }

  size_t size() const { return engines_.size(); }

 private:
  std::map<std::string, std::unique_ptr<SimulatedEngine>> engines_;
  DataMovementModel movement_;
  std::atomic<uint64_t> availability_epoch_{0};
};

}  // namespace ires

#endif  // IRES_ENGINES_ENGINE_REGISTRY_H_
