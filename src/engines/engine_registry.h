#ifndef IRES_ENGINES_ENGINE_REGISTRY_H_
#define IRES_ENGINES_ENGINE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engines/data_movement.h"
#include "engines/engine.h"
#include "telemetry/event_journal.h"
#include "telemetry/metrics_registry.h"

namespace ires {

/// Circuit-breaker health of one engine (deliverable §2.3, hardened for a
/// long-lived service). Failure reports no longer amputate an engine
/// forever; they suspend it on the simulated clock with exponential
/// backoff, probe it half-open once the suspension expires, and only turn
/// it permanently OFF after N consecutive trips (or a manual OFF):
///
///   ON ──ReportFailure──► SUSPENDED(until t) ──clock reaches t──► HALF_OPEN
///   ▲                          ▲                                     │
///   │                          └────────────ReportFailure────────────┤
///   └───────────────────────────ReportSuccess────────────────────────┘
///
/// SUSPENDED and OFF engines read as unavailable (planners exclude them);
/// HALF_OPEN engines are available so the next job probes them.
enum class EngineHealth { kOn, kSuspended, kHalfOpen, kOff };

const char* EngineHealthName(EngineHealth health);

/// Registry of the deployed engines and the data-movement model between
/// their stores — the "Multi-Engine Cloud" box of the architecture figure.
/// Thread-safe: health transitions take an internal mutex, availability
/// reads stay lock-free on the engines' atomics, and every transition that
/// changes availability bumps availability_epoch() so cached plans and
/// memoized candidate resolutions from before the flip are never reused.
class EngineRegistry {
 public:
  /// Circuit-breaker tuning.
  struct BreakerConfig {
    /// First suspension length (simulated seconds).
    double base_suspension_seconds = 30.0;
    /// Each consecutive trip multiplies the suspension by this factor.
    double suspension_multiplier = 2.0;
    double max_suspension_seconds = 3600.0;
    /// Consecutive trips before the engine goes permanently OFF;
    /// <= 0 means never (the breaker keeps suspending with max backoff).
    int off_after_consecutive_trips = 8;
  };

  /// Diagnostic snapshot of one engine's breaker.
  struct HealthSnapshot {
    EngineHealth health = EngineHealth::kOn;
    double suspended_until = 0.0;  // simulated seconds; kSuspended only
    int consecutive_trips = 0;
    uint64_t trips_total = 0;
  };

  EngineRegistry() = default;

  /// Registers an engine; names must be unique.
  Status Add(std::unique_ptr<SimulatedEngine> engine) EXCLUDES(health_mu_);

  SimulatedEngine* Find(const std::string& name);
  const SimulatedEngine* Find(const std::string& name) const;

  /// Names of all registered engines, sorted.
  std::vector<std::string> Names() const;

  /// Administrative ON/OFF override (the REST availability route and the
  /// single-engine benchmark baselines). `on` resets the breaker to ON;
  /// `off` is a manual OFF that only another SetAvailable(name, true)
  /// undoes — failure-driven recovery never resurrects a manually disabled
  /// engine.
  Status SetAvailable(const std::string& name, bool on)
      EXCLUDES(health_mu_);
  bool IsAvailable(const std::string& name) const;

  /// Records a failure indicting `name` (engine crash, exhausted retries):
  /// trips the breaker to SUSPENDED with exponential backoff on the
  /// simulated clock, or to OFF once the consecutive-trip limit is hit.
  /// Manual OFF states are left untouched.
  Status ReportFailure(const std::string& name) EXCLUDES(health_mu_);

  /// Records a successful use of `name`: closes a HALF_OPEN probe back to
  /// ON (recording time-to-recovery) and resets the consecutive-trip
  /// streak. No-op in every other state.
  Status ReportSuccess(const std::string& name) EXCLUDES(health_mu_);

  /// Advances the shared simulated clock (the executor adds each run's
  /// makespan) and promotes SUSPENDED engines whose deadline passed to
  /// HALF_OPEN. Returns the new clock value.
  double AdvanceSimClock(double delta_seconds) EXCLUDES(health_mu_);
  double sim_clock_seconds() const EXCLUDES(health_mu_);

  /// Breaker state of one engine (ON for engines never reported).
  Result<HealthSnapshot> HealthOf(const std::string& name) const
      EXCLUDES(health_mu_);

  void set_breaker_config(const BreakerConfig& config) EXCLUDES(health_mu_);
  BreakerConfig breaker_config() const EXCLUDES(health_mu_);

  /// Publishes `ires_engine_state` gauges, `ires_engine_trips_total`
  /// counters and the `ires_engine_recovery_sim_seconds` time-to-recovery
  /// histogram into `metrics`. Call once at wiring time.
  void EnableMetrics(MetricsRegistry* metrics) EXCLUDES(health_mu_);

  /// Journals every breaker transition as a process-scoped `breaker_state`
  /// event (the job-scoped `breaker_trip` companion is emitted by the
  /// recovering executor, which knows the indicting job). Call once at
  /// wiring time.
  void EnableJournal(EventJournal* journal) EXCLUDES(health_mu_);

  /// Monotonic counter bumped by every availability change (manual flips
  /// and breaker transitions); part of the plan-cache key.
  uint64_t availability_epoch() const {
    return availability_epoch_.load(std::memory_order_acquire);
  }

  DataMovementModel& movement() { return movement_; }
  const DataMovementModel& movement() const { return movement_; }

  size_t size() const { return engines_.size(); }

 private:
  struct BreakerState {
    EngineHealth health = EngineHealth::kOn;
    bool manual_off = false;
    double suspended_until = 0.0;
    double tripped_at = 0.0;  // clock at the start of the current outage
    int consecutive_trips = 0;
    uint64_t trips_total = 0;
  };

  /// Applies `health` to the engine atomic + state gauge. Returns true
  /// when engine availability actually changed (the caller then bumps the
  /// epoch). Nests journal shard and metrics-registry locks under
  /// health_mu_ — the blessed direction (kEngineRegistry <
  /// kEventJournalShard < kMetricsRegistry).
  bool TransitionLocked(const std::string& name, BreakerState* state,
                        EngineHealth health) REQUIRES(health_mu_);
  void BumpEpoch() {
    availability_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  std::map<std::string, std::unique_ptr<SimulatedEngine>> engines_;
  DataMovementModel movement_;
  std::atomic<uint64_t> availability_epoch_{0};

  mutable Mutex health_mu_{LockRank::kEngineRegistry, "engines.health"};
  std::map<std::string, BreakerState> health_ GUARDED_BY(health_mu_);
  BreakerConfig breaker_ GUARDED_BY(health_mu_);
  double sim_clock_ GUARDED_BY(health_mu_) = 0.0;
  MetricsRegistry* metrics_ GUARDED_BY(health_mu_) = nullptr;
  Histogram* recovery_seconds_ GUARDED_BY(health_mu_) = nullptr;
  EventJournal* journal_ GUARDED_BY(health_mu_) = nullptr;
};

}  // namespace ires

#endif  // IRES_ENGINES_ENGINE_REGISTRY_H_
