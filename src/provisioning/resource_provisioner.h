#ifndef IRES_PROVISIONING_RESOURCE_PROVISIONER_H_
#define IRES_PROVISIONING_RESOURCE_PROVISIONER_H_

#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "planner/dp_planner.h"
#include "provisioning/nsga2.h"

namespace ires {

/// Elastic resource provisioning (deliverable §2.2.4): searches the
/// (#containers, cores/container, GB/container) space with NSGA-II over the
/// engine's cost/performance model, producing the Pareto front of
/// (execution time, execution cost) and picking the front point that best
/// serves the user policy. Centralized engines are pinned to one container.
class NsgaResourceProvisioner : public ResourceAdvisor {
 public:
  struct Limits {
    int max_containers = 8;
    int max_cores_per_container = 4;
    double max_memory_gb_per_container = 6.75;
  };

  NsgaResourceProvisioner() = default;
  /// `ga.pool` may be set to parallelize objective evaluation: the
  /// objective here is SimulatedEngine::Estimate on a copied request, which
  /// is safe for concurrent calls. Results stay bit-identical to serial.
  NsgaResourceProvisioner(Limits limits, Nsga2::Options ga)
      : limits_(limits), ga_(ga) {}

  /// Thread-safe. The GA (and its possibly pooled objective evaluation)
  /// runs entirely on call-local state; mu_ is only taken afterwards to
  /// publish the computed front. Holding mu_ across the GA would hold a
  /// ranked lock across TaskGroup::Wait — the scheduler's caller-helps
  /// waiting executes arbitrary unrelated tasks, which is outside the
  /// scheduler analysis boundary (see DESIGN.md).
  Resources Advise(const SimulatedEngine& engine,
                   const OperatorRunRequest& request,
                   const OptimizationPolicy& policy) override EXCLUDES(mu_);

  /// The full Pareto front computed by the most recent Advise call
  /// (time, cost) pairs with their decoded resources; used by the Fig. 17
  /// bench. Returns a copy: concurrent Advise calls replace the stored
  /// front wholesale.
  struct FrontPoint {
    Resources resources;
    double seconds = 0.0;
    double cost = 0.0;
  };
  std::vector<FrontPoint> last_front() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return last_front_;
  }

  /// When minimizing time, accept up to this relative slowdown versus the
  /// fastest front point in exchange for a cheaper allocation (the "right
  /// amount of resources" knee of Fig. 17).
  void set_time_tolerance(double tolerance) { time_tolerance_ = tolerance; }

 private:
  mutable Mutex mu_{LockRank::kResourceProvisioner, "provisioner.front"};
  Limits limits_;
  Nsga2::Options ga_;
  double time_tolerance_ = 0.05;
  std::vector<FrontPoint> last_front_ GUARDED_BY(mu_);
};

}  // namespace ires

#endif  // IRES_PROVISIONING_RESOURCE_PROVISIONER_H_
