#ifndef IRES_PROVISIONING_RESOURCE_PROVISIONER_H_
#define IRES_PROVISIONING_RESOURCE_PROVISIONER_H_

#include <mutex>

#include "planner/dp_planner.h"
#include "provisioning/nsga2.h"

namespace ires {

/// Elastic resource provisioning (deliverable §2.2.4): searches the
/// (#containers, cores/container, GB/container) space with NSGA-II over the
/// engine's cost/performance model, producing the Pareto front of
/// (execution time, execution cost) and picking the front point that best
/// serves the user policy. Centralized engines are pinned to one container.
class NsgaResourceProvisioner : public ResourceAdvisor {
 public:
  struct Limits {
    int max_containers = 8;
    int max_cores_per_container = 4;
    double max_memory_gb_per_container = 6.75;
  };

  NsgaResourceProvisioner() = default;
  /// `ga.pool` may be set to parallelize objective evaluation: the
  /// objective here is SimulatedEngine::Estimate on a copied request, which
  /// is safe for concurrent calls. Results stay bit-identical to serial.
  NsgaResourceProvisioner(Limits limits, Nsga2::Options ga)
      : limits_(limits), ga_(ga) {}

  /// Thread-safe: concurrent planners serialize on an internal mutex (the
  /// GA mutates per-call search state and last_front()).
  Resources Advise(const SimulatedEngine& engine,
                   const OperatorRunRequest& request,
                   const OptimizationPolicy& policy) override;

  /// Exposes the full Pareto front for the last Advise call (time, cost)
  /// pairs with their decoded resources; used by the Fig. 17 bench.
  struct FrontPoint {
    Resources resources;
    double seconds = 0.0;
    double cost = 0.0;
  };
  const std::vector<FrontPoint>& last_front() const { return last_front_; }

  /// When minimizing time, accept up to this relative slowdown versus the
  /// fastest front point in exchange for a cheaper allocation (the "right
  /// amount of resources" knee of Fig. 17).
  void set_time_tolerance(double tolerance) { time_tolerance_ = tolerance; }

 private:
  std::mutex mu_;
  Limits limits_;
  Nsga2::Options ga_;
  double time_tolerance_ = 0.05;
  std::vector<FrontPoint> last_front_;
};

}  // namespace ires

#endif  // IRES_PROVISIONING_RESOURCE_PROVISIONER_H_
