#ifndef IRES_PROVISIONING_NSGA2_H_
#define IRES_PROVISIONING_NSGA2_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "modeling/linalg.h"
#include "threading/task_scheduler.h"

namespace ires {

/// NSGA-II (Deb et al. 2002): the elitist multi-objective genetic algorithm
/// the IReS resource-provisioning module builds on (deliverable §2.2.4, via
/// the MOEA framework). All objectives are minimized. Real-coded genes with
/// simulated binary crossover (SBX) and polynomial mutation.
class Nsga2 {
 public:
  struct Options {
    int population = 40;
    int generations = 60;
    double crossover_probability = 0.9;
    /// Per-gene mutation probability; <0 = 1/num_genes.
    double mutation_probability = -1.0;
    double sbx_eta = 15.0;        // SBX distribution index
    double mutation_eta = 20.0;   // polynomial mutation index
    uint64_t seed = 2002;
    /// When set, each generation's objective evaluations fan out across
    /// the scheduler. Bit-identical to the serial run: evaluation never
    /// consumes the RNG, so genes are still produced by one serial RNG
    /// stream and only the (pure) objective calls run concurrently. The
    /// evaluate callback must then be thread-safe.
    TaskScheduler* scheduler = nullptr;
  };

  struct Individual {
    Vector genes;
    Vector objectives;
    int rank = 0;
    double crowding = 0.0;
  };

  /// Objective function: genes -> objective vector (all minimized). Must
  /// return the same arity for every input.
  using Evaluate = std::function<Vector(const Vector&)>;

  Nsga2() = default;
  explicit Nsga2(Options options) : options_(options) {}

  /// Runs the GA over box-bounded genes and returns the final population's
  /// first non-dominated front, sorted by the first objective.
  std::vector<Individual> Optimize(
      const std::vector<std::pair<double, double>>& bounds,
      const Evaluate& evaluate) const;

  /// True when `a` Pareto-dominates `b` (<= everywhere, < somewhere).
  static bool Dominates(const Vector& a, const Vector& b);

  /// Fast non-dominated sort: assigns ranks (0 = best front) and returns the
  /// fronts as index lists.
  static std::vector<std::vector<int>> NonDominatedSort(
      std::vector<Individual>* population);

  /// Crowding-distance assignment within one front.
  static void AssignCrowding(std::vector<Individual>* population,
                             const std::vector<int>& front);

 private:
  Options options_;
};

}  // namespace ires

#endif  // IRES_PROVISIONING_NSGA2_H_
