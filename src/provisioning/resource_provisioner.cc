#include "provisioning/resource_provisioner.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ires {

namespace {

Resources Decode(const Vector& genes, bool centralized,
                 const NsgaResourceProvisioner::Limits& limits) {
  Resources r;
  r.containers = centralized
                     ? 1
                     : std::clamp(static_cast<int>(std::lround(genes[0])), 1,
                                  limits.max_containers);
  r.cores = std::clamp(static_cast<int>(std::lround(genes[1])), 1,
                       limits.max_cores_per_container);
  r.memory_gb = std::clamp(genes[2], 0.5, limits.max_memory_gb_per_container);
  return r;
}

}  // namespace

Resources NsgaResourceProvisioner::Advise(const SimulatedEngine& engine,
                                          const OperatorRunRequest& request,
                                          const OptimizationPolicy& policy) {
  const bool centralized = engine.kind() == EngineKind::kCentralized;
  const std::vector<std::pair<double, double>> bounds = {
      {1.0, static_cast<double>(limits_.max_containers)},
      {1.0, static_cast<double>(limits_.max_cores_per_container)},
      {0.5, limits_.max_memory_gb_per_container},
  };

  auto evaluate = [&](const Vector& genes) -> Vector {
    OperatorRunRequest probe = request;
    probe.resources = Decode(genes, centralized, limits_);
    auto estimate = engine.Estimate(probe);
    if (!estimate.ok()) {
      // Infeasible allocation: push it to the far corner of both objectives.
      return {1e12, 1e12};
    }
    return {estimate.value().exec_seconds, estimate.value().cost};
  };

  // The GA — including its possibly pooled objective evaluation, which
  // blocks in TaskGroup::Wait — runs entirely on locals. mu_ is only taken
  // at the end to publish the front: a ranked lock must never be held
  // across Wait (caller-helps waiting executes arbitrary unrelated tasks).
  Nsga2 ga(ga_);
  std::vector<Nsga2::Individual> raw_front = ga.Optimize(bounds, evaluate);

  std::vector<FrontPoint> front;
  for (const Nsga2::Individual& ind : raw_front) {
    if (ind.objectives[0] >= 1e12) continue;  // infeasible sentinel
    FrontPoint point;
    point.resources = Decode(ind.genes, centralized, limits_);
    point.seconds = ind.objectives[0];
    point.cost = ind.objectives[1];
    front.push_back(point);
  }
  {
    MutexLock lock(mu_);
    last_front_ = front;
  }
  if (front.empty()) return request.resources;  // keep the default

  switch (policy.objective) {
    case OptimizationPolicy::Objective::kMinimizeCost: {
      const auto best = std::min_element(
          front.begin(), front.end(),
          [](const FrontPoint& a, const FrontPoint& b) {
            return a.cost < b.cost;
          });
      return best->resources;
    }
    case OptimizationPolicy::Objective::kMinimizeTime: {
      // Fastest point, then the cheapest allocation within the tolerance
      // band — the model's local minima flatten out once parallelism stops
      // paying, so this lands on the knee instead of max resources.
      double best_time = std::numeric_limits<double>::infinity();
      for (const FrontPoint& p : front) {
        best_time = std::min(best_time, p.seconds);
      }
      const double limit = best_time * (1.0 + time_tolerance_);
      const FrontPoint* chosen = nullptr;
      for (const FrontPoint& p : front) {
        if (p.seconds > limit) continue;
        if (chosen == nullptr || p.cost < chosen->cost) chosen = &p;
      }
      return chosen != nullptr ? chosen->resources : request.resources;
    }
    case OptimizationPolicy::Objective::kWeighted: {
      const auto best = std::min_element(
          front.begin(), front.end(),
          [&](const FrontPoint& a, const FrontPoint& b) {
            return policy.Metric(a.seconds, a.cost) <
                   policy.Metric(b.seconds, b.cost);
          });
      return best->resources;
    }
  }
  return request.resources;
}

}  // namespace ires
