#include "provisioning/nsga2.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ires {

bool Nsga2::Dominates(const Vector& a, const Vector& b) {
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::vector<int>> Nsga2::NonDominatedSort(
    std::vector<Individual>* population) {
  const int n = static_cast<int>(population->size());
  std::vector<std::vector<int>> dominated(n);
  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<int>> fronts(1);

  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      if (p == q) continue;
      if (Dominates((*population)[p].objectives, (*population)[q].objectives)) {
        dominated[p].push_back(q);
      } else if (Dominates((*population)[q].objectives,
                           (*population)[p].objectives)) {
        ++domination_count[p];
      }
    }
    if (domination_count[p] == 0) {
      (*population)[p].rank = 0;
      fronts[0].push_back(p);
    }
  }
  int current = 0;
  while (!fronts[current].empty()) {
    std::vector<int> next;
    for (int p : fronts[current]) {
      for (int q : dominated[p]) {
        if (--domination_count[q] == 0) {
          (*population)[q].rank = current + 1;
          next.push_back(q);
        }
      }
    }
    ++current;
    fronts.push_back(std::move(next));
  }
  fronts.pop_back();  // the trailing empty front
  return fronts;
}

void Nsga2::AssignCrowding(std::vector<Individual>* population,
                           const std::vector<int>& front) {
  if (front.empty()) return;
  const size_t objectives = (*population)[front[0]].objectives.size();
  for (int idx : front) (*population)[idx].crowding = 0.0;
  std::vector<int> order = front;
  for (size_t m = 0; m < objectives; ++m) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return (*population)[a].objectives[m] < (*population)[b].objectives[m];
    });
    const double lo = (*population)[order.front()].objectives[m];
    const double hi = (*population)[order.back()].objectives[m];
    (*population)[order.front()].crowding =
        std::numeric_limits<double>::infinity();
    (*population)[order.back()].crowding =
        std::numeric_limits<double>::infinity();
    if (hi - lo < 1e-12) continue;
    for (size_t i = 1; i + 1 < order.size(); ++i) {
      (*population)[order[i]].crowding +=
          ((*population)[order[i + 1]].objectives[m] -
           (*population)[order[i - 1]].objectives[m]) /
          (hi - lo);
    }
  }
}

namespace {

// Binary tournament on (rank, crowding).
int Tournament(const std::vector<Nsga2::Individual>& pop, Rng* rng) {
  const int a = static_cast<int>(rng->UniformInt(0, pop.size() - 1));
  const int b = static_cast<int>(rng->UniformInt(0, pop.size() - 1));
  if (pop[a].rank != pop[b].rank) return pop[a].rank < pop[b].rank ? a : b;
  return pop[a].crowding >= pop[b].crowding ? a : b;
}

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

std::vector<Nsga2::Individual> Nsga2::Optimize(
    const std::vector<std::pair<double, double>>& bounds,
    const Evaluate& evaluate) const {
  Rng rng(options_.seed);
  const size_t genes = bounds.size();
  const double mutation_p = options_.mutation_probability > 0
                                ? options_.mutation_probability
                                : 1.0 / static_cast<double>(genes);

  // Objective evaluation is a pure function of the genes and never touches
  // the RNG, so it can run as a parallel batch after the (serial, RNG-
  // consuming) gene generation without perturbing the random stream.
  auto evaluate_all = [&](std::vector<Individual>* individuals) {
    ParallelFor(options_.scheduler, individuals->size(), [&](size_t i) {
      (*individuals)[i].objectives = evaluate((*individuals)[i].genes);
    });
  };

  std::vector<Individual> population;
  population.reserve(options_.population);
  for (int i = 0; i < options_.population; ++i) {
    Individual ind;
    ind.genes.resize(genes);
    for (size_t g = 0; g < genes; ++g) {
      ind.genes[g] = rng.Uniform(bounds[g].first, bounds[g].second);
    }
    population.push_back(std::move(ind));
  }
  evaluate_all(&population);
  {
    auto fronts = NonDominatedSort(&population);
    for (const auto& front : fronts) AssignCrowding(&population, front);
  }

  for (int gen = 0; gen < options_.generations; ++gen) {
    // Offspring via tournament selection + SBX + polynomial mutation.
    std::vector<Individual> offspring;
    offspring.reserve(options_.population);
    while (static_cast<int>(offspring.size()) < options_.population) {
      const Individual& p1 = population[Tournament(population, &rng)];
      const Individual& p2 = population[Tournament(population, &rng)];
      Vector c1 = p1.genes, c2 = p2.genes;
      if (rng.Bernoulli(options_.crossover_probability)) {
        for (size_t g = 0; g < genes; ++g) {
          // SBX per gene.
          const double u = rng.Uniform();
          const double beta =
              u <= 0.5 ? std::pow(2.0 * u, 1.0 / (options_.sbx_eta + 1.0))
                       : std::pow(1.0 / (2.0 * (1.0 - u)),
                                  1.0 / (options_.sbx_eta + 1.0));
          const double x1 = p1.genes[g], x2 = p2.genes[g];
          c1[g] = Clamp(0.5 * ((1 + beta) * x1 + (1 - beta) * x2),
                        bounds[g].first, bounds[g].second);
          c2[g] = Clamp(0.5 * ((1 - beta) * x1 + (1 + beta) * x2),
                        bounds[g].first, bounds[g].second);
        }
      }
      for (Vector* child : {&c1, &c2}) {
        for (size_t g = 0; g < genes; ++g) {
          if (!rng.Bernoulli(mutation_p)) continue;
          const double u = rng.Uniform();
          const double span = bounds[g].second - bounds[g].first;
          const double delta =
              u < 0.5
                  ? std::pow(2.0 * u, 1.0 / (options_.mutation_eta + 1.0)) - 1.0
                  : 1.0 - std::pow(2.0 * (1.0 - u),
                                   1.0 / (options_.mutation_eta + 1.0));
          (*child)[g] = Clamp((*child)[g] + delta * span, bounds[g].first,
                              bounds[g].second);
        }
        Individual ind;
        ind.genes = *child;
        offspring.push_back(std::move(ind));
        if (static_cast<int>(offspring.size()) >= options_.population) break;
      }
    }
    evaluate_all(&offspring);

    // Elitist environmental selection over parents + offspring.
    std::vector<Individual> combined = std::move(population);
    combined.insert(combined.end(),
                    std::make_move_iterator(offspring.begin()),
                    std::make_move_iterator(offspring.end()));
    auto fronts = NonDominatedSort(&combined);
    for (const auto& front : fronts) AssignCrowding(&combined, front);

    population.clear();
    for (const auto& front : fronts) {
      if (static_cast<int>(population.size() + front.size()) <=
          options_.population) {
        for (int idx : front) population.push_back(combined[idx]);
      } else {
        std::vector<int> sorted = front;
        std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
          return combined[a].crowding > combined[b].crowding;
        });
        for (int idx : sorted) {
          if (static_cast<int>(population.size()) >= options_.population) {
            break;
          }
          population.push_back(combined[idx]);
        }
      }
      if (static_cast<int>(population.size()) >= options_.population) break;
    }
  }

  // Final first front.
  auto fronts = NonDominatedSort(&population);
  std::vector<Individual> front;
  for (int idx : fronts[0]) front.push_back(population[idx]);
  std::sort(front.begin(), front.end(),
            [](const Individual& a, const Individual& b) {
              return a.objectives[0] < b.objectives[0];
            });
  return front;
}

}  // namespace ires
