#include "modeling/model_selection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "modeling/kernel_models.h"
#include "modeling/linear_models.h"
#include "modeling/neural.h"
#include "modeling/tree_models.h"

namespace ires {

std::vector<std::unique_ptr<Model>> DefaultModelZoo() {
  std::vector<std::unique_ptr<Model>> zoo;
  zoo.push_back(std::make_unique<GaussianProcess>());
  zoo.push_back(std::make_unique<MultilayerPerceptron>());
  zoo.push_back(std::make_unique<LeastMedianSquares>());
  zoo.push_back(std::make_unique<Bagging>());
  zoo.push_back(std::make_unique<RandomSubspace>());
  zoo.push_back(std::make_unique<RegressionByDiscretization>());
  zoo.push_back(std::make_unique<RbfNetwork>());
  // Complementary baselines kept in the library alongside the WEKA set.
  zoo.push_back(std::make_unique<LinearRegression>());
  zoo.push_back(std::make_unique<PolynomialRegression>(2));
  return zoo;
}

Result<std::unique_ptr<Model>> CrossValidationSelector::SelectAndFit(
    const Matrix& x, const Vector& y,
    std::vector<std::unique_ptr<Model>> candidates,
    SelectionReport* report) const {
  const size_t n = x.rows();
  if (n == 0) return Status::InvalidArgument("no training samples");
  if (candidates.empty()) candidates = DefaultModelZoo();

  const int folds = std::max(2, std::min<int>(folds_, static_cast<int>(n)));
  Rng rng(seed_);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);

  double best_rmse = std::numeric_limits<double>::infinity();
  size_t best_index = 0;
  if (report != nullptr) report->per_model_rmse.clear();

  for (size_t m = 0; m < candidates.size(); ++m) {
    double total_sq = 0.0;
    size_t total_count = 0;
    bool failed = false;
    for (int fold = 0; fold < folds && !failed; ++fold) {
      Matrix train_x, test_x;
      Vector train_y, test_y;
      for (size_t i = 0; i < n; ++i) {
        const bool in_test =
            static_cast<int>(i % static_cast<size_t>(folds)) == fold;
        if (in_test) {
          test_x.AppendRow(x.Row(order[i]));
          test_y.push_back(y[order[i]]);
        } else {
          train_x.AppendRow(x.Row(order[i]));
          train_y.push_back(y[order[i]]);
        }
      }
      if (train_x.rows() == 0 || test_x.rows() == 0) continue;
      std::unique_ptr<Model> fold_model = candidates[m]->Clone();
      if (!fold_model->Fit(train_x, train_y).ok()) {
        failed = true;
        break;
      }
      for (size_t i = 0; i < test_x.rows(); ++i) {
        const double err = fold_model->Predict(test_x.Row(i)) - test_y[i];
        total_sq += err * err;
        ++total_count;
      }
    }
    if (failed || total_count == 0) {
      if (report != nullptr) {
        report->per_model_rmse.emplace_back(
            candidates[m]->name(), std::numeric_limits<double>::infinity());
      }
      continue;
    }
    const double rmse =
        std::sqrt(total_sq / static_cast<double>(total_count));
    if (report != nullptr) {
      report->per_model_rmse.emplace_back(candidates[m]->name(), rmse);
    }
    if (rmse < best_rmse) {
      best_rmse = rmse;
      best_index = m;
    }
  }
  if (!std::isfinite(best_rmse)) {
    return Status::FailedPrecondition("no candidate model could be fitted");
  }

  std::unique_ptr<Model> winner = candidates[best_index]->Clone();
  IRES_RETURN_IF_ERROR(winner->Fit(x, y));
  if (report != nullptr) {
    report->best_model = winner->name();
    report->best_cv_rmse = best_rmse;
  }
  return winner;
}

}  // namespace ires
