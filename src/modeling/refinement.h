#ifndef IRES_MODELING_REFINEMENT_H_
#define IRES_MODELING_REFINEMENT_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "modeling/model.h"
#include "modeling/model_selection.h"

namespace ires {

/// Online estimator for one (operator, engine, metric) triple — the Model
/// Refinement module of deliverable §2.2.2. It accumulates observations from
/// real executions, refits (with cross-validated model re-selection) on a
/// sliding window, and exposes the estimation-error trace that Figure 16
/// plots. The sliding window is what lets the models track infrastructure
/// changes instead of being poisoned by stale samples forever.
class OnlineEstimator {
 public:
  struct Options {
    /// Maximum number of most-recent samples retained for fitting.
    size_t window = 256;
    /// Refit after this many new samples since the last fit.
    size_t refit_interval = 5;
    /// Minimum samples before the first fit; predictions before that return
    /// the running mean (high error by construction — "no knowledge").
    size_t min_samples = 5;
    int cv_folds = 3;
    uint64_t seed = 43;
  };

  OnlineEstimator() : OnlineEstimator(Options{}) {}
  explicit OnlineEstimator(Options options) : options_(options) {}

  /// Predicted metric value for the given configuration.
  double Predict(const Vector& features) const;

  /// Relative error the current model would make on (features, actual):
  /// |pred - actual| / max(|actual|, eps). This is computed *before* the
  /// sample is absorbed, i.e. it is an honest out-of-sample error.
  double RelativeError(const Vector& features, double actual) const;

  /// Records an observed execution and refits when due. Returns the
  /// pre-absorption relative error (the Figure 16 y-axis).
  double Observe(const Vector& features, double actual);

  /// Forces an immediate refit (used after bulk offline profiling).
  Status Refit();

  /// Drops every retained sample and the fitted model — the "discard models
  /// and start from scratch" strategy the paper argues against.
  void Reset();

  size_t sample_count() const { return features_.size(); }
  bool has_model() const { return model_ != nullptr; }
  std::string model_name() const {
    return model_ ? model_->name() : "(none)";
  }

  /// One retained observation (for persistence).
  struct Sample {
    Vector features;
    double target = 0.0;
  };

  /// Snapshot of the retained window, oldest first.
  std::vector<Sample> ExportSamples() const;

  /// Bulk-loads samples (e.g. from a saved model library) and refits once.
  /// Appends to whatever is already retained, window rules applying.
  Status ImportSamples(const std::vector<Sample>& samples);

 private:
  Options options_;
  std::deque<Vector> features_;
  std::deque<double> targets_;
  size_t since_fit_ = 0;
  double running_mean_ = 0.0;
  std::unique_ptr<Model> model_;
};

}  // namespace ires

#endif  // IRES_MODELING_REFINEMENT_H_
