#ifndef IRES_MODELING_TREE_MODELS_H_
#define IRES_MODELING_TREE_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "modeling/model.h"

namespace ires {

/// CART-style regression tree (variance-reduction splits). Serves as the
/// base learner for the Bagging and RandomSubspace ensembles, mirroring
/// WEKA's REPTree role in the original platform.
class RegressionTree : public Model {
 public:
  struct Options {
    int max_depth = 8;
    int min_samples_leaf = 3;
    /// When non-empty, splits only consider these feature indices
    /// (used by RandomSubspace).
    std::vector<size_t> feature_subset;
  };

  RegressionTree() : RegressionTree(Options{}) {}
  explicit RegressionTree(Options options) : options_(std::move(options)) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  double Predict(const Vector& x) const override;
  std::string name() const override { return "RegressionTree"; }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<RegressionTree>(options_);
  }

  int node_count() const { return static_cast<int>(nodes_.size()); }

 private:
  struct TreeNode {
    int feature = -1;      // -1 = leaf
    double threshold = 0.0;
    double value = 0.0;    // leaf prediction
    int left = -1, right = -1;
  };

  int Build(const Matrix& x, const Vector& y, std::vector<size_t>* indices,
            size_t begin, size_t end, int depth);

  Options options_;
  std::vector<TreeNode> nodes_;
};

/// Bagging (Breiman 1996): an ensemble of base regressors trained on
/// bootstrap resamples; predictions are averaged.
class Bagging : public Model {
 public:
  Bagging(int members = 10, uint64_t seed = 31)
      : members_(members), seed_(seed) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  double Predict(const Vector& x) const override;
  std::string name() const override { return "Bagging"; }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<Bagging>(members_, seed_);
  }

 private:
  int members_;
  uint64_t seed_;
  std::vector<RegressionTree> ensemble_;
};

/// Random Subspace method (Ho 1998): each ensemble member sees a random
/// subset of the features; predictions are averaged.
class RandomSubspace : public Model {
 public:
  RandomSubspace(int members = 10, double subspace_fraction = 0.5,
                 uint64_t seed = 37)
      : members_(members),
        subspace_fraction_(subspace_fraction),
        seed_(seed) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  double Predict(const Vector& x) const override;
  std::string name() const override { return "RandomSubspace"; }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<RandomSubspace>(members_, subspace_fraction_,
                                            seed_);
  }

 private:
  int members_;
  double subspace_fraction_;
  uint64_t seed_;
  std::vector<RegressionTree> ensemble_;
};

/// Regression by Discretization: the continuous target is binned into equal
/// frequency intervals, a classifier tree predicts the bin, and the bin's
/// mean target value is returned.
class RegressionByDiscretization : public Model {
 public:
  explicit RegressionByDiscretization(int bins = 10) : bins_(bins) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  double Predict(const Vector& x) const override;
  std::string name() const override { return "RegressionByDiscretization"; }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<RegressionByDiscretization>(bins_);
  }

 private:
  int bins_;
  RegressionTree tree_;   // regresses onto bin means directly
};

}  // namespace ires

#endif  // IRES_MODELING_TREE_MODELS_H_
