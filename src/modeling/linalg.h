#ifndef IRES_MODELING_LINALG_H_
#define IRES_MODELING_LINALG_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace ires {

using Vector = std::vector<double>;

/// Minimal row-major dense matrix for the estimation models. Sized for the
/// profiling workloads (tens of features, hundreds of samples), not BLAS.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Copies row `r` out as a Vector.
  Vector Row(size_t r) const;

  /// Appends a row; the first row fixes the column count.
  void AppendRow(const Vector& row);

  static Matrix Identity(size_t n);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for square A by Gaussian elimination with partial
/// pivoting. Fails with FailedPrecondition on (near-)singular systems.
Result<Vector> SolveLinearSystem(Matrix a, Vector b);

/// Solves the (ridge-regularized) least squares problem
///   min ||X w - y||² + lambda ||w||²
/// via the normal equations. `weights` (optional, per-sample) scales each
/// row's contribution.
Result<Vector> SolveLeastSquares(const Matrix& x, const Vector& y,
                                 double lambda = 1e-8,
                                 const Vector* weights = nullptr);

double Dot(const Vector& a, const Vector& b);
double Mean(const Vector& v);
double Variance(const Vector& v);

}  // namespace ires

#endif  // IRES_MODELING_LINALG_H_
