#include "modeling/model.h"

#include <cmath>

namespace ires {

double Rmse(const Model& model, const Matrix& x, const Vector& y) {
  if (x.rows() == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < x.rows(); ++i) {
    const double err = model.Predict(x.Row(i)) - y[i];
    sum += err * err;
  }
  return std::sqrt(sum / static_cast<double>(x.rows()));
}

double MeanRelativeError(const Model& model, const Matrix& x,
                         const Vector& y) {
  if (x.rows() == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < x.rows(); ++i) {
    const double err = std::fabs(model.Predict(x.Row(i)) - y[i]);
    sum += err / std::max(std::fabs(y[i]), 1e-9);
  }
  return sum / static_cast<double>(x.rows());
}

}  // namespace ires
