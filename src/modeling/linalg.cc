#include "modeling/linalg.h"

#include <cmath>
#include <cstdlib>

namespace ires {

Vector Matrix::Row(size_t r) const {
  Vector row(cols_);
  for (size_t c = 0; c < cols_; ++c) row[c] = (*this)(r, c);
  return row;
}

void Matrix::AppendRow(const Vector& row) {
  if (rows_ == 0) cols_ = row.size();
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Result<Vector> SolveLinearSystem(Matrix a, Vector b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem: shape mismatch");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > best) {
        best = std::fabs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition("singular linear system");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  Vector x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t c = i + 1; c < n; ++c) sum -= a(i, c) * x[c];
    x[i] = sum / a(i, i);
  }
  return x;
}

Result<Vector> SolveLeastSquares(const Matrix& x, const Vector& y,
                                 double lambda, const Vector* weights) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (y.size() != n) {
    return Status::InvalidArgument("SolveLeastSquares: y size mismatch");
  }
  Matrix xtx(d, d);
  Vector xty(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double w = weights != nullptr ? (*weights)[i] : 1.0;
    for (size_t a = 0; a < d; ++a) {
      const double xa = x(i, a);
      xty[a] += w * xa * y[i];
      for (size_t b = a; b < d; ++b) {
        xtx(a, b) += w * xa * x(i, b);
      }
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
    xtx(a, a) += lambda;
  }
  return SolveLinearSystem(std::move(xtx), std::move(xty));
}

double Dot(const Vector& a, const Vector& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Mean(const Vector& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const Vector& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

}  // namespace ires
