#include "modeling/tree_models.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace ires {

Status RegressionTree::Fit(const Matrix& x, const Vector& y) {
  if (x.rows() == 0) return Status::InvalidArgument("no training samples");
  nodes_.clear();
  std::vector<size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0);
  Build(x, y, &indices, 0, indices.size(), 0);
  return Status::OK();
}

int RegressionTree::Build(const Matrix& x, const Vector& y,
                          std::vector<size_t>* indices, size_t begin,
                          size_t end, int depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  const size_t n = end - begin;
  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    sum += y[(*indices)[i]];
    sum_sq += y[(*indices)[i]] * y[(*indices)[i]];
  }
  const double mean = sum / static_cast<double>(n);
  const double sse = sum_sq - sum * mean;
  nodes_[node_id].value = mean;

  if (depth >= options_.max_depth ||
      n < 2 * static_cast<size_t>(options_.min_samples_leaf) || sse < 1e-12) {
    return node_id;
  }

  // Candidate features: all, or the configured subspace.
  std::vector<size_t> features;
  if (options_.feature_subset.empty()) {
    features.resize(x.cols());
    std::iota(features.begin(), features.end(), 0);
  } else {
    features = options_.feature_subset;
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = sse;  // must strictly improve on the parent SSE
  for (size_t f : features) {
    if (f >= x.cols()) continue;
    std::sort(indices->begin() + begin, indices->begin() + end,
              [&](size_t a, size_t b) { return x(a, f) < x(b, f); });
    double left_sum = 0.0, left_sq = 0.0;
    for (size_t i = begin; i + 1 < end; ++i) {
      const double yi = y[(*indices)[i]];
      left_sum += yi;
      left_sq += yi * yi;
      const size_t left_n = i - begin + 1;
      const size_t right_n = n - left_n;
      if (left_n < static_cast<size_t>(options_.min_samples_leaf) ||
          right_n < static_cast<size_t>(options_.min_samples_leaf)) {
        continue;
      }
      const double xa = x((*indices)[i], f);
      const double xb = x((*indices)[i + 1], f);
      if (xa == xb) continue;  // cannot split between equal values
      const double right_sum = sum - left_sum;
      const double right_sq = sum_sq - left_sq;
      const double left_sse = left_sq - left_sum * left_sum / left_n;
      const double right_sse = right_sq - right_sum * right_sum / right_n;
      const double score = left_sse + right_sse;
      if (score < best_score - 1e-12) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (xa + xb);
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition in place around the chosen threshold.
  auto mid_it = std::partition(
      indices->begin() + begin, indices->begin() + end, [&](size_t idx) {
        return x(idx, static_cast<size_t>(best_feature)) <= best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - indices->begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = Build(x, y, indices, begin, mid, depth + 1);
  const int right = Build(x, y, indices, mid, end, depth + 1);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::Predict(const Vector& x) const {
  if (nodes_.empty()) return 0.0;
  int id = 0;
  while (nodes_[id].feature >= 0) {
    const size_t f = static_cast<size_t>(nodes_[id].feature);
    const double v = f < x.size() ? x[f] : 0.0;
    id = v <= nodes_[id].threshold ? nodes_[id].left : nodes_[id].right;
  }
  return nodes_[id].value;
}

Status Bagging::Fit(const Matrix& x, const Vector& y) {
  const size_t n = x.rows();
  if (n == 0) return Status::InvalidArgument("no training samples");
  Rng rng(seed_);
  ensemble_.clear();
  for (int m = 0; m < members_; ++m) {
    Matrix bx;
    Vector by;
    for (size_t i = 0; i < n; ++i) {
      const size_t pick = static_cast<size_t>(rng.UniformInt(0, n - 1));
      bx.AppendRow(x.Row(pick));
      by.push_back(y[pick]);
    }
    RegressionTree tree;
    IRES_RETURN_IF_ERROR(tree.Fit(bx, by));
    ensemble_.push_back(std::move(tree));
  }
  return Status::OK();
}

double Bagging::Predict(const Vector& x) const {
  if (ensemble_.empty()) return 0.0;
  double sum = 0.0;
  for (const RegressionTree& t : ensemble_) sum += t.Predict(x);
  return sum / static_cast<double>(ensemble_.size());
}

Status RandomSubspace::Fit(const Matrix& x, const Vector& y) {
  const size_t n = x.rows();
  if (n == 0) return Status::InvalidArgument("no training samples");
  const size_t d = x.cols();
  const size_t subspace =
      std::max<size_t>(1, static_cast<size_t>(subspace_fraction_ * d + 0.5));
  Rng rng(seed_);
  ensemble_.clear();
  std::vector<size_t> all(d);
  std::iota(all.begin(), all.end(), 0);
  for (int m = 0; m < members_; ++m) {
    rng.Shuffle(&all);
    RegressionTree::Options options;
    options.feature_subset.assign(all.begin(), all.begin() + subspace);
    RegressionTree tree(options);
    IRES_RETURN_IF_ERROR(tree.Fit(x, y));
    ensemble_.push_back(std::move(tree));
  }
  return Status::OK();
}

double RandomSubspace::Predict(const Vector& x) const {
  if (ensemble_.empty()) return 0.0;
  double sum = 0.0;
  for (const RegressionTree& t : ensemble_) sum += t.Predict(x);
  return sum / static_cast<double>(ensemble_.size());
}

Status RegressionByDiscretization::Fit(const Matrix& x, const Vector& y) {
  const size_t n = x.rows();
  if (n == 0) return Status::InvalidArgument("no training samples");
  // Equal-frequency binning of the target, then regress onto bin means: the
  // tree's leaves end up predicting a bin representative, which is exactly
  // the regression-by-discretization output.
  Vector sorted = y;
  std::sort(sorted.begin(), sorted.end());
  const int bins = std::min<int>(bins_, static_cast<int>(n));
  Vector binned(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t rank =
        std::lower_bound(sorted.begin(), sorted.end(), y[i]) - sorted.begin();
    int bin = static_cast<int>(rank * bins / n);
    bin = std::min(bin, bins - 1);
    // Bin representative: mean of the targets inside the bin.
    const size_t lo = static_cast<size_t>(bin) * n / bins;
    const size_t hi = static_cast<size_t>(bin + 1) * n / bins;
    double sum = 0.0;
    for (size_t j = lo; j < hi; ++j) sum += sorted[j];
    binned[i] = sum / static_cast<double>(std::max<size_t>(1, hi - lo));
  }
  return tree_.Fit(x, binned);
}

double RegressionByDiscretization::Predict(const Vector& x) const {
  return tree_.Predict(x);
}

}  // namespace ires
