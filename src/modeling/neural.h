#ifndef IRES_MODELING_NEURAL_H_
#define IRES_MODELING_NEURAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "modeling/model.h"

namespace ires {

/// Multilayer perceptron regressor (the paper's neural-network estimator):
/// one tanh hidden layer, linear output, trained with mini-batch SGD and
/// momentum. Inputs and target are standardized internally so the default
/// hyperparameters work across metrics with very different scales.
class MultilayerPerceptron : public Model {
 public:
  struct Options {
    int hidden_units = 16;
    int epochs = 300;
    double learning_rate = 0.01;
    double momentum = 0.9;
    int batch_size = 16;
    uint64_t seed = 29;
  };

  MultilayerPerceptron() : MultilayerPerceptron(Options{}) {}
  explicit MultilayerPerceptron(Options options) : options_(options) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  double Predict(const Vector& x) const override;
  std::string name() const override { return "MultilayerPerceptron"; }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<MultilayerPerceptron>(options_);
  }

 private:
  Vector Standardize(const Vector& x) const;

  Options options_;
  // Weights: hidden [h][d+1] (last = bias), output [h+1] (last = bias).
  std::vector<Vector> hidden_weights_;
  Vector output_weights_;
  Vector feature_mean_, feature_std_;
  double y_mean_ = 0.0, y_std_ = 1.0;
};

}  // namespace ires

#endif  // IRES_MODELING_NEURAL_H_
