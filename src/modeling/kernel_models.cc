#include "modeling/kernel_models.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ires {

namespace {

// Computes per-column mean and standard deviation (std clamped away from 0).
void ColumnStats(const Matrix& x, Vector* mean, Vector* std) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  mean->assign(d, 0.0);
  std->assign(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) (*mean)[c] += x(r, c);
  }
  for (size_t c = 0; c < d; ++c) (*mean)[c] /= static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) {
      const double diff = x(r, c) - (*mean)[c];
      (*std)[c] += diff * diff;
    }
  }
  for (size_t c = 0; c < d; ++c) {
    (*std)[c] = std::sqrt((*std)[c] / static_cast<double>(n));
    if ((*std)[c] < 1e-9) (*std)[c] = 1.0;
  }
}

Vector StandardizeRow(const Vector& x, const Vector& mean, const Vector& std) {
  Vector out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const double m = i < mean.size() ? mean[i] : 0.0;
    const double s = i < std.size() ? std[i] : 1.0;
    out[i] = (x[i] - m) / s;
  }
  return out;
}

double SquaredDistance(const Vector& a, const Vector& b) {
  double s = 0.0;
  const size_t d = std::min(a.size(), b.size());
  for (size_t i = 0; i < d; ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

}  // namespace

Vector GaussianProcess::Standardize(const Vector& x) const {
  return StandardizeRow(x, feature_mean_, feature_std_);
}

double GaussianProcess::Kernel(const Vector& a, const Vector& b) const {
  return std::exp(-SquaredDistance(a, b) /
                  (2.0 * length_scale_ * length_scale_));
}

Status GaussianProcess::Fit(const Matrix& x, const Vector& y) {
  const size_t n = x.rows();
  if (n == 0) return Status::InvalidArgument("no training samples");
  ColumnStats(x, &feature_mean_, &feature_std_);
  train_x_ = Matrix(n, x.cols());
  for (size_t r = 0; r < n; ++r) {
    Vector z = Standardize(x.Row(r));
    for (size_t c = 0; c < x.cols(); ++c) train_x_(r, c) = z[c];
  }
  y_mean_ = Mean(y);
  Vector centered(n);
  for (size_t i = 0; i < n; ++i) centered[i] = y[i] - y_mean_;

  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    const Vector ri = train_x_.Row(i);
    for (size_t j = i; j < n; ++j) {
      const double v = Kernel(ri, train_x_.Row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += noise_;
  }
  IRES_ASSIGN_OR_RETURN(alpha_, SolveLinearSystem(std::move(k), centered));
  return Status::OK();
}

double GaussianProcess::Predict(const Vector& x) const {
  if (alpha_.empty()) return y_mean_;
  const Vector z = Standardize(x);
  double out = y_mean_;
  for (size_t i = 0; i < train_x_.rows(); ++i) {
    out += alpha_[i] * Kernel(z, train_x_.Row(i));
  }
  return out;
}

Vector RbfNetwork::Activations(const Vector& x) const {
  const Vector z = StandardizeRow(x, feature_mean_, feature_std_);
  Vector act(center_points_.rows() + 1);
  for (size_t i = 0; i < center_points_.rows(); ++i) {
    act[i] = std::exp(-SquaredDistance(z, center_points_.Row(i)) /
                      (2.0 * width_ * width_));
  }
  act.back() = 1.0;  // bias
  return act;
}

Status RbfNetwork::Fit(const Matrix& x, const Vector& y) {
  const size_t n = x.rows();
  if (n == 0) return Status::InvalidArgument("no training samples");
  ColumnStats(x, &feature_mean_, &feature_std_);
  Matrix z(n, x.cols());
  for (size_t r = 0; r < n; ++r) {
    Vector row = StandardizeRow(x.Row(r), feature_mean_, feature_std_);
    for (size_t c = 0; c < x.cols(); ++c) z(r, c) = row[c];
  }

  const size_t k = std::min<size_t>(centers_, n);
  // k-means++ style seeding followed by Lloyd iterations.
  Rng rng(seed_);
  std::vector<size_t> seeds;
  seeds.push_back(static_cast<size_t>(rng.UniformInt(0, n - 1)));
  while (seeds.size() < k) {
    Vector dist(n, std::numeric_limits<double>::infinity());
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t s : seeds) {
        dist[i] = std::min(dist[i], SquaredDistance(z.Row(i), z.Row(s)));
      }
      total += dist[i];
    }
    double pick = rng.Uniform() * total;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      pick -= dist[i];
      if (pick <= 0) {
        chosen = i;
        break;
      }
    }
    seeds.push_back(chosen);
  }
  center_points_ = Matrix(k, x.cols());
  for (size_t c = 0; c < k; ++c) {
    for (size_t f = 0; f < x.cols(); ++f) center_points_(c, f) = z(seeds[c], f);
  }
  std::vector<size_t> assign(n, 0);
  for (int iter = 0; iter < 20; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        const double d = SquaredDistance(z.Row(i), center_points_.Row(c));
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    Matrix sums(k, x.cols());
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      ++counts[assign[i]];
      for (size_t f = 0; f < x.cols(); ++f) sums(assign[i], f) += z(i, f);
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (size_t f = 0; f < x.cols(); ++f) {
        center_points_(c, f) = sums(c, f) / static_cast<double>(counts[c]);
      }
    }
  }

  // Width: average inter-center distance (or 1 when a single center).
  if (k > 1) {
    double total = 0.0;
    int pairs = 0;
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = a + 1; b < k; ++b) {
        total += std::sqrt(
            SquaredDistance(center_points_.Row(a), center_points_.Row(b)));
        ++pairs;
      }
    }
    width_ = std::max(total / pairs, 1e-3);
  } else {
    width_ = 1.0;
  }

  // Linear readout over activations.
  Matrix design;
  for (size_t i = 0; i < n; ++i) {
    // Activations() standardizes internally, so pass the raw row.
    design.AppendRow(Activations(x.Row(i)));
  }
  IRES_ASSIGN_OR_RETURN(weights_, SolveLeastSquares(design, y, 1e-6));
  return Status::OK();
}

double RbfNetwork::Predict(const Vector& x) const {
  if (weights_.empty()) return 0.0;
  return Dot(Activations(x), weights_);
}

}  // namespace ires
