#include "modeling/linear_models.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ires {

Status LinearRegression::Fit(const Matrix& x, const Vector& y) {
  if (x.rows() == 0) return Status::InvalidArgument("no training samples");
  // Design matrix with a trailing 1-column for the intercept.
  Matrix design(x.rows(), x.cols() + 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) design(r, c) = x(r, c);
    design(r, x.cols()) = 1.0;
  }
  IRES_ASSIGN_OR_RETURN(Vector w, SolveLeastSquares(design, y, lambda_));
  intercept_ = w.back();
  w.pop_back();
  coef_ = std::move(w);
  return Status::OK();
}

double LinearRegression::Predict(const Vector& x) const {
  double out = intercept_;
  const size_t d = std::min(x.size(), coef_.size());
  for (size_t i = 0; i < d; ++i) out += coef_[i] * x[i];
  return out;
}

Status LeastMedianSquares::Fit(const Matrix& x, const Vector& y) {
  const size_t n = x.rows();
  if (n == 0) return Status::InvalidArgument("no training samples");
  const size_t d = x.cols();
  // Classic LMS uses elemental subsets: just enough points to determine a
  // fit, so that most trials are outlier-free.
  const size_t subsample = std::min(n, d + 2);

  Rng rng(seed_);
  double best_median = std::numeric_limits<double>::infinity();
  bool fitted = false;

  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;

  for (int trial = 0; trial < trials_; ++trial) {
    rng.Shuffle(&indices);
    Matrix sub_x(subsample, d);
    Vector sub_y(subsample);
    for (size_t i = 0; i < subsample; ++i) {
      for (size_t c = 0; c < d; ++c) sub_x(i, c) = x(indices[i], c);
      sub_y[i] = y[indices[i]];
    }
    LinearRegression candidate(1e-6);
    if (!candidate.Fit(sub_x, sub_y).ok()) continue;
    // Median of squared residuals on the full data.
    Vector residuals(n);
    for (size_t i = 0; i < n; ++i) {
      const double r = candidate.Predict(x.Row(i)) - y[i];
      residuals[i] = r * r;
    }
    std::nth_element(residuals.begin(), residuals.begin() + n / 2,
                     residuals.end());
    const double median = residuals[n / 2];
    if (median < best_median) {
      best_median = median;
      best_ = candidate;
      fitted = true;
    }
  }
  if (!fitted) {
    return Status::FailedPrecondition("LeastMedianSquares: all trials failed");
  }
  // Reweighted step: refit by OLS on the half of the data the winning
  // candidate considers inliers.
  std::vector<std::pair<double, size_t>> ranked(n);
  for (size_t i = 0; i < n; ++i) {
    const double r = best_.Predict(x.Row(i)) - y[i];
    ranked[i] = {r * r, i};
  }
  std::sort(ranked.begin(), ranked.end());
  const size_t keep = std::min(n, std::max<size_t>(d + 2, n / 2));
  Matrix in_x(keep, d);
  Vector in_y(keep);
  for (size_t i = 0; i < keep; ++i) {
    for (size_t c = 0; c < d; ++c) in_x(i, c) = x(ranked[i].second, c);
    in_y[i] = y[ranked[i].second];
  }
  LinearRegression refit(1e-6);
  if (refit.Fit(in_x, in_y).ok()) best_ = refit;
  return Status::OK();
}

double LeastMedianSquares::Predict(const Vector& x) const {
  return best_.Predict(x);
}

Vector PolynomialRegression::Expand(const Vector& x) const {
  Vector out;
  out.reserve(x.size() * degree_ + x.size() * x.size() / 2);
  for (double v : x) {
    double p = v;
    for (int k = 1; k <= degree_; ++k) {
      out.push_back(p);
      p *= v;
    }
  }
  if (degree_ >= 2) {
    for (size_t i = 0; i < x.size(); ++i) {
      for (size_t j = i + 1; j < x.size(); ++j) {
        out.push_back(x[i] * x[j]);
      }
    }
  }
  return out;
}

Status PolynomialRegression::Fit(const Matrix& x, const Vector& y) {
  if (x.rows() == 0) return Status::InvalidArgument("no training samples");
  Matrix expanded;
  for (size_t r = 0; r < x.rows(); ++r) {
    expanded.AppendRow(Expand(x.Row(r)));
  }
  return fitter_.Fit(expanded, y);
}

double PolynomialRegression::Predict(const Vector& x) const {
  return fitter_.Predict(Expand(x));
}

}  // namespace ires
