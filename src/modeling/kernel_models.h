#ifndef IRES_MODELING_KERNEL_MODELS_H_
#define IRES_MODELING_KERNEL_MODELS_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "modeling/model.h"

namespace ires {

/// Gaussian-process regression with an RBF kernel and observation noise
/// (equivalent to kernel ridge regression for the posterior mean, which is
/// all the planner consumes). Features are standardized internally.
class GaussianProcess : public Model {
 public:
  explicit GaussianProcess(double length_scale = 1.0, double noise = 1e-2)
      : length_scale_(length_scale), noise_(noise) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  double Predict(const Vector& x) const override;
  std::string name() const override { return "GaussianProcess"; }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<GaussianProcess>(length_scale_, noise_);
  }

 private:
  Vector Standardize(const Vector& x) const;
  double Kernel(const Vector& a, const Vector& b) const;

  double length_scale_;
  double noise_;
  Matrix train_x_;          // standardized training inputs
  Vector alpha_;            // (K + noise I)^{-1} y
  Vector feature_mean_, feature_std_;
  double y_mean_ = 0.0;
};

/// Radial Basis Function network (Broomhead & Lowe): k-means picks the
/// centers, then a linear readout is fit over the Gaussian activations.
class RbfNetwork : public Model {
 public:
  explicit RbfNetwork(int centers = 8, uint64_t seed = 23)
      : centers_(centers), seed_(seed) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  double Predict(const Vector& x) const override;
  std::string name() const override { return "RBFNetwork"; }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<RbfNetwork>(centers_, seed_);
  }

 private:
  Vector Activations(const Vector& x) const;

  int centers_;
  uint64_t seed_;
  Matrix center_points_;
  double width_ = 1.0;
  Vector weights_;  // one per center + bias (last)
  Vector feature_mean_, feature_std_;
};

}  // namespace ires

#endif  // IRES_MODELING_KERNEL_MODELS_H_
