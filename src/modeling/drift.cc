#include "modeling/drift.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace ires {

namespace {

double RelativeError(double predicted, double actual) {
  const double denom = std::max(std::abs(actual), 1e-9);
  return std::abs(predicted - actual) / denom;
}

std::string FormatDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

DriftObservatory::DriftObservatory() : DriftObservatory(Options()) {}

DriftObservatory::DriftObservatory(Options options, MetricsRegistry* metrics)
    : options_(std::move(options)), metrics_(metrics) {
  if (options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0) {
    options_.ewma_alpha = 0.2;
  }
  if (options_.residual_bounds.empty()) {
    options_.residual_bounds = {0.01, 0.025, 0.05, 0.1, 0.25,
                                0.5,  1.0,   2.5,  5.0};
  }
  std::sort(options_.residual_bounds.begin(), options_.residual_bounds.end());
  if (options_.clear_threshold > options_.flag_threshold) {
    options_.clear_threshold = options_.flag_threshold;
  }
}

bool DriftObservatory::Observe(const std::string& op,
                               const std::string& engine,
                               double predicted_seconds,
                               double actual_seconds,
                               const std::string& job_id) {
  const double rel = RelativeError(predicted_seconds, actual_seconds);

  bool newly_flagged = false;
  double score = 0.0;
  bool flagged = false;
  {
    MutexLock lock(mu_);
    PairState& state = pairs_[{op, engine}];
    if (state.residual_counts.empty()) {
      state.residual_counts.assign(options_.residual_bounds.size() + 1, 0);
    }
    ++state.observations;
    state.sum_rel_error += rel;
    state.last_rel_error = rel;
    state.ewma = state.observations == 1
                     ? rel
                     : options_.ewma_alpha * rel +
                           (1.0 - options_.ewma_alpha) * state.ewma;

    size_t bucket = options_.residual_bounds.size();
    for (size_t i = 0; i < options_.residual_bounds.size(); ++i) {
      if (rel <= options_.residual_bounds[i]) {
        bucket = i;
        break;
      }
    }
    ++state.residual_counts[bucket];

    if (!job_id.empty() && options_.max_exemplars > 0) {
      state.exemplars.emplace_back(rel, job_id);
      std::sort(state.exemplars.begin(), state.exemplars.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      if (state.exemplars.size() > options_.max_exemplars) {
        state.exemplars.resize(options_.max_exemplars);
      }
    }

    // Hysteresis: flag above flag_threshold, clear only below
    // clear_threshold, and never flag before min_observations so a single
    // noisy first sample can't trigger a refit storm.
    if (!state.flagged &&
        state.observations >= options_.min_observations &&
        state.ewma > options_.flag_threshold) {
      state.flagged = true;
      newly_flagged = true;
    } else if (state.flagged && state.ewma < options_.clear_threshold) {
      state.flagged = false;
    }
    score = state.ewma;
    flagged = state.flagged;
  }

  if (metrics_ != nullptr) {
    metrics_
        ->GetHistogram("ires_model_residual_relative_error",
                       "Relative error |predicted-actual|/actual of cost-model "
                       "estimates per executed step",
                       {{"engine", engine}}, options_.residual_bounds)
        ->Observe(rel);
    metrics_
        ->GetGauge("ires_model_drift_score",
                   "EWMA relative error of cost-model estimates per "
                   "(operator, engine) pair",
                   {{"op", op}, {"engine", engine}})
        ->Set(score);
    metrics_
        ->GetGauge("ires_model_drift_flagged",
                   "1 when the (operator, engine) pair is flagged as a "
                   "refinement candidate",
                   {{"op", op}, {"engine", engine}})
        ->Set(flagged ? 1.0 : 0.0);
  }
  return newly_flagged;
}

std::vector<DriftObservatory::PairSnapshot> DriftObservatory::Snapshot()
    const {
  std::vector<PairSnapshot> out;
  MutexLock lock(mu_);
  out.reserve(pairs_.size());
  for (const auto& [key, state] : pairs_) {
    PairSnapshot snap;
    snap.op = key.first;
    snap.engine = key.second;
    snap.observations = state.observations;
    snap.drift_score = state.ewma;
    snap.mean_rel_error =
        state.observations == 0
            ? 0.0
            : state.sum_rel_error / static_cast<double>(state.observations);
    snap.last_rel_error = state.last_rel_error;
    snap.flagged = state.flagged;
    snap.residual_counts = state.residual_counts;
    snap.exemplar_jobs.reserve(state.exemplars.size());
    for (const auto& [rel, job] : state.exemplars) {
      (void)rel;
      snap.exemplar_jobs.push_back(job);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<std::pair<std::string, std::string>>
DriftObservatory::RefinementCandidates() const {
  std::vector<std::pair<std::string, std::string>> out;
  MutexLock lock(mu_);
  for (const auto& [key, state] : pairs_) {
    if (state.flagged) out.push_back(key);
  }
  return out;
}

std::string DriftObservatory::ToJson() const {
  const std::vector<PairSnapshot> pairs = Snapshot();
  std::string out = "{";
  out += "\"ewmaAlpha\":" + FormatDouble(options_.ewma_alpha);
  out += ",\"flagThreshold\":" + FormatDouble(options_.flag_threshold);
  out += ",\"clearThreshold\":" + FormatDouble(options_.clear_threshold);
  out += ",\"minObservations\":" + std::to_string(options_.min_observations);
  out += ",\"residualBounds\":[";
  for (size_t i = 0; i < options_.residual_bounds.size(); ++i) {
    if (i > 0) out += ",";
    out += FormatDouble(options_.residual_bounds[i]);
  }
  out += "],\"pairs\":[";
  bool first = true;
  for (const PairSnapshot& pair : pairs) {
    if (!first) out += ",";
    first = false;
    out += "{\"op\":\"" + JsonEscape(pair.op) + "\"";
    out += ",\"engine\":\"" + JsonEscape(pair.engine) + "\"";
    out += ",\"observations\":" + std::to_string(pair.observations);
    out += ",\"driftScore\":" + FormatDouble(pair.drift_score);
    out += ",\"meanRelError\":" + FormatDouble(pair.mean_rel_error);
    out += ",\"lastRelError\":" + FormatDouble(pair.last_rel_error);
    out += std::string(",\"flagged\":") + (pair.flagged ? "true" : "false");
    out += ",\"residualCounts\":[";
    for (size_t i = 0; i < pair.residual_counts.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(pair.residual_counts[i]);
    }
    out += "],\"exemplarJobs\":[";
    for (size_t i = 0; i < pair.exemplar_jobs.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(pair.exemplar_jobs[i]) + "\"";
    }
    out += "]}";
  }
  out += "],\"refinementCandidates\":[";
  first = true;
  for (const PairSnapshot& pair : pairs) {
    if (!pair.flagged) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"op\":\"" + JsonEscape(pair.op) + "\",\"engine\":\"" +
           JsonEscape(pair.engine) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace ires
