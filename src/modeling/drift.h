#ifndef IRES_MODELING_DRIFT_H_
#define IRES_MODELING_DRIFT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "telemetry/metrics_registry.h"

namespace ires {

/// Cost-model drift observatory: per (operator algorithm, engine) residual
/// tracking of *predicted* versus *simulated-actual* execution time for
/// every executed step. The paper's adaptive loop (profile → plan → execute
/// → refine) needs exactly this signal to decide when refinement is due:
/// a pair whose exponentially weighted relative error exceeds the flag
/// threshold is surfaced as a refinement candidate, and the server reacts
/// by forcing an immediate refit of that pair's online estimator.
///
/// Thread-safe: one mutex guards the pair map; observations are O(buckets)
/// under it. This is an off-hot-path structure (one call per executed plan
/// step, orders of magnitude rarer than metric increments).
class DriftObservatory {
 public:
  struct Options {
    /// EWMA smoothing factor for the drift score (higher = more reactive).
    double ewma_alpha = 0.2;
    /// A pair whose EWMA relative error crosses this is flagged.
    double flag_threshold = 0.5;
    /// Hysteresis: a flagged pair unflags only below this.
    double clear_threshold = 0.25;
    /// Minimum observations before a pair can be flagged.
    uint64_t min_observations = 5;
    /// Exemplar job ids retained per pair (worst recent residuals).
    size_t max_exemplars = 4;
    /// Relative-error histogram bucket upper bounds.
    std::vector<double> residual_bounds = {0.01, 0.025, 0.05, 0.1, 0.25,
                                           0.5,  1.0,   2.5,  5.0};
  };

  DriftObservatory();
  explicit DriftObservatory(Options options, MetricsRegistry* metrics = nullptr);

  DriftObservatory(const DriftObservatory&) = delete;
  DriftObservatory& operator=(const DriftObservatory&) = delete;

  /// Records one executed step's (predicted, actual) execution time.
  /// Returns true when this observation *newly* flagged the pair as a
  /// refinement candidate (the caller's hook to trigger a refit).
  bool Observe(const std::string& op, const std::string& engine,
               double predicted_seconds, double actual_seconds,
               const std::string& job_id) EXCLUDES(mu_);

  struct PairSnapshot {
    std::string op;
    std::string engine;
    uint64_t observations = 0;
    double drift_score = 0.0;     // EWMA relative error
    double mean_rel_error = 0.0;  // lifetime mean
    double last_rel_error = 0.0;
    bool flagged = false;
    std::vector<uint64_t> residual_counts;  // bounds.size() + 1 buckets
    /// Job ids of the worst recent residuals — the replay starting points.
    std::vector<std::string> exemplar_jobs;
  };

  /// All tracked pairs, sorted by (op, engine).
  std::vector<PairSnapshot> Snapshot() const EXCLUDES(mu_);

  /// Currently flagged (op, engine) pairs, sorted.
  std::vector<std::pair<std::string, std::string>> RefinementCandidates()
      const EXCLUDES(mu_);

  /// The GET /apiv1/models/drift body: thresholds, every pair's residual
  /// summary, and the refinement-candidate list.
  std::string ToJson() const EXCLUDES(mu_);

  const Options& options() const { return options_; }

 private:
  struct PairState {
    uint64_t observations = 0;
    double ewma = 0.0;
    double sum_rel_error = 0.0;
    double last_rel_error = 0.0;
    bool flagged = false;
    std::vector<uint64_t> residual_counts;
    /// (relative error, job id), kept sorted worst-first, bounded.
    std::vector<std::pair<double, std::string>> exemplars;
  };

  Options options_;
  MetricsRegistry* metrics_;

  /// Observe publishes to the metrics registry after dropping this lock,
  /// so no nesting under kDriftObservatory is ever needed.
  mutable Mutex mu_{LockRank::kDriftObservatory, "drift.pairs"};
  std::map<std::pair<std::string, std::string>, PairState> pairs_
      GUARDED_BY(mu_);
};

}  // namespace ires

#endif  // IRES_MODELING_DRIFT_H_
