#ifndef IRES_MODELING_MODEL_H_
#define IRES_MODELING_MODEL_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "modeling/linalg.h"

namespace ires {

/// Interface shared by all estimation models in the IReS library. Mirrors
/// the role WEKA's regressors play in the original platform (deliverable
/// §2.2.1): each model approximates one performance/cost metric of one
/// (operator, engine) pair as a function of data-, operator- and
/// resource-specific parameters.
class Model {
 public:
  virtual ~Model() = default;

  /// Trains on the feature matrix `x` (one sample per row) and targets `y`.
  /// Refitting the same instance discards previous parameters.
  virtual Status Fit(const Matrix& x, const Vector& y) = 0;

  /// Point prediction for a feature vector. Valid after a successful Fit.
  virtual double Predict(const Vector& x) const = 0;

  /// Human-readable family name ("LinearRegression", "RBFNetwork", ...).
  virtual std::string name() const = 0;

  /// Deep copy with the same hyperparameters (fitted state need not be
  /// copied); used by cross-validation to train fresh folds.
  virtual std::unique_ptr<Model> Clone() const = 0;
};

/// Root-mean-square error of `model` on the given samples.
double Rmse(const Model& model, const Matrix& x, const Vector& y);

/// Mean relative error |pred - actual| / max(|actual|, eps).
double MeanRelativeError(const Model& model, const Matrix& x,
                         const Vector& y);

}  // namespace ires

#endif  // IRES_MODELING_MODEL_H_
