#include "modeling/refinement.h"

#include <algorithm>
#include <cmath>

namespace ires {

double OnlineEstimator::Predict(const Vector& features) const {
  if (model_ == nullptr) return running_mean_;
  return model_->Predict(features);
}

double OnlineEstimator::RelativeError(const Vector& features,
                                      double actual) const {
  const double pred = Predict(features);
  return std::fabs(pred - actual) / std::max(std::fabs(actual), 1e-9);
}

double OnlineEstimator::Observe(const Vector& features, double actual) {
  const double err = RelativeError(features, actual);
  features_.push_back(features);
  targets_.push_back(actual);
  while (features_.size() > options_.window) {
    features_.pop_front();
    targets_.pop_front();
  }
  // Running mean over the window; the fallback predictor before any fit.
  double sum = 0.0;
  for (double t : targets_) sum += t;
  running_mean_ = sum / static_cast<double>(targets_.size());

  ++since_fit_;
  const bool due = since_fit_ >= options_.refit_interval;
  if (features_.size() >= options_.min_samples &&
      (due || model_ == nullptr)) {
    (void)Refit();  // a failed refit keeps the previous model
  }
  return err;
}

Status OnlineEstimator::Refit() {
  if (features_.empty()) {
    return Status::FailedPrecondition("no samples to fit");
  }
  Matrix x;
  Vector y;
  for (size_t i = 0; i < features_.size(); ++i) {
    x.AppendRow(features_[i]);
    y.push_back(targets_[i]);
  }
  CrossValidationSelector selector(options_.cv_folds, options_.seed);
  auto fitted = selector.SelectAndFit(x, y);
  if (!fitted.ok()) return fitted.status();
  model_ = std::move(fitted).value();
  since_fit_ = 0;
  return Status::OK();
}

std::vector<OnlineEstimator::Sample> OnlineEstimator::ExportSamples() const {
  std::vector<Sample> out;
  out.reserve(features_.size());
  for (size_t i = 0; i < features_.size(); ++i) {
    out.push_back({features_[i], targets_[i]});
  }
  return out;
}

Status OnlineEstimator::ImportSamples(const std::vector<Sample>& samples) {
  for (const Sample& sample : samples) {
    features_.push_back(sample.features);
    targets_.push_back(sample.target);
    while (features_.size() > options_.window) {
      features_.pop_front();
      targets_.pop_front();
    }
  }
  if (!targets_.empty()) {
    double sum = 0.0;
    for (double t : targets_) sum += t;
    running_mean_ = sum / static_cast<double>(targets_.size());
  }
  if (features_.size() >= options_.min_samples) return Refit();
  return Status::OK();
}

void OnlineEstimator::Reset() {
  features_.clear();
  targets_.clear();
  model_.reset();
  running_mean_ = 0.0;
  since_fit_ = 0;
}

}  // namespace ires
