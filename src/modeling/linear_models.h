#ifndef IRES_MODELING_LINEAR_MODELS_H_
#define IRES_MODELING_LINEAR_MODELS_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "modeling/model.h"

namespace ires {

/// Ordinary least squares with an intercept term and light ridge
/// regularization for numerical stability.
class LinearRegression : public Model {
 public:
  explicit LinearRegression(double lambda = 1e-8) : lambda_(lambda) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  double Predict(const Vector& x) const override;
  std::string name() const override { return "LinearRegression"; }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<LinearRegression>(lambda_);
  }

  const Vector& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  double lambda_;
  Vector coef_;
  double intercept_ = 0.0;
};

/// Robust regression in the spirit of WEKA's LeastMedSq (Rousseeuw & Leroy):
/// repeatedly fits OLS on small random subsamples and keeps the candidate
/// with the smallest median squared residual on the full data.
class LeastMedianSquares : public Model {
 public:
  explicit LeastMedianSquares(int trials = 40, uint64_t seed = 17)
      : trials_(trials), seed_(seed) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  double Predict(const Vector& x) const override;
  std::string name() const override { return "LeastMedianSquares"; }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<LeastMedianSquares>(trials_, seed_);
  }

 private:
  int trials_;
  uint64_t seed_;
  LinearRegression best_;
};

/// Polynomial curve fitting: expands every feature to powers 1..degree plus
/// pairwise products (degree >= 2), then solves regularized least squares.
/// This is the "interpolation and curve fitting" family from the paper.
class PolynomialRegression : public Model {
 public:
  explicit PolynomialRegression(int degree = 2, double lambda = 1e-6)
      : degree_(degree), lambda_(lambda) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  double Predict(const Vector& x) const override;
  std::string name() const override {
    return "PolynomialRegression(d=" + std::to_string(degree_) + ")";
  }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<PolynomialRegression>(degree_, lambda_);
  }

 private:
  Vector Expand(const Vector& x) const;

  int degree_;
  double lambda_;
  LinearRegression fitter_{1e-6};
};

}  // namespace ires

#endif  // IRES_MODELING_LINEAR_MODELS_H_
