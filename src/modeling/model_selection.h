#ifndef IRES_MODELING_MODEL_SELECTION_H_
#define IRES_MODELING_MODEL_SELECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "modeling/model.h"

namespace ires {

/// The full menu of approximation techniques the platform trains per
/// (operator, engine) metric — the C++ equivalents of the WEKA models listed
/// in deliverable §2.2.1.
std::vector<std::unique_ptr<Model>> DefaultModelZoo();

/// Result of a cross-validated model selection run.
struct SelectionReport {
  std::string best_model;
  double best_cv_rmse = 0.0;
  std::vector<std::pair<std::string, double>> per_model_rmse;
};

/// Picks the model family that best fits the available profiling data using
/// k-fold cross validation (Kohavi 1995), then refits the winner on the full
/// data. Returns the fitted winner.
class CrossValidationSelector {
 public:
  explicit CrossValidationSelector(int folds = 5, uint64_t seed = 41)
      : folds_(folds), seed_(seed) {}

  /// Runs CV over `candidates` (falls back to DefaultModelZoo() when empty).
  /// `report`, when non-null, receives per-model scores.
  Result<std::unique_ptr<Model>> SelectAndFit(
      const Matrix& x, const Vector& y,
      std::vector<std::unique_ptr<Model>> candidates = {},
      SelectionReport* report = nullptr) const;

 private:
  int folds_;
  uint64_t seed_;
};

}  // namespace ires

#endif  // IRES_MODELING_MODEL_SELECTION_H_
