#include "modeling/neural.h"

#include <algorithm>
#include <cmath>

namespace ires {

Vector MultilayerPerceptron::Standardize(const Vector& x) const {
  Vector out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const double m = i < feature_mean_.size() ? feature_mean_[i] : 0.0;
    const double s = i < feature_std_.size() ? feature_std_[i] : 1.0;
    out[i] = (x[i] - m) / s;
  }
  return out;
}

Status MultilayerPerceptron::Fit(const Matrix& x, const Vector& y) {
  const size_t n = x.rows();
  if (n == 0) return Status::InvalidArgument("no training samples");
  const size_t d = x.cols();
  const int h = options_.hidden_units;

  feature_mean_.assign(d, 0.0);
  feature_std_.assign(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) feature_mean_[c] += x(r, c);
  }
  for (size_t c = 0; c < d; ++c) feature_mean_[c] /= static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) {
      const double diff = x(r, c) - feature_mean_[c];
      feature_std_[c] += diff * diff;
    }
  }
  for (size_t c = 0; c < d; ++c) {
    feature_std_[c] = std::sqrt(feature_std_[c] / static_cast<double>(n));
    if (feature_std_[c] < 1e-9) feature_std_[c] = 1.0;
  }
  y_mean_ = Mean(y);
  y_std_ = std::sqrt(std::max(Variance(y), 1e-12));

  Rng rng(options_.seed);
  hidden_weights_.assign(h, Vector(d + 1, 0.0));
  for (auto& w : hidden_weights_) {
    for (double& v : w) v = rng.Normal(0.0, 0.5 / std::sqrt(d + 1.0));
  }
  output_weights_.assign(h + 1, 0.0);
  for (double& v : output_weights_) v = rng.Normal(0.0, 0.5 / std::sqrt(h + 1.0));

  std::vector<Vector> hidden_vel(h, Vector(d + 1, 0.0));
  Vector output_vel(h + 1, 0.0);

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  Vector hidden_act(h), hidden_raw(h);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < n;
         start += static_cast<size_t>(options_.batch_size)) {
      const size_t end =
          std::min(n, start + static_cast<size_t>(options_.batch_size));
      std::vector<Vector> hidden_grad(h, Vector(d + 1, 0.0));
      Vector output_grad(h + 1, 0.0);
      for (size_t idx = start; idx < end; ++idx) {
        const Vector z = Standardize(x.Row(order[idx]));
        const double target = (y[order[idx]] - y_mean_) / y_std_;
        // Forward.
        for (int j = 0; j < h; ++j) {
          double s = hidden_weights_[j][d];
          for (size_t c = 0; c < d; ++c) s += hidden_weights_[j][c] * z[c];
          hidden_raw[j] = s;
          hidden_act[j] = std::tanh(s);
        }
        double pred = output_weights_[h];
        for (int j = 0; j < h; ++j) pred += output_weights_[j] * hidden_act[j];
        const double err = pred - target;
        // Backward.
        for (int j = 0; j < h; ++j) {
          output_grad[j] += err * hidden_act[j];
          const double dtanh = 1.0 - hidden_act[j] * hidden_act[j];
          const double delta = err * output_weights_[j] * dtanh;
          for (size_t c = 0; c < d; ++c) hidden_grad[j][c] += delta * z[c];
          hidden_grad[j][d] += delta;
        }
        output_grad[h] += err;
      }
      const double scale =
          options_.learning_rate / static_cast<double>(end - start);
      for (int j = 0; j < h; ++j) {
        for (size_t c = 0; c <= d; ++c) {
          hidden_vel[j][c] =
              options_.momentum * hidden_vel[j][c] - scale * hidden_grad[j][c];
          hidden_weights_[j][c] += hidden_vel[j][c];
        }
        output_vel[j] = options_.momentum * output_vel[j] - scale * output_grad[j];
        output_weights_[j] += output_vel[j];
      }
      output_vel[h] = options_.momentum * output_vel[h] - scale * output_grad[h];
      output_weights_[h] += output_vel[h];
    }
  }
  return Status::OK();
}

double MultilayerPerceptron::Predict(const Vector& x) const {
  if (hidden_weights_.empty()) return y_mean_;
  const Vector z = Standardize(x);
  const size_t d = feature_mean_.size();
  const int h = static_cast<int>(hidden_weights_.size());
  double pred = output_weights_[h];
  for (int j = 0; j < h; ++j) {
    double s = hidden_weights_[j][d];
    for (size_t c = 0; c < d && c < z.size(); ++c) {
      s += hidden_weights_[j][c] * z[c];
    }
    pred += output_weights_[j] * std::tanh(s);
  }
  return pred * y_std_ + y_mean_;
}

}  // namespace ires
